// jpegflow is the paper's full case study as a runnable program: a JPEG
// hardware/software co-design where the 4x4-block DCT runs on the simulated
// reconfigurable board (temporally partitioned and loop-fissioned) and
// quantization, zig-zag and Huffman coding run as host software.
//
// The program compresses a synthesized image end to end (producing a real,
// decodable bitstream), then reports the DCT timing of the static design
// versus the RTR design under both sequencing strategies.
//
// Run with:
//
//	go run ./examples/jpegflow
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/jpeg"
	"repro/internal/sim"
)

func main() {
	// --- Software pipeline: compress a real image. ---
	im := jpeg.Synthesize(jpeg.Photo, 512, 384, 2026)
	res, err := jpeg.Compress(im, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %dx%d image: %d blocks, %.2f bits/pixel, PSNR %.1f dB\n",
		im.W, im.H, res.Blocks, res.BitsPerPix, res.PSNRdB)

	// --- Hardware flow: partition the DCT task graph. ---
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	design, err := core.Build(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(design.Report())

	// --- Static counterpart. ---
	lib := hls.XC4000Library()
	st, err := hls.SynthesizeStatic(jpeg.StaticDCTBehaviors(), jpeg.StaticAllocation(), lib, hls.Constraints{})
	if err != nil {
		log.Fatal(err)
	}
	static := sim.StaticDesign{
		BodyCycles: st.Cycles, ClockNS: st.ClockNS,
		InWords: 16, OutWords: 16,
		BatchK: cfg.Board.Memory.Words / design.Fission.MaxMTemp,
	}
	fmt.Printf("\nstatic design: %d cycles @ %.0f ns per 4x4 block (paper: 160 @ 100 ns)\n",
		st.Cycles, st.ClockNS)

	// --- Compare on this image's block count. ---
	I := res.Blocks
	rtr := sim.RTRDesign{Partitions: design.Timings, Analysis: design.Fission}
	stRes, err := sim.SimulateStatic(static, cfg.Board, I, sim.Options{TraceCap: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDCT timing for the %d blocks of this image:\n", I)
	fmt.Printf("  static: %10.3f ms\n", stRes.TotalNS/arch.Millisecond)
	for _, strategy := range []fission.Strategy{fission.FDH, fission.IDH} {
		r, err := sim.SimulateRTR(rtr, cfg.Board, strategy, I, sim.Options{TraceCap: -1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  RTR %s: %9.3f ms (improvement %+.1f%%)\n",
			strategy, r.TotalNS/arch.Millisecond,
			100*sim.Improvement(stRes.TotalNS, r.TotalNS))
	}
	fmt.Println("\n(small images lose to the 3 x 100 ms reconfiguration cost; run the")
	fmt.Println(" paper-scale comparison with: go run ./cmd/jpegbench)")
}

// dct8x8 scales the paper's case study to real JPEG block size: an 8x8 DCT
// is 128 vector-product tasks (vs. the paper's 32), which no single XC4044
// configuration can hold. The example partitions the generalized Fig. 8
// graph, analyzes loop fission, and compares the XC4044 against an
// XC6200-class device with partial reconfiguration — the capability the
// paper's closing conjecture points at.
//
// Run with:
//
//	go run ./examples/dct8x8
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dctn"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/sim"
)

func main() {
	lib := hls.XC4000Library()
	g, err := dctn.BuildGraph(8, lib, hls.Constraints{})
	if err != nil {
		log.Fatal(err)
	}
	m1, a1, m2, a2 := dctn.Widths(8)
	fmt.Printf("8x8 DCT: %d tasks, %d edges; stage widths %d/%d and %d/%d bits\n",
		g.NumTasks(), g.NumEdges(), m1, a1, m2, a2)

	cfg := core.DefaultConfig()
	cfg.Partitioner = core.ListPartitioner // 128 tasks: greedy, not ILP
	cfg.Strategy = fission.IDH
	design, err := core.Build(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy partitioning: N=%d, k=%d computations per run\n",
		design.Partitioning.N, design.Fission.K)
	for p := 0; p < design.Partitioning.N; p++ {
		fmt.Printf("  partition %d: m_temp=%d words, %d cycles @ %.0f ns\n",
			p+1, design.Fission.MTemp[p],
			design.Timings[p].BodyCycles, design.Timings[p].ClockNS)
	}

	const blocks = 61440 // a 1024x1536 image in 8x8 blocks
	rtr := sim.RTRDesign{
		Partitions:    design.Timings,
		Analysis:      design.Fission,
		PartitionCLBs: design.PartitionCLBs(),
	}
	for _, board := range []arch.Board{
		arch.PaperXC4044Board(),
		arch.XC6000Board(),
		arch.XC6000PartialBoard(),
	} {
		res, err := sim.SimulateRTR(rtr, board, fission.IDH, blocks, sim.Options{TraceCap: -1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %9.3f ms total (%7.3f ms reconfiguration in %d loads)\n",
			board.Name, res.TotalNS/arch.Millisecond,
			res.ReconfigNS/arch.Millisecond, res.Reconfigurations)
	}
}

// firbank partitions an 8-channel FIR filter bank — a classic member of the
// "DSP style applications with an implicit outer loop" class the paper's
// loop fission targets (Sec. 2.2). Each channel is a 16-tap FIR filter
// followed by a decimator and an energy detector; the behavioral op graphs
// are built with the HLS IR and estimated by the same engine as the DCT
// case study, demonstrating the flow on a second, independent workload.
//
// Run with:
//
//	go run ./examples/firbank
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/sim"
)

const channels = 8

func main() {
	lib := hls.XC4000Library()
	cons := hls.Constraints{}

	// Per-channel behaviors: a 16-tap FIR (12-bit samples, 24-bit
	// accumulate), a decimate-by-4 stage, and an 8-tap energy window.
	fir := hls.VectorProduct("fir", 16, 12, 24, "X", "F", false)
	dec := hls.VectorProduct("dec", 4, 12, 16, "F", "D", false)
	eng := hls.VectorProduct("eng", 8, 12, 24, "D", "E", true)

	eFIR, err := hls.EstimateTask(fir, lib, cons)
	if err != nil {
		log.Fatal(err)
	}
	eDec, err := hls.EstimateTask(dec, lib, cons)
	if err != nil {
		log.Fatal(err)
	}
	eEng, err := hls.EstimateTask(eng, lib, cons)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task estimates: fir %d CLBs / %.0f ns, dec %d CLBs / %.0f ns, eng %d CLBs / %.0f ns\n",
		eFIR.CLBs, eFIR.DelayNS, eDec.CLBs, eDec.DelayNS, eEng.CLBs, eEng.DelayNS)

	// Task graph: 8 independent channel pipelines.
	g := dfg.New("firbank8")
	for c := 0; c < channels; c++ {
		fn := fmt.Sprintf("fir%d", c)
		dn := fmt.Sprintf("dec%d", c)
		en := fmt.Sprintf("eng%d", c)
		g.MustAddTask(dfg.Task{Name: fn, Type: "fir", Resources: eFIR.CLBs,
			Delay: eFIR.DelayNS, ReadEnv: 4,
			Payload: hls.VectorProduct(fn, 16, 12, 24, "X", "F", false)})
		g.MustAddTask(dfg.Task{Name: dn, Type: "dec", Resources: eDec.CLBs,
			Delay:   eDec.DelayNS,
			Payload: hls.VectorProduct(dn, 4, 12, 16, "F", "D", false)})
		g.MustAddTask(dfg.Task{Name: en, Type: "eng", Resources: eEng.CLBs,
			Delay: eEng.DelayNS, WriteEnv: 1,
			Payload: hls.VectorProduct(en, 8, 12, 24, "D", "E", true)})
		g.MustAddEdge(fn, dn, 4)
		g.MustAddEdge(dn, en, 2)
	}

	cfg := core.DefaultConfig() // the paper's XC4044 board
	cfg.Strategy = fission.IDH
	design, err := core.Build(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(design.Report())
	fmt.Printf("  solver: %d B&B nodes in %v\n",
		design.Partitioning.Stats.Nodes, design.Partitioning.Stats.SolveTime.Round(1e6))

	// Stream one million input frames through the fissioned design.
	const frames = 1_000_000
	for _, strategy := range []fission.Strategy{fission.FDH, fission.IDH} {
		r, err := sim.SimulateRTR(sim.RTRDesign{
			Partitions: design.Timings, Analysis: design.Fission,
		}, cfg.Board, strategy, frames, sim.Options{TraceCap: -1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s over %d frames: %.3f s (reconfig %.3f s in %d loads, transfer %.3f s)\n",
			strategy, frames, r.TotalNS/arch.Second,
			r.ReconfigNS/arch.Second, r.Reconfigurations, r.TransferNS/arch.Second)
	}
}

// seqgen showcases the synthesis artifacts of the flow beyond timing
// numbers: the augmented controller FSM of Fig. 7, the generated host
// sequencer code for both strategies (Sec. 2.2), the memory block address
// transformation of Fig. 6, and the partition RTL.
//
// Run with:
//
//	go run ./examples/seqgen
package main

import (
	"fmt"
	"log"

	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/memmap"
	"repro/internal/rtl"
)

func main() {
	lib := hls.XC4000Library()

	// One T1-style vector product scheduled and synthesized.
	vp := hls.VectorProduct("vp", 4, 9, 16, "M1", "M2", false)
	alloc := hls.MinimalAllocation(vp)
	sched, err := hls.ListSchedule([]*hls.OpGraph{vp}, []hls.Allocation{alloc}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d control steps for %d operations\n\n", sched.Cycles, len(sched.Ops))

	// Fig. 7: the augmented RTR controller.
	plain := hls.SynthesizeController("vp", sched)
	augmented := hls.AugmentForRTR(plain)
	fmt.Println("augmented controller (Fig. 7):")
	fmt.Print(augmented.String())
	for _, k := range []int{1, 4} {
		r, err := augmented.Run(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d -> %d cycles, %d iterations\n", k, r.Cycles, r.Iterations)
	}

	// Sec. 2.2: host sequencer code for both strategies.
	fmt.Println("\n" + fission.SequencerCode(fission.FDH, 3))
	fmt.Println(fission.SequencerCode(fission.IDH, 3))

	// Fig. 6: memory block layout and the address transformation.
	layout, err := memmap.NewLayout([]memmap.Segment{
		{Name: "M1", Words: 16}, {Name: "M2", Words: 16}, {Name: "M3", Words: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory block: %d words exact, %d rounded (wastage %d)\n",
		layout.BlockWords, layout.RoundedWords, layout.Wastage())
	rewritten, err := layout.RewriteAccess("M2", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Read(M2[3])  ->  Read(%s)\n", rewritten)
	for _, it := range []int{0, 1, 5} {
		exact, _ := layout.Address(it, 1, 3, false)
		pow2, _ := layout.Address(it, 1, 3, true)
		fmt.Printf("  iteration %d: exact addr %4d | pow2 addr %4d\n", it, exact, pow2)
	}
	mulCost, catCost, err := memmap.AddressGenCosts(lib, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  address generator: multiply %d CLBs/%.0f ns vs concat %d CLBs/%.0f ns\n",
		mulCost.CLBs, mulCost.DelayNS, catCost.CLBs, catCost.DelayNS)

	// Partition RTL with the iteration counter.
	pd, err := hls.SynthesizePartition([]*hls.OpGraph{vp}, lib, hls.Constraints{})
	if err != nil {
		log.Fatal(err)
	}
	nl, err := rtl.FromPartition("vp_partition", pd, lib, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npartition RTL:")
	fmt.Print(nl.Verilog())
}

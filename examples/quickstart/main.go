// Quickstart: partition a small DSP task graph over a tiny FPGA and print
// the resulting temporal partitioning, loop fission analysis, and a
// simulated run.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/fission"
	"repro/internal/sim"
)

func main() {
	// A 6-task smoothing pipeline annotated with HLS cost estimates
	// (resources in CLBs, delay in ns), reading 4 words per computation
	// from the environment and writing 2 back.
	g := dfg.New("smoother")
	g.MustAddTask(dfg.Task{Name: "load", Type: "io", Resources: 20, Delay: 80, ReadEnv: 4})
	g.MustAddTask(dfg.Task{Name: "lp_a", Type: "filter", Resources: 45, Delay: 150})
	g.MustAddTask(dfg.Task{Name: "lp_b", Type: "filter", Resources: 45, Delay: 150})
	g.MustAddTask(dfg.Task{Name: "mix", Type: "mix", Resources: 30, Delay: 120})
	g.MustAddTask(dfg.Task{Name: "gain", Type: "gain", Resources: 35, Delay: 90})
	g.MustAddTask(dfg.Task{Name: "store", Type: "io", Resources: 20, Delay: 80, WriteEnv: 2})
	g.MustAddEdge("load", "lp_a", 2)
	g.MustAddEdge("load", "lp_b", 2)
	g.MustAddEdge("lp_a", "mix", 2)
	g.MustAddEdge("lp_b", "mix", 2)
	g.MustAddEdge("mix", "gain", 2)
	g.MustAddEdge("gain", "store", 2)

	cfg := core.DefaultConfig()
	cfg.Board = arch.SmallTestBoard() // 100 CLBs: the graph cannot fit at once
	cfg.Strategy = fission.IDH

	design, err := core.Build(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(design.Report())

	fmt.Println("\nhost sequencer:")
	fmt.Print(design.Sequencer)

	// Process 10,000 computations (the implicit outer loop).
	res, err := design.Simulate(10000, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated 10,000 computations: %.3f ms total "+
		"(%.3f ms compute, %.3f ms reconfig over %d loads, %.3f ms transfer)\n",
		res.TotalNS/arch.Millisecond, res.ComputeNS/arch.Millisecond,
		res.ReconfigNS/arch.Millisecond, res.Reconfigurations,
		res.TransferNS/arch.Millisecond)
}

// Package repro_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md section 4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured numbers).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark times the computation that produces the artifact and
// attaches the reproduced headline numbers as custom metrics, so the bench
// output itself documents the reproduction.
package repro_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/dctn"
	"repro/internal/dfg"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/ilp"
	"repro/internal/jpeg"
	"repro/internal/listpart"
	"repro/internal/memmap"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tempart"
)

// ---- shared fixtures (built once; construction cost is benchmarked in the
// dedicated benchmarks) ----

var fixtureOnce sync.Once
var fx struct {
	graph   *dfg.Graph
	design  *core.Design
	static  sim.StaticDesign
	rtr     sim.RTRDesign
	board   arch.Board
	staticD *hls.PartitionDesign
}

func fixtures(tb testing.TB) {
	fixtureOnce.Do(func() {
		fx.board = arch.PaperXC4044Board()
		g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
		if err != nil {
			tb.Fatal(err)
		}
		fx.graph = g
		d, err := core.Build(g, core.DefaultConfig())
		if err != nil {
			tb.Fatal(err)
		}
		fx.design = d
		st, err := hls.SynthesizeStatic(jpeg.StaticDCTBehaviors(), jpeg.StaticAllocation(),
			hls.XC4000Library(), hls.Constraints{})
		if err != nil {
			tb.Fatal(err)
		}
		fx.staticD = st
		fx.static = sim.StaticDesign{
			BodyCycles: st.Cycles, ClockNS: st.ClockNS,
			InWords: 16, OutWords: 16,
			BatchK: fx.board.Memory.Words / d.Fission.MaxMTemp,
		}
		fx.rtr = sim.RTRDesign{Partitions: d.Timings, Analysis: d.Fission}
	})
}

// BenchmarkFig8_DCTTaskGraph regenerates the paper's Fig. 8 task graph (32
// vector products in 4 collections of 8) including the HLS estimation of
// T1/T2 synthesis costs.
func BenchmarkFig8_DCTTaskGraph(b *testing.B) {
	lib := hls.XC4000Library()
	for i := 0; i < b.N; i++ {
		g, err := jpeg.BuildDCTGraph(lib, hls.Constraints{})
		if err != nil {
			b.Fatal(err)
		}
		if g.NumTasks() != 32 || g.NumEdges() != 64 {
			b.Fatalf("graph shape %d/%d", g.NumTasks(), g.NumEdges())
		}
	}
	b.ReportMetric(32, "tasks")
	b.ReportMetric(70, "T1-CLBs")
	b.ReportMetric(180, "T2-CLBs")
}

// BenchmarkFig4_PartitionDelay regenerates the Fig. 4 delay model: the
// partition delay is the maximum in-partition path delay (400 ns and
// 300 ns in the figure's two partitions).
func BenchmarkFig4_PartitionDelay(b *testing.B) {
	g := dfg.New("fig4")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 1, Delay: 100})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 1, Delay: 250})
	g.MustAddTask(dfg.Task{Name: "c", Resources: 1, Delay: 400})
	g.MustAddTask(dfg.Task{Name: "d", Resources: 1, Delay: 150})
	g.MustAddTask(dfg.Task{Name: "e", Resources: 1, Delay: 300})
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("b", "e", 1)
	g.MustAddEdge("c", "e", 1)
	g.MustAddEdge("d", "e", 1)
	paths, err := g.Paths(0)
	if err != nil {
		b.Fatal(err)
	}
	assign := []int{0, 0, 0, 0, 1}
	var d []float64
	for i := 0; i < b.N; i++ {
		d = tempart.EvaluateDelays(g, assign, 2, paths)
	}
	if d[0] != 400 || d[1] != 300 {
		b.Fatalf("delays %v, want [400 300]", d)
	}
	b.ReportMetric(d[0], "d1-ns")
	b.ReportMetric(d[1], "d2-ns")
}

// BenchmarkFig5_SequencingStrategies compares the FDH and IDH overhead
// models of Fig. 5 across the batch-size sweep.
func BenchmarkFig5_SequencingStrategies(b *testing.B) {
	fixtures(b)
	a := fx.design.Fission
	var fdh, idh *fission.Plan
	for i := 0; i < b.N; i++ {
		var err error
		fdh, err = fission.NewPlan(a, fx.board, fission.FDH, 245760, false)
		if err != nil {
			b.Fatal(err)
		}
		idh, err = fission.NewPlan(a, fx.board, fission.IDH, 245760, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fdh.Reconfigurations), "FDH-reconfigs")
	b.ReportMetric(float64(idh.Reconfigurations), "IDH-reconfigs")
	b.ReportMetric(fdh.ReconfigNS/arch.Second, "FDH-reconfig-s")
	b.ReportMetric(idh.ReconfigNS/arch.Second, "IDH-reconfig-s")
}

// BenchmarkFig6_AddressGeneration exercises the Fig. 6 memory-block address
// path: exact (multiplier) vs power-of-two (concatenation) addressing.
func BenchmarkFig6_AddressGeneration(b *testing.B) {
	l, err := memmap.NewLayout([]memmap.Segment{
		{Name: "M1", Words: 16}, {Name: "M2", Words: 16}, {Name: "M3", Words: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	sum := 0
	for i := 0; i < b.N; i++ {
		for it := 0; it < 16; it++ {
			a, err := l.Address(it, 1, 3, true)
			if err != nil {
				b.Fatal(err)
			}
			sum += a
		}
	}
	_ = sum
	mul, concat, err := memmap.AddressGenCosts(hls.XC4000Library(), 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(l.Wastage()), "wastage-words")
	b.ReportMetric(float64(mul.CLBs-concat.CLBs), "CLBs-saved-by-concat")
}

// BenchmarkFig7_AugmentedController executes the Fig. 7 augmented
// controller FSM for a full k=2048 batch.
func BenchmarkFig7_AugmentedController(b *testing.B) {
	g := hls.VectorProduct("t", 4, 9, 16, "in", "out", false)
	alloc := hls.MinimalAllocation(g)
	sched, err := hls.ListSchedule([]*hls.OpGraph{g}, []hls.Allocation{alloc}, 1)
	if err != nil {
		b.Fatal(err)
	}
	f := hls.AugmentForRTR(hls.SynthesizeController("t", sched))
	var res hls.RunResult
	for i := 0; i < b.N; i++ {
		res, err = f.Run(2048)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cycles), "cycles-per-batch")
	b.ReportMetric(float64(res.Iterations), "iterations")
}

// BenchmarkILP_DCTPartitioning times the headline solve: the temporal
// partitioning ILP on the 32-task DCT graph (the paper's CPLEX run took
// 3.5 s and produced 3 partitions: 16 T1 | 8 T2 | 8 T2).
func BenchmarkILP_DCTPartitioning(b *testing.B) {
	fixtures(b)
	var p *tempart.Partitioning
	for i := 0; i < b.N; i++ {
		var err error
		p, err = tempart.Solve(tempart.Input{Graph: fx.graph, Board: fx.board})
		if err != nil {
			b.Fatal(err)
		}
	}
	if p.N != 3 || !p.Optimal {
		b.Fatalf("N=%d optimal=%v, want 3/true", p.N, p.Optimal)
	}
	b.ReportMetric(float64(p.N), "partitions")
	b.ReportMetric(float64(p.Stats.Nodes), "B&B-nodes")
	b.ReportMetric(float64(p.Stats.Nodes)/p.Stats.SolveTime.Seconds(), "nodes/sec")
	b.ReportMetric(float64(p.Stats.PrunedCombinatorial), "nodes-pruned-combinatorial")
	b.ReportMetric(float64(p.Stats.LPSolvesSkipped), "lp-solves-skipped")
	b.ReportMetric(float64(p.Stats.CutsAdded), "cuts-added")
	b.ReportMetric(float64(p.Stats.SeparationRounds), "separation-rounds")
	b.ReportMetric(float64(p.Stats.ConflictCuts), "conflict-cuts")
	b.ReportMetric(float64(p.Stats.CGCuts), "cg-cuts")
	b.ReportMetric(float64(p.Stats.DualBoundFathoms), "dual-bound-fathoms")
	b.ReportMetric(float64(p.Stats.Solver.Pivots), "pivots/op")
	b.ReportMetric(float64(p.Stats.Solver.Refactorizations), "refactorizations/op")
	b.ReportMetric(float64(p.Stats.Solver.BoundFlips), "bound-flips/op")
	b.ReportMetric(float64(p.Stats.Solver.SparseFTRANs+p.Stats.Solver.SparseBTRANs), "sparse-solves/op")
	b.ReportMetric(float64(p.Stats.Solver.DenseFallbacks), "dense-fallbacks/op")
	b.ReportMetric(p.Latency, "latency-ns")
}

// BenchmarkILP_DCTPartitioningTraced is the observability overhead probe:
// the headline solve with a full trace recorder attached. The ns/op and
// allocs/op deltas against BenchmarkILP_DCTPartitioning are the entire cost
// of span/counter/node-sample recording; the disabled path (Trace nil) is
// separately pinned to zero allocations by internal/obs's
// TestDisabledTraceZeroAlloc and the bench-lp FTRAN 0 allocs/op gate.
func BenchmarkILP_DCTPartitioningTraced(b *testing.B) {
	fixtures(b)
	var p *tempart.Partitioning
	var rec *obs.Recorder
	for i := 0; i < b.N; i++ {
		rec = obs.NewRecorder(4096)
		var err error
		p, err = tempart.Solve(tempart.Input{Graph: fx.graph, Board: fx.board, Trace: rec})
		if err != nil {
			b.Fatal(err)
		}
	}
	if p.N != 3 || !p.Optimal {
		b.Fatalf("N=%d optimal=%v, want 3/true", p.N, p.Optimal)
	}
	tr := rec.Trace()
	// The DCT warm start closes the search at the root (0 nodes → all
	// counters legitimately zero), so the timeline check is spans-only.
	if len(tr.Spans) == 0 {
		b.Fatal("traced solve recorded no spans")
	}
	b.ReportMetric(float64(len(tr.Spans)), "spans")
	b.ReportMetric(float64(tr.Dropped), "dropped-events")
}

// BenchmarkTempartDCTWarmStart is the solver-core benchmark behind the CI
// perf smoke: the headline DCT partitioning solve, reporting how much of
// the branch-and-bound search the warm-started lp.Solver serves without a
// from-scratch simplex rebuild.
func BenchmarkTempartDCTWarmStart(b *testing.B) {
	fixtures(b)
	var p *tempart.Partitioning
	for i := 0; i < b.N; i++ {
		var err error
		p, err = tempart.Solve(tempart.Input{Graph: fx.graph, Board: fx.board})
		if err != nil {
			b.Fatal(err)
		}
	}
	if p.N != 3 || !p.Optimal {
		b.Fatalf("N=%d optimal=%v, want 3/true", p.N, p.Optimal)
	}
	st := p.Stats.Solver
	b.ReportMetric(float64(p.Stats.Nodes)/p.Stats.SolveTime.Seconds(), "nodes/sec")
	b.ReportMetric(float64(st.WarmSolves), "warm-solves")
	b.ReportMetric(float64(st.ColdSolves), "cold-solves")
	b.ReportMetric(float64(st.DualPivots), "dual-pivots")
	b.ReportMetric(float64(st.Pivots), "pivots/op")
	b.ReportMetric(float64(st.Refactorizations), "refactorizations/op")
	b.ReportMetric(float64(st.BoundFlips), "bound-flips/op")
	b.ReportMetric(float64(st.SparseFTRANs+st.SparseBTRANs), "sparse-solves/op")
	b.ReportMetric(float64(st.DenseFallbacks), "dense-fallbacks/op")
	b.ReportMetric(float64(p.Stats.PrunedCombinatorial), "nodes-pruned-combinatorial")
	b.ReportMetric(float64(p.Stats.LPSolvesSkipped), "lp-solves-skipped")
}

// BenchmarkTempartDCTParallel runs the same solve with the parallel subtree
// search and the speculative relax-N loop enabled (the wall-clock win
// scales with available cores; the objective is identical by construction).
func BenchmarkTempartDCTParallel(b *testing.B) {
	fixtures(b)
	var p *tempart.Partitioning
	for i := 0; i < b.N; i++ {
		var err error
		p, err = tempart.Solve(tempart.Input{
			Graph: fx.graph, Board: fx.board,
			SpeculateN: 2, ILP: ilp.Options{Workers: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if p.N != 3 || !p.Optimal {
		b.Fatalf("N=%d optimal=%v, want 3/true", p.N, p.Optimal)
	}
	b.ReportMetric(float64(p.Stats.Nodes)/p.Stats.SolveTime.Seconds(), "nodes/sec")
	b.ReportMetric(p.Latency, "latency-ns")
}

// BenchmarkILP_NoSymmetryBreaking is the ablation: the same solve without
// the interchangeable-task ordering constraints.
func BenchmarkILP_NoSymmetryBreaking(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		p, err := tempart.Solve(tempart.Input{
			Graph: fx.graph, Board: fx.board, NoSymmetryBreaking: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if p.N != 3 {
			b.Fatalf("N=%d", p.N)
		}
	}
}

// BenchmarkListVsILP regenerates the Sec. 4 comparison: the greedy list
// partitioner's latency versus the ILP's on the DCT graph.
func BenchmarkListVsILP(b *testing.B) {
	fixtures(b)
	var lp *tempart.Partitioning
	for i := 0; i < b.N; i++ {
		var err error
		lp, err = listpart.Solve(fx.graph, fx.board, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lp.Latency-fx.design.Partitioning.Latency, "list-excess-latency-ns")
	b.ReportMetric(fx.design.Partitioning.Latency, "ilp-latency-ns")
}

// BenchmarkFissionAnalysis regenerates the Sec. 4 memory analysis:
// m_temp = [32 16 16] words and k = 2048.
func BenchmarkFissionAnalysis(b *testing.B) {
	fixtures(b)
	var a *fission.Analysis
	for i := 0; i < b.N; i++ {
		var err error
		a, err = fission.Analyze(fx.graph, fx.design.Partitioning.Assign, 3, fx.board.Memory.Words)
		if err != nil {
			b.Fatal(err)
		}
	}
	if a.K != 2048 {
		b.Fatalf("k=%d, want 2048", a.K)
	}
	b.ReportMetric(float64(a.K), "k")
	b.ReportMetric(float64(a.MaxMTemp), "max-mtemp-words")
}

// BenchmarkStaticDCTSchedule regenerates the static co-design data point:
// the full 4x4 DCT scheduled onto 2 mac9 + 2 mac17 units (paper: 160
// cycles at 100 ns).
func BenchmarkStaticDCTSchedule(b *testing.B) {
	lib := hls.XC4000Library()
	var st *hls.PartitionDesign
	for i := 0; i < b.N; i++ {
		var err error
		st, err = hls.SynthesizeStatic(jpeg.StaticDCTBehaviors(), jpeg.StaticAllocation(), lib, hls.Constraints{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Cycles), "cycles")
	b.ReportMetric(st.ClockNS, "clock-ns")
}

// benchTable simulates one table row set and reports the improvement at
// the paper's largest size.
func benchTable(b *testing.B, strategy fission.Strategy) {
	fixtures(b)
	sizes := []int{245760, 122880, 61440, 30720, 15360, 7680, 3840}
	var impLargest float64
	for i := 0; i < b.N; i++ {
		for _, I := range sizes {
			s, err := sim.SimulateStatic(fx.static, fx.board, I, sim.Options{TraceCap: -1})
			if err != nil {
				b.Fatal(err)
			}
			r, err := sim.SimulateRTR(fx.rtr, fx.board, strategy, I, sim.Options{TraceCap: -1})
			if err != nil {
				b.Fatal(err)
			}
			if I == sizes[0] {
				impLargest = sim.Improvement(s.TotalNS, r.TotalNS)
			}
		}
	}
	b.ReportMetric(100*impLargest, "improvement-%-at-245760")
}

// BenchmarkTable1_FDH regenerates Table 1: FDH shows no improvement at any
// size (the paper found the same).
func BenchmarkTable1_FDH(b *testing.B) { benchTable(b, fission.FDH) }

// BenchmarkTable2_IDH regenerates Table 2: IDH improves at large sizes
// (paper: 42% at 245,760 blocks; our synthesized timings give ~26%, see
// EXPERIMENTS.md).
func BenchmarkTable2_IDH(b *testing.B) { benchTable(b, fission.IDH) }

// BenchmarkBreakEven regenerates the Sec. 4 break-even analysis (paper:
// 42,553 blocks).
func BenchmarkBreakEven(b *testing.B) {
	fixtures(b)
	perStatic := (float64(fx.static.BodyCycles) + 1) * fx.static.ClockNS
	perRTR := 0.0
	for _, p := range fx.rtr.Partitions {
		perRTR += p.PerComputationNS()
	}
	var be float64
	for i := 0; i < b.N; i++ {
		be = fission.BreakEvenComputations(fx.board, 3, perStatic, perRTR)
	}
	b.ReportMetric(be, "break-even-blocks")
}

// BenchmarkXC6000Conjecture regenerates the paper's closing conjecture:
// with a 500 us reconfiguration device the improvement for the largest
// file grows (paper: 47%).
func BenchmarkXC6000Conjecture(b *testing.B) {
	fixtures(b)
	board := arch.XC6000Board()
	var imp float64
	for i := 0; i < b.N; i++ {
		s, err := sim.SimulateStatic(fx.static, board, 245760, sim.Options{TraceCap: -1})
		if err != nil {
			b.Fatal(err)
		}
		r, err := sim.SimulateRTR(fx.rtr, board, fission.IDH, 245760, sim.Options{TraceCap: -1})
		if err != nil {
			b.Fatal(err)
		}
		imp = sim.Improvement(s.TotalNS, r.TotalNS)
	}
	b.ReportMetric(100*imp, "improvement-%")
}

// BenchmarkCoSimBatch2048 runs the functional co-simulation of one full
// paper-sized batch (2048 blocks) through the block-addressed memory.
func BenchmarkCoSimBatch2048(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	blocks := make([]jpeg.Block, 2048)
	for i := range blocks {
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				blocks[i][r][c] = rng.Intn(256) - 128
			}
		}
	}
	var moved int
	for i := 0; i < b.N; i++ {
		run := &cosim.DCTRun{MemWords: 64 * 1024}
		out, err := run.Execute(blocks)
		if err != nil {
			b.Fatal(err)
		}
		if out[0] != jpeg.DCTFixed(blocks[0]) {
			b.Fatal("co-simulation diverged")
		}
		moved = run.HostWordsMoved
	}
	b.ReportMetric(float64(moved), "host-words")
}

// BenchmarkPartialReconfigAblation compares full vs. partial
// reconfiguration on the XC6200-class board (extension of the paper's
// conjecture).
func BenchmarkPartialReconfigAblation(b *testing.B) {
	fixtures(b)
	rtr := fx.rtr
	rtr.PartitionCLBs = fx.design.PartitionCLBs()
	full := arch.XC6000Board()
	part := arch.XC6000PartialBoard()
	var saved float64
	for i := 0; i < b.N; i++ {
		rFull, err := sim.SimulateRTR(rtr, full, fission.IDH, 245760, sim.Options{TraceCap: -1})
		if err != nil {
			b.Fatal(err)
		}
		rPart, err := sim.SimulateRTR(rtr, part, fission.IDH, 245760, sim.Options{TraceCap: -1})
		if err != nil {
			b.Fatal(err)
		}
		saved = rFull.ReconfigNS - rPart.ReconfigNS
	}
	b.ReportMetric(saved/arch.Millisecond, "reconfig-saved-ms")
}

// BenchmarkILP_FIRBank solves a second, independent instance: the
// 24-task 8-channel FIR filter bank of examples/firbank.
func BenchmarkILP_FIRBank(b *testing.B) {
	lib := hls.XC4000Library()
	g := dfg.New("firbank8")
	fir := hls.VectorProduct("fir", 16, 12, 24, "X", "F", false)
	dec := hls.VectorProduct("dec", 4, 12, 16, "F", "D", false)
	eng := hls.VectorProduct("eng", 8, 12, 24, "D", "E", true)
	eFIR, _ := hls.EstimateTask(fir, lib, hls.Constraints{})
	eDec, _ := hls.EstimateTask(dec, lib, hls.Constraints{})
	eEng, _ := hls.EstimateTask(eng, lib, hls.Constraints{})
	for c := 0; c < 8; c++ {
		fn := fmt.Sprintf("fir%d", c)
		dn := fmt.Sprintf("dec%d", c)
		en := fmt.Sprintf("eng%d", c)
		g.MustAddTask(dfg.Task{Name: fn, Type: "fir", Resources: eFIR.CLBs, Delay: eFIR.DelayNS, ReadEnv: 4})
		g.MustAddTask(dfg.Task{Name: dn, Type: "dec", Resources: eDec.CLBs, Delay: eDec.DelayNS})
		g.MustAddTask(dfg.Task{Name: en, Type: "eng", Resources: eEng.CLBs, Delay: eEng.DelayNS, WriteEnv: 1})
		g.MustAddEdge(fn, dn, 4)
		g.MustAddEdge(dn, en, 2)
	}
	board := arch.PaperXC4044Board()
	var p *tempart.Partitioning
	for i := 0; i < b.N; i++ {
		var err error
		p, err = tempart.Solve(tempart.Input{Graph: g, Board: board})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.N), "partitions")
	b.ReportMetric(float64(p.Stats.Nodes), "B&B-nodes")
	b.ReportMetric(float64(p.Stats.PrunedCombinatorial), "nodes-pruned-combinatorial")
	b.ReportMetric(float64(p.Stats.LPSolvesSkipped), "lp-solves-skipped")
	b.ReportMetric(float64(p.Stats.CutsAdded), "cuts-added")
	b.ReportMetric(float64(p.Stats.SeparationRounds), "separation-rounds")
	b.ReportMetric(float64(p.Stats.ConflictCuts), "conflict-cuts")
	b.ReportMetric(float64(p.Stats.CGCuts), "cg-cuts")
	b.ReportMetric(float64(p.Stats.DualBoundFathoms), "dual-bound-fathoms")
	b.ReportMetric(float64(p.Stats.Solver.Pivots), "pivots/op")
	b.ReportMetric(float64(p.Stats.Solver.Refactorizations), "refactorizations/op")
	b.ReportMetric(float64(p.Stats.Solver.BoundFlips), "bound-flips/op")
	b.ReportMetric(p.Stats.SolveTime.Seconds()*1e3, "solve-ms")
}

// benchPackPortfolio loads one pack instance of the committed
// hard-instance portfolio through the schema the tempart portfolio tests
// use (tempart.LoadPortfolioManifest), so the benchmark runs under exactly
// the manifest knobs the tests pin and the two can never drift apart.
func benchPackPortfolio(b *testing.B, file string) {
	dir := filepath.Join("internal", "tempart", "testdata", "portfolio")
	manifest, err := tempart.LoadPortfolioManifest(dir)
	if err != nil {
		b.Fatal(err)
	}
	var entry *tempart.PortfolioInstance
	for i := range manifest.Instances {
		if manifest.Instances[i].File == file {
			entry = &manifest.Instances[i]
			break
		}
	}
	if entry == nil {
		b.Fatalf("portfolio manifest has no entry %q", file)
	}
	data, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		b.Fatal(err)
	}
	var g dfg.Graph
	if err := json.Unmarshal(data, &g); err != nil {
		b.Fatal(err)
	}
	board := arch.SmallTestBoard()
	board.FPGA.CLBs = entry.CLBs
	board.Memory.Words = entry.MemWords
	board.FPGA.ReconfigTime = float64(entry.ReconfigNS)
	var p *tempart.Partitioning
	for i := 0; i < b.N; i++ {
		p, err = tempart.Solve(tempart.Input{
			Graph:              &g,
			Board:              board,
			MaxPartitions:      entry.MaxParts,
			Formulation:        entry.Formulation,
			NoSymmetryBreaking: entry.NoSymmetry,
			DisableWarmStart:   entry.NoWarm,
			ILP:                ilp.Options{MaxNodes: entry.MaxNodes},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if p.N != entry.WantN || !p.Optimal {
		b.Fatalf("N=%d optimal=%v, want %d/true", p.N, p.Optimal, entry.WantN)
	}
	b.ReportMetric(float64(p.N), "partitions")
	b.ReportMetric(float64(p.Stats.Nodes), "B&B-nodes")
	b.ReportMetric(float64(p.Stats.PrunedCombinatorial), "nodes-pruned-combinatorial")
	b.ReportMetric(float64(p.Stats.CutsAdded), "cuts-added")
	b.ReportMetric(float64(p.Stats.ConflictCuts), "conflict-cuts")
	b.ReportMetric(float64(p.Stats.CGCuts), "cg-cuts")
	b.ReportMetric(float64(p.Stats.DualBoundFathoms), "dual-bound-fathoms")
	b.ReportMetric(float64(p.Stats.NProbesPruned), "n-probes-pruned")
	b.ReportMetric(float64(p.Stats.ColumnsGenerated), "columns-generated")
	b.ReportMetric(float64(p.Stats.PricingRounds), "pricing-rounds")
	b.ReportMetric(float64(p.Stats.Solver.Refactorizations), "refactorizations/op")
	b.ReportMetric(float64(p.Stats.Solver.BoundFlips), "bound-flips/op")
	b.ReportMetric(p.Stats.SolveTime.Seconds()*1e3, "solve-ms")
}

// BenchmarkILP_Pack12/15/18 are the near-capacity packing proofs of the
// hard-instance portfolio — the regime the infeasibility-proof engine (CG
// cardinality cuts, conflict learning, bin-packing dual bound) exists for.
// Before the engine they blew their 2000-node budgets; the bench gate now
// fails ANY B&B-node growth over the committed baseline (threshold 0).
func BenchmarkILP_Pack12(b *testing.B) { benchPackPortfolio(b, "pack12.json") }
func BenchmarkILP_Pack15(b *testing.B) { benchPackPortfolio(b, "pack15.json") }
func BenchmarkILP_Pack18(b *testing.B) { benchPackPortfolio(b, "pack18.json") }

// BenchmarkILP_Pack2638 is the mixed-cardinality packing yardstick of the
// branch-and-price formulation: 12×26 + 12×38 CLB items whose optimal
// cover mixes (26,26,38) triples and (38,38) pairs, so every combinatorial
// floor undershoots the optimum (area 8, cardinality 8, optimum 9). The
// manifest forces `formulation: "patterns"`; the set-partitioning master's
// LP bound is exactly 9·delay, the N=8 probe dies at its master root, and
// the gate fails any B&B-node growth over the baseline (threshold 0).
func BenchmarkILP_Pack2638(b *testing.B) { benchPackPortfolio(b, "pack2638.json") }

// BenchmarkDCT8x8Greedy partitions the 128-task 8x8 DCT generalization
// with the greedy baseline (the scale regime beyond the paper's ILP).
func BenchmarkDCT8x8Greedy(b *testing.B) {
	g, err := dctn.BuildGraph(8, hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		b.Fatal(err)
	}
	board := arch.PaperXC4044Board()
	var p *tempart.Partitioning
	for i := 0; i < b.N; i++ {
		p, err = listpart.Solve(g, board, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.N), "partitions")
}

// BenchmarkEndToEndJPEG times the full software JPEG pipeline on a 256x256
// image (the co-design's host side).
func BenchmarkEndToEndJPEG(b *testing.B) {
	im := jpeg.Synthesize(jpeg.Photo, 256, 256, 7)
	var res *jpeg.CompressResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = jpeg.Compress(im, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BitsPerPix, "bits-per-pixel")
	b.ReportMetric(res.PSNRdB, "PSNR-dB")
}

// TestHeadlineReproduction is the one-shot assertion suite over the
// reproduced headline numbers (it runs in go test, keeping the benches
// honest in CI).
func TestHeadlineReproduction(t *testing.T) {
	fixtures(t)
	d := fx.design
	if d.Partitioning.N != 3 || !d.Partitioning.Optimal {
		t.Fatalf("partitioning N=%d optimal=%v", d.Partitioning.N, d.Partitioning.Optimal)
	}
	types := map[int]map[string]int{0: {}, 1: {}, 2: {}}
	for ti := 0; ti < fx.graph.NumTasks(); ti++ {
		types[d.Partitioning.Assign[ti]][fx.graph.Task(ti).Type]++
	}
	if types[0]["T1"] != 16 || types[1]["T2"] != 8 || types[2]["T2"] != 8 {
		t.Errorf("partition contents = %v", types)
	}
	if d.Fission.K != 2048 {
		t.Errorf("k = %d, want 2048", d.Fission.K)
	}
	if fx.static.ClockNS != 100 {
		t.Errorf("static clock = %g, want 100", fx.static.ClockNS)
	}
	if fx.staticD.Cycles < 160 || fx.staticD.Cycles > 170 {
		t.Errorf("static cycles = %d, want 160-170", fx.staticD.Cycles)
	}
	// Partition timings: the calibrated single-port schedule gives
	// 80 cycles @ 50 ns and 40 @ 70 ns (paper: 68/36; see EXPERIMENTS.md
	// note (a)).
	if d.Timings[0].BodyCycles != 80 || d.Timings[0].ClockNS != 50 {
		t.Errorf("partition 1 timing = %+v, want 80 @ 50", d.Timings[0])
	}
	if d.Timings[1].BodyCycles != 40 || d.Timings[1].ClockNS != 70 {
		t.Errorf("partition 2 timing = %+v, want 40 @ 70", d.Timings[1])
	}
	// Table 2 sign structure: IDH wins at 245,760, loses at 3,840, with
	// the improvement pinned to the EXPERIMENTS.md band (26% ± 2).
	sBig, _ := sim.SimulateStatic(fx.static, fx.board, 245760, sim.Options{TraceCap: -1})
	rBig, _ := sim.SimulateRTR(fx.rtr, fx.board, fission.IDH, 245760, sim.Options{TraceCap: -1})
	if imp := sim.Improvement(sBig.TotalNS, rBig.TotalNS); imp < 0.24 || imp > 0.28 {
		t.Errorf("IDH improvement at 245,760 = %.1f%%, want 26%% +/- 2 (paper: 42%%)", 100*imp)
	}
	sSmall, _ := sim.SimulateStatic(fx.static, fx.board, 3840, sim.Options{TraceCap: -1})
	rSmall, _ := sim.SimulateRTR(fx.rtr, fx.board, fission.IDH, 3840, sim.Options{TraceCap: -1})
	if sim.Improvement(sSmall.TotalNS, rSmall.TotalNS) >= 0 {
		t.Error("IDH must lose at 3,840 blocks (reconfiguration dominates)")
	}
	// Table 1: FDH never wins.
	rF, _ := sim.SimulateRTR(fx.rtr, fx.board, fission.FDH, 245760, sim.Options{TraceCap: -1})
	if sim.Improvement(sBig.TotalNS, rF.TotalNS) >= 0 {
		t.Error("FDH must not improve on static at any size")
	}
	// The report mentions the partitioner and board.
	if rep := d.Report(); !strings.Contains(rep, "XC4044") {
		t.Error("report lost the board name")
	}
}

# Build / test / benchmark entry points for the SPARCS reproduction.

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: all build test vet bench bench-smoke race loadtest

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench runs the full benchmark suite once and archives the machine-readable
# result as BENCH_<date>.json, so the perf trajectory accumulates in-tree.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -json . > BENCH_$(DATE).json
	@echo wrote BENCH_$(DATE).json

# bench-smoke is the quick CI variant: just the tempart solver-core benches.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkTempart -benchtime 1x -benchmem .

# race runs the concurrency-heavy packages under the race detector.
race:
	$(GO) test -race -count=1 ./internal/service/... ./internal/ilp/...

# loadtest is the smoke load test: ~100 concurrent requests against an
# in-process sparcsd server, asserting a >= 0.9 cache/singleflight hit rate.
loadtest:
	$(GO) test -race -count=1 -run TestLoadSmoke -v ./internal/service/

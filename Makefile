# Build / test / benchmark entry points for the SPARCS reproduction.

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: all build test vet bench bench-smoke bench-lp bench-gate race chaos loadtest stress stress-short

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench runs the full benchmark suite with a pinned iteration count and
# archives the machine-readable result as BENCH_<date>.json, so the perf
# trajectory accumulates in-tree. BENCHTIME is pinned to a fixed Nx count
# (never a duration): the deterministic search metrics (B&B-nodes,
# nodes-pruned-combinatorial, lp-solves-skipped, pivots/op) need identical
# iteration counts run over run to be comparable at all, and the 3x floor
# averages the wall-clock numbers over three solves so a single scheduling
# hiccup cannot swing ns/op past the bench-gate's 20% tolerance the way the
# old single-iteration runs could.
BENCHTIME ?= 3x
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -count 1 -benchmem -json . > BENCH_$(DATE).json
	@echo wrote BENCH_$(DATE).json

# bench-smoke is the quick CI variant: just the tempart solver-core benches.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkTempart -benchtime 1x -benchmem .

# bench-lp runs the simplex-kernel micro-benches: a dense and a hyper-sparse
# FTRAN against the live LU factor (both must be 0 allocs/op; the sparse one
# additionally asserts >= 90% of singleton solves stay under the density
# gate), the warm-start bound-fix/unfix repair loop (reports pivots,
# refactorizations, and bound flips per op and asserts >= 95% of solves stay
# on the warm path), and the devex vs steepest-edge pricing comparison
# (pivots/op is the argument for the extra FTRAN per dual pivot).
bench-lp:
	$(GO) test -run '^$$' -bench 'BenchmarkLP_(FTRAN|SparseFTRAN|Warm|Pricing)' -count 1 -benchmem ./internal/lp/

# bench-gate runs the suite fresh and fails when a gated metric (allocs/op,
# B&B-nodes, pivots/op, refactorizations/op, bound-flips/op, nodes/sec)
# regresses >20% against the newest committed BENCH_*.json baseline.
bench-gate:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -count 1 -benchmem -json . > /tmp/bench-current.json
	$(GO) run ./cmd/benchgate -old $$(ls BENCH_*.json | sort | tail -1) -new /tmp/bench-current.json

# race runs the concurrency-heavy packages under the race detector:
# service (scheduler/cache, including the traced solve path and the flight
# recorder), obs (the shared trace recorder written by concurrent search
# workers), ilp (parallel search + shared cut pool), and tempart
# (separators and trace spans invoked from concurrent workers).
# tempart runs -short under race: the sequential brute-force property
# tests and portfolio yardsticks add minutes of race overhead but no
# concurrency coverage; the worker-equivalence and cancellation tests that
# exercise the separators and the cut pool concurrently still run.
race:
	$(GO) test -race -count=1 ./internal/service/... ./internal/obs/... ./internal/ilp/...
	$(GO) test -race -count=1 -short ./internal/tempart/...

# chaos builds with the faultinject registry compiled in and runs the whole
# internal tree — the tagged chaos suites (service + lp) arm the fault
# points, and every untagged test re-runs against the chaos build to prove
# the hooks change nothing until armed. Race detector on: the registry and
# the recovery paths are exactly where concurrency bugs would hide.
# tempart runs -short for the same reason as the race lane.
chaos:
	$(GO) test -tags faultinject -race -count=1 $$($(GO) list ./internal/... | grep -v /tempart)
	$(GO) test -tags faultinject -race -count=1 -short ./internal/tempart/...

# loadtest is the smoke load test: ~100 concurrent requests against an
# in-process sparcsd server, asserting a >= 0.9 cache/singleflight hit rate.
loadtest:
	$(GO) test -race -count=1 -run TestLoadSmoke -v ./internal/service/

# stress runs the committed hard-instance portfolio end to end (packing
# infeasibility under node budgets, chained near-capacity instances, FIR
# shapes) with a wall-clock budget — the durable yardstick for pruning and
# cutting-plane work. See internal/tempart/testdata/portfolio/.
stress:
	$(GO) test -run '^$$' -bench BenchmarkHardPortfolio -benchtime 1x -count 1 -timeout 10m ./internal/tempart/

# stress-short is the CI slice of the stress lane: pack12 — the canonical
# near-capacity packing proof — must close within its manifest node budget
# on every push, under both dual pricing rules (the steepest-edge lane
# drives the exact-weight recurrences through thousands of warm-started
# solves), plus the branch-and-price portfolio slice: the mixed-cardinality
# instance (pack2638) and the 102-task chain-of-blocks instance
# (chainblocks102) must both close to proven optimality through the pattern
# master. The full portfolio stays in the manual 10-minute lane.
stress-short:
	$(GO) test -run 'TestHardPortfolio/(pack12|pack2638-patterns|chainblocks102-patterns)|TestHardPortfolioSteepestEdge|TestPatternMixedCardinality2638' -count=1 -v ./internal/tempart/

# Build / test / benchmark entry points for the SPARCS reproduction.

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: all build test vet bench bench-smoke bench-lp bench-gate race chaos loadtest stress stress-short

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench runs the full benchmark suite once with a pinned -benchtime and
# archives the machine-readable result as BENCH_<date>.json, so the perf
# trajectory accumulates in-tree. The deterministic search metrics
# (B&B-nodes, nodes-pruned-combinatorial, lp-solves-skipped, pivots/op)
# make pruning wins visible run over run even when wall-clock is noisy.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 -benchmem -json . > BENCH_$(DATE).json
	@echo wrote BENCH_$(DATE).json

# bench-smoke is the quick CI variant: just the tempart solver-core benches.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkTempart -benchtime 1x -benchmem .

# bench-lp runs the simplex-kernel micro-benches: a single FTRAN against the
# live LU factor (must be 0 allocs/op) and the warm-start bound-fix/unfix
# repair loop (reports pivots, refactorizations, and bound flips per op and
# asserts >= 95% of solves stay on the warm path).
bench-lp:
	$(GO) test -run '^$$' -bench 'BenchmarkLP_(FTRAN|Warm)' -count 1 -benchmem ./internal/lp/

# bench-gate runs the suite fresh and fails when a gated metric (allocs/op,
# B&B-nodes, pivots/op, refactorizations/op, bound-flips/op, nodes/sec)
# regresses >20% against the newest committed BENCH_*.json baseline.
bench-gate:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 -benchmem -json . > /tmp/bench-current.json
	$(GO) run ./cmd/benchgate -old $$(ls BENCH_*.json | sort | tail -1) -new /tmp/bench-current.json

# race runs the concurrency-heavy packages under the race detector:
# service (scheduler/cache, including the traced solve path and the flight
# recorder), obs (the shared trace recorder written by concurrent search
# workers), ilp (parallel search + shared cut pool), and tempart
# (separators and trace spans invoked from concurrent workers).
# tempart runs -short under race: the sequential brute-force property
# tests and portfolio yardsticks add minutes of race overhead but no
# concurrency coverage; the worker-equivalence and cancellation tests that
# exercise the separators and the cut pool concurrently still run.
race:
	$(GO) test -race -count=1 ./internal/service/... ./internal/obs/... ./internal/ilp/...
	$(GO) test -race -count=1 -short ./internal/tempart/...

# chaos builds with the faultinject registry compiled in and runs the whole
# internal tree — the tagged chaos suites (service + lp) arm the fault
# points, and every untagged test re-runs against the chaos build to prove
# the hooks change nothing until armed. Race detector on: the registry and
# the recovery paths are exactly where concurrency bugs would hide.
# tempart runs -short for the same reason as the race lane.
chaos:
	$(GO) test -tags faultinject -race -count=1 $$($(GO) list ./internal/... | grep -v /tempart)
	$(GO) test -tags faultinject -race -count=1 -short ./internal/tempart/...

# loadtest is the smoke load test: ~100 concurrent requests against an
# in-process sparcsd server, asserting a >= 0.9 cache/singleflight hit rate.
loadtest:
	$(GO) test -race -count=1 -run TestLoadSmoke -v ./internal/service/

# stress runs the committed hard-instance portfolio end to end (packing
# infeasibility under node budgets, chained near-capacity instances, FIR
# shapes) with a wall-clock budget — the durable yardstick for pruning and
# cutting-plane work. See internal/tempart/testdata/portfolio/.
stress:
	$(GO) test -run '^$$' -bench BenchmarkHardPortfolio -benchtime 1x -count 1 -timeout 10m ./internal/tempart/

# stress-short is the CI slice of the stress lane: pack12 — the canonical
# near-capacity packing proof — must close within its manifest node budget
# on every push (the full portfolio stays in the manual 10-minute lane).
stress-short:
	$(GO) test -run 'TestHardPortfolio/pack12' -count=1 -v ./internal/tempart/

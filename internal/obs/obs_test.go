package obs

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	sp := r.BeginArg(PhaseProbe, 3)
	sp.End()
	r.Counter(CounterNodes, 7)
	r.Node(1, 2, 3, 4.0, 5.0, true)
	r.Incumbent(1, 4.0)
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil || r.Trace() != nil {
		t.Fatal("nil recorder must be a no-op everywhere")
	}
}

func TestRecorderSpansAndCounters(t *testing.T) {
	r := NewRecorder(64)
	pre := r.Begin(PhasePresolve)
	time.Sleep(time.Millisecond)
	pre.End()
	probe := r.BeginArg(PhaseProbe, 3)
	r.Counter(CounterNodes, 5)
	r.Counter(CounterNodes, 2)
	r.Node(7, 2, 11, 900, 950, true)
	r.Incumbent(7, 950)
	time.Sleep(time.Millisecond)
	probe.End()

	tr := r.Trace()
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %+v, want 2", tr.Spans)
	}
	// Spans sort by start: presolve first.
	if tr.Spans[0].Phase != PhasePresolve || tr.Spans[1].Phase != PhaseProbe {
		t.Fatalf("span order = %+v", tr.Spans)
	}
	if tr.Spans[1].N != 3 {
		t.Fatalf("probe span N = %d, want 3", tr.Spans[1].N)
	}
	for _, sp := range tr.Spans {
		if sp.DurNS <= 0 {
			t.Fatalf("span %q has non-positive duration %d", sp.Phase, sp.DurNS)
		}
	}
	if tr.Counters[CounterNodes] != 7 {
		t.Fatalf("counter = %d, want 7", tr.Counters[CounterNodes])
	}
	if len(tr.Nodes) != 1 || tr.Nodes[0].Frontier != 11 || !tr.Nodes[0].HasIncumbent {
		t.Fatalf("node samples = %+v", tr.Nodes)
	}
	if len(tr.Incumbents) != 1 || tr.Incumbents[0].Obj != 950 {
		t.Fatalf("incumbents = %+v", tr.Incumbents)
	}
	if tr.DurNS < tr.Spans[1].StartNS+tr.Spans[1].DurNS {
		t.Fatalf("trace extent %d shorter than last span end", tr.DurNS)
	}
	if totals := tr.PhaseTotals(); totals[PhaseProbe] != tr.Spans[1].DurNS {
		t.Fatalf("phase totals = %v", totals)
	}
	// The trace must be JSON-marshalable (it rides inside Result).
	if _, err := json.Marshal(tr); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderDropsPastCapacity(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Counter(CounterCuts, 1)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	if tr := r.Trace(); tr.Dropped != 6 || tr.Counters[CounterCuts] != 4 {
		t.Fatalf("trace = %+v", tr)
	}
}

// Unclosed spans (cancellation mid-phase) must not corrupt the summary.
func TestUnclosedSpanIgnored(t *testing.T) {
	r := NewRecorder(16)
	_ = r.Begin(PhaseProbe) // never ended
	done := r.Begin(PhasePresolve)
	done.End()
	tr := r.Trace()
	if len(tr.Spans) != 1 || tr.Spans[0].Phase != PhasePresolve {
		t.Fatalf("spans = %+v, want just the closed presolve span", tr.Spans)
	}
}

// Concurrent recording (parallel B&B workers, speculative probes) must be
// safe; run under -race in the CI race lane.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(1 << 12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := r.BeginArg(PhaseSearch, int64(w))
				r.Counter(CounterNodes, 1)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr := r.Trace()
	// 8 workers × 100 iterations × 3 events = 2400 fits in 4096: nothing
	// drops, every span closes, every counter lands.
	if tr.Dropped != 0 || tr.Counters[CounterNodes] != 800 || len(tr.Spans) != 800 {
		t.Fatalf("dropped=%d counter=%d spans=%d", tr.Dropped, tr.Counters[CounterNodes], len(tr.Spans))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.002) // lands in the (0.001, 0.0025] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.2) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	q := h.Quantile(0.5)
	if q <= 0.001 || q > 0.0025 {
		t.Fatalf("p50 = %g, want within (0.001, 0.0025]", q)
	}
	cum := h.Cumulative()
	if cum[len(cum)-1] != 100 {
		t.Fatalf("+Inf cumulative = %d, want 100", cum[len(cum)-1])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative not monotone: %v", cum)
		}
	}
	// Overflow clamps to the top finite bound.
	h.Observe(1e6)
	if got := h.Quantile(1); got != DefaultLatencyBuckets[len(DefaultLatencyBuckets)-1] {
		t.Fatalf("overflow quantile = %g", got)
	}

	other := NewHistogram(nil)
	other.Observe(0.002)
	h.Merge(other)
	if h.Count() != 102 {
		t.Fatalf("merged count = %d", h.Count())
	}
}

func TestRequestID(t *testing.T) {
	if RequestID(context.Background()) != "" {
		t.Fatal("background ctx must have no request ID")
	}
	ctx := WithRequestID(context.Background(), "job-1")
	if RequestID(ctx) != "job-1" {
		t.Fatalf("request ID = %q", RequestID(ctx))
	}
}

func TestDoNilContext(t *testing.T) {
	ran := false
	Do(nil, "phase", "search", func(ctx context.Context) {
		if ctx != nil {
			t.Fatal("nil ctx must stay nil")
		}
		ran = true
	})
	if !ran {
		t.Fatal("f not run")
	}
	Do(context.Background(), "phase", "search", func(ctx context.Context) {
		if ctx == nil {
			t.Fatal("labeled ctx must be non-nil")
		}
	})
}

// TestNodeNonFiniteFloatsMarshal pins the JSON safety of sampled nodes: the
// searcher reports "no incumbent" as +Inf and a root bound can be infinite,
// but encoding/json rejects non-finite floats, so the recorder must store
// zero (the has_incumbent flag carries the truth).
func TestNodeNonFiniteFloatsMarshal(t *testing.T) {
	r := NewRecorder(16)
	r.Node(1, 0, 3, math.Inf(-1), math.Inf(1), false)
	r.Node(2, 1, 2, math.NaN(), math.NaN(), true)
	tr := r.Trace()
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("trace with non-finite inputs does not marshal: %v", err)
	}
	if len(tr.Nodes) != 2 {
		t.Fatalf("got %d node samples, want 2", len(tr.Nodes))
	}
	for _, n := range tr.Nodes {
		if n.Bound != 0 || n.Incumbent != 0 {
			t.Errorf("non-finite floats leaked into sample %+v", n)
		}
	}
	if tr.Nodes[0].HasIncumbent || !tr.Nodes[1].HasIncumbent {
		t.Errorf("has_incumbent flags wrong: %+v", tr.Nodes)
	}
}

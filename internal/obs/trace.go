package obs

import "sort"

// TraceSpan is one closed span in a summarized trace.
type TraceSpan struct {
	Phase string `json:"phase"`
	// N is the span argument (the probed partition count for probe /
	// model-build / search spans; 0 when not applicable).
	N       int64 `json:"n,omitempty"`
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// TraceNode is one sampled branch-and-bound node.
type TraceNode struct {
	TSNS     int64   `json:"ts_ns"`
	Ordinal  int64   `json:"ordinal"`
	Depth    int64   `json:"depth"`
	Frontier int64   `json:"frontier"`
	Bound    float64 `json:"bound"`
	// Incumbent is the best objective known when the node was absorbed;
	// HasIncumbent false means the search had no feasible solution yet.
	Incumbent    float64 `json:"incumbent,omitempty"`
	HasIncumbent bool    `json:"has_incumbent,omitempty"`
}

// TraceIncumbent is one incumbent improvement.
type TraceIncumbent struct {
	TSNS    int64   `json:"ts_ns"`
	Ordinal int64   `json:"node"`
	Obj     float64 `json:"obj"`
}

// Trace is the JSON-facing summary of a recorder: the phase timeline, the
// accumulated counters, and the sampled search progression. It is what a
// trace=1 solve returns inside Result.
type Trace struct {
	Spans      []TraceSpan      `json:"spans"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Incumbents []TraceIncumbent `json:"incumbents,omitempty"`
	Nodes      []TraceNode      `json:"node_samples,omitempty"`
	// DurNS is the timestamp of the last recorded event — the traced
	// window's extent on the recorder's own clock.
	DurNS int64 `json:"dur_ns"`
	// Dropped counts events lost to the recorder's capacity bound; a
	// nonzero value means the timeline is truncated, not wrong.
	Dropped int64 `json:"dropped_events,omitempty"`
}

// Trace summarizes the recorded events. Only closed spans appear (an
// unfinished span — e.g. cancelled mid-probe — contributes nothing).
// Returns nil on a nil recorder.
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	events := r.Events()
	tr := &Trace{Dropped: r.Dropped()}
	for _, ev := range events {
		if ev.TS > tr.DurNS {
			tr.DurNS = ev.TS
		}
		switch ev.Kind {
		case KindEnd:
			tr.Spans = append(tr.Spans, TraceSpan{
				Phase: ev.Name, N: ev.Arg,
				StartNS: ev.Value, DurNS: ev.TS - ev.Value,
			})
		case KindCounter:
			if tr.Counters == nil {
				tr.Counters = make(map[string]int64)
			}
			tr.Counters[ev.Name] += ev.Value
		case KindNode:
			tr.Nodes = append(tr.Nodes, TraceNode{
				TSNS: ev.TS, Ordinal: ev.Value, Depth: ev.Arg,
				Frontier: ev.Aux, Bound: ev.F1,
				Incumbent: ev.F2, HasIncumbent: ev.Aux2 != 0,
			})
		case KindIncumbent:
			tr.Incumbents = append(tr.Incumbents, TraceIncumbent{
				TSNS: ev.TS, Ordinal: ev.Value, Obj: ev.F1,
			})
		}
	}
	sort.SliceStable(tr.Spans, func(a, b int) bool {
		return tr.Spans[a].StartNS < tr.Spans[b].StartNS
	})
	return tr
}

// PhaseTotals sums closed-span durations per phase name. Nested spans
// (model-build inside probe) each count toward their own phase, so totals
// are per-phase cumulative time, not a partition of wall clock.
func (t *Trace) PhaseTotals() map[string]int64 {
	if t == nil || len(t.Spans) == 0 {
		return nil
	}
	out := make(map[string]int64, 4)
	for _, sp := range t.Spans {
		out[sp.Phase] += sp.DurNS
	}
	return out
}

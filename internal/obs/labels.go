package obs

import (
	"context"
	"runtime/pprof"
)

// requestIDKey carries the request/job ID through the solve pipeline.
type requestIDKey struct{}

// WithRequestID attaches a request (job) ID to ctx for structured logging
// downstream of the scheduler.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID attached by WithRequestID, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Do runs f under a pprof label pair so CPU/goroutine profiles segment by
// it (e.g. key "phase", value "search"). A nil ctx — the batch/benchmark
// path, which never threads a context — runs f directly with no label
// machinery and no allocation, preserving the zero-cost-when-disabled
// contract.
func Do(ctx context.Context, key, value string, f func(context.Context)) {
	if ctx == nil {
		f(nil)
		return
	}
	pprof.Do(ctx, pprof.Labels(key, value), f)
}

package obs

import (
	"testing"
)

// The tentpole contract: tracing disabled (a nil recorder threaded through
// Options/Input) must cost nothing on the node hot path. This pins it
// directly — the LP/DCT-level enforcement is benchgate on
// BenchmarkLP_FTRAN / BenchmarkILP_DCTPartitioning allocs.
func TestDisabledTraceZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.BeginArg(PhaseSearch, 3)
		r.Counter(CounterNodes, 1)
		r.Node(1, 2, 3, 4, 5, true)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates %v allocs/op, want 0", allocs)
	}
}

// Enabled steady-state recording must be allocation-free: once the event
// buffer has grown past the working set, a solve's tracing cost is bounded
// by the mutex and a struct copy per event. The pre-warm loop pushes the
// geometric growth past everything AllocsPerRun will record (warmup run
// included), so the measurement sees only the fast path.
func TestEnabledTraceZeroAlloc(t *testing.T) {
	r := NewRecorder(1 << 16)
	for i := 0; i < 4200; i++ {
		r.Counter(CounterNodes, 1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.BeginArg(PhaseSearch, 3)
		r.Counter(CounterNodes, 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("enabled trace path allocates %v allocs/op, want 0", allocs)
	}
}

// TestRecorderLazyGrowth gates the traced-solve allocation spike: a
// high-capacity recorder must not pay for its capacity up front. Storage
// starts empty, grows 64 → double → capacity clamp, and keeps counting
// drops past the bound.
func TestRecorderLazyGrowth(t *testing.T) {
	r := NewRecorder(1 << 16)
	if len(r.events) != 0 {
		t.Fatalf("NewRecorder preallocated %d events, want 0 (lazy)", len(r.events))
	}
	for i := 0; i < 10; i++ {
		r.Counter(CounterNodes, 1)
	}
	if len(r.events) != 64 {
		t.Fatalf("after 10 events buffer holds %d, want first chunk of 64", len(r.events))
	}
	for i := 10; i < 200; i++ {
		r.Counter(CounterNodes, 1)
	}
	if len(r.events) != 256 {
		t.Fatalf("after 200 events buffer holds %d, want geometric 256", len(r.events))
	}
	if r.Len() != 200 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 200/0", r.Len(), r.Dropped())
	}
	// The clamp: a capacity below the next doubling is hit exactly.
	small := NewRecorder(100)
	for i := 0; i < 120; i++ {
		small.Counter(CounterNodes, 1)
	}
	if len(small.events) != 100 || small.Len() != 100 || small.Dropped() != 20 {
		t.Fatalf("clamped recorder: buf=%d Len=%d Dropped=%d, want 100/100/20",
			len(small.events), small.Len(), small.Dropped())
	}
}

// BenchmarkTraceDisabled measures the per-event-site cost with tracing
// off: the nil checks the solver pays on every span/counter site.
func BenchmarkTraceDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.BeginArg(PhaseSearch, 3)
		r.Counter(CounterNodes, 1)
		sp.End()
	}
}

// BenchmarkTraceEnabled measures the recording fast path (preallocated
// ring, uncontended mutex).
func BenchmarkTraceEnabled(b *testing.B) {
	r := NewRecorder(1 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.BeginArg(PhaseSearch, 3)
		r.Counter(CounterNodes, 1)
		sp.End()
	}
}

package obs

import (
	"testing"
)

// The tentpole contract: tracing disabled (a nil recorder threaded through
// Options/Input) must cost nothing on the node hot path. This pins it
// directly — the LP/DCT-level enforcement is benchgate on
// BenchmarkLP_FTRAN / BenchmarkILP_DCTPartitioning allocs.
func TestDisabledTraceZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.BeginArg(PhaseSearch, 3)
		r.Counter(CounterNodes, 1)
		r.Node(1, 2, 3, 4, 5, true)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates %v allocs/op, want 0", allocs)
	}
}

// Enabled recording must also be allocation-free: all event storage is
// preallocated in NewRecorder, so a solve's tracing cost is bounded by the
// mutex and a struct copy per event.
func TestEnabledTraceZeroAlloc(t *testing.T) {
	r := NewRecorder(1 << 16)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.BeginArg(PhaseSearch, 3)
		r.Counter(CounterNodes, 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("enabled trace path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkTraceDisabled measures the per-event-site cost with tracing
// off: the nil checks the solver pays on every span/counter site.
func BenchmarkTraceDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.BeginArg(PhaseSearch, 3)
		r.Counter(CounterNodes, 1)
		sp.End()
	}
}

// BenchmarkTraceEnabled measures the recording fast path (preallocated
// ring, uncontended mutex).
func BenchmarkTraceEnabled(b *testing.B) {
	r := NewRecorder(1 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.BeginArg(PhaseSearch, 3)
		r.Counter(CounterNodes, 1)
		sp.End()
	}
}

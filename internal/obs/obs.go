// Package obs is the solver stack's observability kernel: a bounded,
// preallocated trace recorder the pipeline layers (tempart, ilp, lp
// snapshots, service) write span/counter/node events into, plus the
// fixed-bucket latency histograms and pprof/request-id label helpers the
// service exports them through.
//
// The design constraint that shapes everything here is the allocation-free
// node hot path: tracing must cost literally nothing when disabled. All
// Recorder methods are nil-receiver safe no-ops, so call sites thread a
// `*Recorder` through Options/Input structs unconditionally and never
// branch — a disabled trace is one nil check per event site. When enabled,
// events land in a preallocated ring guarded by a mutex (recording is rare
// next to simplex work: one span per solver phase, one sample per N
// branch-and-bound nodes), and past capacity events are counted as dropped
// rather than grown.
package obs

import (
	"math"
	"sync"
	"time"
)

// Phase names recorded by the solver pipeline. tempart owns the first
// four; PhaseSearch wraps the branch-and-cut run inside each probe.
const (
	// PhasePresolve covers path enumeration, DAG bound computation, and
	// greedy warm-start construction, before any N is probed.
	PhasePresolve = "presolve"
	// PhaseProbe is one relax-N iteration (arg = N). Probe spans overlap
	// when the speculative ladder runs them concurrently.
	PhaseProbe = "probe"
	// PhaseModelBuild is ILP model construction for one N (arg = N).
	PhaseModelBuild = "model-build"
	// PhaseRootCut is the root cutting-plane emission inside model build.
	PhaseRootCut = "root-cut"
	// PhaseSearch is the branch-and-cut search for one N (arg = N).
	PhaseSearch = "search"
)

// Counter names. The lp_* counters are SolverStats deltas snapshotted at
// search-span boundaries; the rest are emitted live by the ilp search.
const (
	CounterLPPivots   = "lp_pivots"
	CounterLPRefactor = "lp_refactorizations"
	CounterLPFlips    = "lp_bound_flips"
	CounterNodes      = "bb_nodes"
	CounterCuts       = "cuts_added"
	CounterSepRounds  = "separation_rounds"
	CounterConflicts  = "conflict_cuts"
)

// Kind discriminates trace events.
type Kind uint8

const (
	KindBegin Kind = 1 + iota
	KindEnd
	KindCounter
	KindNode
	KindIncumbent
)

// Event is one trace record. Field meaning varies by Kind:
//
//   - KindBegin:     Name = span name, Arg = span argument (e.g. probe N).
//   - KindEnd:       Name/Arg as Begin; Value = the matching begin
//     timestamp, so summarization never needs to pair events.
//   - KindCounter:   Name = counter name, Value = delta to add.
//   - KindNode:      Value = node ordinal, Arg = depth, Aux = frontier
//     size, F1 = node LP bound, F2 = incumbent objective (Aux2 = 0 when
//     no incumbent exists yet).
//   - KindIncumbent: Value = node ordinal at acceptance, F1 = objective.
type Event struct {
	TS    int64 // ns since the recorder's start (monotonic clock)
	Kind  Kind
	Name  string
	Value int64
	Arg   int64
	Aux   int64
	Aux2  int64
	F1    float64
	F2    float64
}

// Recorder collects events into a lazily grown, capacity-bounded buffer.
// The zero value is not usable; construct with NewRecorder. A nil
// *Recorder is the disabled state: every method no-ops.
type Recorder struct {
	start   time.Time
	mu      sync.Mutex
	events  []Event
	n       int
	cap     int
	dropped int64
}

// NewRecorder returns a recorder holding up to capacity events
// (<= 0 selects 4096). Event storage grows geometrically on demand
// (64 events, then doubling, clamped to the capacity): a short traced
// solve — a handful of spans and counters — costs a few KB instead of the
// full capacity's worth, which used to dominate the traced hot path's
// allocation profile. A grow step is a rare amortized copy under the same
// mutex recording already takes; steady-state recording never allocates.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{start: time.Now(), cap: capacity}
}

// since is the recorder's monotonic clock.
func (r *Recorder) since() int64 { return int64(time.Since(r.start)) }

// record appends ev, counting it as dropped past capacity.
func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	if r.n == len(r.events) && r.n < r.cap {
		next := 2 * len(r.events)
		if next == 0 {
			next = 64
		}
		if next > r.cap {
			next = r.cap
		}
		grown := make([]Event, next)
		copy(grown, r.events)
		r.events = grown
	}
	if r.n < len(r.events) {
		r.events[r.n] = ev
		r.n++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Span is an open interval started by Begin. End may be called exactly
// once; the zero Span (from a nil Recorder) ends as a no-op.
type Span struct {
	r     *Recorder
	name  string
	arg   int64
	start int64
}

// Begin opens a span.
func (r *Recorder) Begin(name string) Span { return r.BeginArg(name, 0) }

// BeginArg opens a span with an argument (e.g. the probed N).
func (r *Recorder) BeginArg(name string, arg int64) Span {
	if r == nil {
		return Span{}
	}
	ts := r.since()
	r.record(Event{TS: ts, Kind: KindBegin, Name: name, Arg: arg})
	return Span{r: r, name: name, arg: arg, start: ts}
}

// End closes the span. The end event carries the begin timestamp, so
// spans need no pairing pass and concurrent (overlapping) spans of the
// same name summarize correctly.
func (sp Span) End() {
	if sp.r == nil {
		return
	}
	sp.r.record(Event{
		TS: sp.r.since(), Kind: KindEnd,
		Name: sp.name, Value: sp.start, Arg: sp.arg,
	})
}

// Counter adds delta to the named counter.
func (r *Recorder) Counter(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.record(Event{TS: r.since(), Kind: KindCounter, Name: name, Value: delta})
}

// Node records one sampled branch-and-bound node: its ordinal, depth,
// frontier size at absorption, LP bound, and the incumbent objective
// (hasIncumbent false when no feasible solution exists yet). Non-finite
// floats are stored as zero: the searcher's "no incumbent" is +Inf and a
// root bound can be ±Inf, but the trace must marshal to JSON, which has no
// encoding for them (the flags/zero stand in).
func (r *Recorder) Node(ordinal int64, depth, frontier int, bound, incumbent float64, hasIncumbent bool) {
	if r == nil {
		return
	}
	var has int64
	if hasIncumbent {
		has = 1
	}
	if !hasIncumbent || math.IsInf(incumbent, 0) || math.IsNaN(incumbent) {
		incumbent = 0
	}
	if math.IsInf(bound, 0) || math.IsNaN(bound) {
		bound = 0
	}
	r.record(Event{
		TS: r.since(), Kind: KindNode, Value: ordinal,
		Arg: int64(depth), Aux: int64(frontier), Aux2: has,
		F1: bound, F2: incumbent,
	})
}

// Incumbent records an incumbent improvement at the given node ordinal.
func (r *Recorder) Incumbent(ordinal int64, obj float64) {
	if r == nil {
		return
	}
	r.record(Event{TS: r.since(), Kind: KindIncumbent, Value: ordinal, F1: obj})
}

// Dropped returns the number of events lost to the capacity bound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Events returns a copy of the recorded events (tests, summarization).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	copy(out, r.events[:r.n])
	return out
}

package obs

// DefaultLatencyBuckets are the fixed histogram upper bounds (seconds)
// the service uses for solve latency: 100 µs to 10 s in a 1-2.5-5 ladder,
// spanning the DCT fast path (~80 µs) through multi-second hard-instance
// proofs. Exported so dashboards and tests agree on the layout.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram in the Prometheus mold: counts
// per upper bound plus an implicit +Inf overflow bucket, a running sum,
// and interpolated quantiles for the legacy summary lines. Not safe for
// concurrent use — callers (service.Metrics) hold their own lock.
type Histogram struct {
	uppers []float64
	counts []uint64 // len(uppers)+1; last is the +Inf overflow
	sum    float64
	total  uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (nil selects DefaultLatencyBuckets).
func NewHistogram(uppers []float64) *Histogram {
	if len(uppers) == 0 {
		uppers = DefaultLatencyBuckets
	}
	return &Histogram{uppers: uppers, counts: make([]uint64, len(uppers)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Uppers returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Uppers() []float64 { return h.uppers }

// Cumulative returns the Prometheus-style cumulative bucket counts: one
// per upper bound, then the +Inf total.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		out[i] = run
	}
	return out
}

// Merge folds other into h. Both must share the same bucket layout.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	h.total += other.total
}

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// the bucket that holds the target rank, the usual histogram_quantile
// estimate. Returns 0 on an empty histogram; ranks landing in the +Inf
// overflow clamp to the largest finite upper bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.total)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.uppers[i-1]
		}
		if float64(cum+c) >= rank {
			if i == len(h.uppers) {
				// Overflow bucket has no finite upper edge.
				return h.uppers[len(h.uppers)-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (h.uppers[i]-lo)*frac
		}
		cum += c
	}
	return h.uppers[len(h.uppers)-1]
}

//go:build !faultinject

package faultinject

import "time"

// Enabled reports whether fault injection was compiled in.
func Enabled() bool { return false }

// Arm is a no-op without the faultinject build tag.
func Arm(point string, n int) {}

// ArmDelay is a no-op without the faultinject build tag.
func ArmDelay(point string, n int, d time.Duration) {}

// Disarm is a no-op without the faultinject build tag.
func Disarm(point string) {}

// Reset is a no-op without the faultinject build tag.
func Reset() {}

// Fire reports false: no fault point ever fires in a production build.
// It is small enough to inline, so hooks cost one dead branch.
func Fire(point string) bool { return false }

// Delay reports zero in a production build.
func Delay(point string) time.Duration { return 0 }

// Fired reports zero in a production build.
func Fired(point string) int { return 0 }

// Package faultinject is the chaos-testing seam for sparcsd: a registry of
// named fault points compiled in only under the `faultinject` build tag.
//
// Production builds (no tag) compile every hook down to a constant-false
// branch — Fire is a tiny leaf function returning false, so the solver hot
// paths keep their allocation-free, branch-predicted profile and the bench
// gate sees no change. Chaos builds (`go test -tags faultinject ...`, `make
// chaos`) get the real registry: tests arm a point for its next N triggers,
// run traffic, and assert the service keeps serving correct results, the
// metrics stay consistent, and the cache is never poisoned.
//
// The fault points and where they hook:
//
//	lu-refactor-fail   internal/lp: a basis reinversion reports singular —
//	                   maybeRefactor keeps the old factor; a rejected
//	                   Forrest–Tomlin update falls back to a cold solve.
//	lu-singular-factor internal/lp: a from-scratch basis factorization
//	                   reports singular, exercising the cold-start error
//	                   path up through the ILP search.
//	worker-panic       internal/service: the solve backend panics on a
//	                   worker goroutine; the recover() ladder must convert
//	                   it into a failed job with the stack captured.
//	slow-solve         internal/service: the backend stalls for the armed
//	                   delay before solving, forcing deadline expiry
//	                   deterministically.
//	cache-verify-fail  internal/service: a cache hit fails its feasibility
//	                   re-verification, forcing the remap-fallback fresh
//	                   solve.
//	lp-sparse-fallback internal/lp: the hyper-sparse FTRAN/BTRAN symbolic
//	                   pass reports over-threshold fill, forcing the dense
//	                   fallback path the density gate normally reserves
//	                   for near-dense results.
package faultinject

import "time"

// Named fault points. Arm takes any string, but hooks in the tree only
// consult these.
const (
	LURefactorFail   = "lu-refactor-fail"
	LUSingularFactor = "lu-singular-factor"
	WorkerPanic      = "worker-panic"
	SlowSolve           = "slow-solve"
	CacheVerifyFail     = "cache-verify-fail"
	SparseSolveFallback = "lp-sparse-fallback"
)

// DefaultDelay is the stall applied by delay-style points (slow-solve) when
// armed without an explicit duration.
const DefaultDelay = 150 * time.Millisecond

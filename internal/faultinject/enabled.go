//go:build faultinject

package faultinject

import (
	"sync"
	"time"
)

type point struct {
	remaining int // shots left; negative = unlimited
	fired     int
	delay     time.Duration
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

// Enabled reports whether fault injection was compiled in.
func Enabled() bool { return true }

// Arm schedules the named point to fire on its next n triggers (n < 0 arms
// it until Disarm/Reset). Re-arming replaces the previous shot count but
// keeps the fired tally.
func Arm(name string, n int) { ArmDelay(name, n, 0) }

// ArmDelay arms the point like Arm and attaches a delay for delay-style
// hooks (slow-solve). d == 0 selects DefaultDelay at the hook site.
func ArmDelay(name string, n int, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil {
		p = &point{}
		points[name] = p
	}
	p.remaining = n
	p.delay = d
}

// Disarm clears the point's remaining shots (the fired tally survives).
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		p.remaining = 0
	}
}

// Reset disarms every point and zeroes all tallies.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
}

// Fire consumes one armed shot of the named point and reports whether the
// fault should trigger. Unarmed (or exhausted) points report false.
func Fire(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil || p.remaining == 0 {
		return false
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.fired++
	return true
}

// Delay returns the stall attached to the point by ArmDelay, falling back
// to DefaultDelay when the point was armed without one.
func Delay(name string) time.Duration {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil && p.delay > 0 {
		return p.delay
	}
	return DefaultDelay
}

// Fired reports how many times the point has fired since the last Reset.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.fired
	}
	return 0
}

//go:build faultinject

package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestArmFireDisarm(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	if Fire(WorkerPanic) {
		t.Fatal("unarmed point fired")
	}
	Arm(WorkerPanic, 2)
	if !Fire(WorkerPanic) || !Fire(WorkerPanic) {
		t.Fatal("armed point did not fire its two shots")
	}
	if Fire(WorkerPanic) {
		t.Fatal("point fired past its shot count")
	}
	if got := Fired(WorkerPanic); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}

	Arm(WorkerPanic, -1)
	for i := 0; i < 5; i++ {
		if !Fire(WorkerPanic) {
			t.Fatal("permanently armed point stopped firing")
		}
	}
	Disarm(WorkerPanic)
	if Fire(WorkerPanic) {
		t.Fatal("disarmed point fired")
	}
	if got := Fired(WorkerPanic); got != 7 {
		t.Fatalf("Fired after disarm = %d, want 7 (tally survives)", got)
	}
}

func TestDelay(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	Arm(SlowSolve, 1)
	if got := Delay(SlowSolve); got != DefaultDelay {
		t.Fatalf("Delay = %v, want DefaultDelay %v", got, DefaultDelay)
	}
	ArmDelay(SlowSolve, 1, 42*time.Millisecond)
	if got := Delay(SlowSolve); got != 42*time.Millisecond {
		t.Fatalf("Delay = %v, want 42ms", got)
	}
}

func TestConcurrentFireIsBounded(t *testing.T) {
	Reset()
	t.Cleanup(Reset)

	const shots = 100
	Arm(CacheVerifyFail, shots)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 1000; i++ {
				if Fire(CacheVerifyFail) {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != shots {
		t.Fatalf("concurrent fires = %d, want exactly %d", total, shots)
	}
	if got := Fired(CacheVerifyFail); got != shots {
		t.Fatalf("Fired = %d, want %d", got, shots)
	}
}

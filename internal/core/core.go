// Package core is the top-level design flow of the paper's Fig. 2 — the
// role the SPARCS environment plays around the two contributions: starting
// from a behavior-level task graph it runs task estimation (internal/hls),
// temporal partitioning (internal/tempart, or the internal/listpart
// baseline), loop fission analysis (internal/fission), per-partition
// synthesis with the augmented RTR controller, memory block layout
// (internal/memmap), RTL generation (internal/rtl), host sequencer code
// generation, and finally execution-time evaluation on the simulated board
// (internal/sim).
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/ilp"
	"repro/internal/listpart"
	"repro/internal/memmap"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/tempart"
)

// PartitionerKind selects the temporal partitioning algorithm.
type PartitionerKind int

const (
	// ILPPartitioner is the paper's optimal ILP formulation.
	ILPPartitioner PartitionerKind = iota
	// ListPartitioner is the greedy baseline of Sec. 4's comparison.
	ListPartitioner
)

func (k PartitionerKind) String() string {
	switch k {
	case ILPPartitioner:
		return "ilp"
	case ListPartitioner:
		return "list"
	}
	return fmt.Sprintf("PartitionerKind(%d)", int(k))
}

// Config parameterizes the flow.
type Config struct {
	Board       arch.Board
	Library     *hls.Library
	Constraints hls.Constraints
	Partitioner PartitionerKind
	// Strategy is the loop fission sequencing strategy.
	Strategy fission.Strategy
	// Pow2Blocks selects the power-of-two memory block layout of Sec. 3.
	Pow2Blocks bool
	// PathCap bounds exact path enumeration.
	PathCap int
	// ILP tunes the branch-and-bound search (ILPPartitioner only); in
	// particular ILP.Workers enables the parallel subtree search.
	ILP ilp.Options
	// SpeculateN enables tempart's speculative relax-N loop: up to this many
	// candidate partition counts are probed concurrently (<= 1 sequential).
	SpeculateN int
	// Formulation selects the ILP model ("" or tempart.FormulationRows for
	// the row model, tempart.FormulationPatterns for branch-and-price over
	// partition-pattern columns).
	Formulation string
	// MaxPartitions caps the relax-N loop (0 keeps tempart's default
	// lower-bound+8 window; instances whose area floor sits far below the
	// packing need must widen it).
	MaxPartitions int
}

// DefaultConfig returns the paper's case-study configuration.
func DefaultConfig() Config {
	return Config{
		Board:   arch.PaperXC4044Board(),
		Library: hls.XC4000Library(),
	}
}

// Design is a fully processed RTR design.
type Design struct {
	Graph        *dfg.Graph
	Config       Config
	Partitioning *tempart.Partitioning
	Fission      *fission.Analysis
	// Synthesized holds per-partition synthesis results when the task
	// graph carries behavioral payloads (nil entries otherwise).
	Synthesized []*hls.PartitionDesign
	// Timings drive the simulator (derived from synthesis when available,
	// otherwise from the task-level delay estimates).
	Timings []sim.PartitionTiming
	// Layouts are the per-partition memory block layouts.
	Layouts []*memmap.Layout
	// Sequencer is the generated host software loop.
	Sequencer string
}

// ErrNilGraph is returned when Build is called without a graph.
var ErrNilGraph = errors.New("core: nil task graph")

// Build runs the flow: partition, fission analysis, synthesis, layout, and
// sequencer generation.
func Build(g *dfg.Graph, cfg Config) (*Design, error) {
	return BuildContext(context.Background(), g, cfg)
}

// BuildContext is Build with request-scoped cancellation threaded down to
// the partitioner's branch-and-bound search (via tempart.SolveContext and
// ilp.Options.Context). Cancelling ctx makes the flow return ctx.Err()
// promptly, even mid-search.
func BuildContext(ctx context.Context, g *dfg.Graph, cfg Config) (*Design, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if cfg.Library == nil {
		cfg.Library = hls.XC4000Library()
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Board.Validate(); err != nil {
		return nil, err
	}

	var part *tempart.Partitioning
	var err error
	switch cfg.Partitioner {
	case ILPPartitioner:
		part, err = tempart.SolveContext(ctx, tempart.Input{
			Graph: g, Board: cfg.Board, PathCap: cfg.PathCap, ILP: cfg.ILP,
			SpeculateN: cfg.SpeculateN, Formulation: cfg.Formulation,
			MaxPartitions: cfg.MaxPartitions,
		})
	case ListPartitioner:
		part, err = listpart.Solve(g, cfg.Board, cfg.PathCap)
	default:
		return nil, fmt.Errorf("core: unknown partitioner %v", cfg.Partitioner)
	}
	if err != nil {
		return nil, fmt.Errorf("core: partitioning: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	d := &Design{Graph: g, Config: cfg, Partitioning: part}
	if part.N == 0 {
		return d, nil
	}

	d.Fission, err = fission.Analyze(g, part.Assign, part.N, cfg.Board.Memory.Words)
	if err != nil {
		return nil, fmt.Errorf("core: fission analysis: %w", err)
	}

	// Per-partition synthesis: use behavioral payloads when present.
	d.Synthesized = make([]*hls.PartitionDesign, part.N)
	d.Timings = make([]sim.PartitionTiming, part.N)
	for p := 0; p < part.N; p++ {
		var behaviors []*hls.OpGraph
		for t := 0; t < g.NumTasks(); t++ {
			if part.Assign[t] != p {
				continue
			}
			if og, ok := g.Task(t).Payload.(*hls.OpGraph); ok {
				behaviors = append(behaviors, og)
			}
		}
		if len(behaviors) > 0 && allHaveBehaviors(g, part.Assign, p) {
			pd, err := hls.SynthesizePartition(behaviors, cfg.Library, cfg.Constraints)
			if err != nil {
				return nil, fmt.Errorf("core: synthesizing partition %d: %w", p, err)
			}
			d.Synthesized[p] = pd
			d.Timings[p] = sim.PartitionTiming{BodyCycles: pd.Cycles, ClockNS: pd.ClockNS}
			continue
		}
		// Fallback: task-level delay estimate as a 1 ns-cycle body.
		cycles := int(part.Delays[p])
		if cycles < 1 {
			cycles = 1
		}
		d.Timings[p] = sim.PartitionTiming{BodyCycles: cycles, ClockNS: 1}
	}

	// Memory block layout per partition: one input and one output segment
	// per computation (Fig. 6 groups all of a partition's data flows).
	d.Layouts = make([]*memmap.Layout, part.N)
	for p := 0; p < part.N; p++ {
		var segs []memmap.Segment
		if d.Fission.In[p] > 0 {
			segs = append(segs, memmap.Segment{Name: fmt.Sprintf("P%d_in", p), Words: d.Fission.In[p]})
		}
		if d.Fission.Out[p] > 0 {
			segs = append(segs, memmap.Segment{Name: fmt.Sprintf("P%d_out", p), Words: d.Fission.Out[p]})
		}
		if len(segs) == 0 {
			continue
		}
		l, err := memmap.NewLayout(segs)
		if err != nil {
			return nil, fmt.Errorf("core: layout for partition %d: %w", p, err)
		}
		d.Layouts[p] = l
	}

	d.Sequencer = fission.SequencerCode(cfg.Strategy, part.N)
	return d, nil
}

func allHaveBehaviors(g *dfg.Graph, assign []int, p int) bool {
	for t := 0; t < g.NumTasks(); t++ {
		if assign[t] != p {
			continue
		}
		if _, ok := g.Task(t).Payload.(*hls.OpGraph); !ok {
			return false
		}
	}
	return true
}

// PartitionCLBs returns each partition's summed task resource usage (used
// by partial-reconfiguration boards to scale configuration loads).
func (d *Design) PartitionCLBs() []int {
	if d.Partitioning == nil || d.Partitioning.N == 0 {
		return nil
	}
	clbs := make([]int, d.Partitioning.N)
	for t := 0; t < d.Graph.NumTasks(); t++ {
		clbs[d.Partitioning.Assign[t]] += d.Graph.Task(t).Resources
	}
	return clbs
}

// Simulate executes I computations of the design on the configured board.
func (d *Design) Simulate(iTotal int, opt sim.Options) (*sim.Result, error) {
	if d.Partitioning == nil || d.Partitioning.N == 0 {
		return nil, errors.New("core: design has no partitions to simulate")
	}
	opt.Pow2Blocks = d.Config.Pow2Blocks
	return sim.SimulateRTR(sim.RTRDesign{
		Partitions:    d.Timings,
		Analysis:      d.Fission,
		PartitionCLBs: d.PartitionCLBs(),
	}, d.Config.Board, d.Config.Strategy, iTotal, opt)
}

// Netlists generates RTL for every synthesized partition (nil entries for
// partitions without behavioral payloads).
func (d *Design) Netlists() ([]*rtl.Netlist, error) {
	out := make([]*rtl.Netlist, len(d.Synthesized))
	for p, pd := range d.Synthesized {
		if pd == nil {
			continue
		}
		n, err := rtl.FromPartition(fmt.Sprintf("%s_p%d", d.Graph.Name, p), pd, d.Config.Library, true)
		if err != nil {
			return nil, err
		}
		if err := n.Check(); err != nil {
			return nil, err
		}
		out[p] = n
	}
	return out, nil
}

// Report renders a human-readable design summary.
func (d *Design) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %q on %s (%d CLBs, %d-word memory, CT=%.1f ms)\n",
		d.Graph.Name, d.Config.Board.Name, d.Config.Board.FPGA.CLBs,
		d.Config.Board.Memory.Words, d.Config.Board.FPGA.ReconfigTime/arch.Millisecond)
	p := d.Partitioning
	if p == nil || p.N == 0 {
		b.WriteString("  empty design\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  partitioner: %s (optimal=%v), N=%d, latency=%.0f ns\n",
		d.Config.Partitioner, p.Optimal, p.N, p.Latency)
	for i := 0; i < p.N; i++ {
		var names []string
		res := 0
		for t := 0; t < d.Graph.NumTasks(); t++ {
			if p.Assign[t] == i {
				names = append(names, d.Graph.Task(t).Name)
				res += d.Graph.Task(t).Resources
			}
		}
		fmt.Fprintf(&b, "  partition %d: %d tasks, %d CLBs, d_p=%.0f ns", i+1, len(names), res, p.Delays[i])
		if d.Fission != nil {
			fmt.Fprintf(&b, ", m_temp=%d words", d.Fission.MTemp[i])
		}
		if d.Timings != nil {
			fmt.Fprintf(&b, ", %d cycles @ %.0f ns", d.Timings[i].BodyCycles, d.Timings[i].ClockNS)
		}
		b.WriteByte('\n')
		if len(names) <= 8 {
			fmt.Fprintf(&b, "    tasks: %s\n", strings.Join(names, " "))
		}
	}
	if d.Fission != nil {
		fmt.Fprintf(&b, "  loop fission: k=%d (pow2: k=%d, block=%d words, wastage=%d), strategy=%s\n",
			d.Fission.K, d.Fission.KPow2, d.Fission.BlockWords,
			d.Fission.WastagePerBlock, d.Config.Strategy)
	}
	return b.String()
}

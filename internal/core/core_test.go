package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/fission"
	"repro/internal/hls"
	"repro/internal/jpeg"
	"repro/internal/sim"
)

// TestFullDCTFlow runs the paper's entire case-study flow end to end:
// estimation (inside BuildDCTGraph), ILP partitioning, fission analysis,
// per-partition synthesis, layout, RTL, and simulation.
func TestFullDCTFlow(t *testing.T) {
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Strategy = fission.IDH
	d, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The paper's partitioning: 3 partitions, 16 T1 | 8 T2 | 8 T2.
	if d.Partitioning.N != 3 {
		t.Fatalf("N = %d, want 3", d.Partitioning.N)
	}
	if !d.Partitioning.Optimal {
		t.Error("DCT partitioning not proven optimal")
	}
	count := map[int]map[string]int{0: {}, 1: {}, 2: {}}
	for ti := 0; ti < g.NumTasks(); ti++ {
		count[d.Partitioning.Assign[ti]][g.Task(ti).Type]++
	}
	if count[0]["T1"] != 16 || count[0]["T2"] != 0 {
		t.Errorf("partition 1 = %v, want 16 T1", count[0])
	}
	if count[1]["T2"] != 8 || count[2]["T2"] != 8 {
		t.Errorf("partitions 2/3 = %v/%v, want 8 T2 each", count[1], count[2])
	}

	// Fission: k = 2048.
	if d.Fission.K != 2048 {
		t.Errorf("k = %d, want 2048", d.Fission.K)
	}

	// Synthesis happened for all partitions (behaviors attached).
	for p, pd := range d.Synthesized {
		if pd == nil {
			t.Fatalf("partition %d not synthesized", p)
		}
	}
	if d.Timings[0].ClockNS != 50 || d.Timings[1].ClockNS != 70 {
		t.Errorf("partition clocks = %v, want 50/70", d.Timings)
	}

	// Layouts exist and block for partition 1 holds 32 words.
	if d.Layouts[0] == nil || d.Layouts[0].BlockWords != 32 {
		t.Errorf("partition 1 layout = %+v, want 32-word block", d.Layouts[0])
	}

	// RTL generation.
	nl, err := d.Netlists()
	if err != nil {
		t.Fatal(err)
	}
	for p, n := range nl {
		if n == nil {
			t.Fatalf("partition %d has no netlist", p)
		}
		v := n.Verilog()
		if !strings.Contains(v, "iter_count") {
			t.Errorf("partition %d netlist lacks the Fig. 7 iteration counter", p)
		}
	}

	// Sequencer code is the IDH loop.
	if !strings.Contains(d.Sequencer, "IDH") {
		t.Errorf("sequencer:\n%s", d.Sequencer)
	}

	// Simulate one batch.
	res, err := d.Simulate(2048, sim.Options{TraceCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigurations != 3 {
		t.Errorf("reconfigurations = %d, want 3 (IDH)", res.Reconfigurations)
	}
	if res.TotalNS <= 3*100*arch.Millisecond {
		t.Error("simulated time must exceed the pure reconfiguration overhead")
	}

	// Report renders.
	rep := d.Report()
	for _, want := range []string{"partition 1", "k=2048", "ilp", "XC4044"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestListPartitionerBaseline reproduces the paper's Sec. 4 comparison: the
// greedy list partitioner mixes T2 tasks into partition 1 (it has unused
// CLBs), which increases partition 1's delay and the overall latency.
func TestListPartitionerBaseline(t *testing.T) {
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	ilpCfg := DefaultConfig()
	listCfg := DefaultConfig()
	listCfg.Partitioner = ListPartitioner

	dILP, err := Build(g, ilpCfg)
	if err != nil {
		t.Fatal(err)
	}
	dList, err := Build(g, listCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The list partitioner puts at least one T2 into partition 1.
	mixed := false
	for ti := 0; ti < g.NumTasks(); ti++ {
		if g.Task(ti).Type == "T2" && dList.Partitioning.Assign[ti] == 0 {
			mixed = true
		}
	}
	if !mixed {
		t.Error("list partitioner did not mix T2 into partition 1 (unexpected)")
	}
	if dList.Partitioning.N == dILP.Partitioning.N &&
		dList.Partitioning.Latency <= dILP.Partitioning.Latency {
		t.Errorf("list latency %.0f should exceed ILP latency %.0f",
			dList.Partitioning.Latency, dILP.Partitioning.Latency)
	}
}

func TestBuildWithoutBehaviors(t *testing.T) {
	// A plain cost-annotated graph (no payloads) still flows through, with
	// delay-based timings.
	g := dfg.New("plain")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60, Delay: 100, ReadEnv: 2})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60, Delay: 200, WriteEnv: 2})
	g.MustAddEdge("a", "b", 3)
	cfg := DefaultConfig()
	cfg.Board = arch.SmallTestBoard()
	d, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Partitioning.N != 2 {
		t.Fatalf("N = %d, want 2", d.Partitioning.N)
	}
	if d.Synthesized[0] != nil {
		t.Error("synthesis should be skipped without behaviors")
	}
	if d.Timings[0].BodyCycles != 100 || d.Timings[0].ClockNS != 1 {
		t.Errorf("fallback timing = %+v, want 100 cycles @ 1 ns", d.Timings[0])
	}
	if _, err := d.Simulate(10, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	nl, err := d.Netlists()
	if err != nil {
		t.Fatal(err)
	}
	if nl[0] != nil {
		t.Error("netlists must be nil without synthesis")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, DefaultConfig()); err != ErrNilGraph {
		t.Errorf("nil graph: %v", err)
	}
	g := dfg.New("big")
	g.MustAddTask(dfg.Task{Name: "x", Resources: 10000, Delay: 1})
	if _, err := Build(g, DefaultConfig()); err == nil {
		t.Error("oversized task accepted")
	}
	cfg := DefaultConfig()
	cfg.Partitioner = PartitionerKind(7)
	g2 := dfg.New("ok")
	g2.MustAddTask(dfg.Task{Name: "a", Resources: 1, Delay: 1})
	if _, err := Build(g2, cfg); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

func TestEmptyGraphDesign(t *testing.T) {
	d, err := Build(dfg.New("empty"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Partitioning.N != 0 {
		t.Error("empty graph should produce empty design")
	}
	if _, err := d.Simulate(1, sim.Options{}); err == nil {
		t.Error("simulating empty design should fail")
	}
	if rep := d.Report(); !strings.Contains(rep, "empty design") {
		t.Errorf("report: %s", rep)
	}
}

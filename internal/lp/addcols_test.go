package lp

import (
	"math"
	"testing"
)

// cgProblem builds the cutting-stock-style restricted master the AddCols
// tests share: minimize x0 + x1 subject to
//
//	cover0: x0       >= 1
//	cover1:      x1  >= 1
//
// with x in [0, 10]. The optimum is x = (1, 1), obj 2.
func cgProblem() *Problem {
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 0, 10)
	p.AddRow(GE, map[int]float64{0: 1}, 1)
	p.AddRow(GE, map[int]float64{1: 1}, 1)
	return p
}

// TestAddColsWarmEntry is the column-generation happy path: solve, append
// a column that dominates both base columns, and check the re-solve warm
// starts and prices the newcomer in.
func TestAddColsWarmEntry(t *testing.T) {
	s := NewSolver(cgProblem())
	sol, err := s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("base solve: %v %v", sol, err)
	}
	if math.Abs(sol.Obj-2) > 1e-9 {
		t.Fatalf("base obj = %v, want 2", sol.Obj)
	}
	// A "pattern" covering both rows at cost 1.5: reduced cost
	// 1.5 - y0 - y1 = -0.5 at the current duals (y = (1,1)).
	y := s.RowDuals(nil)
	if y == nil || math.Abs(y[0]-1) > 1e-9 || math.Abs(y[1]-1) > 1e-9 {
		t.Fatalf("duals = %v, want [1 1]", y)
	}
	if err := s.AddCols([]NewCol{{Obj: 1.5, Lo: 0, Hi: 10, Rows: []int{0, 1}, Vals: []float64{1, 1}}}); err != nil {
		t.Fatalf("AddCols: %v", err)
	}
	if s.NumVars() != 3 || s.NumBaseVars() != 2 || s.AddedCols() != 1 {
		t.Fatalf("counts: NumVars=%d NumBaseVars=%d AddedCols=%d", s.NumVars(), s.NumBaseVars(), s.AddedCols())
	}
	if !s.Warm() {
		t.Fatal("AddCols invalidated the basis")
	}
	warmBefore := s.Stats.WarmSolves
	sol, err = s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("re-solve: %v %v", sol, err)
	}
	if s.Stats.WarmSolves != warmBefore+1 {
		t.Fatalf("re-solve was not warm (WarmSolves %d -> %d)", warmBefore, s.Stats.WarmSolves)
	}
	if math.Abs(sol.Obj-1.5) > 1e-9 {
		t.Fatalf("obj after pricing = %v, want 1.5", sol.Obj)
	}
	if math.Abs(sol.X[2]-1) > 1e-9 {
		t.Fatalf("new column value = %v, want 1", sol.X[2])
	}
	if s.Stats.ColsAdded != 1 {
		t.Fatalf("Stats.ColsAdded = %d, want 1", s.Stats.ColsAdded)
	}
}

// TestAddColsColdWithFixedLowerBound drives the column-branching path: an
// appended column fixed to 1 (lo=hi=1) must be honored by a cold build,
// whose row residuals have to see the appended column's resting value.
func TestAddColsColdWithFixedLowerBound(t *testing.T) {
	s := NewSolver(cgProblem())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCols([]NewCol{{Obj: 1.5, Lo: 0, Hi: 1, Rows: []int{0, 1}, Vals: []float64{1, 1}}}); err != nil {
		t.Fatal(err)
	}
	s.SetVarBounds(2, 1, 1) // branch: pattern fixed into the selection
	s.Invalidate()          // force the cold path
	sol, err := s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold solve: %v %v", sol, err)
	}
	if math.Abs(sol.Obj-1.5) > 1e-9 || math.Abs(sol.X[2]-1) > 1e-9 {
		t.Fatalf("cold solve with fixed appended column: obj=%v x=%v, want obj 1.5, x2=1", sol.Obj, sol.X)
	}
	// And the opposite branch: forbidden (hi=0) must push the LP back to
	// the base optimum.
	s.SetVarBounds(2, 0, 0)
	sol, err = s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("forbidden branch: %v %v", sol, err)
	}
	if math.Abs(sol.Obj-2) > 1e-9 {
		t.Fatalf("forbidden branch obj = %v, want 2", sol.Obj)
	}
}

// TestAddColsThenAddRows interleaves column and row growth: a no-good row
// referencing an appended column must constrain it.
func TestAddColsThenAddRows(t *testing.T) {
	s := NewSolver(cgProblem())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCols([]NewCol{{Obj: 1.5, Lo: 0, Hi: 10, Rows: []int{0, 1}, Vals: []float64{1, 1}}}); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil || math.Abs(sol.Obj-1.5) > 1e-9 {
		t.Fatalf("pre-cut solve: %v %v", sol, err)
	}
	// No-good: the appended column may not be used (x2 <= 0), as the
	// branch-and-price no-good path does for refuted selections.
	if err := s.AddRows([]CutRow{{Kind: LE, Cols: []int{2}, Vals: []float64{1}, RHS: 0}}); err != nil {
		t.Fatalf("AddRows over appended column: %v", err)
	}
	sol, err = s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("post-cut solve: %v %v", sol, err)
	}
	if math.Abs(sol.Obj-2) > 1e-9 || math.Abs(sol.X[2]) > 1e-9 {
		t.Fatalf("no-good row ignored: obj=%v x=%v", sol.Obj, sol.X)
	}
	// Now grow a column after the row: it must be rejected if it targets
	// the added row, accepted over base rows, and the added row must keep
	// holding (it has no support in the new column by construction).
	if err := s.AddCols([]NewCol{{Obj: 1, Lo: 0, Hi: 1, Rows: []int{2}, Vals: []float64{1}}}); err == nil {
		t.Fatal("AddCols accepted an added-row reference")
	}
	if err := s.AddCols([]NewCol{{Obj: 0.5, Lo: 0, Hi: 10, Rows: []int{1}, Vals: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	sol, err = s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("second growth solve: %v %v", sol, err)
	}
	if math.Abs(sol.Obj-1.5) > 1e-9 {
		t.Fatalf("obj = %v, want 1.5 (x0=1 + cheap cover of row 1)", sol.Obj)
	}
	// Drop the cuts: appended columns survive, the no-good does not.
	s.DropAddedRows()
	sol, err = s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("post-drop solve: %v %v", sol, err)
	}
	if math.Abs(sol.Obj-1.5) > 1e-9 {
		t.Fatalf("post-drop obj = %v, want 1.5 (pattern column usable again)", sol.Obj)
	}
}

// TestAddColsValidation checks the whole-batch rejection contract.
func TestAddColsValidation(t *testing.T) {
	s := NewSolver(cgProblem())
	bad := []struct {
		name string
		col  NewCol
	}{
		{"len mismatch", NewCol{Hi: 1, Rows: []int{0}, Vals: nil}},
		{"neg inf lo", NewCol{Lo: math.Inf(-1), Hi: 1}},
		{"empty bounds", NewCol{Lo: 2, Hi: 1}},
		{"nan obj", NewCol{Obj: math.NaN(), Hi: 1}},
		{"row out of range", NewCol{Hi: 1, Rows: []int{5}, Vals: []float64{1}}},
		{"inf coeff", NewCol{Hi: 1, Rows: []int{0}, Vals: []float64{math.Inf(1)}}},
	}
	for _, tc := range bad {
		if err := s.AddCols([]NewCol{tc.col}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if s.NumVars() != 2 || s.AddedCols() != 0 {
		t.Fatalf("rejected batches mutated the solver: NumVars=%d AddedCols=%d", s.NumVars(), s.AddedCols())
	}
	// A batch with one bad column must reject the good one too.
	if err := s.AddCols([]NewCol{
		{Obj: 1, Hi: 1, Rows: []int{0}, Vals: []float64{1}},
		{Obj: 1, Hi: 1, Rows: []int{-1}, Vals: []float64{1}},
	}); err == nil {
		t.Fatal("batch with a bad column accepted")
	}
	if s.AddedCols() != 0 {
		t.Fatal("partial batch applied")
	}
}

// TestAddColsBasisSnapshotFallback: a Basis snapshot taken before AddCols
// has the wrong shape afterwards and must fall back to a plain solve
// instead of corrupting state.
func TestAddColsBasisSnapshotFallback(t *testing.T) {
	s := NewSolver(cgProblem())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	bs := s.Basis()
	if bs == nil {
		t.Fatal("no snapshot")
	}
	if err := s.AddCols([]NewCol{{Obj: 1.5, Lo: 0, Hi: 10, Rows: []int{0, 1}, Vals: []float64{1, 1}}}); err != nil {
		t.Fatal(err)
	}
	sol, err := s.ResolveFrom(bs)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("ResolveFrom stale snapshot: %v %v", sol, err)
	}
	if math.Abs(sol.Obj-1.5) > 1e-9 {
		t.Fatalf("obj = %v, want 1.5", sol.Obj)
	}
}

// TestAddColsDupRowsMerged: duplicate row indices in one column merge.
func TestAddColsDupRowsMerged(t *testing.T) {
	s := NewSolver(cgProblem())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	// 0.5 + 0.5 in row 0 merges to coefficient 1.
	if err := s.AddCols([]NewCol{{Obj: 0.25, Lo: 0, Hi: 10, Rows: []int{0, 0}, Vals: []float64{0.5, 0.5}}}); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol, err)
	}
	// x2=1 covers row 0 at cost 0.25; row 1 still needs x1=1.
	if math.Abs(sol.Obj-1.25) > 1e-9 || math.Abs(sol.X[2]-1) > 1e-9 {
		t.Fatalf("obj=%v x=%v, want obj 1.25 with x2=1", sol.Obj, sol.X)
	}
}

// TestAddColsAccumulate covers the stats plumbing for the new counter.
func TestAddColsAccumulate(t *testing.T) {
	a := SolverStats{ColsAdded: 3}
	b := SolverStats{ColsAdded: 2}
	a.Accumulate(b)
	if a.ColsAdded != 5 {
		t.Fatalf("Accumulate: %d", a.ColsAdded)
	}
	if d := a.Delta(b); d.ColsAdded != 3 {
		t.Fatalf("Delta: %d", d.ColsAdded)
	}
}

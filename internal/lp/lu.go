package lp

import "math"

// This file implements the basis factorization behind the revised simplex:
// a sparse LU decomposition B = L·F·U maintained across pivots by
// Forrest–Tomlin updates.
//
//   - L is the unit-lower-triangular factor produced at factorization time,
//     stored as a sequence of column etas in elimination order. It is fixed
//     between refactorizations.
//   - U is the upper-triangular factor, stored *doubly*: by pivot row
//     (urows) for the FTRAN back-substitution and the update's row
//     elimination, and by column (ucols) for the BTRAN forward pass.
//     "Triangular" is with respect to the elimination order (pos/order),
//     not the literal row indices: slot s pivots on row prow[s], and
//     urows[s] only holds entries at slots with a higher position.
//   - F is the Forrest–Tomlin update file: a sequence of elementary row
//     transforms (target, source, multiplier) appended by each basis
//     change. FTRAN applies them forward after L; BTRAN applies their
//     transposes in reverse before Lᵀ.
//
// A Forrest–Tomlin update replacing the column in basis slot s works on U
// only: delete slot s's row and column, move s to the last elimination
// position, insert the spike F⁻¹L⁻¹a as its new column, and eliminate the
// leftover row entries with row transforms that go to the F file. No other
// U row changes, which is what keeps the update O(row nnz) and FTRAN/BTRAN
// cost bounded by L+U+F fill instead of growing with every pivot the way a
// product-form eta file does. When the new diagonal comes out unstable the
// update reports failure and the solver refactorizes from the column data.
//
// Index spaces: FTRAN maps a row-space vector (a column of A) to a
// slot-space vector (coefficients per basis position); BTRAN maps
// slot-space (costs of the basic variables) to row-space (dual prices).
// The solver's basis[] array is never permuted by a refactorization — the
// factor keeps its own slot↔pivot-row maps — so xb, Basis snapshots, and
// the B&B layer's bookkeeping all stay slot-stable.

// uent is one off-diagonal nonzero of U, seen from a row (slot = column
// owner) or from a column (slot = row owner).
type uent struct {
	slot int32
	val  float64
}

const (
	// luPivotThreshold is the threshold-pivoting relative tolerance: a row
	// is pivot-eligible when its magnitude is within this factor of the
	// column's largest. Among eligible rows the factorization picks the one
	// with the fewest remaining nonzeros (Markowitz-style fill control).
	luPivotThreshold = 0.1
	// luDropTol discards roundoff-level entries when storing L, U, or F.
	luDropTol = 1e-12
	// luUpdateStabTol rejects a Forrest–Tomlin update whose new diagonal is
	// smaller than this fraction of the largest spike entry: the caller
	// refactorizes instead of carrying an unstable pivot forward.
	luUpdateStabTol = 1e-8
	// luMaxUpdates is a hard backstop on updates between refactorizations;
	// the fill-based trigger in maybeRefactor normally fires first.
	luMaxUpdates = 128
	// luSparseDensity caps the hyper-sparse solve: when the symbolic pass
	// predicts more than this fraction of m nonzero positions the solve
	// falls back to the dense path, so the worst case costs one aborted
	// DFS on top of the dense solve it would have run anyway.
	luSparseDensity = 0.3
	// luSparseMinDim disables the sparse path on tiny factors where the
	// symbolic bookkeeping costs more than the dense clear it avoids.
	luSparseMinDim = 8
)

// luFactor is one basis factorization plus its update file.
type luFactor struct {
	m int

	// L: column etas (unit diagonal; stored values are already divided by
	// the pivot) in elimination order, arena-backed.
	lR   []int32
	lPtr []int32
	lIdx []int32
	lVal []float64

	// U by basis slot.
	upiv    []float64 // diagonal of slot s (at row prow[s])
	urows   [][]uent  // row prow[s]: entries {slot t, U[prow[s], t]}
	ucols   [][]uent  // column s: entries {slot t, U[prow[t], s]}
	prow    []int32   // slot -> pivot row
	rowSlot []int32   // pivot row -> slot
	pos     []int32   // slot -> elimination position
	order   []int32   // elimination position -> slot
	unnz    int       // off-diagonal U entries

	// F: Forrest–Tomlin row transforms, applied FTRAN-forward as
	// v[tgt] -= val·v[src].
	fSrc []int32
	fTgt []int32
	fVal []float64

	updates int // FT updates since factorize
	baseNNZ int // L+U nonzeros (incl. diagonals) at factorize time

	// Scratch.
	spike    []float64 // row-space spike F⁻¹L⁻¹a stashed by the last ftran
	z        []float64 // dense solve workspace
	rs       []float64 // update: spike-row accumulator by slot
	queued   []bool    // update: slot already in the elimination heap
	heap     []int32   // update: min-heap of slots by elimination position
	keys     []int32   // factorize: column-ordering keys / row counts
	assigned []bool    // factorize: rows already pivoted

	// Hyper-sparse solve machinery (lusparse.go). lEta maps each row to
	// the L eta that pivoted it; ltPtr/ltRow is the transposed L graph
	// (row -> rows whose eta scatters into it), rebuilt per factorize and
	// untouched by Forrest–Tomlin updates (which never modify L). The
	// spike nonzero list lets a sparse ftran keep the dense spike
	// invariant ftUpdate relies on without an O(m) clear per solve.
	lEta  []int32
	ltPtr []int32
	ltRow []int32

	zs      []float64 // sparse solve workspace; all-zero between solves
	markR   []bool    // symbolic: row-space nonzero pattern
	markS   []bool    // symbolic: slot-space nonzero pattern
	markV   []bool    // symbolic: visited set for the Lᵀ DFS
	nzRows  []int32   // row-space pattern list (post-order)
	nzRows2 []int32   // btran Lᵀ pattern list (post-order)
	nzSlots []int32   // slot-space pattern list (post-order)
	stkNode []int32   // DFS stack: nodes
	stkEdge []int32   // DFS stack: per-node edge cursor

	spikeDense bool    // spike may be nonzero anywhere (dense stash)
	spikeNZ    []int32 // nonzero rows of the last sparse spike stash
}

// init (re)sizes the factor for dimension m and clears all stored data.
func (f *luFactor) init(m int) {
	f.m = m
	f.lR = f.lR[:0]
	if len(f.lPtr) == 0 {
		f.lPtr = append(f.lPtr, 0)
	}
	f.lPtr = f.lPtr[:1]
	f.lIdx = f.lIdx[:0]
	f.lVal = f.lVal[:0]
	f.fSrc, f.fTgt, f.fVal = f.fSrc[:0], f.fTgt[:0], f.fVal[:0]
	f.updates = 0
	f.unnz = 0

	grow := func(v []float64) []float64 {
		if cap(v) < m {
			return make([]float64, m)
		}
		return v[:m]
	}
	growI := func(v []int32) []int32 {
		if cap(v) < m {
			return make([]int32, m)
		}
		return v[:m]
	}
	f.upiv = grow(f.upiv)
	f.prow = growI(f.prow)
	f.rowSlot = growI(f.rowSlot)
	f.pos = growI(f.pos)
	f.order = growI(f.order)
	f.keys = growI(f.keys)
	f.lEta = growI(f.lEta)
	f.spike = grow(f.spike)
	f.z = grow(f.z)
	f.rs = grow(f.rs)
	// The sparse workspace and pattern marks carry an all-clear invariant
	// between solves; grow() does not zero reused capacity, so they are
	// reset explicitly here.
	f.zs = grow(f.zs)
	for i := range f.zs {
		f.zs[i] = 0
	}
	growB := func(v []bool) []bool {
		if cap(v) < m {
			return make([]bool, m)
		}
		v = v[:m]
		for i := range v {
			v[i] = false
		}
		return v
	}
	f.markR = growB(f.markR)
	f.markS = growB(f.markS)
	f.markV = growB(f.markV)
	f.nzRows = f.nzRows[:0]
	f.nzRows2 = f.nzRows2[:0]
	f.nzSlots = f.nzSlots[:0]
	f.stkNode = f.stkNode[:0]
	f.stkEdge = f.stkEdge[:0]
	f.ltPtr = f.ltPtr[:0]
	f.ltRow = f.ltRow[:0]
	f.spikeDense = true
	f.spikeNZ = f.spikeNZ[:0]
	if cap(f.queued) < m {
		f.queued = make([]bool, m)
	} else {
		f.queued = f.queued[:m]
		for i := range f.queued {
			f.queued[i] = false
		}
	}
	if cap(f.assigned) < m {
		f.assigned = make([]bool, m)
	} else {
		f.assigned = f.assigned[:m]
	}
	f.heap = f.heap[:0]
	if cap(f.urows) < m {
		urows := make([][]uent, m)
		copy(urows, f.urows)
		f.urows = urows
		ucols := make([][]uent, m)
		copy(ucols, f.ucols)
		f.ucols = ucols
	} else {
		f.urows = f.urows[:m]
		f.ucols = f.ucols[:m]
	}
	for i := 0; i < m; i++ {
		f.urows[i] = f.urows[i][:0]
		f.ucols[i] = f.ucols[i][:0]
		f.rs[i] = 0
	}
}

// fNNZ returns the size of the update file.
func (f *luFactor) fNNZ() int { return len(f.fVal) }

// ftran solves B x = v in place. Input v is in row space; output is in slot
// space. The intermediate spike F⁻¹L⁻¹v is stashed for a following
// Forrest–Tomlin update.
func (f *luFactor) ftran(v []float64) {
	// L pass.
	for k := range f.lR {
		t := v[f.lR[k]]
		if t == 0 {
			continue
		}
		for q := f.lPtr[k]; q < f.lPtr[k+1]; q++ {
			v[f.lIdx[q]] -= f.lVal[q] * t
		}
	}
	// F pass (forward, append order).
	for k := range f.fVal {
		if t := v[f.fSrc[k]]; t != 0 {
			v[f.fTgt[k]] -= f.fVal[k] * t
		}
	}
	copy(f.spike, v)
	f.spikeDense = true
	// U back-substitution, highest elimination position first.
	z := f.z
	for k := f.m - 1; k >= 0; k-- {
		s := f.order[k]
		t := v[f.prow[s]]
		for _, e := range f.urows[s] {
			t -= e.val * z[e.slot]
		}
		z[s] = t / f.upiv[s]
	}
	copy(v, z)
}

// btran solves yᵀB = c in place. Input v is in slot space (one coefficient
// per basis position); output is in row space (dual prices).
func (f *luFactor) btran(v []float64) {
	// Uᵀ forward pass, lowest elimination position first. z is indexed by
	// pivot row.
	z := f.z
	for k := 0; k < f.m; k++ {
		s := f.order[k]
		t := v[s]
		for _, e := range f.ucols[s] {
			t -= e.val * z[f.prow[e.slot]]
		}
		z[f.prow[s]] = t / f.upiv[s]
	}
	// Fᵀ pass (reverse append order).
	for k := len(f.fVal) - 1; k >= 0; k-- {
		if t := z[f.fTgt[k]]; t != 0 {
			z[f.fSrc[k]] -= f.fVal[k] * t
		}
	}
	// Lᵀ pass (reverse eta order; unit diagonal).
	for k := len(f.lR) - 1; k >= 0; k-- {
		r := f.lR[k]
		t := z[r]
		for q := f.lPtr[k]; q < f.lPtr[k+1]; q++ {
			t -= f.lVal[q] * z[f.lIdx[q]]
		}
		z[r] = t
	}
	copy(v, z)
}

// factorizeBasis builds f from the solver's current basis columns. Columns
// are installed thinnest-first; within a column the pivot row is chosen
// among entries within luPivotThreshold of the largest by fewest remaining
// row nonzeros (approximate Markowitz with threshold partial pivoting).
// Returns false — leaving f unusable — when the basis is numerically
// singular; the caller must keep using its previous factor or rebuild.
func (s *Solver) factorizeBasis(f *luFactor) bool {
	m := s.m
	f.init(m)
	// Remaining-nonzeros-per-row counts for the Markowitz tiebreak, from
	// the sparse column data (fill-in is not counted: "Markowitz-lite").
	rc := f.keys
	for i := range rc {
		rc[i] = 0
	}
	for slot := 0; slot < m; slot++ {
		j := s.basis[slot]
		switch {
		case j < s.nStructBase:
			for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
				rc[s.colRow[k]]++
			}
			if s.extCols != nil {
				for _, e := range s.extCols[j] {
					rc[e.i]++
				}
			}
		case j < s.nStruct:
			for _, e := range s.newCols[j-s.nStructBase] {
				rc[e.i]++
			}
			if s.extCols != nil {
				for _, e := range s.extCols[j] {
					rc[e.i]++
				}
			}
		case j < s.nStruct+s.m:
			rc[j-s.nStruct]++ // slack: unit column
		default:
			rc[j-s.nStruct-s.m]++
		}
	}
	// Install thin columns first to limit fill.
	ord := f.order
	for i := range ord {
		ord[i] = int32(i)
	}
	insertionSortByKey(ord, func(slot int32) int32 { return int32(s.colNNZ(s.basis[slot])) })

	assigned := f.assigned
	for i := range assigned {
		assigned[i] = false
	}
	x := s.alpha
	s.alphaDense = true // dense column loads below dirty the sparse scratch
	for k := 0; k < m; k++ {
		slot := int(ord[k])
		j := s.basis[slot]
		s.loadCol(j, x)
		// Eliminate with the L columns built so far.
		for e := range f.lR {
			t := x[f.lR[e]]
			if t == 0 {
				continue
			}
			for q := f.lPtr[e]; q < f.lPtr[e+1]; q++ {
				x[f.lIdx[q]] -= f.lVal[q] * t
			}
		}
		// Threshold pivoting with a Markowitz row-count tiebreak.
		maxAbs := 0.0
		for i := 0; i < m; i++ {
			if assigned[i] {
				continue
			}
			if a := math.Abs(x[i]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs <= pivotEps {
			return false
		}
		thresh := luPivotThreshold * maxAbs
		best, bestCount, bestAbs := -1, int32(math.MaxInt32), 0.0
		for i := 0; i < m; i++ {
			if assigned[i] {
				continue
			}
			a := math.Abs(x[i])
			if a < thresh || a <= pivotEps {
				continue
			}
			if rc[i] < bestCount || (rc[i] == bestCount && a > bestAbs) {
				best, bestCount, bestAbs = i, rc[i], a
			}
		}
		piv := x[best]
		f.upiv[slot] = piv
		f.prow[slot] = int32(best)
		f.rowSlot[best] = int32(slot)
		f.pos[slot] = int32(k)
		f.order[k] = int32(slot) // ord aliases f.order; position k is final
		assigned[best] = true
		// Store U entries (already-pivoted rows) and the L eta (the rest).
		for i := 0; i < m; i++ {
			v := x[i]
			if i == best || (v < luDropTol && v > -luDropTol) {
				continue
			}
			if assigned[i] {
				t := f.rowSlot[i]
				f.urows[t] = append(f.urows[t], uent{slot: int32(slot), val: v})
				f.ucols[slot] = append(f.ucols[slot], uent{slot: t, val: v})
				f.unnz++
				continue
			}
			f.lIdx = append(f.lIdx, int32(i))
			f.lVal = append(f.lVal, v/piv)
		}
		f.lR = append(f.lR, int32(best))
		f.lPtr = append(f.lPtr, int32(len(f.lIdx)))
	}
	f.baseNNZ = m + f.unnz + len(f.lVal)
	f.buildLTranspose()
	return true
}

// buildLTranspose derives the row-indexed views of L that the hyper-sparse
// solves need: lEta (row -> the eta that pivoted it) and the transposed
// scatter graph ltPtr/ltRow (row -> rows whose eta writes into it), the
// adjacency the BTRAN Lᵀ symbolic pass walks. L is frozen between
// refactorizations (Forrest–Tomlin updates touch U and F only), so one
// counting-sort pass per factorize keeps both views current.
func (f *luFactor) buildLTranspose() {
	m := f.m
	for k := range f.lR {
		f.lEta[f.lR[k]] = int32(k)
	}
	if cap(f.ltPtr) < m+1 {
		f.ltPtr = make([]int32, m+1)
	} else {
		f.ltPtr = f.ltPtr[:m+1]
		for i := range f.ltPtr {
			f.ltPtr[i] = 0
		}
	}
	nnz := len(f.lIdx)
	if cap(f.ltRow) < nnz {
		f.ltRow = make([]int32, nnz)
	} else {
		f.ltRow = f.ltRow[:nnz]
	}
	for _, r := range f.lIdx {
		f.ltPtr[r+1]++
	}
	for i := 0; i < m; i++ {
		f.ltPtr[i+1] += f.ltPtr[i]
	}
	// Fill using ltPtr as a moving cursor, then restore it by shifting.
	for k := range f.lR {
		src := f.lR[k]
		for q := f.lPtr[k]; q < f.lPtr[k+1]; q++ {
			r := f.lIdx[q]
			f.ltRow[f.ltPtr[r]] = src
			f.ltPtr[r]++
		}
	}
	for i := m; i > 0; i-- {
		f.ltPtr[i] = f.ltPtr[i-1]
	}
	f.ltPtr[0] = 0
}

// insertionSortByKey stable-sorts ord ascending by key. The basis column
// sizes it orders are tiny and nearly sorted across refactorizations, and
// an insertion sort avoids the sort.Slice closure allocation on the node
// hot path.
func insertionSortByKey(ord []int32, key func(int32) int32) {
	for i := 1; i < len(ord); i++ {
		v := ord[i]
		kv := key(v)
		j := i - 1
		for j >= 0 && key(ord[j]) > kv {
			ord[j+1] = ord[j]
			j--
		}
		ord[j+1] = v
	}
}

// ftUpdate replaces the column of basis slot s with the one whose spike
// F⁻¹L⁻¹a was stashed by the immediately preceding ftran, applying a
// Forrest–Tomlin update to U and appending the elimination's row transforms
// to the F file. It returns the number of F entries appended and ok=false
// when the new diagonal fails the stability test — the factor is then
// inconsistent and the caller MUST refactorize before the next solve.
func (f *luFactor) ftUpdate(s int) (added int, ok bool) {
	r := int(f.prow[s])
	p := int(f.pos[s])

	// Delete column s from U.
	for _, e := range f.ucols[s] {
		removeUEnt(&f.urows[e.slot], int32(s))
	}
	f.unnz -= len(f.ucols[s])
	f.ucols[s] = f.ucols[s][:0]
	// Delete row prow[s]: scatter it into the slot-indexed accumulator for
	// the elimination below, and drop the transposed entries.
	rs := f.rs
	for _, e := range f.urows[s] {
		removeUEnt(&f.ucols[e.slot], int32(s))
		rs[e.slot] = e.val
		f.heapPush(e.slot)
	}
	f.unnz -= len(f.urows[s])
	f.urows[s] = f.urows[s][:0]

	// Move slot s to the last elimination position.
	for k := p + 1; k < f.m; k++ {
		f.order[k-1] = f.order[k]
		f.pos[f.order[k-1]]--
	}
	f.order[f.m-1] = int32(s)
	f.pos[s] = int32(f.m - 1)

	// Insert the spike as the new column s, tracking its largest entry for
	// the stability test.
	diag := f.spike[r]
	maxAbs := math.Abs(diag)
	for i := 0; i < f.m; i++ {
		v := f.spike[i]
		if i == r || (v < luDropTol && v > -luDropTol) {
			continue
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		t := f.rowSlot[i]
		f.urows[t] = append(f.urows[t], uent{slot: int32(s), val: v})
		f.ucols[s] = append(f.ucols[s], uent{slot: t, val: v})
		f.unnz++
	}

	// Eliminate the leftover row entries in elimination order, appending
	// one row transform per eliminated entry. Fill-in lands back in rs and
	// is eliminated in turn (heap keeps position order).
	for len(f.heap) > 0 {
		j := int(f.heapPop())
		mu := rs[j] / f.upiv[j]
		rs[j] = 0
		if mu < luDropTol && mu > -luDropTol {
			continue
		}
		f.fSrc = append(f.fSrc, f.prow[j])
		f.fTgt = append(f.fTgt, int32(r))
		f.fVal = append(f.fVal, mu)
		added++
		for _, e := range f.urows[j] {
			if int(e.slot) == s {
				diag -= mu * e.val
				continue
			}
			rs[e.slot] -= mu * e.val
			f.heapPush(e.slot)
		}
	}

	f.updates++
	if a := math.Abs(diag); a <= pivotEps || a < luUpdateStabTol*maxAbs {
		return added, false
	}
	f.upiv[s] = diag
	return added, true
}

// removeUEnt swap-deletes the entry with the given slot from a U row/column.
func removeUEnt(ents *[]uent, slot int32) {
	e := *ents
	for k := range e {
		if e[k].slot == slot {
			last := len(e) - 1
			e[k] = e[last]
			*ents = e[:last]
			return
		}
	}
}

// heapPush queues slot j for elimination, ordered by elimination position.
func (f *luFactor) heapPush(j int32) {
	if f.queued[j] {
		return
	}
	f.queued[j] = true
	f.heap = append(f.heap, j)
	k := len(f.heap) - 1
	for k > 0 {
		par := (k - 1) / 2
		if f.pos[f.heap[par]] <= f.pos[f.heap[k]] {
			break
		}
		f.heap[par], f.heap[k] = f.heap[k], f.heap[par]
		k = par
	}
}

func (f *luFactor) heapPop() int32 {
	top := f.heap[0]
	f.queued[top] = false
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap = f.heap[:last]
	k := 0
	for {
		l, rr := 2*k+1, 2*k+2
		small := k
		if l < len(f.heap) && f.pos[f.heap[l]] < f.pos[f.heap[small]] {
			small = l
		}
		if rr < len(f.heap) && f.pos[f.heap[rr]] < f.pos[f.heap[small]] {
			small = rr
		}
		if small == k {
			break
		}
		f.heap[k], f.heap[small] = f.heap[small], f.heap[k]
		k = small
	}
	return top
}

package lp

import "repro/internal/faultinject"

// Hyper-sparse FTRAN/BTRAN: nonzero-tracked variants of the dense solves in
// lu.go for right-hand sides that carry an index list (a structural column,
// a unit pricing row, a handful of bound-flip deltas). A depth-first
// symbolic pass over the factor graph discovers the reachable nonzero set
// first; the numeric pass then touches only those positions, so a solve
// whose result stays sparse costs O(result fill) instead of the dense
// path's O(m) clear/scatter/gather per stage.
//
// The factor graph has one dependency edge per stored nonzero:
//
//	FTRAN  L: row lR[k] scatters into its eta's lIdx rows;
//	       F: fSrc -> fTgt in append order (scanned, not DFS'd — the file
//	          is short by construction, maybeRefactor bounds it);
//	       U: slot s feeds the lower-position slots in ucols[s].
//	BTRAN  U: slot s feeds the higher-position slots in urows[s];
//	       F: fTgt -> fSrc in reverse append order;
//	       Lᵀ: row r feeds the rows whose eta contains it (ltRow).
//
// DFS post-order gives a topological order of each stage's reachable set
// (for every dependency edge u→v, v finishes before u), so the numeric
// passes walk the discovered list backwards and every value is final
// before it is read. When the discovered set outgrows luSparseDensity·m
// the solve finishes on the dense path from the current stage — the
// symbolic work is wasted but bounded, so worst-case cost is unchanged.
//
// Invariants: the caller's vector must be zero outside its index list; on
// a sparse return (ok=true) it is zero outside the returned list, which
// aliases factor scratch and is valid until the next solve. zs and the
// mark arrays are all-clear between solves; every path below restores
// that before returning. On a dense fallback (ok=false) the routine has
// already produced the dense result in v and the pattern is unknown.

// DFS graph modes for symbolic().
const (
	graphLF = iota // FTRAN L: rows, eta scatter edges
	graphUF        // FTRAN U: slots via ucols, seeds are rows (rowSlot)
	graphUB        // BTRAN U: slots via urows
	graphLB        // BTRAN Lᵀ: rows via ltRow, seeds are slots (prow)
)

// symbolic runs the depth-first reachability pass for one solve stage:
// every node reachable from seeds through the mode's edges is marked in
// mark and appended to out in DFS post-order. It aborts once the set
// exceeds max, clearing every mark it set and returning ok=false with the
// out list it was given (the caller's prior marks are untouched).
//
// For graphLB the seeds are already marked (they are the F-stage pattern),
// so a separate visited array distinguishes "traversed" from "nonzero";
// for the other modes mark doubles as the visited set.
func (f *luFactor) symbolic(mode int, seeds []int32, mark []bool, out []int32, max int) ([]int32, bool) {
	base := len(out)
	nodes, edges := f.stkNode[:0], f.stkEdge[:0]
	for _, sd := range seeds {
		root := sd
		if mode == graphUF {
			root = f.rowSlot[sd]
		}
		if mark[root] {
			continue
		}
		mark[root] = true
		nodes = append(nodes, root)
		edges = append(edges, 0)
		for len(nodes) > 0 {
			top := len(nodes) - 1
			n := nodes[top]
			e := edges[top]
			var child int32 = -1
			switch mode {
			case graphLF:
				k := f.lEta[n]
				if q := f.lPtr[k] + e; q < f.lPtr[k+1] {
					child = f.lIdx[q]
				}
			case graphUF:
				if int(e) < len(f.ucols[n]) {
					child = f.ucols[n][e].slot
				}
			case graphUB:
				if int(e) < len(f.urows[n]) {
					child = f.urows[n][e].slot
				}
			case graphLB:
				if q := f.ltPtr[n] + e; q < f.ltPtr[n+1] {
					child = f.ltRow[q]
				}
			}
			if child >= 0 {
				edges[top] = e + 1
				if !mark[child] {
					mark[child] = true
					nodes = append(nodes, child)
					edges = append(edges, 0)
				}
				continue
			}
			out = append(out, n)
			nodes = nodes[:top]
			edges = edges[:top]
			if len(out)-base > max {
				for _, r := range out[base:] {
					mark[r] = false
				}
				for _, r := range nodes {
					mark[r] = false
				}
				f.stkNode, f.stkEdge = nodes[:0], edges[:0]
				return out[:base], false
			}
		}
	}
	f.stkNode, f.stkEdge = nodes[:0], edges[:0]
	return out, true
}

// sparseMax returns the symbolic abort threshold, or 0 when the sparse
// path is disabled for this factor (tiny dimension, or a chaos test armed
// the fallback shot).
func (f *luFactor) sparseMax() int {
	if f.m < luSparseMinDim || faultinject.Fire(faultinject.SparseSolveFallback) {
		return 0
	}
	return int(luSparseDensity * float64(f.m))
}

// stashSpikeSparse records the intermediate F⁻¹L⁻¹v (held in v at the rows
// positions) as the update spike, preserving the dense-correctness
// invariant ftUpdate reads: previous nonzeros are cleared by list when the
// last stash was sparse, densely once after a dense one.
func (f *luFactor) stashSpikeSparse(v []float64, rows []int32) {
	if f.spikeDense {
		for i := range f.spike {
			f.spike[i] = 0
		}
		f.spikeDense = false
	} else {
		for _, r := range f.spikeNZ {
			f.spike[r] = 0
		}
	}
	f.spikeNZ = append(f.spikeNZ[:0], rows...)
	for _, r := range rows {
		f.spike[r] = v[r]
	}
}

// denseU runs the dense U back-substitution tail of an FTRAN (v holds the
// post-L/F intermediate; the spike has already been stashed).
func (f *luFactor) denseU(v []float64) {
	z := f.z
	for k := f.m - 1; k >= 0; k-- {
		s := f.order[k]
		t := v[f.prow[s]]
		for _, e := range f.urows[s] {
			t -= e.val * z[e.slot]
		}
		z[s] = t / f.upiv[s]
	}
	copy(v, z)
}

// ftranSparse solves B x = v for a v that is zero outside idx (row space).
// On ok=true the solution occupies exactly the returned slot-space index
// list (valid until the next solve on this factor) and v is zero
// elsewhere; on ok=false the predicted fill crossed the density threshold
// and the solve was finished densely. The update spike is stashed either
// way, so a following ftUpdate sees the same state as after a dense ftran.
func (f *luFactor) ftranSparse(v []float64, idx []int32) ([]int32, bool) {
	max := f.sparseMax()
	if len(idx) > max {
		f.ftran(v)
		return nil, false
	}
	rows, ok := f.symbolic(graphLF, idx, f.markR, f.nzRows[:0], max)
	f.nzRows = rows
	if !ok {
		f.ftran(v)
		return nil, false
	}
	// Numeric L pass in topological (reverse post-) order.
	for k := len(rows) - 1; k >= 0; k-- {
		r := rows[k]
		t := v[r]
		if t == 0 {
			continue
		}
		e := f.lEta[r]
		for q := f.lPtr[e]; q < f.lPtr[e+1]; q++ {
			v[f.lIdx[q]] -= f.lVal[q] * t
		}
	}
	// Symbolic F pass: the pattern grows monotonically in append order, so
	// one forward scan closes it before any value moves.
	for k := range f.fVal {
		if f.markR[f.fSrc[k]] && !f.markR[f.fTgt[k]] {
			f.markR[f.fTgt[k]] = true
			rows = append(rows, f.fTgt[k])
		}
	}
	f.nzRows = rows
	if len(rows) > max {
		for _, r := range rows {
			f.markR[r] = false
		}
		// L is already applied; finish with the dense F and U tails.
		for k := range f.fVal {
			if t := v[f.fSrc[k]]; t != 0 {
				v[f.fTgt[k]] -= f.fVal[k] * t
			}
		}
		copy(f.spike, v)
		f.spikeDense = true
		f.denseU(v)
		return nil, false
	}
	// Numeric F pass.
	for k := range f.fVal {
		if t := v[f.fSrc[k]]; t != 0 {
			v[f.fTgt[k]] -= f.fVal[k] * t
		}
	}
	f.stashSpikeSparse(v, rows)
	slots, ok := f.symbolic(graphUF, rows, f.markS, f.nzSlots[:0], max)
	f.nzSlots = slots
	if !ok {
		for _, r := range rows {
			f.markR[r] = false
		}
		f.denseU(v)
		return nil, false
	}
	// Numeric U back-substitution in topological order: urows entries sit
	// at higher elimination positions, finalized earlier by this walk.
	zs := f.zs
	for k := len(slots) - 1; k >= 0; k-- {
		s := slots[k]
		t := v[f.prow[s]]
		for _, e := range f.urows[s] {
			t -= e.val * zs[e.slot]
		}
		zs[s] = t / f.upiv[s]
	}
	// Gather: clear the row-space intermediate, emit the slot-space result,
	// restore the zs/mark invariants.
	for _, r := range rows {
		v[r] = 0
		f.markR[r] = false
	}
	for _, s := range slots {
		v[s] = zs[s]
		zs[s] = 0
		f.markS[s] = false
	}
	return slots, true
}

// btranSparse solves yᵀB = v for a v that is zero outside idx (slot
// space). On ok=true the row-space solution occupies exactly the returned
// index list and v is zero elsewhere; on ok=false the solve was finished
// densely past the threshold stage.
func (f *luFactor) btranSparse(v []float64, idx []int32) ([]int32, bool) {
	max := f.sparseMax()
	if len(idx) > max {
		f.btran(v)
		return nil, false
	}
	slots, ok := f.symbolic(graphUB, idx, f.markS, f.nzSlots[:0], max)
	f.nzSlots = slots
	if !ok {
		f.btran(v)
		return nil, false
	}
	// Numeric Uᵀ forward pass in topological order; zs is indexed by pivot
	// row, ucols entries sit at lower positions, finalized earlier.
	zs := f.zs
	for k := len(slots) - 1; k >= 0; k-- {
		s := slots[k]
		t := v[s]
		for _, e := range f.ucols[s] {
			t -= e.val * zs[f.prow[e.slot]]
		}
		zs[f.prow[s]] = t / f.upiv[s]
	}
	// Row-space pattern of z: the pivot rows of the discovered slots.
	rows := f.nzRows[:0]
	for _, s := range slots {
		r := f.prow[s]
		f.markR[r] = true
		rows = append(rows, r)
	}
	// Symbolic Fᵀ pass in reverse append order.
	for k := len(f.fVal) - 1; k >= 0; k-- {
		if f.markR[f.fTgt[k]] && !f.markR[f.fSrc[k]] {
			f.markR[f.fSrc[k]] = true
			rows = append(rows, f.fSrc[k])
		}
	}
	f.nzRows = rows
	if len(rows) > max {
		f.btranDenseTail(v, rows, slots, true)
		return nil, false
	}
	// Numeric Fᵀ pass.
	for k := len(f.fVal) - 1; k >= 0; k-- {
		if t := zs[f.fTgt[k]]; t != 0 {
			zs[f.fSrc[k]] -= f.fVal[k] * t
		}
	}
	// Lᵀ stage. The seeds are the (already markR-marked) F-stage rows, so
	// the DFS tracks visits in markV; the discovered superset rows2 is the
	// final pattern.
	rows2, ok := f.symbolic(graphLB, rows, f.markV, f.nzRows2[:0], max)
	f.nzRows2 = rows2
	if !ok {
		f.btranDenseTail(v, rows, slots, false)
		return nil, false
	}
	for k := len(rows2) - 1; k >= 0; k-- {
		r := rows2[k]
		e := f.lEta[r]
		t := zs[r]
		for q := f.lPtr[e]; q < f.lPtr[e+1]; q++ {
			t -= f.lVal[q] * zs[f.lIdx[q]]
		}
		zs[r] = t
	}
	// Gather and restore invariants. Seeds are cleared from v first: a seed
	// slot that is not also a result row must end zero.
	for _, s := range idx {
		v[s] = 0
	}
	for _, r := range rows {
		f.markR[r] = false
	}
	for _, s := range slots {
		f.markS[s] = false
	}
	for _, r := range rows2 {
		v[r] = zs[r]
		zs[r] = 0
		f.markV[r] = false
	}
	return rows2, true
}

// btranDenseTail finishes a btran densely after the sparse Uᵀ stage:
// scatter the zs intermediate into the dense workspace, run the remaining
// passes (Fᵀ included unless already applied), and clear every sparse
// mark. v is fully overwritten with the dense result.
func (f *luFactor) btranDenseTail(v []float64, rows, slots []int32, withF bool) {
	z := f.z
	for i := range z {
		z[i] = 0
	}
	for _, r := range rows {
		z[r] = f.zs[r]
		f.zs[r] = 0
		f.markR[r] = false
	}
	for _, s := range slots {
		f.markS[s] = false
	}
	if withF {
		for k := len(f.fVal) - 1; k >= 0; k-- {
			if t := z[f.fTgt[k]]; t != 0 {
				z[f.fSrc[k]] -= f.fVal[k] * t
			}
		}
	}
	for k := len(f.lR) - 1; k >= 0; k-- {
		r := f.lR[k]
		t := z[r]
		for q := f.lPtr[k]; q < f.lPtr[k+1]; q++ {
			t -= f.lVal[q] * z[f.lIdx[q]]
		}
		z[r] = t
	}
	copy(v, z)
}

package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomBoundedLP builds a random LP with finite variable bounds around a
// known feasible point, so the instance is never trivially infeasible at the
// root. Returns the problem and the seed point.
func randomBoundedLP(rng *rand.Rand) (*Problem, []float64) {
	n := 2 + rng.Intn(8)
	m := 1 + rng.Intn(10)
	p := NewProblem(n)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		x0[j] = float64(rng.Intn(5))
		p.SetObj(j, float64(rng.Intn(11)-5))
		p.SetBounds(j, 0, float64(5+rng.Intn(10)))
	}
	for i := 0; i < m; i++ {
		coeffs := map[int]float64{}
		lhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				c := float64(rng.Intn(9) - 4)
				if c != 0 {
					coeffs[j] = c
					lhs += c * x0[j]
				}
			}
		}
		kind := RowKind(rng.Intn(3))
		rhs := lhs
		switch kind {
		case LE:
			rhs = lhs + float64(rng.Intn(4))
		case GE:
			rhs = lhs - float64(rng.Intn(4))
		}
		p.AddRow(kind, coeffs, rhs)
	}
	return p, x0
}

// mutateBounds applies a random B&B-like bound change to the solver:
// fix a variable to an integer in range, tighten one side, or restore the
// problem's original bounds.
func mutateBounds(rng *rand.Rand, p *Problem, s *Solver) {
	j := rng.Intn(p.NumVars())
	plo, phi := p.Bounds(j)
	switch rng.Intn(4) {
	case 0: // fix to a value in the original range
		v := plo + math.Floor(rng.Float64()*(phi-plo))
		s.SetVarBounds(j, v, v)
	case 1: // tighten lower
		lo, hi := s.Bounds(j)
		nlo := lo + math.Floor(rng.Float64()*3)
		if nlo > hi {
			nlo = hi
		}
		s.SetVarBounds(j, nlo, hi)
	case 2: // tighten upper
		lo, hi := s.Bounds(j)
		nhi := hi - math.Floor(rng.Float64()*3)
		if nhi < lo {
			nhi = lo
		}
		s.SetVarBounds(j, lo, nhi)
	case 3: // restore original
		s.SetVarBounds(j, plo, phi)
	}
}

// coldReference solves the same instance with a fresh one-shot solve under
// the warm solver's current bounds.
func coldReference(t *testing.T, p *Problem, s *Solver) *Solution {
	t.Helper()
	q := p.Clone()
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := s.Bounds(j)
		q.SetBounds(j, lo, hi)
	}
	ref, err := Solve(q)
	if err != nil {
		t.Fatalf("cold reference solve: %v", err)
	}
	return ref
}

// TestWarmMatchesColdProperty is the solver-equivalence property test: a
// warm-started Solver subjected to a random sequence of bound changes must
// report the same status and objective (within 1e-6) as a from-scratch cold
// solve at every step.
func TestWarmMatchesColdProperty(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randomBoundedLP(rng)
		s := NewSolver(p)
		for step := 0; step < 12; step++ {
			if step > 0 {
				mutateBounds(rng, p, s)
			}
			got, err := s.Solve()
			if err != nil {
				t.Fatalf("seed %d step %d: warm solve error: %v", seed, step, err)
			}
			ref := coldReference(t, p, s)
			if got.Status != ref.Status {
				t.Fatalf("seed %d step %d: warm status %v, cold %v", seed, step, got.Status, ref.Status)
			}
			if got.Status != Optimal {
				continue
			}
			if math.Abs(got.Obj-ref.Obj) > 1e-6 {
				t.Fatalf("seed %d step %d: warm obj %g, cold %g", seed, step, got.Obj, ref.Obj)
			}
			// The warm solution must itself be feasible for the bounds.
			for j := 0; j < p.NumVars(); j++ {
				lo, hi := s.Bounds(j)
				if got.X[j] < lo-1e-6 || got.X[j] > hi+1e-6 {
					t.Fatalf("seed %d step %d: x[%d]=%g outside [%g,%g]", seed, step, j, got.X[j], lo, hi)
				}
			}
			if !p.RowsSatisfied(got.X, 1e-6) {
				t.Fatalf("seed %d step %d: warm solution violates rows", seed, step)
			}
		}
	}
}

// TestResolveFromBasis replays a basis snapshot on a second Solver over the
// same Problem and checks it reaches the same optimum as a cold solve.
func TestResolveFromBasis(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		p, _ := randomBoundedLP(rng)
		s1 := NewSolver(p)
		first, err := s1.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if first.Status != Optimal {
			continue
		}
		bs := s1.Basis()
		// Change bounds on a second solver and resolve from the snapshot.
		s2 := NewSolver(p)
		for k := 0; k < 3; k++ {
			mutateBounds(rng, p, s2)
		}
		got, err := s2.ResolveFrom(bs)
		if err != nil {
			t.Fatal(err)
		}
		ref := coldReference(t, p, s2)
		if got.Status != ref.Status {
			t.Fatalf("seed %d: resolve status %v, cold %v", seed, got.Status, ref.Status)
		}
		if got.Status == Optimal && math.Abs(got.Obj-ref.Obj) > 1e-6 {
			t.Fatalf("seed %d: resolve obj %g, cold %g", seed, got.Obj, ref.Obj)
		}
	}
}

// TestSolverStatsWarmPath checks that repeated bound-change solves actually
// take the warm path rather than silently rebuilding every time.
func TestSolverStatsWarmPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p, _ := randomBoundedLP(rng)
	s := NewSolver(p)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mutateBounds(rng, p, s)
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats.Solves != 21 {
		t.Fatalf("Stats.Solves = %d, want 21", s.Stats.Solves)
	}
	if s.Stats.WarmSolves == 0 {
		t.Error("no solve took the warm path")
	}
	if s.Stats.ColdSolves == s.Stats.Solves {
		t.Error("every solve was cold; warm start is not engaging")
	}
}

// TestSolverInfeasibleThenFeasible: a warm solver must recover when bounds
// make the model infeasible and are then relaxed again.
func TestSolverInfeasibleThenFeasible(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.AddRow(GE, map[int]float64{0: 1, 1: 1}, 4)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 3)
	s := NewSolver(p)
	sol, err := s.Solve()
	if err != nil || sol.Status != Optimal || math.Abs(sol.Obj-4) > 1e-9 {
		t.Fatalf("initial solve: %v %+v", err, sol)
	}
	// x0 + x1 >= 4 with both fixed to 1 is infeasible.
	s.SetVarBounds(0, 1, 1)
	s.SetVarBounds(1, 1, 1)
	sol, err = s.Solve()
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("fixed solve: err=%v status=%v, want infeasible", err, sol.Status)
	}
	s.SetVarBounds(0, 0, 3)
	s.SetVarBounds(1, 0, 3)
	sol, err = s.Solve()
	if err != nil || sol.Status != Optimal || math.Abs(sol.Obj-4) > 1e-9 {
		t.Fatalf("relaxed solve: %v %+v", err, sol)
	}
}

func BenchmarkWarmResolve(b *testing.B) {
	// The B&B access pattern: one model, per-iteration bound fix + resolve.
	rng := rand.New(rand.NewSource(7))
	n := 40
	p := NewProblem(n)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		x0[j] = float64(rng.Intn(4))
		p.SetObj(j, float64(rng.Intn(11)-5))
		p.SetBounds(j, 0, 10)
	}
	for i := 0; i < 30; i++ {
		coeffs := map[int]float64{}
		lhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				c := float64(rng.Intn(7) - 3)
				coeffs[j] = c
				lhs += c * x0[j]
			}
		}
		p.AddRow(LE, coeffs, lhs+2)
	}
	s := NewSolver(p)
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		s.SetVarBounds(j, 1, 1)
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
		s.SetVarBounds(j, 0, 10)
	}
}

package lp

import (
	"fmt"
	"math"
)

// Solver is a reusable bounded-variable simplex solver bound to one Problem.
//
// The tableau storage is allocated once at NewSolver and reused across
// solves, and the basis of the previous solve is kept so that subsequent
// solves after bound changes warm start with the dual simplex instead of a
// from-scratch two-phase solve. This is the core primitive of the
// branch-and-bound layer in internal/ilp: a B&B node is a handful of
// SetVarBounds calls followed by Solve, not a problem copy.
//
// Contract:
//
//   - Rows and objective coefficients are captured at NewSolver time; the
//     Problem's rows and objective must not change afterwards (bounds may —
//     that is the point). Changing the objective would silently invalidate
//     the dual feasibility the warm start relies on.
//   - Solve returns a Solution whose X slice is freshly allocated and safe
//     to retain.
//   - A Solver is not safe for concurrent use; create one per goroutine
//     (they share the Problem's immutable row storage).
type Solver struct {
	p       *Problem
	m       int // constraint rows
	nStruct int // structural variables
	nTotal  int // structural + m slacks + m artificial slots

	// Working bounds of every column. Structural bounds are seeded from the
	// Problem and mutated by SetVarBounds; slack bounds encode the row kind;
	// artificial bounds are opened only during cold phase 1.
	lo, hi []float64

	a      [][]float64 // m x nTotal working tableau (B^-1 A)
	b0     []float64   // B^-1 rhs, maintained through pivots
	b      []float64   // current basic-variable values
	basis  []int       // m, column basic in each row
	status []varStatus // nTotal
	cost   []float64   // active cost row (phase-dependent)
	d      []float64   // pricing scratch

	artUsed []bool // per row: artificial column in use (cold build)

	// colLimit bounds the columns the simplex machinery touches. Artificial
	// columns (>= nStruct+m) only matter while one of them is basic — i.e.
	// during cold phase 1 and for redundant rows — so outside that window
	// the hot loops stop at nStruct+m, skipping a third of the tableau.
	colLimit int

	valid     bool // tableau holds a dual-feasible basis from a prior solve
	factorAge int  // pivots applied since the last from-scratch factorization
	dValid    bool // d holds exact reduced costs for the current basis+cost
	costPhase int  // 0 unset, 1 phase-1 cost row, 2 phase-2 (true objective)
	warmCount int  // warm solves since the last from-scratch factorization
	iter      int  // pivots in the current solve
	maxIter   int

	// Stats accumulates solver activity across the Solver's lifetime.
	Stats SolverStats
}

// SolverStats counts solver activity since NewSolver.
type SolverStats struct {
	Solves     int // total Solve calls
	WarmSolves int // solves served by the warm-start path
	ColdSolves int // solves that (re)built the tableau from scratch
	Pivots     int // total simplex pivots (primal + dual)
	DualPivots int // pivots spent in the dual-simplex repair
}

// Basis is a compact snapshot of a Solver basis, suitable for storing in a
// branch-and-bound node and replaying on another Solver over the same
// Problem via ResolveFrom.
type Basis struct {
	basis  []int
	status []varStatus
}

// refactorEvery bounds how many consecutive warm solves may reuse the
// incrementally updated tableau before it is refactorized from the original
// row data, limiting numerical drift.
const refactorEvery = 256

// infeasTrustAge is the factorization age (in pivots) up to which a warm
// dual-simplex infeasibility certificate is trusted without a confirming
// cold solve. An Infeasible verdict prunes a whole B&B subtree, so beyond
// this drift budget the verdict is re-derived from the original row data.
const infeasTrustAge = 1000

// feasTol is the primal feasibility tolerance used by the warm-start path.
const feasTol = 1e-7

// NewSolver builds a reusable solver for p. The Problem's rows and objective
// are captured by reference and must not be modified afterwards; variable
// bounds are copied and owned by the Solver (see SetVarBounds).
func NewSolver(p *Problem) *Solver {
	m := len(p.rows)
	n := p.n
	nTotal := n + 2*m
	s := &Solver{
		p:        p,
		m:        m,
		nStruct:  n,
		nTotal:   nTotal,
		lo:       make([]float64, nTotal),
		hi:       make([]float64, nTotal),
		a:        make([][]float64, m),
		b0:       make([]float64, m),
		b:        make([]float64, m),
		basis:    make([]int, m),
		status:   make([]varStatus, nTotal),
		cost:     make([]float64, nTotal),
		d:        make([]float64, nTotal),
		artUsed:  make([]bool, m),
		colLimit: nTotal,
		maxIter:  2000 + 200*(m+nTotal),
	}
	for i := range s.a {
		s.a[i] = make([]float64, nTotal)
	}
	for j := 0; j < n; j++ {
		s.lo[j] = p.lower[j]
		s.hi[j] = p.upper[j]
	}
	for i, r := range p.rows {
		sc := n + i
		switch r.kind {
		case LE:
			s.lo[sc], s.hi[sc] = 0, Inf
		case GE:
			s.lo[sc], s.hi[sc] = math.Inf(-1), 0
		case EQ:
			s.lo[sc], s.hi[sc] = 0, 0
		}
	}
	// Artificial slots stay pinned at [0,0] until a cold build opens them.
	return s
}

// NumVars returns the number of structural variables.
func (s *Solver) NumVars() int { return s.nStruct }

// Bounds returns the Solver's current bounds of structural variable j.
func (s *Solver) Bounds(j int) (lo, hi float64) { return s.lo[j], s.hi[j] }

// SetVarBounds updates the working bounds of structural variable j. The
// change takes effect at the next Solve; the tableau factorization is
// unaffected (bounds do not enter the constraint matrix), which is what
// makes per-node bound fixing cheap.
func (s *Solver) SetVarBounds(j int, lo, hi float64) {
	if j < 0 || j >= s.nStruct {
		panic(fmt.Sprintf("lp: SetVarBounds: variable index %d out of range [0,%d)", j, s.nStruct))
	}
	s.lo[j] = lo
	s.hi[j] = hi
}

// Invalidate drops the warm-start state, forcing the next Solve to rebuild
// from scratch.
func (s *Solver) Invalidate() { s.valid = false }

// Warm reports whether the Solver holds a reusable basis, i.e. whether the
// next Solve will attempt the warm-start path.
func (s *Solver) Warm() bool { return s.valid }

// Basis returns a snapshot of the current basis, or nil when the Solver has
// no valid factorization. Snapshots containing basic artificial variables
// (redundant rows) are not replayable and also return nil.
func (s *Solver) Basis() *Basis {
	if !s.valid {
		return nil
	}
	for _, jb := range s.basis {
		if jb >= s.nStruct+s.m {
			return nil
		}
	}
	return &Basis{
		basis:  append([]int(nil), s.basis...),
		status: append([]varStatus(nil), s.status...),
	}
}

// Solve minimizes the captured objective under the current bounds. When the
// Solver holds a dual-feasible basis from a previous solve it warm starts
// (dual simplex repair followed by a primal cleanup); otherwise, or when the
// warm start stalls, it falls back to the cold two-phase primal solve.
func (s *Solver) Solve() (*Solution, error) {
	if sol, err, done := s.precheck(); done {
		return sol, err
	}
	s.Stats.Solves++
	s.iter = 0
	if s.valid && s.warmCount < refactorEvery {
		if sol, ok := s.solveWarm(); ok {
			return sol, nil
		}
	}
	return s.solveCold()
}

// ResolveFrom installs a basis snapshot (typically a parent node's) and
// solves under the current bounds. The snapshot must come from a Solver over
// the same Problem. When installation fails numerically the solver falls
// back to a cold solve.
func (s *Solver) ResolveFrom(bs *Basis) (*Solution, error) {
	if sol, err, done := s.precheck(); done {
		return sol, err
	}
	if bs == nil || len(bs.basis) != s.m || len(bs.status) != s.nTotal {
		return s.Solve()
	}
	s.Stats.Solves++
	s.iter = 0
	if s.install(bs) {
		if sol, ok := s.solveWarm(); ok {
			return sol, nil
		}
	}
	return s.solveCold()
}

// precheck validates bounds; done=true short-circuits the solve.
func (s *Solver) precheck() (*Solution, error, bool) {
	if len(s.p.rows) != s.m || s.p.n != s.nStruct {
		return nil, fmt.Errorf("lp: problem shape changed after NewSolver (rows %d->%d, vars %d->%d)",
			s.m, len(s.p.rows), s.nStruct, s.p.n), true
	}
	for j := 0; j < s.nStruct; j++ {
		if s.lo[j] > s.hi[j]+eps {
			return &Solution{Status: Infeasible}, nil, true
		}
		if math.IsInf(s.lo[j], -1) {
			return nil, fmt.Errorf("lp: variable %d has -Inf lower bound; free variables must be split by the caller: %w", j, ErrBadBounds), true
		}
	}
	return nil, nil, false
}

// updateColLimit shrinks the active column window to exclude artificial
// columns whenever none of them is basic.
func (s *Solver) updateColLimit() {
	firstArt := s.nStruct + s.m
	s.colLimit = firstArt
	for _, jb := range s.basis {
		if jb >= firstArt {
			s.colLimit = s.nTotal
			return
		}
	}
}

// val returns the current value of nonbasic column j (its resting bound).
func (s *Solver) val(j int) float64 {
	if s.status[j] == atUpper {
		return s.hi[j]
	}
	return s.lo[j]
}

// movable reports whether column j has a nonzero feasible range.
func (s *Solver) movable(j int) bool { return s.hi[j]-s.lo[j] > eps }

// ---- warm path ----

// solveWarm repairs the existing basis for the current bounds with the dual
// simplex and then reoptimizes with the primal. ok=false means the caller
// should fall back to a cold solve.
// solveWarm does not reset s.iter: when it bails, the pivots it spent are
// handed to the cold fallback so Stats.Pivots and Solution.Iterations keep
// counting all work done for the node.
func (s *Solver) solveWarm() (*Solution, bool) {
	s.updateColLimit()
	// Bound edits may have stranded a nonbasic variable on a bound that is
	// now infinite; move it to the finite side.
	for j := 0; j < s.nTotal; j++ {
		switch s.status[j] {
		case atLower:
			if math.IsInf(s.lo[j], -1) {
				s.status[j] = atUpper
			}
		case atUpper:
			if math.IsInf(s.hi[j], 1) {
				s.status[j] = atLower
			}
		}
	}
	s.computeB()
	st := s.dual()
	if st == IterLimit {
		s.valid = false
		return nil, false
	}
	if st == Infeasible {
		// An infeasibility verdict prunes a whole B&B subtree, and unlike
		// the Optimal path there is no cheap point-feasibility check to
		// guard it against drift of the incrementally updated tableau.
		// Trust it only while the factorization is fresh; otherwise confirm
		// with a from-scratch solve (the pivots spent so far are carried
		// into the cold solve's count).
		if s.factorAge > infeasTrustAge {
			return nil, false
		}
		s.Stats.WarmSolves++
		s.warmCount++
		s.Stats.Pivots += s.iter
		// The basis is still dual feasible: keep it for the next solve.
		return &Solution{Status: Infeasible, Iterations: s.iter}, true
	}
	// Primal cleanup: usually zero pivots, but it restores dual feasibility
	// if the repair left any reduced-cost sign off.
	s.setPhase2Cost()
	pst := s.primal()
	if pst == IterLimit || pst == Unbounded {
		// Unbounded cannot legitimately appear after a bounded parent solve;
		// treat both as numerical trouble and rebuild.
		s.valid = false
		return nil, false
	}
	s.Stats.WarmSolves++
	s.warmCount++
	s.Stats.Pivots += s.iter
	return s.finish(), true
}

// computeB derives the basic-variable values from the factorized tableau:
// b = B^-1 rhs - sum over nonbasic columns of (B^-1 A_j) * val(j).
func (s *Solver) computeB() {
	copy(s.b, s.b0)
	for j := 0; j < s.colLimit; j++ {
		if s.status[j] == basic {
			continue
		}
		v := s.val(j)
		if v == 0 {
			continue
		}
		for i := 0; i < s.m; i++ {
			if aij := s.a[i][j]; aij != 0 {
				s.b[i] -= aij * v
			}
		}
	}
}

// dual runs the bounded-variable dual simplex until the basis is primal
// feasible (returns Optimal), proven infeasible, or the repair budget is
// exhausted (IterLimit; the caller then rebuilds cold). It assumes the
// reduced costs are (near) dual feasible, which holds for any basis that
// was primal optimal under the same objective. Reduced costs are priced
// once and updated incrementally per pivot.
func (s *Solver) dual() Status {
	s.setPhase2Cost()
	if !s.dValid {
		s.priceAll()
	}
	// Degenerate assignment-style models can make the dual repair thrash on
	// zero-progress pivots; past this budget a cold rebuild is cheaper.
	budget := s.iter + 60 + s.m/6
	for {
		if s.iter >= budget {
			return IterLimit
		}
		// Leaving row: the most violated basic variable.
		r, worst := -1, feasTol
		below := false
		for i := 0; i < s.m; i++ {
			jb := s.basis[i]
			if v := s.lo[jb] - s.b[i]; v > worst && !math.IsInf(s.lo[jb], -1) {
				worst, r, below = v, i, true
			}
			if v := s.b[i] - s.hi[jb]; v > worst && !math.IsInf(s.hi[jb], 1) {
				worst, r, below = v, i, false
			}
		}
		if r < 0 {
			return Optimal // primal feasible
		}
		// Entering column: dual ratio test over columns that can move the
		// leaving variable back toward its violated bound.
		enter := -1
		best := math.Inf(1)
		ar := s.a[r]
		for j := 0; j < s.colLimit; j++ {
			if s.status[j] == basic || !s.movable(j) {
				continue
			}
			alpha := ar[j]
			var ok bool
			if below { // b[r] must increase
				ok = (s.status[j] == atLower && alpha < -pivotEps) ||
					(s.status[j] == atUpper && alpha > pivotEps)
			} else { // b[r] must decrease
				ok = (s.status[j] == atLower && alpha > pivotEps) ||
					(s.status[j] == atUpper && alpha < -pivotEps)
			}
			if !ok {
				continue
			}
			ratio := math.Abs(s.d[j] / alpha)
			if ratio < best-eps || (ratio < best+eps && (enter < 0 || j < enter)) {
				best = ratio
				enter = j
			}
		}
		if enter < 0 {
			// No column can repair the violated row: primal infeasible.
			return Infeasible
		}
		var target float64
		var leaveStatus varStatus
		if below {
			target, leaveStatus = s.lo[s.basis[r]], atLower
		} else {
			target, leaveStatus = s.hi[s.basis[r]], atUpper
		}
		alpha := ar[enter]
		t := (s.b[r] - target) / alpha
		enterVal := s.val(enter) + t
		for i := 0; i < s.m; i++ {
			if aie := s.a[i][enter]; aie != 0 {
				s.b[i] -= aie * t
			}
		}
		out := s.basis[r]
		s.status[out] = leaveStatus
		s.status[enter] = basic
		s.basis[r] = enter
		s.b[r] = enterVal
		dEnter := s.d[enter]
		s.pivotMatrix(r, enter)
		s.updateD(r, enter, dEnter)
		s.iter++
		s.Stats.DualPivots++
	}
}

// ---- cold path ----

// solveCold rebuilds the tableau from the Problem's rows and runs the
// two-phase primal simplex.
func (s *Solver) solveCold() (*Solution, error) {
	s.Stats.ColdSolves++
	s.valid = false
	s.dValid = false
	s.warmCount = 0
	nArt := s.build()
	s.factorAge = 0
	s.colLimit = s.nTotal
	if nArt == 0 {
		s.colLimit = s.nStruct + s.m
	}

	if nArt > 0 {
		s.setPhase1Cost()
		st := s.primal()
		if st == IterLimit {
			s.Stats.Pivots += s.iter
			return &Solution{Status: IterLimit, Iterations: s.iter}, nil
		}
		if s.objective() > 1e-6 {
			s.Stats.Pivots += s.iter
			return &Solution{Status: Infeasible, Iterations: s.iter}, nil
		}
		s.driveOutArtificials() // pivots without d maintenance
		s.dValid = false
		// Artificials may never re-enter.
		for i := 0; i < s.m; i++ {
			ac := s.nStruct + s.m + i
			s.lo[ac], s.hi[ac] = 0, 0
			if s.status[ac] != basic {
				s.status[ac] = atLower
			}
		}
		s.updateColLimit()
	}

	s.setPhase2Cost()
	st := s.primal()
	s.Stats.Pivots += s.iter
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: s.iter}, nil
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iterations: s.iter}, nil
	}
	return s.finish(), nil
}

// build (re)constructs the tableau for the current bounds: structural
// columns from the sparse rows, one slack per row, and artificial columns
// where the all-slack start is infeasible. It returns the number of
// artificials opened.
func (s *Solver) build() int {
	n, m := s.nStruct, s.m
	for i := range s.a {
		row := s.a[i]
		for k := range row {
			row[k] = 0
		}
	}
	// Structural variables rest at their (finite) lower bound.
	for j := 0; j < n; j++ {
		s.status[j] = atLower
	}
	nArt := 0
	for i, r := range s.p.rows {
		ai := s.a[i]
		resid := r.rhs
		for _, c := range r.coeffs {
			ai[c.j] = c.v
			resid -= c.v * s.lo[c.j]
		}
		sc := n + i
		ai[sc] = 1
		ac := n + m + i
		s.lo[ac], s.hi[ac] = 0, 0
		s.status[ac] = atLower
		s.artUsed[i] = false
		slackOK := false
		switch r.kind {
		case LE:
			slackOK = resid >= 0
			s.status[sc] = atLower // resting value 0 when not basic
		case GE:
			slackOK = resid <= 0
			s.status[sc] = atUpper // resting value 0
		case EQ:
			s.status[sc] = atLower
		}
		if slackOK {
			s.basis[i] = sc
			s.status[sc] = basic
			s.b[i] = resid
			s.b0[i] = r.rhs
			continue
		}
		// Open the artificial for this row; negate the row when the residual
		// is negative so the artificial's basic value is nonnegative.
		s.artUsed[i] = true
		nArt++
		s.hi[ac] = Inf
		sign := 1.0
		if resid < 0 {
			sign = -1
			for k := range ai {
				ai[k] = -ai[k]
			}
			resid = -resid
		}
		ai[ac] = 1
		s.basis[i] = ac
		s.status[ac] = basic
		s.b[i] = resid
		s.b0[i] = r.rhs * sign
	}
	return nArt
}

// install replays a basis snapshot: the tableau is rebuilt from the original
// rows and Gaussian-eliminated into the snapshot's basis. Returns false when
// a pivot is numerically unusable (caller falls back to cold).
func (s *Solver) install(bs *Basis) bool {
	n, m := s.nStruct, s.m
	for i := range s.a {
		row := s.a[i]
		for k := range row {
			row[k] = 0
		}
	}
	for i, r := range s.p.rows {
		ai := s.a[i]
		for _, c := range r.coeffs {
			ai[c.j] = c.v
		}
		ai[n+i] = 1
		s.b0[i] = r.rhs
		ac := n + m + i
		s.lo[ac], s.hi[ac] = 0, 0
		s.artUsed[i] = false
	}
	copy(s.basis, bs.basis)
	copy(s.status, bs.status)
	for i := 0; i < m; i++ {
		jb := s.basis[i]
		if jb >= n+m { // artificial in snapshot basis: not replayable
			return false
		}
		if math.Abs(s.a[i][jb]) <= pivotEps {
			// Partial pivoting: swap in a not-yet-factorized row where this
			// column has a usable pivot. Only the row contents move — the
			// snapshot's column-to-row assignment stays, so the displaced
			// row is simply factorized later under its own basis column.
			swapped := false
			for r := i + 1; r < m; r++ {
				if math.Abs(s.a[r][jb]) > pivotEps {
					s.a[i], s.a[r] = s.a[r], s.a[i]
					s.b0[i], s.b0[r] = s.b0[r], s.b0[i]
					swapped = true
					break
				}
			}
			if !swapped {
				return false
			}
		}
		s.pivotMatrix(i, jb)
	}
	s.warmCount = 0
	s.factorAge = 0
	s.valid = true
	s.dValid = false
	s.updateColLimit()
	return true
}

// ---- shared simplex machinery ----

func (s *Solver) setPhase1Cost() {
	for j := range s.cost {
		s.cost[j] = 0
	}
	for i := 0; i < s.m; i++ {
		if s.artUsed[i] {
			s.cost[s.nStruct+s.m+i] = 1
		}
	}
	s.costPhase = 1
	s.dValid = false
}

func (s *Solver) setPhase2Cost() {
	if s.costPhase == 2 {
		return // cost row already holds the (immutable) objective
	}
	for j := range s.cost {
		s.cost[j] = 0
	}
	for j := 0; j < s.nStruct; j++ {
		s.cost[j] = s.p.obj[j]
	}
	s.costPhase = 2
	s.dValid = false
}

// objective returns the current value of the active cost row.
func (s *Solver) objective() float64 {
	z := 0.0
	for i := 0; i < s.m; i++ {
		z += s.cost[s.basis[i]] * s.b[i]
	}
	for j := 0; j < s.colLimit; j++ {
		if s.status[j] != basic && s.cost[j] != 0 {
			z += s.cost[j] * s.val(j)
		}
	}
	return z
}

// priceAll computes reduced costs d[j] = cost[j] - cost_B . (B^-1 A_j) from
// scratch. Pivots afterwards keep d current incrementally (see updateD), so
// this full pass only runs when the cost row or factorization changed.
func (s *Solver) priceAll() {
	copy(s.d, s.cost)
	for i := 0; i < s.m; i++ {
		cb := s.cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		ai := s.a[i]
		for j := 0; j < s.colLimit; j++ {
			if ai[j] != 0 {
				s.d[j] -= cb * ai[j]
			}
		}
	}
	s.dValid = true
}

// updateD applies the rank-one reduced-cost update after a pivot in row r:
// d'_k = d_k - d_enter * a'[r][k], with a' the post-pivot row (scaled so
// a'[r][enter] == 1). dEnter is the entering column's reduced cost read
// before the pivot.
func (s *Solver) updateD(r, enter int, dEnter float64) {
	if dEnter != 0 {
		ar := s.a[r]
		for k := 0; k < s.colLimit; k++ {
			if ar[k] != 0 {
				s.d[k] -= dEnter * ar[k]
			}
		}
	}
	s.d[enter] = 0
}

// primal runs bounded-variable primal simplex pivots under the active cost
// row until optimal, unbounded, or the iteration limit.
func (s *Solver) primal() Status {
	stall := 0
	lastObj := math.Inf(1)
	sinceReprice := 0
	if !s.dValid {
		s.priceAll()
	}
	for {
		if s.iter >= s.maxIter {
			return IterLimit
		}
		// Reduced costs are maintained incrementally; refresh periodically
		// to bound accumulated roundoff.
		if sinceReprice >= 64 {
			s.priceAll()
			sinceReprice = 0
		}

		useBland := stall > 50
		enter := -1
		best := -eps
		for j := 0; j < s.colLimit; j++ {
			if s.status[j] == basic || !s.movable(j) {
				continue
			}
			var improve float64
			switch s.status[j] {
			case atLower:
				improve = s.d[j] // want d[j] < 0
			case atUpper:
				improve = -s.d[j] // want d[j] > 0
			}
			if improve < best-eps || (useBland && improve < -eps) {
				if useBland {
					enter = j
					break
				}
				best = improve
				enter = j
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Entering variable moves up from its lower bound or down from its
		// upper bound; basic values change by -a[i][enter]*dir*delta.
		dir := 1.0
		if s.status[enter] == atUpper {
			dir = -1.0
		}

		leave := -1
		leaveBound := atLower
		limit := s.hi[enter] - s.lo[enter] // bound-flip distance (may be Inf)
		for i := 0; i < s.m; i++ {
			aie := s.a[i][enter] * dir
			jb := s.basis[i]
			if aie > pivotEps {
				// Basic variable decreases toward its lower bound.
				if math.IsInf(s.lo[jb], -1) {
					continue
				}
				ratio := (s.b[i] - s.lo[jb]) / aie
				if ratio < -eps {
					ratio = 0
				}
				if ratio < limit-eps || (ratio < limit+eps && (leave < 0 || jb < s.basis[leave])) {
					limit = ratio
					leave = i
					leaveBound = atLower
				}
			} else if aie < -pivotEps {
				// Basic variable increases toward its upper bound.
				if math.IsInf(s.hi[jb], 1) {
					continue
				}
				ratio := (s.hi[jb] - s.b[i]) / (-aie)
				if ratio < -eps {
					ratio = 0
				}
				if ratio < limit-eps || (ratio < limit+eps && (leave < 0 || jb < s.basis[leave])) {
					limit = ratio
					leave = i
					leaveBound = atUpper
				}
			}
		}

		if math.IsInf(limit, 1) {
			return Unbounded
		}

		s.iter++
		sinceReprice++
		if leave < 0 {
			s.boundFlip(enter, dir, limit) // d is unaffected: no basis change
		} else {
			dEnter := s.d[enter]
			s.stepAndPivot(enter, dir, limit, leave, leaveBound)
			s.updateD(leave, enter, dEnter)
		}

		obj := s.objective()
		if obj < lastObj-1e-12 {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
}

// boundFlip moves nonbasic variable j across its range without a pivot.
func (s *Solver) boundFlip(j int, dir, delta float64) {
	for i := 0; i < s.m; i++ {
		if aij := s.a[i][j]; aij != 0 {
			s.b[i] -= aij * dir * delta
		}
	}
	if s.status[j] == atLower {
		s.status[j] = atUpper
	} else {
		s.status[j] = atLower
	}
}

// stepAndPivot advances entering variable j by delta, makes it basic in the
// leaving row, and parks the leaving variable at the indicated bound.
func (s *Solver) stepAndPivot(enter int, dir, delta float64, leave int, leaveBound varStatus) {
	enterVal := s.val(enter) + dir*delta
	if delta != 0 {
		for i := 0; i < s.m; i++ {
			if aie := s.a[i][enter]; aie != 0 {
				s.b[i] -= aie * dir * delta
			}
		}
	}
	out := s.basis[leave]
	s.status[out] = leaveBound
	s.status[enter] = basic
	s.basis[leave] = enter
	s.b[leave] = enterVal
	s.pivotMatrix(leave, enter)
}

// driveOutArtificials pivots basic artificials (at value 0 after a
// successful phase 1) out of the basis where possible. Rows whose artificial
// cannot leave are redundant and keep it basic at 0.
func (s *Solver) driveOutArtificials() {
	firstArt := s.nStruct + s.m
	for i := 0; i < s.m; i++ {
		jb := s.basis[i]
		if jb < firstArt {
			continue
		}
		piv := -1
		for j := 0; j < firstArt; j++ {
			if s.status[j] == basic {
				continue
			}
			if math.Abs(s.a[i][j]) > pivotEps {
				piv = j
				break
			}
		}
		if piv < 0 {
			continue
		}
		// Degenerate pivot: the entering variable keeps its resting value.
		out := s.basis[i]
		s.status[out] = atLower
		enterVal := s.val(piv)
		s.status[piv] = basic
		s.basis[i] = piv
		s.b[i] = enterVal
		s.pivotMatrix(i, piv)
	}
}

// pivotMatrix eliminates column j from all rows except row i and scales row
// i so a[i][j] == 1. b0 (= B^-1 rhs) is transformed alongside; b holds
// basic-variable values and is maintained by the callers.
func (s *Solver) pivotMatrix(i, j int) {
	ri := s.a[i][:s.colLimit]
	inv := 1.0 / s.a[i][j]
	for k := range ri {
		ri[k] *= inv
	}
	ri[j] = 1 // exact
	s.b0[i] *= inv
	s.factorAge++

	for r := 0; r < s.m; r++ {
		if r == i {
			continue
		}
		f := s.a[r][j]
		if f == 0 {
			continue
		}
		// Branchless update: the tableau rows are dense after a few pivots,
		// so testing each ri[k] for zero costs more than the multiply.
		rr := s.a[r][:len(ri)]
		for k, v := range ri {
			rr[k] -= f * v
		}
		rr[j] = 0 // exact
		s.b0[r] -= f * s.b0[i]
	}
}

// finish marks the factorization reusable and extracts the solution.
func (s *Solver) finish() *Solution {
	s.valid = true
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		x[j] = s.val(j)
	}
	for i := 0; i < s.m; i++ {
		if jb := s.basis[i]; jb < s.nStruct {
			x[jb] = s.b[i]
		}
	}
	obj := 0.0
	for j := 0; j < s.nStruct; j++ {
		obj += s.p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iterations: s.iter}
}

package lp

import (
	"fmt"
	"math"

	"slices"

	"repro/internal/faultinject"
)

// Solver is a reusable bounded-variable simplex solver bound to one Problem.
//
// It is a *revised* simplex: the constraint matrix is stored once in sparse
// column-major (CSC) form and the basis inverse is represented as a sparse
// LU factorization B = L·F·U maintained by Forrest–Tomlin updates (see
// lu.go). Every quantity the simplex needs — basic-variable values, dual
// prices, a pivot column, a pivot row — is computed on demand with sparse
// FTRAN/BTRAN passes over the factor instead of being carried in a dense
// m×n tableau. Unlike a product-form eta file, the Forrest–Tomlin update
// keeps FTRAN/BTRAN cost proportional to the factor's fill instead of the
// number of pivots since reinversion, so refactorization is triggered by
// fill-in and stability (see maybeRefactor), not a fixed pivot count.
//
// Pricing is devex: the primal simplex keeps incrementally updated reduced
// costs and devex reference weights and picks the entering column with the
// best weighted violation (with an exact re-price before declaring
// optimality, and a Bland fallback under stalling); the dual simplex
// weights row violations the same way. The dual ratio test is long-step
// (bound-flipping): box-bounded nonbasic columns whose breakpoint is passed
// flip to their opposite bound — absorbing infeasibility without consuming
// a pivot — and a single combined FTRAN updates the basic values for all
// flips of an iteration.
//
// The basis of the previous solve is kept so that subsequent solves after
// bound changes warm start with the dual simplex instead of a from-scratch
// two-phase solve. This is the core primitive of the branch-and-bound layer
// in internal/ilp: a B&B node is a handful of SetVarBounds calls followed
// by Solve, not a problem copy.
//
// Contract:
//
//   - Rows and objective coefficients are captured at NewSolver time; the
//     Problem's rows and objective must not change afterwards (bounds may —
//     that is the point). Changing the objective would silently invalidate
//     the dual feasibility the warm start relies on. The *Solver* can still
//     grow rows on the fly: AddRows appends solver-local rows (cutting
//     planes) without touching the shared Problem, keeping the current
//     basis so the next Solve re-enters through the dual simplex (see
//     dynrows.go).
//   - Solve returns a Solution whose X slice is freshly allocated and safe
//     to retain — unless SetReuseSolution(true) put the Solver in
//     shared-buffer mode, where the Solution and its X are valid only until
//     the next solve on this Solver (the allocation-free hot-path mode the
//     branch-and-bound layer uses).
//   - A Solver is not safe for concurrent use; create one per goroutine
//     (they share the Problem's immutable row storage).
type Solver struct {
	p           *Problem
	m           int // constraint rows (mBase + dynamically added rows)
	mBase       int // rows captured from the Problem at NewSolver time
	nStruct     int // structural variables (nStructBase + dynamically added columns)
	nStructBase int // structural columns captured from the Problem at NewSolver time
	nTotal      int // structural + m slacks + m artificial slots

	// Dynamically added rows (AddRows): row-major storage plus a
	// per-structural-column extension index so the CSC accessors see the
	// extra nonzeros without rewriting the base CSC arrays. added rows are
	// solver-local — the shared Problem is never touched, so concurrent
	// Solvers over one Problem can hold different cut sets.
	added   []addedRow
	extCols [][]extEntry // extCols[j]: entries of structural column j in added rows
	// Cut-row arena: one append-only backing store for every added row's
	// cols/vals, truncated (capacity kept) by DropAddedRows, so a full
	// drop/re-add separation cycle costs O(1) allocations once the
	// high-water mark is reached.
	cutCols []int32
	cutVals []float64

	// Dynamically added columns (AddCols): column-major side storage, one
	// entry list per appended column over BASE rows only (added rows see
	// appended columns through extCols exactly like base columns), plus the
	// appended objective coefficients. Like added rows, appended columns are
	// solver-local — the shared Problem is never touched. This is the
	// column-generation primitive the branch-and-price layer is built on.
	newCols [][]colEntry // newCols[j-nStructBase]: base-row entries of appended column j
	extObj  []float64    // extObj[j-nStructBase]: objective coefficient of appended column j

	// Working bounds of every column. Structural bounds are seeded from the
	// Problem and mutated by SetVarBounds; slack bounds encode the row kind;
	// artificial bounds are opened only during cold phase 1.
	lo, hi []float64

	// CSC storage of the structural and slack columns (fixed at NewSolver).
	// Column j's nonzeros are colRow/colVal[colPtr[j]:colPtr[j+1]].
	// Artificial columns are implicit unit columns: column nStruct+m+i has
	// the single entry artSign[i] at row i.
	colPtr []int32
	colRow []int32
	colVal []float64
	rhs    []float64

	artUsed []bool    // per row: artificial column in use (cold build)
	artSign []float64 // per row: ±1 entry of the artificial column

	basis   []int       // m, column basic in each row slot
	status  []varStatus // nTotal
	xb      []float64   // basic-variable value per row slot
	cost    []float64   // active cost row (phase-dependent)
	objCols []int32     // columns with nonzero active cost (objective scan)

	// lu is the current basis factorization; refactor() rebuilds into
	// luSpare and swaps, so a singular reinversion never destroys a usable
	// factor. factorAge mirrors lu.updates (Forrest–Tomlin updates since
	// the last reinversion) for the dual-infeasibility verification.
	lu        *luFactor
	luSpare   *luFactor
	factorAge int

	// Scratch (allocated once; alpha/y/rho/flip/tau are length m, d/dw
	// length nTotal).
	alpha   []float64 // FTRAN pivot column
	y       []float64 // BTRAN dual prices
	rho     []float64 // BTRAN unit row
	flipCol []float64 // combined bound-flip column (dual long step)
	tau     []float64 // steepest-edge: FTRAN of the pivot row
	d       []float64 // incremental reduced costs (primal devex pricing)
	dw      []float64 // devex reference weights per column (primal)
	dualW   []float64 // reference weights per row slot (dual devex / steepest edge)
	bp      []dualBP  // dual ratio-test breakpoints

	// Hyper-sparse bookkeeping: each sparse-capable scratch vector carries
	// a zero-outside-pattern invariant so the next sparse load clears only
	// its tracked nonzeros. A dense flag marks the vector dirty everywhere
	// (set whenever a dense path wrote it), costing one O(m) clear before
	// it re-enters the sparse regime. The index lists are solver-owned
	// copies — the lists the factor returns alias its scratch and are
	// clobbered by the next solve.
	alphaNZ    []int32
	rhoNZ      []int32
	flipNZ     []int32
	tauNZ      []int32
	alphaDense bool
	rhoDense   bool
	flipDense  bool
	tauDense   bool
	colIdx     []int32  // sparse column-load index scratch
	unitIdx    [1]int32 // unit-vector seed for btranUnit
	rowMark    []bool   // dedup marks for the combined flip column

	pricing Pricing // dual pricing rule (SetPricing)

	built     bool // engine state materialized (ensureBuilt)
	valid     bool // basis + factorization reusable for a warm start
	costPhase int  // 0 unset, 1 phase-1 cost row, 2 phase-2 (true objective)
	iter      int  // pivots in the current solve
	maxIter   int

	// Shared-solution mode (SetReuseSolution): finish() fills these instead
	// of allocating.
	reuseSol bool
	sol      Solution
	solX     []float64

	// Stats accumulates solver activity across the Solver's lifetime.
	Stats SolverStats
}

// SolverStats counts solver activity since NewSolver.
type SolverStats struct {
	Solves           int // total Solve calls
	WarmSolves       int // solves served by the warm-start path
	ColdSolves       int // solves that (re)built the basis from scratch
	Pivots           int // total simplex pivots (primal + dual)
	DualPivots       int // pivots spent in the dual-simplex repair
	RowsAdded        int // constraint rows appended to the live solver (AddRows)
	ColsAdded        int // structural columns appended to the live solver (AddCols)
	Refactorizations int // basis reinversions (cold builds, fill/stability triggers, installs)
	BoundFlips       int // dual long-step bound flips (infeasibility absorbed without a pivot)
	UpdateNNZ        int // cumulative Forrest–Tomlin update-file nonzeros appended
	SparseFTRANs     int // FTRANs completed on the hyper-sparse path
	SparseBTRANs     int // BTRANs completed on the hyper-sparse path
	DenseFallbacks   int // index-carrying solves that crossed the density threshold
}

// Pricing selects the dual-simplex leaving-row pricing rule (SetPricing).
type Pricing uint8

const (
	// PricingDevex is the default: approximate reference weights updated
	// with the max-rule from the FTRAN'd entering column, no extra solves.
	PricingDevex Pricing = iota
	// PricingSteepestEdge maintains exact steepest-edge row weights in the
	// reference framework (Forrest–Goldfarb): each dual pivot spends one
	// extra FTRAN of the (hyper-sparse) pivot row to update the weights
	// exactly, usually buying fewer pivots on degenerate repairs.
	PricingSteepestEdge
)

// String returns the wire/metrics spelling of the pricing rule.
func (p Pricing) String() string {
	if p == PricingSteepestEdge {
		return "steepest-edge"
	}
	return "devex"
}

// dseWeightFloor guards the exact steepest-edge recurrence against
// roundoff driving a reference weight to zero or negative.
const dseWeightFloor = 1e-10

// SetPricing selects the dual pricing rule; it takes effect at the next
// Solve and is safe to set at any point between solves.
func (s *Solver) SetPricing(p Pricing) { s.pricing = p }

// PricingRule returns the selected dual pricing rule.
func (s *Solver) PricingRule() Pricing { return s.pricing }

// Delta returns the field-wise difference s - base: the activity between
// two snapshots of a live Solver's Stats. This is how span-scoped
// observability (trace counters, per-phase benchmarks) isolates one
// search's pivots from the Solver's lifetime totals.
func (s SolverStats) Delta(base SolverStats) SolverStats {
	return SolverStats{
		Solves:           s.Solves - base.Solves,
		WarmSolves:       s.WarmSolves - base.WarmSolves,
		ColdSolves:       s.ColdSolves - base.ColdSolves,
		Pivots:           s.Pivots - base.Pivots,
		DualPivots:       s.DualPivots - base.DualPivots,
		RowsAdded:        s.RowsAdded - base.RowsAdded,
		ColsAdded:        s.ColsAdded - base.ColsAdded,
		Refactorizations: s.Refactorizations - base.Refactorizations,
		BoundFlips:       s.BoundFlips - base.BoundFlips,
		UpdateNNZ:        s.UpdateNNZ - base.UpdateNNZ,
		SparseFTRANs:     s.SparseFTRANs - base.SparseFTRANs,
		SparseBTRANs:     s.SparseBTRANs - base.SparseBTRANs,
		DenseFallbacks:   s.DenseFallbacks - base.DenseFallbacks,
	}
}

// Accumulate adds t into s field-wise (aggregating per-worker solver
// stats into a search total).
func (s *SolverStats) Accumulate(t SolverStats) {
	s.Solves += t.Solves
	s.WarmSolves += t.WarmSolves
	s.ColdSolves += t.ColdSolves
	s.Pivots += t.Pivots
	s.DualPivots += t.DualPivots
	s.RowsAdded += t.RowsAdded
	s.ColsAdded += t.ColsAdded
	s.Refactorizations += t.Refactorizations
	s.BoundFlips += t.BoundFlips
	s.UpdateNNZ += t.UpdateNNZ
	s.SparseFTRANs += t.SparseFTRANs
	s.SparseBTRANs += t.SparseBTRANs
	s.DenseFallbacks += t.DenseFallbacks
}

// dualBP is one dual ratio-test breakpoint: nonbasic column j would change
// reduced-cost sign at dual step |d_j/alpha_j|.
type dualBP struct {
	j     int32
	alpha float64
	ratio float64
}

// Basis is a compact snapshot of a Solver basis, suitable for storing in a
// branch-and-bound node and replaying on another Solver over the same
// Problem via ResolveFrom.
type Basis struct {
	basis  []int
	status []varStatus
}

// feasTol is the primal feasibility tolerance used by the warm-start path.
const feasTol = 1e-7

// ---- construction ----

// NewSolver builds a reusable solver for p. The Problem's rows and objective
// are captured by reference and must not be modified afterwards; variable
// bounds are copied and owned by the Solver (see SetVarBounds).
func NewSolver(p *Problem) *Solver {
	m := len(p.rows)
	n := p.n
	nTotal := n + 2*m
	s := &Solver{
		p:           p,
		m:           m,
		mBase:       m,
		nStruct:     n,
		nStructBase: n,
		nTotal:      nTotal,
		lo:          make([]float64, nTotal),
		hi:          make([]float64, nTotal),
		maxIter:     2000 + 200*(m+nTotal),
	}
	for j := 0; j < n; j++ {
		s.lo[j] = p.lower[j]
		s.hi[j] = p.upper[j]
	}
	for i, r := range p.rows {
		sc := n + i
		switch r.kind {
		case LE:
			s.lo[sc], s.hi[sc] = 0, Inf
		case GE:
			s.lo[sc], s.hi[sc] = math.Inf(-1), 0
		case EQ:
			s.lo[sc], s.hi[sc] = 0, 0
		}
	}
	// Artificial slots stay pinned at [0,0] until a cold build opens them.
	// Everything else — the CSC matrix, the LU workspace, the pricing and
	// ratio-test scratch — materializes lazily on the first solve
	// (ensureBuilt): a branch-and-bound search whose root is fathomed
	// combinatorially never solves an LP, and must not pay for one.
	return s
}

// ensureBuilt materializes the solver engine on first use: CSC assembly of
// the structural and slack columns, the LU workspace, and the iteration
// scratch. NewSolver defers this so that bound bookkeeping (Bounds /
// SetVarBounds, the only state branch-and-bound needs before its first LP
// solve) stays cheap. The float64 scratch shares one backing allocation;
// the pieces are capped (three-index slices) so a later growth path
// (AddRows) reallocates a piece instead of stomping its neighbour.
func (s *Solver) ensureBuilt() {
	if s.built {
		return
	}
	s.built = true
	// The CSC covers exactly the Problem's columns: AddRows and AddCols both
	// force the build before mutating, so nStruct == nStructBase here.
	m, n, nTotal := s.m, s.nStructBase, s.nTotal
	buf := make([]float64, 9*m+3*nTotal)
	grab := func(k int) []float64 {
		p := buf[:k:k]
		buf = buf[k:]
		return p
	}
	s.rhs = grab(m)
	s.artSign = grab(m)
	s.xb = grab(m)
	s.alpha = grab(m)
	s.y = grab(m)
	s.rho = grab(m)
	s.flipCol = grab(m)
	s.tau = grab(m)
	s.dualW = grab(m)
	s.cost = grab(nTotal)
	s.d = grab(nTotal)
	s.dw = grab(nTotal)
	s.rowMark = make([]bool, m)
	s.artUsed = make([]bool, m)
	s.basis = make([]int, m)
	s.status = make([]varStatus, nTotal)
	s.lu = &luFactor{}
	s.luSpare = &luFactor{}
	s.lu.init(m)
	// CSC assembly: structural columns from the sparse rows, then one unit
	// slack column per row.
	nnz := m
	for _, r := range s.p.rows {
		nnz += len(r.coeffs)
	}
	s.colPtr = make([]int32, n+m+1)
	s.colRow = make([]int32, nnz)
	s.colVal = make([]float64, nnz)
	for _, r := range s.p.rows {
		for _, c := range r.coeffs {
			s.colPtr[c.j+1]++
		}
	}
	for i := 0; i < m; i++ {
		s.colPtr[n+i+1] = 1
	}
	for j := 0; j < n+m; j++ {
		s.colPtr[j+1] += s.colPtr[j]
	}
	fill := make([]int32, n+m)
	copy(fill, s.colPtr[:n+m])
	for i, r := range s.p.rows {
		s.rhs[i] = r.rhs
		for _, c := range r.coeffs {
			k := fill[c.j]
			s.colRow[k] = int32(i)
			s.colVal[k] = c.v
			fill[c.j]++
		}
		k := fill[n+i]
		s.colRow[k] = int32(i)
		s.colVal[k] = 1
		fill[n+i]++
	}
}

// NumVars returns the number of structural variables.
func (s *Solver) NumVars() int { return s.nStruct }

// Bounds returns the Solver's current bounds of structural variable j.
func (s *Solver) Bounds(j int) (lo, hi float64) { return s.lo[j], s.hi[j] }

// SetVarBounds updates the working bounds of structural variable j. The
// change takes effect at the next Solve; the basis factorization is
// unaffected (bounds do not enter the constraint matrix), which is what
// makes per-node bound fixing cheap.
func (s *Solver) SetVarBounds(j int, lo, hi float64) {
	if j < 0 || j >= s.nStruct {
		panic(fmt.Sprintf("lp: SetVarBounds: variable index %d out of range [0,%d)", j, s.nStruct))
	}
	s.lo[j] = lo
	s.hi[j] = hi
}

// Invalidate drops the warm-start state, forcing the next Solve to rebuild
// from scratch.
func (s *Solver) Invalidate() { s.valid = false }

// Warm reports whether the Solver holds a reusable basis, i.e. whether the
// next Solve will attempt the warm-start path.
func (s *Solver) Warm() bool { return s.valid }

// SetReuseSolution switches the Solver into shared-buffer mode: Solve and
// ResolveFrom return a Solution owned by the Solver whose X slice is valid
// only until the next solve. The branch-and-bound hot path uses this to
// keep node re-solves allocation-free; callers that retain a result must
// copy it.
func (s *Solver) SetReuseSolution(on bool) { s.reuseSol = on }

// Basis returns a snapshot of the current basis, or nil when the Solver has
// no valid factorization. Snapshots containing basic artificial variables
// (redundant rows) are not replayable and also return nil.
func (s *Solver) Basis() *Basis { return s.BasisInto(nil) }

// BasisInto is Basis with buffer reuse: when bs is non-nil its slices are
// overwritten and it is returned, so a pooled snapshot costs no allocation.
func (s *Solver) BasisInto(bs *Basis) *Basis {
	if !s.valid {
		return nil
	}
	for _, jb := range s.basis {
		if jb >= s.nStruct+s.m {
			return nil
		}
	}
	if bs == nil {
		bs = &Basis{}
	}
	bs.basis = append(bs.basis[:0], s.basis...)
	bs.status = append(bs.status[:0], s.status...)
	return bs
}

// Solve minimizes the captured objective under the current bounds. When the
// Solver holds a dual-feasible basis from a previous solve it warm starts
// (dual simplex repair followed by a primal cleanup); otherwise, or when the
// warm start stalls, it falls back to the cold two-phase primal solve.
func (s *Solver) Solve() (*Solution, error) {
	if sol, err, done := s.precheck(); done {
		return sol, err
	}
	s.ensureBuilt()
	s.Stats.Solves++
	s.iter = 0
	if s.valid {
		if sol, ok := s.solveWarm(); ok {
			return sol, nil
		}
	}
	return s.solveCold()
}

// ResolveFrom installs a basis snapshot (typically a parent node's) and
// solves under the current bounds. The snapshot must come from a Solver over
// the same Problem. When installation fails numerically the solver falls
// back to a cold solve.
func (s *Solver) ResolveFrom(bs *Basis) (*Solution, error) {
	if sol, err, done := s.precheck(); done {
		return sol, err
	}
	if bs == nil || len(bs.basis) != s.m || len(bs.status) != s.nTotal {
		return s.Solve()
	}
	s.ensureBuilt()
	s.Stats.Solves++
	s.iter = 0
	if s.install(bs) {
		if sol, ok := s.solveWarm(); ok {
			return sol, nil
		}
	}
	return s.solveCold()
}

// precheck validates bounds; done=true short-circuits the solve.
func (s *Solver) precheck() (*Solution, error, bool) {
	if len(s.p.rows) != s.mBase || s.p.n != s.nStructBase {
		return nil, fmt.Errorf("lp: problem shape changed after NewSolver (rows %d->%d, vars %d->%d)",
			s.mBase, len(s.p.rows), s.nStructBase, s.p.n), true
	}
	for j := 0; j < s.nStruct; j++ {
		if s.lo[j] > s.hi[j]+eps {
			return s.statusResult(Infeasible), nil, true
		}
		if math.IsInf(s.lo[j], -1) {
			return nil, fmt.Errorf("lp: variable %d has -Inf lower bound; free variables must be split by the caller: %w", j, ErrBadBounds), true
		}
	}
	return nil, nil, false
}

// val returns the current value of nonbasic column j (its resting bound).
func (s *Solver) val(j int) float64 {
	if s.status[j] == atUpper {
		return s.hi[j]
	}
	return s.lo[j]
}

// movable reports whether column j has a nonzero feasible range.
func (s *Solver) movable(j int) bool { return s.hi[j]-s.lo[j] > eps }

// colDot returns column j's dot product with the dense row vector v.
func (s *Solver) colDot(j int, v []float64) float64 {
	switch {
	case j < s.nStructBase:
		sum := 0.0
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			sum += s.colVal[k] * v[s.colRow[k]]
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				sum += e.v * v[e.i]
			}
		}
		return sum
	case j < s.nStruct:
		// Appended column (AddCols): base-row entries in the side storage,
		// added-row entries through extCols like any structural column.
		sum := 0.0
		for _, e := range s.newCols[j-s.nStructBase] {
			sum += e.v * v[e.i]
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				sum += e.v * v[e.i]
			}
		}
		return sum
	case j < s.nStruct+s.m:
		// Slack: implicit unit column (base slacks are unit columns in the
		// CSC too, but their CSC index is pinned to nStructBase and would be
		// stale after AddCols — the implicit form is always right).
		return v[j-s.nStruct]
	default:
		i := j - s.nStruct - s.m
		return s.artSign[i] * v[i]
	}
}

// loadCol writes column j densely into v (v is fully overwritten).
func (s *Solver) loadCol(j int, v []float64) {
	for i := range v {
		v[i] = 0
	}
	switch {
	case j < s.nStructBase:
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			v[s.colRow[k]] = s.colVal[k]
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				v[e.i] = e.v
			}
		}
	case j < s.nStruct:
		for _, e := range s.newCols[j-s.nStructBase] {
			v[e.i] = e.v
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				v[e.i] = e.v
			}
		}
	case j < s.nStruct+s.m:
		v[j-s.nStruct] = 1
	default:
		i := j - s.nStruct - s.m
		v[i] = s.artSign[i]
	}
}

// colAxpy adds t times column j into the dense row vector v.
func (s *Solver) colAxpy(j int, t float64, v []float64) {
	switch {
	case j < s.nStructBase:
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			v[s.colRow[k]] += s.colVal[k] * t
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				v[e.i] += e.v * t
			}
		}
	case j < s.nStruct:
		for _, e := range s.newCols[j-s.nStructBase] {
			v[e.i] += e.v * t
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				v[e.i] += e.v * t
			}
		}
	case j < s.nStruct+s.m:
		v[j-s.nStruct] += t
	default:
		i := j - s.nStruct - s.m
		v[i] += s.artSign[i] * t
	}
}

// ftranCol computes alpha = B⁻¹ A_j into the alpha scratch via the
// hyper-sparse path (columns are sparse by construction; the density
// threshold decides per solve). The returned index list is non-nil when
// the result is sparse — alpha is then zero outside it — and nil when the
// solve fell back to the dense path. The spike F⁻¹L⁻¹A_j is stashed
// inside the factor for a following ftUpdate either way.
func (s *Solver) ftranCol(j int) ([]float64, []int32) {
	if s.alphaDense {
		for i := range s.alpha {
			s.alpha[i] = 0
		}
		s.alphaDense = false
	} else {
		for _, i := range s.alphaNZ {
			s.alpha[i] = 0
		}
	}
	s.colIdx = s.loadColSparse(j, s.alpha, s.colIdx[:0])
	nz, ok := s.lu.ftranSparse(s.alpha, s.colIdx)
	if ok {
		s.Stats.SparseFTRANs++
		s.alphaNZ = append(s.alphaNZ[:0], nz...)
		return s.alpha, s.alphaNZ
	}
	s.Stats.DenseFallbacks++
	s.alphaDense = true
	s.alphaNZ = s.alphaNZ[:0]
	return s.alpha, nil
}

// loadColSparse scatters column j into v (v must be zero beforehand) and
// appends the touched row indices to idx. Within one column the CSC rows
// and the added-row extension rows are disjoint, so no dedup is needed.
func (s *Solver) loadColSparse(j int, v []float64, idx []int32) []int32 {
	switch {
	case j < s.nStructBase:
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			r := s.colRow[k]
			v[r] = s.colVal[k]
			idx = append(idx, r)
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				v[e.i] = e.v
				idx = append(idx, e.i)
			}
		}
	case j < s.nStruct:
		for _, e := range s.newCols[j-s.nStructBase] {
			v[e.i] = e.v
			idx = append(idx, e.i)
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				v[e.i] = e.v
				idx = append(idx, e.i)
			}
		}
	case j < s.nStruct+s.m:
		r := int32(j - s.nStruct)
		v[r] = 1
		idx = append(idx, r)
	default:
		i := int32(j - s.nStruct - s.m)
		v[i] = s.artSign[i]
		idx = append(idx, i)
	}
	return idx
}

// btranUnit computes rho = BTRAN(e_r) — the pivot row of slot r — via the
// hyper-sparse path. The returned index list is non-nil when the result
// is sparse (rho zero outside it), nil on a dense fallback.
func (s *Solver) btranUnit(r int) ([]float64, []int32) {
	if s.rhoDense {
		for i := range s.rho {
			s.rho[i] = 0
		}
		s.rhoDense = false
	} else {
		for _, i := range s.rhoNZ {
			s.rho[i] = 0
		}
	}
	s.rho[r] = 1
	s.unitIdx[0] = int32(r)
	nz, ok := s.lu.btranSparse(s.rho, s.unitIdx[:])
	if ok {
		s.Stats.SparseBTRANs++
		s.rhoNZ = append(s.rhoNZ[:0], nz...)
		return s.rho, s.rhoNZ
	}
	s.Stats.DenseFallbacks++
	s.rhoDense = true
	s.rhoNZ = s.rhoNZ[:0]
	return s.rho, nil
}

// computeTau prepares the exact steepest-edge update term τ = B⁻¹ρ for
// the current pivot row (rho must hold BTRAN(e_r); rhoNZ its sparse
// pattern or nil). τ lands in s.tau under the zero-outside-pattern
// invariant, ready for the weight recurrence after the entering column's
// FTRAN.
func (s *Solver) computeTau(rhoNZ []int32) {
	if s.tauDense {
		for i := range s.tau {
			s.tau[i] = 0
		}
		s.tauDense = false
	} else {
		for _, i := range s.tauNZ {
			s.tau[i] = 0
		}
	}
	if rhoNZ != nil {
		for _, i := range rhoNZ {
			s.tau[i] = s.rho[i]
		}
		nz, ok := s.lu.ftranSparse(s.tau, rhoNZ)
		if ok {
			s.Stats.SparseFTRANs++
			s.tauNZ = append(s.tauNZ[:0], nz...)
			return
		}
		s.Stats.DenseFallbacks++
	} else {
		copy(s.tau, s.rho)
		s.lu.ftran(s.tau)
	}
	s.tauDense = true
	s.tauNZ = s.tauNZ[:0]
}

// computeY prices the basis: y = BTRAN(cost_B), the dual prices under the
// active cost row.
func (s *Solver) computeY() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.cost[s.basis[i]]
	}
	s.lu.btran(s.y)
}

// reducedCost returns d_j = cost_j - y·A_j (computeY must be current).
func (s *Solver) reducedCost(j int) float64 {
	return s.cost[j] - s.colDot(j, s.y)
}

// computeB derives the basic-variable values for the current bounds:
// xb = B⁻¹ (rhs - Σ over nonbasic columns of A_j · val(j)).
func (s *Solver) computeB() {
	r := s.alpha
	s.alphaDense = true // alpha doubles as the dense RHS accumulator here
	copy(r, s.rhs)
	for j := 0; j < s.nStruct+s.m; j++ {
		if s.status[j] == basic {
			continue
		}
		v := s.val(j)
		if v == 0 {
			continue
		}
		switch {
		case j < s.nStructBase:
			for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
				r[s.colRow[k]] -= s.colVal[k] * v
			}
			if s.extCols != nil {
				for _, e := range s.extCols[j] {
					r[e.i] -= e.v * v
				}
			}
		case j < s.nStruct:
			for _, e := range s.newCols[j-s.nStructBase] {
				r[e.i] -= e.v * v
			}
			if s.extCols != nil {
				for _, e := range s.extCols[j] {
					r[e.i] -= e.v * v
				}
			}
		default:
			r[j-s.nStruct] -= v // slack: implicit unit column
		}
	}
	// Nonbasic artificials rest at 0 and contribute nothing.
	s.lu.ftran(r)
	copy(s.xb, r)
}

// refactor rebuilds the LU factorization from the original column data for
// the current basis (reinversion). It factorizes into the spare buffer and
// swaps on success, so a numerically singular basis (returns false) leaves
// the existing factor untouched. Basis slots are NOT permuted.
func (s *Solver) refactor() bool {
	if !s.factorizeBasis(s.luSpare) {
		return false
	}
	s.lu, s.luSpare = s.luSpare, s.lu
	s.factorAge = 0
	s.Stats.Refactorizations++
	return true
}

func (s *Solver) colNNZ(j int) int {
	switch {
	case j < s.nStructBase:
		n := int(s.colPtr[j+1] - s.colPtr[j])
		if s.extCols != nil {
			n += len(s.extCols[j])
		}
		return n
	case j < s.nStruct:
		n := len(s.newCols[j-s.nStructBase])
		if s.extCols != nil {
			n += len(s.extCols[j])
		}
		return n
	default:
		return 1 // slack or artificial: unit column
	}
}

// maybeRefactor reinverts when the update file has outgrown the base
// factorization — past roughly 150% of the factored nonzeros the F file
// costs more per FTRAN/BTRAN than a fresh factor would — or after
// luMaxUpdates updates as a roundoff backstop. A (rare) singular
// reinversion is ignored: the current factor stays valid and the next
// attempt happens after the following pivot.
func (s *Solver) maybeRefactor() {
	f := s.lu
	if f.updates < luMaxUpdates && f.fNNZ() <= f.baseNNZ+f.baseNNZ/2+32 {
		return
	}
	if faultinject.Fire(faultinject.LURefactorFail) {
		return // injected singular reinversion: keep the current factor
	}
	if s.refactor() {
		s.computeB()
	}
}

// pivotUpdate applies the basis change at slot r with the entering column's
// spike (stashed by the preceding ftranCol) to the factorization. When the
// Forrest–Tomlin update is rejected for stability the basis is reinverted
// instead; returns false only when that reinversion is singular — the
// factor is then unusable and the caller must abandon the solve.
func (s *Solver) pivotUpdate(r int) bool {
	added, ok := s.lu.ftUpdate(r)
	s.Stats.UpdateNNZ += added
	if ok {
		s.factorAge = s.lu.updates
		s.maybeRefactor()
		return true
	}
	if !s.refactor() {
		s.valid = false
		return false
	}
	s.computeB()
	return true
}

// ---- warm path ----

// solveWarm repairs the existing basis for the current bounds with the dual
// simplex and then reoptimizes with the primal. ok=false means the caller
// should fall back to a cold solve.
// solveWarm does not reset s.iter: when it bails, the pivots it spent are
// handed to the cold fallback so Stats.Pivots and Solution.Iterations keep
// counting all work done for the node.
func (s *Solver) solveWarm() (*Solution, bool) {
	// Bound edits may have stranded a nonbasic variable on a bound that is
	// now infinite; move it to the finite side.
	for j := 0; j < s.nTotal; j++ {
		switch s.status[j] {
		case atLower:
			if math.IsInf(s.lo[j], -1) {
				s.status[j] = atUpper
			}
		case atUpper:
			if math.IsInf(s.hi[j], 1) {
				s.status[j] = atLower
			}
		}
	}
	s.computeB()
	st := s.dual()
	if st == IterLimit {
		s.valid = false
		return nil, false
	}
	if st == Infeasible {
		// The dual() loop has already re-derived this verdict from a fresh
		// reinversion of the original column data (see the verify step
		// there), so it is safe to let it prune a whole B&B subtree.
		s.Stats.WarmSolves++
		s.Stats.Pivots += s.iter
		// The basis is still dual feasible: keep it for the next solve.
		sol := s.statusResult(Infeasible)
		sol.Iterations = s.iter
		return sol, true
	}
	// Primal cleanup: usually zero pivots, but it restores dual feasibility
	// if the repair left any reduced-cost sign off.
	s.setPhase2Cost()
	pst := s.primal()
	if pst == IterLimit || pst == Unbounded {
		// Unbounded cannot legitimately appear after a bounded parent solve;
		// treat both as numerical trouble and rebuild.
		s.valid = false
		return nil, false
	}
	s.Stats.WarmSolves++
	s.Stats.Pivots += s.iter
	return s.finish(), true
}

// dual runs the bounded-variable dual simplex until the basis is primal
// feasible (returns Optimal), proven infeasible, or the repair budget is
// exhausted (IterLimit; the caller then rebuilds cold). It assumes the basis
// is dual feasible, which holds for any basis that was primal optimal under
// the same (immutable) objective.
//
// The leaving row is chosen by dual devex (violation² over a reference
// weight, updated for free from the FTRAN'd entering column) and the ratio
// test is long-step: box-bounded columns whose breakpoint is passed flip to
// their opposite bound instead of limiting the step, each flip absorbing
// |alpha|·range of the leaving row's infeasibility without a pivot.
func (s *Solver) dual() Status {
	s.setPhase2Cost()
	dw := s.dualW
	for i := 0; i < s.m; i++ {
		dw[i] = 1
	}
	// Degenerate assignment-style models can make the dual repair thrash on
	// zero-progress pivots; past this budget a cold rebuild is cheaper.
	budget := s.iter + 60 + s.m/6
	for {
		if s.iter >= budget {
			return IterLimit
		}
		// Leaving row: the worst devex-weighted bound violation.
		r, below := -1, false
		worst, rScore := 0.0, 0.0
		for i := 0; i < s.m; i++ {
			jb := s.basis[i]
			if v := s.lo[jb] - s.xb[i]; v > feasTol {
				if sc := v * v / dw[i]; r < 0 || sc > rScore {
					worst, r, below, rScore = v, i, true, sc
				}
			}
			if v := s.xb[i] - s.hi[jb]; v > feasTol {
				if sc := v * v / dw[i]; r < 0 || sc > rScore {
					worst, r, below, rScore = v, i, false, sc
				}
			}
		}
		if r < 0 {
			return Optimal // primal feasible
		}
		// Dual ratio test over the pivot row ρ = BTRAN(e_r), restricted to
		// columns that can move the leaving variable back toward its
		// violated bound. Every eligible column is a breakpoint at
		// |d_j/alpha_j|; walking them in ratio order, box-bounded columns
		// whose whole range still leaves the row infeasible are flipped
		// (recorded, applied below) and the first column that cannot flip
		// enters the basis.
		s.computeY()
		rho, rhoNZ := s.btranUnit(r)
		bp := s.bp[:0]
		for j := 0; j < s.nStruct+s.m; j++ {
			if s.status[j] == basic || !s.movable(j) {
				continue
			}
			alpha := s.colDot(j, rho)
			var ok bool
			if below { // xb[r] must increase
				ok = (s.status[j] == atLower && alpha < -pivotEps) ||
					(s.status[j] == atUpper && alpha > pivotEps)
			} else { // xb[r] must decrease
				ok = (s.status[j] == atLower && alpha > pivotEps) ||
					(s.status[j] == atUpper && alpha < -pivotEps)
			}
			if !ok {
				continue
			}
			bp = append(bp, dualBP{
				j:     int32(j),
				alpha: alpha,
				ratio: math.Abs(s.reducedCost(j) / alpha),
			})
		}
		s.bp = bp
		enter := -1
		nFlips := 0
		if len(bp) > 0 {
			slices.SortFunc(bp, func(a, b dualBP) int {
				if a.ratio != b.ratio {
					if a.ratio < b.ratio {
						return -1
					}
					return 1
				}
				return int(a.j) - int(b.j)
			})
			remain := worst
			for k := range bp {
				j := int(bp[k].j)
				rng := s.hi[j] - s.lo[j]
				if !math.IsInf(rng, 1) {
					if absorb := math.Abs(bp[k].alpha) * rng; remain-absorb > feasTol {
						remain -= absorb
						nFlips = k + 1
						continue
					}
				}
				enter = j
				break
			}
		}
		if enter < 0 {
			// No column can repair the violated row (even after flipping
			// every box-bounded candidate): primal infeasible. An
			// infeasibility verdict prunes a whole B&B subtree, so it is
			// only trusted when derived from a factorization with zero
			// incremental updates on top (factorAge == 0); otherwise
			// reinvert from the original column data and re-derive. Every
			// pivot resets the requirement, so a verdict reached after
			// post-reinversion pivots is re-verified again; the pivot
			// budget bounds the loop. The recorded flips are NOT applied —
			// they do not change the LP's feasibility.
			if s.factorAge > 0 {
				if !s.refactor() {
					return IterLimit
				}
				s.computeB()
				continue
			}
			return Infeasible
		}
		if nFlips > 0 {
			s.applyFlips(bp[:nFlips])
		}
		if s.pricing == PricingSteepestEdge {
			// τ = B⁻¹ρ for the exact weight recurrence below; computed
			// before the entering column's FTRAN so that solve's spike
			// stash is the one the pivot update consumes.
			s.computeTau(rhoNZ)
		}
		var target float64
		var leaveStatus varStatus
		if below {
			target, leaveStatus = s.lo[s.basis[r]], atLower
		} else {
			target, leaveStatus = s.hi[s.basis[r]], atUpper
		}
		col, colNZ := s.ftranCol(enter)
		if math.Abs(col[r]) <= pivotEps {
			// The FTRAN'd pivot disagrees with the BTRAN'd row: numerical
			// trouble, rebuild cold.
			return IterLimit
		}
		t := (s.xb[r] - target) / col[r]
		enterVal := s.val(enter) + t
		if t != 0 {
			if colNZ != nil {
				for _, ii := range colNZ {
					if a := col[ii]; a != 0 {
						s.xb[ii] -= a * t
					}
				}
			} else {
				for i := 0; i < s.m; i++ {
					if a := col[i]; a != 0 {
						s.xb[i] -= a * t
					}
				}
			}
		}
		// Row-weight update from the FTRAN'd entering column. Devex takes
		// the max-rule approximation for free; steepest edge applies the
		// exact Forrest–Goldfarb recurrence using τ (one extra FTRAN).
		ar := col[r]
		wr := dw[r]
		if s.pricing == PricingSteepestEdge {
			dseRow := func(i int) {
				if a := col[i]; a != 0 {
					q := a / ar
					w := dw[i] - q*(2*s.tau[i]-q*wr)
					if w < dseWeightFloor {
						w = dseWeightFloor
					}
					dw[i] = w
				}
			}
			if colNZ != nil {
				for _, ii := range colNZ {
					if int(ii) != r {
						dseRow(int(ii))
					}
				}
			} else {
				for i := 0; i < s.m; i++ {
					if i != r {
						dseRow(i)
					}
				}
			}
			if w := wr / (ar * ar); w > dseWeightFloor {
				dw[r] = w
			} else {
				dw[r] = dseWeightFloor
			}
		} else {
			devexRow := func(i int) {
				if a := col[i]; a != 0 {
					q := a / ar
					if g := q * q * wr; g > dw[i] {
						dw[i] = g
					}
				}
			}
			if colNZ != nil {
				for _, ii := range colNZ {
					if int(ii) != r {
						devexRow(int(ii))
					}
				}
			} else {
				for i := 0; i < s.m; i++ {
					if i != r {
						devexRow(i)
					}
				}
			}
			if g := wr / (ar * ar); g > 1 {
				dw[r] = g
			} else {
				dw[r] = 1
			}
		}
		out := s.basis[r]
		s.status[out] = leaveStatus
		s.status[enter] = basic
		s.basis[r] = enter
		s.xb[r] = enterVal
		s.iter++
		s.Stats.DualPivots++
		if !s.pivotUpdate(r) {
			return IterLimit
		}
	}
}

// applyFlips toggles each recorded breakpoint column to its opposite bound
// and updates the basic values with one combined FTRAN: xb -= B⁻¹·Σ δ_j A_j.
// The combined column is accumulated sparsely (a dual re-entry typically
// flips a handful of columns) and solved on the hyper-sparse path.
func (s *Solver) applyFlips(flips []dualBP) {
	fc := s.flipCol
	if s.flipDense {
		for i := range fc {
			fc[i] = 0
		}
		s.flipDense = false
	} else {
		for _, i := range s.flipNZ {
			fc[i] = 0
		}
	}
	idx := s.flipNZ[:0]
	for k := range flips {
		j := int(flips[k].j)
		rng := s.hi[j] - s.lo[j]
		var delta float64
		if s.status[j] == atLower {
			s.status[j] = atUpper
			delta = rng
		} else {
			s.status[j] = atLower
			delta = -rng
		}
		idx = s.colAxpySparse(j, delta, fc, idx)
	}
	for _, i := range idx {
		s.rowMark[i] = false
	}
	s.flipNZ = idx
	nz, ok := s.lu.ftranSparse(fc, idx)
	if ok {
		s.Stats.SparseFTRANs++
		s.flipNZ = append(s.flipNZ[:0], nz...)
		for _, i := range s.flipNZ {
			if v := fc[i]; v != 0 {
				s.xb[i] -= v
			}
		}
	} else {
		s.Stats.DenseFallbacks++
		s.flipDense = true
		s.flipNZ = s.flipNZ[:0]
		for i := 0; i < s.m; i++ {
			if v := fc[i]; v != 0 {
				s.xb[i] -= v
			}
		}
	}
	s.Stats.BoundFlips += len(flips)
}

// colAxpySparse is colAxpy with pattern tracking: rows newly touched by
// column j are appended to nz, deduplicated through the rowMark scratch
// (the caller clears the marks via the returned list).
func (s *Solver) colAxpySparse(j int, t float64, v []float64, nz []int32) []int32 {
	switch {
	case j < s.nStructBase:
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			i := s.colRow[k]
			if !s.rowMark[i] {
				s.rowMark[i] = true
				nz = append(nz, i)
			}
			v[i] += s.colVal[k] * t
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				if !s.rowMark[e.i] {
					s.rowMark[e.i] = true
					nz = append(nz, e.i)
				}
				v[e.i] += e.v * t
			}
		}
	case j < s.nStruct:
		for _, e := range s.newCols[j-s.nStructBase] {
			if !s.rowMark[e.i] {
				s.rowMark[e.i] = true
				nz = append(nz, e.i)
			}
			v[e.i] += e.v * t
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				if !s.rowMark[e.i] {
					s.rowMark[e.i] = true
					nz = append(nz, e.i)
				}
				v[e.i] += e.v * t
			}
		}
	case j < s.nStruct+s.m:
		i := int32(j - s.nStruct)
		if !s.rowMark[i] {
			s.rowMark[i] = true
			nz = append(nz, i)
		}
		v[i] += t
	default:
		i := int32(j - s.nStruct - s.m)
		if !s.rowMark[i] {
			s.rowMark[i] = true
			nz = append(nz, i)
		}
		v[i] += s.artSign[i] * t
	}
	return nz
}

// ---- cold path ----

// solveCold rebuilds the basis from scratch (all-slack where feasible,
// artificials elsewhere) and runs the two-phase primal simplex.
func (s *Solver) solveCold() (*Solution, error) {
	s.Stats.ColdSolves++
	s.valid = false
	nArt := s.build()

	if nArt > 0 {
		s.setPhase1Cost()
		st := s.primal()
		if st == IterLimit {
			s.Stats.Pivots += s.iter
			return s.iterResult(IterLimit), nil
		}
		if s.objective() > 1e-6 {
			s.Stats.Pivots += s.iter
			return s.iterResult(Infeasible), nil
		}
		s.driveOutArtificials()
		// Artificials may never re-enter.
		for i := 0; i < s.m; i++ {
			ac := s.nStruct + s.m + i
			s.lo[ac], s.hi[ac] = 0, 0
			if s.status[ac] != basic {
				s.status[ac] = atLower
			}
		}
	}

	s.setPhase2Cost()
	st := s.primal()
	s.Stats.Pivots += s.iter
	if st == Unbounded {
		return s.iterResult(Unbounded), nil
	}
	if st == IterLimit {
		return s.iterResult(IterLimit), nil
	}
	return s.finish(), nil
}

// build (re)constructs the initial basis for the current bounds: structural
// variables rest at their lower bound, each row is covered by its slack
// where the resulting residual is feasible, and an artificial column (±1
// unit) is opened elsewhere. It returns the number of artificials opened.
func (s *Solver) build() int {
	for j := 0; j < s.nStruct; j++ {
		s.status[j] = atLower
	}
	// Residual per row at the all-lower resting point. The Problem's rows
	// and the added rows carry their own coefficient lists, but appended
	// columns (AddCols) exist only in column-major side storage, so their
	// lower-bound contribution to the base rows is folded in afterwards.
	resid := s.y // scratch: computeY rebuilds y from scratch every time
	for i, r := range s.p.rows {
		v := r.rhs
		for _, c := range r.coeffs {
			v -= c.v * s.lo[c.j]
		}
		resid[i] = v
	}
	for ai := range s.added {
		r := &s.added[ai]
		v := r.rhs
		for k, j := range r.cols {
			v -= r.vals[k] * s.lo[j]
		}
		resid[s.mBase+ai] = v
	}
	for cj := range s.newCols {
		if v := s.lo[s.nStructBase+cj]; v != 0 {
			for _, e := range s.newCols[cj] {
				resid[e.i] -= e.v * v
			}
		}
	}
	nArt := 0
	cover := func(i int, kind RowKind, resid float64) {
		sc := s.nStruct + i
		ac := s.nStruct + s.m + i
		s.lo[ac], s.hi[ac] = 0, 0
		s.status[ac] = atLower
		s.artUsed[i] = false
		s.artSign[i] = 1
		slackOK := false
		switch kind {
		case LE:
			slackOK = resid >= 0
			s.status[sc] = atLower // resting value 0 when not basic
		case GE:
			slackOK = resid <= 0
			s.status[sc] = atUpper // resting value 0
		case EQ:
			s.status[sc] = atLower
		}
		if slackOK {
			s.basis[i] = sc
			s.status[sc] = basic
			return
		}
		// Open the artificial for this row, signed so its basic value is
		// nonnegative.
		s.artUsed[i] = true
		nArt++
		s.hi[ac] = Inf
		if resid < 0 {
			s.artSign[i] = -1
		}
		s.basis[i] = ac
		s.status[ac] = basic
	}
	for i, r := range s.p.rows {
		cover(i, r.kind, resid[i])
	}
	for ai := range s.added {
		cover(s.mBase+ai, s.added[ai].kind, resid[s.mBase+ai])
	}
	// The slack/artificial cover is diagonal (±1 per row), so this
	// factorization cannot fail.
	s.refactor()
	s.computeB()
	return nArt
}

// install replays a basis snapshot by reinversion from the original column
// data. Returns false when the snapshot is not replayable (basic artificial)
// or numerically singular (caller falls back to cold).
func (s *Solver) install(bs *Basis) bool {
	for _, jb := range bs.basis {
		if jb >= s.nStruct+s.m {
			return false
		}
	}
	copy(s.basis, bs.basis)
	copy(s.status, bs.status)
	for i := 0; i < s.m; i++ {
		ac := s.nStruct + s.m + i
		s.lo[ac], s.hi[ac] = 0, 0
		s.artUsed[i] = false
		s.artSign[i] = 1
	}
	if faultinject.Fire(faultinject.LUSingularFactor) || !s.refactor() {
		s.valid = false
		return false
	}
	s.valid = true
	return true
}

// ---- shared simplex machinery ----

func (s *Solver) setPhase1Cost() {
	for j := range s.cost {
		s.cost[j] = 0
	}
	s.objCols = s.objCols[:0]
	for i := 0; i < s.m; i++ {
		if s.artUsed[i] {
			ac := s.nStruct + s.m + i
			s.cost[ac] = 1
			s.objCols = append(s.objCols, int32(ac))
		}
	}
	s.costPhase = 1
}

func (s *Solver) setPhase2Cost() {
	if s.costPhase == 2 {
		return // cost row already holds the (immutable) objective
	}
	for j := range s.cost {
		s.cost[j] = 0
	}
	s.objCols = s.objCols[:0]
	for j := 0; j < s.nStruct; j++ {
		if c := s.structObj(j); c != 0 {
			s.cost[j] = c
			s.objCols = append(s.objCols, int32(j))
		}
	}
	s.costPhase = 2
}

// structObj returns the phase-2 objective coefficient of structural column
// j, whether it came from the Problem or from AddCols.
func (s *Solver) structObj(j int) float64 {
	if j < s.nStructBase {
		return s.p.obj[j]
	}
	return s.extObj[j-s.nStructBase]
}

// objective returns the current value of the active cost row.
func (s *Solver) objective() float64 {
	z := 0.0
	for i := 0; i < s.m; i++ {
		z += s.cost[s.basis[i]] * s.xb[i]
	}
	for _, jc := range s.objCols {
		j := int(jc)
		if s.status[j] != basic {
			z += s.cost[j] * s.val(j)
		}
	}
	return z
}

// priceRefresh recomputes every reduced cost exactly (one BTRAN plus one
// sparse pass over the columns) and reports whether any eligible entering
// candidate exists. It anchors the incrementally maintained d vector: the
// primal loop calls it on entry and before accepting optimality, so drift
// in the cheap per-pivot updates can never produce a wrong final verdict.
func (s *Solver) priceRefresh() bool {
	s.computeY()
	any := false
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] == basic {
			s.d[j] = 0
			continue
		}
		dj := s.cost[j] - s.colDot(j, s.y)
		s.d[j] = dj
		if !s.movable(j) {
			continue
		}
		if (s.status[j] == atLower && dj < -eps) || (s.status[j] == atUpper && dj > eps) {
			any = true
		}
	}
	return any
}

// primal runs bounded-variable primal simplex pivots under the active cost
// row until optimal, unbounded, or the iteration limit. Pricing is devex:
// reduced costs are maintained incrementally from the pivot row (the same
// BTRAN pass that updates the reference weights), re-anchored exactly by
// priceRefresh before optimality is accepted; persistent stalling falls
// back to Bland's rule on exact reduced costs.
func (s *Solver) primal() Status {
	if !s.priceRefresh() {
		return Optimal
	}
	for j := range s.dw {
		s.dw[j] = 1
	}
	stall := 0
	lastObj := math.Inf(1)
	for {
		if s.iter >= s.maxIter {
			return IterLimit
		}
		useBland := stall > 50
		enter := -1
		if useBland {
			// Bland's rule needs exact reduced-cost signs for its
			// termination guarantee.
			s.priceRefresh()
			for j := 0; j < s.nTotal; j++ {
				if s.status[j] == basic || !s.movable(j) {
					continue
				}
				if (s.status[j] == atLower && s.d[j] < -eps) ||
					(s.status[j] == atUpper && s.d[j] > eps) {
					enter = j
					break
				}
			}
			if enter < 0 {
				return Optimal
			}
		} else {
			best := 0.0
			for j := 0; j < s.nTotal; j++ {
				if s.status[j] == basic || !s.movable(j) {
					continue
				}
				var viol float64
				if s.status[j] == atLower {
					viol = -s.d[j]
				} else {
					viol = s.d[j]
				}
				if viol <= eps {
					continue
				}
				if sc := viol * viol / s.dw[j]; sc > best {
					best = sc
					enter = j
				}
			}
			if enter < 0 {
				// The incremental d sees no candidate: re-price exactly
				// before declaring optimality.
				if !s.priceRefresh() {
					return Optimal
				}
				continue
			}
		}

		// Entering variable moves up from its lower bound or down from its
		// upper bound; basic values change by -alpha[i]*dir*delta.
		dir := 1.0
		if s.status[enter] == atUpper {
			dir = -1.0
		}
		col, colNZ := s.ftranCol(enter)

		leave := -1
		leaveBound := atLower
		limit := s.hi[enter] - s.lo[enter] // bound-flip distance (may be Inf)
		ratioVisit := func(i int) {
			aie := col[i] * dir
			jb := s.basis[i]
			if aie > pivotEps {
				// Basic variable decreases toward its lower bound.
				if math.IsInf(s.lo[jb], -1) {
					return
				}
				ratio := (s.xb[i] - s.lo[jb]) / aie
				if ratio < -eps {
					ratio = 0
				}
				if ratio < limit-eps || (ratio < limit+eps && (leave < 0 || jb < s.basis[leave])) {
					limit = ratio
					leave = i
					leaveBound = atLower
				}
			} else if aie < -pivotEps {
				// Basic variable increases toward its upper bound.
				if math.IsInf(s.hi[jb], 1) {
					return
				}
				ratio := (s.hi[jb] - s.xb[i]) / (-aie)
				if ratio < -eps {
					ratio = 0
				}
				if ratio < limit-eps || (ratio < limit+eps && (leave < 0 || jb < s.basis[leave])) {
					limit = ratio
					leave = i
					leaveBound = atUpper
				}
			}
		}
		if colNZ != nil {
			for _, ii := range colNZ {
				ratioVisit(int(ii))
			}
		} else {
			for i := 0; i < s.m; i++ {
				ratioVisit(i)
			}
		}

		if math.IsInf(limit, 1) {
			return Unbounded
		}

		s.iter++
		if leave < 0 {
			// Bound flip: no basis change, reduced costs unchanged.
			if limit != 0 {
				if colNZ != nil {
					for _, ii := range colNZ {
						if a := col[ii]; a != 0 {
							s.xb[ii] -= a * dir * limit
						}
					}
				} else {
					for i := 0; i < s.m; i++ {
						if a := col[i]; a != 0 {
							s.xb[i] -= a * dir * limit
						}
					}
				}
			}
			if s.status[enter] == atLower {
				s.status[enter] = atUpper
			} else {
				s.status[enter] = atLower
			}
		} else {
			enterVal := s.val(enter) + dir*limit
			if limit != 0 {
				if colNZ != nil {
					for _, ii := range colNZ {
						if a := col[ii]; a != 0 {
							s.xb[ii] -= a * dir * limit
						}
					}
				} else {
					for i := 0; i < s.m; i++ {
						if a := col[i]; a != 0 {
							s.xb[i] -= a * dir * limit
						}
					}
				}
			}
			// Update reduced costs and devex weights from the pivot row
			// before the basis mutates: d'_j = d_j - (d_q/α_rq)·α_rj.
			arq := col[leave]
			pr := s.d[enter] / arq
			gq := s.dw[enter]
			rho, _ := s.btranUnit(leave)
			for j := 0; j < s.nTotal; j++ {
				if s.status[j] == basic || j == enter {
					continue
				}
				a := s.colDot(j, rho)
				if a == 0 {
					continue
				}
				s.d[j] -= pr * a
				q := a / arq
				if g := q * q * gq; g > s.dw[j] {
					s.dw[j] = g
				}
			}
			out := s.basis[leave]
			s.d[out] = -pr
			if g := gq / (arq * arq); g > 1 {
				s.dw[out] = g
			} else {
				s.dw[out] = 1
			}
			s.d[enter] = 0
			s.status[out] = leaveBound
			s.status[enter] = basic
			s.basis[leave] = enter
			s.xb[leave] = enterVal
			if !s.pivotUpdate(leave) {
				return IterLimit
			}
		}

		obj := s.objective()
		if obj < lastObj-1e-12 {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
}

// driveOutArtificials pivots basic artificials (at value 0 after a
// successful phase 1) out of the basis where possible. Rows whose artificial
// cannot leave are redundant and keep it basic at 0.
func (s *Solver) driveOutArtificials() {
	firstArt := s.nStruct + s.m
	for i := 0; i < s.m; i++ {
		if s.basis[i] < firstArt {
			continue
		}
		rho, _ := s.btranUnit(i)
		piv := -1
		for j := 0; j < firstArt; j++ {
			if s.status[j] == basic {
				continue
			}
			if math.Abs(s.colDot(j, rho)) > pivotEps {
				piv = j
				break
			}
		}
		if piv < 0 {
			continue
		}
		// Degenerate pivot: the entering variable keeps its resting value.
		col, _ := s.ftranCol(piv)
		if math.Abs(col[i]) <= pivotEps {
			continue
		}
		out := s.basis[i]
		outStatus := s.status[out]
		s.status[out] = atLower
		enterVal := s.val(piv) // resting value, read before piv turns basic
		pivStatus := s.status[piv]
		s.status[piv] = basic
		s.basis[i] = piv
		oldXb := s.xb[i]
		s.xb[i] = enterVal
		if !s.pivotUpdate(i) {
			// Reinversion of the new basis failed: undo the swap and leave
			// the artificial basic in this redundant row.
			s.status[piv] = pivStatus
			s.status[out] = outStatus
			s.basis[i] = out
			s.xb[i] = oldXb
			if !s.refactor() {
				s.valid = false
				return
			}
			s.computeB()
		}
	}
}

// statusResult returns a Solution carrying only a status, honoring the
// shared-buffer mode.
func (s *Solver) statusResult(st Status) *Solution {
	if s.reuseSol {
		s.sol = Solution{Status: st}
		return &s.sol
	}
	return &Solution{Status: st}
}

// iterResult is statusResult plus the iteration count.
func (s *Solver) iterResult(st Status) *Solution {
	sol := s.statusResult(st)
	sol.Iterations = s.iter
	return sol
}

// finish marks the factorization reusable and extracts the solution.
func (s *Solver) finish() *Solution {
	s.valid = true
	var sol *Solution
	var x []float64
	if s.reuseSol {
		sol = &s.sol
		if cap(s.solX) < s.nStruct {
			s.solX = make([]float64, s.nStruct)
		}
		x = s.solX[:s.nStruct]
	} else {
		sol = &Solution{}
		x = make([]float64, s.nStruct)
	}
	for j := 0; j < s.nStruct; j++ {
		x[j] = s.val(j)
	}
	for i := 0; i < s.m; i++ {
		if jb := s.basis[i]; jb < s.nStruct {
			x[jb] = s.xb[i]
		}
	}
	obj := 0.0
	for j := 0; j < s.nStruct; j++ {
		obj += s.structObj(j) * x[j]
	}
	*sol = Solution{Status: Optimal, X: x, Obj: obj, Iterations: s.iter}
	return sol
}

package lp

import (
	"fmt"
	"math"
	"sort"
)

// Solver is a reusable bounded-variable simplex solver bound to one Problem.
//
// It is a *revised* simplex: the constraint matrix is stored once in sparse
// column-major (CSC) form and the basis inverse is represented as an
// eta-file (product form). Every quantity the simplex needs — basic-variable
// values, dual prices, a pivot column, a pivot row — is computed on demand
// with sparse FTRAN/BTRAN passes over the eta file instead of being carried
// in a dense m×n tableau. On the ~95%-sparse partitioning models of
// internal/tempart this cuts the per-pivot cost by an order of magnitude:
// a pivot touches O(nnz) entries, not O(m·n).
//
// The basis of the previous solve is kept so that subsequent solves after
// bound changes warm start with the dual simplex instead of a from-scratch
// two-phase solve. This is the core primitive of the branch-and-bound layer
// in internal/ilp: a B&B node is a handful of SetVarBounds calls followed
// by Solve, not a problem copy.
//
// Contract:
//
//   - Rows and objective coefficients are captured at NewSolver time; the
//     Problem's rows and objective must not change afterwards (bounds may —
//     that is the point). Changing the objective would silently invalidate
//     the dual feasibility the warm start relies on. The *Solver* can still
//     grow rows on the fly: AddRows appends solver-local rows (cutting
//     planes) without touching the shared Problem, keeping the current
//     basis so the next Solve re-enters through the dual simplex (see
//     dynrows.go).
//   - Solve returns a Solution whose X slice is freshly allocated and safe
//     to retain.
//   - A Solver is not safe for concurrent use; create one per goroutine
//     (they share the Problem's immutable row storage).
type Solver struct {
	p       *Problem
	m       int // constraint rows (mBase + dynamically added rows)
	mBase   int // rows captured from the Problem at NewSolver time
	nStruct int // structural variables
	nTotal  int // structural + m slacks + m artificial slots

	// Dynamically added rows (AddRows): row-major storage plus a
	// per-structural-column extension index so the CSC accessors see the
	// extra nonzeros without rewriting the base CSC arrays. added rows are
	// solver-local — the shared Problem is never touched, so concurrent
	// Solvers over one Problem can hold different cut sets.
	added   []addedRow
	extCols [][]extEntry // extCols[j]: entries of structural column j in added rows

	// Working bounds of every column. Structural bounds are seeded from the
	// Problem and mutated by SetVarBounds; slack bounds encode the row kind;
	// artificial bounds are opened only during cold phase 1.
	lo, hi []float64

	// CSC storage of the structural and slack columns (fixed at NewSolver).
	// Column j's nonzeros are colRow/colVal[colPtr[j]:colPtr[j+1]].
	// Artificial columns are implicit unit columns: column nStruct+m+i has
	// the single entry artSign[i] at row i.
	colPtr []int32
	colRow []int32
	colVal []float64
	rhs    []float64

	artUsed []bool    // per row: artificial column in use (cold build)
	artSign []float64 // per row: ±1 entry of the artificial column

	basis   []int       // m, column basic in each row slot
	status  []varStatus // nTotal
	xb      []float64   // basic-variable value per row slot
	cost    []float64   // active cost row (phase-dependent)
	objCols []int32     // columns with nonzero active cost (objective scan)

	// etas is the product-form factorization: B⁻¹ = Eₖ⁻¹…E₁⁻¹, rebuilt from
	// the original column data by refactor() (reinversion), extended by one
	// eta per pivot.
	etas      etaFile
	spare     etaFile // refactor builds here, swapped in on success
	factorAge int     // pivots since the last reinversion

	// Scratch (allocated once, length m).
	alpha    []float64 // FTRAN pivot column
	y        []float64 // BTRAN dual prices
	rho      []float64 // BTRAN unit row
	order    []int     // refactor: column installation order
	newBasis []int     // refactor: permuted slot assignment
	assigned []bool    // refactor: rows already pivoted

	valid     bool // basis + eta file reusable for a warm start
	costPhase int  // 0 unset, 1 phase-1 cost row, 2 phase-2 (true objective)
	iter      int  // pivots in the current solve
	maxIter   int

	// Stats accumulates solver activity across the Solver's lifetime.
	Stats SolverStats
}

// SolverStats counts solver activity since NewSolver.
type SolverStats struct {
	Solves     int // total Solve calls
	WarmSolves int // solves served by the warm-start path
	ColdSolves int // solves that (re)built the basis from scratch
	Pivots     int // total simplex pivots (primal + dual)
	DualPivots int // pivots spent in the dual-simplex repair
	RowsAdded  int // constraint rows appended to the live solver (AddRows)
}

// Basis is a compact snapshot of a Solver basis, suitable for storing in a
// branch-and-bound node and replaying on another Solver over the same
// Problem via ResolveFrom.
type Basis struct {
	basis  []int
	status []varStatus
}

// refactorPivots bounds how many pivots may extend the eta file before it is
// rebuilt from the original column data (reinversion), limiting both the
// FTRAN/BTRAN cost of a long eta file and accumulated roundoff.
const refactorPivots = 64

// feasTol is the primal feasibility tolerance used by the warm-start path.
const feasTol = 1e-7

// ---- eta file ----

// etaFile is a product-form representation of the basis: a sequence of
// elementary matrices, each the identity with one column replaced. Entries
// of all etas share two arena slices so a pivot costs O(nnz) appends and no
// per-eta allocations.
type etaFile struct {
	r     []int32   // pivot row per eta
	pivot []float64 // pivot value per eta
	start []int32   // len(r)+1 offsets into idx/val
	idx   []int32   // off-pivot row indices
	val   []float64 // off-pivot values
}

func (e *etaFile) reset() {
	e.r = e.r[:0]
	e.pivot = e.pivot[:0]
	if len(e.start) == 0 {
		e.start = append(e.start, 0)
	}
	e.start = e.start[:1]
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

// etaDropTol discards near-zero off-pivot entries when an eta is stored.
// Roundoff noise would otherwise densify the eta file pivot after pivot and
// dominate the FTRAN/BTRAN cost; the periodic reinversion (refactor) and
// the row-feasibility guard in internal/ilp bound the resulting error.
const etaDropTol = 1e-12

// push appends the eta with pivot row r taken from the dense column alpha.
// When skipTrivial is set, an identity eta (pivot 1, no off-pivot entries)
// is dropped — reinversion uses this for untouched unit basis columns.
func (e *etaFile) push(r int, alpha []float64, skipTrivial bool) {
	mark := len(e.idx)
	for i, v := range alpha {
		if i != r && (v > etaDropTol || v < -etaDropTol) {
			e.idx = append(e.idx, int32(i))
			e.val = append(e.val, v)
		}
	}
	if skipTrivial && len(e.idx) == mark && alpha[r] == 1 {
		return
	}
	e.r = append(e.r, int32(r))
	e.pivot = append(e.pivot, alpha[r])
	e.start = append(e.start, int32(len(e.idx)))
}

// pushUnit appends a diagonal eta (used for the ±1 artificial columns).
func (e *etaFile) pushUnit(r int, pivot float64) {
	e.r = append(e.r, int32(r))
	e.pivot = append(e.pivot, pivot)
	e.start = append(e.start, int32(len(e.idx)))
}

// ftran solves B x = v in place: x = Eₖ⁻¹…E₁⁻¹ v.
func (e *etaFile) ftran(v []float64) {
	for k := range e.r {
		r := e.r[k]
		t := v[r]
		if t == 0 {
			continue
		}
		t /= e.pivot[k]
		v[r] = t
		for q := e.start[k]; q < e.start[k+1]; q++ {
			v[e.idx[q]] -= e.val[q] * t
		}
	}
}

// btran solves yᵀ B = c in place: y = E₁⁻ᵀ…Eₖ⁻ᵀ c applied in reverse.
func (e *etaFile) btran(y []float64) {
	for k := len(e.r) - 1; k >= 0; k-- {
		r := e.r[k]
		t := y[r]
		for q := e.start[k]; q < e.start[k+1]; q++ {
			t -= e.val[q] * y[e.idx[q]]
		}
		y[r] = t / e.pivot[k]
	}
}

// ---- construction ----

// NewSolver builds a reusable solver for p. The Problem's rows and objective
// are captured by reference and must not be modified afterwards; variable
// bounds are copied and owned by the Solver (see SetVarBounds).
func NewSolver(p *Problem) *Solver {
	m := len(p.rows)
	n := p.n
	nTotal := n + 2*m
	s := &Solver{
		p:        p,
		m:        m,
		mBase:    m,
		nStruct:  n,
		nTotal:   nTotal,
		lo:       make([]float64, nTotal),
		hi:       make([]float64, nTotal),
		rhs:      make([]float64, m),
		artUsed:  make([]bool, m),
		artSign:  make([]float64, m),
		basis:    make([]int, m),
		status:   make([]varStatus, nTotal),
		xb:       make([]float64, m),
		cost:     make([]float64, nTotal),
		alpha:    make([]float64, m),
		y:        make([]float64, m),
		rho:      make([]float64, m),
		order:    make([]int, m),
		newBasis: make([]int, m),
		assigned: make([]bool, m),
		maxIter:  2000 + 200*(m+nTotal),
	}
	s.etas.reset()
	s.spare.reset()
	for j := 0; j < n; j++ {
		s.lo[j] = p.lower[j]
		s.hi[j] = p.upper[j]
	}
	// CSC assembly: structural columns from the sparse rows, then one unit
	// slack column per row.
	nnz := m
	for _, r := range p.rows {
		nnz += len(r.coeffs)
	}
	s.colPtr = make([]int32, n+m+1)
	s.colRow = make([]int32, nnz)
	s.colVal = make([]float64, nnz)
	for _, r := range p.rows {
		for _, c := range r.coeffs {
			s.colPtr[c.j+1]++
		}
	}
	for i := 0; i < m; i++ {
		s.colPtr[n+i+1] = 1
	}
	for j := 0; j < n+m; j++ {
		s.colPtr[j+1] += s.colPtr[j]
	}
	fill := make([]int32, n+m)
	copy(fill, s.colPtr[:n+m])
	for i, r := range p.rows {
		s.rhs[i] = r.rhs
		for _, c := range r.coeffs {
			k := fill[c.j]
			s.colRow[k] = int32(i)
			s.colVal[k] = c.v
			fill[c.j]++
		}
		k := fill[n+i]
		s.colRow[k] = int32(i)
		s.colVal[k] = 1
		fill[n+i]++
	}
	for i, r := range p.rows {
		sc := n + i
		switch r.kind {
		case LE:
			s.lo[sc], s.hi[sc] = 0, Inf
		case GE:
			s.lo[sc], s.hi[sc] = math.Inf(-1), 0
		case EQ:
			s.lo[sc], s.hi[sc] = 0, 0
		}
	}
	// Artificial slots stay pinned at [0,0] until a cold build opens them.
	return s
}

// NumVars returns the number of structural variables.
func (s *Solver) NumVars() int { return s.nStruct }

// Bounds returns the Solver's current bounds of structural variable j.
func (s *Solver) Bounds(j int) (lo, hi float64) { return s.lo[j], s.hi[j] }

// SetVarBounds updates the working bounds of structural variable j. The
// change takes effect at the next Solve; the basis factorization is
// unaffected (bounds do not enter the constraint matrix), which is what
// makes per-node bound fixing cheap.
func (s *Solver) SetVarBounds(j int, lo, hi float64) {
	if j < 0 || j >= s.nStruct {
		panic(fmt.Sprintf("lp: SetVarBounds: variable index %d out of range [0,%d)", j, s.nStruct))
	}
	s.lo[j] = lo
	s.hi[j] = hi
}

// Invalidate drops the warm-start state, forcing the next Solve to rebuild
// from scratch.
func (s *Solver) Invalidate() { s.valid = false }

// Warm reports whether the Solver holds a reusable basis, i.e. whether the
// next Solve will attempt the warm-start path.
func (s *Solver) Warm() bool { return s.valid }

// Basis returns a snapshot of the current basis, or nil when the Solver has
// no valid factorization. Snapshots containing basic artificial variables
// (redundant rows) are not replayable and also return nil.
func (s *Solver) Basis() *Basis {
	if !s.valid {
		return nil
	}
	for _, jb := range s.basis {
		if jb >= s.nStruct+s.m {
			return nil
		}
	}
	return &Basis{
		basis:  append([]int(nil), s.basis...),
		status: append([]varStatus(nil), s.status...),
	}
}

// Solve minimizes the captured objective under the current bounds. When the
// Solver holds a dual-feasible basis from a previous solve it warm starts
// (dual simplex repair followed by a primal cleanup); otherwise, or when the
// warm start stalls, it falls back to the cold two-phase primal solve.
func (s *Solver) Solve() (*Solution, error) {
	if sol, err, done := s.precheck(); done {
		return sol, err
	}
	s.Stats.Solves++
	s.iter = 0
	if s.valid {
		if sol, ok := s.solveWarm(); ok {
			return sol, nil
		}
	}
	return s.solveCold()
}

// ResolveFrom installs a basis snapshot (typically a parent node's) and
// solves under the current bounds. The snapshot must come from a Solver over
// the same Problem. When installation fails numerically the solver falls
// back to a cold solve.
func (s *Solver) ResolveFrom(bs *Basis) (*Solution, error) {
	if sol, err, done := s.precheck(); done {
		return sol, err
	}
	if bs == nil || len(bs.basis) != s.m || len(bs.status) != s.nTotal {
		return s.Solve()
	}
	s.Stats.Solves++
	s.iter = 0
	if s.install(bs) {
		if sol, ok := s.solveWarm(); ok {
			return sol, nil
		}
	}
	return s.solveCold()
}

// precheck validates bounds; done=true short-circuits the solve.
func (s *Solver) precheck() (*Solution, error, bool) {
	if len(s.p.rows) != s.mBase || s.p.n != s.nStruct {
		return nil, fmt.Errorf("lp: problem shape changed after NewSolver (rows %d->%d, vars %d->%d)",
			s.mBase, len(s.p.rows), s.nStruct, s.p.n), true
	}
	for j := 0; j < s.nStruct; j++ {
		if s.lo[j] > s.hi[j]+eps {
			return &Solution{Status: Infeasible}, nil, true
		}
		if math.IsInf(s.lo[j], -1) {
			return nil, fmt.Errorf("lp: variable %d has -Inf lower bound; free variables must be split by the caller: %w", j, ErrBadBounds), true
		}
	}
	return nil, nil, false
}

// val returns the current value of nonbasic column j (its resting bound).
func (s *Solver) val(j int) float64 {
	if s.status[j] == atUpper {
		return s.hi[j]
	}
	return s.lo[j]
}

// movable reports whether column j has a nonzero feasible range.
func (s *Solver) movable(j int) bool { return s.hi[j]-s.lo[j] > eps }

// colDot returns column j's dot product with the dense row vector v.
func (s *Solver) colDot(j int, v []float64) float64 {
	switch {
	case j < s.nStruct:
		sum := 0.0
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			sum += s.colVal[k] * v[s.colRow[k]]
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				sum += e.v * v[e.i]
			}
		}
		return sum
	case j < s.nStruct+s.mBase:
		sum := 0.0
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			sum += s.colVal[k] * v[s.colRow[k]]
		}
		return sum
	case j < s.nStruct+s.m:
		// Slack of a dynamically added row: implicit unit column.
		return v[j-s.nStruct]
	default:
		i := j - s.nStruct - s.m
		return s.artSign[i] * v[i]
	}
}

// loadCol writes column j densely into v (v is fully overwritten).
func (s *Solver) loadCol(j int, v []float64) {
	for i := range v {
		v[i] = 0
	}
	switch {
	case j < s.nStruct:
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			v[s.colRow[k]] = s.colVal[k]
		}
		if s.extCols != nil {
			for _, e := range s.extCols[j] {
				v[e.i] = e.v
			}
		}
	case j < s.nStruct+s.mBase:
		for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
			v[s.colRow[k]] = s.colVal[k]
		}
	case j < s.nStruct+s.m:
		v[j-s.nStruct] = 1
	default:
		i := j - s.nStruct - s.m
		v[i] = s.artSign[i]
	}
}

// ftranCol computes alpha = B⁻¹ A_j into the alpha scratch.
func (s *Solver) ftranCol(j int) []float64 {
	s.loadCol(j, s.alpha)
	s.etas.ftran(s.alpha)
	return s.alpha
}

// computeY prices the basis: y = BTRAN(cost_B), the dual prices under the
// active cost row.
func (s *Solver) computeY() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.cost[s.basis[i]]
	}
	s.etas.btran(s.y)
}

// reducedCost returns d_j = cost_j - y·A_j (computeY must be current).
func (s *Solver) reducedCost(j int) float64 {
	return s.cost[j] - s.colDot(j, s.y)
}

// computeB derives the basic-variable values for the current bounds:
// xb = B⁻¹ (rhs - Σ over nonbasic columns of A_j · val(j)).
func (s *Solver) computeB() {
	r := s.alpha
	copy(r, s.rhs)
	for j := 0; j < s.nStruct+s.m; j++ {
		if s.status[j] == basic {
			continue
		}
		v := s.val(j)
		if v == 0 {
			continue
		}
		if j < s.nStruct+s.mBase {
			for k := s.colPtr[j]; k < s.colPtr[j+1]; k++ {
				r[s.colRow[k]] -= s.colVal[k] * v
			}
			if j < s.nStruct && s.extCols != nil {
				for _, e := range s.extCols[j] {
					r[e.i] -= e.v * v
				}
			}
		} else {
			r[j-s.nStruct] -= v // added-row slack: implicit unit column
		}
	}
	// Nonbasic artificials rest at 0 and contribute nothing.
	s.etas.ftran(r)
	copy(s.xb, r)
}

// refactor rebuilds the eta file from the original column data for the
// current basis (reinversion). Pivot rows are chosen by partial pivoting, so
// the basis slots may be permuted; xb must be recomputed afterwards. It
// returns false — leaving the existing eta file untouched — when the basis
// is numerically singular.
func (s *Solver) refactor() bool {
	s.spare.reset()
	m := s.m
	// Markowitz-lite: install thin columns first to limit fill.
	order := s.order
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.colNNZ(s.basis[order[a]]) < s.colNNZ(s.basis[order[b]])
	})
	newBasis := s.newBasis
	assigned := s.assigned
	for i := range assigned {
		assigned[i] = false
	}
	v := s.alpha
	for _, slot := range order {
		j := s.basis[slot]
		s.loadCol(j, v)
		s.spare.ftran(v)
		best, bestAbs := -1, pivotEps
		for r := 0; r < m; r++ {
			if assigned[r] {
				continue
			}
			if a := math.Abs(v[r]); a > bestAbs {
				bestAbs = a
				best = r
			}
		}
		if best < 0 {
			return false
		}
		s.spare.push(best, v, true)
		newBasis[best] = j
		assigned[best] = true
	}
	copy(s.basis, newBasis)
	s.etas, s.spare = s.spare, s.etas
	s.factorAge = 0
	return true
}

func (s *Solver) colNNZ(j int) int {
	switch {
	case j < s.nStruct:
		n := int(s.colPtr[j+1] - s.colPtr[j])
		if s.extCols != nil {
			n += len(s.extCols[j])
		}
		return n
	case j < s.nStruct+s.mBase:
		return int(s.colPtr[j+1] - s.colPtr[j])
	default:
		return 1
	}
}

// maybeRefactor reinverts once the eta file has grown past the pivot budget.
// A (rare) singular reinversion is ignored: the current eta file stays valid
// and the next attempt happens after the following pivot.
func (s *Solver) maybeRefactor() {
	if s.factorAge < refactorPivots {
		return
	}
	if s.refactor() {
		s.computeB()
	}
}

// ---- warm path ----

// solveWarm repairs the existing basis for the current bounds with the dual
// simplex and then reoptimizes with the primal. ok=false means the caller
// should fall back to a cold solve.
// solveWarm does not reset s.iter: when it bails, the pivots it spent are
// handed to the cold fallback so Stats.Pivots and Solution.Iterations keep
// counting all work done for the node.
func (s *Solver) solveWarm() (*Solution, bool) {
	// Bound edits may have stranded a nonbasic variable on a bound that is
	// now infinite; move it to the finite side.
	for j := 0; j < s.nTotal; j++ {
		switch s.status[j] {
		case atLower:
			if math.IsInf(s.lo[j], -1) {
				s.status[j] = atUpper
			}
		case atUpper:
			if math.IsInf(s.hi[j], 1) {
				s.status[j] = atLower
			}
		}
	}
	s.computeB()
	st := s.dual()
	if st == IterLimit {
		s.valid = false
		return nil, false
	}
	if st == Infeasible {
		// The dual() loop has already re-derived this verdict from a fresh
		// reinversion of the original column data (see the verify step
		// there), so it is safe to let it prune a whole B&B subtree.
		s.Stats.WarmSolves++
		s.Stats.Pivots += s.iter
		// The basis is still dual feasible: keep it for the next solve.
		return &Solution{Status: Infeasible, Iterations: s.iter}, true
	}
	// Primal cleanup: usually zero pivots, but it restores dual feasibility
	// if the repair left any reduced-cost sign off.
	s.setPhase2Cost()
	pst := s.primal()
	if pst == IterLimit || pst == Unbounded {
		// Unbounded cannot legitimately appear after a bounded parent solve;
		// treat both as numerical trouble and rebuild.
		s.valid = false
		return nil, false
	}
	s.Stats.WarmSolves++
	s.Stats.Pivots += s.iter
	return s.finish(), true
}

// dual runs the bounded-variable dual simplex until the basis is primal
// feasible (returns Optimal), proven infeasible, or the repair budget is
// exhausted (IterLimit; the caller then rebuilds cold). It assumes the basis
// is dual feasible, which holds for any basis that was primal optimal under
// the same (immutable) objective.
func (s *Solver) dual() Status {
	s.setPhase2Cost()
	// Degenerate assignment-style models can make the dual repair thrash on
	// zero-progress pivots; past this budget a cold rebuild is cheaper.
	budget := s.iter + 60 + s.m/6
	for {
		if s.iter >= budget {
			return IterLimit
		}
		// Leaving row: the most violated basic variable.
		r, worst := -1, feasTol
		below := false
		for i := 0; i < s.m; i++ {
			jb := s.basis[i]
			if v := s.lo[jb] - s.xb[i]; v > worst && !math.IsInf(s.lo[jb], -1) {
				worst, r, below = v, i, true
			}
			if v := s.xb[i] - s.hi[jb]; v > worst && !math.IsInf(s.hi[jb], 1) {
				worst, r, below = v, i, false
			}
		}
		if r < 0 {
			return Optimal // primal feasible
		}
		// Entering column: dual ratio test over the pivot row
		// ρ = BTRAN(e_r), restricted to columns that can move the leaving
		// variable back toward its violated bound.
		s.computeY()
		for i := range s.rho {
			s.rho[i] = 0
		}
		s.rho[r] = 1
		s.etas.btran(s.rho)
		enter := -1
		best := math.Inf(1)
		for j := 0; j < s.nStruct+s.m; j++ {
			if s.status[j] == basic || !s.movable(j) {
				continue
			}
			alpha := s.colDot(j, s.rho)
			var ok bool
			if below { // xb[r] must increase
				ok = (s.status[j] == atLower && alpha < -pivotEps) ||
					(s.status[j] == atUpper && alpha > pivotEps)
			} else { // xb[r] must decrease
				ok = (s.status[j] == atLower && alpha > pivotEps) ||
					(s.status[j] == atUpper && alpha < -pivotEps)
			}
			if !ok {
				continue
			}
			ratio := math.Abs(s.reducedCost(j) / alpha)
			if ratio < best-eps || (ratio < best+eps && (enter < 0 || j < enter)) {
				best = ratio
				enter = j
			}
		}
		if enter < 0 {
			// No column can repair the violated row: primal infeasible. An
			// infeasibility verdict prunes a whole B&B subtree, so it is
			// only trusted when derived from a factorization with zero
			// incremental pivots on top (factorAge == 0); otherwise
			// reinvert from the original column data and re-derive. Every
			// pivot resets the requirement, so a verdict reached after
			// post-reinversion pivots is re-verified again; the pivot
			// budget bounds the loop.
			if s.factorAge > 0 {
				if !s.refactor() {
					return IterLimit
				}
				s.computeB()
				continue
			}
			return Infeasible
		}
		var target float64
		var leaveStatus varStatus
		if below {
			target, leaveStatus = s.lo[s.basis[r]], atLower
		} else {
			target, leaveStatus = s.hi[s.basis[r]], atUpper
		}
		col := s.ftranCol(enter)
		if math.Abs(col[r]) <= pivotEps {
			// The FTRAN'd pivot disagrees with the BTRAN'd row: numerical
			// trouble, rebuild cold.
			return IterLimit
		}
		t := (s.xb[r] - target) / col[r]
		enterVal := s.val(enter) + t
		if t != 0 {
			for i := 0; i < s.m; i++ {
				if a := col[i]; a != 0 {
					s.xb[i] -= a * t
				}
			}
		}
		out := s.basis[r]
		s.status[out] = leaveStatus
		s.status[enter] = basic
		s.basis[r] = enter
		s.xb[r] = enterVal
		s.etas.push(r, col, false)
		s.factorAge++
		s.iter++
		s.Stats.DualPivots++
		s.maybeRefactor()
	}
}

// ---- cold path ----

// solveCold rebuilds the basis from scratch (all-slack where feasible,
// artificials elsewhere) and runs the two-phase primal simplex.
func (s *Solver) solveCold() (*Solution, error) {
	s.Stats.ColdSolves++
	s.valid = false
	nArt := s.build()

	if nArt > 0 {
		s.setPhase1Cost()
		st := s.primal()
		if st == IterLimit {
			s.Stats.Pivots += s.iter
			return &Solution{Status: IterLimit, Iterations: s.iter}, nil
		}
		if s.objective() > 1e-6 {
			s.Stats.Pivots += s.iter
			return &Solution{Status: Infeasible, Iterations: s.iter}, nil
		}
		s.driveOutArtificials()
		// Artificials may never re-enter.
		for i := 0; i < s.m; i++ {
			ac := s.nStruct + s.m + i
			s.lo[ac], s.hi[ac] = 0, 0
			if s.status[ac] != basic {
				s.status[ac] = atLower
			}
		}
	}

	s.setPhase2Cost()
	st := s.primal()
	s.Stats.Pivots += s.iter
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: s.iter}, nil
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iterations: s.iter}, nil
	}
	return s.finish(), nil
}

// build (re)constructs the initial basis for the current bounds: structural
// variables rest at their lower bound, each row is covered by its slack
// where the resulting residual is feasible, and an artificial column (±1
// unit) is opened elsewhere. It returns the number of artificials opened.
func (s *Solver) build() int {
	s.etas.reset()
	s.factorAge = 0
	for j := 0; j < s.nStruct; j++ {
		s.status[j] = atLower
	}
	nArt := 0
	cover := func(i int, kind RowKind, resid float64) {
		sc := s.nStruct + i
		ac := s.nStruct + s.m + i
		s.lo[ac], s.hi[ac] = 0, 0
		s.status[ac] = atLower
		s.artUsed[i] = false
		s.artSign[i] = 1
		slackOK := false
		switch kind {
		case LE:
			slackOK = resid >= 0
			s.status[sc] = atLower // resting value 0 when not basic
		case GE:
			slackOK = resid <= 0
			s.status[sc] = atUpper // resting value 0
		case EQ:
			s.status[sc] = atLower
		}
		if slackOK {
			s.basis[i] = sc
			s.status[sc] = basic
			return
		}
		// Open the artificial for this row, signed so its basic value is
		// nonnegative.
		s.artUsed[i] = true
		nArt++
		s.hi[ac] = Inf
		if resid < 0 {
			s.artSign[i] = -1
			s.etas.pushUnit(i, -1)
		}
		s.basis[i] = ac
		s.status[ac] = basic
	}
	for i, r := range s.p.rows {
		resid := r.rhs
		for _, c := range r.coeffs {
			resid -= c.v * s.lo[c.j]
		}
		cover(i, r.kind, resid)
	}
	for ai := range s.added {
		r := &s.added[ai]
		resid := r.rhs
		for k, j := range r.cols {
			resid -= r.vals[k] * s.lo[j]
		}
		cover(s.mBase+ai, r.kind, resid)
	}
	s.computeB()
	return nArt
}

// install replays a basis snapshot by reinversion from the original column
// data. Returns false when the snapshot is not replayable (basic artificial)
// or numerically singular (caller falls back to cold).
func (s *Solver) install(bs *Basis) bool {
	for _, jb := range bs.basis {
		if jb >= s.nStruct+s.m {
			return false
		}
	}
	copy(s.basis, bs.basis)
	copy(s.status, bs.status)
	for i := 0; i < s.m; i++ {
		ac := s.nStruct + s.m + i
		s.lo[ac], s.hi[ac] = 0, 0
		s.artUsed[i] = false
		s.artSign[i] = 1
	}
	if !s.refactor() {
		s.valid = false
		return false
	}
	s.valid = true
	return true
}

// ---- shared simplex machinery ----

func (s *Solver) setPhase1Cost() {
	for j := range s.cost {
		s.cost[j] = 0
	}
	s.objCols = s.objCols[:0]
	for i := 0; i < s.m; i++ {
		if s.artUsed[i] {
			ac := s.nStruct + s.m + i
			s.cost[ac] = 1
			s.objCols = append(s.objCols, int32(ac))
		}
	}
	s.costPhase = 1
}

func (s *Solver) setPhase2Cost() {
	if s.costPhase == 2 {
		return // cost row already holds the (immutable) objective
	}
	for j := range s.cost {
		s.cost[j] = 0
	}
	s.objCols = s.objCols[:0]
	for j := 0; j < s.nStruct; j++ {
		if c := s.p.obj[j]; c != 0 {
			s.cost[j] = c
			s.objCols = append(s.objCols, int32(j))
		}
	}
	s.costPhase = 2
}

// objective returns the current value of the active cost row.
func (s *Solver) objective() float64 {
	z := 0.0
	for i := 0; i < s.m; i++ {
		z += s.cost[s.basis[i]] * s.xb[i]
	}
	for _, jc := range s.objCols {
		j := int(jc)
		if s.status[j] != basic {
			z += s.cost[j] * s.val(j)
		}
	}
	return z
}

// primal runs bounded-variable primal simplex pivots under the active cost
// row until optimal, unbounded, or the iteration limit. Reduced costs are
// priced exactly every iteration from BTRAN'd dual prices (one sparse pass
// over the CSC columns), so no incremental d maintenance is needed.
func (s *Solver) primal() Status {
	stall := 0
	lastObj := math.Inf(1)
	for {
		if s.iter >= s.maxIter {
			return IterLimit
		}
		s.computeY()
		useBland := stall > 50
		enter := -1
		best := -eps
		for j := 0; j < s.nTotal; j++ {
			if s.status[j] == basic || !s.movable(j) {
				continue
			}
			var improve float64
			switch s.status[j] {
			case atLower:
				improve = s.reducedCost(j) // want d[j] < 0
			case atUpper:
				improve = -s.reducedCost(j) // want d[j] > 0
			}
			if improve < best-eps || (useBland && improve < -eps) {
				if useBland {
					enter = j
					break
				}
				best = improve
				enter = j
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Entering variable moves up from its lower bound or down from its
		// upper bound; basic values change by -alpha[i]*dir*delta.
		dir := 1.0
		if s.status[enter] == atUpper {
			dir = -1.0
		}
		col := s.ftranCol(enter)

		leave := -1
		leaveBound := atLower
		limit := s.hi[enter] - s.lo[enter] // bound-flip distance (may be Inf)
		for i := 0; i < s.m; i++ {
			aie := col[i] * dir
			jb := s.basis[i]
			if aie > pivotEps {
				// Basic variable decreases toward its lower bound.
				if math.IsInf(s.lo[jb], -1) {
					continue
				}
				ratio := (s.xb[i] - s.lo[jb]) / aie
				if ratio < -eps {
					ratio = 0
				}
				if ratio < limit-eps || (ratio < limit+eps && (leave < 0 || jb < s.basis[leave])) {
					limit = ratio
					leave = i
					leaveBound = atLower
				}
			} else if aie < -pivotEps {
				// Basic variable increases toward its upper bound.
				if math.IsInf(s.hi[jb], 1) {
					continue
				}
				ratio := (s.hi[jb] - s.xb[i]) / (-aie)
				if ratio < -eps {
					ratio = 0
				}
				if ratio < limit-eps || (ratio < limit+eps && (leave < 0 || jb < s.basis[leave])) {
					limit = ratio
					leave = i
					leaveBound = atUpper
				}
			}
		}

		if math.IsInf(limit, 1) {
			return Unbounded
		}

		s.iter++
		if leave < 0 {
			// Bound flip: no basis change.
			if limit != 0 {
				for i := 0; i < s.m; i++ {
					if a := col[i]; a != 0 {
						s.xb[i] -= a * dir * limit
					}
				}
			}
			if s.status[enter] == atLower {
				s.status[enter] = atUpper
			} else {
				s.status[enter] = atLower
			}
		} else {
			enterVal := s.val(enter) + dir*limit
			if limit != 0 {
				for i := 0; i < s.m; i++ {
					if a := col[i]; a != 0 {
						s.xb[i] -= a * dir * limit
					}
				}
			}
			out := s.basis[leave]
			s.status[out] = leaveBound
			s.status[enter] = basic
			s.basis[leave] = enter
			s.xb[leave] = enterVal
			s.etas.push(leave, col, false)
			s.factorAge++
			s.maybeRefactor()
		}

		obj := s.objective()
		if obj < lastObj-1e-12 {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
}

// driveOutArtificials pivots basic artificials (at value 0 after a
// successful phase 1) out of the basis where possible. Rows whose artificial
// cannot leave are redundant and keep it basic at 0.
func (s *Solver) driveOutArtificials() {
	firstArt := s.nStruct + s.m
	for i := 0; i < s.m; i++ {
		if s.basis[i] < firstArt {
			continue
		}
		for k := range s.rho {
			s.rho[k] = 0
		}
		s.rho[i] = 1
		s.etas.btran(s.rho)
		piv := -1
		for j := 0; j < firstArt; j++ {
			if s.status[j] == basic {
				continue
			}
			if math.Abs(s.colDot(j, s.rho)) > pivotEps {
				piv = j
				break
			}
		}
		if piv < 0 {
			continue
		}
		// Degenerate pivot: the entering variable keeps its resting value.
		col := s.ftranCol(piv)
		if math.Abs(col[i]) <= pivotEps {
			continue
		}
		out := s.basis[i]
		s.status[out] = atLower
		enterVal := s.val(piv) // resting value, read before piv turns basic
		s.status[piv] = basic
		s.basis[i] = piv
		s.xb[i] = enterVal
		s.etas.push(i, col, false)
		s.factorAge++
	}
}

// finish marks the factorization reusable and extracts the solution.
func (s *Solver) finish() *Solution {
	s.valid = true
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		x[j] = s.val(j)
	}
	for i := 0; i < s.m; i++ {
		if jb := s.basis[i]; jb < s.nStruct {
			x[jb] = s.xb[i]
		}
	}
	obj := 0.0
	for j := 0; j < s.nStruct; j++ {
		obj += s.p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iterations: s.iter}
}

package lp

import (
	"fmt"
	"math"
)

// This file implements dynamic column growth on a live Solver — the
// primitive the branch-and-price layer in internal/ilp is built on. A
// restricted master that prices out a negative-reduced-cost pattern calls
// AddCols and re-solves; the appended column enters nonbasic at its lower
// bound, so the current basis stays a basis of the extended system, the
// factorization is untouched, and the next Solve warm starts — the primal
// cleanup prices the new column in exactly like any other nonbasic column
// with a favorable reduced cost.
//
// Appended columns are solver-local (the shared Problem is never modified)
// and may reference BASE rows only. That asymmetry is deliberate: an added
// row's coefficient list is complete for every column that existed when the
// row was added, and a column appended later never needs support in it —
// the row-oriented passes (AddedRowsSatisfied, the cold build's residuals,
// DropAddedRows) therefore stay correct without filtering. Rows added
// *after* a column may reference it (AddRows validates against the live
// nStruct), which is how branch-and-price attaches no-good rows to
// generated pattern columns.

// NewCol is one structural column appended to a live Solver by AddCols.
// Rows/Vals hold the nonzero coefficients over BASE rows (rows captured
// from the Problem at NewSolver time); referencing a dynamically added row
// is an error. Lo must be finite (free columns must be split by the
// caller, as in Problem).
type NewCol struct {
	Obj  float64
	Lo   float64
	Hi   float64
	Rows []int
	Vals []float64
}

// colEntry is one nonzero of a dynamically added column in a base row.
type colEntry struct {
	i int32 // base row index (< mBase)
	v float64
}

// NumBaseVars returns the number of structural variables captured from the
// Problem (AddCols appends past this).
func (s *Solver) NumBaseVars() int { return s.nStructBase }

// AddedCols returns the number of dynamically added columns.
func (s *Solver) AddedCols() int { return len(s.newCols) }

// AddCols appends structural columns to the live solver. Each column may
// carry nonzeros in base rows only; duplicate row indices are merged and
// zero coefficients dropped. The columns enter nonbasic at their lower
// bound, so a valid basis — and its factorization — survives unchanged and
// the next Solve warm starts: computeB re-derives the basic values (a
// nonzero lower bound shifts the RHS), the dual repair sees no new
// infeasibility from a column resting on a bound, and the primal cleanup
// prices the newcomers in. That makes AddCols + Solve a column-generation
// iteration at the cost of a few pivots instead of a cold rebuild.
func (s *Solver) AddCols(cols []NewCol) error {
	if len(cols) == 0 {
		return nil
	}
	// Column growth extends the engine arrays and the CSC split point, so
	// the engine must exist first.
	s.ensureBuilt()
	// Validation pass: reject the whole batch before any state mutates.
	for ci := range cols {
		c := &cols[ci]
		if len(c.Rows) != len(c.Vals) {
			return fmt.Errorf("lp: AddCols: column %d has %d rows but %d vals", ci, len(c.Rows), len(c.Vals))
		}
		if math.IsNaN(c.Lo) || math.IsInf(c.Lo, -1) {
			return fmt.Errorf("lp: AddCols: column %d has a NaN or -Inf lower bound; free columns must be split by the caller: %w", ci, ErrBadBounds)
		}
		if math.IsNaN(c.Hi) || c.Lo > c.Hi {
			return fmt.Errorf("lp: AddCols: column %d has empty bounds [%g,%g]: %w", ci, c.Lo, c.Hi, ErrBadBounds)
		}
		if math.IsNaN(c.Obj) || math.IsInf(c.Obj, 0) {
			return fmt.Errorf("lp: AddCols: column %d has a non-finite objective coefficient", ci)
		}
		for k, i := range c.Rows {
			if i < 0 || i >= s.mBase {
				return fmt.Errorf("lp: AddCols: column %d references row %d out of base range [0,%d)", ci, i, s.mBase)
			}
			if v := c.Vals[k]; math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: AddCols: column %d has a non-finite coefficient in row %d", ci, i)
			}
		}
	}

	k := len(cols)
	nOld := s.nStruct
	span := 2 * s.m // the slack + artificial block that shifts up by k
	s.nStruct += k
	s.nTotal += k
	s.maxIter = 2000 + 200*(s.m+s.nTotal)
	s.Stats.ColsAdded += k

	// Per-column arrays grow by k and the slack/artificial block shifts up
	// (Go's copy has memmove semantics, so the overlapping shift is safe).
	// The cost row needs no shift: slacks and artificials cost 0 in phase 2,
	// and a phase-1 cost row indexes the artificial block by position, so it
	// is rebuilt instead (same policy as AddRows). The pricing scratch d/dw
	// is rebuilt at every primal entry and only needs the length.
	s.lo = growZero(s.lo, k)
	s.hi = growZero(s.hi, k)
	s.status = growZero(s.status, k)
	s.cost = growZero(s.cost, k)
	s.d = growZero(s.d, k)
	s.dw = growZero(s.dw, k)
	copy(s.lo[nOld+k:nOld+k+span], s.lo[nOld:nOld+span])
	copy(s.hi[nOld+k:nOld+k+span], s.hi[nOld:nOld+span])
	copy(s.status[nOld+k:nOld+k+span], s.status[nOld:nOld+span])
	if s.costPhase == 1 {
		s.costPhase = 0
		s.objCols = s.objCols[:0]
	}
	if s.extCols != nil {
		s.extCols = growZero(s.extCols, k)
	}

	for ci := range cols {
		c := &cols[ci]
		j := nOld + ci
		s.lo[j], s.hi[j] = c.Lo, c.Hi
		s.status[j] = atLower
		s.extObj = append(s.extObj, c.Obj)
		var entries []colEntry
		for ri, i := range c.Rows {
			if v := c.Vals[ri]; v != 0 {
				entries = append(entries, colEntry{i: int32(i), v: v})
			}
		}
		entries = mergeDupColEntries(entries)
		s.newCols = append(s.newCols, entries)
		if s.costPhase == 2 {
			s.cost[j] = c.Obj
			if c.Obj != 0 {
				s.objCols = append(s.objCols, int32(j))
			}
		}
	}

	// Basis slots referencing slacks or artificials shifted up by k; the
	// structural references (all < nOld) and the factorization itself are
	// untouched — the basis matrix did not change, only the numbering of
	// columns outside it.
	for i := range s.basis {
		if s.basis[i] >= nOld {
			s.basis[i] += k
		}
	}
	return nil
}

// RowDuals appends the current dual prices y (one per row, base rows
// first) to dst under the phase-2 objective and returns it. It requires a
// valid optimal basis from the preceding Solve and returns nil otherwise.
// The caller prices a candidate column A_j with cost c_j as
// c_j - y·A_j — the reduced cost it would enter the solver with.
func (s *Solver) RowDuals(dst []float64) []float64 {
	if !s.valid || !s.built {
		return nil
	}
	s.setPhase2Cost()
	s.computeY()
	return append(dst[:0], s.y[:s.m]...)
}

// mergeDupColEntries sorts a column's entries by row and merges duplicates
// in place (generated columns are short; insertion sort, no allocation).
func mergeDupColEntries(es []colEntry) []colEntry {
	if len(es) < 2 {
		return es
	}
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].i > e.i {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
	w := 0
	for i := 0; i < len(es); {
		e := es[i]
		for i++; i < len(es) && es[i].i == e.i; i++ {
			e.v += es[i].v
		}
		es[w] = e
		w++
	}
	return es[:w]
}

package lp

import (
	"math/rand"
	"testing"
)

// benchProblem builds a deterministic sparse covering LP:
//
//	min Σ c_j x_j   s.t.   Σ_{j∈S_i} a_ij x_j ≥ b_i,   0 ≤ x ≤ 1
//
// with rowLen random nonzeros per row. The shape mirrors the tempart
// relaxations (unit-box variables, short GE rows) at a size where the LU
// factor is genuinely sparse.
func benchProblem(nVars, nRows, rowLen int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(nVars)
	for j := 0; j < nVars; j++ {
		p.SetBounds(j, 0, 1)
		p.SetObj(j, 1+rng.Float64())
	}
	p.Reserve(nRows, nRows*rowLen)
	cols := make([]int, 0, rowLen)
	vals := make([]float64, 0, rowLen)
	seen := make(map[int]bool, rowLen)
	for i := 0; i < nRows; i++ {
		cols, vals = cols[:0], vals[:0]
		for k := range seen {
			delete(seen, k)
		}
		for len(cols) < rowLen {
			j := rng.Intn(nVars)
			if seen[j] {
				continue
			}
			seen[j] = true
			cols = append(cols, j)
			vals = append(vals, 1+rng.Float64())
		}
		p.AddRowCols(GE, cols, vals, float64(rowLen)/4)
	}
	return p
}

// BenchmarkLP_FTRAN times one sparse forward solve B⁻¹v against the live LU
// factor of an optimal basis — the innermost kernel of every pricing step and
// ratio test. The loop must not allocate: ftran works in place on the caller's
// vector and the factor's depth-first stack is retained across calls.
func BenchmarkLP_FTRAN(b *testing.B) {
	p := benchProblem(240, 120, 8, 1)
	s := NewSolver(p)
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	rhs := make([]float64, s.m)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	work := make([]float64, s.m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, rhs)
		s.lu.ftran(work)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.lu.fNNZ()), "factor-nnz")
}

// benchProblemBanded builds the same covering shape as benchProblem but
// with banded rows: row i covers rowLen consecutive variables starting at
// i·(nVars/nRows). Hyper-sparsity is a property of local structure — a
// random covering basis has a mostly dense inverse (a singleton FTRAN
// reaches most of the factor graph), while the banded one mirrors the
// precedence/adjacency rows of the temporal-partitioning relaxations,
// where B⁻¹ columns stay short. The sparse-path benchmarks use this shape;
// the warm-start and pricing benchmarks keep the adversarial random one.
func benchProblemBanded(nVars, nRows, rowLen int) *Problem {
	p := NewProblem(nVars)
	for j := 0; j < nVars; j++ {
		p.SetBounds(j, 0, 1)
		p.SetObj(j, 1+float64(j%7)/7)
	}
	p.Reserve(nRows, nRows*rowLen)
	cols := make([]int, rowLen)
	vals := make([]float64, rowLen)
	stride := nVars / nRows
	for i := 0; i < nRows; i++ {
		for k := 0; k < rowLen; k++ {
			cols[k] = (i*stride + k) % nVars
			vals[k] = 1 + float64((i+k)%5)/5
		}
		p.AddRowCols(GE, cols, vals, float64(rowLen)/4)
	}
	return p
}

// BenchmarkLP_SparseFTRAN times the hyper-sparse forward solve on a
// singleton right-hand side (a unit pricing column) against the live LU
// factor — the case the symbolic-reachability path exists for. The loop must
// not allocate (the DFS stacks, mark arrays, and nonzero lists are factor
// scratch retained across calls) and at this size at least 90% of the
// singleton solves must stay under the density gate.
func BenchmarkLP_SparseFTRAN(b *testing.B) {
	p := benchProblemBanded(480, 240, 6)
	s := NewSolver(p)
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	m := s.m
	work := make([]float64, m)
	idx := make([]int32, 1)
	var hits, total int
	solve := func(r int32) {
		idx[0] = r
		work[r] = 1
		nz, ok := s.lu.ftranSparse(work, idx)
		total++
		if ok {
			hits++
			for _, q := range nz {
				work[q] = 0
			}
			return
		}
		for i := range work {
			work[i] = 0
		}
	}
	// Warm every seed once so the retained scratch reaches steady-state
	// capacity, then pin the zero-allocation contract before timing.
	for r := 0; r < m; r++ {
		solve(int32(r))
	}
	if allocs := testing.AllocsPerRun(200, func() { solve(int32(total % m)) }); allocs > 0 {
		b.Fatalf("sparse FTRAN allocated %.1f times per solve", allocs)
	}
	hits, total = 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve(int32(i % m))
	}
	b.StopTimer()
	frac := float64(hits) / float64(total)
	if frac < 0.9 {
		b.Fatalf("sparse-hit fraction %.3f < 0.9 (%d of %d fell back dense)", frac, total-hits, total)
	}
	b.ReportMetric(frac, "sparse-hit-fraction")
}

// BenchmarkLP_Pricing compares the dual pricing rules on the warm-start
// bound-fix/unfix repair loop: devex (approximate reference weights, no
// extra solves) against exact steepest edge (one extra FTRAN per dual pivot
// for exact row weights). The pivots/op delta is the entire argument for
// steepest edge; sparse-solves/op shows the extra τ FTRANs riding the
// hyper-sparse path rather than the dense one.
func BenchmarkLP_Pricing(b *testing.B) {
	for _, rule := range []Pricing{PricingDevex, PricingSteepestEdge} {
		b.Run(rule.String(), func(b *testing.B) {
			const nVars = 240
			p := benchProblem(nVars, 120, 8, 1)
			s := NewSolver(p)
			s.SetPricing(rule)
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
			base := s.Stats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % nVars
				s.SetVarBounds(j, 1, 1)
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
				s.SetVarBounds(j, 0, 1)
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d := s.Stats.Delta(base)
			n := float64(b.N)
			b.ReportMetric(float64(d.Pivots)/n, "pivots/op")
			b.ReportMetric(float64(d.DualPivots)/n, "dual-pivots/op")
			b.ReportMetric(float64(d.SparseFTRANs+d.SparseBTRANs)/n, "sparse-solves/op")
			b.ReportMetric(float64(d.DenseFallbacks)/n, "dense-fallbacks/op")
		})
	}
}

// BenchmarkLP_Warm measures the warm-start repair path the branch-and-bound
// search lives on: fix one variable to 1 (the branching move; always feasible
// for a covering LP), dual-repair to the new optimum, unfix, and repair back.
// Reported counters are per benchmark op (= two Solve calls). The dual repair
// is allowed to stall onto the cold path on occasional degenerate fixings (a
// deliberate budget in dual()), but the warm path must carry ≥95% of solves.
func BenchmarkLP_Warm(b *testing.B) {
	const nVars = 240
	p := benchProblem(nVars, 120, 8, 1)
	s := NewSolver(p)
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	base := s.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % nVars
		s.SetVarBounds(j, 1, 1)
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
		s.SetVarBounds(j, 0, 1)
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d := s.Stats.Delta(base)
	n := float64(b.N)
	if float64(d.ColdSolves) > 0.05*float64(d.Solves) {
		b.Fatalf("%d of %d solves fell off the warm path", d.ColdSolves, d.Solves)
	}
	b.ReportMetric(float64(d.WarmSolves)/float64(d.Solves), "warm-fraction")
	b.ReportMetric(float64(d.Pivots)/n, "pivots/op")
	b.ReportMetric(float64(d.Refactorizations)/n, "refactorizations/op")
	b.ReportMetric(float64(d.BoundFlips)/n, "bound-flips/op")
	b.ReportMetric(float64(d.SparseFTRANs+d.SparseBTRANs)/n, "sparse-solves/op")
	b.ReportMetric(float64(d.DenseFallbacks)/n, "dense-fallbacks/op")
}

package lp

import (
	"math/rand"
	"testing"
)

// benchProblem builds a deterministic sparse covering LP:
//
//	min Σ c_j x_j   s.t.   Σ_{j∈S_i} a_ij x_j ≥ b_i,   0 ≤ x ≤ 1
//
// with rowLen random nonzeros per row. The shape mirrors the tempart
// relaxations (unit-box variables, short GE rows) at a size where the LU
// factor is genuinely sparse.
func benchProblem(nVars, nRows, rowLen int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(nVars)
	for j := 0; j < nVars; j++ {
		p.SetBounds(j, 0, 1)
		p.SetObj(j, 1+rng.Float64())
	}
	p.Reserve(nRows, nRows*rowLen)
	cols := make([]int, 0, rowLen)
	vals := make([]float64, 0, rowLen)
	seen := make(map[int]bool, rowLen)
	for i := 0; i < nRows; i++ {
		cols, vals = cols[:0], vals[:0]
		for k := range seen {
			delete(seen, k)
		}
		for len(cols) < rowLen {
			j := rng.Intn(nVars)
			if seen[j] {
				continue
			}
			seen[j] = true
			cols = append(cols, j)
			vals = append(vals, 1+rng.Float64())
		}
		p.AddRowCols(GE, cols, vals, float64(rowLen)/4)
	}
	return p
}

// BenchmarkLP_FTRAN times one sparse forward solve B⁻¹v against the live LU
// factor of an optimal basis — the innermost kernel of every pricing step and
// ratio test. The loop must not allocate: ftran works in place on the caller's
// vector and the factor's depth-first stack is retained across calls.
func BenchmarkLP_FTRAN(b *testing.B) {
	p := benchProblem(240, 120, 8, 1)
	s := NewSolver(p)
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	rhs := make([]float64, s.m)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	work := make([]float64, s.m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, rhs)
		s.lu.ftran(work)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.lu.fNNZ()), "factor-nnz")
}

// BenchmarkLP_Warm measures the warm-start repair path the branch-and-bound
// search lives on: fix one variable to 1 (the branching move; always feasible
// for a covering LP), dual-repair to the new optimum, unfix, and repair back.
// Reported counters are per benchmark op (= two Solve calls). The dual repair
// is allowed to stall onto the cold path on occasional degenerate fixings (a
// deliberate budget in dual()), but the warm path must carry ≥95% of solves.
func BenchmarkLP_Warm(b *testing.B) {
	const nVars = 240
	p := benchProblem(nVars, 120, 8, 1)
	s := NewSolver(p)
	if _, err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	base := s.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % nVars
		s.SetVarBounds(j, 1, 1)
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
		s.SetVarBounds(j, 0, 1)
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d := s.Stats.Delta(base)
	n := float64(b.N)
	if float64(d.ColdSolves) > 0.05*float64(d.Solves) {
		b.Fatalf("%d of %d solves fell off the warm path", d.ColdSolves, d.Solves)
	}
	b.ReportMetric(float64(d.WarmSolves)/float64(d.Solves), "warm-fraction")
	b.ReportMetric(float64(d.Pivots)/n, "pivots/op")
	b.ReportMetric(float64(d.Refactorizations)/n, "refactorizations/op")
	b.ReportMetric(float64(d.BoundFlips)/n, "bound-flips/op")
}

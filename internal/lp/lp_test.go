package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve returned error: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("Solve status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimpleLE(t *testing.T) {
	// min -x - y  s.t. x + y <= 4, x <= 3, y <= 2  -> x=3, y=1? No:
	// optimum fills y to 2 and x to 2: obj -4 either way on the face
	// x+y=4. Check objective only.
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddRow(LE, map[int]float64{0: 1, 1: 1}, 4)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 2)
	s := solveOK(t, p)
	if !near(s.Obj, -4) {
		t.Errorf("obj = %g, want -4", s.Obj)
	}
	if !near(s.X[0]+s.X[1], 4) {
		t.Errorf("x+y = %g, want 4", s.X[0]+s.X[1])
	}
}

func TestEquality(t *testing.T) {
	// min x + 2y  s.t. x + y == 10, x - y == 2  -> x=6, y=4, obj=14.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 2)
	p.AddRow(EQ, map[int]float64{0: 1, 1: 1}, 10)
	p.AddRow(EQ, map[int]float64{0: 1, 1: -1}, 2)
	s := solveOK(t, p)
	if !near(s.X[0], 6) || !near(s.X[1], 4) {
		t.Errorf("x = %v, want [6 4]", s.X)
	}
	if !near(s.Obj, 14) {
		t.Errorf("obj = %g, want 14", s.Obj)
	}
}

func TestGE(t *testing.T) {
	// min 2x + 3y  s.t. x + y >= 5, x >= 1, y >= 1 -> x=4, y=1, obj=11.
	p := NewProblem(2)
	p.SetObj(0, 2)
	p.SetObj(1, 3)
	p.AddRow(GE, map[int]float64{0: 1, 1: 1}, 5)
	p.SetBounds(0, 1, Inf)
	p.SetBounds(1, 1, Inf)
	s := solveOK(t, p)
	if !near(s.Obj, 11) {
		t.Errorf("obj = %g, want 11 (x=%v)", s.Obj, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddRow(GE, map[int]float64{0: 1}, 5)
	p.AddRow(LE, map[int]float64{0: 1}, 3)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleViaBounds(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 5, 3)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.AddRow(GE, map[int]float64{0: 1, 1: -1}, 0) // x >= y, x free upward
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestBoundFlipPath(t *testing.T) {
	// All-upper-bound optimum exercised through bound flips:
	// min -x1 -x2 -x3 with xi <= ui and a slack-only row.
	p := NewProblem(3)
	for j := 0; j < 3; j++ {
		p.SetObj(j, -1)
		p.SetBounds(j, 0, float64(j+1))
	}
	p.AddRow(LE, map[int]float64{0: 1, 1: 1, 2: 1}, 100) // non-binding
	s := solveOK(t, p)
	if !near(s.Obj, -6) {
		t.Errorf("obj = %g, want -6 (x=%v)", s.Obj, s.X)
	}
	for j := 0; j < 3; j++ {
		if !near(s.X[j], float64(j+1)) {
			t.Errorf("x[%d] = %g, want %d", j, s.X[j], j+1)
		}
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x  s.t. -x <= -3  (i.e. x >= 3).
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.AddRow(LE, map[int]float64{0: -1}, -3)
	s := solveOK(t, p)
	if !near(s.X[0], 3) {
		t.Errorf("x = %g, want 3", s.X[0])
	}
}

func TestFixedVariable(t *testing.T) {
	// Fixing a variable via equal bounds must be respected.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.SetBounds(0, 2, 2)
	p.AddRow(GE, map[int]float64{0: 1, 1: 1}, 5)
	s := solveOK(t, p)
	if !near(s.X[0], 2) || !near(s.X[1], 3) {
		t.Errorf("x = %v, want [2 3]", s.X)
	}
}

func TestDegenerateKleeMintyLike(t *testing.T) {
	// A degenerate problem that stalls naive simplex implementations.
	p := NewProblem(3)
	p.SetObj(0, -10)
	p.SetObj(1, -12)
	p.SetObj(2, -12)
	p.AddRow(LE, map[int]float64{0: 1, 1: 2, 2: 2}, 20)
	p.AddRow(LE, map[int]float64{0: 2, 1: 1, 2: 2}, 20)
	p.AddRow(LE, map[int]float64{0: 2, 1: 2, 2: 1}, 20)
	s := solveOK(t, p)
	if !near(s.Obj, -136) {
		t.Errorf("obj = %g, want -136 (x=%v)", s.Obj, s.X)
	}
}

func TestTransportation(t *testing.T) {
	// 2 supplies (10, 15), 3 demands (8, 7, 10); costs:
	//   [4 6 9]
	//   [5 3 8]
	// Optimal cost: ship s1->d1 8, s1->d3 2, s2->d2 7, s2->d3 8:
	// 32 + 18 + 21 + 64 = 135.
	p := NewProblem(6) // x[s][d] row-major
	costs := []float64{4, 6, 9, 5, 3, 8}
	for j, c := range costs {
		p.SetObj(j, c)
	}
	p.AddRow(LE, map[int]float64{0: 1, 1: 1, 2: 1}, 10)
	p.AddRow(LE, map[int]float64{3: 1, 4: 1, 5: 1}, 15)
	p.AddRow(EQ, map[int]float64{0: 1, 3: 1}, 8)
	p.AddRow(EQ, map[int]float64{1: 1, 4: 1}, 7)
	p.AddRow(EQ, map[int]float64{2: 1, 5: 1}, 10)
	s := solveOK(t, p)
	if !near(s.Obj, 135) {
		t.Errorf("obj = %g, want 135 (x=%v)", s.Obj, s.X)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.AddRow(GE, map[int]float64{0: 1, 1: 1}, 4)
	q := p.Clone()
	q.SetBounds(0, 3, 3)
	if lo, _ := p.Bounds(0); lo != 0 {
		t.Errorf("Clone leaked bounds into original: lo = %g", lo)
	}
	s1 := solveOK(t, p)
	s2 := solveOK(t, q)
	if !near(s1.X[0], 0) {
		t.Errorf("original x0 = %g, want 0", s1.X[0])
	}
	if !near(s2.X[0], 3) {
		t.Errorf("clone x0 = %g, want 3", s2.X[0])
	}
}

// TestRandomFeasibilityProperty: for random LPs constructed around a known
// feasible point, the solver must (a) never report infeasible and (b) return
// a point satisfying every row and bound, with objective no worse than the
// seed point.
func TestRandomFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := NewProblem(n)
		x0 := make([]float64, n)
		for j := 0; j < n; j++ {
			x0[j] = float64(rng.Intn(5))
			p.SetObj(j, float64(rng.Intn(11)-5))
			p.SetBounds(j, 0, float64(5+rng.Intn(10)))
		}
		seedObj := 0.0
		for j := 0; j < n; j++ {
			seedObj += p.Obj(j) * x0[j]
		}
		type rowRec struct {
			kind   RowKind
			coeffs map[int]float64
			rhs    float64
		}
		var rows []rowRec
		for i := 0; i < m; i++ {
			coeffs := map[int]float64{}
			lhs := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					c := float64(rng.Intn(9) - 4)
					if c != 0 {
						coeffs[j] = c
						lhs += c * x0[j]
					}
				}
			}
			kind := RowKind(rng.Intn(3))
			rhs := lhs
			switch kind {
			case LE:
				rhs = lhs + float64(rng.Intn(4))
			case GE:
				rhs = lhs - float64(rng.Intn(4))
			}
			p.AddRow(kind, coeffs, rhs)
			rows = append(rows, rowRec{kind, coeffs, rhs})
		}
		s, err := Solve(p)
		if err != nil || s.Status == Infeasible {
			return false
		}
		if s.Status != Optimal {
			return true // unbounded is acceptable for random objectives
		}
		if s.Obj > seedObj+1e-6 {
			return false
		}
		for j := 0; j < n; j++ {
			lo, hi := p.Bounds(j)
			if s.X[j] < lo-1e-6 || s.X[j] > hi+1e-6 {
				return false
			}
		}
		for _, r := range rows {
			lhs := 0.0
			for j, c := range r.coeffs {
				lhs += c * s.X[j]
			}
			switch r.kind {
			case LE:
				if lhs > r.rhs+1e-6 {
					return false
				}
			case GE:
				if lhs < r.rhs-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-r.rhs) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		Optimal:    "optimal",
		Infeasible: "infeasible",
		Unbounded:  "unbounded",
		IterLimit:  "iteration-limit",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), got, want)
		}
	}
	kinds := map[RowKind]string{LE: "<=", GE: ">=", EQ: "=="}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("RowKind.String() = %q, want %q", got, want)
		}
	}
}

func TestFreeVariableRejected(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, math.Inf(-1), 5)
	if _, err := Solve(p); err == nil {
		t.Error("Solve accepted a free variable; want error")
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// A 40-var, 30-row random-but-feasible LP.
	rng := rand.New(rand.NewSource(7))
	build := func() *Problem {
		n := 40
		p := NewProblem(n)
		x0 := make([]float64, n)
		for j := 0; j < n; j++ {
			x0[j] = float64(rng.Intn(4))
			p.SetObj(j, float64(rng.Intn(11)-5))
			p.SetBounds(j, 0, 10)
		}
		for i := 0; i < 30; i++ {
			coeffs := map[int]float64{}
			lhs := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					c := float64(rng.Intn(7) - 3)
					coeffs[j] = c
					lhs += c * x0[j]
				}
			}
			p.AddRow(LE, coeffs, lhs+2)
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

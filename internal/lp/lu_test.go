package lp

import (
	"math"
	"math/rand"
	"testing"
)

// luTestSolver builds a Solver whose structural columns are the given dense
// m-vectors and installs cols[basis[i]] in basis slot i, factorized. The
// Problem's rows are EQ rows encoding the matrix, so loadCol reproduces the
// columns exactly.
func luTestSolver(t *testing.T, cols [][]float64, basis []int) *Solver {
	t.Helper()
	m := len(cols[0])
	p := NewProblem(len(cols))
	for j := range cols {
		if len(cols[j]) != m {
			t.Fatalf("ragged column %d", j)
		}
		p.SetBounds(j, 0, 1)
	}
	for i := 0; i < m; i++ {
		coeffs := map[int]float64{}
		for j := range cols {
			if cols[j][i] != 0 {
				coeffs[j] = cols[j][i]
			}
		}
		p.AddRow(EQ, coeffs, 0)
	}
	s := NewSolver(p)
	s.ensureBuilt() // the tests poke basis/status directly
	for i, j := range basis {
		s.basis[i] = j
		s.status[j] = basic
	}
	return s
}

// denseSolve solves A x = b by Gaussian elimination with partial pivoting.
// Returns false when A is numerically singular.
func denseSolve(A [][]float64, b []float64) ([]float64, bool) {
	m := len(A)
	a := make([][]float64, m)
	for i := range a {
		a[i] = append([]float64(nil), A[i]...)
		a[i] = append(a[i], b[i])
	}
	for c := 0; c < m; c++ {
		piv, best := -1, 0.0
		for i := c; i < m; i++ {
			if v := math.Abs(a[i][c]); v > best {
				piv, best = i, v
			}
		}
		if best <= 1e-11 {
			return nil, false
		}
		a[c], a[piv] = a[piv], a[c]
		for i := c + 1; i < m; i++ {
			f := a[i][c] / a[c][c]
			if f == 0 {
				continue
			}
			for k := c; k <= m; k++ {
				a[i][k] -= f * a[c][k]
			}
		}
	}
	x := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		t := a[i][m]
		for k := i + 1; k < m; k++ {
			t -= a[i][k] * x[k]
		}
		x[i] = t / a[i][i]
	}
	return x, true
}

// basisMatrix materializes the dense basis matrix B[i][slot] for a set of
// columns: B's column s is cols[basis[s]].
func basisMatrix(cols [][]float64, basis []int) [][]float64 {
	m := len(basis)
	B := make([][]float64, m)
	for i := range B {
		B[i] = make([]float64, m)
		for s, j := range basis {
			B[i][s] = cols[j][i]
		}
	}
	return B
}

// checkFactor verifies ftran and btran of s.lu against dense solves with the
// materialized basis matrix, on nRHS random right-hand sides.
func checkFactor(t *testing.T, s *Solver, cols [][]float64, rng *rand.Rand, nRHS int, tol float64) {
	t.Helper()
	m := s.m
	B := basisMatrix(cols, s.basis)
	for trial := 0; trial < nRHS; trial++ {
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, ok := denseSolve(B, b)
		if !ok {
			t.Fatalf("reference dense solve found basis singular")
		}
		got := append([]float64(nil), b...)
		s.lu.ftran(got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
				t.Fatalf("ftran slot %d: got %g want %g (diff %g)", i, got[i], want[i], got[i]-want[i])
			}
		}
		// BTRAN solves yB = c, i.e. Bᵀy = c.
		Bt := make([][]float64, m)
		for i := range Bt {
			Bt[i] = make([]float64, m)
			for k := 0; k < m; k++ {
				Bt[i][k] = B[k][i]
			}
		}
		wantY, ok := denseSolve(Bt, b)
		if !ok {
			t.Fatalf("reference dense transpose solve found basis singular")
		}
		gotY := append([]float64(nil), b...)
		s.lu.btran(gotY)
		for i := range gotY {
			if math.Abs(gotY[i]-wantY[i]) > tol*(1+math.Abs(wantY[i])) {
				t.Fatalf("btran row %d: got %g want %g", i, gotY[i], wantY[i])
			}
		}
	}
}

func randCols(rng *rand.Rand, n, m int, density float64) [][]float64 {
	cols := make([][]float64, n)
	for j := range cols {
		cols[j] = make([]float64, m)
		nz := 0
		for i := range cols[j] {
			if rng.Float64() < density {
				cols[j][i] = math.Round(rng.NormFloat64()*8) / 4
				if cols[j][i] != 0 {
					nz++
				}
			}
		}
		if nz == 0 {
			cols[j][rng.Intn(m)] = 1 + rng.Float64()
		}
	}
	return cols
}

// TestLUFactorizeRandom checks factorize+ftran+btran against dense Gaussian
// elimination on random sparse bases of varying size and density.
func TestLUFactorizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(30)
		cols := randCols(rng, m, m, 0.1+0.5*rng.Float64())
		basis := make([]int, m)
		for i := range basis {
			basis[i] = i
		}
		s := luTestSolver(t, cols, basis)
		if !s.factorizeBasis(s.lu) {
			// The random basis really can be singular; the dense reference
			// must agree.
			b := make([]float64, m)
			b[0] = 1
			if _, ok := denseSolve(basisMatrix(cols, basis), b); ok {
				t.Fatalf("trial %d: factorizeBasis failed on a nonsingular basis", trial)
			}
			continue
		}
		checkFactor(t, s, cols, rng, 3, 1e-6)
	}
}

// TestLUSingular feeds structurally and numerically singular bases and wants
// a clean failure, never a bogus factor.
func TestLUSingular(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Zero column.
	colsA := randCols(rng, 4, 4, 0.8)
	// A column whose only entry is below pivotEps: numerically a zero column
	// (loadCol keeps it, factorization must refuse to pivot on it).
	colsA[2] = []float64{0, pivotEps / 2, 0, 0}
	sA := luTestSolver(t, colsA, []int{0, 1, 2, 3})
	if sA.factorizeBasis(sA.lu) {
		t.Fatal("factorized a basis with an (effectively) zero column")
	}
	// Duplicate column.
	colsB := randCols(rng, 4, 4, 0.8)
	colsB[3] = append([]float64(nil), colsB[1]...)
	sB := luTestSolver(t, colsB, []int{0, 1, 2, 3})
	if sB.factorizeBasis(sB.lu) {
		t.Fatal("factorized a basis with a duplicated column")
	}
	// Linearly dependent triple: c2 = c0 + c1.
	colsC := randCols(rng, 5, 5, 0.9)
	for i := 0; i < 5; i++ {
		colsC[2][i] = colsC[0][i] + colsC[1][i]
	}
	sC := luTestSolver(t, colsC, []int{0, 1, 2, 3, 4})
	if sC.factorizeBasis(sC.lu) {
		t.Fatal("factorized a linearly dependent basis")
	}
}

// TestLUNearSingular: two columns differing by ~1e-13 leave every candidate
// pivot of the last elimination step at roundoff level; the factorization
// must report failure rather than divide by it.
func TestLUNearSingular(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cols := randCols(rng, 4, 4, 1.0)
	for i := 0; i < 4; i++ {
		cols[3][i] = cols[2][i]
	}
	cols[3][1] += 1e-13
	s := luTestSolver(t, cols, []int{0, 1, 2, 3})
	if s.factorizeBasis(s.lu) {
		t.Fatal("factorized a near-singular basis (pivot ~1e-13)")
	}
}

// TestLUPermutedTriangular: a row/column permutation of a triangular matrix
// factorizes with zero fill beyond its own entries and solves exactly.
func TestLUPermutedTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(20)
		// Lower-triangular T with unit-ish diagonal, then permute rows and
		// columns.
		T := make([][]float64, m)
		for i := range T {
			T[i] = make([]float64, m)
			T[i][i] = 1 + rng.Float64()
			for k := 0; k < i; k++ {
				if rng.Float64() < 0.3 {
					T[i][k] = rng.NormFloat64()
				}
			}
		}
		rp := rng.Perm(m)
		cp := rng.Perm(m)
		cols := make([][]float64, m)
		for j := range cols {
			cols[j] = make([]float64, m)
			for i := 0; i < m; i++ {
				cols[j][i] = T[rp[i]][cp[j]]
			}
		}
		basis := make([]int, m)
		for i := range basis {
			basis[i] = i
		}
		s := luTestSolver(t, cols, basis)
		if !s.factorizeBasis(s.lu) {
			t.Fatalf("trial %d: failed to factorize a permuted triangular basis", trial)
		}
		// A fresh factorization carries no update file by construction.
		if s.lu.fNNZ() != 0 || s.lu.updates != 0 {
			t.Fatalf("trial %d: fresh factorization reports update state (fNNZ=%d updates=%d)",
				trial, s.lu.fNNZ(), s.lu.updates)
		}
		checkFactor(t, s, cols, rng, 2, 1e-8)
	}
}

// TestLUUpdateVsRefactor drives long sequences of Forrest–Tomlin updates and
// checks after every step that ftran/btran still agree with a dense solve of
// the explicitly tracked basis matrix — i.e. the update file is exactly
// equivalent to refactorizing.
func TestLUUpdateVsRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.Intn(15)
		n := m + 5 + rng.Intn(20)
		cols := randCols(rng, n, m, 0.2+0.4*rng.Float64())
		basis := make([]int, m)
		inBasis := make([]bool, n)
		for i := range basis {
			basis[i] = i
			inBasis[i] = true
		}
		s := luTestSolver(t, cols, basis)
		if !s.factorizeBasis(s.lu) {
			continue // unlucky start; randomness covered by other trials
		}
		steps := 0
		for attempt := 0; attempt < 400 && steps < 200; attempt++ {
			enter := rng.Intn(n)
			if inBasis[enter] {
				continue
			}
			r := rng.Intn(m)
			col, _ := s.ftranCol(enter) // stashes the spike for ftUpdate
			if math.Abs(col[r]) < 1e-3 {
				continue // would be numerically silly even for a real pivot
			}
			inBasis[s.basis[r]] = false
			s.basis[r] = enter
			inBasis[enter] = true
			if _, ok := s.lu.ftUpdate(r); !ok {
				if !s.factorizeBasis(s.lu) {
					t.Fatalf("trial %d: refactorization after rejected update failed", trial)
				}
			}
			steps++
			if steps%7 == 0 {
				checkFactor(t, s, cols, rng, 1, 1e-5)
			}
		}
		if steps < 20 {
			continue
		}
		checkFactor(t, s, cols, rng, 2, 1e-5)
		// And the factor agrees with a from-scratch factorization of the
		// same basis.
		fresh := &luFactor{}
		if !s.factorizeBasis(fresh) {
			t.Fatalf("trial %d: fresh factorization of the updated basis failed", trial)
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		viaUpdates := append([]float64(nil), b...)
		s.lu.ftran(viaUpdates)
		viaFresh := append([]float64(nil), b...)
		fresh.ftran(viaFresh)
		for i := range b {
			if math.Abs(viaUpdates[i]-viaFresh[i]) > 1e-5*(1+math.Abs(viaFresh[i])) {
				t.Fatalf("trial %d: update-file ftran diverged from fresh factorization at slot %d: %g vs %g",
					trial, i, viaUpdates[i], viaFresh[i])
			}
		}
	}
}

// TestLUUpdateGrowsFFile sanity-checks the bookkeeping the refactorization
// policy relies on: updates count up, fNNZ grows monotonically, and a
// refactorization resets both.
func TestLUUpdateGrowsFFile(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m, n := 12, 30
	cols := randCols(rng, n, m, 0.6)
	basis := make([]int, m)
	inBasis := make([]bool, n)
	for i := range basis {
		basis[i] = i
		inBasis[i] = true
	}
	s := luTestSolver(t, cols, basis)
	if !s.factorizeBasis(s.lu) {
		t.Skip("random start basis singular")
	}
	updates := 0
	for attempt := 0; attempt < 200 && updates < 30; attempt++ {
		enter := rng.Intn(n)
		if inBasis[enter] {
			continue
		}
		r := rng.Intn(m)
		col, _ := s.ftranCol(enter)
		if math.Abs(col[r]) < 1e-2 {
			continue
		}
		inBasis[s.basis[r]] = false
		s.basis[r] = enter
		inBasis[enter] = true
		if _, ok := s.lu.ftUpdate(r); !ok {
			if !s.factorizeBasis(s.lu) {
				t.Fatal("refactorization failed")
			}
			continue
		}
		updates++
		if s.lu.updates == 0 {
			t.Fatal("updates counter not incremented")
		}
	}
	if updates < 5 {
		t.Skip("not enough successful updates to exercise the counters")
	}
	if !s.factorizeBasis(s.lu) {
		t.Fatal("refactorization failed")
	}
	if s.lu.updates != 0 || s.lu.fNNZ() != 0 {
		t.Fatalf("refactorization did not reset update state: updates=%d fNNZ=%d", s.lu.updates, s.lu.fNNZ())
	}
}

package lp

import (
	"math"
	"testing"
)

// FuzzLPDegenerateTies drives the simplex through tiny LPs whose
// coefficients are drawn from {-1, 0, 1, 2} and whose bounds and right-hand
// sides are small integers — the regime where ratio-test ties, degenerate
// pivots, and bound-flip breakpoint ties are the rule rather than the
// exception. Every byte stream decodes to a valid instance.
//
// Properties checked:
//
//  1. An Optimal cold solve is primal feasible (rows and bounds) and its
//     reported objective matches c·x.
//  2. After a bound tightening, the warm re-solve agrees with a cold solve
//     of the same instance on a fresh solver: same status, same objective.
//
// The committed seed corpus (testdata/fuzz/FuzzLPDegenerateTies) pins known
// tie-heavy shapes: fully degenerate equality systems, all-equal ratio
// columns, and box-bounded rows that force dual bound flips.
func FuzzLPDegenerateTies(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1, 1, 1, 1, 2, 2, 0, 1, 1, 1, 1})
	f.Add([]byte{4, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2})
	f.Add([]byte{5, 4, 2, 0, 3, 1, 2, 0, 3, 1, 2, 0, 3, 1, 2, 0, 3, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		n := 2 + int(next())%6
		m := 1 + int(next())%6
		p := NewProblem(n)
		coefOf := [4]float64{0, 1, 2, -1}
		for j := 0; j < n; j++ {
			p.SetObj(j, coefOf[next()%4])
			p.SetBounds(j, 0, float64(1+next()%3))
		}
		kinds := [3]RowKind{LE, GE, EQ}
		for i := 0; i < m; i++ {
			kind := kinds[next()%3]
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				if c := coefOf[next()%4]; c != 0 {
					coeffs[j] = c
				}
			}
			rhs := float64(int(next())%5 - 1)
			if kind == GE {
				// Keep GE rows satisfiable at the upper-bound corner often
				// enough that both feasible and infeasible instances occur.
				rhs = float64(int(next()) % 4)
			}
			p.AddRow(kind, coeffs, rhs)
		}

		s := NewSolver(p)
		sol, err := s.Solve()
		if err != nil {
			t.Fatalf("cold solve error: %v", err)
		}
		checkOptimalConsistent(t, p, sol, "cold")

		// Tighten one variable's box (possibly to a fixed point) and compare
		// the warm repair against a cold solve on a fresh solver.
		j := int(next()) % n
		lo, hi := s.Bounds(j)
		newLo := lo + float64(next()%2)
		newHi := math.Max(newLo, hi-float64(next()%2))
		s.SetVarBounds(j, newLo, newHi)
		warm, err := s.Solve()
		if err != nil {
			t.Fatalf("warm solve error: %v", err)
		}
		checkOptimalConsistent(t, p, warm, "warm")

		ref := NewSolver(p)
		ref.SetVarBounds(j, newLo, newHi)
		cold, err := ref.Solve()
		if err != nil {
			t.Fatalf("reference cold solve error: %v", err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("warm status %v != cold status %v after tightening var %d to [%g,%g]",
				warm.Status, cold.Status, j, newLo, newHi)
		}
		if warm.Status == Optimal && math.Abs(warm.Obj-cold.Obj) > 1e-6 {
			t.Fatalf("warm obj %g != cold obj %g after tightening var %d to [%g,%g]",
				warm.Obj, cold.Obj, j, newLo, newHi)
		}
	})
}

// checkOptimalConsistent asserts the Optimal-solution invariants: primal
// feasibility of rows and bounds, and objective consistency.
func checkOptimalConsistent(t *testing.T, p *Problem, sol *Solution, label string) {
	t.Helper()
	if sol.Status != Optimal {
		return
	}
	if !p.RowsSatisfied(sol.X, 1e-6) {
		t.Fatalf("%s: optimal point violates a row", label)
	}
	obj := 0.0
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.Bounds(j)
		if sol.X[j] < lo-1e-6 || sol.X[j] > hi+1e-6 {
			t.Fatalf("%s: x[%d]=%g outside [%g,%g]", label, j, sol.X[j], lo, hi)
		}
		obj += p.Obj(j) * sol.X[j]
	}
	if math.Abs(obj-sol.Obj) > 1e-6 {
		t.Fatalf("%s: reported obj %g but c·x = %g", label, sol.Obj, obj)
	}
}

package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkScratchClean asserts the between-solves invariant the sparse paths
// promise: every mark array is all-false and the sparse workspace zs is
// all-zero. A leaked mark or stale zs entry poisons the NEXT solve's
// symbolic pass, so every property trial re-checks it.
func checkScratchClean(t *testing.T, f *luFactor) {
	t.Helper()
	for i := 0; i < f.m; i++ {
		if f.markR[i] || f.markS[i] || f.markV[i] {
			t.Fatalf("mark leaked at %d (R=%v S=%v V=%v)", i, f.markR[i], f.markS[i], f.markV[i])
		}
		if f.zs[i] != 0 {
			t.Fatalf("zs leaked at %d: %g", i, f.zs[i])
		}
	}
}

// sparseRHS builds a right-hand side with exactly nnz random nonzeros and
// returns it with its index list.
func sparseRHS(rng *rand.Rand, m, nnz int) ([]float64, []int32) {
	v := make([]float64, m)
	idx := make([]int32, 0, nnz)
	for len(idx) < nnz {
		i := rng.Intn(m)
		if v[i] != 0 {
			continue
		}
		v[i] = rng.NormFloat64()
		idx = append(idx, int32(i))
	}
	return v, idx
}

// checkSparseSolve runs one ftranSparse or btranSparse against the dense
// reference on the same factor and asserts: identical values everywhere, a
// sparse result that is zero outside its returned index list, and clean
// scratch afterwards. Returns whether the solve stayed sparse.
func checkSparseSolve(t *testing.T, f *luFactor, v []float64, idx []int32, btran bool, tol float64) bool {
	t.Helper()
	want := append([]float64(nil), v...)
	if btran {
		f.btran(want)
	} else {
		f.ftran(want)
	}
	got := append([]float64(nil), v...)
	var nz []int32
	var ok bool
	if btran {
		nz, ok = f.btranSparse(got, idx)
	} else {
		nz, ok = f.ftranSparse(got, idx)
	}
	checkScratchClean(t, f)
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("btran=%v nnz=%d sparse=%v: position %d got %g want %g",
				btran, len(idx), ok, i, got[i], want[i])
		}
	}
	if ok {
		on := make(map[int32]bool, len(nz))
		for _, q := range nz {
			on[q] = true
		}
		for i := range got {
			if got[i] != 0 && !on[int32(i)] {
				t.Fatalf("btran=%v: nonzero %d missing from sparse index list", btran, i)
			}
		}
	}
	return ok
}

// TestSparseSolveVsDense is the core equivalence property: across random
// factors of varying size and density, and right-hand sides from singleton
// to one-third dense, ftranSparse/btranSparse must agree with the dense
// ftran/btran to rounding — whether the solve stays on the sparse path or
// crosses the density gate mid-stage and finishes dense.
func TestSparseSolveVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		m := 8 + rng.Intn(40) // always >= luSparseMinDim
		density := []float64{0.05, 0.12, 0.3}[trial%3]
		cols := randCols(rng, m, m, density)
		basis := rng.Perm(m)
		s := luTestSolver(t, cols, basis)
		if !s.factorizeBasis(s.lu) {
			continue
		}
		for _, nnz := range []int{1, 2, 1 + m/8, 1 + m/3} {
			v, idx := sparseRHS(rng, m, nnz)
			checkSparseSolve(t, s.lu, v, idx, false, 1e-8)
			v, idx = sparseRHS(rng, m, nnz)
			checkSparseSolve(t, s.lu, v, idx, true, 1e-8)
		}
	}
}

// TestSparseSolveAfterUpdate replays the TestLUUpdateVsRefactor pivot loop
// — basis changes applied via Forrest-Tomlin ftUpdate, never refactorized —
// and re-checks the sparse/dense equivalence after every update while the F
// file and the lT transpose graph grow. The sparse BTRAN's Fᵀ reverse scan
// and the update-spike stash are only exercised on factors with a non-empty
// F file, which fresh factorizations never have.
func TestSparseSolveAfterUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		m := 10 + rng.Intn(20)
		n := 2 * m
		cols := randCols(rng, n, m, 0.25)
		basis := rng.Perm(n)[:m]
		s := luTestSolver(t, cols, basis)
		if !s.factorizeBasis(s.lu) {
			continue
		}
		for step := 0; step < 12; step++ {
			// Pick a replacement column that keeps the basis nonsingular.
			r := rng.Intn(m)
			enter := -1
			for probe := 0; probe < 20; probe++ {
				j := rng.Intn(n)
				if s.status[j] == basic {
					continue
				}
				col, _ := s.ftranCol(j) // stashes the spike for ftUpdate
				if math.Abs(col[r]) > 1e-6 {
					enter = j
					break
				}
			}
			if enter < 0 {
				break
			}
			leave := s.basis[r]
			if _, ok := s.lu.ftUpdate(r); !ok {
				break
			}
			s.status[leave] = atLower
			s.basis[r] = enter
			s.status[enter] = basic
			for _, nnz := range []int{1, 1 + m/6} {
				v, idx := sparseRHS(rng, m, nnz)
				checkSparseSolve(t, s.lu, v, idx, false, 1e-6)
				v, idx = sparseRHS(rng, m, nnz)
				checkSparseSolve(t, s.lu, v, idx, true, 1e-6)
			}
		}
	}
}

// TestSparseSolveFallbackBoundary pins the density-gate contract on both
// sides: a seed list longer than sparseMax must take the dense path
// immediately (ok=false) with a correct dense result, and a dense factor
// (identity-free random at 0.9 density) must fall back mid-stage from a
// singleton seed without corrupting the result or the scratch invariants.
func TestSparseSolveFallbackBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := 30
	cols := randCols(rng, m, m, 0.15)
	s := luTestSolver(t, cols, rng.Perm(m))
	if !s.factorizeBasis(s.lu) {
		t.Fatal("factorization failed")
	}
	maxN := s.lu.sparseMax()
	if maxN <= 0 || maxN >= m {
		t.Fatalf("unexpected sparseMax %d for m=%d", maxN, m)
	}
	// One past the gate: must decline the sparse path up front.
	v, idx := sparseRHS(rng, m, maxN+1)
	if ok := checkSparseSolve(t, s.lu, v, idx, false, 1e-8); ok {
		t.Fatal("ftranSparse accepted a seed list past the density gate")
	}
	v, idx = sparseRHS(rng, m, maxN+1)
	if ok := checkSparseSolve(t, s.lu, v, idx, true, 1e-8); ok {
		t.Fatal("btranSparse accepted a seed list past the density gate")
	}
	// At the gate: allowed on the sparse path (it may still abort
	// mid-stage on predicted fill; equivalence is what matters).
	v, idx = sparseRHS(rng, m, maxN)
	checkSparseSolve(t, s.lu, v, idx, false, 1e-8)
	// Dense factor: singleton seeds whose reachable set outgrows the gate
	// mid-stage exercise every abort path.
	dense := randCols(rng, m, m, 0.9)
	sd := luTestSolver(t, dense, rng.Perm(m))
	if !sd.factorizeBasis(sd.lu) {
		t.Fatal("dense factorization failed")
	}
	sparse := 0
	for r := 0; r < m; r++ {
		v, idx = sparseRHS(rng, m, 1)
		if checkSparseSolve(t, sd.lu, v, idx, false, 1e-8) {
			sparse++
		}
		v, idx = sparseRHS(rng, m, 1)
		checkSparseSolve(t, sd.lu, v, idx, true, 1e-8)
	}
	if sparse == m {
		t.Fatal("every singleton on a dense factor stayed sparse; the gate is not engaging")
	}
}

// TestPricingSameOptimum asserts the pricing rule is a pure heuristic: devex
// and exact steepest edge must reach the same optimal objective (pivot
// counts and paths may differ) on the randomized covering portfolio, both
// from a cold start and through the warm bound-fix/unfix repair loop.
func TestPricingSameOptimum(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := benchProblem(80, 40, 5, seed)
		obj := map[Pricing]float64{}
		for _, rule := range []Pricing{PricingDevex, PricingSteepestEdge} {
			s := NewSolver(p)
			s.SetPricing(rule)
			sol, err := s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != Optimal {
				t.Fatalf("seed %d %v: status %v", seed, rule, sol.Status)
			}
			cold := sol.Obj
			// Warm repair loop must land on the same optimum too.
			for j := 0; j < 10; j++ {
				s.SetVarBounds(j, 1, 1)
				if _, err := s.Solve(); err != nil {
					t.Fatal(err)
				}
				s.SetVarBounds(j, 0, 1)
			}
			sol, err = s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sol.Obj-cold) > 1e-7*(1+math.Abs(cold)) {
				t.Fatalf("seed %d %v: warm loop drifted %g -> %g", seed, rule, cold, sol.Obj)
			}
			obj[rule] = cold
		}
		if d, s := obj[PricingDevex], obj[PricingSteepestEdge]; math.Abs(d-s) > 1e-7*(1+math.Abs(d)) {
			t.Fatalf("seed %d: devex optimum %g != steepest-edge optimum %g", seed, d, s)
		}
	}
}

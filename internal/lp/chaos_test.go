//go:build faultinject

// Kernel-level chaos: the two LU fault points fire directly against the
// simplex solver's handled recovery paths — a failed reinversion keeps the
// current factor, a singular warm-start factor falls back to a cold solve —
// and the optimum must come out identical either way.

package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
)

// chaosLP builds a reproducible feasible LP with a few dozen pivots' worth
// of structure (enough for warm-start replays to be non-trivial).
func chaosLP(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 12
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, float64(rng.Intn(9)-4))
		p.SetBounds(j, 0, float64(3+rng.Intn(8)))
	}
	for i := 0; i < 8; i++ {
		coeffs := map[int]float64{}
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				coeffs[j] = float64(rng.Intn(7) - 3)
			}
		}
		if len(coeffs) == 0 {
			coeffs[i%n] = 1
		}
		p.AddRow(LE, coeffs, float64(5+rng.Intn(20)))
	}
	return p
}

// TestChaosSingularWarmStartFallsBackCold: ResolveFrom with the
// singular-factor fault armed must reject the replayed basis and still
// deliver the exact optimum via the cold path.
func TestChaosSingularWarmStartFallsBackCold(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	for seed := int64(1); seed <= 5; seed++ {
		p := chaosLP(seed)
		s := NewSolver(p)
		clean, err := s.Solve()
		if err != nil || clean.Status != Optimal {
			t.Fatalf("seed %d: clean solve (%v, %v)", seed, clean.Status, err)
		}
		bs := s.Basis()

		// Branch-style perturbation, replayed from the snapshot with the
		// fault firing: install must fail, the cold fallback must win.
		s2 := NewSolver(p)
		faultinject.Arm(faultinject.LUSingularFactor, 1)
		faulted, err := s2.ResolveFrom(bs)
		if err != nil {
			t.Fatalf("seed %d: faulted ResolveFrom: %v", seed, err)
		}
		if faulted.Status != Optimal || math.Abs(faulted.Obj-clean.Obj) > 1e-6 {
			t.Fatalf("seed %d: faulted warm start diverged: (%v, %g) vs %g",
				seed, faulted.Status, faulted.Obj, clean.Obj)
		}
	}
	if faultinject.Fired(faultinject.LUSingularFactor) == 0 {
		t.Fatal("singular-factor fault point never fired; hook is dead")
	}
}

// TestChaosSparseFallbackEquivalence: with the sparse-solve fault armed
// permanently, every FTRAN/BTRAN is forced onto the dense fallback
// (sparseMax reports 0), and a full solve plus a warm bound-tightening
// replay must reproduce the un-faulted run exactly — the hyper-sparse path
// is an optimization, never a semantic fork. The fired counter proves the
// gate actually routed solves away.
func TestChaosSparseFallbackEquivalence(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	for seed := int64(1); seed <= 3; seed++ {
		// Large enough (m=30 >= luSparseMinDim) that the sparse path
		// genuinely engages when the fault is disarmed.
		p := benchProblem(60, 30, 6, seed)
		ref := NewSolver(p)
		faulted := NewSolver(p)
		want, err := ref.Solve()
		if err != nil {
			t.Fatalf("seed %d: clean solve: %v", seed, err)
		}
		faultinject.Arm(faultinject.SparseSolveFallback, -1)
		got, err := faulted.Solve()
		faultinject.Disarm(faultinject.SparseSolveFallback)
		if err != nil {
			t.Fatalf("seed %d: faulted solve: %v", seed, err)
		}
		if got.Status != want.Status ||
			(got.Status == Optimal && math.Abs(got.Obj-want.Obj) > 1e-6) {
			t.Fatalf("seed %d: dense-forced solve diverged: (%v, %g) vs (%v, %g)",
				seed, got.Status, got.Obj, want.Status, want.Obj)
		}
		if faulted.Stats.SparseFTRANs != 0 || faulted.Stats.SparseBTRANs != 0 {
			t.Fatalf("seed %d: sparse solves recorded (%d/%d) while the fallback fault was armed",
				seed, faulted.Stats.SparseFTRANs, faulted.Stats.SparseBTRANs)
		}
		// Warm replay: bound tightening drives the FT-update / sparse
		// re-entry paths on both solvers.
		for j := 0; j < faulted.NumVars(); j += 5 {
			ref.SetVarBounds(j, 1, 1)
			faulted.SetVarBounds(j, 1, 1)
			want, err = ref.Solve()
			if err != nil {
				t.Fatalf("seed %d: clean warm re-solve: %v", seed, err)
			}
			faultinject.Arm(faultinject.SparseSolveFallback, -1)
			got, err = faulted.Solve()
			faultinject.Disarm(faultinject.SparseSolveFallback)
			if err != nil {
				t.Fatalf("seed %d: faulted warm re-solve: %v", seed, err)
			}
			if got.Status != want.Status ||
				(got.Status == Optimal && math.Abs(got.Obj-want.Obj) > 1e-6) {
				t.Fatalf("seed %d: warm re-solve diverged: (%v, %g) vs (%v, %g)",
					seed, got.Status, got.Obj, want.Status, want.Obj)
			}
		}
	}
	if faultinject.Fired(faultinject.SparseSolveFallback) == 0 {
		t.Fatal("sparse-fallback fault point never fired; hook is dead")
	}
}

// TestChaosRefactorFailureKeepsSolving: with every reinversion attempt
// failing, maybeRefactor keeps the current (still valid) factor and the
// solver's answers do not change across a warm re-solve sequence.
func TestChaosRefactorFailureKeepsSolving(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	for seed := int64(1); seed <= 5; seed++ {
		p := chaosLP(seed)
		ref := NewSolver(p)
		faulted := NewSolver(p)
		faultinject.Disarm(faultinject.LURefactorFail)
		want, err := ref.Solve()
		if err != nil || want.Status != Optimal {
			t.Fatalf("seed %d: clean solve (%v, %v)", seed, want.Status, err)
		}
		faultinject.Arm(faultinject.LURefactorFail, -1)
		got, err := faulted.Solve()
		if err != nil {
			t.Fatalf("seed %d: faulted solve: %v", seed, err)
		}
		if got.Status != Optimal || math.Abs(got.Obj-want.Obj) > 1e-6 {
			t.Fatalf("seed %d: faulted solve diverged: (%v, %g) vs %g",
				seed, got.Status, got.Obj, want.Obj)
		}
		// Warm re-solves after bound tightening (the branching pattern that
		// drives Forrest-Tomlin updates and eventually reinversions).
		for j := 0; j < faulted.NumVars(); j += 3 {
			lo, hi := faulted.Bounds(j)
			faulted.SetVarBounds(j, lo, math.Max(lo, hi-1))
			ref.SetVarBounds(j, lo, math.Max(lo, hi-1))
			got, err = faulted.Solve()
			if err != nil {
				t.Fatalf("seed %d: faulted warm re-solve: %v", seed, err)
			}
			faultinject.Disarm(faultinject.LURefactorFail)
			want, err = ref.Solve()
			faultinject.Arm(faultinject.LURefactorFail, -1)
			if err != nil {
				t.Fatalf("seed %d: clean warm re-solve: %v", seed, err)
			}
			if got.Status != want.Status ||
				(got.Status == Optimal && math.Abs(got.Obj-want.Obj) > 1e-6) {
				t.Fatalf("seed %d: re-solve diverged: (%v, %g) vs (%v, %g)",
					seed, got.Status, got.Obj, want.Status, want.Obj)
			}
		}
	}
}

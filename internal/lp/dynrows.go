package lp

import (
	"fmt"
	"math"
)

// This file implements dynamic row growth on a live Solver — the primitive
// the cutting-plane layer in internal/ilp is built on. A branch-and-bound
// node that separates a violated valid inequality calls AddRows and
// re-solves; because the appended row enters with its own slack basic, the
// existing basis stays a basis of the extended system and the re-solve is a
// dual-simplex repair from the current point (the new slack is the only
// infeasible basic variable) instead of a cold two-phase rebuild.
//
// Added rows are solver-local: the shared Problem is never modified, so the
// concurrent search workers of internal/ilp can hold different cut sets
// over one Problem. Integer-feasibility checks keep using the Problem's
// rows — added rows are cutting planes, i.e. redundant for every integral
// feasible point, which is exactly why a buggy (invalid) cut can cost
// correctness of *pruning* but can never smuggle an infeasible incumbent
// through the ilp layer's row checks.

// CutRow is one constraint row appended to a live Solver by AddRows.
// Cols/Vals hold the nonzero coefficients over structural variables.
type CutRow struct {
	Kind RowKind
	Cols []int
	Vals []float64
	RHS  float64
}

// Eval returns the left-hand-side value of the row at point x.
func (r *CutRow) Eval(x []float64) float64 {
	lhs := 0.0
	for k, j := range r.Cols {
		lhs += r.Vals[k] * x[j]
	}
	return lhs
}

// Satisfied reports whether x satisfies the row within tol.
func (r *CutRow) Satisfied(x []float64, tol float64) bool {
	lhs := r.Eval(x)
	switch r.Kind {
	case LE:
		return lhs <= r.RHS+tol
	case GE:
		return lhs >= r.RHS-tol
	default:
		return math.Abs(lhs-r.RHS) <= tol
	}
}

// Violation returns how much x violates the row (0 when satisfied). For LE
// rows it is lhs-rhs, for GE rows rhs-lhs, for EQ rows |lhs-rhs|.
func (r *CutRow) Violation(x []float64) float64 {
	lhs := r.Eval(x)
	var v float64
	switch r.Kind {
	case LE:
		v = lhs - r.RHS
	case GE:
		v = r.RHS - lhs
	default:
		v = math.Abs(lhs - r.RHS)
	}
	if v < 0 {
		return 0
	}
	return v
}

// addedRow is the internal storage of one dynamically added row.
type addedRow struct {
	kind RowKind
	rhs  float64
	cols []int32
	vals []float64
}

// extEntry is one nonzero of a structural column inside an added row.
type extEntry struct {
	i int32 // row index (>= mBase)
	v float64
}

// Rows returns the current total row count (base rows + added rows).
func (s *Solver) Rows() int { return s.m }

// BaseRows returns the number of rows captured from the Problem.
func (s *Solver) BaseRows() int { return s.mBase }

// AddedRows returns the number of dynamically added rows.
func (s *Solver) AddedRows() int { return len(s.added) }

// AddedRowsSatisfied reports whether x satisfies every dynamically added
// row within tol (the added-row counterpart of Problem.RowsSatisfied, used
// by the ilp drift guard).
func (s *Solver) AddedRowsSatisfied(x []float64, tol float64) bool {
	for ai := range s.added {
		r := &s.added[ai]
		lhs := 0.0
		for k, j := range r.cols {
			lhs += r.vals[k] * x[j]
		}
		switch r.kind {
		case LE:
			if lhs > r.rhs+tol {
				return false
			}
		case GE:
			if lhs < r.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return false
			}
		}
	}
	return true
}

// AddRows appends constraint rows to the live solver. The rows reference
// structural variables only; duplicate column indices are merged and zero
// coefficients dropped. When the solver holds a valid basis the rows enter
// with their slacks basic — the old basis columns plus the new unit slacks
// form a block-triangular, provably nonsingular basis of the extended
// system — so the factorization is rebuilt once (the same reinversion the
// fill-in trigger performs periodically anyway) and the next Solve warm
// starts with the dual simplex from the current point, where the only
// primal infeasibilities are the slacks of the violated new rows. Without a
// valid basis the rows are only recorded and the next Solve builds cold.
//
// Row storage is carved from a per-solver append-only arena whose backing
// DropAddedRows keeps, so the ilp layer's drop/re-add cut cycles do O(1)
// allocations (none at all once the arena reaches its high-water mark).
func (s *Solver) AddRows(rows []CutRow) error {
	if len(rows) == 0 {
		return nil
	}
	// Row growth extends the engine arrays, so the engine must exist first
	// (NewSolver defers its construction until a solve or a row addition).
	s.ensureBuilt()
	// Validation pass: reject the whole batch before any state mutates.
	for ri := range rows {
		r := &rows[ri]
		if len(r.Cols) != len(r.Vals) {
			return fmt.Errorf("lp: AddRows: row %d has %d cols but %d vals", ri, len(r.Cols), len(r.Vals))
		}
		for k, j := range r.Cols {
			if j < 0 || j >= s.nStruct {
				return fmt.Errorf("lp: AddRows: row %d references variable %d out of range [0,%d)", ri, j, s.nStruct)
			}
			if v := r.Vals[k]; math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: AddRows: row %d has non-finite coefficient on variable %d", ri, j)
			}
		}
	}

	wasValid := s.valid
	mOld := s.m
	k := len(rows)
	s.m += k
	s.nTotal = s.nStruct + 2*s.m
	s.maxIter = 2000 + 200*(s.m+s.nTotal)
	s.Stats.RowsAdded += k

	// Per-row arrays grow by k (zeroed; capacity reused when available).
	s.rhs = growZero(s.rhs, k)
	s.artUsed = growZero(s.artUsed, k)
	s.artSign = growZero(s.artSign, k)
	s.basis = growZero(s.basis, k)
	s.xb = growZero(s.xb, k)
	s.alpha = growZero(s.alpha, k)
	s.y = growZero(s.y, k)
	s.rho = growZero(s.rho, k)
	s.flipCol = growZero(s.flipCol, k)
	s.tau = growZero(s.tau, k)
	s.rowMark = growZero(s.rowMark, k)
	s.dualW = growZero(s.dualW, k)

	// Per-column arrays grow by 2k; the artificial block shifts up by k.
	// Artificial columns carry no state between solves (a valid basis never
	// contains one, and the cold build reinitializes them), so the whole
	// region is simply reset at its new position. The pricing scratch d/dw
	// is rebuilt at every primal entry and only needs the length.
	s.lo = growZero(s.lo, 2*k)
	s.hi = growZero(s.hi, 2*k)
	s.status = growZero(s.status, 2*k)
	s.cost = growZero(s.cost, 2*k)
	s.d = growZero(s.d, 2*k)
	s.dw = growZero(s.dw, 2*k)
	for i := 0; i < s.m; i++ {
		ac := s.nStruct + s.m + i
		s.lo[ac], s.hi[ac] = 0, 0
		s.status[ac] = atLower
		s.cost[ac] = 0
	}
	if s.costPhase == 1 {
		// The phase-1 cost row indexed the old artificial block; force a
		// rebuild on the next solve.
		s.costPhase = 0
		s.objCols = s.objCols[:0]
	}

	if s.extCols == nil {
		s.extCols = make([][]extEntry, s.nStruct)
	}
	for ri := range rows {
		cr := &rows[ri]
		i := mOld + ri
		// Reuse the trimmed element when the slice previously reached this
		// length (the cols/vals views are re-carved from the arena below).
		if cap(s.added) > len(s.added) {
			s.added = s.added[:len(s.added)+1]
		} else {
			s.added = append(s.added, addedRow{})
		}
		r := &s.added[len(s.added)-1]
		r.kind, r.rhs = cr.Kind, cr.RHS
		// Carve the row's storage out of the per-solver arena: the row
		// keeps a capped view, so later arena appends cannot stomp it, and
		// DropAddedRows reclaims everything with one truncation. A growth
		// past the arena's capacity moves the backing array, but existing
		// rows keep valid views of the old one until the next drop.
		base := len(s.cutCols)
		for ci, j := range cr.Cols {
			if v := cr.Vals[ci]; v != 0 {
				s.cutCols = append(s.cutCols, int32(j))
				s.cutVals = append(s.cutVals, v)
			}
		}
		end := len(s.cutCols)
		r.cols = s.cutCols[base:end:end]
		r.vals = s.cutVals[base:end:end]
		mergeDupCols(r)

		s.rhs[i] = r.rhs
		s.artSign[i] = 1
		sc := s.nStruct + i
		s.cost[sc] = 0
		switch r.kind {
		case LE:
			s.lo[sc], s.hi[sc] = 0, Inf
			s.status[sc] = atLower
		case GE:
			s.lo[sc], s.hi[sc] = math.Inf(-1), 0
			s.status[sc] = atUpper
		case EQ:
			s.lo[sc], s.hi[sc] = 0, 0
			s.status[sc] = atLower
		}
		for ci, j := range r.cols {
			s.extCols[j] = append(s.extCols[j], extEntry{i: int32(i), v: r.vals[ci]})
		}
	}

	if !wasValid {
		return nil
	}
	// A valid basis may keep an artificial basic at 0 (redundant row after
	// a cold solve). The artificial block just shifted up by k, so remap
	// those basis references and restore their basic status (the region
	// reset above marked every artificial nonbasic).
	firstArtOld := s.nStruct + mOld
	for i := 0; i < mOld; i++ {
		if jb := s.basis[i]; jb >= firstArtOld {
			s.basis[i] = jb + k
			s.status[jb+k] = basic
		}
	}
	// Keep the warm basis: the new slacks enter the basis in their own
	// rows, then one reinversion rebuilds the factorization over the
	// extended column data. Dual feasibility is preserved — the new slacks
	// cost 0 and carry zero dual prices, so every old reduced cost is
	// unchanged — and the next Solve repairs primal feasibility with the
	// dual simplex.
	for i := mOld; i < s.m; i++ {
		sc := s.nStruct + i
		s.basis[i] = sc
		s.status[sc] = basic
	}
	if !s.refactor() {
		// Cannot happen for a nonsingular old basis (the extended basis is
		// block triangular with a unit diagonal block), but a numerically
		// borderline old factorization may fail threshold pivoting; fall
		// back to a cold rebuild on the next solve.
		s.valid = false
		return nil
	}
	s.computeB()
	return nil
}

// growZero extends s by k zeroed elements, reusing capacity when available
// (append with a fresh make would allocate the k-element temporary even
// when the target has room).
func growZero[T any](s []T, k int) []T {
	var zero T
	n := len(s)
	if cap(s) >= n+k {
		s = s[:n+k]
		for i := n; i < n+k; i++ {
			s[i] = zero
		}
		return s
	}
	return append(s, make([]T, k)...)
}

// mergeDupCols sorts a row's coefficients by column and merges duplicates,
// in place (cut rows are short; insertion sort, no allocation).
func mergeDupCols(r *addedRow) {
	cols, vals := r.cols, r.vals
	if len(cols) < 2 {
		return
	}
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
	w := 0
	for i := 0; i < len(cols); {
		c, v := cols[i], vals[i]
		for i++; i < len(cols) && cols[i] == c; i++ {
			v += vals[i]
		}
		cols[w], vals[w] = c, v
		w++
	}
	r.cols, r.vals = cols[:w], vals[:w]
}

// DropAddedRows removes every dynamically added row, returning the solver
// to the Problem's base row set. The basis is invalidated (a basis of the
// extended system is not generally a basis of the truncated one), so the
// next Solve rebuilds cold. The ilp layer uses this when the cut pool
// compacts or a node-local cut set changes; both are rare enough that one
// cold solve is cheaper than bookkeeping an incremental removal.
func (s *Solver) DropAddedRows() {
	if len(s.added) == 0 {
		return
	}
	s.m = s.mBase
	s.nTotal = s.nStruct + 2*s.m
	s.maxIter = 2000 + 200*(s.m+s.nTotal)
	// Truncations keep every backing array (the cut-row arena and the
	// per-column extension lists included) so the next AddRows cycle
	// reuses them instead of reallocating.
	s.added = s.added[:0]
	s.cutCols = s.cutCols[:0]
	s.cutVals = s.cutVals[:0]
	for j := range s.extCols {
		s.extCols[j] = s.extCols[j][:0]
	}

	s.rhs = s.rhs[:s.m]
	s.artUsed = s.artUsed[:s.m]
	s.artSign = s.artSign[:s.m]
	s.basis = s.basis[:s.m]
	s.xb = s.xb[:s.m]
	s.alpha = s.alpha[:s.m]
	s.y = s.y[:s.m]
	s.rho = s.rho[:s.m]
	s.flipCol = s.flipCol[:s.m]
	s.tau = s.tau[:s.m]
	s.rowMark = s.rowMark[:s.m]
	s.dualW = s.dualW[:s.m]
	// The sparse-pattern lists may reference truncated rows; mark every
	// sparse-capable vector dense-dirty so the next load does a full clear.
	s.alphaDense, s.rhoDense, s.flipDense, s.tauDense = true, true, true, true
	s.alphaNZ = s.alphaNZ[:0]
	s.rhoNZ = s.rhoNZ[:0]
	s.flipNZ = s.flipNZ[:0]
	s.tauNZ = s.tauNZ[:0]

	s.lo = s.lo[:s.nTotal]
	s.hi = s.hi[:s.nTotal]
	s.status = s.status[:s.nTotal]
	s.cost = s.cost[:s.nTotal]
	s.d = s.d[:s.nTotal]
	s.dw = s.dw[:s.nTotal]
	for i := 0; i < s.m; i++ {
		ac := s.nStruct + s.m + i
		s.lo[ac], s.hi[ac] = 0, 0
		s.status[ac] = atLower
		s.cost[ac] = 0
	}
	if s.costPhase == 1 {
		s.costPhase = 0
		s.objCols = s.objCols[:0]
	}
	// The factorization is for the extended system; a basis of that system
	// is not generally a basis of the truncated one, so the next Solve must
	// rebuild (build() refactorizes at the new dimension).
	s.factorAge = 0
	s.valid = false
}

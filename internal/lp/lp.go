// Package lp implements a dense two-phase primal simplex solver for linear
// programs with bounded variables.
//
// The solver targets the moderately sized models produced by the temporal
// partitioning ILP of internal/tempart (a few hundred variables and rows).
// It supports:
//
//   - minimization objectives (maximization is handled by negation at a
//     higher layer),
//   - <=, >= and == rows,
//   - per-variable lower and upper bounds (the bounded-variable simplex,
//     so 0-1 variables fixed by a branch-and-bound layer do not require
//     extra constraint rows),
//   - infeasibility and unboundedness detection.
//
// Degeneracy is handled by switching from Dantzig pricing to Bland's rule
// after a stall is detected, which guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// RowKind classifies a linear constraint row.
type RowKind int

const (
	// LE is a "<= rhs" row.
	LE RowKind = iota
	// GE is a ">= rhs" row.
	GE
	// EQ is an "== rhs" row.
	EQ
)

func (k RowKind) String() string {
	switch k {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("RowKind(%d)", int(k))
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no feasible point.
	Infeasible
	// Unbounded means the objective is unbounded below on the feasible set.
	Unbounded
	// IterLimit means the iteration safety limit was exceeded.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Inf is the bound value representing "no bound".
var Inf = math.Inf(1)

const (
	eps      = 1e-9 // general numeric tolerance
	pivotEps = 1e-7 // minimum acceptable pivot magnitude
)

// row is one stored constraint.
type row struct {
	kind   RowKind
	coeffs []coeff
	rhs    float64
}

type coeff struct {
	j int
	v float64
}

// Problem is a linear program in the form
//
//	minimize    c . x
//	subject to  A x (<=|==|>=) b
//	            lower <= x <= upper
//
// The zero value is not usable; construct with NewProblem.
type Problem struct {
	n     int
	obj   []float64
	lower []float64
	upper []float64
	rows  []row
}

// NewProblem returns a problem with n structural variables, zero objective,
// and default bounds [0, +Inf) for every variable.
func NewProblem(n int) *Problem {
	p := &Problem{
		n:     n,
		obj:   make([]float64, n),
		lower: make([]float64, n),
		upper: make([]float64, n),
	}
	for j := range p.upper {
		p.upper[j] = Inf
	}
	return p
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.n }

// AddVar appends a new structural variable with zero objective and default
// bounds [0, +Inf), returning its index. Variables may only be added before
// rows that reference them, but adding variables after unrelated rows is
// safe.
func (p *Problem) AddVar() int {
	p.obj = append(p.obj, 0)
	p.lower = append(p.lower, 0)
	p.upper = append(p.upper, Inf)
	p.n++
	return p.n - 1
}

// EvalRow computes the left-hand-side value of row i at point x.
func (p *Problem) EvalRow(i int, x []float64) float64 {
	lhs := 0.0
	for _, c := range p.rows[i].coeffs {
		lhs += c.v * x[c.j]
	}
	return lhs
}

// RowInfo returns the kind and right-hand side of row i.
func (p *Problem) RowInfo(i int) (RowKind, float64) {
	return p.rows[i].kind, p.rows[i].rhs
}

// RowsSatisfied reports whether x satisfies every constraint row within tol.
// Variable bounds are not checked here.
func (p *Problem) RowsSatisfied(x []float64, tol float64) bool {
	for i, r := range p.rows {
		lhs := p.EvalRow(i, x)
		switch r.kind {
		case LE:
			if lhs > r.rhs+tol {
				return false
			}
		case GE:
			if lhs < r.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return false
			}
		}
	}
	return true
}

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObj sets the objective coefficient of variable j.
func (p *Problem) SetObj(j int, c float64) {
	p.obj[j] = c
}

// Obj returns the objective coefficient of variable j.
func (p *Problem) Obj(j int) float64 { return p.obj[j] }

// SetBounds sets the lower and upper bound of variable j.
// Use lp.Inf (or math.Inf(1)) for an unbounded upper bound.
func (p *Problem) SetBounds(j int, lo, hi float64) {
	p.lower[j] = lo
	p.upper[j] = hi
}

// Bounds returns the bounds of variable j.
func (p *Problem) Bounds(j int) (lo, hi float64) {
	return p.lower[j], p.upper[j]
}

// AddRow appends a constraint row. coeffs maps variable index to
// coefficient; zero-valued entries are dropped. It returns the row index.
func (p *Problem) AddRow(kind RowKind, coeffs map[int]float64, rhs float64) int {
	r := row{kind: kind, rhs: rhs}
	for j, v := range coeffs {
		if j < 0 || j >= p.n {
			panic(fmt.Sprintf("lp: AddRow: variable index %d out of range [0,%d)", j, p.n))
		}
		if v != 0 {
			r.coeffs = append(r.coeffs, coeff{j, v})
		}
	}
	p.rows = append(p.rows, r)
	return len(p.rows) - 1
}

// AddDenseRow appends a constraint row given a dense coefficient vector.
func (p *Problem) AddDenseRow(kind RowKind, coeffs []float64, rhs float64) int {
	if len(coeffs) != p.n {
		panic(fmt.Sprintf("lp: AddDenseRow: got %d coefficients, want %d", len(coeffs), p.n))
	}
	r := row{kind: kind, rhs: rhs}
	for j, v := range coeffs {
		if v != 0 {
			r.coeffs = append(r.coeffs, coeff{j, v})
		}
	}
	p.rows = append(p.rows, r)
	return len(p.rows) - 1
}

// Clone returns a deep copy of the problem. Row data is shared structurally
// (rows are append-only), so Clone is cheap enough to call per B&B node;
// bounds and objective are copied.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		n:     p.n,
		obj:   append([]float64(nil), p.obj...),
		lower: append([]float64(nil), p.lower...),
		upper: append([]float64(nil), p.upper...),
		rows:  p.rows, // rows are immutable once added
	}
	return q
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X holds the value of each structural variable (valid when Status is
	// Optimal).
	X []float64
	// Obj is the objective value c.X (valid when Status is Optimal).
	Obj float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int
}

// variable status markers for nonbasic variables.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
)

// tableau is the working state of the bounded-variable simplex.
//
// Columns 0..n-1 are shifted structural variables, n..n+nSlack-1 slacks,
// then artificials. All variables have lower bound 0 after shifting;
// upper[j] is the (possibly infinite) range length.
type tableau struct {
	m, nTotal int
	nStruct   int
	a         [][]float64 // m x nTotal
	b         []float64   // m
	upper     []float64   // nTotal, range length of each variable
	basis     []int       // m, variable basic in each row
	status    []varStatus // nTotal
	xval      []float64   // value of each nonbasic variable (0 or upper)
	cost      []float64   // current objective row (phase-dependent)
	firstArt  int         // column index of the first artificial variable
	nArt      int         // number of artificial columns actually used
	iter      int
	maxIter   int
}

// ErrBadBounds is returned when some variable has lower bound > upper bound.
var ErrBadBounds = errors.New("lp: variable lower bound exceeds upper bound")

// Solve minimizes the problem and returns the solution. The error is non-nil
// only for malformed inputs (e.g. inverted bounds); infeasibility and
// unboundedness are reported through Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	for j := 0; j < p.n; j++ {
		if p.lower[j] > p.upper[j]+eps {
			return &Solution{Status: Infeasible}, nil
		}
		if math.IsInf(p.lower[j], -1) {
			return nil, fmt.Errorf("lp: variable %d has -Inf lower bound; free variables must be split by the caller: %w", j, ErrBadBounds)
		}
	}

	t, shift := build(p)

	// Phase 1: minimize the sum of artificial variables.
	if t.hasArtificials() {
		t.setPhase1Cost()
		st := t.iterate()
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: t.iter}, nil
		}
		if t.objective() > 1e-6 {
			return &Solution{Status: Infeasible, Iterations: t.iter}, nil
		}
		t.driveOutArtificials()
	}

	// Phase 2: minimize the true objective.
	t.setPhase2Cost(p, shift)
	st := t.iterate()
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: t.iter}, nil
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iterations: t.iter}, nil
	}

	x := t.extract(p, shift)
	obj := 0.0
	for j := 0; j < p.n; j++ {
		obj += p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iterations: t.iter}, nil
}

// build constructs the simplex tableau in standard shifted form.
// It returns the tableau and the per-variable shift (the lower bounds).
func build(p *Problem) (*tableau, []float64) {
	m := len(p.rows)
	shift := make([]float64, p.n)
	for j := 0; j < p.n; j++ {
		shift[j] = p.lower[j]
	}

	// Count slacks: one per LE/GE row.
	nSlack := 0
	for _, r := range p.rows {
		if r.kind != EQ {
			nSlack++
		}
	}
	// One artificial per row at most; we add them lazily below.
	nTotal := p.n + nSlack + m

	t := &tableau{
		m:       m,
		nTotal:  nTotal,
		nStruct: p.n,
		a:       make([][]float64, m),
		b:       make([]float64, m),
		upper:   make([]float64, nTotal),
		basis:   make([]int, m),
		status:  make([]varStatus, nTotal),
		xval:    make([]float64, nTotal),
		cost:    make([]float64, nTotal),
		maxIter: 2000 + 200*(m+nTotal),
	}
	for i := range t.a {
		t.a[i] = make([]float64, nTotal)
	}
	for j := 0; j < p.n; j++ {
		if math.IsInf(p.upper[j], 1) {
			t.upper[j] = Inf
		} else {
			t.upper[j] = p.upper[j] - p.lower[j]
		}
	}
	for j := p.n; j < nTotal; j++ {
		t.upper[j] = Inf
	}

	slack := p.n
	art := p.n + nSlack
	for i, r := range p.rows {
		rhs := r.rhs
		for _, c := range r.coeffs {
			t.a[i][c.j] = c.v
			rhs -= c.v * shift[c.j] // shift x := x' + lower
		}
		switch r.kind {
		case LE:
			t.a[i][slack] = 1
			if rhs >= 0 {
				t.basis[i] = slack
				t.status[slack] = basic
			} else {
				// Negate the row so rhs >= 0, slack becomes -1; need artificial.
				negateRow(t.a[i])
				rhs = -rhs
				t.a[i][art] = 1
				t.basis[i] = art
				t.status[art] = basic
				art++
			}
			slack++
		case GE:
			t.a[i][slack] = -1
			if rhs < 0 {
				negateRow(t.a[i])
				rhs = -rhs
				// After negation the surplus has +1 coefficient: basic feasible.
				t.basis[i] = slack
				t.status[slack] = basic
			} else {
				t.a[i][art] = 1
				t.basis[i] = art
				t.status[art] = basic
				art++
			}
			slack++
		case EQ:
			if rhs < 0 {
				negateRow(t.a[i])
				rhs = -rhs
			}
			t.a[i][art] = 1
			t.basis[i] = art
			t.status[art] = basic
			art++
		}
		t.b[i] = rhs
	}
	// Trim unused artificial columns by marking them at (zero) upper bound
	// so they can never enter.
	for j := art; j < nTotal; j++ {
		t.upper[j] = 0
		t.status[j] = atLower
	}
	t.firstArt = p.n + nSlack
	t.nArt = art - t.firstArt
	return t, shift
}

func negateRow(r []float64) {
	for k := range r {
		r[k] = -r[k]
	}
}

func (t *tableau) hasArtificials() bool { return t.nArt > 0 }

// objective returns the current objective value (for the active cost row).
func (t *tableau) objective() float64 {
	z := 0.0
	for i := 0; i < t.m; i++ {
		z += t.cost[t.basis[i]] * t.b[i]
	}
	for j := 0; j < t.nTotal; j++ {
		if t.status[j] == atUpper {
			z += t.cost[j] * t.xval[j]
		}
	}
	return z
}

func (t *tableau) setPhase1Cost() {
	for j := range t.cost {
		t.cost[j] = 0
	}
	for j := t.firstArt; j < t.firstArt+t.nArt; j++ {
		t.cost[j] = 1
	}
}

func (t *tableau) setPhase2Cost(p *Problem, shift []float64) {
	for j := range t.cost {
		t.cost[j] = 0
	}
	for j := 0; j < p.n; j++ {
		t.cost[j] = p.obj[j]
	}
	// Forbid artificials from re-entering.
	for j := t.firstArt; j < t.firstArt+t.nArt; j++ {
		if t.status[j] != basic {
			t.upper[j] = 0
			t.xval[j] = 0
		}
	}
}

// driveOutArtificials pivots basic artificial variables (at value 0 after a
// successful phase 1) out of the basis where possible, so that phase 2
// starts from a clean basis. Rows whose artificial cannot be pivoted out are
// redundant and left in place with value 0.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		jb := t.basis[i]
		if jb < t.firstArt {
			continue
		}
		// Find any non-artificial column with a usable pivot in this row.
		piv := -1
		for j := 0; j < t.firstArt; j++ {
			if t.status[j] == basic {
				continue
			}
			if math.Abs(t.a[i][j]) > pivotEps {
				piv = j
				break
			}
		}
		if piv >= 0 {
			t.pivot(i, piv)
		}
	}
}

// reducedCost computes cost[j] - cost_B . B^-1 A_j for column j using the
// current tableau (which is kept in product form: a is already B^-1 A).
func (t *tableau) priceAll(d []float64) {
	// d[j] = cost[j] - sum_i cost[basis[i]] * a[i][j]
	copy(d, t.cost)
	for i := 0; i < t.m; i++ {
		cb := t.cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.nTotal; j++ {
			if ai[j] != 0 {
				d[j] -= cb * ai[j]
			}
		}
	}
}

// iterate runs simplex pivots until optimal, unbounded, or iteration limit.
func (t *tableau) iterate() Status {
	d := make([]float64, t.nTotal)
	stall := 0
	lastObj := math.Inf(1)
	for {
		if t.iter >= t.maxIter {
			return IterLimit
		}
		t.priceAll(d)

		useBland := stall > 50
		enter := -1
		best := -eps
		for j := 0; j < t.nTotal; j++ {
			if t.status[j] == basic || t.upper[j] == 0 {
				continue
			}
			var improve float64
			switch t.status[j] {
			case atLower:
				improve = d[j] // want d[j] < 0
			case atUpper:
				improve = -d[j] // want d[j] > 0
			}
			if improve < best-eps || (useBland && improve < -eps) {
				if useBland {
					enter = j
					break
				}
				best = improve
				enter = j
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Direction: entering variable moves up from lower bound or down
		// from upper bound. In the tableau, basic values change by
		// -a[i][enter] * delta (moving up) or +a[i][enter] * delta (down).
		dir := 1.0
		if t.status[enter] == atUpper {
			dir = -1.0
		}

		// Ratio test. Ties are broken toward the smallest basic variable
		// index (Bland), which combined with Bland pricing guarantees
		// termination.
		leave := -1             // row index of leaving variable
		leaveBound := atLower   // bound the leaving variable lands on
		limit := t.upper[enter] // bound flip distance (may be Inf)
		for i := 0; i < t.m; i++ {
			aie := t.a[i][enter] * dir
			if aie > pivotEps {
				// Basic variable decreases toward 0.
				ratio := t.b[i] / aie
				if ratio < -eps {
					ratio = 0
				}
				if ratio < limit-eps || (ratio < limit+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					limit = ratio
					leave = i
					leaveBound = atLower
				}
			} else if aie < -pivotEps {
				// Basic variable increases toward its upper bound.
				ub := t.upper[t.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				ratio := (ub - t.b[i]) / (-aie)
				if ratio < -eps {
					ratio = 0
				}
				if ratio < limit-eps || (ratio < limit+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					limit = ratio
					leave = i
					leaveBound = atUpper
				}
			}
		}

		if math.IsInf(limit, 1) {
			return Unbounded
		}

		t.iter++
		if leave < 0 {
			// Bound flip: entering variable runs to its other bound.
			t.boundFlip(enter, dir, limit)
		} else {
			t.stepAndPivot(enter, dir, limit, leave, leaveBound)
		}

		obj := t.objective()
		if obj < lastObj-1e-12 {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
}

// boundFlip moves nonbasic variable j across its range without a pivot.
func (t *tableau) boundFlip(j int, dir, delta float64) {
	for i := 0; i < t.m; i++ {
		t.b[i] -= t.a[i][j] * dir * delta
	}
	if t.status[j] == atLower {
		t.status[j] = atUpper
		t.xval[j] = t.upper[j]
	} else {
		t.status[j] = atLower
		t.xval[j] = 0
	}
}

// stepAndPivot advances entering variable j by delta, makes it basic in the
// leaving row, and sets the leaving variable at the indicated bound.
func (t *tableau) stepAndPivot(enter int, dir, delta float64, leave int, leaveBound varStatus) {
	// Update RHS for the move of the entering variable.
	if delta != 0 {
		for i := 0; i < t.m; i++ {
			t.b[i] -= t.a[i][enter] * dir * delta
		}
	}
	// New value of the entering variable (absolute, within shifted range).
	var entVal float64
	if t.status[enter] == atLower {
		entVal = delta
	} else {
		entVal = t.upper[enter] - delta
	}

	out := t.basis[leave]
	t.status[out] = leaveBound
	if leaveBound == atUpper {
		t.xval[out] = t.upper[out]
	} else {
		t.xval[out] = 0
	}

	t.status[enter] = basic
	t.xval[enter] = 0
	t.basis[leave] = enter
	t.b[leave] = entVal
	t.pivotMatrix(leave, enter)
}

// pivot performs a degenerate pivot making column j basic in row i. The
// basic-variable values do not change (the entering variable keeps its
// current nonbasic value), which is exactly the drive-out-artificials case
// where the leaving artificial sits at 0.
func (t *tableau) pivot(i, j int) {
	out := t.basis[i]
	t.status[out] = atLower
	t.xval[out] = 0
	entVal := t.xval[j] // 0 when atLower, upper[j] when atUpper
	t.status[j] = basic
	t.xval[j] = 0
	t.basis[i] = j
	t.b[i] = entVal
	t.pivotMatrix(i, j)
}

// pivotMatrix eliminates column j from all rows except row i and scales row
// i so that a[i][j] == 1. The b column holds basic-variable values and is
// maintained by the callers, so it is deliberately not touched here.
func (t *tableau) pivotMatrix(i, j int) {
	piv := t.a[i][j]
	ri := t.a[i]
	inv := 1.0 / piv
	for k := 0; k < t.nTotal; k++ {
		ri[k] *= inv
	}
	ri[j] = 1 // exact

	for r := 0; r < t.m; r++ {
		if r == i {
			continue
		}
		f := t.a[r][j]
		if f == 0 {
			continue
		}
		rr := t.a[r]
		for k := 0; k < t.nTotal; k++ {
			if ri[k] != 0 {
				rr[k] -= f * ri[k]
			}
		}
		rr[j] = 0 // exact
	}
}

// extract recovers the structural variable values in original coordinates.
func (t *tableau) extract(p *Problem, shift []float64) []float64 {
	x := make([]float64, p.n)
	for j := 0; j < p.n; j++ {
		switch t.status[j] {
		case atLower:
			x[j] = shift[j]
		case atUpper:
			x[j] = shift[j] + t.upper[j]
		}
	}
	for i := 0; i < t.m; i++ {
		jb := t.basis[i]
		if jb < p.n {
			v := t.b[i]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[jb] = shift[jb] + v
		}
	}
	return x
}

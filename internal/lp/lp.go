// Package lp implements a bounded-variable simplex solver for linear
// programs, built around a reusable, warm-startable Solver object.
//
// The package has two layers:
//
//   - Problem is the model: sparse constraint rows (AddRow takes a
//     map[int]float64 and only nonzero coefficients are stored), a linear
//     minimization objective, and per-variable bounds.
//   - Solver is the engine: it factorizes the model once, owns a working
//     copy of the variable bounds (SetVarBounds), and re-solves after bound
//     changes by warm starting from the previous basis — a dual-simplex
//     repair followed by a primal cleanup — falling back to a from-scratch
//     two-phase primal solve only when the warm start stalls. Basis
//     snapshots can be carried across Solvers with Basis/ResolveFrom.
//
// This split exists for the branch-and-bound layer in internal/ilp: a B&B
// node only tightens variable bounds, so each node costs a handful of
// SetVarBounds calls plus a few dual pivots instead of a problem copy and a
// full two-phase solve. The one-shot Solve function remains for callers
// without bound churn.
//
// The solver targets the moderately sized models produced by the temporal
// partitioning ILP of internal/tempart (a few hundred variables and rows).
// It supports minimization objectives, <=, >= and == rows, per-variable
// lower and upper bounds (so 0-1 variables fixed by branch-and-bound do not
// require extra constraint rows), and infeasibility and unboundedness
// detection. Degeneracy is handled by switching from Dantzig pricing to
// Bland's rule after a stall is detected, which guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// RowKind classifies a linear constraint row.
type RowKind int

const (
	// LE is a "<= rhs" row.
	LE RowKind = iota
	// GE is a ">= rhs" row.
	GE
	// EQ is an "== rhs" row.
	EQ
)

func (k RowKind) String() string {
	switch k {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("RowKind(%d)", int(k))
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no feasible point.
	Infeasible
	// Unbounded means the objective is unbounded below on the feasible set.
	Unbounded
	// IterLimit means the iteration safety limit was exceeded.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Inf is the bound value representing "no bound".
var Inf = math.Inf(1)

const (
	eps      = 1e-9 // general numeric tolerance
	pivotEps = 1e-7 // minimum acceptable pivot magnitude
)

// row is one stored constraint.
type row struct {
	kind   RowKind
	coeffs []coeff
	rhs    float64
}

type coeff struct {
	j int
	v float64
}

// Problem is a linear program in the form
//
//	minimize    c . x
//	subject to  A x (<=|==|>=) b
//	            lower <= x <= upper
//
// The zero value is not usable; construct with NewProblem.
type Problem struct {
	n     int
	obj   []float64
	lower []float64
	upper []float64
	rows  []row
	// arena is the shared backing storage for coefficients of rows added
	// via AddRowCols: each such row's coeffs slice is a view into it, so a
	// model built row-by-row costs one arena allocation instead of one per
	// row. Growing the arena reallocates its backing but leaves existing
	// views valid (they keep the old array alive); rows never append
	// through their views.
	arena []coeff
}

// NewProblem returns a problem with n structural variables, zero objective,
// and default bounds [0, +Inf) for every variable.
func NewProblem(n int) *Problem {
	p := &Problem{
		n:     n,
		obj:   make([]float64, n),
		lower: make([]float64, n),
		upper: make([]float64, n),
	}
	for j := range p.upper {
		p.upper[j] = Inf
	}
	return p
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.n }

// AddVar appends a new structural variable with zero objective and default
// bounds [0, +Inf), returning its index. Variables may only be added before
// rows that reference them, but adding variables after unrelated rows is
// safe.
func (p *Problem) AddVar() int {
	p.obj = append(p.obj, 0)
	p.lower = append(p.lower, 0)
	p.upper = append(p.upper, Inf)
	p.n++
	return p.n - 1
}

// EvalRow computes the left-hand-side value of row i at point x.
func (p *Problem) EvalRow(i int, x []float64) float64 {
	lhs := 0.0
	for _, c := range p.rows[i].coeffs {
		lhs += c.v * x[c.j]
	}
	return lhs
}

// RowInfo returns the kind and right-hand side of row i.
func (p *Problem) RowInfo(i int) (RowKind, float64) {
	return p.rows[i].kind, p.rows[i].rhs
}

// RowsSatisfied reports whether x satisfies every constraint row within tol.
// Variable bounds are not checked here.
func (p *Problem) RowsSatisfied(x []float64, tol float64) bool {
	for i, r := range p.rows {
		lhs := p.EvalRow(i, x)
		switch r.kind {
		case LE:
			if lhs > r.rhs+tol {
				return false
			}
		case GE:
			if lhs < r.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return false
			}
		}
	}
	return true
}

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObj sets the objective coefficient of variable j.
func (p *Problem) SetObj(j int, c float64) {
	p.obj[j] = c
}

// Obj returns the objective coefficient of variable j.
func (p *Problem) Obj(j int) float64 { return p.obj[j] }

// SetBounds sets the lower and upper bound of variable j.
// Use lp.Inf (or math.Inf(1)) for an unbounded upper bound.
func (p *Problem) SetBounds(j int, lo, hi float64) {
	p.lower[j] = lo
	p.upper[j] = hi
}

// Bounds returns the bounds of variable j.
func (p *Problem) Bounds(j int) (lo, hi float64) {
	return p.lower[j], p.upper[j]
}

// AddRow appends a constraint row. coeffs maps variable index to
// coefficient; zero-valued entries are dropped. It returns the row index.
func (p *Problem) AddRow(kind RowKind, coeffs map[int]float64, rhs float64) int {
	r := row{kind: kind, rhs: rhs}
	for j, v := range coeffs {
		if j < 0 || j >= p.n {
			panic(fmt.Sprintf("lp: AddRow: variable index %d out of range [0,%d)", j, p.n))
		}
		if v != 0 {
			r.coeffs = append(r.coeffs, coeff{j, v})
		}
	}
	p.rows = append(p.rows, r)
	return len(p.rows) - 1
}

// Reserve preallocates capacity for about nRows more rows carrying nCoeffs
// total nonzero coefficients (added via AddRowCols). Purely an optimization:
// a model builder that knows its size gets single-allocation row storage.
func (p *Problem) Reserve(nRows, nCoeffs int) {
	if need := len(p.rows) + nRows; need > cap(p.rows) {
		rows := make([]row, len(p.rows), need)
		copy(rows, p.rows)
		p.rows = rows
	}
	if need := len(p.arena) + nCoeffs; need > cap(p.arena) {
		arena := make([]coeff, len(p.arena), need)
		copy(arena, p.arena)
		p.arena = arena
	}
}

// AddRowCols appends a constraint row given parallel column-index and
// coefficient slices (the allocation-light alternative to AddRow's map:
// coefficients land in a shared arena). Zero coefficients are dropped and
// duplicate column indices are merged by summation. The input slices are
// not retained. It returns the row index.
func (p *Problem) AddRowCols(kind RowKind, cols []int, vals []float64, rhs float64) int {
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("lp: AddRowCols: %d cols but %d vals", len(cols), len(vals)))
	}
	start := len(p.arena)
	sorted := true
	for k, j := range cols {
		if j < 0 || j >= p.n {
			panic(fmt.Sprintf("lp: AddRowCols: variable index %d out of range [0,%d)", j, p.n))
		}
		if v := vals[k]; v != 0 {
			if n := len(p.arena); sorted && n > start && p.arena[n-1].j >= j {
				sorted = false
			}
			p.arena = append(p.arena, coeff{j, v})
		}
	}
	seg := p.arena[start:]
	if !sorted {
		// Duplicate merging needs column order; cut rows are short, so an
		// in-place insertion sort beats any allocating alternative.
		for i := 1; i < len(seg); i++ {
			c := seg[i]
			k := i - 1
			for k >= 0 && seg[k].j > c.j {
				seg[k+1] = seg[k]
				k--
			}
			seg[k+1] = c
		}
	}
	// Merge duplicates in place (the solver's column loader overwrites
	// rather than sums repeated entries, so rows must be duplicate-free).
	w := 0
	for i := 0; i < len(seg); {
		c := seg[i]
		for i++; i < len(seg) && seg[i].j == c.j; i++ {
			c.v += seg[i].v
		}
		seg[w] = c
		w++
	}
	p.arena = p.arena[:start+w]
	p.rows = append(p.rows, row{kind: kind, rhs: rhs, coeffs: p.arena[start : start+w]})
	return len(p.rows) - 1
}

// AddDenseRow appends a constraint row given a dense coefficient vector.
func (p *Problem) AddDenseRow(kind RowKind, coeffs []float64, rhs float64) int {
	if len(coeffs) != p.n {
		panic(fmt.Sprintf("lp: AddDenseRow: got %d coefficients, want %d", len(coeffs), p.n))
	}
	r := row{kind: kind, rhs: rhs}
	for j, v := range coeffs {
		if v != 0 {
			r.coeffs = append(r.coeffs, coeff{j, v})
		}
	}
	p.rows = append(p.rows, r)
	return len(p.rows) - 1
}

// Clone returns a copy of the problem with independent objective and
// bounds; row data is shared structurally (rows are immutable once added).
// The branch-and-bound layer no longer copies problems per node — it edits
// bounds on a single Solver — so Clone exists for callers that want to
// derive model variants (and for reference solves in tests).
func (p *Problem) Clone() *Problem {
	q := &Problem{
		n:     p.n,
		obj:   append([]float64(nil), p.obj...),
		lower: append([]float64(nil), p.lower...),
		upper: append([]float64(nil), p.upper...),
		rows:  p.rows, // rows are immutable once added
	}
	return q
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X holds the value of each structural variable (valid when Status is
	// Optimal).
	X []float64
	// Obj is the objective value c.X (valid when Status is Optimal).
	Obj float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int
}

// variable status markers for nonbasic variables.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
)

// ErrBadBounds is returned when some variable has lower bound > upper bound.
var ErrBadBounds = errors.New("lp: variable lower bound exceeds upper bound")

// Solve minimizes the problem and returns the solution. The error is non-nil
// only for malformed inputs (e.g. inverted bounds); infeasibility and
// unboundedness are reported through Solution.Status.
//
// Solve is the one-shot convenience API: it builds a fresh Solver, solves
// cold, and discards the solver state. Callers that re-solve after bound
// changes (branch and bound) should hold a Solver and use its warm-start
// path instead.
func Solve(p *Problem) (*Solution, error) {
	return NewSolver(p).Solve()
}

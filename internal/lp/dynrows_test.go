package lp

import (
	"math"
	"math/rand"
	"testing"
)

// freshWithRows builds a fresh problem equal to p plus the given cut rows
// and solves it cold — the reference answer for dynamic-row tests.
func freshWithRows(p *Problem, cuts []CutRow) *Solution {
	q := NewProblem(p.n)
	copy(q.obj, p.obj)
	copy(q.lower, p.lower)
	copy(q.upper, p.upper)
	q.rows = append(q.rows, p.rows...)
	for _, c := range cuts {
		m := map[int]float64{}
		for k, j := range c.Cols {
			m[j] += c.Vals[k]
		}
		q.AddRow(c.Kind, m, c.RHS)
	}
	sol, err := Solve(q)
	if err != nil {
		panic(err)
	}
	return sol
}

func TestAddRowsWarmMatchesCold(t *testing.T) {
	// max x+y (min -x-y) s.t. x+2y <= 4, 3x+y <= 6, x,y in [0,3].
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 3)
	p.AddRow(LE, map[int]float64{0: 1, 1: 2}, 4)
	p.AddRow(LE, map[int]float64{0: 3, 1: 1}, 6)

	s := NewSolver(p)
	first, err := s.Solve()
	if err != nil || first.Status != Optimal {
		t.Fatalf("base solve: %v %v", first, err)
	}

	cut := CutRow{Kind: LE, Cols: []int{0, 1}, Vals: []float64{1, 1}, RHS: 2}
	if err := s.AddRows([]CutRow{cut}); err != nil {
		t.Fatal(err)
	}
	if !s.Warm() {
		t.Fatal("AddRows dropped the warm basis")
	}
	got, err := s.Solve()
	if err != nil || got.Status != Optimal {
		t.Fatalf("post-cut solve: %v %v", got, err)
	}
	want := freshWithRows(p, []CutRow{cut})
	if math.Abs(got.Obj-want.Obj) > 1e-7 {
		t.Fatalf("obj %g after AddRows, fresh solve gives %g", got.Obj, want.Obj)
	}
	if s.Stats.ColdSolves != 1 {
		t.Fatalf("post-cut solve went cold (%+v), want dual-simplex warm re-entry", s.Stats)
	}
	if s.Stats.RowsAdded != 1 || s.Rows() != 3 || s.AddedRows() != 1 || s.BaseRows() != 2 {
		t.Fatalf("row accounting: stats=%+v rows=%d added=%d base=%d", s.Stats, s.Rows(), s.AddedRows(), s.BaseRows())
	}
}

func TestAddRowsKinds(t *testing.T) {
	// min x+y s.t. x+y >= 1; then force x = y (EQ) and x >= 0.4 (GE).
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 0, 10)
	p.AddRow(GE, map[int]float64{0: 1, 1: 1}, 1)
	s := NewSolver(p)
	if sol, err := s.Solve(); err != nil || sol.Status != Optimal {
		t.Fatalf("base: %v %v", sol, err)
	}
	cuts := []CutRow{
		{Kind: EQ, Cols: []int{0, 1}, Vals: []float64{1, -1}, RHS: 0},
		{Kind: GE, Cols: []int{0}, Vals: []float64{1}, RHS: 0.4},
	}
	if err := s.AddRows(cuts); err != nil {
		t.Fatal(err)
	}
	got, err := s.Solve()
	if err != nil || got.Status != Optimal {
		t.Fatalf("post: %v %v", got, err)
	}
	want := freshWithRows(p, cuts)
	if math.Abs(got.Obj-want.Obj) > 1e-7 {
		t.Fatalf("obj %g, want %g", got.Obj, want.Obj)
	}
	if math.Abs(got.X[0]-got.X[1]) > 1e-7 || got.X[0] < 0.4-1e-7 {
		t.Fatalf("x=%v violates added rows", got.X)
	}
}

func TestAddRowsInfeasibleCut(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.SetBounds(0, 0, 1)
	p.AddRow(LE, map[int]float64{0: 1}, 1)
	s := NewSolver(p)
	if sol, _ := s.Solve(); sol.Status != Optimal {
		t.Fatalf("base status %v", sol.Status)
	}
	if err := s.AddRows([]CutRow{{Kind: GE, Cols: []int{0}, Vals: []float64{1}, RHS: 2}}); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want Infeasible (x<=1 vs x>=2)", sol.Status)
	}
}

func TestDropAddedRowsRestoresBase(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.SetBounds(0, 0, 2)
	p.SetBounds(1, 0, 2)
	p.AddRow(LE, map[int]float64{0: 1, 1: 1}, 3)
	s := NewSolver(p)
	base, err := s.Solve()
	if err != nil || base.Status != Optimal {
		t.Fatalf("base: %v %v", base, err)
	}
	if err := s.AddRows([]CutRow{{Kind: LE, Cols: []int{0, 1}, Vals: []float64{1, 1}, RHS: 1}}); err != nil {
		t.Fatal(err)
	}
	cutSol, err := s.Solve()
	if err != nil || cutSol.Status != Optimal || math.Abs(cutSol.Obj-(-1)) > 1e-7 {
		t.Fatalf("cut solve: %v %v", cutSol, err)
	}
	s.DropAddedRows()
	if s.AddedRows() != 0 || s.Rows() != 1 {
		t.Fatalf("rows after drop: %d/%d", s.AddedRows(), s.Rows())
	}
	again, err := s.Solve()
	if err != nil || again.Status != Optimal {
		t.Fatalf("post-drop: %v %v", again, err)
	}
	if math.Abs(again.Obj-base.Obj) > 1e-7 {
		t.Fatalf("post-drop obj %g, want base %g", again.Obj, base.Obj)
	}
}

func TestAddRowsBeforeFirstSolve(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetBounds(0, 0, 5)
	p.SetBounds(1, 0, 5)
	p.AddRow(LE, map[int]float64{0: 1, 1: 1}, 6)
	s := NewSolver(p)
	cut := CutRow{Kind: LE, Cols: []int{0}, Vals: []float64{1}, RHS: 2}
	if err := s.AddRows([]CutRow{cut}); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", sol, err)
	}
	if math.Abs(sol.Obj-(-2)) > 1e-7 {
		t.Fatalf("obj %g, want -2", sol.Obj)
	}
}

func TestAddRowsValidation(t *testing.T) {
	p := NewProblem(2)
	p.AddRow(LE, map[int]float64{0: 1}, 1)
	s := NewSolver(p)
	if err := s.AddRows([]CutRow{{Kind: LE, Cols: []int{5}, Vals: []float64{1}, RHS: 1}}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := s.AddRows([]CutRow{{Kind: LE, Cols: []int{0}, Vals: []float64{math.NaN()}, RHS: 1}}); err == nil {
		t.Fatal("NaN coefficient accepted")
	}
	if err := s.AddRows([]CutRow{{Kind: LE, Cols: []int{0, 1}, Vals: []float64{1}, RHS: 1}}); err == nil {
		t.Fatal("mismatched cols/vals accepted")
	}
	if s.Rows() != 1 || s.AddedRows() != 0 {
		t.Fatalf("failed AddRows mutated the solver: rows=%d added=%d", s.Rows(), s.AddedRows())
	}
}

func TestAddRowsMergesDuplicateCols(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, -1)
	p.SetBounds(0, 0, 10)
	p.AddRow(LE, map[int]float64{0: 1}, 10)
	s := NewSolver(p)
	if sol, _ := s.Solve(); sol.Status != Optimal {
		t.Fatal("base")
	}
	// 0.5x + 0.5x <= 3  =>  x <= 3.
	if err := s.AddRows([]CutRow{{Kind: LE, Cols: []int{0, 0}, Vals: []float64{0.5, 0.5}, RHS: 3}}); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil || sol.Status != Optimal || math.Abs(sol.Obj-(-3)) > 1e-7 {
		t.Fatalf("%v %v, want obj -3", sol, err)
	}
}

func TestAddRowsWithRedundantRowBasis(t *testing.T) {
	// A duplicated EQ row leaves a basic artificial in the optimal basis
	// (redundant row); AddRows must remap the shifted artificial block.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 2)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 0, 10)
	p.AddRow(EQ, map[int]float64{0: 1, 1: 1}, 4)
	p.AddRow(EQ, map[int]float64{0: 1, 1: 1}, 4) // redundant copy
	s := NewSolver(p)
	base, err := s.Solve()
	if err != nil || base.Status != Optimal {
		t.Fatalf("base: %v %v", base, err)
	}
	cut := CutRow{Kind: GE, Cols: []int{1}, Vals: []float64{1}, RHS: 1}
	if err := s.AddRows([]CutRow{cut}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Solve()
	if err != nil || got.Status != Optimal {
		t.Fatalf("post: %v %v", got, err)
	}
	want := freshWithRows(p, []CutRow{cut})
	if math.Abs(got.Obj-want.Obj) > 1e-7 {
		t.Fatalf("obj %g, want %g", got.Obj, want.Obj)
	}
}

// TestAddRowsRandomizedEquivalence cross-checks the dynamic-row path
// against fresh cold solves on random LPs with random appended rows, in
// several increments so cuts stack on top of cuts.
func TestAddRowsRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		mr := 1 + rng.Intn(4)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObj(j, float64(rng.Intn(11)-5))
			p.SetBounds(j, 0, float64(1+rng.Intn(8)))
		}
		for i := 0; i < mr; i++ {
			row := map[int]float64{}
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					row[j] = float64(rng.Intn(7) - 3)
				}
			}
			if len(row) == 0 {
				row[rng.Intn(n)] = 1
			}
			p.AddRow(LE, row, float64(rng.Intn(12)))
		}
		s := NewSolver(p)
		if _, err := s.Solve(); err != nil {
			t.Fatalf("trial %d base: %v", trial, err)
		}
		var cuts []CutRow
		for inc := 0; inc < 3; inc++ {
			batch := 1 + rng.Intn(2)
			add := make([]CutRow, 0, batch)
			for b := 0; b < batch; b++ {
				c := CutRow{Kind: LE, RHS: float64(rng.Intn(10) + 1)}
				if rng.Intn(4) == 0 {
					c.Kind = GE
					c.RHS = float64(rng.Intn(3))
				}
				for j := 0; j < n; j++ {
					if rng.Float64() < 0.5 {
						c.Cols = append(c.Cols, j)
						c.Vals = append(c.Vals, float64(rng.Intn(5)-1))
					}
				}
				if len(c.Cols) == 0 {
					c.Cols = []int{rng.Intn(n)}
					c.Vals = []float64{1}
				}
				add = append(add, c)
			}
			if err := s.AddRows(add); err != nil {
				t.Fatalf("trial %d inc %d: %v", trial, inc, err)
			}
			cuts = append(cuts, add...)
			got, err := s.Solve()
			if err != nil {
				t.Fatalf("trial %d inc %d solve: %v", trial, inc, err)
			}
			want := freshWithRows(p, cuts)
			if got.Status != want.Status {
				t.Fatalf("trial %d inc %d: status %v, fresh %v", trial, inc, got.Status, want.Status)
			}
			if got.Status == Optimal && math.Abs(got.Obj-want.Obj) > 1e-6 {
				t.Fatalf("trial %d inc %d: obj %g, fresh %g", trial, inc, got.Obj, want.Obj)
			}
		}
	}
}

package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// conflictProblem builds a miniature bin-assignment ILP shaped like the
// tempart models: binary y[i][b] with uniqueness rows Σ_b y[i][b] = 1 and
// capacity rows Σ_i w[i]·y[i][b] ≤ cap, minimizing Σ cost[b]·y[i][b]
// (placing items in later bins costs more, so packings are non-trivial).
// Near-capacity weights make infeasible subtrees common — the regime
// conflict learning exists for.
type conflictProblem struct {
	items, bins int
	w           []int
	cap         int
	prob        *Problem
	yv          func(i, b int) int
}

func newConflictProblem(rng *rand.Rand, items, bins, cap int) *conflictProblem {
	ap := &conflictProblem{items: items, bins: bins, cap: cap}
	ap.w = make([]int, items)
	for i := range ap.w {
		ap.w[i] = cap/3 + 1 + rng.Intn(cap/4)
	}
	n := items * bins
	p := lp.NewProblem(n)
	ap.yv = func(i, b int) int { return i*bins + b }
	ints := make([]int, 0, n)
	var sos [][]int
	for i := 0; i < items; i++ {
		grp := make([]int, 0, bins)
		row := map[int]float64{}
		for b := 0; b < bins; b++ {
			j := ap.yv(i, b)
			p.SetBounds(j, 0, 1)
			p.SetObj(j, float64(1+b))
			ints = append(ints, j)
			grp = append(grp, j)
			row[j] = 1
		}
		p.AddRow(lp.EQ, row, 1)
		sos = append(sos, grp)
	}
	for b := 0; b < bins; b++ {
		row := map[int]float64{}
		for i := 0; i < items; i++ {
			row[ap.yv(i, b)] = float64(ap.w[i])
		}
		p.AddRow(lp.LE, row, float64(cap))
	}
	ap.prob = &Problem{LP: p, Integers: ints, SOS1: sos}
	return ap
}

// nodeBound is a tempart-style combinatorial screen: certain infeasibility
// when a bin's fixed items overflow or an item has no bin left; otherwise
// the trivial bound.
func (ap *conflictProblem) nodeBound(bounds func(j int) (lo, hi float64)) (float64, bool) {
	for b := 0; b < ap.bins; b++ {
		used := 0
		for i := 0; i < ap.items; i++ {
			if lo, _ := bounds(ap.yv(i, b)); lo > 0.5 {
				used += ap.w[i]
			}
		}
		if used > ap.cap {
			return 0, false
		}
	}
	for i := 0; i < ap.items; i++ {
		any := false
		for b := 0; b < ap.bins; b++ {
			if _, hi := bounds(ap.yv(i, b)); hi > 0.5 {
				any = true
				break
			}
		}
		if !any {
			return 0, false
		}
	}
	return 0, true
}

// forEachFeasiblePacking enumerates every integral feasible point.
func (ap *conflictProblem) forEachFeasiblePacking(fn func(x []float64)) {
	assign := make([]int, ap.items)
	used := make([]int, ap.bins)
	var rec func(i int)
	rec = func(i int) {
		if i == ap.items {
			x := make([]float64, ap.items*ap.bins)
			for it, b := range assign {
				x[ap.yv(it, b)] = 1
			}
			fn(x)
			return
		}
		for b := 0; b < ap.bins; b++ {
			if used[b]+ap.w[i] > ap.cap {
				continue
			}
			used[b] += ap.w[i]
			assign[i] = b
			rec(i + 1)
			used[b] -= ap.w[i]
		}
	}
	rec(0)
}

// TestConflictCutsNeverExcludeFeasibleSolutions is the no-good validity
// property test: every cut the search pools — the learned conflicts plus
// anything a separator admitted — must be satisfied by every integral
// feasible solution, verified by brute force on random near-capacity
// assignment instances. A violation means a no-good overclaimed and the
// search could prune the true optimum.
func TestConflictCutsNeverExcludeFeasibleSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sawConflicts := false
	for trial := 0; trial < 30; trial++ {
		ap := newConflictProblem(rng, 4+rng.Intn(3), 2+rng.Intn(2), 100)
		var pooled []lp.CutRow
		opt := Options{
			Separate:        func(pt *SeparationPoint) []Cut { return nil },
			NodeBound:       ap.nodeBound,
			testCapturePool: func(rows []lp.CutRow) { pooled = rows },
		}
		sol, err := Solve(ap.prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		if sol.ConflictCuts > 0 {
			sawConflicts = true
		}
		plain, err := Solve(ap.prob, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Status != sol.Status {
			t.Fatalf("trial %d: conflict-learning search status %v, plain %v", trial, sol.Status, plain.Status)
		}
		if plain.Status == Optimal && math.Abs(plain.Obj-sol.Obj) > 1e-6 {
			t.Fatalf("trial %d: conflict-learning optimum %g, plain %g", trial, sol.Obj, plain.Obj)
		}
		if len(pooled) == 0 {
			continue
		}
		feasibles := 0
		ap.forEachFeasiblePacking(func(x []float64) {
			feasibles++
			for ci := range pooled {
				if !pooled[ci].Satisfied(x, 1e-6) {
					t.Fatalf("trial %d: pooled cut %+v violated by feasible assignment %v",
						trial, pooled[ci], x)
				}
			}
		})
		if plain.Status == Infeasible && feasibles > 0 {
			t.Fatalf("trial %d: search claims infeasible but brute force found %d packings", trial, feasibles)
		}
	}
	if !sawConflicts {
		t.Fatal("no trial learned a conflict cut; the property test exercised nothing")
	}
}

// TestConflictLearningWorkerEquivalence pins the 1-vs-N-worker contract
// with conflict learning (and the NodeBound that feeds it) active: the
// shared pool may hand workers each other's no-goods in any order, but the
// status and optimum must match the sequential search. Runs under -race in
// CI, which is the concurrency coverage for the learning path.
func TestConflictLearningWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		ap := newConflictProblem(rng, 5+rng.Intn(3), 2+rng.Intn(2), 90)
		base := Options{
			Separate:  func(pt *SeparationPoint) []Cut { return nil },
			NodeBound: ap.nodeBound,
		}
		seq, err := Solve(ap.prob, base)
		if err != nil {
			t.Fatal(err)
		}
		parOpt := base
		parOpt.Workers = 4
		par, err := Solve(ap.prob, parOpt)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Status != par.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, seq.Status, par.Status)
		}
		if seq.Status == Optimal && math.Abs(seq.Obj-par.Obj) > 1e-6 {
			t.Fatalf("trial %d: sequential obj %g, parallel obj %g", trial, seq.Obj, par.Obj)
		}
	}
}

// TestMinConflictDepthGate: raising MinConflictDepth above the tree depth
// disables learning entirely without changing the answer.
func TestMinConflictDepthGate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ap := newConflictProblem(rng, 6, 3, 90)
	on, err := Solve(ap.prob, Options{
		Separate:  func(pt *SeparationPoint) []Cut { return nil },
		NodeBound: ap.nodeBound,
	})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Solve(ap.prob, Options{
		Separate:         func(pt *SeparationPoint) []Cut { return nil },
		NodeBound:        ap.nodeBound,
		MinConflictDepth: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if off.ConflictCuts != 0 {
		t.Errorf("MinConflictDepth gate ignored: %d conflicts learned", off.ConflictCuts)
	}
	if on.Status != off.Status || (on.Status == Optimal && math.Abs(on.Obj-off.Obj) > 1e-6) {
		t.Errorf("gating conflict learning changed the answer: %v/%g vs %v/%g",
			on.Status, on.Obj, off.Status, off.Obj)
	}
}

package ilp

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"repro/internal/lp"
)

// This file is the cutting-plane side of the branch-and-bound solver: the
// Cut type returned by Options.Separate, and the shared cut pool that
// deduplicates, ages and distributes cuts across search workers.
//
// Validity contract: a Global cut must be satisfied by EVERY integral
// feasible solution of the problem; a non-global (node-local) cut must be
// satisfied by every integral feasible solution inside the emitting node's
// bound box. Cuts are allowed — encouraged — to cut off fractional LP
// points; that is their job. A separator that violates the contract makes
// the search wrongly prune subtrees (like an overclaiming NodeBound), but
// it can never produce an infeasible incumbent: candidate incumbents are
// verified against the original Problem rows only, never against cuts.

// Cut is one violated valid inequality produced by an Options.Separate
// callback.
type Cut struct {
	lp.CutRow
	// Global marks the cut valid for the whole problem. Global cuts enter
	// the shared pool and reach every search worker; non-global cuts apply
	// to the emitting node and are inherited by its descendants only.
	Global bool
	// Name tags the originating separator (logging only).
	Name string
}

// cutViolationTol is the minimum violation for a returned cut to be kept:
// cuts the current point (nearly) satisfies would not move the LP.
const cutViolationTol = 1e-6

// cutTightTol decides whether an applied cut is binding at a node optimum,
// which is what feeds the pool's activity aging.
const cutTightTol = 1e-7

// poolCut is one active cut in the pool.
type poolCut struct {
	row      lp.CutRow
	hash     uint64
	activity float64 // tight-at-optimum count since admission
}

// cutPool is the shared store of global cuts. Workers apply its cuts as a
// monotone prefix (fetch), so all solvers agree on row order; when the pool
// exceeds its bound it compacts to the most active half and bumps its
// generation, telling workers to drop and re-apply.
type cutPool struct {
	mu    sync.Mutex
	max   int
	gen   int
	cuts  []poolCut
	index map[uint64]int // normalized row hash -> index in cuts
}

func newCutPool(max int) *cutPool {
	if max <= 0 {
		max = 512
	}
	return &cutPool{max: max, index: make(map[uint64]int)}
}

// add admits a cut unless an equivalent row (same normalized hash) is
// already pooled. It returns whether the cut was admitted. A full pool
// compacts BEFORE the append, so the freshly separated cut — which is
// violated somewhere right now — always survives its own admission
// instead of being evicted as the least-active entry.
func (cp *cutPool) add(row lp.CutRow) bool {
	h := normalizedRowHash(row)
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, dup := cp.index[h]; dup {
		return false
	}
	if len(cp.cuts) >= cp.max {
		cp.compactLocked()
	}
	cp.index[h] = len(cp.cuts)
	cp.cuts = append(cp.cuts, poolCut{row: row, hash: h})
	return true
}

// fetch returns the active cuts beyond position from, plus the current
// generation and total count. A generation change means the caller's
// applied prefix is stale: it must drop its added rows and re-fetch from 0.
func (cp *cutPool) fetch(from, gen int) (rows []lp.CutRow, hashes []uint64, newGen, total int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if gen != cp.gen {
		return nil, nil, cp.gen, len(cp.cuts)
	}
	if from > len(cp.cuts) {
		from = len(cp.cuts)
	}
	for i := from; i < len(cp.cuts); i++ {
		rows = append(rows, cp.cuts[i].row)
		hashes = append(hashes, cp.cuts[i].hash)
	}
	return rows, hashes, cp.gen, len(cp.cuts)
}

// touch credits the cuts (by hash) that were binding at a node optimum.
func (cp *cutPool) touch(tight []uint64) {
	if len(tight) == 0 {
		return
	}
	cp.mu.Lock()
	for _, h := range tight {
		if i, ok := cp.index[h]; ok {
			cp.cuts[i].activity++
		}
	}
	cp.mu.Unlock()
}

// size reports the current pool population (tests).
func (cp *cutPool) size() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.cuts)
}

// snapshot copies the active cut rows (validity tests).
func (cp *cutPool) snapshot() []lp.CutRow {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	rows := make([]lp.CutRow, len(cp.cuts))
	for i := range cp.cuts {
		rows[i] = cp.cuts[i].row
	}
	return rows
}

// compactLocked evicts the least active half of the pool and bumps the
// generation. Hashes of evicted cuts leave the index, so a separator that
// finds the same violation again may re-admit the cut.
func (cp *cutPool) compactLocked() {
	keep := cp.max / 2
	if keep < 1 {
		keep = 1
	}
	sort.SliceStable(cp.cuts, func(a, b int) bool {
		return cp.cuts[a].activity > cp.cuts[b].activity
	})
	cp.cuts = cp.cuts[:keep]
	cp.index = make(map[uint64]int, keep)
	for i := range cp.cuts {
		cp.cuts[i].activity = 0 // fresh epoch: earn the slot again
		cp.index[cp.cuts[i].hash] = i
	}
	cp.gen++
}

// normalizedRowHash maps equivalent cut rows to one hash: coefficients are
// sorted by column and merged, GE rows are negated into LE form, and the
// whole row is scaled so the largest |coefficient| is 1 before the rounded
// values are hashed. Scaled duplicates (2x+2y <= 2 vs x+y <= 1) and
// reordered duplicates therefore collide, which is what the pool dedup
// wants.
func normalizedRowHash(r lp.CutRow) uint64 {
	type pair struct {
		j int
		v float64
	}
	ps := make([]pair, 0, len(r.Cols))
	for k, j := range r.Cols {
		ps = append(ps, pair{j, r.Vals[k]})
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].j < ps[b].j })
	merged := ps[:0]
	for _, p := range ps {
		if n := len(merged); n > 0 && merged[n-1].j == p.j {
			merged[n-1].v += p.v
			continue
		}
		merged = append(merged, p)
	}
	sign := 1.0
	kind := r.Kind
	if kind == lp.GE {
		sign, kind = -1, lp.LE
	}
	maxAbs := 0.0
	for _, p := range merged {
		if a := math.Abs(p.v); a > maxAbs {
			maxAbs = a
		}
	}
	scale := sign
	if maxAbs > 0 {
		scale = sign / maxAbs
	}
	h := fnv.New64a()
	var buf [8]byte
	wu := func(u uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(uint64(int64(math.Round(v * 1e9)))) }
	wu(uint64(kind))
	for _, p := range merged {
		wu(uint64(p.j))
		wf(p.v * scale)
	}
	wf(r.RHS * scale)
	return h.Sum64()
}

// validCut screens a separator-returned cut before it may touch a solver.
func validCut(nVars int, c *Cut) bool {
	if len(c.Cols) != len(c.Vals) || len(c.Cols) == 0 {
		return false
	}
	if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
		return false
	}
	for k, j := range c.Cols {
		if j < 0 || j >= nVars {
			return false
		}
		if v := c.Vals[k]; math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

package ilp

import (
	"repro/internal/lp"
)

// This file is the conflict-learning side of the branch-and-bound solver:
// when a subtree is fathomed *infeasible* — its bound box is empty, the
// caller's combinatorial NodeBound proves no feasible point exists in it,
// or its LP relaxation is infeasible — the box is a certificate that no
// integral feasible solution matches the node's fixed 0-1 assignments. The
// certificate is encoded as a no-good cut
//
//	Σ_{j∈F1} y_j − Σ_{j∈F0} y_j ≤ |F1| − 1
//
// over the fixes F1 = {j fixed to 1}, F0 = {j fixed to 0}: any point
// matching every fix would land in the proven-empty box, so at least one
// fix must be violated. The cut is globally valid (it is derived from the
// root bounds plus the fixes alone, never from the incumbent) and enters
// the shared cut pool, where deduplication, activity aging and compaction
// already exist — so a worker that proves one packing arrangement
// impossible spares every other worker the symmetric re-proof.
//
// Only infeasibility fathoming learns: a node pruned because its bound
// cannot beat the incumbent may still contain feasible (just not better)
// points, and a no-good from it would wrongly cut them off.

// maxNoGoodSize caps the fix count of an emitted no-good: a conflict over
// a long fix path constrains almost nothing and only burns pool slots.
const maxNoGoodSize = 24

// maxMinimizeFixes bounds how large a fix set the greedy-deletion
// minimizer will even attempt: each deletion trial is a NodeBound probe,
// so a very deep fathom would pay quadratic work with little hope of
// shrinking below maxNoGoodSize anyway.
const maxMinimizeFixes = 4 * maxNoGoodSize

// minConflictDepth resolves the learning depth gate: nodes shallower than
// this never emit conflicts. The root (depth 0) is always excluded — a
// root infeasibility has no fixes to learn from.
func (o *Options) minConflictDepth() int {
	if o.MinConflictDepth > 1 {
		return o.MinConflictDepth
	}
	return 1
}

// conflictFixes reduces a node's fix list to its 0-1 conflict set. It
// returns ok=false when the box is not exactly representable as binary
// fixes (a fix on a continuous variable, a non-0/1 bound, or a
// contradictory pair) — learning from such a node could overclaim.
// Repeated fixes of one variable are merged (they intersect to the same
// 0/1 value or the box is contradictory).
func (w *searcher) conflictFixes(fixes []fix) (f1, f0 []int, ok bool) {
	val := make(map[int]float64, len(fixes))
	for _, f := range fixes {
		if !w.isInt[f.j] || w.rootLo[f.j] != 0 || w.rootHi[f.j] != 1 {
			return nil, nil, false
		}
		var v float64
		switch {
		case f.lo >= 1-intTol: // fixed to 1
			v = 1
		case f.hi <= intTol: // fixed to 0
			v = 0
		default:
			return nil, nil, false
		}
		if prev, seen := val[f.j]; seen {
			if prev != v {
				return nil, nil, false // contradictory box: nothing to learn
			}
			continue
		}
		val[f.j] = v
	}
	// Deterministic order (fix application order, deduplicated): the
	// minimization below and the emitted row must not depend on map
	// iteration, or node counts would vary run to run.
	seen := make(map[int]bool, len(val))
	for _, f := range fixes {
		if seen[f.j] {
			continue
		}
		seen[f.j] = true
		if val[f.j] == 1 {
			f1 = append(f1, f.j)
		} else {
			f0 = append(f0, f.j)
		}
	}
	return f1, f0, len(f1)+len(f0) > 0
}

// conflictProbe is the reusable minimization workspace: one fix map
// mutated between NodeBound queries, so each deletion trial costs a map
// delete/restore instead of rebuilding slices and closures.
type conflictProbe struct {
	w   *searcher
	set map[int]float64
}

func (cp *conflictProbe) bounds(j int) (float64, float64) {
	if v, fixed := cp.set[j]; fixed {
		return v, v
	}
	return cp.w.rootLo[j], cp.w.rootHi[j]
}

// infeasible reports whether the bound still proves the current fix set's
// box empty, via the probe variant when the caller supplies one (so
// telemetry-counting NodeBound implementations are not inflated by
// minimization traffic).
func (cp *conflictProbe) infeasible() bool {
	nb := cp.w.opt.NodeBoundProbe
	if nb == nil {
		nb = cp.w.opt.NodeBound
	}
	_, feasible := nb(cp.bounds)
	return !feasible
}

// minimize greedily deletes fixes while the bound keeps proving
// infeasibility: first every 0-fix at once (for packing conflicts the
// tasks fixed *into* partitions are what overflows), then one fix at a
// time, oldest first, so the most recent (usually decisive) branching
// survives. It returns the surviving fix sets.
func (cp *conflictProbe) minimize(f1, f0 []int) ([]int, []int) {
	if len(f0) > 0 {
		for _, j := range f0 {
			delete(cp.set, j)
		}
		if cp.infeasible() {
			f0 = f0[:0]
		} else {
			for _, j := range f0 {
				cp.set[j] = 0
			}
		}
	}
	drop := func(fs []int, v float64) []int {
		kept := fs[:0]
		for _, j := range fs {
			if len(cp.set) == 1 {
				kept = append(kept, j)
				continue
			}
			delete(cp.set, j)
			if cp.infeasible() {
				continue
			}
			cp.set[j] = v
			kept = append(kept, j)
		}
		return kept
	}
	return drop(f1, 1), drop(f0, 0)
}

// learnConflict derives a no-good cut from an infeasibility-fathomed node
// and admits it to the shared pool. fromNodeBound marks fathoms proved by
// Options.NodeBound, which enables conflict minimization (conflictProbe):
// the bound callback is cheap and LP-free, so the fix set is shrunk by
// re-querying it on subsets. LP-proved fathoms keep the full fix set; the
// pool dedup absorbs repeats. Fix sets too large to plausibly minimize
// below maxNoGoodSize are dropped up front rather than paying the probe
// cost for a cut that would be discarded anyway. Returns 1 when a cut was
// admitted.
func (w *searcher) learnConflict(nd *node, fromNodeBound bool) int {
	if w.st.pool == nil || nd.depth < w.opt.minConflictDepth() {
		return 0
	}
	f1, f0, ok := w.conflictFixes(nd.fixes)
	if !ok {
		return 0
	}
	n := len(f1) + len(f0)
	switch {
	case !fromNodeBound && n > maxNoGoodSize:
		return 0
	case fromNodeBound && n > maxMinimizeFixes:
		return 0
	case fromNodeBound && w.opt.NodeBound != nil:
		cp := conflictProbe{w: w, set: make(map[int]float64, n)}
		for _, j := range f1 {
			cp.set[j] = 1
		}
		for _, j := range f0 {
			cp.set[j] = 0
		}
		f1, f0 = cp.minimize(f1, f0)
	}
	if n = len(f1) + len(f0); n == 0 || n > maxNoGoodSize {
		return 0
	}
	row := lp.CutRow{Kind: lp.LE, RHS: float64(len(f1) - 1)}
	for _, j := range f1 {
		row.Cols = append(row.Cols, j)
		row.Vals = append(row.Vals, 1)
	}
	for _, j := range f0 {
		row.Cols = append(row.Cols, j)
		row.Vals = append(row.Vals, -1)
	}
	if !w.st.pool.add(row) {
		return 0
	}
	return 1
}

package ilp

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/lp"
)

// This file implements a generic branch-and-price driver over the lp
// package's dynamic-growth primitives: a restricted set-partitioning
// master (one EQ cover row per item, one LE count row) grows columns in
// place through lp.Solver.AddCols, a caller-supplied pricing problem
// generates negative-reduced-cost columns from the master's duals
// (lp.Solver.RowDuals), and integrality is enforced by Ryan–Foster
// branching on item pairs — the branching scheme under which the pricing
// problem stays the same problem with pair constraints, instead of the
// unpriceable "forbid this exact column" shape plain variable branching
// would create. Column fixing is kept as the fallback for the rare
// fractional points without a fractional Ryan–Foster pair, and refuted
// integral selections (CheckSelection) are cut off with no-good rows
// through the same AddRows arena the cutting-plane layer uses.

// BPColumn is one candidate column of the restricted master: a subset of
// items with its objective cost. The driver owns neither slice after the
// call that passed it in.
type BPColumn struct {
	Items []int
	Cost  float64
}

// BPPricer solves the pricing problem at one node: given the cover-row
// duals lambda (one per item), the count-row dual mu, and the node's
// Ryan–Foster state — same pairs must appear together-or-not-at-all,
// differ pairs never together, forbidden content keys (see BPKey) never at
// all — it returns candidate columns with negative reduced cost
// Cost - Σ lambda[item] - mu, best first. The second result reports an
// INEXACT round: the pricer exhausted its own search budget, so an empty
// return does not prove that no negative column exists and the driver must
// not treat the node bound as proven.
type BPPricer func(lambda []float64, mu float64, same, differ [][2]int, forbidden map[string]bool) ([]BPColumn, bool)

// BPOptions configures SolveBP.
type BPOptions struct {
	// NumItems is the number of items to cover (cover rows 0..NumItems-1).
	NumItems int
	// Count caps the number of selected columns (the LE count row).
	Count int
	// ArtCost is the big-M cost of the per-item artificial columns that
	// keep the restricted master feasible before pricing has produced a
	// cover. It must exceed MaxFeasObj.
	ArtCost float64
	// MaxFeasObj is a proven upper bound on the objective of every
	// artificial-free solution; a converged node bound above it proves the
	// subtree infeasible (only artificials could be carrying the cover).
	MaxFeasObj float64
	// Seeds are the initial columns of the restricted master.
	Seeds []BPColumn
	// Pricer generates columns; nil restricts the search to the seeds
	// (every node bound is then exact over the seed set only, so bounds
	// are reported untrusted unless the seed set is known complete).
	Pricer BPPricer
	// CheckSelection vets an integral selection (the cover/count rows are
	// already satisfied); returning false rejects it and the driver cuts
	// the exact selection off with a no-good row. The callback must be a
	// property of the selection alone (tempart: acyclic pattern
	// precedence), so the no-good is globally valid.
	CheckSelection func(selection [][]int) bool
	// ObjInteger asserts that every column cost is integral, so every
	// feasible objective is too: a converged node bound strictly above
	// incumbent-1 then prunes (the ceiling argument). This is what closes
	// proofs on instances whose LP bound is fractional — without it the
	// search must grind the gap below 1 by branching alone.
	ObjInteger bool

	MaxNodes         int // node budget (default 10000)
	MaxPricingRounds int // pricing re-solves per node (default 500)

	// Pricing selects the master LP's dual simplex pricing rule (the same
	// knob ilp.Options.Pricing exposes for the row-formulation search).
	Pricing lp.Pricing

	Deadline time.Time
	Stop     <-chan struct{}
	Context  context.Context
}

// BPSolution is the result of a branch-and-price search.
type BPSolution struct {
	Status Status
	// Columns holds the selected columns' item sets (Optimal/Feasible).
	Columns [][]int
	// Obj is the incumbent objective; Bound the proven global lower bound
	// (root relaxation), valid only when BoundTrusted.
	Obj          float64
	Bound        float64
	BoundTrusted bool

	Nodes            int
	PricingRounds    int
	ColumnsGenerated int
	LPIterations     int
	Solver           lp.SolverStats
}

// BPKey returns the canonical content key of an item set: the sorted
// items, comma-joined. The driver dedups generated columns and addresses
// forbidden content with it; pricers use it against the forbidden map.
func BPKey(items []int) string {
	sorted := append([]int(nil), items...)
	insertionSortInts(sorted)
	buf := make([]byte, 0, 4*len(sorted))
	for k, it := range sorted {
		if k > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(it), 10)
	}
	return string(buf)
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// bpPattern is one registered master column: sorted items, a membership
// bitset for the Ryan–Foster filters, and the canonical key.
type bpPattern struct {
	items []int
	words []uint64
	key   string
}

func (p *bpPattern) has(item int) bool {
	return p.words[item>>6]&(1<<uint(item&63)) != 0
}

// bpDecision is one branching decision on the path to a node.
type bpDecision struct {
	kind uint8 // bpSame, bpDiffer, bpFixIn, bpFixOut
	a, b int32 // item pair (bpSame/bpDiffer)
	col  int32 // pattern index (bpFixIn/bpFixOut)
}

const (
	bpSame = uint8(iota)
	bpDiffer
	bpFixIn
	bpFixOut
)

// bpState is the shared search state of one SolveBP call.
type bpState struct {
	opt     BPOptions
	sv      *lp.Solver
	pats    []bpPattern
	patCost []float64      // master objective coefficient per pattern
	byKey   map[string]int // content key -> pattern index
	words   int            // bitset words per pattern

	// Per-node scratch, rebuilt by applyNode.
	same      [][2]int
	differ    [][2]int
	forbidden map[string]bool

	incumbent    [][]int // selected pattern contents (copied)
	incumbentObj float64
	haveInc      bool

	rootBound     float64
	rootConverged bool
	untrusted     bool // a node was pruned without a proven bound

	nodes         int
	pricingRounds int
	colsGenerated int
	lpIters       int

	deadline time.Time
	stopped  bool
	timedOut bool
	duals    []float64
}

// SolveBP runs branch-and-price on the set-partitioning master described
// by opts: minimize Σ Cost_S·x_S subject to Σ_{S∋t} x_S = 1 per item t,
// Σ_S x_S ≤ Count, x_S ∈ {0,1}. Columns are generated on demand by
// opts.Pricer; one lp.Solver carries the whole tree, with node re-entry
// through bound resets and the warm dual repair.
func SolveBP(opts BPOptions) (*BPSolution, error) {
	if opts.NumItems <= 0 {
		return nil, fmt.Errorf("ilp: SolveBP: NumItems must be positive")
	}
	if opts.Count <= 0 {
		return nil, fmt.Errorf("ilp: SolveBP: Count must be positive")
	}
	if opts.ArtCost <= opts.MaxFeasObj {
		return nil, fmt.Errorf("ilp: SolveBP: ArtCost %g must exceed MaxFeasObj %g", opts.ArtCost, opts.MaxFeasObj)
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 10000
	}
	if opts.MaxPricingRounds <= 0 {
		opts.MaxPricingRounds = 500
	}
	deadline := opts.Deadline
	if opts.Context != nil {
		if d, ok := opts.Context.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}

	// Restricted master: artificial columns 0..NumItems-1 (cost ArtCost,
	// unit entry in their own cover row, no count-row entry — artificials
	// must never consume the count budget), then the cover and count rows.
	// Every real column arrives through AddCols.
	n := opts.NumItems
	p := lp.NewProblem(n)
	for t := 0; t < n; t++ {
		p.SetObj(t, opts.ArtCost)
		p.SetBounds(t, 0, 1)
	}
	for t := 0; t < n; t++ {
		p.AddRow(lp.EQ, map[int]float64{t: 1}, 1)
	}
	p.AddRow(lp.LE, nil, float64(opts.Count))

	st := &bpState{
		opt:       opts,
		sv:        lp.NewSolver(p),
		byKey:     make(map[string]int),
		words:     (n + 63) / 64,
		forbidden: make(map[string]bool),
		deadline:  deadline,
	}
	st.sv.SetReuseSolution(true)
	st.sv.SetPricing(opts.Pricing)
	if err := st.addColumns(opts.Seeds); err != nil {
		return nil, err
	}

	// DFS over decision paths. Each stack entry owns its full decision
	// list; applyNode rebuilds the solver bounds from scratch at entry, so
	// no un-apply bookkeeping is needed.
	stack := [][]bpDecision{nil}
	for len(stack) > 0 {
		if st.nodes >= opts.MaxNodes {
			break
		}
		if st.limitHit() {
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.nodes++

		children, err := st.processNode(node)
		if err != nil {
			return nil, err
		}
		stack = append(stack, children...)
	}

	sol := &BPSolution{
		Nodes:            st.nodes,
		PricingRounds:    st.pricingRounds,
		ColumnsGenerated: st.colsGenerated,
		LPIterations:     st.lpIters,
		Solver:           st.sv.Stats,
	}
	exhausted := len(stack) == 0 && !st.stopped && !st.timedOut && st.nodes <= opts.MaxNodes
	switch {
	case exhausted && st.haveInc:
		sol.Status = Optimal
		sol.Columns = st.incumbent
		sol.Obj = st.incumbentObj
		sol.Bound = st.incumbentObj
		sol.BoundTrusted = !st.untrusted
	case exhausted && !st.untrusted:
		sol.Status = Infeasible
		sol.Bound = math.Inf(1)
		sol.BoundTrusted = true
	default:
		if st.timedOut {
			sol.Status = Timeout
		} else {
			sol.Status = Limit
		}
		if st.haveInc {
			sol.Columns = st.incumbent
			sol.Obj = st.incumbentObj
		}
		sol.Bound = st.rootBound
		sol.BoundTrusted = st.rootConverged
	}
	return sol, nil
}

// limitHit checks the wall-clock/stop/context limits (the node budget is
// checked by the caller).
func (st *bpState) limitHit() bool {
	if st.stopped || st.timedOut {
		return true
	}
	if !st.deadline.IsZero() && time.Now().After(st.deadline) {
		st.timedOut = true
		return true
	}
	if st.opt.Stop != nil {
		select {
		case <-st.opt.Stop:
			st.stopped = true
			return true
		default:
		}
	}
	if st.opt.Context != nil {
		if err := st.opt.Context.Err(); err != nil {
			if err == context.DeadlineExceeded {
				st.timedOut = true
			} else {
				st.stopped = true
			}
			return true
		}
	}
	return false
}

// addColumns registers and appends new master columns, deduplicating by
// content key. Forbidden content is dropped outright.
func (st *bpState) addColumns(cols []BPColumn) error {
	var batch []lp.NewCol
	for _, c := range cols {
		key := BPKey(c.Items)
		if _, dup := st.byKey[key]; dup || st.forbidden[key] {
			continue
		}
		pat := bpPattern{
			items: append([]int(nil), c.Items...),
			words: make([]uint64, st.words),
			key:   key,
		}
		insertionSortInts(pat.items)
		rows := make([]int, 0, len(pat.items)+1)
		vals := make([]float64, 0, len(pat.items)+1)
		for _, it := range pat.items {
			if it < 0 || it >= st.opt.NumItems {
				return fmt.Errorf("ilp: SolveBP: column item %d out of range [0,%d)", it, st.opt.NumItems)
			}
			pat.words[it>>6] |= 1 << uint(it&63)
			rows = append(rows, it)
			vals = append(vals, 1)
		}
		rows = append(rows, st.opt.NumItems) // count row
		vals = append(vals, 1)
		st.byKey[key] = len(st.pats)
		st.pats = append(st.pats, pat)
		st.patCost = append(st.patCost, c.Cost)
		batch = append(batch, lp.NewCol{Obj: c.Cost, Lo: 0, Hi: 1, Rows: rows, Vals: vals})
	}
	if len(batch) == 0 {
		return nil
	}
	st.colsGenerated += len(batch)
	return st.sv.AddCols(batch)
}

// patCol maps a pattern index to its master LP column.
func (st *bpState) patCol(pi int) int { return st.opt.NumItems + pi }

// applyNode rebuilds the solver's pattern bounds and the pricing-side
// same/differ/forbidden state for one node. It returns false when the
// decision list is contradictory on the current column set (a fixed-in
// column refuted by a later decision), which prunes the node outright.
func (st *bpState) applyNode(node []bpDecision) bool {
	for pi := range st.pats {
		st.sv.SetVarBounds(st.patCol(pi), 0, 1)
	}
	st.same = st.same[:0]
	st.differ = st.differ[:0]
	clear(st.forbidden)
	ok := true
	for _, d := range node {
		switch d.kind {
		case bpSame:
			st.same = append(st.same, [2]int{int(d.a), int(d.b)})
		case bpDiffer:
			st.differ = append(st.differ, [2]int{int(d.a), int(d.b)})
		case bpFixIn:
			if lo, hi := st.sv.Bounds(st.patCol(int(d.col))); lo == 0 && hi == 0 {
				ok = false
			}
			st.sv.SetVarBounds(st.patCol(int(d.col)), 1, 1)
		case bpFixOut:
			if lo, _ := st.sv.Bounds(st.patCol(int(d.col))); lo == 1 {
				ok = false
			}
			st.sv.SetVarBounds(st.patCol(int(d.col)), 0, 0)
			st.forbidden[st.pats[d.col].key] = true
		}
	}
	// Ryan–Foster filters apply to every pattern, including ones generated
	// after the decision was taken (a descendant's pricer respects them,
	// but a sibling's need not).
	for pi := range st.pats {
		if st.patternCut(pi) {
			if lo, _ := st.sv.Bounds(st.patCol(pi)); lo == 1 {
				ok = false
			}
			st.sv.SetVarBounds(st.patCol(pi), 0, 0)
		}
	}
	return ok
}

// patternCut reports whether the node's Ryan–Foster decisions exclude
// pattern pi.
func (st *bpState) patternCut(pi int) bool {
	p := &st.pats[pi]
	for _, ab := range st.same {
		if p.has(ab[0]) != p.has(ab[1]) {
			return true
		}
	}
	for _, ab := range st.differ {
		if p.has(ab[0]) && p.has(ab[1]) {
			return true
		}
	}
	return false
}

// processNode solves one node to pricing convergence, handles integral
// selections, and returns the child decision lists to push (nil when the
// node is fathomed).
func (st *bpState) processNode(node []bpDecision) ([][]bpDecision, error) {
	if !st.applyNode(node) {
		return nil, nil
	}
	// No-good rows added for refuted selections re-enter here: the row
	// changes the LP, so the node is re-solved (and re-priced) until the
	// optimum is either fractional, accepted, or pruned. Each no-good cuts
	// off at least the selection that produced it, so the loop terminates;
	// the cap is a defensive backstop.
	for nogoods := 0; ; nogoods++ {
		sol, converged, err := st.solveAndPrice()
		if err != nil {
			return nil, err
		}
		if sol == nil {
			return nil, nil // LP infeasible at this node: proven prune
		}
		// When pricing did not converge, sol.Obj is only the restricted
		// bound, which may overestimate the true node bound: it must not
		// prune, and any prune forced anyway is recorded as untrusted. A
		// branch, by contrast, claims nothing — the children re-price.
		if len(node) == 0 && converged && nogoods == 0 && !st.rootConverged {
			st.rootBound = sol.Obj
			st.rootConverged = true
		}
		if converged {
			if sol.Obj > st.opt.MaxFeasObj+1e-6 {
				return nil, nil // only artificials can cost this much: infeasible subtree
			}
			if st.haveInc {
				cut := st.incumbentObj - 1e-9
				if st.opt.ObjInteger {
					cut = st.incumbentObj - 1 + 1e-6
				}
				if sol.Obj > cut {
					return nil, nil // bound prune
				}
			}
		}
		sel, fracPat, artMass := st.classify(sol)
		if fracPat < 0 && artMass <= intTol*float64(st.opt.NumItems) {
			// Integral selection covering every item.
			contents := make([][]int, len(sel))
			for k, pi := range sel {
				contents[k] = st.pats[pi].items
			}
			if st.opt.CheckSelection == nil || st.opt.CheckSelection(contents) {
				obj := 0.0
				for _, pi := range sel {
					obj += st.patObj(pi)
				}
				if !st.haveInc || obj < st.incumbentObj-1e-9 {
					st.incumbent = make([][]int, len(sel))
					for k, pi := range sel {
						st.incumbent[k] = append([]int(nil), st.pats[pi].items...)
					}
					st.incumbentObj = obj
					st.haveInc = true
				}
				if !converged {
					st.untrusted = true
				}
				return nil, nil
			}
			// Refuted selection: globally valid no-good (any selection
			// containing all of these columns is refuted by the same
			// property), then re-solve this node.
			if nogoods >= 50 {
				st.untrusted = true
				return nil, nil
			}
			cols := make([]int, len(sel))
			vals := make([]float64, len(sel))
			for k, pi := range sel {
				cols[k] = st.patCol(pi)
				vals[k] = 1
			}
			if err := st.sv.AddRows([]lp.CutRow{{Kind: lp.LE, Cols: cols, Vals: vals, RHS: float64(len(sel)) - 1}}); err != nil {
				return nil, err
			}
			continue
		}
		if fracPat < 0 {
			// Integral patterns but artificial mass: with the count row
			// binding this is an uncovered item. A converged bound above
			// MaxFeasObj was already pruned; landing here means pricing was
			// inexact — give up on the node without a proven bound.
			st.untrusted = true
			return nil, nil
		}
		return st.branch(node, sol, fracPat), nil
	}
}

// patObj returns pattern pi's master objective coefficient. The incumbent
// objective is summed from these instead of the LP objective so that the
// artificial columns' residual dust cannot leak into the reported value.
func (st *bpState) patObj(pi int) float64 { return st.patCost[pi] }

// classify scans the LP point: selected patterns (x > 1-intTol), the most
// fractional pattern (-1 when none), and the total artificial mass.
func (st *bpState) classify(sol *lp.Solution) (sel []int, fracPat int, artMass float64) {
	fracPat = -1
	bestDist := math.Inf(1)
	for pi := range st.pats {
		x := sol.X[st.patCol(pi)]
		if x > 1-intTol {
			sel = append(sel, pi)
		} else if x > intTol {
			if d := math.Abs(x - 0.5); d < bestDist {
				bestDist = d
				fracPat = pi
			}
		}
	}
	for t := 0; t < st.opt.NumItems; t++ {
		artMass += sol.X[t]
	}
	return sel, fracPat, artMass
}

// solveAndPrice iterates LP solve + pricing until no negative-reduced-cost
// column remains (converged=true), the pricer stalls or reports an inexact
// round (converged=false), or the LP proves the node infeasible (nil
// solution). The returned Solution aliases the solver's shared buffer.
func (st *bpState) solveAndPrice() (*lp.Solution, bool, error) {
	for round := 0; ; round++ {
		sol, err := st.sv.Solve()
		if err != nil {
			return nil, false, err
		}
		st.lpIters += sol.Iterations
		switch sol.Status {
		case lp.Infeasible:
			return nil, false, nil
		case lp.Optimal:
		default:
			// Iteration limit or numerical trouble: no proven anything.
			st.untrusted = true
			return nil, false, nil
		}
		if st.opt.Pricer == nil {
			return sol, true, nil
		}
		if round >= st.opt.MaxPricingRounds {
			return sol, false, nil
		}
		if st.limitHit() {
			return sol, false, nil
		}
		st.duals = st.sv.RowDuals(st.duals)
		if st.duals == nil {
			st.untrusted = true
			return nil, false, nil
		}
		st.pricingRounds++
		lambda := st.duals[:st.opt.NumItems]
		mu := st.duals[st.opt.NumItems]
		cand, inexact := st.opt.Pricer(lambda, mu, st.same, st.differ, st.forbidden)
		before := len(st.pats)
		if err := st.addColumns(cand); err != nil {
			return nil, false, err
		}
		if len(st.pats) == before {
			return sol, !inexact, nil
		}
		// New columns must obey the node's Ryan–Foster cuts even if the
		// pricer slipped (defense in depth; the bounds default to [0,1]).
		for pi := before; pi < len(st.pats); pi++ {
			if st.patternCut(pi) {
				st.sv.SetVarBounds(st.patCol(pi), 0, 0)
			}
		}
	}
}

// branch builds the two children for the current fractional point: a
// Ryan–Foster item pair with fractional together-mass when one exists
// (the pricing-friendly branching — children constrain pairs, which the
// pricer's DFS enforces natively), otherwise a fix/forbid split on the
// most fractional pattern. The constraining side is returned last, so the
// LIFO stack dives into it first.
func (st *bpState) branch(node []bpDecision, sol *lp.Solution, fracPat int) [][]bpDecision {
	bestA, bestB := -1, -1
	bestDist := math.Inf(1)
	// Candidate pairs live inside fractional patterns; together-mass sums
	// over every pattern (integral ones included).
	for pi := range st.pats {
		x := sol.X[st.patCol(pi)]
		if x <= intTol || x >= 1-intTol {
			continue
		}
		items := st.pats[pi].items
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				a, b := items[i], items[j]
				w := 0.0
				for qi := range st.pats {
					if xq := sol.X[st.patCol(qi)]; xq > intTol && st.pats[qi].has(a) && st.pats[qi].has(b) {
						w += xq
					}
				}
				if w > intTol && w < 1-intTol {
					if d := math.Abs(w - 0.5); d < bestDist {
						bestA, bestB, bestDist = a, b, d
					}
				}
			}
		}
	}
	child := func(d bpDecision) []bpDecision {
		c := make([]bpDecision, len(node)+1)
		copy(c, node)
		c[len(node)] = d
		return c
	}
	if bestA >= 0 {
		return [][]bpDecision{
			child(bpDecision{kind: bpDiffer, a: int32(bestA), b: int32(bestB)}),
			child(bpDecision{kind: bpSame, a: int32(bestA), b: int32(bestB)}),
		}
	}
	return [][]bpDecision{
		child(bpDecision{kind: bpFixOut, col: int32(fracPat)}),
		child(bpDecision{kind: bpFixIn, col: int32(fracPat)}),
	}
}

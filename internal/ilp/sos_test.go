package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

// buildAssignment deterministically builds a generalized assignment
// problem from a seed: nItems items each placed in exactly one of nBins
// bins (equality rows), bin capacity rows with pseudo-random weights.
func buildAssignment(seed int64, nItems, nBins int) (*Problem, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	P := &Problem{LP: lp.NewProblem(0)}
	groups := make([][]int, nItems)
	for i := 0; i < nItems; i++ {
		row := map[int]float64{}
		for b := 0; b < nBins; b++ {
			j := Binary(P)
			P.LP.SetObj(j, float64(1+((i*7+b*13)%17)))
			row[j] = 1
			groups[i] = append(groups[i], j)
		}
		P.LP.AddRow(lp.EQ, row, 1)
	}
	capacity := float64(3*nItems)/float64(nBins) + 2
	for b := 0; b < nBins; b++ {
		row := map[int]float64{}
		for i := 0; i < nItems; i++ {
			row[groups[i][b]] = float64(1 + rng.Intn(4))
		}
		P.LP.AddRow(lp.LE, row, capacity)
	}
	return P, groups
}

// assignmentProblem returns identical instances, one plain and one with
// SOS1 groups registered.
func assignmentProblem(rng *rand.Rand, nItems, nBins int) (*Problem, *Problem) {
	seed := rng.Int63()
	plain, _ := buildAssignment(seed, nItems, nBins)
	sos, groups := buildAssignment(seed, nItems, nBins)
	sos.SOS1 = groups
	return plain, sos
}

// TestSOS1MatchesPlainBranching: group branching must find the same
// optimal objective as single-variable branching.
func TestSOS1MatchesPlainBranching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nItems := 2 + rng.Intn(5)
		nBins := 2 + rng.Intn(3)
		plain, sos := assignmentProblem(rng, nItems, nBins)
		sPlain, err := Solve(plain, Options{})
		if err != nil {
			return false
		}
		sSOS, err := Solve(sos, Options{})
		if err != nil {
			return false
		}
		if sPlain.Status != sSOS.Status {
			return false
		}
		if sPlain.Status != Optimal {
			return true
		}
		return math.Abs(sPlain.Obj-sSOS.Obj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSOS1FindsBetterTreesNotWorseAnswers: on a structured instance the
// SOS solver must reach the optimum and the reported gap must close.
func TestSOS1GapCloses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, sos := assignmentProblem(rng, 6, 3)
	s, err := Solve(sos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if s.Gap() > 1e-6 {
		t.Errorf("gap = %g after optimal", s.Gap())
	}
	// Every SOS group sums to exactly 1 in the solution.
	for gi, grp := range sos.SOS1 {
		sum := 0.0
		for _, j := range grp {
			sum += s.X[j]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("group %d sums to %g", gi, sum)
		}
	}
}

func TestGapOnEmptySolution(t *testing.T) {
	s := &Solution{}
	if !math.IsInf(s.Gap(), 1) {
		t.Errorf("Gap of empty solution = %g, want +Inf", s.Gap())
	}
}

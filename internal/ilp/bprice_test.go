package ilp

import (
	"math"
	"testing"
	"time"
)

// binPackPricer builds an exact (brute-force) pricing oracle for a toy
// bin-packing master: columns are subsets of items fitting the capacity,
// unit cost each, so SolveBP minimizes the bin count. Exhaustive subset
// enumeration keeps the oracle trivially correct — exactly what a driver
// test wants.
func binPackPricer(sizes []int, capacity int) BPPricer {
	n := len(sizes)
	return func(lambda []float64, mu float64, same, differ [][2]int, forbidden map[string]bool) ([]BPColumn, bool) {
		var out []BPColumn
	mask:
		for mask := 1; mask < 1<<n; mask++ {
			w := 0
			for t := 0; t < n; t++ {
				if mask&(1<<t) != 0 {
					w += sizes[t]
				}
			}
			if w > capacity {
				continue
			}
			for _, ab := range same {
				ina, inb := mask&(1<<ab[0]) != 0, mask&(1<<ab[1]) != 0
				if ina != inb {
					continue mask
				}
			}
			for _, ab := range differ {
				if mask&(1<<ab[0]) != 0 && mask&(1<<ab[1]) != 0 {
					continue mask
				}
			}
			var items []int
			for t := 0; t < n; t++ {
				if mask&(1<<t) != 0 {
					items = append(items, t)
				}
			}
			if forbidden[BPKey(items)] {
				continue
			}
			rc := 1.0 - mu
			for _, t := range items {
				rc -= lambda[t]
			}
			if rc < -1e-9 {
				out = append(out, BPColumn{Items: items, Cost: 1})
				if len(out) >= 25 {
					break
				}
			}
		}
		return out, false
	}
}

func singletonSeeds(n int) []BPColumn {
	seeds := make([]BPColumn, n)
	for t := 0; t < n; t++ {
		seeds[t] = BPColumn{Items: []int{t}, Cost: 1}
	}
	return seeds
}

func binPackOpts(sizes []int, capacity, count int) BPOptions {
	return BPOptions{
		NumItems:   len(sizes),
		Count:      count,
		ArtCost:    4*float64(count) + 16,
		MaxFeasObj: float64(count),
		Seeds:      singletonSeeds(len(sizes)),
		Pricer:     binPackPricer(sizes, capacity),
		ObjInteger: true,
		MaxNodes:   5000,
	}
}

// checkCover verifies a selection is an exact cover with every bin fitting.
func checkCover(t *testing.T, sel [][]int, sizes []int, capacity int) {
	t.Helper()
	covered := make([]int, len(sizes))
	for _, items := range sel {
		w := 0
		for _, it := range items {
			covered[it]++
			w += sizes[it]
		}
		if w > capacity {
			t.Fatalf("bin %v overflows: %d > %d", items, w, capacity)
		}
	}
	for it, c := range covered {
		if c != 1 {
			t.Fatalf("item %d covered %d times", it, c)
		}
	}
}

// TestSolveBPBinPackingMixed is the mini mixed-cardinality instance: six
// 26-unit and six 38-unit items on 100-unit bins. Two 38s fill a bin past
// the point where a 26 fits, so the optimum mixes cardinalities: 5 bins
// (e.g. one (38,38), four of the rest), while the area bound says 4.
func TestSolveBPBinPackingMixed(t *testing.T) {
	sizes := []int{26, 26, 26, 26, 26, 26, 38, 38, 38, 38, 38, 38}
	sol, err := SolveBP(binPackOpts(sizes, 100, 12))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want Optimal (%+v)", sol.Status, sol)
	}
	if math.Abs(sol.Obj-5) > 1e-9 {
		t.Fatalf("obj = %v, want 5 bins", sol.Obj)
	}
	if !sol.BoundTrusted || math.Abs(sol.Bound-sol.Obj) > 1e-9 {
		t.Fatalf("bound %v trusted=%v, want closed proof at 5", sol.Bound, sol.BoundTrusted)
	}
	checkCover(t, sol.Columns, sizes, 100)
	if sol.ColumnsGenerated <= len(sizes) {
		t.Fatalf("pricing generated no columns beyond the seeds (%d)", sol.ColumnsGenerated)
	}
}

// TestSolveBPFractionalRoot forces branching: three items of size 2 on
// 4-unit bins — the LP root packs three half-pairs for a bound of 1.5,
// the integer optimum is 2 — and checks Ryan–Foster closes it.
func TestSolveBPFractionalRoot(t *testing.T) {
	sizes := []int{2, 2, 2}
	sol, err := SolveBP(binPackOpts(sizes, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-2) > 1e-9 {
		t.Fatalf("got %v obj=%v, want Optimal 2", sol.Status, sol.Obj)
	}
	if sol.Nodes < 3 {
		t.Fatalf("solved in %d nodes; the root is fractional, branching was expected", sol.Nodes)
	}
	checkCover(t, sol.Columns, sizes, 4)
}

// TestSolveBPCheckSelectionNoGood rejects any selection using the {0,1}
// pair column, as the tempart acyclicity vet would a cyclic selection: the
// driver must cut it off with a no-good and land on the 2-bin answer.
func TestSolveBPCheckSelectionNoGood(t *testing.T) {
	sizes := []int{2, 2}
	opts := binPackOpts(sizes, 4, 2)
	opts.CheckSelection = func(sel [][]int) bool {
		for _, items := range sel {
			if len(items) == 2 {
				return false
			}
		}
		return true
	}
	sol, err := SolveBP(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-2) > 1e-9 {
		t.Fatalf("got %v obj=%v, want Optimal 2 (pair column refuted)", sol.Status, sol.Obj)
	}
	for _, items := range sol.Columns {
		if len(items) == 2 {
			t.Fatalf("refuted column selected: %v", sol.Columns)
		}
	}
}

// TestSolveBPInfeasible: two items that cannot share a bin under a
// one-bin budget have no solution, and the exhausted search must say so
// with a trusted verdict.
func TestSolveBPInfeasible(t *testing.T) {
	sizes := []int{3, 3}
	sol, err := SolveBP(binPackOpts(sizes, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible || !sol.BoundTrusted {
		t.Fatalf("got %v trusted=%v, want trusted Infeasible", sol.Status, sol.BoundTrusted)
	}
}

// TestSolveBPSeedsOnly: a nil pricer restricts the search to the seeds.
func TestSolveBPSeedsOnly(t *testing.T) {
	opts := binPackOpts([]int{1, 1, 1}, 4, 3)
	opts.Pricer = nil
	sol, err := SolveBP(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-3) > 1e-9 {
		t.Fatalf("got %v obj=%v, want Optimal 3 (singleton seeds only)", sol.Status, sol.Obj)
	}
}

// TestSolveBPDeadline: an already-expired deadline yields Timeout without
// touching a node.
func TestSolveBPDeadline(t *testing.T) {
	opts := binPackOpts([]int{2, 2, 2}, 4, 3)
	opts.Deadline = time.Now().Add(-time.Second)
	sol, err := SolveBP(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Timeout {
		t.Fatalf("status %v, want Timeout", sol.Status)
	}
}

// TestSolveBPNodeLimit: MaxNodes 1 on the fractional instance cannot close
// the proof and must report Limit with the (trusted) root bound.
func TestSolveBPNodeLimit(t *testing.T) {
	opts := binPackOpts([]int{2, 2, 2}, 4, 3)
	opts.MaxNodes = 1
	sol, err := SolveBP(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Limit {
		t.Fatalf("status %v, want Limit", sol.Status)
	}
	if !sol.BoundTrusted || math.Abs(sol.Bound-1.5) > 1e-6 {
		t.Fatalf("root bound %v trusted=%v, want trusted 1.5", sol.Bound, sol.BoundTrusted)
	}
}

package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/lp"
)

// randomKnapsack builds a reproducible knapsack instance.
func randomKnapsack(seed int64, n int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	weights := make([]float64, n)
	tot := 0.0
	for i := range values {
		values[i] = float64(1 + rng.Intn(40))
		weights[i] = float64(1 + rng.Intn(15))
		tot += weights[i]
	}
	return knapsack(values, weights, math.Floor(tot/2.5))
}

// TestWorkersMatchSequentialKnapsack: the parallel search must find the same
// optimal objective as the sequential search on random knapsacks.
func TestWorkersMatchSequentialKnapsack(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seq, err := Solve(randomKnapsack(seed, 12), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			par, err := Solve(randomKnapsack(seed, 12), Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.Status != seq.Status {
				t.Fatalf("seed %d workers %d: status %v, sequential %v", seed, workers, par.Status, seq.Status)
			}
			if seq.Status == Optimal && math.Abs(par.Obj-seq.Obj) > 1e-5 {
				t.Fatalf("seed %d workers %d: obj %g, sequential %g", seed, workers, par.Obj, seq.Obj)
			}
		}
	}
}

// TestWorkersMatchSequentialAssignment runs the same comparison on the
// SOS1-structured generalized assignment instances (the shape of the
// temporal partitioning models).
func TestWorkersMatchSequentialAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		plain, sos := assignmentProblem(rng, 6, 3)
		seq, err := Solve(sos, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(plain, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		// plain (no SOS1) with workers vs sos sequential: both must reach
		// the same optimum.
		if seq.Status != Optimal || par.Status != Optimal {
			t.Fatalf("trial %d: status %v / %v", trial, seq.Status, par.Status)
		}
		if math.Abs(par.Obj-seq.Obj) > 1e-5 {
			t.Fatalf("trial %d: parallel obj %g, sequential %g", trial, par.Obj, seq.Obj)
		}
	}
}

// TestPricingWorkerEquivalence: the dual pricing rule is a per-worker
// heuristic, so steepest edge must reach the same optimum as devex on the
// same instance, sequentially and with 4 workers sharing the cut pool and
// incumbent (this is the race lane's coverage of the steepest-edge weight
// updates under concurrent solves).
func TestPricingWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ref, err := Solve(randomKnapsack(seed, 12), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			se, err := Solve(randomKnapsack(seed, 12), Options{Workers: workers, Pricing: lp.PricingSteepestEdge})
			if err != nil {
				t.Fatal(err)
			}
			if se.Status != ref.Status {
				t.Fatalf("seed %d workers %d: steepest-edge status %v, devex %v", seed, workers, se.Status, ref.Status)
			}
			if ref.Status == Optimal && math.Abs(se.Obj-ref.Obj) > 1e-5 {
				t.Fatalf("seed %d workers %d: steepest-edge obj %g, devex %g", seed, workers, se.Obj, ref.Obj)
			}
		}
	}
}

// TestWorkersInfeasible: the parallel search must prove infeasibility too.
func TestWorkersInfeasible(t *testing.T) {
	P := &Problem{LP: lp.NewProblem(1)}
	P.LP.SetBounds(0, 0, 5)
	P.Integers = []int{0}
	P.LP.AddRow(lp.EQ, map[int]float64{0: 2}, 3)
	s, err := Solve(P, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

// TestStopChannelAborts: closing Options.Stop must end the search promptly
// with a Limit-like partial result instead of running to completion.
func TestStopChannelAborts(t *testing.T) {
	stop := make(chan struct{})
	close(stop) // pre-closed: the search may only process the root
	P := randomKnapsack(7, 22)
	start := time.Now()
	s, err := Solve(P, Options{Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Optimal && s.Nodes > 1 {
		t.Errorf("stopped search explored %d nodes and claimed optimal", s.Nodes)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("stop channel had no effect")
	}
}

// TestDroppedNodesDegradeStatus exercises the IterLimit bookkeeping: when
// nodes are discarded, the solution's bound must be flagged untrusted, the
// dropped nodes' parent bounds must still enter the reported Bound, and the
// search must not claim Optimal or Infeasible.
func TestDroppedNodesDegradeStatus(t *testing.T) {
	opt := DefaultOptions()
	st := &searchState{opt: &opt, incObj: math.Inf(1), droppedBound: math.Inf(1)}
	st.rootSolved = true
	st.rootBound = 1
	// Simulate one explored incumbent and one dropped node with bound 2.
	st.incumbent = []float64{1}
	st.incObj = 5
	st.dropped = 1
	st.droppedBound = 2
	sol := st.finish()
	if sol.BoundTrusted {
		t.Error("BoundTrusted = true with dropped nodes")
	}
	if sol.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", sol.Dropped)
	}
	if sol.Status == Optimal {
		t.Error("claimed Optimal despite dropped nodes")
	}
	if sol.Bound != 2 {
		t.Errorf("Bound = %g, want 2 (the dropped node's parent bound)", sol.Bound)
	}

	// Without an incumbent a dropped node must degrade Infeasible to Limit.
	st2 := &searchState{opt: &opt, incObj: math.Inf(1), droppedBound: math.Inf(1)}
	st2.rootSolved = true
	st2.rootBound = 1
	st2.dropped = 2
	st2.droppedBound = 1
	sol2 := st2.finish()
	if sol2.Status != Limit {
		t.Errorf("status = %v, want limit (dropped nodes, no incumbent)", sol2.Status)
	}
	if sol2.BoundTrusted {
		t.Error("BoundTrusted = true with dropped nodes and no incumbent")
	}
}

func BenchmarkKnapsack15Workers4(b *testing.B) {
	P := randomKnapsack(5, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(P, Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

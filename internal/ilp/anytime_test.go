package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randKnapsack builds a reproducible n-item knapsack (values/weights/cap
// returned for feasibility checking).
func randKnapsack(seed int64, n int) (values, weights []float64, cap float64) {
	rng := rand.New(rand.NewSource(seed))
	values = make([]float64, n)
	weights = make([]float64, n)
	tot := 0.0
	for i := range values {
		values[i] = float64(1 + rng.Intn(100))
		weights[i] = float64(1 + rng.Intn(30))
		tot += weights[i]
	}
	return values, weights, math.Floor(tot / 3)
}

// checkIncumbent verifies an anytime solution: the incumbent (when present)
// is a feasible 0-1 point whose objective matches Obj, and the reported
// lower bound never exceeds it.
func checkIncumbent(t *testing.T, values, weights []float64, cap float64, s *Solution) {
	t.Helper()
	if s.X == nil {
		return
	}
	totW, totV := 0.0, 0.0
	for i := range weights {
		x := s.X[i]
		if math.Abs(x-math.Round(x)) > 1e-6 || x < -1e-6 || x > 1+1e-6 {
			t.Fatalf("x[%d] = %g is not binary", i, x)
		}
		totW += math.Round(x) * weights[i]
		totV += math.Round(x) * values[i]
	}
	if totW > cap+1e-6 {
		t.Fatalf("incumbent weight %g exceeds cap %g", totW, cap)
	}
	if !near(s.Obj, -totV) {
		t.Fatalf("Obj = %g does not match incumbent value %g", s.Obj, -totV)
	}
	if !math.IsInf(s.Bound, -1) && s.Bound > s.Obj+1e-6 {
		t.Fatalf("Bound %g above Obj %g", s.Bound, s.Obj)
	}
}

// TestDeadlineAnytime is the anytime contract under wall-clock deadlines,
// sequential and parallel: the search stops near the deadline, reports
// Timeout (or finishes Optimal), and any incumbent it returns is feasible
// with a consistent bound. Deadlines land at effectively random node
// ordinals, so this doubles as the 1-vs-N-worker robustness check.
func TestDeadlineAnytime(t *testing.T) {
	values, weights, cap := randKnapsack(42, 45)
	for _, workers := range []int{1, 4} {
		for _, budget := range []time.Duration{
			200 * time.Microsecond, 2 * time.Millisecond, 20 * time.Millisecond,
		} {
			P := knapsack(values, weights, cap)
			start := time.Now()
			s, err := Solve(P, Options{Workers: workers, Deadline: start.Add(budget)})
			if err != nil {
				t.Fatalf("workers=%d budget=%v: %v", workers, budget, err)
			}
			if elapsed := time.Since(start); elapsed > budget+5*time.Second {
				t.Errorf("workers=%d budget=%v: solve ran %v past its deadline",
					workers, budget, elapsed)
			}
			if s.Status != Optimal && s.Status != Timeout {
				t.Fatalf("workers=%d budget=%v: status = %v, want optimal or timeout",
					workers, budget, s.Status)
			}
			checkIncumbent(t, values, weights, cap, s)
		}
	}
}

// TestDeadlineAlreadyExpired pins the no-incumbent edge: a deadline in the
// past stops the search before any node, yielding Timeout with no solution
// vector (the service layer's cue to fall back to the greedy backend).
func TestDeadlineAlreadyExpired(t *testing.T) {
	values, weights, cap := randKnapsack(7, 30)
	P := knapsack(values, weights, cap)
	s, err := Solve(P, Options{Deadline: time.Now().Add(-time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Timeout {
		t.Fatalf("status = %v, want timeout", s.Status)
	}
	if s.X != nil {
		t.Fatalf("expired-deadline solve returned an incumbent after zero search")
	}
}

// TestDeadlineComposesWithTimeLimit: the earlier of Deadline and TimeLimit
// wins, and either way the truncated status is Timeout.
func TestDeadlineComposesWithTimeLimit(t *testing.T) {
	values, weights, cap := randKnapsack(13, 45)
	P := knapsack(values, weights, cap)
	start := time.Now()
	s, err := Solve(P, Options{
		TimeLimit: time.Hour,
		Deadline:  start.Add(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline lost to the hour-long TimeLimit (ran %v)", elapsed)
	}
	if s.Status != Optimal && s.Status != Timeout {
		t.Fatalf("status = %v, want optimal or timeout", s.Status)
	}
}

// TestAnytimeMonotoneInBudget drives the sequential search with growing
// deterministic node budgets: the incumbent objective never worsens and the
// proven bound never regresses as the budget grows, so the reported gap is
// monotone non-increasing in search effort — the anytime property that makes
// deadline_ms results trustworthy.
func TestAnytimeMonotoneInBudget(t *testing.T) {
	values, weights, cap := randKnapsack(11, 25)
	prevObj := math.Inf(1)
	prevBound := math.Inf(-1)
	for _, nodes := range []int{1, 2, 4, 8, 16, 32, 64, 128, 512, 2048} {
		P := knapsack(values, weights, cap)
		s, err := Solve(P, Options{MaxNodes: nodes})
		if err != nil {
			t.Fatalf("MaxNodes=%d: %v", nodes, err)
		}
		checkIncumbent(t, values, weights, cap, s)
		if s.X != nil {
			if s.Obj > prevObj+1e-6 {
				t.Errorf("MaxNodes=%d: incumbent worsened %g -> %g", nodes, prevObj, s.Obj)
			}
			prevObj = math.Min(prevObj, s.Obj)
		}
		if s.BoundTrusted && !math.IsInf(s.Bound, -1) {
			if s.Bound < prevBound-1e-6 {
				t.Errorf("MaxNodes=%d: bound regressed %g -> %g", nodes, prevBound, s.Bound)
			}
			prevBound = math.Max(prevBound, s.Bound)
		}
		if s.Status == Optimal {
			break
		}
	}
	if math.IsInf(prevObj, 1) {
		t.Fatal("no budget produced an incumbent")
	}
}

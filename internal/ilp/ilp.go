// Package ilp implements a branch-and-bound integer linear programming
// solver on top of the simplex solver in internal/lp.
//
// It supports mixed problems in which a subset of the variables is marked
// integral (in practice, the 0-1 placement variables of the temporal
// partitioning model). Branching fixes variable bounds, so no constraint
// rows are added during the search. The solver keeps the best incumbent and
// its bound, honours node and time limits, and can report a proven-optimal
// or best-effort solution.
package ilp

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/lp"
)

// Status reports the outcome of an ILP solve.
type Status int

const (
	// Optimal means the incumbent was proven optimal.
	Optimal Status = iota
	// Feasible means an incumbent was found but the search hit a limit
	// before proving optimality.
	Feasible
	// Infeasible means no integral feasible point exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
	// Limit means a node/time limit was hit before any incumbent was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem couples an LP with integrality requirements.
type Problem struct {
	// LP is the underlying relaxation. Bounds on integer variables should
	// already be set (e.g. [0,1] for binaries).
	LP *lp.Problem
	// Integers lists the variable indices that must take integral values.
	Integers []int
	// SOS1 lists groups of binary variables of which exactly one is 1 in
	// any feasible solution (the caller must have added the corresponding
	// equality row). The solver branches on whole groups — one child per
	// member, fixing it to 1 and the rest to 0 — which is dramatically
	// stronger than single-variable branching for assignment structures
	// like the temporal partitioning y[t][p] variables.
	SOS1 [][]int
}

// Options tunes the branch-and-bound search. The zero value gives sensible
// defaults.
type Options struct {
	// MaxNodes bounds the number of explored B&B nodes (0 = default 200000).
	MaxNodes int
	// TimeLimit bounds wall-clock search time (0 = no limit).
	TimeLimit time.Duration
	// AbsGap stops the search when bound and incumbent are closer than this
	// (default 1e-6).
	AbsGap float64
	// RoundingHeuristic, when true (default via DefaultOptions), attempts to
	// round each fractional LP solution to a feasible incumbent.
	RoundingHeuristic bool
	// Incumbent optionally provides a known feasible point to warm-start
	// pruning. Its objective is evaluated against the LP objective.
	Incumbent []float64
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// DefaultOptions returns the options used when a zero Options is passed.
func DefaultOptions() Options {
	return Options{
		MaxNodes:          200000,
		AbsGap:            1e-6,
		RoundingHeuristic: true,
	}
}

// Solution is the result of an ILP solve.
type Solution struct {
	Status Status
	// X is the incumbent point (valid for Optimal and Feasible).
	X []float64
	// Obj is the incumbent objective value.
	Obj float64
	// Bound is the best proven lower bound on the optimum.
	Bound float64
	// Nodes is the number of B&B nodes explored.
	Nodes int
	// LPIterations accumulates simplex pivots across all nodes.
	LPIterations int
}

// Gap returns Obj - Bound (0 for proven optimal solutions).
func (s *Solution) Gap() float64 {
	if s.X == nil {
		return math.Inf(1)
	}
	return s.Obj - s.Bound
}

const intTol = 1e-6

// node is one open branch-and-bound subproblem.
type node struct {
	fixes []fix   // bound changes relative to the root
	bound float64 // parent LP bound (priority hint)
	depth int
}

type fix struct {
	j      int
	lo, hi float64
}

// Solve runs branch and bound and returns the best solution found.
func Solve(p *Problem, opt Options) (*Solution, error) {
	def := DefaultOptions()
	if opt.MaxNodes == 0 {
		opt.MaxNodes = def.MaxNodes
	}
	if opt.AbsGap == 0 {
		opt.AbsGap = def.AbsGap
	}
	isInt := make(map[int]bool, len(p.Integers))
	for _, j := range p.Integers {
		if j < 0 || j >= p.LP.NumVars() {
			return nil, fmt.Errorf("ilp: integer index %d out of range [0,%d)", j, p.LP.NumVars())
		}
		isInt[j] = true
	}

	start := time.Now()
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}

	sol := &Solution{Status: Limit, Bound: math.Inf(-1)}
	var incumbent []float64
	incObj := math.Inf(1)
	if opt.Incumbent != nil {
		if ok, obj := checkFeasible(p, opt.Incumbent); ok {
			incumbent = append([]float64(nil), opt.Incumbent...)
			incObj = obj
			if opt.Log != nil {
				opt.Log("ilp: warm-start incumbent obj=%g", obj)
			}
		}
	}

	// Depth-first with best-bound tie-breaking: a stack, but children are
	// pushed so the more promising branch is explored first.
	stack := []node{{bound: math.Inf(-1)}}
	rootBound := math.Inf(-1)
	rootSolved := false

	for len(stack) > 0 {
		if sol.Nodes >= opt.MaxNodes {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		// Pop.
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// Prune by parent bound.
		if nd.bound > incObj-opt.AbsGap && !math.IsInf(nd.bound, -1) {
			continue
		}

		q := p.LP.Clone()
		feas := true
		for _, f := range nd.fixes {
			lo, hi := q.Bounds(f.j)
			nlo, nhi := math.Max(lo, f.lo), math.Min(hi, f.hi)
			if nlo > nhi {
				feas = false
				break
			}
			q.SetBounds(f.j, nlo, nhi)
		}
		if !feas {
			continue
		}

		res, err := lp.Solve(q)
		if err != nil {
			return nil, fmt.Errorf("ilp: node LP: %w", err)
		}
		sol.Nodes++
		sol.LPIterations += res.Iterations

		switch res.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if nd.depth == 0 {
				sol.Status = Unbounded
				return sol, nil
			}
			continue
		case lp.IterLimit:
			// Treat as unexplorable; drop the node conservatively only if
			// we already have an incumbent, else record and continue.
			if opt.Log != nil {
				opt.Log("ilp: node hit simplex iteration limit (depth %d)", nd.depth)
			}
			continue
		}

		if !rootSolved && nd.depth == 0 {
			rootBound = res.Obj
			rootSolved = true
		}
		if res.Obj > incObj-opt.AbsGap {
			continue // bound prune
		}

		// Prefer SOS1 group branching: pick the most undecided group (the
		// one whose largest member value is smallest).
		bestGroup := -1
		bestMax := 2.0
		for gi, grp := range p.SOS1 {
			gmax, fractional := 0.0, false
			for _, j := range grp {
				v := res.X[j]
				if v > intTol && v < 1-intTol {
					fractional = true
				}
				if v > gmax {
					gmax = v
				}
			}
			if fractional && gmax < bestMax {
				bestMax = gmax
				bestGroup = gi
			}
		}

		// Find the most fractional integer variable (closest to .5).
		branchVar := -1
		bestDist := math.Inf(1)
		for _, j := range p.Integers {
			f := res.X[j] - math.Floor(res.X[j])
			if f > intTol && f < 1-intTol {
				if d := math.Abs(f - 0.5); d < bestDist {
					bestDist = d
					branchVar = j
				}
			}
		}

		if bestGroup >= 0 && branchVar != -1 {
			if opt.RoundingHeuristic {
				if cand := roundCandidate(res.X, isInt); cand != nil {
					if ok, obj := checkFeasibleWithBounds(p, q, cand); ok && obj < incObj-opt.AbsGap {
						incObj = obj
						incumbent = cand
					}
				}
			}
			grp := p.SOS1[bestGroup]
			// One child per member, fixing it to 1 and siblings to 0.
			// Push in ascending LP-value order so the most promising child
			// is on top of the stack (explored first).
			order := make([]int, len(grp))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				return res.X[grp[order[a]]] < res.X[grp[order[b]]]
			})
			for _, oi := range order {
				pick := grp[oi]
				fixes := make([]fix, 0, len(nd.fixes)+len(grp))
				fixes = append(fixes, nd.fixes...)
				for _, j := range grp {
					if j == pick {
						fixes = append(fixes, fix{j, 1, 1})
					} else {
						fixes = append(fixes, fix{j, 0, 0})
					}
				}
				stack = append(stack, node{fixes: fixes, bound: res.Obj, depth: nd.depth + 1})
			}
			continue
		}

		if branchVar == -1 {
			// Integral: candidate incumbent.
			if res.Obj < incObj-opt.AbsGap {
				incObj = res.Obj
				incumbent = roundInts(res.X, isInt)
				if opt.Log != nil {
					opt.Log("ilp: incumbent obj=%g after %d nodes", incObj, sol.Nodes)
				}
			}
			continue
		}

		if opt.RoundingHeuristic {
			if cand := roundCandidate(res.X, isInt); cand != nil {
				if ok, obj := checkFeasibleWithBounds(p, q, cand); ok && obj < incObj-opt.AbsGap {
					incObj = obj
					incumbent = cand
					if opt.Log != nil {
						opt.Log("ilp: rounding incumbent obj=%g after %d nodes", obj, sol.Nodes)
					}
				}
			}
		}

		v := res.X[branchVar]
		fl := math.Floor(v)
		// Child exploring the side nearer the LP value first (pushed last).
		down := node{
			fixes: appendFix(nd.fixes, fix{branchVar, math.Inf(-1), fl}),
			bound: res.Obj,
			depth: nd.depth + 1,
		}
		up := node{
			fixes: appendFix(nd.fixes, fix{branchVar, fl + 1, math.Inf(1)}),
			bound: res.Obj,
			depth: nd.depth + 1,
		}
		if v-fl > 0.5 {
			stack = append(stack, down, up) // explore up first
		} else {
			stack = append(stack, up, down) // explore down first
		}
	}

	exhausted := len(stack) == 0

	// The proven bound is the min over remaining open nodes (or the root
	// bound if the tree was fully explored the bound equals the incumbent).
	bound := incObj
	if !exhausted {
		for _, nd := range stack {
			if nd.bound < bound {
				bound = nd.bound
			}
		}
		if !rootSolved {
			bound = math.Inf(-1)
		}
	}
	if math.IsInf(incObj, 1) && rootSolved && exhausted {
		sol.Status = Infeasible
		sol.Bound = rootBound
		return sol, nil
	}

	sol.Bound = bound
	if incumbent != nil {
		sol.X = incumbent
		sol.Obj = incObj
		if exhausted || incObj-bound <= opt.AbsGap {
			sol.Status = Optimal
			sol.Bound = incObj
		} else {
			sol.Status = Feasible
		}
	} else if exhausted {
		sol.Status = Infeasible
	}
	return sol, nil
}

func appendFix(fs []fix, f fix) []fix {
	out := make([]fix, len(fs)+1)
	copy(out, fs)
	out[len(fs)] = f
	return out
}

func roundInts(x []float64, isInt map[int]bool) []float64 {
	out := append([]float64(nil), x...)
	for j := range out {
		if isInt[j] {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

func roundCandidate(x []float64, isInt map[int]bool) []float64 {
	out := append([]float64(nil), x...)
	changed := false
	for j := range out {
		if isInt[j] {
			r := math.Round(out[j])
			if math.Abs(r-out[j]) > intTol {
				changed = true
			}
			out[j] = r
		}
	}
	if !changed {
		return nil
	}
	return out
}

// checkFeasible verifies x against all rows and bounds of the original
// problem and returns its objective value.
func checkFeasible(p *Problem, x []float64) (bool, float64) {
	return checkFeasibleWithBounds(p, p.LP, x)
}

func checkFeasibleWithBounds(p *Problem, bounds *lp.Problem, x []float64) (bool, float64) {
	if len(x) != p.LP.NumVars() {
		return false, 0
	}
	for j := 0; j < p.LP.NumVars(); j++ {
		lo, hi := bounds.Bounds(j)
		if x[j] < lo-1e-6 || x[j] > hi+1e-6 {
			return false, 0
		}
	}
	if !p.LP.RowsSatisfied(x, 1e-6) {
		return false, 0
	}
	obj := 0.0
	for j := 0; j < p.LP.NumVars(); j++ {
		obj += p.LP.Obj(j) * x[j]
	}
	return true, obj
}

// Binary adds a new 0-1 variable to prob's LP and registers it as integral.
// It returns the variable index. This is a convenience for model builders.
func Binary(p *Problem) int {
	j := p.LP.AddVar()
	p.LP.SetBounds(j, 0, 1)
	p.Integers = append(p.Integers, j)
	return j
}

// SortIntegers normalizes the integer index list (useful after bulk model
// construction so branching order is deterministic).
func (p *Problem) SortIntegers() {
	sort.Ints(p.Integers)
}

// Package ilp implements a branch-and-bound integer linear programming
// solver on top of the warm-started revised simplex solver in internal/lp.
//
// It supports mixed problems in which a subset of the variables is marked
// integral (in practice, the 0-1 placement variables of the temporal
// partitioning model). Branching fixes variable bounds — a B&B node is a
// bound delta, not a problem copy: every search worker owns a single
// lp.Solver, applies a node's bound fixes to it, and warm starts from the
// basis of the previously solved node (the dual simplex typically
// re-optimizes in a handful of pivots). Nodes carry their parent's basis
// snapshot so a worker picking up a foreign subtree can seed its solver
// via ResolveFrom.
//
// The search is branch-and-cut: when Options.Separate is set, each node's
// fractional LP point is handed to the callback in rounds, violated valid
// inequalities it returns are appended to the live solver (lp.Solver.
// AddRows keeps the basis, so each round re-enters through the dual
// simplex), and branching happens only when separation dries up or the
// round budget is exhausted. Global cuts flow through a shared, size-
// bounded pool — deduplicated by normalized row hash, aged by
// tight-at-optimum activity, compacted when full — so a cut found in one
// subtree strengthens every worker; node-local cuts ride on the node and
// its descendants. See cuts.go for the validity contract.
//
// The search also learns from failure: a subtree fathomed INFEASIBLE (an
// empty bound box, an Options.NodeBound infeasibility proof, or an
// infeasible node LP) is encoded as a no-good cut over its fixed 0-1
// bounds and fed into the same pool, so symmetric copies of a dead
// arrangement prune without re-proving it — see conflict.go for the
// derivation, minimization, and why bound-dominated fathoms never learn.
//
// The search is organised prune-first: open nodes live on a bound-ordered
// priority heap (best-first, with LIFO tie-breaking so equal-bound children
// dive like DFS and keep the warm-start locality), every node is screened
// against the incumbent — and, when Options.NodeBound is set, against a
// caller-supplied combinatorial lower bound — before its LP relaxation is
// ever solved, and once the heap minimum cannot beat the incumbent the
// whole remaining frontier is discarded in one step. Branching prefers SOS1
// groups; leftover fractional integer variables are chosen by pseudo-cost
// scores learned during the search.
//
// With Options.Workers > 1 independent subtrees are farmed out to worker
// goroutines that share one incumbent; the objective value found is
// identical to the sequential search (the set of explored nodes may
// differ). The solver keeps the best incumbent and its bound, honours node
// and time limits, and can report a proven-optimal or best-effort solution.
package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
)

// Status reports the outcome of an ILP solve.
type Status int

const (
	// Optimal means the incumbent was proven optimal.
	Optimal Status = iota
	// Feasible means an incumbent was found but the search hit a limit
	// before proving optimality.
	Feasible
	// Infeasible means no integral feasible point exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
	// Limit means a node/time limit was hit before any incumbent was found.
	Limit
	// Timeout means the search was stopped by a wall-clock deadline —
	// Options.Deadline, Options.TimeLimit, or context-deadline expiry —
	// before proving its claim. X holds the best incumbent when one was
	// found (X == nil means the deadline fired first); Bound and Gap stay
	// valid and BoundTrusted keeps its usual meaning, so the caller can
	// report an honest anytime result.
	Timeout
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	case Timeout:
		return "timeout"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem couples an LP with integrality requirements.
type Problem struct {
	// LP is the underlying relaxation. Bounds on integer variables should
	// already be set (e.g. [0,1] for binaries).
	LP *lp.Problem
	// Integers lists the variable indices that must take integral values.
	Integers []int
	// SOS1 lists groups of binary variables of which exactly one is 1 in
	// any feasible solution (the caller must have added the corresponding
	// equality row). The solver branches on whole groups — one child per
	// member, fixing it to 1 and the rest to 0 — which is dramatically
	// stronger than single-variable branching for assignment structures
	// like the temporal partitioning y[t][p] variables.
	SOS1 [][]int
}

// Options tunes the branch-and-bound search. The zero value gives sensible
// defaults.
type Options struct {
	// MaxNodes bounds the number of explored B&B nodes (0 = default 200000).
	MaxNodes int
	// TimeLimit bounds wall-clock search time (0 = no limit).
	TimeLimit time.Duration
	// Deadline, when non-zero, is an absolute wall-clock bound on the
	// search: at the deadline the search stops cleanly and reports the
	// best incumbent (or its absence) with Status Timeout — the anytime
	// contract. It composes with TimeLimit (the earlier of the two wins)
	// and with Context deadline expiry, which is mapped to the same cause.
	Deadline time.Time
	// AbsGap stops the search when bound and incumbent are closer than this
	// (default 1e-6).
	AbsGap float64
	// RoundingHeuristic, when true (default via DefaultOptions), attempts to
	// round each fractional LP solution to a feasible incumbent.
	RoundingHeuristic bool
	// Incumbent optionally provides a known feasible point to warm-start
	// pruning. Its objective is evaluated against the LP objective.
	Incumbent []float64
	// NodeBound, when non-nil, supplies an LP-free combinatorial lower
	// bound on the objective over a node's bound box. bounds is the node's
	// variable-bound accessor (the root bounds with the node's branching
	// fixes applied). feasible=false asserts the box provably contains no
	// feasible point; otherwise bnd must be a valid lower bound on every
	// feasible objective value in the box (it is compared against the
	// incumbent to fathom the node before the simplex runs). A callback
	// that overclaims makes the search wrongly prune subtrees, so it must
	// err on the side of weaker bounds. It must be safe for concurrent use
	// when Workers > 1.
	NodeBound func(bounds func(j int) (lo, hi float64)) (bnd float64, feasible bool)
	// NodeBoundProbe, when non-nil, is used instead of NodeBound for
	// conflict-minimization probes (conflict.go re-queries the bound on fix
	// subsets, many times per learned conflict). It must implement exactly
	// the same bound, but a caller that counts NodeBound fathoms for
	// telemetry can supply an uncounted twin here so minimization probes do
	// not inflate the counters. Defaults to NodeBound.
	NodeBoundProbe func(bounds func(j int) (lo, hi float64)) (bnd float64, feasible bool)
	// Separate, when non-nil, turns the search into branch-and-cut: it is
	// invoked in rounds at every node whose LP relaxation is fractional,
	// before branching, and returns valid inequalities violated by the
	// node's LP point (see the Cut validity contract in cuts.go). Cuts the
	// point does not violate beyond a tolerance are dropped; the rest are
	// added to the node's live LP, which is re-solved warm, and the next
	// round begins. The node branches only when a round yields no new cut,
	// the point turns integral, or the round budget is exhausted. The
	// callback must be safe for concurrent use when Workers > 1.
	Separate func(pt *SeparationPoint) []Cut
	// MaxCutRounds caps separation rounds per node at every depth. It is
	// the blunt override; leave it 0 and use RootCutRounds/NodeCutRounds
	// for the split budget (root cuts are shared by the whole tree and
	// deserve the larger one).
	MaxCutRounds int
	// RootCutRounds caps separation rounds at the root node (0 = default
	// 8). Ignored when MaxCutRounds is set.
	RootCutRounds int
	// NodeCutRounds caps separation rounds at non-root nodes (0 = default
	// 2). Ignored when MaxCutRounds is set.
	NodeCutRounds int
	// MaxCuts bounds the global cut pool (0 = default 512). Past the bound
	// the pool evicts its least active half.
	MaxCuts int
	// MinConflictDepth sets the shallowest node depth at which conflict
	// (no-good) learning applies; fathomed-infeasible nodes above it never
	// emit conflict cuts. 0 selects the default 1 — every non-root node
	// learns. Conflict learning is active whenever Separate is set (the
	// learned no-goods ride the same shared cut pool); see conflict.go.
	MinConflictDepth int
	// Workers sets the number of concurrent search workers (<= 1 means the
	// sequential search). Each worker owns its own lp.Solver over the shared
	// model and the workers share one incumbent, so the optimal objective
	// found is identical to the sequential search.
	Workers int
	// Pricing selects the dual simplex pricing rule for every worker's
	// solver: lp.PricingDevex (the zero value, default) or
	// lp.PricingSteepestEdge. Exact steepest edge spends one extra FTRAN
	// per dual pivot to maintain exact row weights; it tends to pay off on
	// models where devex's approximate weights drift and inflate the pivot
	// count. The optimum found is identical either way.
	Pricing lp.Pricing
	// Stop, when non-nil, aborts the search as soon as it is closed. The
	// partial result is reported exactly as if a node limit had been hit.
	// This lets a caller racing several solves (e.g. the speculative
	// partition-count probes in internal/tempart) reclaim workers early.
	Stop <-chan struct{}
	// Context, when non-nil, aborts the search when the context is
	// cancelled, exactly like Stop (the two compose; either one fires).
	// This is how request-scoped cancellation in internal/service reaches
	// the branch-and-bound loop: an HTTP job cancel propagates down to the
	// next limitHit check of every search worker.
	Context context.Context
	// Log, when non-nil, receives progress lines. With Workers > 1 it must
	// be safe for concurrent use.
	Log func(format string, args ...any)
	// Trace, when non-nil, receives search telemetry: separation-round and
	// cut counters, incumbent improvements, and a sampled node event every
	// traceNodeSample-th explored node (depth, LP bound, incumbent,
	// frontier size). A nil Trace costs one nil check per node — the
	// allocation-free hot path is unchanged.
	Trace *obs.Recorder

	// testCapturePool, when non-nil, receives the final global cut pool
	// contents after the search (validity property tests only; unexported
	// so it is invisible outside the package).
	testCapturePool func([]lp.CutRow)
}

// DefaultOptions returns the options used when a zero Options is passed.
func DefaultOptions() Options {
	return Options{
		MaxNodes:          200000,
		AbsGap:            1e-6,
		RoundingHeuristic: true,
	}
}

// Solution is the result of an ILP solve.
type Solution struct {
	Status Status
	// X is the incumbent point (valid for Optimal and Feasible).
	X []float64
	// Obj is the incumbent objective value.
	Obj float64
	// Bound is the best proven lower bound on the optimum. See BoundTrusted.
	Bound float64
	// BoundTrusted is false when nodes had to be discarded because their LP
	// relaxation hit the simplex iteration limit. Bound remains valid (the
	// discarded subtrees' parent bounds enter it, so a within-AbsGap
	// incumbent may still be reported Optimal), but exhaustive-search
	// claims — Optimal via tree exhaustion, or Infeasible — are degraded.
	BoundTrusted bool
	// Dropped counts discarded (unexplorable) nodes.
	Dropped int
	// Nodes is the number of B&B nodes explored (LP relaxation solved).
	Nodes int
	// PrunedCombinatorial counts nodes fathomed by Options.NodeBound — the
	// combinatorial bound proved the box infeasible or no better than the
	// incumbent — without ever running the simplex.
	PrunedCombinatorial int
	// LPSolvesSkipped counts all nodes discarded without an LP solve:
	// combinatorially fathomed nodes plus nodes whose parent bound already
	// matched the incumbent when they were popped (including frontier
	// drains once the heap minimum cannot improve the incumbent).
	LPSolvesSkipped int
	// LPIterations accumulates simplex pivots across all nodes.
	LPIterations int
	// CutsAdded counts distinct cuts generated by Options.Separate and
	// admitted to the search (pool-deduplicated global cuts plus node-local
	// cuts). Conflict cuts are counted separately in ConflictCuts.
	CutsAdded int
	// SeparationRounds counts node LP re-solves triggered by cut rounds.
	SeparationRounds int
	// ConflictCuts counts no-good cuts learned from infeasibility-fathomed
	// subtrees and admitted to the shared pool (see conflict.go).
	ConflictCuts int
	// CutsByName breaks CutsAdded down by the separator-assigned Cut.Name
	// (nil when no cuts were admitted). This is what lets callers report
	// per-family telemetry (e.g. how many Chvátal–Gomory cuts fired)
	// without a side channel.
	CutsByName map[string]int
	// Solver aggregates the underlying lp.Solver activity across all search
	// workers (warm vs cold solves, dual-repair pivots).
	Solver lp.SolverStats
}

// SeparationPoint is the node state handed to Options.Separate. X is the
// node's current (fractional) LP point; it must not be retained or
// modified. Bounds exposes the node's variable-bound box (the root bounds
// with the branching fixes applied) and is only valid during the call.
type SeparationPoint struct {
	X      []float64
	Obj    float64
	Depth  int
	Round  int
	Bounds func(j int) (lo, hi float64)
}

// maxCutRounds resolves the per-node separation round budget.
func (o *Options) maxCutRounds(depth int) int {
	if o.MaxCutRounds > 0 {
		return o.MaxCutRounds
	}
	if depth == 0 {
		if o.RootCutRounds > 0 {
			return o.RootCutRounds
		}
		return 8
	}
	if o.NodeCutRounds > 0 {
		return o.NodeCutRounds
	}
	return 2
}

// Gap returns Obj - Bound (0 for proven optimal solutions).
func (s *Solution) Gap() float64 {
	if s.X == nil {
		return math.Inf(1)
	}
	return s.Obj - s.Bound
}

const intTol = 1e-6

// stopCause records why limitHit tripped, so finish can distinguish a
// deadline stop (reported as Timeout — the anytime contract) from node
// limits, Stop-channel aborts, and plain cancellation.
type stopCause int

const (
	causeNone stopCause = iota
	causeNodes
	causeDeadline
	causeStop
	causeCancel
)

// sharedBasis is a refcounted basis snapshot shared by all children of one
// branched node. The snapshot's slices come from (and return to) the search
// state's basis pool: when the last child releases its reference the
// snapshot is recycled, so the parallel search stops allocating two
// O(n+2m) slices per branched node once the pool warms up.
type sharedBasis struct {
	bs   *lp.Basis
	refs atomic.Int32
}

// get returns the underlying snapshot (nil-safe).
func (sb *sharedBasis) get() *lp.Basis {
	if sb == nil {
		return nil
	}
	return sb.bs
}

// node is one open branch-and-bound subproblem.
type node struct {
	fixes []fix   // bound changes relative to the root
	bound float64 // parent LP bound (heap priority, valid subtree bound)
	depth int
	seq   int64        // push order; ties on bound pop LIFO (dive like DFS)
	basis *sharedBasis // parent basis (warm-start seed for foreign workers)
	cuts  []lp.CutRow  // node-local cuts inherited from ancestors (never mutated)

	// Pseudo-cost bookkeeping: the single-variable branch that created this
	// node (branchVar < 0 for the root and SOS1 children).
	branchVar  int
	branchUp   bool
	branchFrac float64 // fractional part of branchVar at the parent
}

type fix struct {
	j      int
	lo, hi float64
}

// searcher is the per-worker search state: one reusable solver plus the
// bookkeeping to apply and undo node bound fixes against the root bounds.
type searcher struct {
	p       *Problem
	opt     *Options
	st      *searchState
	solver  *lp.Solver
	rootLo  []float64
	rootHi  []float64
	applied []int // variables whose bounds currently differ from the root
	isInt   []bool

	// Cut bookkeeping: the solver's added-row block is the shared pool's
	// prefix [0, poolApplied) (at generation poolGen), optionally followed
	// by the current node's local cuts (localCuts rows). poolRows/poolHashes
	// mirror the applied pool prefix for activity scoring.
	poolApplied int
	poolGen     int
	poolRows    []lp.CutRow
	poolHashes  []uint64
	// localSet is the node-local cut slice currently applied (nd.cuts of
	// the node that installed it). Node cut slices are never mutated —
	// children copy-on-append — so slice identity (length + backing array)
	// decides whether a popped node's inherited set is already applied,
	// which keeps a whole subtree below a local cut warm instead of
	// rebuilding the solver at every descendant.
	localSet []lp.CutRow
}

// sameLocalCuts reports whether cuts is exactly the applied local set.
func (w *searcher) sameLocalCuts(cuts []lp.CutRow) bool {
	if len(cuts) != len(w.localSet) {
		return false
	}
	return len(cuts) == 0 || &cuts[0] == &w.localSet[0]
}

func newSearcher(p *Problem, opt *Options, st *searchState, isInt []bool) *searcher {
	n := p.LP.NumVars()
	w := &searcher{
		p:      p,
		opt:    opt,
		st:     st,
		solver: lp.NewSolver(p.LP),
		rootLo: make([]float64, n),
		rootHi: make([]float64, n),
		isInt:  isInt,
	}
	// Node re-solves share the solver-owned Solution buffer; everything the
	// search retains from a result (incumbents, rounding candidates) is
	// copied out explicitly.
	w.solver.SetReuseSolution(true)
	w.solver.SetPricing(opt.Pricing)
	for j := 0; j < n; j++ {
		w.rootLo[j], w.rootHi[j] = p.LP.Bounds(j)
	}
	return w
}

// applyFixes rebinds the solver to nd's box: previously fixed variables are
// restored to their root bounds and the node's fixes are applied in order
// (repeated fixes of one variable intersect). Returns false when the box is
// empty.
func (w *searcher) applyFixes(fixes []fix) bool {
	for _, j := range w.applied {
		w.solver.SetVarBounds(j, w.rootLo[j], w.rootHi[j])
	}
	w.applied = w.applied[:0]
	for _, f := range fixes {
		lo, hi := w.solver.Bounds(f.j)
		nlo, nhi := math.Max(lo, f.lo), math.Min(hi, f.hi)
		w.applied = append(w.applied, f.j)
		if nlo > nhi {
			return false
		}
		w.solver.SetVarBounds(f.j, nlo, nhi)
	}
	return true
}

// dropCuts removes every added row from the solver and resets the pool
// bookkeeping (the basis goes cold; used on pool compaction and when the
// node-local cut set changes).
func (w *searcher) dropCuts() {
	w.solver.DropAddedRows()
	w.poolApplied = 0
	w.poolRows = w.poolRows[:0]
	w.poolHashes = w.poolHashes[:0]
	w.localSet = nil
}

// bindCuts makes the solver's added rows hold the shared pool's cuts plus
// exactly the given node-local set. It is the single rebind entry point:
// a pool generation change inside syncPool drops everything (including
// previously applied locals), and the re-check afterwards re-adds the
// local set, so the node never silently loses its inherited cuts.
func (w *searcher) bindCuts(cuts []lp.CutRow) error {
	if !w.sameLocalCuts(cuts) {
		w.dropCuts()
	}
	if err := w.syncPool(); err != nil {
		return err
	}
	if len(cuts) > 0 && !w.sameLocalCuts(cuts) {
		if err := w.solver.AddRows(cuts); err != nil {
			return fmt.Errorf("ilp: applying node-local cuts: %w", err)
		}
		w.localSet = cuts
	}
	return nil
}

// syncPool pulls global cuts this solver has not applied yet. On a pool
// generation change (compaction) the whole added-row block is rebuilt.
func (w *searcher) syncPool() error {
	cp := w.st.pool
	if cp == nil {
		return nil
	}
	rows, hashes, gen, total := cp.fetch(w.poolApplied, w.poolGen)
	if gen != w.poolGen {
		w.dropCuts()
		w.poolGen = gen
		rows, hashes, _, total = cp.fetch(0, gen)
	}
	if len(rows) > 0 {
		if err := w.solver.AddRows(rows); err != nil {
			return fmt.Errorf("ilp: applying pool cuts: %w", err)
		}
		w.poolRows = append(w.poolRows, rows...)
		w.poolHashes = append(w.poolHashes, hashes...)
		w.poolApplied = total
	}
	return nil
}

// recordCutActivity credits pool cuts binding at the node optimum x.
func (w *searcher) recordCutActivity(x []float64) {
	if w.st.pool == nil || len(w.poolRows) == 0 {
		return
	}
	var tight []uint64
	for i := range w.poolRows {
		r := &w.poolRows[i]
		if math.Abs(r.Eval(x)-r.RHS) <= cutTightTol {
			tight = append(tight, w.poolHashes[i])
		}
	}
	w.st.pool.touch(tight)
}

// applyCuts runs one separation round at a node: call Options.Separate on
// the LP point, admit the violated valid cuts (global ones to the shared
// pool, local ones to the solver and the node), and sync the solver with
// the pool. It returns (admitted, progressed): admitted counts distinct
// cuts this round generated, progressed reports whether the node's LP
// gained any row (possibly from another worker's cuts) and a re-solve is
// worthwhile.
func (w *searcher) applyCuts(nd *node, res *lp.Solution, round int, r *nodeResult) (int, bool, error) {
	before := w.solver.AddedRows()
	cuts := w.opt.Separate(&SeparationPoint{
		X: res.X, Obj: res.Obj, Depth: nd.depth, Round: round,
		Bounds: w.solver.Bounds,
	})
	nVars := w.p.LP.NumVars()
	admitted := 0
	admit := func(name string) {
		admitted++
		if r.cutNames == nil {
			r.cutNames = make(map[string]int)
		}
		r.cutNames[name]++
	}
	var locals []lp.CutRow
	for i := range cuts {
		c := &cuts[i]
		if !validCut(nVars, c) || c.Violation(res.X) < cutViolationTol {
			continue
		}
		if c.Global {
			if w.st.pool.add(c.CutRow) {
				admit(c.Name)
			}
		} else {
			locals = append(locals, c.CutRow)
			admit(c.Name)
		}
	}
	// bindCuts (not a bare pool sync) so a pool compaction mid-round
	// re-establishes the node's inherited local cuts after the drop.
	if err := w.bindCuts(nd.cuts); err != nil {
		return 0, false, err
	}
	if len(locals) > 0 {
		if err := w.solver.AddRows(locals); err != nil {
			return 0, false, fmt.Errorf("ilp: applying node-local cuts: %w", err)
		}
		merged := make([]lp.CutRow, 0, len(nd.cuts)+len(locals))
		merged = append(append(merged, nd.cuts...), locals...)
		nd.cuts = merged // fresh slice: siblings keep the old view
		w.localSet = merged
	}
	// Progress means the node LP's row set changed and a re-solve is
	// worthwhile: we admitted something ourselves (even if a pool
	// compaction shrank the applied row count below `before`), or other
	// workers' cuts arrived in the sync.
	return admitted, admitted > 0 || w.solver.AddedRows() != before, nil
}

// integralPoint reports whether every integer variable is integral in x.
func integralPoint(x []float64, ints []int) bool {
	for _, j := range ints {
		f := x[j] - math.Floor(x[j])
		if f > intTol && f < 1-intTol {
			return false
		}
	}
	return true
}

// nodeResult is what processing one node produces. Exactly one of the
// following is meaningful depending on lpStatus:
// children/incumbent (Optimal), nothing (Infeasible/IterLimit/Unbounded),
// pruned (fathomed before the LP ran).
type nodeResult struct {
	lpStatus     lp.Status
	pruned       bool    // fathomed by the combinatorial bound; no LP was run
	obj          float64 // node LP bound (valid when lpStatus == Optimal)
	iters        int
	cutsAdded    int            // cuts generated at this node (see Solution.CutsAdded)
	cutNames     map[string]int // admitted cuts by separator name
	sepRounds    int            // LP re-solves triggered by separation at this node
	conflictCuts int            // no-goods learned from this node's fathoming
	children     []node
	// incumbent is a verified-feasible integral candidate with objective
	// incObj (nil when the node produced none worth keeping).
	incumbent []float64
	incObj    float64
}

// processNode screens one node (combinatorial bound first), then solves its
// LP and applies the branching rules. incObj is the incumbent objective
// known to the caller (used for pruning and for filtering incumbent
// candidates; the caller revalidates under its own lock before accepting).
func (w *searcher) processNode(nd *node, incObj float64) (*nodeResult, error) {
	r := &nodeResult{incObj: math.Inf(1)}

	if !w.applyFixes(nd.fixes) {
		r.lpStatus = lp.Infeasible
		r.conflictCuts = w.learnConflict(nd, false)
		return r, nil
	}

	// LP-free fathoming: if the caller's combinatorial bound already proves
	// the box infeasible or no better than the incumbent, the simplex never
	// runs for this node — and neither does the cut-view rebind below, so
	// fathomed nodes pay no AddRows reinversion. Only the infeasible case
	// learns a conflict: a bound-dominated box may still hold feasible
	// (just not better) points, which a no-good would wrongly cut off.
	if w.opt.NodeBound != nil {
		if bnd, feasible := w.opt.NodeBound(w.solver.Bounds); !feasible || bnd > incObj-w.opt.AbsGap {
			r.pruned = true
			r.lpStatus = lp.Infeasible
			if !feasible {
				r.conflictCuts = w.learnConflict(nd, true)
			}
			return r, nil
		}
	}

	// Rebind the solver's added-row block to this node's cut view: the
	// shared pool's cuts plus the node's inherited local cuts. Nodes whose
	// local set is already applied (no local cuts anywhere, or a dive
	// within one subtree) reuse the standing rows and only append what
	// other workers separated since.
	if err := w.bindCuts(nd.cuts); err != nil {
		return nil, err
	}

	solveLP := func(seed *lp.Basis) (*lp.Solution, error) {
		for attempt := 0; ; attempt++ {
			var res *lp.Solution
			var err error
			if !w.solver.Warm() && seed != nil {
				res, err = w.solver.ResolveFrom(seed)
			} else {
				res, err = w.solver.Solve()
			}
			if err != nil {
				return nil, fmt.Errorf("ilp: node LP: %w", err)
			}
			r.iters += res.Iterations
			r.lpStatus = res.Status
			if res.Status != lp.Optimal {
				return res, nil
			}
			// Guard against numerical drift of the incrementally updated
			// warm basis: an "optimal" point that violates the original
			// rows (or the node's cut rows) forces one from-scratch
			// re-solve of the node.
			if attempt == 0 && (!w.p.LP.RowsSatisfied(res.X, 1e-6) ||
				!w.solver.AddedRowsSatisfied(res.X, 1e-6)) {
				w.solver.Invalidate()
				continue
			}
			return res, nil
		}
	}

	res, err := solveLP(nd.basis.get())
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		if res.Status == lp.Infeasible {
			// The node LP (original rows plus valid cuts) admits no point at
			// all, so the box holds no integral feasible solution either:
			// learn the no-good. The LP proof gives no subset certificate,
			// so the full fix set is kept (the pool dedups repeats).
			r.conflictCuts = w.learnConflict(nd, false)
		}
		return r, nil
	}

	// Separation rounds: while the point is fractional, could still beat
	// the incumbent, and the round budget lasts, grow the node LP with
	// violated cuts and re-solve warm (the dual simplex re-enters from the
	// current basis; the new rows' slacks are the only infeasibilities).
	// Branching below only happens when separation dries up.
	if w.opt.Separate != nil {
		maxRounds := w.opt.maxCutRounds(nd.depth)
		for round := 0; round < maxRounds; round++ {
			if res.Obj > incObj-w.opt.AbsGap || integralPoint(res.X, w.p.Integers) {
				break
			}
			admitted, progressed, err := w.applyCuts(nd, res, round, r)
			if err != nil {
				return nil, err
			}
			r.cutsAdded += admitted
			if !progressed {
				break
			}
			r.sepRounds++
			res, err = solveLP(nil)
			if err != nil {
				return nil, err
			}
			if res.Status != lp.Optimal {
				// Valid cuts may legitimately empty a node box holding no
				// integral point: the node is fathomed (and, for a clean
				// Infeasible verdict, its no-good learned).
				if res.Status == lp.Infeasible {
					r.conflictCuts += w.learnConflict(nd, false)
				}
				return r, nil
			}
		}
	}
	w.recordCutActivity(res.X)
	r.obj = res.Obj

	if res.Obj > incObj-w.opt.AbsGap {
		return r, nil // bound prune: no children
	}

	// Prefer SOS1 group branching: pick the most undecided group (the one
	// whose largest member value is smallest).
	bestGroup := -1
	bestMax := 2.0
	for gi, grp := range w.p.SOS1 {
		gmax, fractional := 0.0, false
		for _, j := range grp {
			v := res.X[j]
			if v > intTol && v < 1-intTol {
				fractional = true
			}
			if v > gmax {
				gmax = v
			}
		}
		if fractional && gmax < bestMax {
			bestMax = gmax
			bestGroup = gi
		}
	}

	// Pseudo-cost selection among the fractional integer variables: score
	// each candidate by the estimated objective degradation of its two
	// children (product rule); unobserved directions fall back to the
	// global average, and with no history at all the rule degrades to
	// most-fractional.
	branchVar := -1
	branchFrac := 0.0
	if bestGroup < 0 {
		bestScore := -1.0
		w.st.pcMu.Lock()
		for _, j := range w.p.Integers {
			f := res.X[j] - math.Floor(res.X[j])
			if f <= intTol || f >= 1-intTol {
				continue
			}
			score := math.Max(w.st.pcDownEst(j)*f, 1e-9) * math.Max(w.st.pcUpEst(j)*(1-f), 1e-9)
			if score > bestScore*(1+1e-9) {
				bestScore = score
				branchVar = j
				branchFrac = f
			}
		}
		w.st.pcMu.Unlock()
	}

	if bestGroup < 0 && branchVar == -1 {
		// Integral: candidate incumbent.
		if res.Obj < incObj-w.opt.AbsGap {
			r.incumbent = roundInts(res.X, w.isInt)
			r.incObj = res.Obj
		}
		return r, nil
	}

	if w.opt.RoundingHeuristic {
		if cand := roundCandidate(res.X, w.isInt); cand != nil {
			if ok, obj := checkFeasibleBounds(w.p, w.solver.Bounds, cand); ok && obj < incObj-w.opt.AbsGap {
				r.incumbent = cand
				r.incObj = obj
			}
		}
	}

	// A parent-basis snapshot is only ever consumed by a worker whose own
	// solver has gone cold, which needs Workers > 1 to happen with foreign
	// subtrees; the sequential best-first search pops equal-bound children
	// right after their parent (LIFO ties) and warm starts from its own
	// previous basis, so skip the two O(n+2m) copies per branched node.
	// The snapshot's slices come from the shared pool and are refcounted
	// back into it when the last child is consumed.
	var parentBasis *sharedBasis
	if w.opt.Workers > 1 {
		pooled := w.st.basisPool.Get().(*lp.Basis)
		if bs := w.solver.BasisInto(pooled); bs != nil {
			parentBasis = &sharedBasis{bs: bs} // shared by all children
		} else {
			w.st.basisPool.Put(pooled)
		}
	}

	if bestGroup >= 0 {
		grp := w.p.SOS1[bestGroup]
		// One child per member, fixing it to 1 and siblings to 0. Children
		// are ordered ascending by LP value so the most promising child is
		// pushed last and pops first among equal bounds.
		order := make([]int, len(grp))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return res.X[grp[order[a]]] < res.X[grp[order[b]]]
		})
		for _, oi := range order {
			pick := grp[oi]
			fixes := make([]fix, 0, len(nd.fixes)+len(grp))
			fixes = append(fixes, nd.fixes...)
			for _, j := range grp {
				if j == pick {
					fixes = append(fixes, fix{j, 1, 1})
				} else {
					fixes = append(fixes, fix{j, 0, 0})
				}
			}
			r.children = append(r.children, node{
				fixes: fixes, bound: res.Obj, depth: nd.depth + 1,
				basis: parentBasis, branchVar: -1, cuts: nd.cuts,
			})
		}
		parentBasis.setRefs(len(r.children))
		return r, nil
	}

	v := res.X[branchVar]
	fl := math.Floor(v)
	down := node{
		fixes:     appendFix(nd.fixes, fix{branchVar, math.Inf(-1), fl}),
		bound:     res.Obj,
		depth:     nd.depth + 1,
		basis:     parentBasis,
		cuts:      nd.cuts,
		branchVar: branchVar, branchUp: false, branchFrac: branchFrac,
	}
	up := node{
		fixes:     appendFix(nd.fixes, fix{branchVar, fl + 1, math.Inf(1)}),
		bound:     res.Obj,
		depth:     nd.depth + 1,
		basis:     parentBasis,
		cuts:      nd.cuts,
		branchVar: branchVar, branchUp: true, branchFrac: branchFrac,
	}
	// Push the side nearer the LP value last so it pops first on a tie.
	if v-fl > 0.5 {
		r.children = append(r.children, down, up)
	} else {
		r.children = append(r.children, up, down)
	}
	parentBasis.setRefs(len(r.children))
	return r, nil
}

// setRefs arms the refcount once the number of sharing children is known
// (nil-safe; every child release decrements, the last one recycles).
func (sb *sharedBasis) setRefs(n int) {
	if sb != nil {
		sb.refs.Store(int32(n))
	}
}

// Solve runs branch and bound and returns the best solution found.
func Solve(p *Problem, opt Options) (*Solution, error) {
	def := DefaultOptions()
	if opt.MaxNodes == 0 {
		opt.MaxNodes = def.MaxNodes
	}
	if opt.AbsGap == 0 {
		opt.AbsGap = def.AbsGap
	}
	nVars := p.LP.NumVars()
	isInt := make([]bool, nVars)
	for _, j := range p.Integers {
		if j < 0 || j >= nVars {
			return nil, fmt.Errorf("ilp: integer index %d out of range [0,%d)", j, nVars)
		}
		isInt[j] = true
	}

	st := &searchState{
		opt:          &opt,
		incObj:       math.Inf(1),
		droppedBound: math.Inf(1),
		pcUpSum:      make([]float64, nVars),
		pcDownSum:    make([]float64, nVars),
		pcUpN:        make([]int32, nVars),
		pcDownN:      make([]int32, nVars),
	}
	if opt.TimeLimit > 0 {
		st.deadline = time.Now().Add(opt.TimeLimit)
	}
	if !opt.Deadline.IsZero() && (st.deadline.IsZero() || opt.Deadline.Before(st.deadline)) {
		st.deadline = opt.Deadline
	}
	if opt.Separate != nil {
		st.pool = newCutPool(opt.MaxCuts)
	}
	st.cond = sync.NewCond(&st.mu)
	st.basisPool.New = func() any { return new(lp.Basis) }

	if opt.Incumbent != nil {
		if ok, obj := checkFeasibleBounds(p, p.LP.Bounds, opt.Incumbent); ok {
			st.incumbent = append([]float64(nil), opt.Incumbent...)
			st.incObj = obj
			if opt.Log != nil {
				opt.Log("ilp: warm-start incumbent obj=%g", obj)
			}
		}
	}

	root := newSearcher(p, &opt, st, isInt)
	searchers := []*searcher{root}
	st.pushNode(node{bound: math.Inf(-1), branchVar: -1})

	// The root node is always processed sequentially: it decides Unbounded,
	// establishes the root bound, and seeds the heap with first children.
	// A pre-closed Stop channel (a speculative probe already made moot) or a
	// zero budget skips even that.
	if st.limitHit() {
		// The unexplored root is DROPPED, not exhausted: finish must not
		// read the empty heap as a completed proof (a pre-expired deadline
		// would otherwise claim Infeasible without solving anything).
		st.dropped += len(st.heap)
		st.heap = nil
	} else if err := st.step(root); err != nil {
		return nil, err
	}
	if st.unbounded {
		return &Solution{Status: Unbounded, Bound: math.Inf(-1), Nodes: st.nodes,
			LPIterations: st.lpIters, BoundTrusted: true}, nil
	}

	if opt.Workers > 1 && len(st.heap) > 0 {
		var wg sync.WaitGroup
		for i := 0; i < opt.Workers; i++ {
			w := root
			if i > 0 {
				w = newSearcher(p, &opt, st, isInt)
				searchers = append(searchers, w)
			}
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				// Label the worker goroutine so -pprof profiles segment
				// B&B time per worker; a nil Context (batch/bench path)
				// skips the label machinery entirely.
				obs.Do(opt.Context, "worker", strconv.Itoa(id), func(context.Context) {
					st.runWorker(w)
				})
			}(i)
		}
		wg.Wait()
		if st.err != nil {
			return nil, st.err
		}
	} else {
		for len(st.heap) > 0 && !st.limitHit() {
			if err := st.step(root); err != nil {
				return nil, err
			}
		}
	}

	sol := st.finish()
	for _, w := range searchers {
		sol.Solver.Accumulate(w.solver.Stats)
	}
	return sol, nil
}

// searchState is the shared branch-and-bound state. The sequential search
// uses it without locking (except the pseudo-cost tables); workers
// serialize on mu.
type searchState struct {
	opt      *Options
	mu       sync.Mutex
	cond     *sync.Cond
	heap     []node // bound-ordered min-heap, ties pop LIFO
	seq      int64
	active   int
	stopped  bool
	err      error
	deadline time.Time
	cause    stopCause

	incumbent []float64
	incObj    float64

	// Pseudo-cost tables (per integer variable, both directions), guarded
	// by pcMu because workers read them outside mu. The g* aggregates keep
	// the unobserved-variable fallback O(1) per lookup.
	pcMu      sync.Mutex
	pcUpSum   []float64
	pcDownSum []float64
	pcUpN     []int32
	pcDownN   []int32
	gUpSum    float64
	gDownSum  float64
	gUpN      int32
	gDownN    int32

	// pool is the shared global-cut store (nil when Options.Separate is
	// unset; its own mutex serializes access from workers).
	pool *cutPool

	// basisPool recycles the slice storage of parent-basis snapshots
	// (parallel search only; see sharedBasis).
	basisPool sync.Pool

	nodes        int
	lpIters      int
	dropped      int
	prunedComb   int
	lpSkipped    int
	cutsAdded    int
	cutNames     map[string]int
	sepRounds    int
	conflictCuts int
	// droppedBound tracks the min parent bound among dropped nodes so the
	// reported Bound stays valid even when subtrees are discarded.
	droppedBound float64

	rootSolved bool
	rootBound  float64
	unbounded  bool
}

// ---- bound-ordered node heap (min bound first, LIFO on ties) ----

// nodeBefore reports whether a should pop before b.
func nodeBefore(a, b *node) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	return a.seq > b.seq
}

func (st *searchState) pushNode(nd node) {
	nd.seq = st.seq
	st.seq++
	st.heap = append(st.heap, nd)
	i := len(st.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nodeBefore(&st.heap[i], &st.heap[p]) {
			break
		}
		st.heap[i], st.heap[p] = st.heap[p], st.heap[i]
		i = p
	}
}

func (st *searchState) popNode() node {
	h := st.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = node{} // release fix/basis references
	st.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && nodeBefore(&h[l], &h[best]) {
			best = l
		}
		if r < last && nodeBefore(&h[r], &h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// pcUpEst / pcDownEst estimate the per-unit objective degradation of
// branching variable j up/down. Unobserved variables fall back to the
// running average over all observations of that direction, or a neutral 1
// (reducing the product rule to most-fractional) at the very start.
// Callers hold pcMu.
func (st *searchState) pcUpEst(j int) float64 {
	return pcEst(st.pcUpSum, st.pcUpN, j, st.gUpSum, st.gUpN)
}

func (st *searchState) pcDownEst(j int) float64 {
	return pcEst(st.pcDownSum, st.pcDownN, j, st.gDownSum, st.gDownN)
}

func pcEst(sum []float64, n []int32, j int, gSum float64, gN int32) float64 {
	if n[j] > 0 {
		return sum[j] / float64(n[j])
	}
	if gN > 0 {
		return gSum / float64(gN)
	}
	return 1
}

// recordPseudoCost folds the observed LP degradation of a branched child
// into the tables.
func (st *searchState) recordPseudoCost(nd *node, childObj float64) {
	j := nd.branchVar
	if j < 0 || math.IsInf(nd.bound, -1) {
		return
	}
	delta := childObj - nd.bound
	if delta < 0 {
		delta = 0
	}
	f := nd.branchFrac
	if f <= intTol || f >= 1-intTol {
		return
	}
	st.pcMu.Lock()
	if nd.branchUp {
		st.pcUpSum[j] += delta / (1 - f)
		st.pcUpN[j]++
		st.gUpSum += delta / (1 - f)
		st.gUpN++
	} else {
		st.pcDownSum[j] += delta / f
		st.pcDownN[j]++
		st.gDownSum += delta / f
		st.gDownN++
	}
	st.pcMu.Unlock()
}

// limitHit reports whether the search must stop, recording WHY in st.cause
// (first cause wins; every trigger is monotone, so caching it is sound).
// finish uses the cause to label a truncated search honestly: a deadline
// stop becomes Timeout, everything else keeps the Feasible/Limit labels.
// The parallel path calls this under st.mu; the sequential path is
// single-threaded, so the unguarded write is safe in both.
func (st *searchState) limitHit() bool {
	if st.cause != causeNone {
		return true
	}
	if st.nodes >= st.opt.MaxNodes {
		st.cause = causeNodes
		return true
	}
	if !st.deadline.IsZero() && time.Now().After(st.deadline) {
		st.cause = causeDeadline
		return true
	}
	if st.opt.Stop != nil {
		select {
		case <-st.opt.Stop:
			st.cause = causeStop
			return true
		default:
		}
	}
	if st.opt.Context != nil {
		if err := st.opt.Context.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				st.cause = causeDeadline
			} else {
				st.cause = causeCancel
			}
			return true
		}
	}
	return false
}

// releaseBasis drops one reference to a shared parent-basis snapshot,
// recycling its storage into the pool when the last sharing child is
// consumed (nil-safe).
func (st *searchState) releaseBasis(sb *sharedBasis) {
	if sb != nil && sb.refs.Add(-1) == 0 {
		st.basisPool.Put(sb.bs)
	}
}

// pruneFrontier discards the popped node and — because the heap is
// bound-ordered — every other open node: none of them can improve the
// incumbent once the heap minimum cannot. The discarded count is folded
// into st.lpSkipped. Callers in the parallel path hold st.mu.
func (st *searchState) pruneFrontier() {
	st.lpSkipped += 1 + len(st.heap)
	for i := range st.heap {
		st.releaseBasis(st.heap[i].basis)
		st.heap[i] = node{} // release fix/basis references
	}
	st.heap = st.heap[:0]
}

// step pops and processes one node sequentially (no locking).
func (st *searchState) step(w *searcher) error {
	nd := st.popNode()

	if nd.bound > st.incObj-st.opt.AbsGap && !math.IsInf(nd.bound, -1) {
		st.releaseBasis(nd.basis)
		st.pruneFrontier()
		return nil
	}
	r, err := w.processNode(&nd, st.incObj)
	st.releaseBasis(nd.basis)
	if err != nil {
		return err
	}
	st.lpIters += r.iters
	st.absorb(&nd, r)
	return nil
}

// traceNodeSample sets the node-event sampling stride: every Nth explored
// node emits one trace event, so even deep searches produce a bounded,
// representative progression instead of flooding the recorder.
const traceNodeSample = 64

// absorb merges one node's result into the shared state. Callers in the
// parallel path hold st.mu.
func (st *searchState) absorb(nd *node, r *nodeResult) {
	st.conflictCuts += r.conflictCuts
	if r.pruned {
		st.prunedComb++
		st.lpSkipped++
		return
	}
	st.nodes++
	st.cutsAdded += r.cutsAdded
	st.sepRounds += r.sepRounds
	if tr := st.opt.Trace; tr != nil {
		if r.conflictCuts > 0 {
			tr.Counter(obs.CounterConflicts, int64(r.conflictCuts))
		}
		if r.cutsAdded > 0 {
			tr.Counter(obs.CounterCuts, int64(r.cutsAdded))
		}
		if r.sepRounds > 0 {
			tr.Counter(obs.CounterSepRounds, int64(r.sepRounds))
		}
	}
	if r.cutNames != nil {
		if st.cutNames == nil {
			st.cutNames = make(map[string]int)
		}
		for name, n := range r.cutNames {
			st.cutNames[name] += n
		}
	}
	switch r.lpStatus {
	case lp.Infeasible:
		return
	case lp.Unbounded:
		if nd.depth == 0 {
			st.unbounded = true
		}
		return
	case lp.IterLimit:
		// The node's LP could not be solved within the iteration budget even
		// after the cold fallback. Drop it, but keep its parent bound in the
		// reported Bound and flag the result untrusted (see
		// Solution.BoundTrusted); without an incumbent the final status
		// degrades to Limit rather than claiming Infeasible.
		st.dropped++
		if nd.bound < st.droppedBound {
			st.droppedBound = nd.bound
		}
		if st.opt.Log != nil {
			st.opt.Log("ilp: dropping node at depth %d (simplex iteration limit)", nd.depth)
		}
		return
	}

	st.recordPseudoCost(nd, r.obj)
	if nd.depth == 0 && !st.rootSolved {
		st.rootBound = r.obj
		st.rootSolved = true
	}
	if r.incumbent != nil && r.incObj < st.incObj-st.opt.AbsGap {
		st.incObj = r.incObj
		st.incumbent = r.incumbent
		if st.opt.Log != nil {
			st.opt.Log("ilp: incumbent obj=%g after %d nodes", st.incObj, st.nodes)
		}
		st.opt.Trace.Incumbent(int64(st.nodes), st.incObj)
	}
	if tr := st.opt.Trace; tr != nil && st.nodes%traceNodeSample == 1 {
		tr.Node(int64(st.nodes), nd.depth, len(st.heap), r.obj,
			st.incObj, !math.IsInf(st.incObj, 1))
	}
	for i := range r.children {
		st.pushNode(r.children[i])
	}
}

// runWorker is the parallel search loop: pop under the lock, solve outside
// it, merge results back under the lock.
func (st *searchState) runWorker(w *searcher) {
	st.mu.Lock()
	for {
		for len(st.heap) == 0 && st.active > 0 && !st.stopped && st.err == nil {
			st.cond.Wait()
		}
		if st.err != nil || st.stopped || (len(st.heap) == 0 && st.active == 0) {
			st.cond.Broadcast()
			st.mu.Unlock()
			return
		}
		if st.limitHit() {
			st.stopped = true
			st.cond.Broadcast()
			st.mu.Unlock()
			return
		}
		nd := st.popNode()
		if nd.bound > st.incObj-st.opt.AbsGap && !math.IsInf(nd.bound, -1) {
			st.releaseBasis(nd.basis)
			st.pruneFrontier()
			continue
		}
		st.active++
		inc := st.incObj
		st.mu.Unlock()

		r, err := w.processNode(&nd, inc)
		st.releaseBasis(nd.basis)

		st.mu.Lock()
		st.active--
		if err != nil {
			if st.err == nil {
				st.err = err
			}
			st.cond.Broadcast()
			st.mu.Unlock()
			return
		}
		st.lpIters += r.iters
		st.absorb(&nd, r)
		if len(st.heap) > 0 || st.active == 0 {
			st.cond.Broadcast()
		}
	}
}

// finish assembles the Solution from the final search state.
func (st *searchState) finish() *Solution {
	sol := &Solution{
		Status:              Limit,
		Bound:               math.Inf(-1),
		Nodes:               st.nodes,
		LPIterations:        st.lpIters,
		Dropped:             st.dropped,
		PrunedCombinatorial: st.prunedComb,
		LPSolvesSkipped:     st.lpSkipped,
		CutsAdded:           st.cutsAdded,
		CutsByName:          st.cutNames,
		SeparationRounds:    st.sepRounds,
		ConflictCuts:        st.conflictCuts,
		BoundTrusted:        st.dropped == 0,
	}
	if st.opt.testCapturePool != nil && st.pool != nil {
		st.opt.testCapturePool(st.pool.snapshot())
	}
	exhausted := len(st.heap) == 0 && st.dropped == 0

	// The proven bound is the min over remaining open (and dropped) nodes;
	// when the tree was fully explored it equals the incumbent.
	bound := st.incObj
	if !exhausted {
		for i := range st.heap {
			if st.heap[i].bound < bound {
				bound = st.heap[i].bound
			}
		}
		if st.droppedBound < bound {
			bound = st.droppedBound
		}
		if !st.rootSolved {
			bound = math.Inf(-1)
		}
	}
	if math.IsInf(st.incObj, 1) && st.rootSolved && exhausted {
		sol.Status = Infeasible
		sol.Bound = st.rootBound
		return sol
	}

	sol.Bound = bound
	if st.incumbent != nil {
		sol.X = st.incumbent
		sol.Obj = st.incObj
		if exhausted || st.incObj-bound <= st.opt.AbsGap {
			sol.Status = Optimal
			sol.Bound = st.incObj
		} else {
			sol.Status = Feasible
		}
	} else if exhausted {
		sol.Status = Infeasible
	}
	// A deadline stop is surfaced as Timeout unless the search still
	// completed its proof (Optimal/Infeasible/Unbounded stand on their
	// own; a racing worker may have recorded the cause after another
	// emptied the heap).
	if st.cause == causeDeadline && (sol.Status == Feasible || sol.Status == Limit) {
		sol.Status = Timeout
	}
	return sol
}

func appendFix(fs []fix, f fix) []fix {
	out := make([]fix, len(fs)+1)
	copy(out, fs)
	out[len(fs)] = f
	return out
}

func roundInts(x []float64, isInt []bool) []float64 {
	out := append([]float64(nil), x...)
	for j := range out {
		if isInt[j] {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

func roundCandidate(x []float64, isInt []bool) []float64 {
	out := append([]float64(nil), x...)
	changed := false
	for j := range out {
		if isInt[j] {
			r := math.Round(out[j])
			if math.Abs(r-out[j]) > intTol {
				changed = true
			}
			out[j] = r
		}
	}
	if !changed {
		return nil
	}
	return out
}

// checkFeasibleBounds verifies x against all rows of the original problem
// and the node bounds supplied by the bounds accessor, returning its
// objective value.
func checkFeasibleBounds(p *Problem, bounds func(j int) (float64, float64), x []float64) (bool, float64) {
	if len(x) != p.LP.NumVars() {
		return false, 0
	}
	for j := 0; j < p.LP.NumVars(); j++ {
		lo, hi := bounds(j)
		if x[j] < lo-1e-6 || x[j] > hi+1e-6 {
			return false, 0
		}
	}
	if !p.LP.RowsSatisfied(x, 1e-6) {
		return false, 0
	}
	obj := 0.0
	for j := 0; j < p.LP.NumVars(); j++ {
		obj += p.LP.Obj(j) * x[j]
	}
	return true, obj
}

// Binary adds a new 0-1 variable to prob's LP and registers it as integral.
// It returns the variable index. This is a convenience for model builders.
func Binary(p *Problem) int {
	j := p.LP.AddVar()
	p.LP.SetBounds(j, 0, 1)
	p.Integers = append(p.Integers, j)
	return j
}

// SortIntegers normalizes the integer index list (useful after bulk model
// construction so branching order is deterministic).
func (p *Problem) SortIntegers() {
	sort.Ints(p.Integers)
}

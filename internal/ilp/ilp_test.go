package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-5 }

// knapsack builds a 0-1 knapsack as a minimization problem
// (maximize value == minimize -value).
func knapsack(values, weights []float64, cap float64) *Problem {
	n := len(values)
	P := &Problem{LP: lp.NewProblem(0)}
	coeffs := map[int]float64{}
	for i := 0; i < n; i++ {
		j := Binary(P)
		P.LP.SetObj(j, -values[i])
		coeffs[j] = weights[i]
	}
	P.LP.AddRow(lp.LE, coeffs, cap)
	return P
}

func TestKnapsackSmall(t *testing.T) {
	// values 10,13,7,11; weights 5,6,3,5; cap 10 -> best 13+11=24 (w=11)?
	// No: 6+5=11 > 10. Options: {10,13}=23 w=11 no; {13,7}=20 w=9 yes;
	// {10,11}=21 w=10 yes; {10,7}=17; {11,7}=18 w=8; best = 21.
	P := knapsack([]float64{10, 13, 7, 11}, []float64{5, 6, 3, 5}, 10)
	s, err := Solve(P, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Obj, -21) {
		t.Errorf("obj = %g, want -21 (x=%v)", s.Obj, s.X)
	}
}

func TestKnapsackExhaustiveProperty(t *testing.T) {
	// Compare B&B against brute force on random small knapsacks.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		totW := 0.0
		for i := range values {
			values[i] = float64(1 + rng.Intn(20))
			weights[i] = float64(1 + rng.Intn(10))
			totW += weights[i]
		}
		cap := math.Floor(totW / 2)
		P := knapsack(values, weights, cap)
		s, err := Solve(P, Options{})
		if err != nil || s.Status != Optimal {
			return false
		}
		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			v, w := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					v += values[i]
					w += weights[i]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		return near(s.Obj, -best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x == 3 with x integer in [0, 5]: LP feasible (x=1.5), ILP infeasible.
	P := &Problem{LP: lp.NewProblem(1)}
	P.LP.SetBounds(0, 0, 5)
	P.Integers = []int{0}
	P.LP.AddRow(lp.EQ, map[int]float64{0: 2}, 3)
	s, err := Solve(P, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 10y, x continuous in [0, 2.5], y binary,
	// s.t. x + 4y <= 5. Best: y=1, x=1 -> obj -11.
	P := &Problem{LP: lp.NewProblem(1)}
	P.LP.SetBounds(0, 0, 2.5)
	P.LP.SetObj(0, -1)
	y := Binary(P)
	P.LP.SetObj(y, -10)
	P.LP.AddRow(lp.LE, map[int]float64{0: 1, y: 4}, 5)
	s, err := Solve(P, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Obj, -11) {
		t.Errorf("obj = %g, want -11 (x=%v)", s.Obj, s.X)
	}
	if !near(s.X[y], 1) {
		t.Errorf("y = %g, want 1", s.X[y])
	}
}

func TestWarmStartIncumbent(t *testing.T) {
	P := knapsack([]float64{10, 13, 7, 11}, []float64{5, 6, 3, 5}, 10)
	// Feasible warm start: items 2 (w=3) and 3 (w=5).
	inc := []float64{0, 0, 1, 1}
	s, err := Solve(P, Options{Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Obj, -21) {
		t.Errorf("status=%v obj=%g, want optimal -21", s.Status, s.Obj)
	}
}

func TestBadWarmStartIgnored(t *testing.T) {
	P := knapsack([]float64{5, 5}, []float64{4, 4}, 4)
	// Infeasible warm start (both items exceed capacity) must be ignored.
	s, err := Solve(P, Options{Incumbent: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Obj, -5) {
		t.Errorf("status=%v obj=%g, want optimal -5", s.Status, s.Obj)
	}
}

func TestNodeLimit(t *testing.T) {
	// A larger knapsack with a 1-node limit should still return something
	// (Limit or Feasible), never panic.
	rng := rand.New(rand.NewSource(3))
	n := 20
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(1 + rng.Intn(50))
		weights[i] = float64(1 + rng.Intn(20))
	}
	P := knapsack(values, weights, 50)
	s, err := Solve(P, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Optimal && s.Nodes > 1 {
		t.Errorf("explored %d nodes with MaxNodes=1", s.Nodes)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 25
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(1 + rng.Intn(100))
		weights[i] = float64(1 + rng.Intn(30))
	}
	P := knapsack(values, weights, 120)
	start := time.Now()
	_, err := Solve(P, Options{TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("time limit had no effect")
	}
}

func TestIntegerIndexOutOfRange(t *testing.T) {
	P := &Problem{LP: lp.NewProblem(1), Integers: []int{3}}
	if _, err := Solve(P, Options{}); err == nil {
		t.Error("want error for out-of-range integer index")
	}
}

func TestGeneralIntegerVariable(t *testing.T) {
	// min x s.t. 3x >= 10, x integer -> x = 4.
	P := &Problem{LP: lp.NewProblem(1), Integers: []int{0}}
	P.LP.SetObj(0, 1)
	P.LP.SetBounds(0, 0, 100)
	P.LP.AddRow(lp.GE, map[int]float64{0: 3}, 10)
	s, err := Solve(P, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.X[0], 4) {
		t.Errorf("x = %v (status %v), want x=4 optimal", s.X, s.Status)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible",
		Unbounded: "unbounded", Limit: "limit",
	} {
		if st.String() != want {
			t.Errorf("Status.String() = %q, want %q", st.String(), want)
		}
	}
}

func BenchmarkKnapsack15(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 15
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(1 + rng.Intn(40))
		weights[i] = float64(1 + rng.Intn(15))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		P := knapsack(values, weights, 60)
		if _, err := Solve(P, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

package ilp

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/lp"
)

func TestNormalizedRowHashDedups(t *testing.T) {
	a := lp.CutRow{Kind: lp.LE, Cols: []int{2, 0}, Vals: []float64{1, 2}, RHS: 3}
	b := lp.CutRow{Kind: lp.LE, Cols: []int{0, 2}, Vals: []float64{4, 2}, RHS: 6} // 2x scaled, reordered
	c := lp.CutRow{Kind: lp.GE, Cols: []int{0, 2}, Vals: []float64{-2, -1}, RHS: -3}
	d := lp.CutRow{Kind: lp.LE, Cols: []int{0, 2}, Vals: []float64{2, 1}, RHS: 4} // different rhs
	if normalizedRowHash(a) != normalizedRowHash(b) {
		t.Error("scaled/reordered row hashed differently")
	}
	if normalizedRowHash(a) != normalizedRowHash(c) {
		t.Error("negated GE form hashed differently")
	}
	if normalizedRowHash(a) == normalizedRowHash(d) {
		t.Error("distinct rhs collided")
	}
	pool := newCutPool(0)
	if !pool.add(a) {
		t.Fatal("first add rejected")
	}
	if pool.add(b) || pool.add(c) {
		t.Error("pool admitted an equivalent duplicate")
	}
	if !pool.add(d) {
		t.Error("pool rejected a distinct cut")
	}
	if pool.size() != 2 {
		t.Errorf("pool size %d, want 2", pool.size())
	}
}

func TestCutPoolCompaction(t *testing.T) {
	pool := newCutPool(4)
	for i := 0; i < 4; i++ {
		pool.add(lp.CutRow{Kind: lp.LE, Cols: []int{i}, Vals: []float64{1}, RHS: float64(i)})
	}
	_, hashes, gen0, _ := pool.fetch(0, 0)
	pool.touch([]uint64{hashes[3]}) // only the last cut is active
	pool.add(lp.CutRow{Kind: lp.LE, Cols: []int{9}, Vals: []float64{1}, RHS: 9})
	rows, _, gen1, total := pool.fetch(0, gen0)
	if gen1 == gen0 {
		t.Fatal("overflow did not bump the generation")
	}
	if rows != nil {
		t.Fatal("stale-generation fetch must return no rows")
	}
	rows, _, _, total = pool.fetch(0, gen1)
	if total > 3 || len(rows) != total {
		t.Fatalf("compaction kept %d cuts, want <= max/2 survivors + the new admission", total)
	}
	// The active cut survived compaction, and the admission that triggered
	// it was not evicted.
	foundActive, foundNew := false, false
	for _, r := range rows {
		if len(r.Cols) == 1 && r.Cols[0] == 3 {
			foundActive = true
		}
		if len(r.Cols) == 1 && r.Cols[0] == 9 {
			foundNew = true
		}
	}
	if !foundActive {
		t.Error("compaction evicted the most active cut")
	}
	if !foundNew {
		t.Error("compaction evicted the cut whose admission triggered it")
	}
}

// knapsackProblem builds max Σ c_j x_j (as a minimization) over binaries
// subject to LE knapsack rows.
func knapsackProblem(obj []float64, rows [][]int, caps []int) *Problem {
	n := len(obj)
	p := lp.NewProblem(n)
	ints := make([]int, n)
	for j := 0; j < n; j++ {
		p.SetObj(j, -obj[j])
		p.SetBounds(j, 0, 1)
		ints[j] = j
	}
	for ri, w := range rows {
		row := map[int]float64{}
		for j, wj := range w {
			if wj != 0 {
				row[j] = float64(wj)
			}
		}
		p.AddRow(lp.LE, row, float64(caps[ri]))
	}
	return &Problem{LP: p, Integers: ints}
}

// coverSeparator returns extended-cover cuts for the given knapsack rows —
// the canonical valid-inequality family for 0-1 knapsacks, used here to
// exercise the branch-and-cut plumbing end to end.
func coverSeparator(rows [][]int, caps []int, global bool) func(pt *SeparationPoint) []Cut {
	return func(pt *SeparationPoint) []Cut {
		var cuts []Cut
		for ri, w := range rows {
			type it struct {
				j, w int
				x    float64
			}
			var items []it
			for j, wj := range w {
				if wj > 0 {
					items = append(items, it{j, wj, pt.X[j]})
				}
			}
			sort.Slice(items, func(a, b int) bool { return items[a].x > items[b].x })
			sum, mass := 0, 0.0
			var cover []it
			for _, c := range items {
				cover = append(cover, c)
				sum += c.w
				mass += c.x
				if sum > caps[ri] {
					break
				}
			}
			if sum <= caps[ri] || mass <= float64(len(cover)-1)+1e-6 {
				continue
			}
			cut := Cut{Global: global, Name: "cover"}
			cut.Kind = lp.LE
			cut.RHS = float64(len(cover) - 1)
			for _, c := range cover {
				cut.Cols = append(cut.Cols, c.j)
				cut.Vals = append(cut.Vals, 1)
			}
			cuts = append(cuts, cut)
		}
		return cuts
	}
}

func TestSeparationMatchesPlainSearch(t *testing.T) {
	// A knapsack whose LP relaxation is badly fractional: equal profits,
	// near-capacity weights.
	obj := []float64{10, 10, 10, 10, 10, 10}
	rows := [][]int{{34, 35, 36, 34, 35, 36}}
	caps := []int{100}
	plain, err := Solve(knapsackProblem(obj, rows, caps), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cutOpt := Options{Separate: coverSeparator(rows, caps, true)}
	cut, err := Solve(knapsackProblem(obj, rows, caps), cutOpt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != Optimal || cut.Status != Optimal {
		t.Fatalf("status plain=%v cut=%v", plain.Status, cut.Status)
	}
	if math.Abs(plain.Obj-cut.Obj) > 1e-6 {
		t.Fatalf("cut search changed the optimum: %g vs %g", cut.Obj, plain.Obj)
	}
	if cut.CutsAdded == 0 || cut.SeparationRounds == 0 {
		t.Fatalf("no separation happened: %+v", cut)
	}
	if cut.Nodes > plain.Nodes {
		t.Errorf("cuts grew the tree: %d nodes vs %d plain", cut.Nodes, plain.Nodes)
	}
}

func TestNodeLocalCuts(t *testing.T) {
	// The same search with the separator emitting node-local cuts: the
	// optimum must be unchanged and the local-cut drop/re-add path must
	// hold up (locals are inherited by descendants only).
	obj := []float64{10, 10, 10, 10, 10, 10}
	rows := [][]int{{34, 35, 36, 34, 35, 36}}
	caps := []int{100}
	plain, err := Solve(knapsackProblem(obj, rows, caps), Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Solve(knapsackProblem(obj, rows, caps),
		Options{Separate: coverSeparator(rows, caps, false)})
	if err != nil {
		t.Fatal(err)
	}
	if local.Status != Optimal || math.Abs(local.Obj-plain.Obj) > 1e-6 {
		t.Fatalf("local-cut search: %v obj=%g, want optimal obj=%g", local.Status, local.Obj, plain.Obj)
	}
	if local.CutsAdded == 0 {
		t.Fatal("no local cuts were admitted")
	}
}

func TestSeparationPoolOverflowDuringSearch(t *testing.T) {
	// A tiny MaxCuts forces mid-search compaction (generation bumps and
	// solver rebuilds); the answer must not change.
	rng := rand.New(rand.NewSource(3))
	n := 10
	obj := make([]float64, n)
	w := make([]int, n)
	for j := 0; j < n; j++ {
		obj[j] = float64(5 + rng.Intn(10))
		w[j] = 30 + rng.Intn(12)
	}
	rows := [][]int{w}
	caps := []int{95}
	plain, err := Solve(knapsackProblem(obj, rows, caps), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := Solve(knapsackProblem(obj, rows, caps),
		Options{Separate: coverSeparator(rows, caps, true), MaxCuts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cut.Status != Optimal || math.Abs(cut.Obj-plain.Obj) > 1e-6 {
		t.Fatalf("overflowing pool changed the answer: %v obj=%g, want %g", cut.Status, cut.Obj, plain.Obj)
	}
}

// TestSeparationWorkerEquivalence pins the 1-vs-N-worker contract with the
// cut pool active: whatever order workers separate and share cuts in, the
// optimum matches the sequential branch-and-cut search. Runs under -race
// in CI, which is the concurrency coverage for the pool.
func TestSeparationWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		n := 8 + rng.Intn(6)
		nr := 1 + rng.Intn(3)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(1 + rng.Intn(20))
		}
		rows := make([][]int, nr)
		caps := make([]int, nr)
		for ri := range rows {
			w := make([]int, n)
			for j := range w {
				if rng.Float64() < 0.8 {
					w[j] = 20 + rng.Intn(25)
				}
			}
			rows[ri] = w
			caps[ri] = 60 + rng.Intn(60)
		}
		sep := coverSeparator(rows, caps, true)
		seq, err := Solve(knapsackProblem(obj, rows, caps), Options{Separate: sep})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(knapsackProblem(obj, rows, caps), Options{Separate: sep, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Status != par.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, seq.Status, par.Status)
		}
		if seq.Status == Optimal && math.Abs(seq.Obj-par.Obj) > 1e-6 {
			t.Fatalf("trial %d: sequential obj %g, parallel obj %g", trial, seq.Obj, par.Obj)
		}
	}
}

// TestLocalCutsSurvivePoolCompaction pins the bindCuts recovery path: with
// a tiny pool forcing mid-search generation bumps AND a separator emitting
// node-local cuts, every drop triggered by a compaction must re-establish
// the node's inherited local set before the LP re-solves. The optimum must
// match the plain search.
func TestLocalCutsSurvivePoolCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 10
	obj := make([]float64, n)
	w := make([]int, n)
	for j := 0; j < n; j++ {
		obj[j] = float64(5 + rng.Intn(10))
		w[j] = 30 + rng.Intn(12)
	}
	rows := [][]int{w}
	caps := []int{95}
	globalSep := coverSeparator(rows, caps, true)
	localSep := coverSeparator(rows, caps, false)
	mixed := func(pt *SeparationPoint) []Cut {
		return append(globalSep(pt), localSep(pt)...)
	}
	plain, err := Solve(knapsackProblem(obj, rows, caps), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		cut, err := Solve(knapsackProblem(obj, rows, caps),
			Options{Separate: mixed, MaxCuts: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if cut.Status != Optimal || math.Abs(cut.Obj-plain.Obj) > 1e-6 {
			t.Fatalf("workers=%d: %v obj=%g, want optimal obj=%g", workers, cut.Status, cut.Obj, plain.Obj)
		}
		if cut.CutsAdded == 0 {
			t.Fatalf("workers=%d: no cuts admitted", workers)
		}
	}
}

package hls

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockAndLatenciesUnconstrained(t *testing.T) {
	lib := XC4000Library()
	alloc := Allocation{{OpMul, 17}: 1, {OpAdd, 24}: 1}
	clock, lat, err := ClockAndLatencies(alloc, lib, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if clock != 70 {
		t.Errorf("clock = %g, want 70 (mul17-bound)", clock)
	}
	for ft, l := range lat {
		if l != 1 {
			t.Errorf("%s latency = %d, want 1 without a clock constraint", ft, l)
		}
	}
}

func TestClockAndLatenciesConstrained(t *testing.T) {
	lib := XC4000Library()
	alloc := Allocation{{OpMul, 17}: 1, {OpAdd, 24}: 1}
	// 40 ns user clock: mul17 (65+4 ns) needs 2 cycles, add24 (24.8+4) 1.
	clock, lat, err := ClockAndLatencies(alloc, lib, Constraints{MaxClockNS: 40})
	if err != nil {
		t.Fatal(err)
	}
	if clock != 40 {
		t.Errorf("clock = %g, want 40", clock)
	}
	if lat[FUType{OpMul, 17}] != 2 {
		t.Errorf("mul17 latency = %d, want 2", lat[FUType{OpMul, 17}])
	}
	if lat[FUType{OpAdd, 24}] != 1 {
		t.Errorf("add24 latency = %d, want 1", lat[FUType{OpAdd, 24}])
	}
}

func TestClockCannotUndercutMemory(t *testing.T) {
	lib := XC4000Library()
	alloc := Allocation{{OpAdd, 8}: 1}
	// Memory access is 25 ns + 4 setup -> 30 ns floor; a 20 ns clock must
	// be rejected.
	if _, _, err := ClockAndLatencies(alloc, lib, Constraints{MaxClockNS: 20}); err == nil {
		t.Error("20 ns clock accepted below the memory access floor")
	}
}

func TestMulticycleScheduleCorrectness(t *testing.T) {
	g := VectorProduct("t2", 4, 17, 24, "in", "out", false)
	alloc := MinimalAllocation(g)
	lat := Latencies{{OpMul, 17}: 2, {OpAdd, 24}: 1}
	s, err := ListScheduleLatency([]*OpGraph{g}, []Allocation{alloc}, 1, lat)
	if err != nil {
		t.Fatal(err)
	}
	// Dependencies with latency: a consumer must start at least L cycles
	// after its producer.
	cycleOf := map[int]int{}
	for _, so := range s.Ops {
		cycleOf[so.Op] = so.Cycle
	}
	for _, so := range s.Ops {
		op := g.Op(so.Op)
		for _, a := range op.Args {
			pa := g.Op(a)
			if pa.Kind.IsFree() {
				continue
			}
			L := 1
			if pa.Kind.NeedsFU() {
				L = lat.Latency(FUType{pa.Kind, pa.Width})
			}
			if cycleOf[a]+L > so.Cycle {
				t.Fatalf("op %d at %d starts before producer %d (cycle %d + lat %d)",
					so.Op, so.Cycle, a, cycleOf[a], L)
			}
		}
	}
	// The single multiplier runs 4 two-cycle multiplies: >= 8 cycles of
	// multiplier occupancy.
	if s.Cycles < 9 {
		t.Errorf("makespan %d too small for 4 two-cycle muls + deps", s.Cycles)
	}
	// Single-cycle latencies must reproduce the plain scheduler.
	plain, err := ListSchedule([]*OpGraph{g}, []Allocation{alloc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	one, err := ListScheduleLatency([]*OpGraph{g}, []Allocation{alloc}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if one.Cycles != plain.Cycles {
		t.Errorf("unit-latency scheduler %d cycles != plain %d", one.Cycles, plain.Cycles)
	}
}

// TestClockLatencyTradeoff: for a T2 vector product, sweeping the user
// clock must produce a delay curve with a genuine tradeoff, and every
// point must be a valid design.
func TestClockLatencyTradeoff(t *testing.T) {
	lib := XC4000Library()
	g := VectorProduct("t2", 4, 17, 24, "in", "out", false)
	base, err := EstimateTaskMulticycle(g, lib, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if base.ClockNS != 70 {
		t.Errorf("unconstrained clock = %g, want 70", base.ClockNS)
	}
	for _, maxClock := range []float64{70, 60, 50, 40} {
		e, err := EstimateTaskMulticycle(g, lib, Constraints{MaxClockNS: maxClock})
		if err != nil {
			t.Fatalf("clock %g: %v", maxClock, err)
		}
		if e.ClockNS > maxClock+1e-9 {
			t.Errorf("clock %g exceeds user max %g", e.ClockNS, maxClock)
		}
		if e.Cycles < base.Cycles {
			t.Errorf("clock %g: fewer cycles (%d) than the natural clock (%d)",
				maxClock, e.Cycles, base.Cycles)
		}
	}
}

// Property: the multi-cycle schedule is dependency-correct and never
// oversubscribes units for random latencies.
func TestMulticycleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := VectorProduct("t", 2+rng.Intn(5), 5+rng.Intn(14), 24, "in", "out", false)
		alloc := MinimalAllocation(g)
		lat := Latencies{}
		for ft := range alloc {
			lat[ft] = 1 + rng.Intn(3)
		}
		s, err := ListScheduleLatency([]*OpGraph{g}, []Allocation{alloc}, 1, lat)
		if err != nil {
			return false
		}
		// Occupancy check.
		occ := map[FUType]map[int]int{}
		cycleOf := map[int]int{}
		for _, so := range s.Ops {
			cycleOf[so.Op] = so.Cycle
		}
		memPerCycle := map[int]int{}
		for _, so := range s.Ops {
			op := g.Op(so.Op)
			if op.Kind.IsMemory() {
				memPerCycle[so.Cycle]++
				if memPerCycle[so.Cycle] > 1 {
					return false
				}
				continue
			}
			ft := FUType{op.Kind, op.Width}
			if occ[ft] == nil {
				occ[ft] = map[int]int{}
			}
			for cc := so.Cycle; cc < so.Cycle+lat.Latency(ft); cc++ {
				occ[ft][cc]++
				if occ[ft][cc] > alloc[ft] {
					return false
				}
			}
			for _, a := range op.Args {
				pa := g.Op(a)
				if pa.Kind.IsFree() {
					continue
				}
				L := 1
				if pa.Kind.NeedsFU() {
					L = lat.Latency(FUType{pa.Kind, pa.Width})
				}
				if cycleOf[a]+L > so.Cycle {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

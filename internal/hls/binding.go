package hls

import (
	"fmt"
	"sort"
)

// Register binding: after scheduling, each operation's result must live in
// a register from the cycle after it executes until the last cycle in which
// a consumer reads it. Values with disjoint lifetimes share a register
// (left-edge algorithm), which is the classical HLS datapath optimization
// the paper's synthesis backend (DSS) performs before layout estimation.

// OpRef addresses an operation within a multi-task partition schedule.
type OpRef struct {
	Task, Op int
}

// Lifetime is a value's live interval in control steps: [Start, End].
// Start is the cycle after the producing op executes; End is the cycle of
// the last consumer (Start-1 means the value is never consumed and needs
// no register beyond its defining cycle).
type Lifetime struct {
	Ref        OpRef
	Start, End int
	Width      int
}

// RegisterBinding maps values to shared physical registers.
type RegisterBinding struct {
	// Assign maps each registered value to a register index.
	Assign map[OpRef]int
	// Widths holds each physical register's width (the maximum width of
	// the values it carries).
	Widths []int
	// Lifetimes lists the analyzed intervals (sorted by start).
	Lifetimes []Lifetime
}

// NumRegisters returns the number of physical registers allocated.
func (rb *RegisterBinding) NumRegisters() int { return len(rb.Widths) }

// TotalBits sums the widths of all physical registers.
func (rb *RegisterBinding) TotalBits() int {
	bits := 0
	for _, w := range rb.Widths {
		bits += w
	}
	return bits
}

// resultWidth returns the registered width of an op's result.
func resultWidth(g *OpGraph, lib *Library, op Op) int {
	if op.Kind == OpMul || op.Kind == OpMac {
		ext := 7
		if lib != nil {
			ext = lib.macAccExt
		}
		return op.Width + ext
	}
	return op.Width
}

// AnalyzeLifetimes computes the live interval of every value-producing op
// in a partition schedule. Writes produce no value; reads and arithmetic
// ops do. Free ops (consts, shifts) are folded into their consumers.
func AnalyzeLifetimes(tasks []*OpGraph, sched *Schedule, lib *Library) ([]Lifetime, error) {
	cycleOf := make([]map[int]int, len(tasks))
	for i := range cycleOf {
		cycleOf[i] = map[int]int{}
	}
	for _, so := range sched.Ops {
		cycleOf[so.Task][so.Op] = so.Cycle
	}
	var out []Lifetime
	for ti, g := range tasks {
		// lastUse[op] = latest consumer cycle.
		lastUse := map[int]int{}
		var noteUse func(producer, consumerCycle int)
		noteUse = func(producer, consumerCycle int) {
			p := g.Op(producer)
			if p.Kind.IsFree() {
				// Fold through free ops to their own producers.
				for _, a := range p.Args {
					noteUse(a, consumerCycle)
				}
				return
			}
			if c, ok := lastUse[producer]; !ok || consumerCycle > c {
				lastUse[producer] = consumerCycle
			}
		}
		for i := 0; i < g.NumOps(); i++ {
			op := g.Op(i)
			if op.Kind.IsFree() {
				continue
			}
			c, ok := cycleOf[ti][i]
			if !ok {
				return nil, fmt.Errorf("hls: op (%d,%d) missing from schedule", ti, i)
			}
			for _, a := range op.Args {
				noteUse(a, c)
			}
		}
		for i := 0; i < g.NumOps(); i++ {
			op := g.Op(i)
			if op.Kind.IsFree() || op.Kind == OpWrite {
				continue
			}
			start := cycleOf[ti][i] + 1
			end, used := lastUse[i]
			if !used {
				end = start - 1 // dead value; zero-length lifetime
			}
			out = append(out, Lifetime{
				Ref:   OpRef{ti, i},
				Start: start,
				End:   end,
				Width: resultWidth(g, lib, op),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		if out[a].Ref.Task != out[b].Ref.Task {
			return out[a].Ref.Task < out[b].Ref.Task
		}
		return out[a].Ref.Op < out[b].Ref.Op
	})
	return out, nil
}

// BindRegisters runs the left-edge algorithm over the value lifetimes:
// values are placed into the first register whose current occupant's
// lifetime has ended. Register widths grow to the widest value bound.
func BindRegisters(tasks []*OpGraph, sched *Schedule, lib *Library) (*RegisterBinding, error) {
	lifetimes, err := AnalyzeLifetimes(tasks, sched, lib)
	if err != nil {
		return nil, err
	}
	rb := &RegisterBinding{Assign: map[OpRef]int{}, Lifetimes: lifetimes}
	freeAt := []int{} // per register: first cycle it is free again
	for _, lt := range lifetimes {
		placed := -1
		for r := range freeAt {
			if freeAt[r] <= lt.Start {
				placed = r
				break
			}
		}
		if placed < 0 {
			placed = len(freeAt)
			freeAt = append(freeAt, 0)
			rb.Widths = append(rb.Widths, 0)
		}
		// Occupied through End (inclusive); free the cycle after.
		end := lt.End
		if end < lt.Start {
			end = lt.Start // dead values still hold their defining slot
		}
		freeAt[placed] = end + 1
		if lt.Width > rb.Widths[placed] {
			rb.Widths[placed] = lt.Width
		}
		rb.Assign[lt.Ref] = placed
	}
	return rb, nil
}

// Verify checks the binding: no two overlapping lifetimes share a register
// and every value is assigned.
func (rb *RegisterBinding) Verify() error {
	byReg := map[int][]Lifetime{}
	for _, lt := range rb.Lifetimes {
		r, ok := rb.Assign[lt.Ref]
		if !ok {
			return fmt.Errorf("hls: value %v unbound", lt.Ref)
		}
		if r < 0 || r >= len(rb.Widths) {
			return fmt.Errorf("hls: value %v bound to invalid register %d", lt.Ref, r)
		}
		if lt.Width > rb.Widths[r] {
			return fmt.Errorf("hls: register %d (width %d) narrower than value %v (width %d)",
				r, rb.Widths[r], lt.Ref, lt.Width)
		}
		byReg[r] = append(byReg[r], lt)
	}
	for r, ls := range byReg {
		sort.Slice(ls, func(a, b int) bool { return ls[a].Start < ls[b].Start })
		for i := 1; i < len(ls); i++ {
			prevEnd := ls[i-1].End
			if prevEnd < ls[i-1].Start {
				prevEnd = ls[i-1].Start
			}
			if ls[i].Start <= prevEnd {
				return fmt.Errorf("hls: register %d double-booked at cycle %d (%v and %v)",
					r, ls[i].Start, ls[i-1].Ref, ls[i].Ref)
			}
		}
	}
	return nil
}

package hls

import (
	"fmt"
	"sort"
)

// ScheduledOp records the cycle assignment of one operation.
type ScheduledOp struct {
	Task  int // index into the scheduled task list
	Op    int // op index within the task's OpGraph
	Cycle int // 0-based control step
}

// Schedule is the result of list scheduling one or more tasks onto shared
// memory ports with per-task functional units.
type Schedule struct {
	// Cycles is the makespan in control steps.
	Cycles int
	// Ops lists every scheduled operation ordered by (Cycle, Task, Op).
	Ops []ScheduledOp
	// MemOpsPerCycle records memory-port occupancy per cycle (diagnostics).
	MemOpsPerCycle []int
}

// ASAP computes as-soon-as-possible control steps for each op, assuming
// unlimited resources and unit latency for non-free ops. Free ops (consts,
// shifts) are assigned the step at which their inputs are ready and consume
// no step themselves.
func ASAP(g *OpGraph) []int {
	n := g.NumOps()
	t := make([]int, n)
	for i := 0; i < n; i++ {
		op := g.Op(i)
		ready := 0
		for _, a := range op.Args {
			pa := g.Op(a)
			end := t[a]
			if !pa.Kind.IsFree() {
				end = t[a] + 1 // result available after its cycle
			}
			if end > ready {
				ready = end
			}
		}
		t[i] = ready
	}
	return t
}

// ALAP computes as-late-as-possible control steps for a given latency bound
// L (in steps). Ops with no consumers finish at L-1.
func ALAP(g *OpGraph, latency int) []int {
	n := g.NumOps()
	t := make([]int, n)
	for i := range t {
		t[i] = latency - 1
	}
	for i := n - 1; i >= 0; i-- {
		op := g.Op(i)
		for _, a := range op.Args {
			pa := g.Op(a)
			lim := t[i]
			if !pa.Kind.IsFree() {
				lim = t[i] - 1
			}
			if lim < t[a] {
				t[a] = lim
			}
		}
	}
	return t
}

// listState tracks resource occupancy for one cycle.
type listState struct {
	memUsed int
	fuUsed  []map[FUType]int // per task
}

// ListSchedule performs priority list scheduling of one or more tasks.
//
// Resource model (the paper's Sec. 3 synthesis style):
//   - every task owns its private functional units given by allocs[i]
//     (operations of a type within a task share that task's units),
//   - all tasks in a temporal partition share the board memory ports
//     (memPorts, 1 on the paper's board),
//   - functional units and memory ports serve one op per cycle; results are
//     registered and available the following cycle,
//   - constants and constant shifts are free.
//
// Priority is least ALAP slack first (critical-path driven), breaking ties
// toward the task with more remaining work.
func ListSchedule(tasks []*OpGraph, allocs []Allocation, memPorts int) (*Schedule, error) {
	if len(tasks) != len(allocs) {
		return nil, fmt.Errorf("hls: %d tasks but %d allocations", len(tasks), len(allocs))
	}
	if memPorts < 1 {
		return nil, fmt.Errorf("hls: memPorts must be >= 1, got %d", memPorts)
	}
	type opRef struct {
		task, op int
		prio     int // ALAP step (lower = more urgent)
	}
	// Precompute per-task ASAP/ALAP for priorities.
	remaining := 0
	asap := make([][]int, len(tasks))
	alap := make([][]int, len(tasks))
	for ti, g := range tasks {
		if err := g.Validate(); err != nil {
			return nil, err
		}
		asap[ti] = ASAP(g)
		lat := 0
		for i, s := range asap[ti] {
			if !g.Op(i).Kind.IsFree() && s+1 > lat {
				lat = s + 1
			}
		}
		if lat == 0 {
			lat = 1
		}
		alap[ti] = ALAP(g, lat)
		for i := 0; i < g.NumOps(); i++ {
			if !g.Op(i).Kind.IsFree() {
				remaining++
			}
		}
	}
	if remaining == 0 {
		return nil, ErrEmptyGraph
	}

	done := make([][]int, len(tasks)) // completion cycle per op; -1 = unscheduled
	for ti, g := range tasks {
		done[ti] = make([]int, g.NumOps())
		for i := range done[ti] {
			done[ti][i] = -1
		}
	}

	sched := &Schedule{}
	cycle := 0
	maxCycles := 16 * (remaining + 8) // safety net against scheduler bugs
	for remaining > 0 {
		if cycle > maxCycles {
			return nil, fmt.Errorf("hls: list scheduler failed to converge after %d cycles", cycle)
		}
		// Collect ready ops.
		var ready []opRef
		for ti, g := range tasks {
			for i := 0; i < g.NumOps(); i++ {
				op := g.Op(i)
				if op.Kind.IsFree() || done[ti][i] >= 0 {
					continue
				}
				ok := true
				for _, a := range op.Args {
					pa := g.Op(a)
					if pa.Kind.IsFree() {
						// Free producers are "done" when their own args are.
						if !freeReady(g, done[ti], a, cycle) {
							ok = false
							break
						}
						continue
					}
					if done[ti][a] < 0 || done[ti][a] >= cycle {
						ok = false
						break
					}
				}
				if ok {
					ready = append(ready, opRef{ti, i, alap[ti][i]})
				}
			}
		}
		sort.Slice(ready, func(a, b int) bool {
			if ready[a].prio != ready[b].prio {
				return ready[a].prio < ready[b].prio
			}
			if ready[a].task != ready[b].task {
				return ready[a].task < ready[b].task
			}
			return ready[a].op < ready[b].op
		})

		st := listState{fuUsed: make([]map[FUType]int, len(tasks))}
		for i := range st.fuUsed {
			st.fuUsed[i] = map[FUType]int{}
		}
		memThisCycle := 0
		for _, r := range ready {
			op := tasks[r.task].Op(r.op)
			if op.Kind.IsMemory() {
				if st.memUsed >= memPorts {
					continue
				}
				st.memUsed++
				memThisCycle++
			} else {
				ft := FUType{op.Kind, op.Width}
				if st.fuUsed[r.task][ft] >= allocs[r.task][ft] {
					continue
				}
				st.fuUsed[r.task][ft]++
			}
			done[r.task][r.op] = cycle
			sched.Ops = append(sched.Ops, ScheduledOp{Task: r.task, Op: r.op, Cycle: cycle})
			remaining--
		}
		sched.MemOpsPerCycle = append(sched.MemOpsPerCycle, memThisCycle)
		cycle++
	}
	sched.Cycles = cycle
	return sched, nil
}

// freeReady reports whether free op a's transitive non-free producers are
// complete before the given cycle.
func freeReady(g *OpGraph, done []int, a int, cycle int) bool {
	op := g.Op(a)
	for _, p := range op.Args {
		pa := g.Op(p)
		if pa.Kind.IsFree() {
			if !freeReady(g, done, p, cycle) {
				return false
			}
			continue
		}
		if done[p] < 0 || done[p] >= cycle {
			return false
		}
	}
	return true
}

// Verify checks schedule invariants against the tasks and resources:
// dependencies respected (producer cycle < consumer cycle), per-cycle FU
// and memory-port limits honoured, every non-free op scheduled exactly
// once. It is used by tests and by property checks.
func (s *Schedule) Verify(tasks []*OpGraph, allocs []Allocation, memPorts int) error {
	cycleOf := make([]map[int]int, len(tasks))
	for i := range cycleOf {
		cycleOf[i] = map[int]int{}
	}
	for _, so := range s.Ops {
		if _, dup := cycleOf[so.Task][so.Op]; dup {
			return fmt.Errorf("hls: op (%d,%d) scheduled twice", so.Task, so.Op)
		}
		cycleOf[so.Task][so.Op] = so.Cycle
	}
	type slot struct {
		cycle int
		task  int
		ft    FUType
	}
	fuBusy := map[slot]int{}
	memBusy := map[int]int{}
	for _, so := range s.Ops {
		op := tasks[so.Task].Op(so.Op)
		if op.Kind.IsMemory() {
			memBusy[so.Cycle]++
			if memBusy[so.Cycle] > memPorts {
				return fmt.Errorf("hls: cycle %d oversubscribes memory ports", so.Cycle)
			}
		} else if op.Kind.NeedsFU() {
			ft := FUType{op.Kind, op.Width}
			k := slot{so.Cycle, so.Task, ft}
			fuBusy[k]++
			if fuBusy[k] > allocs[so.Task][ft] {
				return fmt.Errorf("hls: cycle %d oversubscribes %s of task %d", so.Cycle, ft, so.Task)
			}
		}
		// Dependencies.
		var checkArgs func(int) error
		checkArgs = func(idx int) error {
			for _, a := range tasks[so.Task].Op(idx).Args {
				pa := tasks[so.Task].Op(a)
				if pa.Kind.IsFree() {
					if err := checkArgs(a); err != nil {
						return err
					}
					continue
				}
				pc, ok := cycleOf[so.Task][a]
				if !ok {
					return fmt.Errorf("hls: op (%d,%d) depends on unscheduled op %d", so.Task, so.Op, a)
				}
				if pc >= so.Cycle {
					return fmt.Errorf("hls: op (%d,%d) at cycle %d depends on op %d at cycle %d", so.Task, so.Op, so.Cycle, a, pc)
				}
			}
			return nil
		}
		if err := checkArgs(so.Op); err != nil {
			return err
		}
	}
	for ti, g := range tasks {
		for i := 0; i < g.NumOps(); i++ {
			if !g.Op(i).Kind.IsFree() {
				if _, ok := cycleOf[ti][i]; !ok {
					return fmt.Errorf("hls: op (%d,%d) never scheduled", ti, i)
				}
			}
		}
	}
	return nil
}

// Package hls implements the behavior-level high-level-synthesis estimation
// engine of the paper's design flow (the role played by DSS [13]): given an
// operation-level behavioral description of a task, it estimates the FPGA
// resources (CLBs) and execution delay of the task for a characterized
// device, schedules operations under functional-unit and memory-port
// constraints, and synthesizes the controller FSM — including the augmented
// RTR controller of Fig. 7 with an iteration counter and start/finish
// handshake.
package hls

import (
	"errors"
	"fmt"
)

// OpKind enumerates behavioral operation kinds.
type OpKind int

const (
	// OpConst is a synthesis-time constant (folded into LUT ROMs; costs no
	// cycle and no functional unit).
	OpConst OpKind = iota
	// OpRead reads one word from the on-board memory (uses a memory port).
	OpRead
	// OpWrite writes one word to the on-board memory (uses a memory port).
	OpWrite
	// OpAdd is a two-input addition.
	OpAdd
	// OpSub is a two-input subtraction.
	OpSub
	// OpMul is a two-input multiplication.
	OpMul
	// OpMac is a chained multiply-accumulate (a*b or a*b+acc); the
	// multiplier and adder are chained combinationally inside one cycle,
	// trading a slower clock for fewer cycles.
	OpMac
	// OpShl is a constant left shift (wiring only on FPGAs, but kept as an
	// op for bit-width bookkeeping).
	OpShl
	// OpShr is a constant right shift.
	OpShr
)

var opKindNames = map[OpKind]string{
	OpConst: "const", OpRead: "read", OpWrite: "write", OpAdd: "add",
	OpSub: "sub", OpMul: "mul", OpMac: "mac", OpShl: "shl", OpShr: "shr",
}

func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsMemory reports whether the op consumes a memory port.
func (k OpKind) IsMemory() bool { return k == OpRead || k == OpWrite }

// NeedsFU reports whether the op occupies a functional unit for a cycle.
func (k OpKind) NeedsFU() bool {
	switch k {
	case OpAdd, OpSub, OpMul, OpMac:
		return true
	}
	return false
}

// IsFree reports whether the op costs neither a cycle nor a resource
// (constants and constant shifts, which are wiring on an FPGA).
func (k OpKind) IsFree() bool { return k == OpConst || k == OpShl || k == OpShr }

// Op is one behavioral operation. Args index earlier operations in the same
// OpGraph, which makes every OpGraph a DAG by construction.
type Op struct {
	Kind OpKind
	// Width is the result bit width (for OpMul, the *input* operand width;
	// the product is tracked by the consuming op's width).
	Width int
	// Label carries the memory segment name for reads/writes and is free
	// form otherwise.
	Label string
	// Args are producer op indices (must be < this op's own index).
	Args []int
}

// OpGraph is a behavioral data-flow graph for a single task.
type OpGraph struct {
	Name string
	ops  []Op
}

// NewOpGraph returns an empty op graph.
func NewOpGraph(name string) *OpGraph { return &OpGraph{Name: name} }

// Add appends an operation and returns its index. It panics if an argument
// index is out of range (builder misuse, not runtime input).
func (g *OpGraph) Add(kind OpKind, width int, label string, args ...int) int {
	for _, a := range args {
		if a < 0 || a >= len(g.ops) {
			panic(fmt.Sprintf("hls: op arg %d out of range (graph %q has %d ops)", a, g.Name, len(g.ops)))
		}
	}
	g.ops = append(g.ops, Op{Kind: kind, Width: width, Label: label, Args: args})
	return len(g.ops) - 1
}

// NumOps returns the number of operations.
func (g *OpGraph) NumOps() int { return len(g.ops) }

// Op returns operation i.
func (g *OpGraph) Op(i int) Op { return g.ops[i] }

// Validate checks argument arities and widths.
func (g *OpGraph) Validate() error {
	for i, op := range g.ops {
		if op.Width <= 0 && op.Kind != OpWrite {
			return fmt.Errorf("hls: %s op %d has non-positive width", op.Kind, i)
		}
		var wantArgs string
		switch op.Kind {
		case OpConst, OpRead:
			if len(op.Args) != 0 {
				wantArgs = "0"
			}
		case OpWrite:
			if len(op.Args) != 1 {
				wantArgs = "1"
			}
		case OpAdd, OpSub, OpMul:
			if len(op.Args) != 2 {
				wantArgs = "2"
			}
		case OpMac:
			if len(op.Args) != 2 && len(op.Args) != 3 {
				wantArgs = "2 or 3"
			}
		case OpShl, OpShr:
			if len(op.Args) != 1 {
				wantArgs = "1"
			}
		default:
			return fmt.Errorf("hls: op %d has unknown kind %d", i, int(op.Kind))
		}
		if wantArgs != "" {
			return fmt.Errorf("hls: %s op %d has %d args, want %s", op.Kind, i, len(op.Args), wantArgs)
		}
		for _, a := range op.Args {
			if a >= i {
				return fmt.Errorf("hls: op %d references later op %d", i, a)
			}
		}
	}
	return nil
}

// MemOps counts memory reads and writes.
func (g *OpGraph) MemOps() (reads, writes int) {
	for _, op := range g.ops {
		switch op.Kind {
		case OpRead:
			reads++
		case OpWrite:
			writes++
		}
	}
	return
}

// ErrEmptyGraph is returned when estimating an op graph with no
// schedulable operations.
var ErrEmptyGraph = errors.New("hls: op graph has no schedulable operations")

// VectorProduct builds the paper's Fig. 8 task: an n-element dot product of
// a memory-resident vector with a constant coefficient vector, reading from
// segment inSeg and writing to outSeg.
//
// mulWidth is the multiplier input width (9 or 17 in the case study);
// accWidth the accumulator/adder width (16 or 24). When chained is true the
// multiply-accumulates are emitted as OpMac (the static-design style);
// otherwise separate OpMul/OpAdd are used (the RTR task style).
func VectorProduct(name string, n, mulWidth, accWidth int, inSeg, outSeg string, chained bool) *OpGraph {
	g := NewOpGraph(name)
	if chained {
		acc := -1
		for i := 0; i < n; i++ {
			x := g.Add(OpRead, mulWidth, inSeg)
			c := g.Add(OpConst, mulWidth, fmt.Sprintf("c%d", i))
			if acc < 0 {
				acc = g.Add(OpMac, mulWidth, "", x, c)
			} else {
				acc = g.Add(OpMac, mulWidth, "", x, c, acc)
			}
		}
		g.Add(OpWrite, accWidth, outSeg, acc)
		return g
	}
	prods := make([]int, n)
	for i := 0; i < n; i++ {
		x := g.Add(OpRead, mulWidth, inSeg)
		c := g.Add(OpConst, mulWidth, fmt.Sprintf("c%d", i))
		prods[i] = g.Add(OpMul, mulWidth, "", x, c)
	}
	acc := prods[0]
	for i := 1; i < n; i++ {
		acc = g.Add(OpAdd, accWidth, "", acc, prods[i])
	}
	g.Add(OpWrite, accWidth, outSeg, acc)
	return g
}

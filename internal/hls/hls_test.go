package hls

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpGraphValidate(t *testing.T) {
	g := NewOpGraph("ok")
	r := g.Add(OpRead, 9, "in")
	c := g.Add(OpConst, 9, "c0")
	m := g.Add(OpMul, 9, "", r, c)
	g.Add(OpWrite, 16, "out", m)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := NewOpGraph("bad-arity")
	x := bad.Add(OpRead, 8, "in")
	bad.Add(OpAdd, 8, "", x) // add needs 2 args
	if err := bad.Validate(); err == nil {
		t.Error("1-arg add accepted")
	}

	bad2 := NewOpGraph("bad-width")
	bad2.Add(OpRead, 0, "in")
	if err := bad2.Validate(); err == nil {
		t.Error("zero-width op accepted")
	}
}

func TestVectorProductShape(t *testing.T) {
	g := VectorProduct("t1", 4, 9, 16, "in", "out", false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	reads, writes := g.MemOps()
	if reads != 4 || writes != 1 {
		t.Errorf("mem ops = %d reads, %d writes; want 4, 1", reads, writes)
	}
	// 4 reads + 4 consts + 4 muls + 3 adds + 1 write = 16 ops.
	if g.NumOps() != 16 {
		t.Errorf("NumOps = %d, want 16", g.NumOps())
	}

	gc := VectorProduct("t1c", 4, 9, 16, "in", "out", true)
	if err := gc.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 reads + 4 consts + 4 macs + 1 write = 13 ops.
	if gc.NumOps() != 13 {
		t.Errorf("chained NumOps = %d, want 13", gc.NumOps())
	}
}

// TestLibraryCalibration pins the component characterization against the
// paper's XC4044 data points (see DESIGN.md section 2).
func TestLibraryCalibration(t *testing.T) {
	lib := XC4000Library()
	mul9, err := lib.Component(OpMul, 9)
	if err != nil {
		t.Fatal(err)
	}
	if mul9.CLBs != 41 {
		t.Errorf("mul9 CLBs = %d, want 41", mul9.CLBs)
	}
	if mul9.DelayNS != 41 {
		t.Errorf("mul9 delay = %g, want 41", mul9.DelayNS)
	}
	mul17, _ := lib.Component(OpMul, 17)
	if mul17.CLBs != 145 {
		t.Errorf("mul17 CLBs = %d, want 145", mul17.CLBs)
	}
	if mul17.DelayNS != 65 {
		t.Errorf("mul17 delay = %g, want 65", mul17.DelayNS)
	}
	add16, _ := lib.Component(OpAdd, 16)
	if add16.CLBs != 9 {
		t.Errorf("add16 CLBs = %d, want 9", add16.CLBs)
	}
	// MAC widths follow the paper's multiplier/adder pairing.
	mac17, _ := lib.Component(OpMac, 17)
	if mac17.CLBs != mul17.CLBs+13 { // add24 = 13 CLBs
		t.Errorf("mac17 CLBs = %d, want %d", mac17.CLBs, mul17.CLBs+13)
	}
	if _, err := lib.Component(OpRead, 8); err == nil {
		t.Error("memory op should have no functional unit")
	}
	if _, err := lib.Component(OpAdd, 0); err == nil {
		t.Error("zero width component accepted")
	}
}

// TestTaskEstimatesMatchPaper verifies the headline calibration: T1 tasks
// estimate to 70 CLBs with a 50 ns clock, T2 tasks to 180 CLBs with a
// 70 ns clock (paper Sec. 4).
func TestTaskEstimatesMatchPaper(t *testing.T) {
	lib := XC4000Library()
	cons := Constraints{}

	t1 := VectorProduct("T1", 4, 9, 16, "in", "mid", false)
	e1, err := EstimateTask(t1, lib, cons)
	if err != nil {
		t.Fatal(err)
	}
	if e1.CLBs != 70 {
		t.Errorf("T1 CLBs = %d (breakdown %+v), want 70", e1.CLBs, e1.Breakdown)
	}
	if e1.ClockNS != 50 {
		t.Errorf("T1 clock = %g ns, want 50", e1.ClockNS)
	}

	t2 := VectorProduct("T2", 4, 17, 24, "mid", "out", false)
	e2, err := EstimateTask(t2, lib, cons)
	if err != nil {
		t.Fatal(err)
	}
	if e2.CLBs != 180 {
		t.Errorf("T2 CLBs = %d (breakdown %+v), want 180", e2.CLBs, e2.Breakdown)
	}
	if e2.ClockNS != 70 {
		t.Errorf("T2 clock = %g ns, want 70", e2.ClockNS)
	}
}

// TestStaticClockMatchesPaper: a chained 17-bit MAC design clocks at 100 ns.
func TestStaticClockMatchesPaper(t *testing.T) {
	lib := XC4000Library()
	alloc := Allocation{
		{OpMac, 9}:  2,
		{OpMac, 17}: 2,
	}
	clock, err := ChooseClock(alloc, lib, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if clock != 100 {
		t.Errorf("static clock = %g ns, want 100", clock)
	}
}

func TestChooseClockUserConstraint(t *testing.T) {
	lib := XC4000Library()
	alloc := Allocation{{OpMul, 17}: 1}
	if _, err := ChooseClock(alloc, lib, Constraints{MaxClockNS: 50}); err == nil {
		t.Error("clock constraint violation not reported")
	}
	clock, err := ChooseClock(Allocation{{OpAdd, 8}: 1}, lib, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// Memory access (25 ns) dominates an 8-bit adder (13.6 ns): 25+4 -> 30.
	if clock != 30 {
		t.Errorf("clock = %g, want 30 (memory bound)", clock)
	}
}

func TestASAPALAP(t *testing.T) {
	g := VectorProduct("t", 4, 9, 16, "in", "out", false)
	asap := ASAP(g)
	lat := 0
	for i, s := range asap {
		if !g.Op(i).Kind.IsFree() && s+1 > lat {
			lat = s + 1
		}
	}
	alap := ALAP(g, lat)
	for i := range asap {
		if g.Op(i).Kind.IsFree() {
			continue
		}
		if alap[i] < asap[i] {
			t.Errorf("op %d: alap %d < asap %d", i, alap[i], asap[i])
		}
	}
}

func TestListScheduleSingleTask(t *testing.T) {
	g := VectorProduct("t", 4, 9, 16, "in", "out", false)
	alloc := MinimalAllocation(g)
	s, err := ListSchedule([]*OpGraph{g}, []Allocation{alloc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify([]*OpGraph{g}, []Allocation{alloc}, 1); err != nil {
		t.Fatal(err)
	}
	// Lower bound: 5 memory ops serialized, plus the dependent chain.
	if s.Cycles < 5 {
		t.Errorf("cycles = %d, impossible (< 5 memory ops)", s.Cycles)
	}
}

func TestListScheduleMemoryBound(t *testing.T) {
	// 16 parallel T1-style tasks on one port: >= 80 cycles (80 memory ops).
	var tasks []*OpGraph
	var allocs []Allocation
	for i := 0; i < 16; i++ {
		g := VectorProduct("t", 4, 9, 16, "in", "out", false)
		tasks = append(tasks, g)
		allocs = append(allocs, MinimalAllocation(g))
	}
	s, err := ListSchedule(tasks, allocs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(tasks, allocs, 1); err != nil {
		t.Fatal(err)
	}
	if s.Cycles < 80 {
		t.Errorf("cycles = %d < 80 memory ops on one port", s.Cycles)
	}
	if s.Cycles > 95 {
		t.Errorf("cycles = %d, scheduler leaves too much slack (want <= 95)", s.Cycles)
	}
	// With two ports the makespan must drop.
	s2, err := ListSchedule(tasks, allocs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cycles >= s.Cycles {
		t.Errorf("2-port schedule (%d) not faster than 1-port (%d)", s2.Cycles, s.Cycles)
	}
}

func TestSynthesizePartitionMatchesPaperShape(t *testing.T) {
	lib := XC4000Library()
	// Partition 1 of the case study: 16 T1 tasks.
	var tasks []*OpGraph
	for i := 0; i < 16; i++ {
		tasks = append(tasks, VectorProduct("T1", 4, 9, 16, "in", "mid", false))
	}
	pd, err := SynthesizePartition(tasks, lib, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if pd.ClockNS != 50 {
		t.Errorf("partition clock = %g, want 50", pd.ClockNS)
	}
	if pd.CLBs != 16*70 {
		t.Errorf("partition CLBs = %d, want %d", pd.CLBs, 16*70)
	}
	// Paper reports 68 cycles; our memory-port model yields ~80-90 (each
	// task reads its own operands). Assert the band and document the delta.
	if pd.Cycles < 80 || pd.Cycles > 95 {
		t.Errorf("partition cycles = %d, want in [80, 95]", pd.Cycles)
	}
}

func TestSynthesizeStatic160Cycles(t *testing.T) {
	lib := XC4000Library()
	// The paper's static DCT: 32 chained vector products sharing
	// 2 mac9 + 2 mac17 units -> 160 memory ops on one port.
	var tasks []*OpGraph
	for i := 0; i < 16; i++ {
		tasks = append(tasks, VectorProduct("T1", 4, 9, 16, "in", "mid", true))
	}
	for i := 0; i < 16; i++ {
		tasks = append(tasks, VectorProduct("T2", 4, 17, 24, "mid", "out", true))
	}
	alloc := Allocation{{OpMac, 9}: 2, {OpMac, 17}: 2}
	pd, err := SynthesizeStatic(tasks, alloc, lib, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if pd.ClockNS != 100 {
		t.Errorf("static clock = %g, want 100", pd.ClockNS)
	}
	if pd.Cycles < 160 || pd.Cycles > 170 {
		t.Errorf("static cycles = %d, want in [160, 170] (paper: 160)", pd.Cycles)
	}
}

func TestControllerPlain(t *testing.T) {
	g := VectorProduct("t", 4, 9, 16, "in", "out", false)
	alloc := MinimalAllocation(g)
	s, _ := ListSchedule([]*OpGraph{g}, []Allocation{alloc}, 1)
	f := SynthesizeController("t", s)
	// start + body per cycle + finish.
	if f.NumStates() != s.Cycles+2 {
		t.Errorf("states = %d, want %d", f.NumStates(), s.Cycles+2)
	}
	res, err := f.Run(5) // k ignored without iteration counter
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("plain controller iterations = %d, want 1", res.Iterations)
	}
	if res.Cycles != s.Cycles+1 { // body states + finish state
		t.Errorf("controller cycles = %d, want %d", res.Cycles, s.Cycles+1)
	}
}

func TestControllerAugmented(t *testing.T) {
	g := VectorProduct("t", 4, 9, 16, "in", "out", false)
	alloc := MinimalAllocation(g)
	s, _ := ListSchedule([]*OpGraph{g}, []Allocation{alloc}, 1)
	f := AugmentForRTR(SynthesizeController("t", s))
	if !f.HasIterationCounter {
		t.Fatal("augmented controller lost its iteration counter")
	}
	for _, k := range []int{1, 2, 7, 100} {
		res, err := f.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != k {
			t.Errorf("k=%d: iterations = %d", k, res.Iterations)
		}
		// k body passes + k check states + 1 finish.
		want := k*(s.Cycles+1) + 1
		if res.Cycles != want {
			t.Errorf("k=%d: cycles = %d, want %d", k, res.Cycles, want)
		}
	}
	if str := f.String(); len(str) == 0 {
		t.Error("empty FSM rendering")
	}
}

// Property: list schedules verify for random op graphs, allocations and
// port counts, and more ports never make the schedule longer.
func TestScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTasks := 1 + rng.Intn(4)
		var tasks []*OpGraph
		var allocs []Allocation
		for i := 0; i < nTasks; i++ {
			n := 2 + rng.Intn(6)
			g := VectorProduct("t", n, 5+rng.Intn(12), 16, "in", "out", rng.Intn(2) == 0)
			tasks = append(tasks, g)
			allocs = append(allocs, MinimalAllocation(g))
		}
		s1, err := ListSchedule(tasks, allocs, 1)
		if err != nil {
			return false
		}
		if err := s1.Verify(tasks, allocs, 1); err != nil {
			return false
		}
		s2, err := ListSchedule(tasks, allocs, 2)
		if err != nil {
			return false
		}
		if err := s2.Verify(tasks, allocs, 2); err != nil {
			return false
		}
		return s2.Cycles <= s1.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEstimateTaskErrors(t *testing.T) {
	lib := XC4000Library()
	empty := NewOpGraph("empty")
	if _, err := EstimateTask(empty, lib, Constraints{}); err == nil {
		t.Error("empty graph estimated without error")
	}
	onlyConst := NewOpGraph("consts")
	onlyConst.Add(OpConst, 8, "c")
	if _, err := EstimateTask(onlyConst, lib, Constraints{}); err == nil {
		t.Error("const-only graph estimated without error")
	}
}

func TestScheduleMismatchedArgs(t *testing.T) {
	g := VectorProduct("t", 2, 9, 16, "in", "out", false)
	if _, err := ListSchedule([]*OpGraph{g}, nil, 1); err == nil {
		t.Error("mismatched allocs accepted")
	}
	if _, err := ListSchedule([]*OpGraph{g}, []Allocation{MinimalAllocation(g)}, 0); err == nil {
		t.Error("zero ports accepted")
	}
}

package hls

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func scheduledVP(t testing.TB, n int) ([]*OpGraph, *Schedule) {
	t.Helper()
	var tasks []*OpGraph
	var allocs []Allocation
	for i := 0; i < n; i++ {
		g := VectorProduct("vp", 4, 9, 16, "in", "out", false)
		tasks = append(tasks, g)
		allocs = append(allocs, MinimalAllocation(g))
	}
	s, err := ListSchedule(tasks, allocs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tasks, s
}

func TestLifetimesWellFormed(t *testing.T) {
	tasks, s := scheduledVP(t, 1)
	lts, err := AnalyzeLifetimes(tasks, s, XC4000Library())
	if err != nil {
		t.Fatal(err)
	}
	// Values: 4 reads + 4 muls + 3 adds = 11 (write produces none).
	if len(lts) != 11 {
		t.Fatalf("lifetimes = %d, want 11", len(lts))
	}
	for _, lt := range lts {
		if lt.Start < 1 {
			t.Errorf("value %v starts at %d", lt.Ref, lt.Start)
		}
		if lt.End > s.Cycles {
			t.Errorf("value %v ends at %d > makespan %d", lt.Ref, lt.End, s.Cycles)
		}
		if lt.Width <= 0 {
			t.Errorf("value %v has width %d", lt.Ref, lt.Width)
		}
	}
}

func TestBindRegistersSharesBelowNaive(t *testing.T) {
	tasks, s := scheduledVP(t, 1)
	rb, err := BindRegisters(tasks, s, XC4000Library())
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Verify(); err != nil {
		t.Fatal(err)
	}
	// Sharing must beat one-register-per-value (11 values).
	if rb.NumRegisters() >= 11 {
		t.Errorf("binding used %d registers for 11 values (no sharing)", rb.NumRegisters())
	}
	if rb.NumRegisters() < 2 {
		t.Errorf("binding used %d registers (lifetimes must overlap)", rb.NumRegisters())
	}
	if rb.TotalBits() <= 0 {
		t.Error("no register bits accounted")
	}
}

func TestBindRegistersMultiTask(t *testing.T) {
	tasks, s := scheduledVP(t, 4)
	rb, err := BindRegisters(tasks, s, XC4000Library())
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(rb.Assign) != 4*11 {
		t.Errorf("assigned %d values, want 44", len(rb.Assign))
	}
}

func TestVerifyCatchesDoubleBooking(t *testing.T) {
	rb := &RegisterBinding{
		Assign: map[OpRef]int{{0, 0}: 0, {0, 1}: 0},
		Widths: []int{16},
		Lifetimes: []Lifetime{
			{Ref: OpRef{0, 0}, Start: 1, End: 5, Width: 16},
			{Ref: OpRef{0, 1}, Start: 3, End: 7, Width: 16},
		},
	}
	if err := rb.Verify(); err == nil {
		t.Error("overlapping lifetimes on one register accepted")
	}
	rb2 := &RegisterBinding{
		Assign: map[OpRef]int{{0, 0}: 0},
		Widths: []int{8},
		Lifetimes: []Lifetime{
			{Ref: OpRef{0, 0}, Start: 1, End: 2, Width: 16},
		},
	}
	if err := rb2.Verify(); err == nil {
		t.Error("narrow register accepted for wide value")
	}
}

// Property: for random vector-product mixes, the left-edge binding always
// verifies and never uses more registers than values.
func TestBindingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTasks := 1 + rng.Intn(4)
		var tasks []*OpGraph
		var allocs []Allocation
		for i := 0; i < nTasks; i++ {
			g := VectorProduct("t", 2+rng.Intn(6), 5+rng.Intn(12), 20, "in", "out", rng.Intn(2) == 0)
			tasks = append(tasks, g)
			allocs = append(allocs, MinimalAllocation(g))
		}
		s, err := ListSchedule(tasks, allocs, 1+rng.Intn(2))
		if err != nil {
			return false
		}
		rb, err := BindRegisters(tasks, s, XC4000Library())
		if err != nil {
			return false
		}
		if rb.Verify() != nil {
			return false
		}
		return rb.NumRegisters() <= len(rb.Assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

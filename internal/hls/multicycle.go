package hls

import (
	"fmt"
	"math"
	"sort"
)

// Multi-cycle operation support. The paper's estimation engine takes "the
// maximum clock-width for the design" as the user constraint. When the
// user clock is shorter than a component's combinational delay, the
// component does not force a slower clock — it becomes a multi-cycle unit
// occupying its functional unit for ⌈delay/clock⌉ consecutive cycles. This
// exposes the classic HLS clock/latency tradeoff: a faster clock shortens
// every single-cycle step but stretches multipliers over several cycles.

// Latencies maps functional-unit types to their op latency in cycles.
type Latencies map[FUType]int

// Latency returns the latency of a type (1 when unlisted).
func (l Latencies) Latency(ft FUType) int {
	if l == nil {
		return 1
	}
	if n, ok := l[ft]; ok && n > 0 {
		return n
	}
	return 1
}

// ClockAndLatencies selects the design clock under the user's maximum
// clock-width constraint and derives per-FU-type latencies:
//
//   - without a MaxClockNS constraint the clock stretches to the slowest
//     component (all latencies 1, identical to ChooseClock);
//   - with a constraint, the clock is the largest grid point not above
//     MaxClockNS (it must still cover a memory access), and components
//     slower than one period become multi-cycle.
func ClockAndLatencies(alloc Allocation, lib *Library, cons Constraints) (float64, Latencies, error) {
	cons = cons.withDefaults()
	natural, err := alloc.MaxDelay(lib)
	if err != nil {
		return 0, nil, err
	}
	natural = math.Max(natural, cons.MemoryAccessNS)
	naturalPeriod := math.Ceil((natural+cons.RegSetupNS)/cons.ClockGridNS) * cons.ClockGridNS

	clock := naturalPeriod
	if cons.MaxClockNS > 0 && naturalPeriod > cons.MaxClockNS {
		clock = math.Floor(cons.MaxClockNS/cons.ClockGridNS) * cons.ClockGridNS
		minPeriod := math.Ceil((cons.MemoryAccessNS+cons.RegSetupNS)/cons.ClockGridNS) * cons.ClockGridNS
		if clock < minPeriod {
			return 0, nil, fmt.Errorf("hls: user clock %.1f ns cannot cover a %.1f ns memory access",
				cons.MaxClockNS, cons.MemoryAccessNS)
		}
	}

	lat := Latencies{}
	for ft, n := range alloc {
		if n == 0 {
			continue
		}
		c, err := lib.Component(ft.Kind, ft.Width)
		if err != nil {
			return 0, nil, err
		}
		cycles := int(math.Ceil((c.DelayNS + cons.RegSetupNS) / clock))
		if cycles < 1 {
			cycles = 1
		}
		lat[ft] = cycles
	}
	return clock, lat, nil
}

// EstimateTaskMulticycle is EstimateTask under a binding user clock: it
// schedules with per-type latencies and reports the resulting cycle count
// and delay. With no MaxClockNS constraint it matches EstimateTask.
func EstimateTaskMulticycle(g *OpGraph, lib *Library, cons Constraints) (TaskEstimate, error) {
	cons = cons.withDefaults()
	if err := g.Validate(); err != nil {
		return TaskEstimate{}, err
	}
	alloc := MinimalAllocation(g)
	clock, lat, err := ClockAndLatencies(alloc, lib, cons)
	if err != nil {
		return TaskEstimate{}, err
	}
	sched, err := ListScheduleLatency([]*OpGraph{g}, []Allocation{alloc}, cons.MemoryPorts, lat)
	if err != nil {
		return TaskEstimate{}, err
	}
	bd, err := EstimateArea(g, alloc, lib)
	if err != nil {
		return TaskEstimate{}, err
	}
	return TaskEstimate{
		CLBs:       bd.Rounded,
		Cycles:     sched.Cycles,
		ClockNS:    clock,
		DelayNS:    float64(sched.Cycles) * clock,
		Allocation: alloc,
		Schedule:   sched,
		Breakdown:  bd,
	}, nil
}

// ListScheduleLatency is ListSchedule with per-FU-type multi-cycle
// latencies: an op of latency L occupies one unit of its type for L
// consecutive cycles and its result becomes available L cycles after
// issue. Memory ops always take one cycle (the clock floor covers the
// access time).
func ListScheduleLatency(tasks []*OpGraph, allocs []Allocation, memPorts int, lat Latencies) (*Schedule, error) {
	if len(tasks) != len(allocs) {
		return nil, fmt.Errorf("hls: %d tasks but %d allocations", len(tasks), len(allocs))
	}
	if memPorts < 1 {
		return nil, fmt.Errorf("hls: memPorts must be >= 1, got %d", memPorts)
	}
	remaining := 0
	alap := make([][]int, len(tasks))
	for ti, g := range tasks {
		if err := g.Validate(); err != nil {
			return nil, err
		}
		asap := ASAP(g)
		latBound := 0
		for i, s := range asap {
			if !g.Op(i).Kind.IsFree() && s+1 > latBound {
				latBound = s + 1
			}
		}
		if latBound == 0 {
			latBound = 1
		}
		alap[ti] = ALAP(g, latBound)
		for i := 0; i < g.NumOps(); i++ {
			if !g.Op(i).Kind.IsFree() {
				remaining++
			}
		}
	}
	if remaining == 0 {
		return nil, ErrEmptyGraph
	}

	opLatency := func(op Op) int {
		if op.Kind.IsMemory() {
			return 1
		}
		return lat.Latency(FUType{op.Kind, op.Width})
	}

	// done[t][op] = cycle the result becomes available (issue + latency).
	done := make([][]int, len(tasks))
	for ti, g := range tasks {
		done[ti] = make([]int, g.NumOps())
		for i := range done[ti] {
			done[ti][i] = -1
		}
	}
	// busy[t][ft][cycle] tracks multi-cycle occupancy.
	busy := make([]map[FUType]map[int]int, len(tasks))
	for i := range busy {
		busy[i] = map[FUType]map[int]int{}
	}

	maxLat := 1
	for _, l := range lat {
		if l > maxLat {
			maxLat = l
		}
	}
	sched := &Schedule{}
	cycle := 0
	maxCycles := 16 * maxLat * (remaining + 8)
	for remaining > 0 {
		if cycle > maxCycles {
			return nil, fmt.Errorf("hls: latency scheduler failed to converge after %d cycles", cycle)
		}
		type cand struct {
			task, op, prio int
		}
		var ready []cand
		for ti, g := range tasks {
			for i := 0; i < g.NumOps(); i++ {
				op := g.Op(i)
				if op.Kind.IsFree() || done[ti][i] >= 0 {
					continue
				}
				ok := true
				for _, a := range op.Args {
					if !argReadyLat(g, done[ti], a, cycle) {
						ok = false
						break
					}
				}
				if ok {
					ready = append(ready, cand{ti, i, alap[ti][i]})
				}
			}
		}
		sort.Slice(ready, func(a, b int) bool {
			if ready[a].prio != ready[b].prio {
				return ready[a].prio < ready[b].prio
			}
			if ready[a].task != ready[b].task {
				return ready[a].task < ready[b].task
			}
			return ready[a].op < ready[b].op
		})
		memUsed := 0
		for _, r := range ready {
			op := tasks[r.task].Op(r.op)
			L := opLatency(op)
			if op.Kind.IsMemory() {
				if memUsed >= memPorts {
					continue
				}
				memUsed++
			} else {
				ft := FUType{op.Kind, op.Width}
				occ := busy[r.task][ft]
				if occ == nil {
					occ = map[int]int{}
					busy[r.task][ft] = occ
				}
				fits := true
				for cc := cycle; cc < cycle+L; cc++ {
					if occ[cc] >= allocs[r.task][ft] {
						fits = false
						break
					}
				}
				if !fits {
					continue
				}
				for cc := cycle; cc < cycle+L; cc++ {
					occ[cc]++
				}
			}
			done[r.task][r.op] = cycle + L
			sched.Ops = append(sched.Ops, ScheduledOp{Task: r.task, Op: r.op, Cycle: cycle})
			remaining--
		}
		sched.MemOpsPerCycle = append(sched.MemOpsPerCycle, memUsed)
		cycle++
	}
	// Makespan: the largest completion cycle.
	for ti := range done {
		for _, c := range done[ti] {
			if c > sched.Cycles {
				sched.Cycles = c
			}
		}
	}
	return sched, nil
}

// argReadyLat reports whether argument a's value is available at cycle,
// folding free producers.
func argReadyLat(g *OpGraph, done []int, a int, cycle int) bool {
	op := g.Op(a)
	if op.Kind.IsFree() {
		for _, p := range op.Args {
			if !argReadyLat(g, done, p, cycle) {
				return false
			}
		}
		return true
	}
	return done[a] >= 0 && done[a] <= cycle
}

package hls

import (
	"fmt"
	"math"
)

// Component is a characterized datapath component: the CLB cost and
// combinational delay of one functional unit instance on the target device.
type Component struct {
	Kind    OpKind
	Width   int
	Name    string
	CLBs    int
	DelayNS float64
}

// Library characterizes a device family. The paper's estimation engine
// "makes use of a component library characterized for the particular
// reconfigurable device"; this is that library for an XC4000-class part.
//
// Characterization formulas (see EXPERIMENTS.md for the calibration against
// the paper's reported XC4044 data points):
//
//	adder/subtractor (W bits):  ceil(W/2)+1 CLBs,  0.7*W + 8 ns
//	array multiplier (W x W):   ceil(W*W/2) CLBs,  3*W + 14 ns
//	multiply-accumulate (W):    mul(W) + add(W+7) chained
//
// A W-bit ripple adder packs two bit slices per XC4000 CLB; a W x W array
// multiplier needs about W*(W-1) full adders plus AND gates, i.e. ~W^2/2
// CLBs. The MAC chains the multiplier into a (W+7)-bit accumulator, which
// matches the paper's pairing of 9-bit multipliers with 16-bit adders and
// 17-bit multipliers with 24-bit adders.
type Library struct {
	Name string
	// AddCLB etc. may be overridden for other device families; the zero
	// value is not usable — construct with XC4000Library.
	addCLB    func(w int) int
	addDelay  func(w int) float64
	mulCLB    func(w int) int
	mulDelay  func(w int) float64
	macAccExt int // accumulator width extension for MACs
}

// XC4000Library returns the component library characterized for the Xilinx
// XC4000 family used in the paper's case study.
func XC4000Library() *Library {
	return &Library{
		Name:      "XC4000",
		addCLB:    func(w int) int { return (w+1)/2 + 1 },
		addDelay:  func(w int) float64 { return 0.7*float64(w) + 8 },
		mulCLB:    func(w int) int { return (w*w + 1) / 2 },
		mulDelay:  func(w int) float64 { return 3*float64(w) + 14 },
		macAccExt: 7,
	}
}

// Component characterizes one functional unit of the given kind and width.
// OpConst, OpShl, OpShr, OpRead and OpWrite have no functional unit; asking
// for one is an error.
func (l *Library) Component(kind OpKind, width int) (Component, error) {
	if width <= 0 {
		return Component{}, fmt.Errorf("hls: component width must be positive, got %d", width)
	}
	switch kind {
	case OpAdd, OpSub:
		return Component{
			Kind: kind, Width: width,
			Name:    fmt.Sprintf("%s%d", kind, width),
			CLBs:    l.addCLB(width),
			DelayNS: l.addDelay(width),
		}, nil
	case OpMul:
		return Component{
			Kind: kind, Width: width,
			Name:    fmt.Sprintf("mul%d", width),
			CLBs:    l.mulCLB(width),
			DelayNS: l.mulDelay(width),
		}, nil
	case OpMac:
		accW := width + l.macAccExt
		return Component{
			Kind: kind, Width: width,
			Name:    fmt.Sprintf("mac%d", width),
			CLBs:    l.mulCLB(width) + l.addCLB(accW),
			DelayNS: l.mulDelay(width) + l.addDelay(accW),
		}, nil
	}
	return Component{}, fmt.Errorf("hls: no functional unit for op kind %s", kind)
}

// FUType identifies a functional-unit type: the pair (kind, width).
type FUType struct {
	Kind  OpKind
	Width int
}

func (t FUType) String() string { return fmt.Sprintf("%s%d", t.Kind, t.Width) }

// Allocation maps functional-unit types to instance counts.
type Allocation map[FUType]int

// MinimalAllocation allocates exactly one functional unit per distinct
// (kind, width) used by the graph — the paper's area-minimal task style in
// which operations of a type share a single unit.
func MinimalAllocation(g *OpGraph) Allocation {
	a := Allocation{}
	for i := 0; i < g.NumOps(); i++ {
		op := g.Op(i)
		if op.Kind.NeedsFU() {
			t := FUType{op.Kind, op.Width}
			if a[t] == 0 {
				a[t] = 1
			}
		}
	}
	return a
}

// Clone returns a copy of the allocation.
func (a Allocation) Clone() Allocation {
	out := make(Allocation, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// TotalCLBs sums the CLB cost of all allocated functional units.
func (a Allocation) TotalCLBs(lib *Library) (int, error) {
	sum := 0
	for t, n := range a {
		c, err := lib.Component(t.Kind, t.Width)
		if err != nil {
			return 0, err
		}
		sum += n * c.CLBs
	}
	return sum, nil
}

// MaxDelay returns the slowest component delay in the allocation.
func (a Allocation) MaxDelay(lib *Library) (float64, error) {
	d := 0.0
	for t, n := range a {
		if n == 0 {
			continue
		}
		c, err := lib.Component(t.Kind, t.Width)
		if err != nil {
			return 0, err
		}
		d = math.Max(d, c.DelayNS)
	}
	return d, nil
}

package hls

import (
	"fmt"
	"math"
)

// Constraints carries the architecture and user constraints fed to the
// estimation engine (the paper: "the architecture constraints are the
// resources available on the FPGA, the user constraints are the maximum
// clock-width for the design").
type Constraints struct {
	// MaxClockNS is the user's maximum clock period; 0 means unconstrained.
	MaxClockNS float64
	// ClockGridNS quantizes the chosen clock period (default 10 ns, the
	// granularity of the paper's reported clocks).
	ClockGridNS float64
	// RegSetupNS is register setup + clock-to-out margin added to the
	// slowest combinational path (default 4 ns).
	RegSetupNS float64
	// MemoryPorts is the number of concurrently usable on-board memory
	// ports (default 1: the paper's single 64K bank).
	MemoryPorts int
	// MemoryAccessNS is the on-board memory access time (default 25 ns).
	MemoryAccessNS float64
}

// withDefaults fills zero fields.
func (c Constraints) withDefaults() Constraints {
	if c.ClockGridNS == 0 {
		c.ClockGridNS = 10
	}
	if c.RegSetupNS == 0 {
		c.RegSetupNS = 4
	}
	if c.MemoryPorts == 0 {
		c.MemoryPorts = 1
	}
	if c.MemoryAccessNS == 0 {
		c.MemoryAccessNS = 25
	}
	return c
}

// ResourceBreakdown itemizes a CLB estimate.
type ResourceBreakdown struct {
	FUs        int // functional units
	MemIface   int // memory address/data interface
	Registers  int // value registers
	Controller int // FSM
	Rounded    int // final floorplanning-rounded total
}

// TaskEstimate is the estimation engine's output for one task: the inputs
// R(t) and D(t) of the temporal partitioning ILP.
type TaskEstimate struct {
	// CLBs is R(t), the floorplanning-rounded resource estimate.
	CLBs int
	// Cycles is the scheduled control-step count for one task execution.
	Cycles int
	// ClockNS is the selected clock period.
	ClockNS float64
	// DelayNS is D(t) = Cycles * ClockNS.
	DelayNS float64
	// Allocation is the functional-unit set used.
	Allocation Allocation
	// Schedule is the task-local schedule behind Cycles.
	Schedule *Schedule
	// Breakdown itemizes the CLB estimate.
	Breakdown ResourceBreakdown
}

// ChooseClock selects the design clock period: the slowest allocated
// component delay (or the memory access time if larger) plus register
// setup, rounded up to the clock grid. An error is returned if the result
// violates the user's MaxClockNS.
func ChooseClock(alloc Allocation, lib *Library, cons Constraints) (float64, error) {
	cons = cons.withDefaults()
	d, err := alloc.MaxDelay(lib)
	if err != nil {
		return 0, err
	}
	d = math.Max(d, cons.MemoryAccessNS)
	period := d + cons.RegSetupNS
	period = math.Ceil(period/cons.ClockGridNS) * cons.ClockGridNS
	if cons.MaxClockNS > 0 && period > cons.MaxClockNS+1e-9 {
		return 0, fmt.Errorf("hls: required clock %.1f ns exceeds user maximum %.1f ns", period, cons.MaxClockNS)
	}
	return period, nil
}

// EstimateArea produces the CLB estimate for a task given its allocation.
//
// The model mirrors the paper's floorplanning-based layout estimation
// ([10,11]): functional units dominate; the memory interface scales with
// the widest datapath value; registers with the total registered bits; a
// small fixed controller; and the total is rounded to the nearest 10 CLBs
// as a floorplanning granularity.
func EstimateArea(g *OpGraph, alloc Allocation, lib *Library) (ResourceBreakdown, error) {
	fus, err := alloc.TotalCLBs(lib)
	if err != nil {
		return ResourceBreakdown{}, err
	}
	maxW := 0
	resultBits := 0
	hasMem := false
	for i := 0; i < g.NumOps(); i++ {
		op := g.Op(i)
		if op.Width > maxW {
			maxW = op.Width
		}
		if op.Kind.IsMemory() {
			hasMem = true
		}
		if op.Kind.NeedsFU() {
			w := op.Width
			if op.Kind == OpMul || op.Kind == OpMac {
				w = op.Width + lib.macAccExt // registered product width
			}
			resultBits += w
		}
	}
	bd := ResourceBreakdown{FUs: fus}
	if hasMem {
		bd.MemIface = (maxW + 1) / 2
	}
	bd.Registers = (resultBits + 15) / 16
	bd.Controller = 2
	total := bd.FUs + bd.MemIface + bd.Registers + bd.Controller
	bd.Rounded = int(math.Round(float64(total)/10) * 10)
	if bd.Rounded < bd.FUs { // rounding must never hide the FU floor
		bd.Rounded = total
	}
	return bd, nil
}

// EstimateTask runs the full estimation pipeline for a single task: minimal
// allocation, list scheduling against the allocation and one memory port,
// clock selection, and area estimation.
func EstimateTask(g *OpGraph, lib *Library, cons Constraints) (TaskEstimate, error) {
	cons = cons.withDefaults()
	if err := g.Validate(); err != nil {
		return TaskEstimate{}, err
	}
	alloc := MinimalAllocation(g)
	sched, err := ListSchedule([]*OpGraph{g}, []Allocation{alloc}, cons.MemoryPorts)
	if err != nil {
		return TaskEstimate{}, err
	}
	clock, err := ChooseClock(alloc, lib, cons)
	if err != nil {
		return TaskEstimate{}, err
	}
	bd, err := EstimateArea(g, alloc, lib)
	if err != nil {
		return TaskEstimate{}, err
	}
	return TaskEstimate{
		CLBs:       bd.Rounded,
		Cycles:     sched.Cycles,
		ClockNS:    clock,
		DelayNS:    float64(sched.Cycles) * clock,
		Allocation: alloc,
		Schedule:   sched,
		Breakdown:  bd,
	}, nil
}

// PartitionDesign is the synthesized result for one temporal partition:
// several task instances with private functional units sharing the board
// memory ports and a single merged controller.
type PartitionDesign struct {
	// Tasks are the behavioral graphs instantiated in this partition.
	Tasks []*OpGraph
	// Allocs are the per-task functional-unit sets.
	Allocs []Allocation
	// Schedule is the merged partition schedule.
	Schedule *Schedule
	// ClockNS is the partition clock (slowest component across all tasks).
	ClockNS float64
	// Cycles is the partition makespan for one computation.
	Cycles int
	// DelayNS is Cycles * ClockNS.
	DelayNS float64
	// CLBs is the summed area estimate of all task instances.
	CLBs int
}

// SynthesizePartition schedules a set of task instances as one temporal
// partition: each task keeps its private minimal allocation; all tasks
// share cons.MemoryPorts ports; the partition clock is set by the slowest
// component used by any task.
func SynthesizePartition(tasks []*OpGraph, lib *Library, cons Constraints) (*PartitionDesign, error) {
	cons = cons.withDefaults()
	if len(tasks) == 0 {
		return nil, ErrEmptyGraph
	}
	allocs := make([]Allocation, len(tasks))
	merged := Allocation{}
	clbs := 0
	for i, g := range tasks {
		allocs[i] = MinimalAllocation(g)
		for t, n := range allocs[i] {
			merged[t] += n
		}
		bd, err := EstimateArea(g, allocs[i], lib)
		if err != nil {
			return nil, err
		}
		clbs += bd.Rounded
	}
	sched, err := ListSchedule(tasks, allocs, cons.MemoryPorts)
	if err != nil {
		return nil, err
	}
	clock, err := ChooseClock(merged, lib, cons)
	if err != nil {
		return nil, err
	}
	return &PartitionDesign{
		Tasks:    tasks,
		Allocs:   allocs,
		Schedule: sched,
		ClockNS:  clock,
		Cycles:   sched.Cycles,
		DelayNS:  float64(sched.Cycles) * clock,
		CLBs:     clbs,
	}, nil
}

// SynthesizeStatic schedules all tasks as a single static (non-reconfigured)
// design with an explicit shared allocation — the paper's static co-design
// experiment style, where a fixed set of units (e.g. two 9-bit multipliers,
// two 17-bit multipliers, ...) serves every operation.
//
// Unlike SynthesizePartition, functional units are shared across tasks: the
// task list is merged into one op graph before scheduling.
func SynthesizeStatic(tasks []*OpGraph, alloc Allocation, lib *Library, cons Constraints) (*PartitionDesign, error) {
	cons = cons.withDefaults()
	if len(tasks) == 0 {
		return nil, ErrEmptyGraph
	}
	merged := NewOpGraph("static")
	for _, g := range tasks {
		base := merged.NumOps()
		for i := 0; i < g.NumOps(); i++ {
			op := g.Op(i)
			args := make([]int, len(op.Args))
			for k, a := range op.Args {
				args[k] = a + base
			}
			merged.Add(op.Kind, op.Width, op.Label, args...)
		}
	}
	sched, err := ListSchedule([]*OpGraph{merged}, []Allocation{alloc}, cons.MemoryPorts)
	if err != nil {
		return nil, err
	}
	clock, err := ChooseClock(alloc, lib, cons)
	if err != nil {
		return nil, err
	}
	bd, err := EstimateArea(merged, alloc, lib)
	if err != nil {
		return nil, err
	}
	return &PartitionDesign{
		Tasks:    []*OpGraph{merged},
		Allocs:   []Allocation{alloc},
		Schedule: sched,
		ClockNS:  clock,
		Cycles:   sched.Cycles,
		DelayNS:  float64(sched.Cycles) * clock,
		CLBs:     bd.Rounded,
	}, nil
}

package hls

import (
	"fmt"
	"strings"
)

// StateKind classifies controller states.
type StateKind int

const (
	// StateStart waits for the host's start signal (Fig. 7 "START STATE").
	StateStart StateKind = iota
	// StateBody executes one control step of the datapath schedule.
	StateBody
	// StateCheck compares the iteration counter against k (Fig. 7
	// "Is Iteration Counter < k").
	StateCheck
	// StateFinish asserts the finish signal to the host and returns to
	// StateStart ("END STATE").
	StateFinish
)

func (k StateKind) String() string {
	switch k {
	case StateStart:
		return "start"
	case StateBody:
		return "body"
	case StateCheck:
		return "check"
	case StateFinish:
		return "finish"
	}
	return fmt.Sprintf("StateKind(%d)", int(k))
}

// State is one controller state.
type State struct {
	Name string
	Kind StateKind
	// Next is the unconditional successor (body/finish states) or the
	// "true"/loop-back successor for start (on start signal) and check
	// (counter < k) states.
	Next int
	// Alt is the "false" successor for check states (counter == k) and is
	// unused otherwise (-1).
	Alt int
	// Step is the datapath control step driven by a body state (-1
	// otherwise).
	Step int
}

// FSM is a synthesized finite-state controller.
type FSM struct {
	Name   string
	States []State
	Start  int
	// HasIterationCounter reports whether the FSM carries the loop-fission
	// iteration counter and k register of Fig. 7.
	HasIterationCounter bool
}

// SynthesizeController builds the plain (non-RTR) controller for a
// schedule: a linear chain of body states, one per control step, ending in
// a finish state that loops back to a start state. This is the classic HLS
// controller before the Fig. 7 augmentation.
func SynthesizeController(name string, sched *Schedule) *FSM {
	f := &FSM{Name: name}
	start := f.add(State{Name: "S_START", Kind: StateStart, Alt: -1, Step: -1})
	f.Start = start
	prev := start
	for c := 0; c < sched.Cycles; c++ {
		s := f.add(State{Name: fmt.Sprintf("S%d", c), Kind: StateBody, Alt: -1, Step: c})
		f.States[prev].Next = s
		prev = s
	}
	fin := f.add(State{Name: "S_FINISH", Kind: StateFinish, Alt: -1, Step: -1})
	f.States[prev].Next = fin
	f.States[fin].Next = start
	return f
}

// AugmentForRTR converts a plain controller into the paper's Fig. 7
// augmented controller for a temporal partition under loop fission: after
// the last body state, a check state tests the iteration counter against
// the k register; if more iterations remain the counter increments and
// control returns to the first body state; otherwise the finish signal is
// raised and the FSM parks in the start state awaiting the host.
func AugmentForRTR(f *FSM) *FSM {
	g := &FSM{Name: f.Name + "_rtr", HasIterationCounter: true}
	start := g.add(State{Name: "S_START", Kind: StateStart, Alt: -1, Step: -1})
	g.Start = start
	prev := start
	firstBody := -1
	for _, s := range f.States {
		if s.Kind != StateBody {
			continue
		}
		ns := g.add(State{Name: s.Name, Kind: StateBody, Alt: -1, Step: s.Step})
		if firstBody < 0 {
			firstBody = ns
		}
		g.States[prev].Next = ns
		prev = ns
	}
	check := g.add(State{Name: "S_CHECK", Kind: StateCheck, Step: -1})
	g.States[prev].Next = check
	fin := g.add(State{Name: "S_FINISH", Kind: StateFinish, Alt: -1, Step: -1})
	if firstBody < 0 {
		firstBody = check
	}
	g.States[check].Next = firstBody // counter < k: loop back
	g.States[check].Alt = fin        // counter == k: finish
	g.States[fin].Next = start
	return g
}

func (f *FSM) add(s State) int {
	f.States = append(f.States, s)
	return len(f.States) - 1
}

// NumStates returns the number of controller states.
func (f *FSM) NumStates() int { return len(f.States) }

// RunResult reports a behavioral FSM execution.
type RunResult struct {
	// Cycles counts state transitions from leaving start to asserting
	// finish (the hardware execution time in clock cycles).
	Cycles int
	// Iterations is the number of datapath passes executed.
	Iterations int
}

// Run symbolically executes the FSM for k iterations (k is the fission
// iteration bound loaded in the k register; plain controllers execute one
// pass regardless). It returns the cycle count between the start signal and
// the finish signal, which the event simulator uses as ground truth.
func (f *FSM) Run(k int) (RunResult, error) {
	if k < 1 {
		k = 1
	}
	var res RunResult
	cur := f.Start
	if f.States[cur].Kind != StateStart {
		return res, fmt.Errorf("hls: FSM %q start state has kind %s", f.Name, f.States[cur].Kind)
	}
	counter := 0
	cur = f.States[cur].Next // start signal arrives
	guard := 0
	for {
		guard++
		if guard > 100000000 {
			return res, fmt.Errorf("hls: FSM %q did not terminate", f.Name)
		}
		s := f.States[cur]
		switch s.Kind {
		case StateBody:
			res.Cycles++
			cur = s.Next
		case StateCheck:
			res.Cycles++
			counter++
			res.Iterations = counter
			if f.HasIterationCounter && counter < k {
				cur = s.Next
			} else {
				cur = s.Alt
			}
		case StateFinish:
			res.Cycles++
			if !f.HasIterationCounter {
				res.Iterations = 1
			}
			return res, nil
		case StateStart:
			return res, fmt.Errorf("hls: FSM %q re-entered start before finish", f.Name)
		}
	}
}

// String renders the FSM as a readable state table.
func (f *FSM) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsm %s (%d states%s)\n", f.Name, len(f.States),
		map[bool]string{true: ", iteration counter", false: ""}[f.HasIterationCounter])
	for i, s := range f.States {
		marker := " "
		if i == f.Start {
			marker = "*"
		}
		switch s.Kind {
		case StateCheck:
			fmt.Fprintf(&b, "%s %-10s %-6s -> %s | %s\n", marker, s.Name, s.Kind,
				f.States[s.Next].Name, f.States[s.Alt].Name)
		default:
			next := "-"
			if s.Next >= 0 && s.Next < len(f.States) {
				next = f.States[s.Next].Name
			}
			fmt.Fprintf(&b, "%s %-10s %-6s -> %s\n", marker, s.Name, s.Kind, next)
		}
	}
	return b.String()
}

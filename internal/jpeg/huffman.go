package jpeg

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// JPEG-style entropy coding for the host software stage: zig-zagged,
// quantized coefficients are run-length coded into (zero-run, size)
// symbols with appended magnitude bits, then Huffman coded with a canonical
// code built from the actual symbol frequencies. The table is serialized in
// the stream header so the output is self-contained and decodable.

// rleSymbol encodes a run of zeros followed by a nonzero value's size
// category, mirroring JPEG AC coefficient coding. DC terms are delta-coded
// with run = 0. EOB (end of block) is symbol {15, 0} reused as a sentinel.
type rleSymbol struct {
	Run  int // zeros preceding the value (0..14)
	Size int // bits in the magnitude (0 for EOB)
}

const (
	maxRun  = 14
	eobRun  = 15
	maxSize = 24
)

func (s rleSymbol) id() int { return s.Run*32 + s.Size }

func symbolFromID(id int) rleSymbol { return rleSymbol{Run: id / 32, Size: id % 32} }

// sizeCategory returns the number of bits needed for v's magnitude.
func sizeCategory(v int) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// BitWriter accumulates a bitstream MSB first.
type BitWriter struct {
	buf  []byte
	nbit uint8
}

// WriteBits appends the low n bits of v, MSB first.
func (w *BitWriter) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		if w.nbit == 0 {
			w.buf = append(w.buf, 0)
		}
		w.buf[len(w.buf)-1] |= bit << (7 - w.nbit)
		w.nbit = (w.nbit + 1) % 8
	}
}

// Bytes returns the accumulated stream.
func (w *BitWriter) Bytes() []byte { return w.buf }

// Len returns the total number of bits written.
func (w *BitWriter) Len() int {
	if w.nbit == 0 {
		return len(w.buf) * 8
	}
	return (len(w.buf)-1)*8 + int(w.nbit)
}

// BitReader consumes a bitstream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps a byte stream.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// ReadBits reads n bits MSB first.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.pos / 8
		if byteIdx >= len(r.buf) {
			return 0, errors.New("jpeg: bitstream underrun")
		}
		bit := (r.buf[byteIdx] >> (7 - uint(r.pos%8))) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// huffNode is a Huffman tree node for code construction.
type huffNode struct {
	freq        int
	sym         int // -1 for internal
	left, right *huffNode
	order       int // tie-break for determinism
}

type nodeHeap []*huffNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// HuffmanTable is a canonical Huffman code: symbol id -> (code, length).
type HuffmanTable struct {
	Lengths map[int]int
	Codes   map[int]uint64
}

// buildHuffman constructs a canonical Huffman table from frequencies.
func buildHuffman(freq map[int]int) (*HuffmanTable, error) {
	if len(freq) == 0 {
		return nil, errors.New("jpeg: no symbols to code")
	}
	h := &nodeHeap{}
	order := 0
	for sym, f := range freq {
		heap.Push(h, &huffNode{freq: f, sym: sym, order: sym})
		order++
	}
	if h.Len() == 1 {
		// Degenerate single-symbol alphabet: assign a 1-bit code.
		n := (*h)[0]
		return canonical(map[int]int{n.sym: 1})
	}
	next := 1 << 20
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b, order: next})
		next++
	}
	root := heap.Pop(h).(*huffNode)
	lengths := map[int]int{}
	var walk func(n *huffNode, depth int)
	walk = func(n *huffNode, depth int) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return canonical(lengths)
}

// canonical assigns canonical codes given code lengths.
func canonical(lengths map[int]int) (*HuffmanTable, error) {
	type sl struct{ sym, len int }
	list := make([]sl, 0, len(lengths))
	maxLen := 0
	for s, l := range lengths {
		if l <= 0 || l > 57 {
			return nil, fmt.Errorf("jpeg: invalid code length %d", l)
		}
		list = append(list, sl{s, l})
		if l > maxLen {
			maxLen = l
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].len != list[j].len {
			return list[i].len < list[j].len
		}
		return list[i].sym < list[j].sym
	})
	codes := map[int]uint64{}
	code := uint64(0)
	prevLen := 0
	for _, e := range list {
		code <<= uint(e.len - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.len
	}
	if maxLen < 64 && code > 1<<uint(maxLen) {
		return nil, errors.New("jpeg: code length overflow (non-Kraft lengths)")
	}
	return &HuffmanTable{Lengths: lengths, Codes: codes}, nil
}

// decoder is a simple canonical-code decoder (bit-at-a-time table walk).
type decoder struct {
	byCode map[uint64]int // (len<<32 | code) -> sym  (lengths < 58 keep this unambiguous)
	maxLen int
}

func newDecoder(t *HuffmanTable) *decoder {
	d := &decoder{byCode: map[uint64]int{}}
	for sym, code := range t.Codes {
		l := t.Lengths[sym]
		d.byCode[uint64(l)<<58|code] = sym
		if l > d.maxLen {
			d.maxLen = l
		}
	}
	return d
}

func (d *decoder) read(r *BitReader) (int, error) {
	code := uint64(0)
	for l := 1; l <= d.maxLen; l++ {
		b, err := r.ReadBits(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if sym, ok := d.byCode[uint64(l)<<58|code]; ok {
			return sym, nil
		}
	}
	return 0, errors.New("jpeg: invalid Huffman code")
}

// EncodeBlocks entropy-codes a sequence of zig-zagged quantized blocks into
// a self-contained bitstream (header with block count and Huffman table,
// then the coded data).
func EncodeBlocks(blocks [][N * N]int) ([]byte, error) {
	syms, extras := symbolize(blocks)
	freq := map[int]int{}
	for _, s := range syms {
		freq[s.id()]++
	}
	table, err := buildHuffman(freq)
	if err != nil {
		return nil, err
	}
	w := &BitWriter{}
	// Header: block count (32b), table size (16b), then (symbol id 16b,
	// length 6b) entries.
	w.WriteBits(uint64(len(blocks)), 32)
	w.WriteBits(uint64(len(table.Lengths)), 16)
	ids := make([]int, 0, len(table.Lengths))
	for id := range table.Lengths {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w.WriteBits(uint64(id), 16)
		w.WriteBits(uint64(table.Lengths[id]), 6)
	}
	for i, s := range syms {
		w.WriteBits(table.Codes[s.id()], table.Lengths[s.id()])
		if s.Size > 0 {
			w.WriteBits(extras[i].bits, extras[i].n)
		}
	}
	return w.Bytes(), nil
}

type extraBits struct {
	bits uint64
	n    int
}

// symbolize converts blocks into RLE symbols + magnitude bits. The DC term
// of each block is delta-coded against the previous block's DC.
func symbolize(blocks [][N * N]int) ([]rleSymbol, []extraBits) {
	var syms []rleSymbol
	var extras []extraBits
	prevDC := 0
	emit := func(run, v int) {
		size := sizeCategory(v)
		syms = append(syms, rleSymbol{Run: run, Size: size})
		extras = append(extras, magnitude(v, size))
	}
	for _, blk := range blocks {
		emit(0, blk[0]-prevDC)
		prevDC = blk[0]
		run := 0
		for k := 1; k < N*N; k++ {
			v := blk[k]
			if v == 0 {
				run++
				continue
			}
			for run > maxRun {
				syms = append(syms, rleSymbol{Run: maxRun, Size: 0}) // ZRL-style filler
				extras = append(extras, extraBits{})
				run -= maxRun
			}
			emit(run, v)
			run = 0
		}
		// End of block, only when trailing zeros remain (standard JPEG
		// convention): a block whose last AC coefficient is nonzero ends
		// implicitly at k == N*N and the decoder must not expect an EOB.
		if run > 0 {
			syms = append(syms, rleSymbol{Run: eobRun, Size: 0})
			extras = append(extras, extraBits{})
		}
	}
	return syms, extras
}

// magnitude produces JPEG-style magnitude bits: positive values as-is,
// negative values as (v - 1) in size bits (one's-complement style).
func magnitude(v, size int) extraBits {
	if size == 0 {
		return extraBits{}
	}
	if v < 0 {
		v = v - 1
	}
	return extraBits{bits: uint64(v) & ((1 << uint(size)) - 1), n: size}
}

func demagnitude(bits uint64, size int) int {
	if size == 0 {
		return 0
	}
	v := int(bits)
	if v < 1<<uint(size-1) { // sign bit clear -> negative
		v = v - (1 << uint(size)) + 1
	}
	return v
}

// DecodeBlocks inverts EncodeBlocks.
func DecodeBlocks(data []byte) ([][N * N]int, error) {
	r := NewBitReader(data)
	nBlocks64, err := r.ReadBits(32)
	if err != nil {
		return nil, err
	}
	nSyms64, err := r.ReadBits(16)
	if err != nil {
		return nil, err
	}
	lengths := map[int]int{}
	for i := 0; i < int(nSyms64); i++ {
		id, err := r.ReadBits(16)
		if err != nil {
			return nil, err
		}
		l, err := r.ReadBits(6)
		if err != nil {
			return nil, err
		}
		lengths[int(id)] = int(l)
	}
	table, err := canonical(lengths)
	if err != nil {
		return nil, err
	}
	dec := newDecoder(table)

	blocks := make([][N * N]int, int(nBlocks64))
	prevDC := 0
	for b := range blocks {
		// DC.
		id, err := dec.read(r)
		if err != nil {
			return nil, err
		}
		s := symbolFromID(id)
		if s.Run != 0 {
			return nil, fmt.Errorf("jpeg: block %d: DC symbol has run %d", b, s.Run)
		}
		bits, err := r.ReadBits(s.Size)
		if err != nil {
			return nil, err
		}
		dc := prevDC + demagnitude(bits, s.Size)
		blocks[b][0] = dc
		prevDC = dc
		// AC.
		k := 1
		for k < N*N {
			id, err := dec.read(r)
			if err != nil {
				return nil, err
			}
			s := symbolFromID(id)
			if s.Run == eobRun && s.Size == 0 {
				break
			}
			if s.Size == 0 { // ZRL filler
				k += maxRun
				continue
			}
			k += s.Run
			if k >= N*N {
				return nil, fmt.Errorf("jpeg: block %d: run overflows block", b)
			}
			bits, err := r.ReadBits(s.Size)
			if err != nil {
				return nil, err
			}
			blocks[b][k] = demagnitude(bits, s.Size)
			k++
		}
	}
	return blocks, nil
}

package jpeg

import (
	"fmt"
	"math"
	"math/rand"
)

// Image is a grayscale image with 8-bit samples stored row major.
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the sample at (x, y).
func (im *Image) At(x, y int) uint8 { return im.Pix[y*im.W+x] }

// Set writes the sample at (x, y).
func (im *Image) Set(x, y int, v uint8) { im.Pix[y*im.W+x] = v }

// SyntheticKind selects a generated test pattern.
type SyntheticKind int

const (
	// Gradient is a smooth diagonal ramp (highly compressible).
	Gradient SyntheticKind = iota
	// Checker is an 8x8 checkerboard (high frequency content).
	Checker
	// Noise is uniform random samples (nearly incompressible).
	Noise
	// Photo mixes low-frequency structure with mild noise, approximating
	// natural image statistics.
	Photo
)

// Synthesize generates a deterministic test image.
func Synthesize(kind SyntheticKind, w, h int, seed int64) *Image {
	im := NewImage(w, h)
	rng := rand.New(rand.NewSource(seed))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var v int
			switch kind {
			case Gradient:
				v = (x + y) * 255 / max(1, w+h-2)
			case Checker:
				if (x/8+y/8)%2 == 0 {
					v = 220
				} else {
					v = 35
				}
			case Noise:
				v = rng.Intn(256)
			case Photo:
				v = 128 +
					int(80*math.Sin(float64(x)/17)*math.Cos(float64(y)/23)) +
					rng.Intn(11) - 5
			}
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Set(x, y, uint8(v))
		}
	}
	return im
}

// Blocks splits the image into level-shifted 4x4 blocks (samples - 128,
// the JPEG convention, keeping them in the 9-bit signed range of the T1
// multipliers). The image dimensions must be multiples of 4.
func (im *Image) Blocks() ([]Block, error) {
	if im.W%N != 0 || im.H%N != 0 {
		return nil, fmt.Errorf("jpeg: image %dx%d not a multiple of %d", im.W, im.H, N)
	}
	var out []Block
	for by := 0; by < im.H; by += N {
		for bx := 0; bx < im.W; bx += N {
			var b Block
			for i := 0; i < N; i++ {
				for j := 0; j < N; j++ {
					b[i][j] = int(im.At(bx+j, by+i)) - 128
				}
			}
			out = append(out, b)
		}
	}
	return out, nil
}

// FromBlocks reassembles an image from level-shifted blocks.
func FromBlocks(blocks []Block, w, h int) (*Image, error) {
	if w%N != 0 || h%N != 0 || len(blocks) != (w/N)*(h/N) {
		return nil, fmt.Errorf("jpeg: %d blocks do not tile %dx%d", len(blocks), w, h)
	}
	im := NewImage(w, h)
	bi := 0
	for by := 0; by < h; by += N {
		for bx := 0; bx < w; bx += N {
			b := blocks[bi]
			bi++
			for i := 0; i < N; i++ {
				for j := 0; j < N; j++ {
					v := b[i][j] + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					im.Set(bx+j, by+i, uint8(v))
				}
			}
		}
	}
	return im, nil
}

// PSNR computes the peak signal-to-noise ratio between two images in dB.
func PSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("jpeg: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for i := range a.Pix {
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// CompressResult summarizes an end-to-end compression run.
type CompressResult struct {
	Blocks     int
	Bytes      []byte
	BitsPerPix float64
	PSNRdB     float64
}

// Compress runs the full software pipeline (DCT via the hardware-faithful
// fixed-point model, quantization, zig-zag, Huffman) and measures the
// round-trip PSNR through the matching decompression path.
func Compress(im *Image, quality int) (*CompressResult, error) {
	qt, err := DefaultQuantTable().Scaled(quality)
	if err != nil {
		return nil, err
	}
	blocks, err := im.Blocks()
	if err != nil {
		return nil, err
	}
	zz := make([][N * N]int, len(blocks))
	for i, b := range blocks {
		zz[i] = ZigZag(Quantize(DCTFixed(b), qt))
	}
	data, err := EncodeBlocks(zz)
	if err != nil {
		return nil, err
	}
	// Round trip for PSNR.
	dec, err := Decompress(data, im.W, im.H, quality)
	if err != nil {
		return nil, err
	}
	psnr, err := PSNR(im, dec)
	if err != nil {
		return nil, err
	}
	return &CompressResult{
		Blocks:     len(blocks),
		Bytes:      data,
		BitsPerPix: float64(len(data)*8) / float64(im.W*im.H),
		PSNRdB:     psnr,
	}, nil
}

// Decompress inverts Compress (entropy decode, dequantize, inverse DCT).
func Decompress(data []byte, w, h, quality int) (*Image, error) {
	qt, err := DefaultQuantTable().Scaled(quality)
	if err != nil {
		return nil, err
	}
	zz, err := DecodeBlocks(data)
	if err != nil {
		return nil, err
	}
	blocks := make([]Block, len(zz))
	for i, v := range zz {
		deq := Dequantize(UnZigZag(v), qt)
		var fz FloatBlock
		for r := 0; r < N; r++ {
			for c := 0; c < N; c++ {
				fz[r][c] = float64(deq[r][c])
			}
		}
		rec := IDCTFloat(fz)
		for r := 0; r < N; r++ {
			for c := 0; c < N; c++ {
				blocks[i][r][c] = int(math.Round(rec[r][c]))
			}
		}
	}
	return FromBlocks(blocks, w, h)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Package jpeg implements the paper's case study substrate: the JPEG-style
// image compression co-design of Sec. 4. The 4x4-block Discrete Cosine
// Transform — the computationally intensive kernel mapped to the
// reconfigurable hardware — is modelled exactly as in the paper: two
// consecutive 4x4 matrix multiplications, expressed as 32 vector-product
// tasks of two types (T1/T2, Fig. 8). The remaining JPEG stages
// (quantization, zig-zag, and Huffman encoding) run as host software.
//
// The package provides both the functional implementation (so end-to-end
// examples compress and decompress real pixel data) and the task-graph
// builder consumed by the temporal partitioning and loop fission flow.
package jpeg

import (
	"fmt"
	"math"
)

// N is the DCT block edge length used by the paper's case study.
const N = 4

// Block is a 4x4 sample block (row major).
type Block [N][N]int

// FloatBlock is a 4x4 block of float64 coefficients.
type FloatBlock [N][N]float64

// dctMatrix returns the orthonormal 4x4 DCT-II matrix C, so that the 2-D
// transform is Z = C · X · Cᵀ.
func dctMatrix() FloatBlock {
	var c FloatBlock
	for j := 0; j < N; j++ {
		c[0][j] = 1 / math.Sqrt(N)
	}
	for i := 1; i < N; i++ {
		for j := 0; j < N; j++ {
			c[i][j] = math.Sqrt(2.0/N) * math.Cos(float64(2*j+1)*float64(i)*math.Pi/(2*N))
		}
	}
	return c
}

// DCTFloat computes the exact 2-D DCT of a block (reference
// implementation used to bound the fixed-point error).
func DCTFloat(x Block) FloatBlock {
	c := dctMatrix()
	// y = C * x
	var y FloatBlock
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			s := 0.0
			for k := 0; k < N; k++ {
				s += c[i][k] * float64(x[k][j])
			}
			y[i][j] = s
		}
	}
	// z = y * Cᵀ
	var z FloatBlock
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			s := 0.0
			for k := 0; k < N; k++ {
				s += y[i][k] * c[j][k]
			}
			z[i][j] = s
		}
	}
	return z
}

// IDCTFloat inverts DCTFloat (X = Cᵀ · Z · C).
func IDCTFloat(z FloatBlock) FloatBlock {
	c := dctMatrix()
	var y FloatBlock
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			s := 0.0
			for k := 0; k < N; k++ {
				s += c[k][i] * z[k][j]
			}
			y[i][j] = s
		}
	}
	var x FloatBlock
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			s := 0.0
			for k := 0; k < N; k++ {
				s += y[i][k] * c[k][j]
			}
			x[i][j] = s
		}
	}
	return x
}

// Fixed-point scaling used by the hardware model. Coefficients are
// quantized to CoefFracBits fractional bits; the first matrix multiply
// (T1 tasks) keeps the extra precision and the second (T2 tasks) shifts
// back. Bit-width audit (matches the paper's datapath):
//
//	stage 1: 9-bit signed sample × 9-bit coefficient -> products summed in
//	         16 bits after a CoefFracBits>>1 pre-shift,
//	stage 2: 16-bit intermediate × 9-bit coefficient -> 24-bit accumulate,
//	         final shift restores integer DCT values.
const (
	// CoefFracBits is the fixed-point precision of DCT coefficients.
	CoefFracBits = 6
	// stage1Shift rebalances precision after the first multiply so the
	// intermediate fits the 16-bit T1 output word.
	stage1Shift = 2
	// stage2Shift removes the remaining scale after the second multiply.
	stage2Shift = 2*CoefFracBits - stage1Shift
)

// CoefFixed returns the DCT matrix in Q(CoefFracBits) fixed point — the
// coefficient ROM contents of the T1/T2 tasks. Exported for the functional
// co-simulation in internal/cosim.
func CoefFixed() [N][N]int {
	return coefFixed()
}

// coefFixed returns the DCT matrix in Q(CoefFracBits) fixed point.
func coefFixed() Block {
	c := dctMatrix()
	var q Block
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			q[i][j] = int(math.Round(c[i][j] * float64(int(1)<<CoefFracBits)))
		}
	}
	return q
}

// VectorProductT1 is the functional behaviour of one T1 task: one element
// of Y = Cq · X with a stage-1 precision shift. Exported so the task-graph
// and the functional pipeline provably compute the same thing.
func VectorProductT1(cRow [N]int, xCol [N]int) int {
	acc := 0
	for k := 0; k < N; k++ {
		acc += cRow[k] * xCol[k]
	}
	return roundShift(acc, stage1Shift)
}

// VectorProductT2 is one T2 task: one element of Z = Y · Cqᵀ with the final
// rescale.
func VectorProductT2(yRow [N]int, cRow [N]int) int {
	acc := 0
	for k := 0; k < N; k++ {
		acc += yRow[k] * cRow[k]
	}
	return roundShift(acc, stage2Shift)
}

func roundShift(v, s int) int {
	if s == 0 {
		return v
	}
	half := 1 << (s - 1)
	if v >= 0 {
		return (v + half) >> s
	}
	return -((-v + half) >> s)
}

// DCTFixed computes the hardware-model DCT: exactly 32 vector products
// (16 T1 + 16 T2), matching the task graph of Fig. 8.
func DCTFixed(x Block) Block {
	cq := coefFixed()
	// Stage 1: Y[i][j] = row i of Cq · column j of X (16 T1 tasks).
	var y Block
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			var col [N]int
			for k := 0; k < N; k++ {
				col[k] = x[k][j]
			}
			y[i][j] = VectorProductT1(cq[i], col)
		}
	}
	// Stage 2: Z[i][j] = row i of Y · row j of Cq (16 T2 tasks).
	var z Block
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			z[i][j] = VectorProductT2(y[i], cq[j])
		}
	}
	return z
}

// MaxAbsError returns the maximum absolute difference between the
// fixed-point and float DCT of a block.
func MaxAbsError(x Block) float64 {
	zf := DCTFloat(x)
	zq := DCTFixed(x)
	worst := 0.0
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if d := math.Abs(zf[i][j] - float64(zq[i][j])); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func (b Block) String() string {
	s := ""
	for i := 0; i < N; i++ {
		s += fmt.Sprintln(b[i])
	}
	return s
}

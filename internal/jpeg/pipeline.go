package jpeg

import (
	"fmt"
)

// Software JPEG stages of the co-design (Quantization, Zig-Zag and Huffman
// encoding run on the host in both of the paper's experiments).

// QuantTable is a 4x4 quantization table.
type QuantTable Block

// DefaultQuantTable returns a luminance-style quantization table scaled for
// 4x4 blocks (coarser quantization toward high frequencies).
func DefaultQuantTable() QuantTable {
	return QuantTable{
		{8, 12, 20, 32},
		{12, 16, 28, 44},
		{20, 28, 40, 58},
		{32, 44, 58, 80},
	}
}

// Scaled returns the table scaled by quality q in (0, 100]: q=50 keeps the
// base table, lower q quantizes more coarsely, higher q more finely.
func (qt QuantTable) Scaled(q int) (QuantTable, error) {
	if q <= 0 || q > 100 {
		return QuantTable{}, fmt.Errorf("jpeg: quality %d out of range (0,100]", q)
	}
	var scale int
	if q < 50 {
		scale = 5000 / q
	} else {
		scale = 200 - 2*q
	}
	var out QuantTable
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			v := (qt[i][j]*scale + 50) / 100
			if v < 1 {
				v = 1
			}
			out[i][j] = v
		}
	}
	return out, nil
}

// Quantize divides DCT coefficients by the table entries with rounding.
func Quantize(z Block, qt QuantTable) Block {
	var out Block
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			q := qt[i][j]
			v := z[i][j]
			if v >= 0 {
				out[i][j] = (v + q/2) / q
			} else {
				out[i][j] = -((-v + q/2) / q)
			}
		}
	}
	return out
}

// Dequantize multiplies back (for round-trip and PSNR measurement).
func Dequantize(z Block, qt QuantTable) Block {
	var out Block
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			out[i][j] = z[i][j] * qt[i][j]
		}
	}
	return out
}

// zigzag4 is the zig-zag scan order for 4x4 blocks.
var zigzag4 = [N * N][2]int{
	{0, 0}, {0, 1}, {1, 0}, {2, 0},
	{1, 1}, {0, 2}, {0, 3}, {1, 2},
	{2, 1}, {3, 0}, {3, 1}, {2, 2},
	{1, 3}, {2, 3}, {3, 2}, {3, 3},
}

// ZigZag serializes a block in zig-zag order.
func ZigZag(b Block) [N * N]int {
	var out [N * N]int
	for k, ij := range zigzag4 {
		out[k] = b[ij[0]][ij[1]]
	}
	return out
}

// UnZigZag inverts ZigZag.
func UnZigZag(v [N * N]int) Block {
	var b Block
	for k, ij := range zigzag4 {
		b[ij[0]][ij[1]] = v[k]
	}
	return b
}

package jpeg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hls"
)

func randBlock(rng *rand.Rand) Block {
	var b Block
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			b[i][j] = rng.Intn(256) - 128
		}
	}
	return b
}

func TestDCTFloatInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := randBlock(rng)
		z := DCTFloat(x)
		back := IDCTFloat(z)
		for i := 0; i < N; i++ {
			for j := 0; j < N; j++ {
				if math.Abs(back[i][j]-float64(x[i][j])) > 1e-9 {
					t.Fatalf("IDCT(DCT(x)) != x at (%d,%d): %g vs %d", i, j, back[i][j], x[i][j])
				}
			}
		}
	}
}

func TestDCTFloatDCCoefficient(t *testing.T) {
	// A constant block has all energy in DC: z[0][0] = N * value.
	var x Block
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			x[i][j] = 100
		}
	}
	z := DCTFloat(x)
	if math.Abs(z[0][0]-400) > 1e-9 {
		t.Errorf("DC = %g, want 400", z[0][0])
	}
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if i == 0 && j == 0 {
				continue
			}
			if math.Abs(z[i][j]) > 1e-9 {
				t.Errorf("AC(%d,%d) = %g, want 0", i, j, z[i][j])
			}
		}
	}
}

func TestDCTParseval(t *testing.T) {
	// Orthonormal transform preserves energy.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		x := randBlock(rng)
		z := DCTFloat(x)
		ex, ez := 0.0, 0.0
		for i := 0; i < N; i++ {
			for j := 0; j < N; j++ {
				ex += float64(x[i][j]) * float64(x[i][j])
				ez += z[i][j] * z[i][j]
			}
		}
		if math.Abs(ex-ez) > 1e-6*math.Max(1, ex) {
			t.Fatalf("energy not preserved: %g vs %g", ex, ez)
		}
	}
}

// Property: the fixed-point hardware DCT tracks the float DCT within the
// quantization error bound of the Q6 coefficients.
func TestDCTFixedAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randBlock(rng)
		return MaxAbsError(x) <= 8.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDCTFixedIs32VectorProducts cross-checks that composing the exported
// T1/T2 task functions exactly reproduces DCTFixed (the task graph and the
// functional pipeline agree).
func TestDCTFixedIs32VectorProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cq := coefFixed()
	for trial := 0; trial < 20; trial++ {
		x := randBlock(rng)
		var y, z Block
		for i := 0; i < N; i++ {
			for j := 0; j < N; j++ {
				var col [N]int
				for k := 0; k < N; k++ {
					col[k] = x[k][j]
				}
				y[i][j] = VectorProductT1(cq[i], col)
			}
		}
		for i := 0; i < N; i++ {
			for j := 0; j < N; j++ {
				z[i][j] = VectorProductT2(y[i], cq[j])
			}
		}
		if z != DCTFixed(x) {
			t.Fatalf("manual 32-task composition differs from DCTFixed:\n%v\nvs\n%v", z, DCTFixed(x))
		}
	}
}

func TestT1IntermediateFits16Bits(t *testing.T) {
	// The T1 output must fit the 16-bit word the paper stores in memory.
	rng := rand.New(rand.NewSource(4))
	cq := coefFixed()
	for trial := 0; trial < 2000; trial++ {
		var col [N]int
		for k := range col {
			col[k] = rng.Intn(256) - 128
		}
		for i := 0; i < N; i++ {
			y := VectorProductT1(cq[i], col)
			if y > 32767 || y < -32768 {
				t.Fatalf("T1 output %d overflows 16 bits", y)
			}
		}
	}
}

func TestQuantizeRoundTripLossBounded(t *testing.T) {
	qt := DefaultQuantTable()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		z := randBlock(rng)
		q := Quantize(z, qt)
		d := Dequantize(q, qt)
		for i := 0; i < N; i++ {
			for j := 0; j < N; j++ {
				if diff := abs(d[i][j] - z[i][j]); diff > qt[i][j]/2+1 {
					t.Fatalf("quantization error %d exceeds half step %d", diff, qt[i][j])
				}
			}
		}
	}
}

func TestQuantTableScaling(t *testing.T) {
	base := DefaultQuantTable()
	hi, err := base.Scaled(90)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := base.Scaled(10)
	if err != nil {
		t.Fatal(err)
	}
	if !(hi[0][0] < base[0][0] && lo[0][0] > base[0][0]) {
		t.Errorf("scaling direction wrong: q90=%d q50=%d q10=%d", hi[0][0], base[0][0], lo[0][0])
	}
	mid, err := base.Scaled(50)
	if err != nil {
		t.Fatal(err)
	}
	if mid != base {
		t.Errorf("quality 50 should keep the base table")
	}
	if _, err := base.Scaled(0); err == nil {
		t.Error("quality 0 accepted")
	}
	if _, err := base.Scaled(101); err == nil {
		t.Error("quality 101 accepted")
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		b := randBlock(rng)
		if UnZigZag(ZigZag(b)) != b {
			t.Fatal("zig-zag round trip failed")
		}
	}
	// The zig-zag order must be a permutation.
	seen := map[[2]int]bool{}
	for _, ij := range zigzag4 {
		if seen[ij] {
			t.Fatalf("duplicate zig-zag entry %v", ij)
		}
		seen[ij] = true
	}
	if len(seen) != N*N {
		t.Fatalf("zig-zag covers %d cells, want %d", len(seen), N*N)
	}
}

func TestBitWriterReader(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0b101, 3)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(1, 1)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("got %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Errorf("got %x", v)
	}
	if v, _ := r.ReadBits(1); v != 1 {
		t.Errorf("got %d", v)
	}
	if _, err := r.ReadBits(8); err == nil {
		t.Error("underrun not detected")
	}
	if w.Len() != 20 {
		t.Errorf("Len = %d, want 20", w.Len())
	}
}

func TestHuffmanBlocksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qt := DefaultQuantTable()
	var zz [][N * N]int
	for i := 0; i < 200; i++ {
		zz = append(zz, ZigZag(Quantize(DCTFixed(randBlock(rng)), qt)))
	}
	data, err := EncodeBlocks(zz)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBlocks(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(zz) {
		t.Fatalf("decoded %d blocks, want %d", len(back), len(zz))
	}
	for i := range zz {
		if back[i] != zz[i] {
			t.Fatalf("block %d mismatch:\n%v\nvs\n%v", i, back[i], zz[i])
		}
	}
}

// Property: Huffman round trip is lossless for arbitrary coefficient data,
// including all-zero and extreme values.
func TestHuffmanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		zz := make([][N * N]int, n)
		for i := range zz {
			for k := 0; k < N*N; k++ {
				switch rng.Intn(4) {
				case 0:
					zz[i][k] = 0
				case 1:
					zz[i][k] = rng.Intn(5) - 2
				case 2:
					zz[i][k] = rng.Intn(2001) - 1000
				case 3:
					zz[i][k] = 0 // denser zeros to exercise runs
				}
			}
		}
		data, err := EncodeBlocks(zz)
		if err != nil {
			return false
		}
		back, err := DecodeBlocks(data)
		if err != nil || len(back) != n {
			return false
		}
		for i := range zz {
			if back[i] != zz[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSizeCategoryAndMagnitude(t *testing.T) {
	for _, v := range []int{-1000, -255, -1, 0, 1, 7, 8, 255, 1000} {
		s := sizeCategory(v)
		eb := magnitude(v, s)
		if got := demagnitude(eb.bits, s); got != v {
			t.Errorf("magnitude round trip %d -> %d", v, got)
		}
	}
	if sizeCategory(0) != 0 || sizeCategory(1) != 1 || sizeCategory(-1) != 1 || sizeCategory(255) != 8 {
		t.Error("size categories wrong")
	}
}

func TestImageBlocksRoundTrip(t *testing.T) {
	im := Synthesize(Photo, 32, 16, 42)
	blocks, err := im.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != (32/4)*(16/4) {
		t.Fatalf("got %d blocks", len(blocks))
	}
	back, err := FromBlocks(blocks, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if im.Pix[i] != back.Pix[i] {
			t.Fatal("image block round trip changed pixels")
		}
	}
	if _, err := Synthesize(Noise, 30, 30, 1).Blocks(); err == nil {
		t.Error("non-multiple-of-4 image accepted")
	}
}

func TestCompressEndToEnd(t *testing.T) {
	for _, kind := range []SyntheticKind{Gradient, Checker, Photo, Noise} {
		im := Synthesize(kind, 64, 64, 9)
		res, err := Compress(im, 50)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if res.Blocks != 256 {
			t.Errorf("kind %d: blocks = %d", kind, res.Blocks)
		}
		if res.PSNRdB < 25 {
			t.Errorf("kind %d: PSNR %.1f dB too low", kind, res.PSNRdB)
		}
	}
	// Smooth images compress much better than noise.
	g, _ := Compress(Synthesize(Gradient, 64, 64, 9), 50)
	n, _ := Compress(Synthesize(Noise, 64, 64, 9), 50)
	if g.BitsPerPix >= n.BitsPerPix {
		t.Errorf("gradient (%.2f bpp) should compress better than noise (%.2f bpp)",
			g.BitsPerPix, n.BitsPerPix)
	}
}

func TestQualityTradeoff(t *testing.T) {
	im := Synthesize(Photo, 64, 64, 11)
	hi, err := Compress(im, 90)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Compress(im, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hi.PSNRdB <= lo.PSNRdB {
		t.Errorf("q90 PSNR %.1f <= q10 PSNR %.1f", hi.PSNRdB, lo.PSNRdB)
	}
	if hi.BitsPerPix <= lo.BitsPerPix {
		t.Errorf("q90 bpp %.2f <= q10 bpp %.2f", hi.BitsPerPix, lo.BitsPerPix)
	}
}

func TestBuildDCTGraphStructure(t *testing.T) {
	g, err := BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 32 {
		t.Fatalf("tasks = %d, want 32", g.NumTasks())
	}
	if g.NumEdges() != 64 {
		t.Fatalf("edges = %d, want 64 (16 T2 x 4 deps)", g.NumEdges())
	}
	// Synthesis costs match the paper.
	t1 := g.Task(g.TaskByName(T1Name(0, 0)))
	if t1.Resources != 70 {
		t.Errorf("T1 resources = %d, want 70", t1.Resources)
	}
	t2 := g.Task(g.TaskByName(T2Name(0, 0)))
	if t2.Resources != 180 {
		t.Errorf("T2 resources = %d, want 180", t2.Resources)
	}
	// Roots are the 16 T1s, leaves the 16 T2s.
	if len(g.Roots()) != 16 || len(g.Leaves()) != 16 {
		t.Errorf("roots/leaves = %d/%d, want 16/16", len(g.Roots()), len(g.Leaves()))
	}
	// 4 collections of 8 tasks: each T2 depends on exactly the 4 T1s of
	// its row.
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			preds := g.Preds(g.TaskByName(T2Name(i, j)))
			if len(preds) != 4 {
				t.Fatalf("T2_%d%d has %d preds", i, j, len(preds))
			}
			for _, p := range preds {
				if g.Task(p).Type != "T1" {
					t.Fatalf("T2 pred %s is not T1", g.Task(p).Name)
				}
			}
		}
	}
	// Path count: each path is T1 -> T2 within a row: 16 per row x 4 rows.
	if n := g.CountPaths(0); n != 64 {
		t.Errorf("paths = %d, want 64", n)
	}
	// Interchangeability: the 4 T1s of each row form a group (so do the 4
	// T2s of each row): 8 groups of 4.
	groups := g.InterchangeableGroups()
	if len(groups) != 8 {
		t.Errorf("interchangeable groups = %d, want 8", len(groups))
	}
	for _, grp := range groups {
		if len(grp) != 4 {
			t.Errorf("group size = %d, want 4", len(grp))
		}
	}
}

func TestStaticDCTBehaviors(t *testing.T) {
	tasks := StaticDCTBehaviors()
	if len(tasks) != 32 {
		t.Fatalf("static behaviors = %d, want 32", len(tasks))
	}
	for _, g := range tasks {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	alloc := StaticAllocation()
	if alloc[hls.FUType{Kind: hls.OpMac, Width: 9}] != 2 ||
		alloc[hls.FUType{Kind: hls.OpMac, Width: 17}] != 2 {
		t.Error("static allocation is not 2x mac9 + 2x mac17")
	}
}

func TestPSNRIdentical(t *testing.T) {
	im := Synthesize(Photo, 16, 16, 1)
	p, err := PSNR(im, im)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Errorf("PSNR(x,x) = %g, want +Inf", p)
	}
	if _, err := PSNR(im, Synthesize(Photo, 32, 16, 1)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

package jpeg

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/hls"
)

// Task-graph construction for the paper's Fig. 8: the 4x4 DCT as 32 vector
// products. A "collection" of 8 tasks computes one row of the 4x4 output
// matrix: the 4 T1 tasks produce row i of the intermediate Y = C·X, and the
// 4 T2 tasks combine that row with the coefficient rows to produce row i of
// Z = Y·Cᵀ. Each T2 task therefore depends on all 4 T1 tasks of its row.
//
// Bit widths follow the paper: T1 uses 9-bit multipliers with 16-bit
// accumulation, T2 uses 17-bit multipliers with 24-bit accumulation.
const (
	T1MulWidth = 9
	T1AccWidth = 16
	T2MulWidth = 17
	T2AccWidth = 24
)

// T1Name returns the name of the stage-1 vector product for output row i,
// intermediate column j.
func T1Name(i, j int) string { return fmt.Sprintf("T1_%d%d", i, j) }

// T2Name returns the name of the stage-2 vector product for output element
// (i, j).
func T2Name(i, j int) string { return fmt.Sprintf("T2_%d%d", i, j) }

// T1Behavior builds the behavioral op graph of a T1 task (4-element vector
// product, 9-bit multiplies, 16-bit adds). chained selects MAC-style
// operator chaining (used by the static design).
func T1Behavior(name string, chained bool) *hls.OpGraph {
	return hls.VectorProduct(name, N, T1MulWidth, T1AccWidth, "X", "Y", chained)
}

// T2Behavior builds the behavioral op graph of a T2 task (17-bit
// multiplies, 24-bit adds).
func T2Behavior(name string, chained bool) *hls.OpGraph {
	return hls.VectorProduct(name, N, T2MulWidth, T2AccWidth, "Y", "Z", chained)
}

// BuildDCTGraph constructs the Fig. 8 task graph with synthesis costs from
// the HLS estimation engine. Environment I/O accounting matches the paper's
// Sec. 4 memory analysis: the 16 distinct input words are attributed one
// word per T1 task, and each T2 task writes its one output word.
func BuildDCTGraph(lib *hls.Library, cons hls.Constraints) (*dfg.Graph, error) {
	g := dfg.New("dct4x4")

	t1b := T1Behavior("T1", false)
	e1, err := hls.EstimateTask(t1b, lib, cons)
	if err != nil {
		return nil, fmt.Errorf("jpeg: estimating T1: %w", err)
	}
	t2b := T2Behavior("T2", false)
	e2, err := hls.EstimateTask(t2b, lib, cons)
	if err != nil {
		return nil, fmt.Errorf("jpeg: estimating T2: %w", err)
	}

	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if _, err := g.AddTask(dfg.Task{
				Name: T1Name(i, j), Type: "T1",
				Resources: e1.CLBs, Delay: e1.DelayNS,
				ReadEnv: 1, // amortized share of the 16 distinct input words
				Payload: T1Behavior(T1Name(i, j), false),
			}); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if _, err := g.AddTask(dfg.Task{
				Name: T2Name(i, j), Type: "T2",
				Resources: e2.CLBs, Delay: e2.DelayNS,
				WriteEnv: 1, // the output word Z[i][j]
				Payload:  T2Behavior(T2Name(i, j), false),
			}); err != nil {
				return nil, err
			}
		}
	}
	// Row collections: T2(i,j) consumes all of row i of Y, i.e. T1(i,0..3).
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			for k := 0; k < N; k++ {
				if err := g.AddEdge(T1Name(i, k), T2Name(i, j), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// PartitionBehaviors extracts the behavioral op graphs of the tasks mapped
// to partition p under assign, for partition-level synthesis.
func PartitionBehaviors(g *dfg.Graph, assign []int, p int) []*hls.OpGraph {
	var out []*hls.OpGraph
	for t := 0; t < g.NumTasks(); t++ {
		if assign[t] != p {
			continue
		}
		if og, ok := g.Task(t).Payload.(*hls.OpGraph); ok {
			out = append(out, og)
		}
	}
	return out
}

// StaticDCTBehaviors returns the 32 chained (MAC-style) vector products of
// the static co-design experiment.
func StaticDCTBehaviors() []*hls.OpGraph {
	var out []*hls.OpGraph
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			out = append(out, T1Behavior(T1Name(i, j), true))
		}
	}
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			out = append(out, T2Behavior(T2Name(i, j), true))
		}
	}
	return out
}

// StaticAllocation is the paper's static-design functional-unit set: "the
// FPGA could fit two 9 bit multipliers, two 17 bit multipliers, two 16 bit
// adders and two 24 bit adders" — i.e. two 9-bit and two 17-bit MAC pairs.
func StaticAllocation() hls.Allocation {
	return hls.Allocation{
		{Kind: hls.OpMac, Width: T1MulWidth}: 2,
		{Kind: hls.OpMac, Width: T2MulWidth}: 2,
	}
}

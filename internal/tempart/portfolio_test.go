package tempart

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/ilp"
)

// The hard-instance portfolio (ROADMAP open item): a committed corpus of
// the two regimes that stay exponential after the presolve and cut work —
// near-capacity packing infeasibility and FIR-bank-shaped instances — so
// pruning/cut changes have a durable yardstick. testdata/portfolio/gen.go
// regenerates the graphs; manifest.json pins board parameters, solver
// knobs, and expectations per instance.

// portfolioEntry is one manifest row.
type portfolioEntry struct {
	File       string `json:"file"`
	CLBs       int    `json:"clbs"`
	MemWords   int    `json:"mem_words"`
	ReconfigNS int    `json:"reconfig_ns"`
	MaxNodes   int    `json:"max_nodes"`
	NoSymmetry bool   `json:"no_symmetry"`
	NoWarm     bool   `json:"no_warm_start"`
	Expect     string `json:"expect"` // "solve" or "limit"
	WantN      int    `json:"want_n"`
	MaxBBNodes int    `json:"max_bb_nodes"`
	Quick      bool   `json:"quick"`
	Note       string `json:"note"`

	graph *dfg.Graph
	board arch.Board
}

// loadPortfolio reads the manifest and its graphs.
func loadPortfolio(tb testing.TB) []portfolioEntry {
	tb.Helper()
	dir := filepath.Join("testdata", "portfolio")
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		tb.Fatal(err)
	}
	var entries []portfolioEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		tb.Fatalf("manifest: %v", err)
	}
	for i := range entries {
		e := &entries[i]
		data, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			tb.Fatal(err)
		}
		var g dfg.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			tb.Fatalf("%s: %v", e.File, err)
		}
		e.graph = &g
		e.board = arch.SmallTestBoard()
		e.board.FPGA.CLBs = e.CLBs
		e.board.Memory.Words = e.MemWords
		e.board.FPGA.ReconfigTime = float64(e.ReconfigNS)
	}
	return entries
}

// runEntry solves one portfolio instance under its manifest knobs.
func runEntry(e *portfolioEntry) (*Partitioning, error) {
	return Solve(Input{
		Graph:              e.graph,
		Board:              e.board,
		NoSymmetryBreaking: e.NoSymmetry,
		DisableWarmStart:   e.NoWarm,
		ILP:                ilp.Options{MaxNodes: e.MaxNodes},
	})
}

// TestHardPortfolio pins every quick instance's expected outcome: solvable
// instances reach their known optimum partition count with a feasible
// assignment (FIR shapes additionally within the root-cut node budget),
// and node-budgeted packing instances hit their search limit — if one ever
// *solves* inside the budget, the regime got easier and the manifest
// should be re-tightened.
func TestHardPortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio searches are sequential throughput yardsticks; skipped under -short (the race lane)")
	}
	entries := loadPortfolio(t)
	for i := range entries {
		e := entries[i]
		if !e.Quick {
			continue // stress-only instances run via BenchmarkHardPortfolio (make stress)
		}
		t.Run(strings.TrimSuffix(e.File, ".json"), func(t *testing.T) {
			p, err := runEntry(&e)
			switch e.Expect {
			case "limit":
				if err == nil {
					t.Fatalf("expected the node budget (%d) to bind, but solved N=%d in %d nodes — tighten the manifest",
						e.MaxNodes, p.N, p.Stats.Nodes)
				}
				if !strings.Contains(err.Error(), "search limit") {
					t.Fatalf("expected a search-limit error, got: %v", err)
				}
			case "solve":
				if err != nil {
					t.Fatal(err)
				}
				if p.N != e.WantN {
					t.Errorf("N=%d, want %d", p.N, e.WantN)
				}
				if !p.Optimal {
					t.Error("not proven optimal")
				}
				if err := CheckFeasible(e.graph, e.board, p.Assign, p.N); err != nil {
					t.Error(err)
				}
				if e.MaxBBNodes > 0 && p.Stats.Nodes > e.MaxBBNodes {
					t.Errorf("explored %d nodes, budget %d (cut engine regression)", p.Stats.Nodes, e.MaxBBNodes)
				}
			default:
				t.Fatalf("manifest: unknown expect %q", e.Expect)
			}
		})
	}
}

// BenchmarkHardPortfolio is the stress yardstick (`make stress`): every
// portfolio instance end to end, reporting aggregate search effort. The
// deterministic counters (nodes, cuts) make pruning/cut wins visible run
// over run even when wall-clock is noisy.
func BenchmarkHardPortfolio(b *testing.B) {
	entries := loadPortfolio(b)
	var nodes, cuts, rounds, pruned int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		nodes, cuts, rounds, pruned = 0, 0, 0, 0
		for j := range entries {
			e := entries[j]
			p, err := runEntry(&e)
			if err != nil {
				if e.Expect != "limit" {
					b.Fatalf("%s: %v", e.File, err)
				}
				continue
			}
			if e.Expect == "limit" {
				b.Fatalf("%s: expected the node budget to bind, solved N=%d", e.File, p.N)
			}
			nodes += p.Stats.Nodes
			cuts += p.Stats.CutsAdded
			rounds += p.Stats.SeparationRounds
			pruned += p.Stats.PrunedCombinatorial
		}
	}
	b.ReportMetric(float64(len(entries)), "instances")
	b.ReportMetric(float64(nodes), "portfolio-nodes")
	b.ReportMetric(float64(cuts), "portfolio-cuts-added")
	b.ReportMetric(float64(rounds), "portfolio-separation-rounds")
	b.ReportMetric(float64(pruned), "portfolio-pruned-combinatorial")
	b.ReportMetric(time.Since(start).Seconds()/float64(b.N), "sec/pass")
}

package tempart

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// The hard-instance portfolio (ROADMAP open item): a committed corpus of
// the two regimes that stay exponential after the presolve and cut work —
// near-capacity packing infeasibility and FIR-bank-shaped instances — so
// pruning/cut changes have a durable yardstick. testdata/portfolio/gen.go
// regenerates the graphs; manifest.json pins board parameters, solver
// knobs, and expectations per instance.

// portfolioEntry is one hydrated manifest row: the shared schema
// (tempart.PortfolioInstance, also decoded by the root-package pack
// benchmarks) plus the loaded graph and board.
type portfolioEntry struct {
	PortfolioInstance

	graph *dfg.Graph
	board arch.Board
}

// loadPortfolio reads the manifest and its graphs.
func loadPortfolio(tb testing.TB) []portfolioEntry {
	tb.Helper()
	_, entries := loadPortfolioHydrated(tb)
	return entries
}

func loadPortfolioHydrated(tb testing.TB) (*PortfolioManifest, []portfolioEntry) {
	tb.Helper()
	dir := filepath.Join("testdata", "portfolio")
	m, err := LoadPortfolioManifest(dir)
	if err != nil {
		tb.Fatal(err)
	}
	entries := make([]portfolioEntry, len(m.Instances))
	for i, inst := range m.Instances {
		e := &entries[i]
		e.PortfolioInstance = inst
		data, err := os.ReadFile(filepath.Join(dir, inst.File))
		if err != nil {
			tb.Fatal(err)
		}
		var g dfg.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			tb.Fatalf("%s: %v", inst.File, err)
		}
		e.graph = &g
		e.board = arch.SmallTestBoard()
		e.board.FPGA.CLBs = inst.CLBs
		e.board.Memory.Words = inst.MemWords
		e.board.FPGA.ReconfigTime = float64(inst.ReconfigNS)
	}
	return m, entries
}

// TestPortfolioRegenDeterminism pins the corpus to its generator: the
// committed fixtures must be byte-identical to what PortfolioGraphs
// produces for the manifest's gen_seed, so `go run ./internal/tempart/
// testdata/portfolio` is always a no-op on a clean tree and a fixture can
// never drift from the generator that documents it.
func TestPortfolioRegenDeterminism(t *testing.T) {
	m, _ := loadPortfolioHydrated(t)
	regen := map[string][]byte{}
	for _, g := range PortfolioGraphs(m.GenSeed) {
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		regen[g.Name+".json"] = append(data, '\n')
	}
	for _, e := range m.Instances {
		want, ok := regen[e.File]
		if !ok {
			t.Errorf("%s: not produced by PortfolioGraphs(%d)", e.File, m.GenSeed)
			continue
		}
		got, err := os.ReadFile(filepath.Join("testdata", "portfolio", e.File))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: committed fixture differs from regeneration at seed %d — run `go run ./internal/tempart/testdata/portfolio`",
				e.File, m.GenSeed)
		}
	}
}

// runEntry solves one portfolio instance under its manifest knobs.
func runEntry(e *portfolioEntry) (*Partitioning, error) {
	return Solve(Input{
		Graph:              e.graph,
		Board:              e.board,
		MaxPartitions:      e.MaxParts,
		Formulation:        e.Formulation,
		NoSymmetryBreaking: e.NoSymmetry,
		DisableWarmStart:   e.NoWarm,
		ILP:                ilp.Options{MaxNodes: e.MaxNodes},
	})
}

// entryName is the subtest name of a manifest row: the fixture file stem,
// suffixed with the formulation when one is forced, so one fixture can
// appear under several backends without colliding.
func entryName(e *portfolioEntry) string {
	name := strings.TrimSuffix(e.File, ".json")
	if e.Formulation != "" {
		name += "-" + e.Formulation
	}
	return name
}

// TestHardPortfolio pins every quick instance's expected outcome: solvable
// instances reach their known optimum partition count with a feasible
// assignment, FIR shapes within the root-cut node budget, and the pack
// instances — which blew their 2000-node budgets before the
// infeasibility-proof engine — within their manifest max_nodes, with the
// proof counters (conflict cuts / dual-bound fathoms) nonzero where the
// manifest demands them. An entry may still declare expect "limit" for a
// deliberately budget-bound yardstick.
func TestHardPortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio searches are sequential throughput yardsticks; skipped under -short (the race lane)")
	}
	entries := loadPortfolio(t)
	for i := range entries {
		e := entries[i]
		if !e.Quick {
			continue // stress-only instances run via BenchmarkHardPortfolio (make stress)
		}
		t.Run(entryName(&e), func(t *testing.T) {
			p, err := runEntry(&e)
			switch e.Expect {
			case "limit":
				if err == nil {
					t.Fatalf("expected the node budget (%d) to bind, but solved N=%d in %d nodes — tighten the manifest",
						e.MaxNodes, p.N, p.Stats.Nodes)
				}
				if !strings.Contains(err.Error(), "search limit") {
					t.Fatalf("expected a search-limit error, got: %v", err)
				}
			case "gap":
				if err != nil {
					t.Fatal(err)
				}
				if p.N != e.WantN {
					t.Errorf("N=%d, want %d", p.N, e.WantN)
				}
				if p.Optimal {
					t.Errorf("proved optimal in %d nodes — this instance is pinned as cannot-finish; move it to expect \"solve\"", p.Stats.Nodes)
				}
				if err := CheckFeasible(e.graph, e.board, p.Assign, p.N); err != nil {
					t.Error(err)
				}
			case "solve":
				if err != nil {
					t.Fatal(err)
				}
				if p.N != e.WantN {
					t.Errorf("N=%d, want %d", p.N, e.WantN)
				}
				if !p.Optimal {
					t.Error("not proven optimal")
				}
				if err := CheckFeasible(e.graph, e.board, p.Assign, p.N); err != nil {
					t.Error(err)
				}
				if e.MaxBBNodes > 0 && p.Stats.Nodes > e.MaxBBNodes {
					t.Errorf("explored %d nodes, budget %d (cut engine regression)", p.Stats.Nodes, e.MaxBBNodes)
				}
				if e.ExpectProof && p.Stats.ConflictCuts == 0 && p.Stats.DualBoundFathoms == 0 {
					t.Errorf("proof-regime instance closed with zero conflict cuts and zero dual-bound fathoms (stats %+v) — the infeasibility-proof engine did not engage", p.Stats)
				}
			default:
				t.Fatalf("manifest: unknown expect %q", e.Expect)
			}
		})
	}
}

// TestHardPortfolioSteepestEdge re-runs the canonical near-capacity packing
// proof (pack12) with exact steepest-edge pricing instead of devex: the
// pricing rule steers every dual repair in the search, so the infeasibility
// proof must still close within the same manifest node budget and reach the
// same optimum. This is the stress-short lane's guard that the steepest-edge
// weight recurrences survive thousands of warm-started solves.
func TestHardPortfolioSteepestEdge(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio searches are sequential throughput yardsticks; skipped under -short (the race lane)")
	}
	for _, e := range loadPortfolio(t) {
		if e.File != "pack12.json" {
			continue
		}
		p, err := Solve(Input{
			Graph:              e.graph,
			Board:              e.board,
			NoSymmetryBreaking: e.NoSymmetry,
			DisableWarmStart:   e.NoWarm,
			ILP:                ilp.Options{MaxNodes: e.MaxNodes, Pricing: lp.PricingSteepestEdge},
		})
		if err != nil {
			t.Fatal(err)
		}
		if p.N != e.WantN {
			t.Errorf("N=%d, want %d", p.N, e.WantN)
		}
		if !p.Optimal {
			t.Error("not proven optimal under steepest-edge pricing")
		}
		if p.Stats.Pricing != "steepest-edge" {
			t.Errorf("Stats.Pricing = %q, want steepest-edge", p.Stats.Pricing)
		}
		if err := CheckFeasible(e.graph, e.board, p.Assign, p.N); err != nil {
			t.Error(err)
		}
		return
	}
	t.Fatal("pack12.json not in portfolio manifest")
}

// BenchmarkHardPortfolio is the stress yardstick (`make stress`): every
// portfolio instance end to end, reporting aggregate search effort. The
// deterministic counters (nodes, cuts) make pruning/cut wins visible run
// over run even when wall-clock is noisy.
func BenchmarkHardPortfolio(b *testing.B) {
	entries := loadPortfolio(b)
	var nodes, cuts, rounds, pruned int
	start := time.Now()
	var conflicts, dualFathoms int
	for i := 0; i < b.N; i++ {
		nodes, cuts, rounds, pruned = 0, 0, 0, 0
		conflicts, dualFathoms = 0, 0
		for j := range entries {
			e := entries[j]
			p, err := runEntry(&e)
			if err != nil {
				if e.Expect != "limit" {
					b.Fatalf("%s: %v", e.File, err)
				}
				continue
			}
			if e.Expect == "limit" {
				b.Fatalf("%s: expected the node budget to bind, solved N=%d", e.File, p.N)
			}
			if e.WantN > 0 && p.N != e.WantN {
				b.Fatalf("%s: N=%d, want %d", e.File, p.N, e.WantN)
			}
			nodes += p.Stats.Nodes
			cuts += p.Stats.CutsAdded
			rounds += p.Stats.SeparationRounds
			pruned += p.Stats.PrunedCombinatorial
			conflicts += p.Stats.ConflictCuts
			dualFathoms += p.Stats.DualBoundFathoms
		}
	}
	b.ReportMetric(float64(len(entries)), "instances")
	b.ReportMetric(float64(nodes), "portfolio-nodes")
	b.ReportMetric(float64(cuts), "portfolio-cuts-added")
	b.ReportMetric(float64(rounds), "portfolio-separation-rounds")
	b.ReportMetric(float64(pruned), "portfolio-pruned-combinatorial")
	b.ReportMetric(float64(conflicts), "portfolio-conflict-cuts")
	b.ReportMetric(float64(dualFathoms), "portfolio-dual-bound-fathoms")
	b.ReportMetric(time.Since(start).Seconds()/float64(b.N), "sec/pass")
}

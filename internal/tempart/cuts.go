package tempart

import (
	"sort"

	"repro/internal/dfg"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// This file is the cutting-plane side of the temporal partitioning model:
// the uniform cut-row representation shared by the presolve (root cuts
// baked into the model at build time) and the separation callback (cuts
// added to the live node LPs during branch and bound), plus the three
// separator families over the ilp.Options.Separate hook:
//
//   - knapsack cover cuts, lifted (extended covers) from the per-partition
//     resource rows Σ_t R(t)·y[t][p] ≤ cap;
//   - temporal-order clique cuts: for a chain a_1 ≺ a_2 ≺ … ≺ a_k in the
//     ancestor partial order (straight from the presolve's reachability
//     bitsets) and descending partition bands I_1 > I_2 > … > I_k, at most
//     one of the variables {y[a_i][p] : p ∈ I_i} can be 1 — an ancestor
//     placed late excludes every descendant placed early — so
//     Σ_i Σ_{p∈I_i} y[a_i][p] ≤ 1. The band choice per chain is an exact
//     O(k·N²) DP on the fractional point. Chains are seeded two ways:
//     the k longest (delay-weighted) enumerated paths — the cheap stand-in
//     for a k-longest-paths enumeration since the model already owns the
//     full path list — and chains grown greedily through the most
//     fractional tasks using the bitsets ("path" vs "clique" tags);
//   - per-subset lifted layer-cake cuts Σ_{p∈S} d_p ≥ c_{|S|},
//     generalizing the aggregate presolve row to every partition subset
//     (see presolve.subsetDelayFloor for the validity argument; the
//     lifting is the integrality ceiling inside need()).
//
// Every family is globally valid — derived from the instance data and
// integrality alone, never from branching decisions — so all cuts enter
// the shared ilp pool and strengthen every worker's relaxation. The
// cut-validity property tests brute-force this against all integral
// feasible assignments of random instances.

// modelCut is the uniform cut-row representation: a named lp.CutRow that
// can be baked into an lp.Problem at build time (root cuts) or handed to
// the branch-and-cut layer as an ilp.Cut (separation).
type modelCut struct {
	name string
	lp.CutRow
}

// addTo appends the cut as an ordinary model row (build-time root cuts).
func (c *modelCut) addTo(p *lp.Problem) {
	row := make(map[int]float64, len(c.Cols))
	for k, j := range c.Cols {
		row[j] += c.Vals[k]
	}
	p.AddRow(c.Kind, row, c.RHS)
}

// toCut converts the cut for the ilp separation hook. All tempart cuts are
// globally valid.
func (c *modelCut) toCut() ilp.Cut {
	return ilp.Cut{CutRow: c.CutRow, Global: true, Name: c.name}
}

// rootCuts returns the presolve cuts added to every model at build time,
// expressed in the shared cut-row representation: the aggregate
// Σ_p d_p ≥ max(critical path, layer-cake) row that PR 3 introduced, plus
// — when withBoundary is set — one boundary chain-area cut per
// prefix/suffix of the partition sequence (see boundaryChainFloor). The
// boundary cuts are what close the FIR-bank root: they couple the area
// each side of a boundary must absorb with the ancestor/descendant chains
// that placement drags along — structure the plain LP relaxation spreads
// away fractionally. withBoundary=false is the Input.NoCuts ablation,
// which reproduces the PR 3 model exactly.
func rootCuts(pre *presolve, N int, dv func(p int) int, withBoundary bool) []modelCut {
	var cuts []modelCut
	if floor := pre.sumDelayFloor(); floor > 0 {
		c := modelCut{name: "presolve-aggregate", CutRow: lp.CutRow{Kind: lp.GE, RHS: floor}}
		for p := 0; p < N; p++ {
			c.Cols = append(c.Cols, dv(p))
			c.Vals = append(c.Vals, 1)
		}
		cuts = append(cuts, c)
	}
	if !withBoundary {
		return cuts
	}
	for p := 1; p < N; p++ {
		if floor := pre.boundaryChainFloor(N, p, false); floor > 0 {
			c := modelCut{name: "chain-prefix", CutRow: lp.CutRow{Kind: lp.GE, RHS: floor}}
			for q := 0; q < p; q++ {
				c.Cols = append(c.Cols, dv(q))
				c.Vals = append(c.Vals, 1)
			}
			cuts = append(cuts, c)
		}
		if floor := pre.boundaryChainFloor(N, p, true); floor > 0 {
			c := modelCut{name: "chain-suffix", CutRow: lp.CutRow{Kind: lp.GE, RHS: floor}}
			for q := p; q < N; q++ {
				c.Cols = append(c.Cols, dv(q))
				c.Vals = append(c.Vals, 1)
			}
			cuts = append(cuts, c)
		}
	}
	return cuts
}

const (
	// sepMinViolation is the separator-side violation filter; weaker cuts
	// are noise that costs LP rows without moving the bound.
	sepMinViolation = 1e-4
	// sepMaxCutsPerRound caps what one separation round may return (the
	// most violated cuts win).
	sepMaxCutsPerRound = 24
	// sepKLongestPaths seeds the path-based clique cuts with the k
	// longest delay-weighted root-leaf paths.
	sepKLongestPaths = 16
	// sepMaxChains bounds the bitset-grown fractional chains per round.
	sepMaxChains = 6
)

// resDim is one capped resource dimension (CLBs or an extra kind).
type resDim struct {
	name   string
	demand []int
	cap    int
}

// separator owns the per-model separation state: the variable layout, the
// capped resource dimensions, the longest-path chain seeds, and the
// precomputed per-subset layer-cake floors. It is stateless per call and
// safe for concurrent use from parallel search workers.
type separator struct {
	pre *presolve
	g   *dfg.Graph
	N   int
	nT  int
	yv  func(t, p int) int
	dv  func(p int) int

	dims      []resDim
	longPaths [][]int
	subsetRHS []float64 // subsetRHS[s]: layer-cake floor for s-subsets, s in [1,N)
}

// newSeparator builds the separator for one generated model.
func newSeparator(pre *presolve, g *dfg.Graph, N int, yv func(t, p int) int, dv func(p int) int, paths [][]int) *separator {
	s := &separator{pre: pre, g: g, N: N, nT: g.NumTasks(), yv: yv, dv: dv}
	if pre.board.FPGA.CLBs > 0 {
		s.dims = append(s.dims, resDim{name: "clb", demand: pre.res, cap: pre.board.FPGA.CLBs})
	}
	for k, kind := range pre.extraKinds {
		s.dims = append(s.dims, resDim{name: kind, demand: pre.extraDemand[k], cap: pre.extraCap[k]})
	}
	// k longest delay-weighted paths (the full path set is already
	// enumerated for Eq. 7, so "k longest" is a sort, not a search).
	type pw struct {
		i int
		d float64
	}
	pws := make([]pw, 0, len(paths))
	for i, path := range paths {
		if len(path) < 2 {
			continue
		}
		d := 0.0
		for _, t := range path {
			d += g.Task(t).Delay
		}
		pws = append(pws, pw{i, d})
	}
	sort.Slice(pws, func(a, b int) bool { return pws[a].d > pws[b].d })
	for i := 0; i < len(pws) && i < sepKLongestPaths; i++ {
		s.longPaths = append(s.longPaths, paths[pws[i].i])
	}
	s.subsetRHS = make([]float64, N)
	for sz := 1; sz < N; sz++ {
		s.subsetRHS[sz] = pre.subsetDelayFloor(N, sz)
	}
	return s
}

// scoredCut pairs a candidate cut with its violation at the current point.
type scoredCut struct {
	mc   modelCut
	viol float64
}

// separate is the ilp.Options.Separate callback: run every family on the
// fractional point and return the most violated candidates.
func (s *separator) separate(pt *ilp.SeparationPoint) []ilp.Cut {
	var cand []scoredCut
	cand = s.coverCuts(pt.X, cand)
	cand = s.chainCuts(pt.X, cand)
	cand = s.layerCakeCuts(pt.X, cand)
	if len(cand) == 0 {
		return nil
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a].viol > cand[b].viol })
	if len(cand) > sepMaxCutsPerRound {
		cand = cand[:sepMaxCutsPerRound]
	}
	out := make([]ilp.Cut, len(cand))
	for i := range cand {
		out[i] = cand[i].mc.toCut()
	}
	return out
}

// coverCuts separates extended cover inequalities from each partition's
// resource rows: if C is a set of tasks whose total demand exceeds the
// capacity (a cover), no partition can host all of C, so
// Σ_{t∈C} y[t][p] ≤ |C|-1; the lifting extends the left-hand side with
// every task at least as large as the largest cover member (any |C| of the
// extended set also overflow), which strengthens the cut for free.
func (s *separator) coverCuts(x []float64, cand []scoredCut) []scoredCut {
	type item struct {
		t, w int
		v    float64
	}
	for _, dim := range s.dims {
		items := make([]item, 0, s.nT)
		for t := 0; t < s.nT; t++ {
			if dim.demand[t] > 0 {
				items = append(items, item{t: t, w: dim.demand[t]})
			}
		}
		if len(items) < 2 {
			continue
		}
		for p := 0; p < s.N; p++ {
			for i := range items {
				items[i].v = x[s.yv(items[i].t, p)]
			}
			sort.Slice(items, func(a, b int) bool {
				if items[a].v != items[b].v {
					return items[a].v > items[b].v
				}
				return items[a].w > items[b].w
			})
			sum, mass, k := 0, 0.0, 0
			for k < len(items) && sum <= dim.cap {
				sum += items[k].w
				mass += items[k].v
				k++
			}
			if sum <= dim.cap {
				continue // all tasks together fit: no cover exists
			}
			cover := items[:k]
			// Minimalize from the low-value end: dropping a member keeps
			// the cover when the rest still overflow, and each drop raises
			// the violation by 1 - v ≥ 0.
			for len(cover) > 2 {
				last := cover[len(cover)-1]
				if sum-last.w <= dim.cap {
					break
				}
				sum -= last.w
				mass -= last.v
				cover = cover[:len(cover)-1]
			}
			viol := mass - float64(len(cover)-1)
			if viol <= sepMinViolation {
				continue
			}
			maxw := 0
			for _, c := range cover {
				if c.w > maxw {
					maxw = c.w
				}
			}
			mc := modelCut{name: "cover-" + dim.name, CutRow: lp.CutRow{Kind: lp.LE, RHS: float64(len(cover) - 1)}}
			for _, c := range cover {
				mc.Cols = append(mc.Cols, s.yv(c.t, p))
				mc.Vals = append(mc.Vals, 1)
			}
			// Lifting: items[k:] is disjoint from the cover (a subset of
			// items[:k]), so membership needs no check.
			for _, c := range items[k:] {
				if c.w >= maxw {
					mc.Cols = append(mc.Cols, s.yv(c.t, p))
					mc.Vals = append(mc.Vals, 1)
					viol += c.v // lifting terms only add violation
				}
			}
			cand = append(cand, scoredCut{mc: mc, viol: viol})
		}
	}
	return cand
}

// chainCuts separates the temporal-order clique cuts over chains from the
// long-path seeds and from chains grown through the most fractional tasks.
func (s *separator) chainCuts(x []float64, cand []scoredCut) []scoredCut {
	for _, chain := range s.longPaths {
		cand = s.bandCut(x, chain, "path", cand)
	}
	for _, chain := range s.grownChains(x) {
		cand = s.bandCut(x, chain, "clique", cand)
	}
	return cand
}

// grownChains builds up to sepMaxChains chains through the comparability
// order, greedily extending from the most fractionally-placed tasks using
// the presolve's ancestor bitsets. Unlike the path seeds these chains may
// use transitive (non-edge) comparabilities.
func (s *separator) grownChains(x []float64) [][]int {
	if s.nT == 0 || len(s.pre.reach) == 0 {
		return nil
	}
	frac := make([]float64, s.nT)
	for t := 0; t < s.nT; t++ {
		maxv := 0.0
		for p := 0; p < s.N; p++ {
			if v := x[s.yv(t, p)]; v > maxv {
				maxv = v
			}
		}
		frac[t] = 1 - maxv
	}
	seeds := make([]int, s.nT)
	for t := range seeds {
		seeds[t] = t
	}
	sort.Slice(seeds, func(a, b int) bool { return frac[seeds[a]] > frac[seeds[b]] })

	isAncestor := func(a, t int) bool { // a ≺ t?
		return s.pre.reach[t][a/64]&(1<<uint(a%64)) != 0
	}
	var chains [][]int
	for _, seed := range seeds {
		if len(chains) >= sepMaxChains || frac[seed] < 0.05 {
			break
		}
		chain := []int{seed}
		// Extend toward descendants of the tail...
		for {
			tail, best := chain[len(chain)-1], -1
			for u := 0; u < s.nT; u++ {
				if u != tail && isAncestor(tail, u) && (best < 0 || frac[u] > frac[best]) {
					best = u
				}
			}
			if best < 0 {
				break
			}
			chain = append(chain, best)
		}
		// ...and ancestors of the head (transitivity keeps it a chain).
		for {
			head, best := chain[0], -1
			for u := 0; u < s.nT; u++ {
				if u != head && isAncestor(u, head) && (best < 0 || frac[u] > frac[best]) {
					best = u
				}
			}
			if best < 0 {
				break
			}
			chain = append([]int{best}, chain...)
		}
		if len(chain) >= 2 {
			chains = append(chains, chain)
		}
	}
	return chains
}

// bandCut runs the exact band-assignment DP for one chain: choose a
// subsequence of the chain and strictly descending partition intervals
// (ancestors get the high bands — an ancestor placed late conflicts with
// every descendant placed early) maximizing the fractional mass
// Σ_i Σ_{p∈I_i} x[y[a_i][p]]. Mass > 1 is a violated clique cut
// Σ_i Σ_{p∈I_i} y[a_i][p] ≤ 1.
func (s *separator) bandCut(x []float64, chain []int, tag string, cand []scoredCut) []scoredCut {
	k, N := len(chain), s.N
	if k < 2 || N < 2 {
		return cand
	}
	// prefix[i][p+1] = Σ_{q<=p} x[y[chain[i]][q]]
	prefix := make([][]float64, k)
	for i, t := range chain {
		row := make([]float64, N+1)
		for p := 0; p < N; p++ {
			row[p+1] = row[p] + x[s.yv(t, p)]
		}
		prefix[i] = row
	}
	// g[i][t]: best mass from chain[i:] with all bands inside [0..t].
	// Chain position i takes band [l..t] (or is skipped), later positions
	// continue inside [0..l-1] — descendants strictly below ancestors.
	g := make([][]float64, k+1)
	choice := make([][]int, k) // chosen l for band [l..t], or -1 = skip
	g[k] = make([]float64, N+1)
	for i := k - 1; i >= 0; i-- {
		g[i] = make([]float64, N+1)
		choice[i] = make([]int, N+1)
		for t := 0; t < N; t++ {
			best, bestL := g[i+1][t+1], -1
			for l := 0; l <= t; l++ {
				v := prefix[i][t+1] - prefix[i][l]
				if l > 0 {
					v += g[i+1][l]
				}
				if v > best+1e-12 {
					best, bestL = v, l
				}
			}
			g[i][t+1] = best
			choice[i][t+1] = bestL
		}
	}
	viol := g[0][N] - 1
	if viol <= sepMinViolation {
		return cand
	}
	mc := modelCut{name: "order-" + tag, CutRow: lp.CutRow{Kind: lp.LE, RHS: 1}}
	tasks := 0
	t := N
	for i := 0; i < k && t > 0; i++ {
		l := choice[i][t]
		if l < 0 {
			continue
		}
		tasks++
		for p := l; p < t; p++ {
			mc.Cols = append(mc.Cols, s.yv(chain[i], p))
			mc.Vals = append(mc.Vals, 1)
		}
		t = l
	}
	if tasks < 2 {
		return cand // single-task band: implied by the uniqueness row
	}
	cand = append(cand, scoredCut{mc: mc, viol: viol})
	return cand
}

// layerCakeCuts separates the per-subset layer-cake cuts: for every
// subset size s the most violated subset under the current point is the s
// partitions with the smallest d values; if their sum undercuts the
// subset floor c_s, emit Σ_{p∈S} d_p ≥ c_s.
func (s *separator) layerCakeCuts(x []float64, cand []scoredCut) []scoredCut {
	N := s.N
	if N < 2 {
		return cand
	}
	order := make([]int, N)
	for p := range order {
		order[p] = p
	}
	sort.Slice(order, func(a, b int) bool { return x[s.dv(order[a])] < x[s.dv(order[b])] })
	lhs := 0.0
	for sz := 1; sz < N; sz++ {
		lhs += x[s.dv(order[sz-1])]
		rhs := s.subsetRHS[sz]
		if rhs <= 0 {
			continue
		}
		if viol := rhs - lhs; viol > sepMinViolation {
			mc := modelCut{name: "layercake", CutRow: lp.CutRow{Kind: lp.GE, RHS: rhs}}
			for _, p := range order[:sz] {
				mc.Cols = append(mc.Cols, s.dv(p))
				mc.Vals = append(mc.Vals, 1)
			}
			cand = append(cand, scoredCut{mc: mc, viol: viol})
		}
	}
	return cand
}

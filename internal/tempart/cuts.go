package tempart

import (
	"math"
	"sort"

	"repro/internal/dfg"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// This file is the cutting-plane side of the temporal partitioning model:
// the uniform cut-row representation shared by the presolve (root cuts
// baked into the model at build time) and the separation callback (cuts
// added to the live node LPs during branch and bound), plus the three
// separator families over the ilp.Options.Separate hook:
//
//   - knapsack cover cuts, lifted (extended covers) from the per-partition
//     resource rows Σ_t R(t)·y[t][p] ≤ cap;
//   - temporal-order clique cuts: for a chain a_1 ≺ a_2 ≺ … ≺ a_k in the
//     ancestor partial order (straight from the presolve's reachability
//     bitsets) and descending partition bands I_1 > I_2 > … > I_k, at most
//     one of the variables {y[a_i][p] : p ∈ I_i} can be 1 — an ancestor
//     placed late excludes every descendant placed early — so
//     Σ_i Σ_{p∈I_i} y[a_i][p] ≤ 1. The band choice per chain is an exact
//     O(k·N²) DP on the fractional point. Chains are seeded two ways:
//     the k longest (delay-weighted) enumerated paths — the cheap stand-in
//     for a k-longest-paths enumeration since the model already owns the
//     full path list — and chains grown greedily through the most
//     fractional tasks using the bitsets ("path" vs "clique" tags);
//   - per-subset lifted layer-cake cuts Σ_{p∈S} d_p ≥ c_{|S|},
//     generalizing the aggregate presolve row to every partition subset
//     (see presolve.subsetDelayFloor for the validity argument; the
//     lifting is the integrality ceiling inside need()).
//
// Every family above is globally valid — derived from the instance data
// and integrality alone, never from branching decisions — so those cuts
// enter the shared ilp pool and strengthen every worker's relaxation. The
// one exception is the residual CG cardinality separator (cgResidualCuts):
// its cuts use the node's fixed assignments, are valid only inside the
// emitting node's bound box, and are therefore marked node-local
// (scoredCut.local → ilp.Cut.Global=false) so they ride the node and its
// descendants instead of the pool. The cut-validity property tests
// brute-force all of this against all integral feasible assignments of
// random instances.

// modelCut is the uniform cut-row representation: a named lp.CutRow that
// can be baked into an lp.Problem at build time (root cuts) or handed to
// the branch-and-cut layer as an ilp.Cut (separation).
type modelCut struct {
	name string
	lp.CutRow
}

// addTo appends the cut as an ordinary model row (build-time root cuts).
// AddRowCols merges any duplicate column indices by summation, matching the
// map accumulation this used to do.
func (c *modelCut) addTo(p *lp.Problem) {
	p.AddRowCols(c.Kind, c.Cols, c.Vals, c.RHS)
}

// toCut converts the cut for the ilp separation hook. All tempart cuts are
// globally valid.
func (c *modelCut) toCut() ilp.Cut {
	return ilp.Cut{CutRow: c.CutRow, Global: true, Name: c.name}
}

// cgFamily is one Chvátal–Gomory cardinality family: a task set S (a size
// threshold in one capped resource dimension, or a delay threshold
// restricted to the dimension's positive demands) of which at most kappa
// fit any single partition — kappa is the largest k whose k smallest
// members still fit the capacity, i.e. the integer-rounding strengthening
// ⌊cap/minsize(S)⌋ of the rank-1 CG cut tightened by the actual sizes. Two
// rows follow per partition p:
//
//	cardinality   Σ_{t∈S} y[t][p] ≤ κ
//	delay-coupled δ·Σ_{t∈S} y[t][p] ≤ κ·d_p   (δ = min delay over S)
//
// The first is the CG rounding of the resource row Σ R(t)·y[t][p] ≤ cap
// (every member has ⌊R(t)/m⌋ ≥ 1); summed over p against the uniqueness
// rows it proves LP infeasibility outright when |S| > N·κ. The second is
// its sequential lifting into the objective space: an integral partition
// hosting k ≤ κ members has d_p ≥ δ (a single task is a chain), so
// δ·k ≤ κ·d_p — which is what stops the LP from spreading near-capacity
// items fractionally while keeping every d_p at the layer-cake floor.
type cgFamily struct {
	name  string
	nameD string // name + "-d", precomputed off the model-build hot path
	tasks []int
	kappa int
	delta float64 // min delay over tasks; 0 disables the delay-coupled row
}

// maxFitCount returns the largest k such that the k smallest of sizes sum
// to at most cap (sizes must be sorted ascending). 0 when none fit.
func maxFitCount(sizes []int, cap int) int {
	sum, k := 0, 0
	for k < len(sizes) && sum+sizes[k] <= cap {
		sum += sizes[k]
		k++
	}
	return k
}

// cgFamilies derives the instance's CG cardinality families: for every
// capped dimension, the size-threshold sets (one per distinct kappa, the
// largest such set winning — a superset with equal kappa strictly
// dominates) and the delay-threshold sets from the layer-cake segments.
// Families with kappa ≥ |S| are trivial (the cut cannot bind below the
// uniqueness rows) and dropped, and families with identical (task set,
// kappa) are merged keeping the larger delay floor (on uniform-delay
// instances the first segment's set IS the full size-threshold set, and
// duplicate rows would otherwise be baked into every model twice).
// Independent of N, so they are computed once per presolve and shared by
// root emission and separation.
func cgFamilies(pre *presolve) []cgFamily {
	var fams []cgFamily
	dims := presolveDims(pre)
	for _, dim := range dims {
		type ts struct {
			t, size int
		}
		items := make([]ts, 0, len(dim.demand))
		for t, d := range dim.demand {
			if d > 0 {
				items = append(items, ts{t, d})
			}
		}
		if len(items) < 2 {
			continue
		}
		sort.Slice(items, func(a, b int) bool { return items[a].size < items[b].size })
		sizes := make([]int, len(items))
		for i, it := range items {
			sizes[i] = it.size
		}
		// Size thresholds ascending: S shrinks, kappa never grows. Keep the
		// first (largest) S per kappa value.
		lastKappa := -1
		for i := 0; i < len(items); i++ {
			if i > 0 && items[i].size == items[i-1].size {
				continue
			}
			kappa := maxFitCount(sizes[i:], dim.cap)
			if kappa < 1 {
				kappa = 1 // unreachable for validated tasks
			}
			if kappa == lastKappa || kappa >= len(items)-i {
				continue
			}
			lastKappa = kappa
			fam := cgFamily{name: "cg-card-" + dim.name, kappa: kappa, delta: math.Inf(1)}
			for _, it := range items[i:] {
				fam.tasks = append(fam.tasks, it.t)
				if d := pre.delays[it.t]; d < fam.delta {
					fam.delta = d
				}
			}
			if math.IsInf(fam.delta, 1) || fam.delta < 0 {
				fam.delta = 0
			}
			fams = append(fams, fam)
		}
		// Delay thresholds from the layer-cake segments: the tasks with
		// delay ≥ δ and positive demand in this dimension.
		for _, seg := range pre.segments {
			var tasks []int
			var segSizes []int
			for t, d := range dim.demand {
				if d > 0 && pre.delays[t] >= seg.delay {
					tasks = append(tasks, t)
					segSizes = append(segSizes, d)
				}
			}
			if len(tasks) < 2 {
				continue
			}
			sort.Ints(segSizes)
			kappa := maxFitCount(segSizes, dim.cap)
			if kappa < 1 {
				kappa = 1
			}
			if kappa >= len(tasks) {
				continue
			}
			fams = append(fams, cgFamily{
				name: "cg-delay-" + dim.name, tasks: tasks, kappa: kappa, delta: seg.delay,
			})
		}
	}
	fams = dedupeCGFamilies(fams)
	for i := range fams {
		fams[i].nameD = fams[i].name + "-d"
	}
	return fams
}

// dedupeCGFamilies merges families with identical (task set, kappa),
// keeping the largest valid delay floor (both candidates' deltas are ≤ the
// set's minimum delay, so the larger one gives the strictly stronger
// delay-coupled row).
func dedupeCGFamilies(fams []cgFamily) []cgFamily {
	index := make(map[string]int, len(fams))
	out := fams[:0]
	var key []byte
	var ids []int
	for _, fam := range fams {
		// Canonical key: kappa + the SORTED member ids (the size- and
		// delay-threshold builders enumerate the same set in different
		// orders).
		ids = append(ids[:0], fam.tasks...)
		sort.Ints(ids)
		key = key[:0]
		key = append(key, byte(fam.kappa), byte(fam.kappa>>8))
		for _, t := range ids {
			key = append(key, byte(t), byte(t>>8), byte(t>>16))
		}
		if at, dup := index[string(key)]; dup {
			if fam.delta > out[at].delta {
				out[at].delta = fam.delta
			}
			continue
		}
		index[string(key)] = len(out)
		out = append(out, fam)
	}
	return out
}

// presolveDims lists the capped resource dimensions of an instance in the
// uniform form the cut layer consumes (CLBs first, then the board's capped
// extra kinds).
func presolveDims(pre *presolve) []resDim {
	var dims []resDim
	if pre.board.FPGA.CLBs > 0 {
		dims = append(dims, resDim{name: "clb", demand: pre.res, cap: pre.board.FPGA.CLBs})
	}
	for k, kind := range pre.extraKinds {
		dims = append(dims, resDim{name: kind, demand: pre.extraDemand[k], cap: pre.extraCap[k]})
	}
	return dims
}

// emitRootCuts streams the presolve cuts added to every model at build
// time: the aggregate Σ_p d_p ≥ max(critical path, layer-cake) row that
// PR 3 introduced, plus — when withCuts is set — one boundary chain-area
// cut per prefix/suffix of the partition sequence (see boundaryChainFloor)
// and the per-partition Chvátal–Gomory cardinality rows (cgFamilies: the
// cardinality row always, the delay-coupled row when the family has a
// positive delay floor). The boundary cuts are what close the FIR-bank
// root; the CG rows are what make near-capacity packing infeasibility
// visible to the LP itself — at a too-small N they contradict the
// uniqueness rows, so the root relaxation is infeasible with no search at
// all, and at the feasible N the delay-coupled forms hold every
// partition's d_p to its share of the cardinality floor. withCuts=false is
// the Input.NoCuts ablation, which reproduces the PR 3 model exactly.
//
// The cols/vals slices passed to emit are scratch, reused across calls —
// consumers must copy what they keep. The model builder feeds them
// straight to lp.Problem.AddRowCols, so the whole root-cut layer costs two
// scratch slices per build instead of a materialized cut list.
func emitRootCuts(pre *presolve, N int, yv func(t, p int) int, dv func(p int) int, withCuts bool,
	emit func(name string, kind lp.RowKind, cols []int, vals []float64, rhs float64)) {

	cols := make([]int, 0, 64)
	vals := make([]float64, 0, 64)
	reset := func() {
		cols = cols[:0]
		vals = vals[:0]
	}
	put := func(j int, v float64) {
		cols = append(cols, j)
		vals = append(vals, v)
	}
	if floor := pre.sumDelayFloor(); floor > 0 {
		reset()
		for p := 0; p < N; p++ {
			put(dv(p), 1)
		}
		emit("presolve-aggregate", lp.GE, cols, vals, floor)
	}
	if !withCuts {
		return
	}
	for p := 1; p < N; p++ {
		if floor := pre.boundaryChainFloor(N, p, false); floor > 0 {
			reset()
			for q := 0; q < p; q++ {
				put(dv(q), 1)
			}
			emit("chain-prefix", lp.GE, cols, vals, floor)
		}
		if floor := pre.boundaryChainFloor(N, p, true); floor > 0 {
			reset()
			for q := p; q < N; q++ {
				put(dv(q), 1)
			}
			emit("chain-suffix", lp.GE, cols, vals, floor)
		}
	}
	for _, fam := range pre.cgFams {
		for p := 0; p < N; p++ {
			reset()
			for _, t := range fam.tasks {
				put(yv(t, p), 1)
			}
			emit(fam.name, lp.LE, cols, vals, float64(fam.kappa))
			if fam.delta > 0 {
				reset()
				for _, t := range fam.tasks {
					put(yv(t, p), fam.delta)
				}
				put(dv(p), -float64(fam.kappa))
				emit(fam.nameD, lp.LE, cols, vals, 0)
			}
		}
	}
}

// rootCuts materializes the emitRootCuts stream as a cut list (the
// representation the validity property tests brute-force).
func rootCuts(pre *presolve, N int, yv func(t, p int) int, dv func(p int) int, withCuts bool) []modelCut {
	var cuts []modelCut
	emitRootCuts(pre, N, yv, dv, withCuts, func(name string, kind lp.RowKind, cols []int, vals []float64, rhs float64) {
		cuts = append(cuts, modelCut{name: name, CutRow: lp.CutRow{
			Kind: kind,
			Cols: append([]int(nil), cols...),
			Vals: append([]float64(nil), vals...),
			RHS:  rhs,
		}})
	})
	return cuts
}

const (
	// sepMinViolation is the separator-side violation filter; weaker cuts
	// are noise that costs LP rows without moving the bound.
	sepMinViolation = 1e-4
	// sepMaxCutsPerRound caps what one separation round may return (the
	// most violated cuts win).
	sepMaxCutsPerRound = 24
	// sepKLongestPaths seeds the path-based clique cuts with the k
	// longest delay-weighted root-leaf paths.
	sepKLongestPaths = 16
	// sepMaxChains bounds the bitset-grown fractional chains per round.
	sepMaxChains = 6
)

// resDim is one capped resource dimension (CLBs or an extra kind).
type resDim struct {
	name   string
	demand []int
	cap    int
}

// separator owns the per-model separation state: the variable layout, the
// capped resource dimensions, the longest-path chain seeds, and the
// precomputed per-subset layer-cake floors. It is stateless per call and
// safe for concurrent use from parallel search workers.
type separator struct {
	pre *presolve
	g   *dfg.Graph
	N   int
	nT  int
	yv  func(t, p int) int
	dv  func(p int) int

	dims      []resDim
	longPaths [][]int
	subsetRHS []float64 // subsetRHS[s]: layer-cake floor for s-subsets, s in [1,N)
}

// newSeparator builds the separator for one generated model.
func newSeparator(pre *presolve, g *dfg.Graph, N int, yv func(t, p int) int, dv func(p int) int, paths [][]int) *separator {
	s := &separator{pre: pre, g: g, N: N, nT: g.NumTasks(), yv: yv, dv: dv}
	s.dims = presolveDims(pre)
	// k longest delay-weighted paths (the full path set is already
	// enumerated for Eq. 7, so "k longest" is a sort, not a search).
	type pw struct {
		i int
		d float64
	}
	pws := make([]pw, 0, len(paths))
	for i, path := range paths {
		if len(path) < 2 {
			continue
		}
		d := 0.0
		for _, t := range path {
			d += g.Task(t).Delay
		}
		pws = append(pws, pw{i, d})
	}
	sort.Slice(pws, func(a, b int) bool { return pws[a].d > pws[b].d })
	for i := 0; i < len(pws) && i < sepKLongestPaths; i++ {
		s.longPaths = append(s.longPaths, paths[pws[i].i])
	}
	s.subsetRHS = make([]float64, N)
	for sz := 1; sz < N; sz++ {
		s.subsetRHS[sz] = pre.subsetDelayFloor(N, sz)
	}
	return s
}

// scoredCut pairs a candidate cut with its violation at the current point.
// local marks cuts valid only inside the emitting node's bound box (the
// residual CG cuts); they ride the node instead of the shared pool.
type scoredCut struct {
	mc    modelCut
	viol  float64
	local bool
}

// separate is the ilp.Options.Separate callback: run every family on the
// fractional point and return the most violated candidates.
func (s *separator) separate(pt *ilp.SeparationPoint) []ilp.Cut {
	var cand []scoredCut
	cand = s.coverCuts(pt.X, cand)
	cand = s.chainCuts(pt.X, cand)
	cand = s.layerCakeCuts(pt.X, cand)
	cand = s.cgResidualCuts(pt, cand)
	if len(cand) == 0 {
		return nil
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a].viol > cand[b].viol })
	if len(cand) > sepMaxCutsPerRound {
		cand = cand[:sepMaxCutsPerRound]
	}
	out := make([]ilp.Cut, len(cand))
	for i := range cand {
		out[i] = cand[i].mc.toCut()
		if cand[i].local {
			out[i].Global = false
		}
	}
	return out
}

// cgResidualCuts separates node-local CG cardinality cuts from the node's
// residual capacities: with the box's fixed tasks occupying used(p) of a
// dimension, at most κ_p more of the still-eligible tasks — the largest
// count whose smallest members fit cap − used(p) — can join partition p,
// so Σ_{t eligible} y[t][p] ≤ κ_p inside this box. At the root the cut
// degenerates to the global cardinality row already in the model (never
// violated there); below the root the shrunken residues make it strictly
// sharper than anything globally valid, which is exactly why it is a
// node-local cut inherited by the subtree only.
func (s *separator) cgResidualCuts(pt *ilp.SeparationPoint, cand []scoredCut) []scoredCut {
	type elig struct {
		t, size int
		v       float64
	}
	for _, dim := range s.dims {
		for p := 0; p < s.N; p++ {
			used := 0
			var items []elig
			mass := 0.0
			for t := 0; t < s.nT; t++ {
				d := dim.demand[t]
				if d <= 0 {
					continue
				}
				lo, hi := pt.Bounds(s.yv(t, p))
				switch {
				case lo > 0.5:
					used += d
				case hi > 0.5:
					items = append(items, elig{t, d, pt.X[s.yv(t, p)]})
					mass += pt.X[s.yv(t, p)]
				}
			}
			if len(items) < 2 {
				continue
			}
			sizes := make([]int, len(items))
			for i, it := range items {
				sizes[i] = it.size
			}
			sort.Ints(sizes)
			kappa := maxFitCount(sizes, dim.cap-used)
			if kappa >= len(items) || mass-float64(kappa) <= sepMinViolation {
				continue
			}
			mc := modelCut{name: "cg-res-" + dim.name, CutRow: lp.CutRow{Kind: lp.LE, RHS: float64(kappa)}}
			for _, it := range items {
				mc.Cols = append(mc.Cols, s.yv(it.t, p))
				mc.Vals = append(mc.Vals, 1)
			}
			cand = append(cand, scoredCut{mc: mc, viol: mass - float64(kappa), local: true})
		}
	}
	return cand
}

// coverCuts separates extended cover inequalities from each partition's
// resource rows: if C is a set of tasks whose total demand exceeds the
// capacity (a cover), no partition can host all of C, so
// Σ_{t∈C} y[t][p] ≤ |C|-1; the lifting extends the left-hand side with
// every task at least as large as the largest cover member (any |C| of the
// extended set also overflow), which strengthens the cut for free.
func (s *separator) coverCuts(x []float64, cand []scoredCut) []scoredCut {
	type item struct {
		t, w int
		v    float64
	}
	for _, dim := range s.dims {
		items := make([]item, 0, s.nT)
		for t := 0; t < s.nT; t++ {
			if dim.demand[t] > 0 {
				items = append(items, item{t: t, w: dim.demand[t]})
			}
		}
		if len(items) < 2 {
			continue
		}
		for p := 0; p < s.N; p++ {
			for i := range items {
				items[i].v = x[s.yv(items[i].t, p)]
			}
			sort.Slice(items, func(a, b int) bool {
				if items[a].v != items[b].v {
					return items[a].v > items[b].v
				}
				return items[a].w > items[b].w
			})
			sum, mass, k := 0, 0.0, 0
			for k < len(items) && sum <= dim.cap {
				sum += items[k].w
				mass += items[k].v
				k++
			}
			if sum <= dim.cap {
				continue // all tasks together fit: no cover exists
			}
			cover := items[:k]
			// Minimalize from the low-value end: dropping a member keeps
			// the cover when the rest still overflow, and each drop raises
			// the violation by 1 - v ≥ 0.
			for len(cover) > 2 {
				last := cover[len(cover)-1]
				if sum-last.w <= dim.cap {
					break
				}
				sum -= last.w
				mass -= last.v
				cover = cover[:len(cover)-1]
			}
			viol := mass - float64(len(cover)-1)
			if viol <= sepMinViolation {
				continue
			}
			maxw := 0
			for _, c := range cover {
				if c.w > maxw {
					maxw = c.w
				}
			}
			mc := modelCut{name: "cover-" + dim.name, CutRow: lp.CutRow{Kind: lp.LE, RHS: float64(len(cover) - 1)}}
			for _, c := range cover {
				mc.Cols = append(mc.Cols, s.yv(c.t, p))
				mc.Vals = append(mc.Vals, 1)
			}
			// Lifting: items[k:] is disjoint from the cover (a subset of
			// items[:k]), so membership needs no check.
			for _, c := range items[k:] {
				if c.w >= maxw {
					mc.Cols = append(mc.Cols, s.yv(c.t, p))
					mc.Vals = append(mc.Vals, 1)
					viol += c.v // lifting terms only add violation
				}
			}
			cand = append(cand, scoredCut{mc: mc, viol: viol})
		}
	}
	return cand
}

// chainCuts separates the temporal-order clique cuts over chains from the
// long-path seeds and from chains grown through the most fractional tasks.
func (s *separator) chainCuts(x []float64, cand []scoredCut) []scoredCut {
	for _, chain := range s.longPaths {
		cand = s.bandCut(x, chain, "path", cand)
	}
	for _, chain := range s.grownChains(x) {
		cand = s.bandCut(x, chain, "clique", cand)
	}
	return cand
}

// grownChains builds up to sepMaxChains chains through the comparability
// order, greedily extending from the most fractionally-placed tasks using
// the presolve's ancestor bitsets. Unlike the path seeds these chains may
// use transitive (non-edge) comparabilities.
func (s *separator) grownChains(x []float64) [][]int {
	if s.nT == 0 || len(s.pre.reach) == 0 {
		return nil
	}
	frac := make([]float64, s.nT)
	for t := 0; t < s.nT; t++ {
		maxv := 0.0
		for p := 0; p < s.N; p++ {
			if v := x[s.yv(t, p)]; v > maxv {
				maxv = v
			}
		}
		frac[t] = 1 - maxv
	}
	seeds := make([]int, s.nT)
	for t := range seeds {
		seeds[t] = t
	}
	sort.Slice(seeds, func(a, b int) bool { return frac[seeds[a]] > frac[seeds[b]] })

	isAncestor := func(a, t int) bool { // a ≺ t?
		return s.pre.reach[t][a/64]&(1<<uint(a%64)) != 0
	}
	var chains [][]int
	for _, seed := range seeds {
		if len(chains) >= sepMaxChains || frac[seed] < 0.05 {
			break
		}
		chain := []int{seed}
		// Extend toward descendants of the tail...
		for {
			tail, best := chain[len(chain)-1], -1
			for u := 0; u < s.nT; u++ {
				if u != tail && isAncestor(tail, u) && (best < 0 || frac[u] > frac[best]) {
					best = u
				}
			}
			if best < 0 {
				break
			}
			chain = append(chain, best)
		}
		// ...and ancestors of the head (transitivity keeps it a chain).
		for {
			head, best := chain[0], -1
			for u := 0; u < s.nT; u++ {
				if u != head && isAncestor(u, head) && (best < 0 || frac[u] > frac[best]) {
					best = u
				}
			}
			if best < 0 {
				break
			}
			chain = append([]int{best}, chain...)
		}
		if len(chain) >= 2 {
			chains = append(chains, chain)
		}
	}
	return chains
}

// bandCut runs the exact band-assignment DP for one chain: choose a
// subsequence of the chain and strictly descending partition intervals
// (ancestors get the high bands — an ancestor placed late conflicts with
// every descendant placed early) maximizing the fractional mass
// Σ_i Σ_{p∈I_i} x[y[a_i][p]]. Mass > 1 is a violated clique cut
// Σ_i Σ_{p∈I_i} y[a_i][p] ≤ 1.
func (s *separator) bandCut(x []float64, chain []int, tag string, cand []scoredCut) []scoredCut {
	k, N := len(chain), s.N
	if k < 2 || N < 2 {
		return cand
	}
	// prefix[i][p+1] = Σ_{q<=p} x[y[chain[i]][q]]
	prefix := make([][]float64, k)
	for i, t := range chain {
		row := make([]float64, N+1)
		for p := 0; p < N; p++ {
			row[p+1] = row[p] + x[s.yv(t, p)]
		}
		prefix[i] = row
	}
	// g[i][t]: best mass from chain[i:] with all bands inside [0..t].
	// Chain position i takes band [l..t] (or is skipped), later positions
	// continue inside [0..l-1] — descendants strictly below ancestors.
	g := make([][]float64, k+1)
	choice := make([][]int, k) // chosen l for band [l..t], or -1 = skip
	g[k] = make([]float64, N+1)
	for i := k - 1; i >= 0; i-- {
		g[i] = make([]float64, N+1)
		choice[i] = make([]int, N+1)
		for t := 0; t < N; t++ {
			best, bestL := g[i+1][t+1], -1
			for l := 0; l <= t; l++ {
				v := prefix[i][t+1] - prefix[i][l]
				if l > 0 {
					v += g[i+1][l]
				}
				if v > best+1e-12 {
					best, bestL = v, l
				}
			}
			g[i][t+1] = best
			choice[i][t+1] = bestL
		}
	}
	viol := g[0][N] - 1
	if viol <= sepMinViolation {
		return cand
	}
	mc := modelCut{name: "order-" + tag, CutRow: lp.CutRow{Kind: lp.LE, RHS: 1}}
	tasks := 0
	t := N
	for i := 0; i < k && t > 0; i++ {
		l := choice[i][t]
		if l < 0 {
			continue
		}
		tasks++
		for p := l; p < t; p++ {
			mc.Cols = append(mc.Cols, s.yv(chain[i], p))
			mc.Vals = append(mc.Vals, 1)
		}
		t = l
	}
	if tasks < 2 {
		return cand // single-task band: implied by the uniqueness row
	}
	cand = append(cand, scoredCut{mc: mc, viol: viol})
	return cand
}

// layerCakeCuts separates the per-subset layer-cake cuts: for every
// subset size s the most violated subset under the current point is the s
// partitions with the smallest d values; if their sum undercuts the
// subset floor c_s, emit Σ_{p∈S} d_p ≥ c_s.
func (s *separator) layerCakeCuts(x []float64, cand []scoredCut) []scoredCut {
	N := s.N
	if N < 2 {
		return cand
	}
	order := make([]int, N)
	for p := range order {
		order[p] = p
	}
	sort.Slice(order, func(a, b int) bool { return x[s.dv(order[a])] < x[s.dv(order[b])] })
	lhs := 0.0
	for sz := 1; sz < N; sz++ {
		lhs += x[s.dv(order[sz-1])]
		rhs := s.subsetRHS[sz]
		if rhs <= 0 {
			continue
		}
		if viol := rhs - lhs; viol > sepMinViolation {
			mc := modelCut{name: "layercake", CutRow: lp.CutRow{Kind: lp.GE, RHS: rhs}}
			for _, p := range order[:sz] {
				mc.Cols = append(mc.Cols, s.dv(p))
				mc.Vals = append(mc.Vals, 1)
			}
			cand = append(cand, scoredCut{mc: mc, viol: viol})
		}
	}
	return cand
}

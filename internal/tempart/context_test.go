package tempart

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/dfg"
)

// hardInput builds an instance whose B&B search runs far longer than the
// test timeout when not cancelled. Sizes cycle 34/35/36 CLBs on a 100-CLB
// board: any three tasks overflow a partition, so each holds at most two
// and the area bound N0 = ⌈Σ/100⌉ undershoots the true minimum by several
// partitions. The relax loop therefore has to prove integral packing
// infeasibility at N0, N0+1, … — searches with no incumbent, which neither
// the presolve's combinatorial bounds nor the LP relaxation (both happy
// fractionally) can prune, and whose slightly-varied sizes defeat the
// packing pre-check's symmetry pruning. Symmetry breaking and the warm
// start are disabled on top to keep the tree maximal.
func hardInput(nTasks int) Input {
	g := dfg.New("hard")
	for i := 0; i < nTasks; i++ {
		g.MustAddTask(dfg.Task{
			Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: 34 + i%3, Delay: 100, ReadEnv: 1, WriteEnv: 1,
		})
	}
	b := arch.SmallTestBoard() // 100 CLBs: two tasks per partition
	return Input{Graph: g, Board: b, NoSymmetryBreaking: true, DisableWarmStart: true}
}

func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := SolveContext(ctx, hardInput(24))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled solve returned %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("pre-cancelled solve took %v", el)
	}
}

func TestSolveContextCancelStopsSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := SolveContext(ctx, hardInput(24))
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled solve returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("solve did not observe cancellation (running %v)", time.Since(start))
	}
}

// TestSolveContextCompletesUncancelled pins that a live context does not
// perturb results: same optimum as the plain Solve path.
func TestSolveContextCompletesUncancelled(t *testing.T) {
	in := randomDAG(3, 10)
	b := arch.SmallTestBoard()
	want, err := Solve(Input{Graph: in, Board: b})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveContext(context.Background(), Input{Graph: in, Board: b})
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.Latency != want.Latency {
		t.Fatalf("ctx solve diverged: N=%d lat=%g vs N=%d lat=%g",
			got.N, got.Latency, want.N, want.Latency)
	}
}

package tempart

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/dfg"
)

// hardInput builds an instance whose B&B search runs far longer than the
// test timeout when not cancelled. Sizes alternate 26/38 CLBs on a 100-CLB
// board: three 26s or (26,26,38) share a partition but two 38s exclude
// everything else, a mixed-cardinality regime where every proof engine
// bound is strictly loose — the area bound and the CG cardinality dual
// bound both say 8 partitions, yet the true minimum is 9: with a bins of
// (38,38), b of (38,26,26), c of (26,26,26) — the only non-dominated
// patterns — covering the twelve 38s needs 2a+b ≥ 12 and the twelve 26s
// need 2b+3c ≥ 12, so a+b+c ≥ (12−b)/2 + b + (12−2b)/3 = 10 − b/6 ≥ 9
// (b ≤ 6 from the 26s), and at N=9 the layer-cake
// and CG-delay floors sit at 800 while the integral optimum is 900. Proving
// either side is an exponential enumeration that no incumbent, cut family,
// conflict clause, or packing bound shortcuts. (The earlier 34/35/36
// variant died to the CG cardinality engine: uniform near-capacity sizes
// make the cardinality bound exact.) Symmetry breaking and the warm start
// are disabled on top to keep the tree maximal.
func hardInput(nTasks int) Input {
	g := dfg.New("hard")
	for i := 0; i < nTasks; i++ {
		r := 26
		if i%2 == 1 {
			r = 38
		}
		g.MustAddTask(dfg.Task{
			Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: r, Delay: 100, ReadEnv: 1, WriteEnv: 1,
		})
	}
	b := arch.SmallTestBoard() // 100 CLBs
	return Input{Graph: g, Board: b, NoSymmetryBreaking: true, DisableWarmStart: true}
}

func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := SolveContext(ctx, hardInput(24))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled solve returned %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("pre-cancelled solve took %v", el)
	}
}

func TestSolveContextCancelStopsSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := SolveContext(ctx, hardInput(24))
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled solve returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("solve did not observe cancellation (running %v)", time.Since(start))
	}
}

// TestSolveContextCompletesUncancelled pins that a live context does not
// perturb results: same optimum as the plain Solve path.
func TestSolveContextCompletesUncancelled(t *testing.T) {
	in := randomDAG(3, 10)
	b := arch.SmallTestBoard()
	want, err := Solve(Input{Graph: in, Board: b})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveContext(context.Background(), Input{Graph: in, Board: b})
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.Latency != want.Latency {
		t.Fatalf("ctx solve diverged: N=%d lat=%g vs N=%d lat=%g",
			got.N, got.Latency, want.N, want.Latency)
	}
}

package tempart

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/dfg"
)

// This file is the hard-instance portfolio generator, shared by the
// regeneration command (testdata/portfolio/gen.go) and the determinism
// test: the committed corpus must be byte-identical to what
// PortfolioGraphs produces for the gen_seed pinned in manifest.json, so a
// fixture can never silently drift from its generator.
//
// The corpus covers the regimes the solver's proof machinery is graded on:
//
//   - packNN: near-capacity packing instances — items drawn from
//     {34,35,36} CLBs on a 100-CLB board, so every pair fits a partition
//     and every triple overflows. The area bound ⌈Σ/100⌉ undershoots the
//     integral minimum ⌈n/2⌉; before PR 5 the search enumerated an
//     exponential frontier against the layer-cake floor, now the CG
//     cardinality engine and the bin-packing dual bound close them in a
//     handful of nodes (the manifest budgets pin that).
//   - chainNN: the same near-capacity items arranged in 3-task chains with
//     mixed delays — the regime where the temporal-order and cover
//     separators bite; solved to optimality.
//   - firN: the FIR-bank shape of the headline bench with pinned synthesis
//     estimates — the boundary chain-area cuts must keep closing these at
//     the root.
//   - pack2638: the mixed-cardinality packing regime (26/38-CLB items whose
//     optimal cover mixes pattern sizes) — the row model's worst case, and
//     the branch-and-price formulation's headline win.
//   - chainblocksNNN: the ≥100-task chain-of-blocks matching instance the
//     pattern master proves optimal in milliseconds while the row model
//     returns an unproven incumbent ("gap") under the same budget.
type portfolioSizes struct{ rng *rand.Rand }

func (ps portfolioSizes) clbs() int { return 34 + ps.rng.Intn(3) }

func portfolioPack(rng *rand.Rand, n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("pack%d", n))
	ps := portfolioSizes{rng}
	for i := 0; i < n; i++ {
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: ps.clbs(), Delay: 100, ReadEnv: 1, WriteEnv: 1})
	}
	return g
}

func portfolioChain(rng *rand.Rand, n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("chain%d", n))
	ps := portfolioSizes{rng}
	delays := [3]float64{80, 100, 120}
	for i := 0; i < n; i++ {
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: ps.clbs(), Delay: delays[rng.Intn(3)], ReadEnv: 1, WriteEnv: 1})
	}
	for i := 0; i+1 < n; i += 3 {
		g.MustAddEdge(fmt.Sprintf("t%02d", i), fmt.Sprintf("t%02d", i+1), 1)
		if i+2 < n {
			g.MustAddEdge(fmt.Sprintf("t%02d", i+1), fmt.Sprintf("t%02d", i+2), 1)
		}
	}
	return g
}

// portfolioMix2638 is the mixed-cardinality packing regime: n independent
// tasks alternating 26 and 38 CLBs on a 100-CLB board. Two 38s fill a
// partition past the point where a 26 fits, so the optimal cover mixes
// pattern cardinalities — (26,26,38) triples and (38,38) pairs — and the
// integral minimum (9 for n=24) sits strictly above every combinatorial
// floor the presolve computes (area 8, size-threshold cardinality 8). The
// row formulation crawls through an exponential symmetric frontier here;
// the pattern master's set-partitioning LP bound is exactly the optimum, so
// branch-and-price closes the instance in a couple of hundred nodes.
func portfolioMix2638(n int) *dfg.Graph {
	g := dfg.New("pack2638")
	for i := 0; i < n; i++ {
		r := 26
		if i%2 == 1 {
			r = 38
		}
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: r, Delay: 100, ReadEnv: 1, WriteEnv: 1})
	}
	return g
}

// portfolioChainBlocks is the ≥100-task regime opened by branch-and-price:
// nBlocks three-task chains with CLB sizes 34/35/36 (at most two tasks per
// 100-CLB partition, so packingNeed = ⌈3·nBlocks/2⌉ fathoms every lower
// probe) in two delay classes — even blocks below 32 run at base delay 60,
// the rest at 100, with per-layer offsets +0/+1/+2. The optimum is a
// same-class, same-layer block matching (any mismatched cross-chain pair
// costs strictly more), worth Σ D(t)/2. The pattern master's LP bound
// equals that optimum (dual λ_t = D(t)/2 is feasible: every pattern costs
// at least its delay average), so branch-and-price proves it in a handful
// of nodes, while the row formulation's fractional spreading collapses the
// max terms and leaves a bound too weak to close at 5000+ binaries.
func portfolioChainBlocks(nBlocks int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("chainblocks%d", 3*nBlocks))
	sizes := [3]int{34, 35, 36}
	for b := 0; b < nBlocks; b++ {
		base := 100.0
		if b%2 == 0 && b < 32 {
			base = 60
		}
		for j := 0; j < 3; j++ {
			g.MustAddTask(dfg.Task{Name: fmt.Sprintf("b%02d_%d", b, j), Type: "C",
				Resources: sizes[j], Delay: base + float64(j)})
		}
	}
	for b := 0; b < nBlocks; b++ {
		_ = g.AddEdgeByID(3*b, 3*b+1, 1)
		_ = g.AddEdgeByID(3*b+1, 3*b+2, 1)
	}
	return g
}

func portfolioFIR(channels int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("fir%d", channels))
	for c := 0; c < channels; c++ {
		fn, dn, en := fmt.Sprintf("fir%d", c), fmt.Sprintf("dec%d", c), fmt.Sprintf("eng%d", c)
		g.MustAddTask(dfg.Task{Name: fn, Type: "fir", Resources: 140, Delay: 1140, ReadEnv: 4})
		g.MustAddTask(dfg.Task{Name: dn, Type: "dec", Resources: 100, Delay: 420})
		g.MustAddTask(dfg.Task{Name: en, Type: "eng", Resources: 110, Delay: 800, WriteEnv: 1})
		g.MustAddEdge(fn, dn, 4)
		g.MustAddEdge(dn, en, 2)
	}
	return g
}

// PortfolioInstance is one manifest row of the committed hard-instance
// corpus: the fixture file, its board parameters, the solver knobs it is
// run under, and the pinned expectations. This is the single schema every
// consumer decodes — the portfolio tests, the root-package pack
// benchmarks, and the regeneration command — so a new manifest knob can
// never be honoured by one of them and silently ignored by another.
type PortfolioInstance struct {
	File       string `json:"file"`
	CLBs       int    `json:"clbs"`
	MemWords   int    `json:"mem_words"`
	ReconfigNS int    `json:"reconfig_ns"`
	MaxNodes   int    `json:"max_nodes"`
	// MaxParts caps the relax-N loop (tempart.Input.MaxPartitions); 0 keeps
	// the default lower-bound+8 window. Instances whose area floor sits far
	// below the packing need (chainblocks) must widen it.
	MaxParts   int    `json:"max_partitions,omitempty"`
	NoSymmetry bool   `json:"no_symmetry"`
	NoWarm     bool   `json:"no_warm_start"`
	// Formulation selects the solver backend (tempart.Input.Formulation):
	// "" or "rows" is the row model, "patterns" is branch-and-price.
	Formulation string `json:"formulation,omitempty"`
	// Expect pins the outcome: "solve" (proven optimum at WantN), "limit"
	// (the search budget binds with no feasible partitioning — a
	// search-limit error), or "gap" (a feasible partitioning at WantN is
	// returned under budget but optimality stays unproven — the
	// cannot-finish regime the pattern formulation exists to crack).
	Expect     string `json:"expect"`
	WantN      int    `json:"want_n"`
	MaxBBNodes int    `json:"max_bb_nodes"`
	Quick      bool   `json:"quick"`
	// ExpectProof asserts the infeasibility-proof machinery carried the
	// solve: ConflictCuts or DualBoundFathoms must be nonzero.
	ExpectProof bool   `json:"expect_proof"`
	Note        string `json:"note"`
}

// PortfolioManifest is the committed manifest: the generator seed the
// fixtures are pinned to, plus the instance rows.
type PortfolioManifest struct {
	GenSeed   int64               `json:"gen_seed"`
	Instances []PortfolioInstance `json:"instances"`
}

// LoadPortfolioManifest reads the manifest from the portfolio directory.
func LoadPortfolioManifest(dir string) (*PortfolioManifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m PortfolioManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("portfolio manifest: %w", err)
	}
	return &m, nil
}

// PortfolioGraphs regenerates the hard-instance corpus for a pinned seed,
// in committed-file order. One RNG is consumed sequentially, so the output
// is a pure function of the seed.
func PortfolioGraphs(seed int64) []*dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	return []*dfg.Graph{
		portfolioPack(rng, 12), portfolioPack(rng, 15), portfolioPack(rng, 18),
		portfolioChain(rng, 9), portfolioChain(rng, 10), portfolioChain(rng, 11),
		portfolioFIR(6), portfolioFIR(8),
		// New generators append here: earlier fixtures are byte-pinned to
		// the RNG draw sequence above (pack2638/chainblocks draw nothing).
		portfolioMix2638(24), portfolioChainBlocks(34),
	}
}

package tempart

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/dfg"
)

// This file is the hard-instance portfolio generator, shared by the
// regeneration command (testdata/portfolio/gen.go) and the determinism
// test: the committed corpus must be byte-identical to what
// PortfolioGraphs produces for the gen_seed pinned in manifest.json, so a
// fixture can never silently drift from its generator.
//
// The corpus covers the regimes the solver's proof machinery is graded on:
//
//   - packNN: near-capacity packing instances — items drawn from
//     {34,35,36} CLBs on a 100-CLB board, so every pair fits a partition
//     and every triple overflows. The area bound ⌈Σ/100⌉ undershoots the
//     integral minimum ⌈n/2⌉; before PR 5 the search enumerated an
//     exponential frontier against the layer-cake floor, now the CG
//     cardinality engine and the bin-packing dual bound close them in a
//     handful of nodes (the manifest budgets pin that).
//   - chainNN: the same near-capacity items arranged in 3-task chains with
//     mixed delays — the regime where the temporal-order and cover
//     separators bite; solved to optimality.
//   - firN: the FIR-bank shape of the headline bench with pinned synthesis
//     estimates — the boundary chain-area cuts must keep closing these at
//     the root.
type portfolioSizes struct{ rng *rand.Rand }

func (ps portfolioSizes) clbs() int { return 34 + ps.rng.Intn(3) }

func portfolioPack(rng *rand.Rand, n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("pack%d", n))
	ps := portfolioSizes{rng}
	for i := 0; i < n; i++ {
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: ps.clbs(), Delay: 100, ReadEnv: 1, WriteEnv: 1})
	}
	return g
}

func portfolioChain(rng *rand.Rand, n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("chain%d", n))
	ps := portfolioSizes{rng}
	delays := [3]float64{80, 100, 120}
	for i := 0; i < n; i++ {
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: ps.clbs(), Delay: delays[rng.Intn(3)], ReadEnv: 1, WriteEnv: 1})
	}
	for i := 0; i+1 < n; i += 3 {
		g.MustAddEdge(fmt.Sprintf("t%02d", i), fmt.Sprintf("t%02d", i+1), 1)
		if i+2 < n {
			g.MustAddEdge(fmt.Sprintf("t%02d", i+1), fmt.Sprintf("t%02d", i+2), 1)
		}
	}
	return g
}

func portfolioFIR(channels int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("fir%d", channels))
	for c := 0; c < channels; c++ {
		fn, dn, en := fmt.Sprintf("fir%d", c), fmt.Sprintf("dec%d", c), fmt.Sprintf("eng%d", c)
		g.MustAddTask(dfg.Task{Name: fn, Type: "fir", Resources: 140, Delay: 1140, ReadEnv: 4})
		g.MustAddTask(dfg.Task{Name: dn, Type: "dec", Resources: 100, Delay: 420})
		g.MustAddTask(dfg.Task{Name: en, Type: "eng", Resources: 110, Delay: 800, WriteEnv: 1})
		g.MustAddEdge(fn, dn, 4)
		g.MustAddEdge(dn, en, 2)
	}
	return g
}

// PortfolioInstance is one manifest row of the committed hard-instance
// corpus: the fixture file, its board parameters, the solver knobs it is
// run under, and the pinned expectations. This is the single schema every
// consumer decodes — the portfolio tests, the root-package pack
// benchmarks, and the regeneration command — so a new manifest knob can
// never be honoured by one of them and silently ignored by another.
type PortfolioInstance struct {
	File       string `json:"file"`
	CLBs       int    `json:"clbs"`
	MemWords   int    `json:"mem_words"`
	ReconfigNS int    `json:"reconfig_ns"`
	MaxNodes   int    `json:"max_nodes"`
	NoSymmetry bool   `json:"no_symmetry"`
	NoWarm     bool   `json:"no_warm_start"`
	Expect     string `json:"expect"` // "solve" or "limit"
	WantN      int    `json:"want_n"`
	MaxBBNodes int    `json:"max_bb_nodes"`
	Quick      bool   `json:"quick"`
	// ExpectProof asserts the infeasibility-proof machinery carried the
	// solve: ConflictCuts or DualBoundFathoms must be nonzero.
	ExpectProof bool   `json:"expect_proof"`
	Note        string `json:"note"`
}

// PortfolioManifest is the committed manifest: the generator seed the
// fixtures are pinned to, plus the instance rows.
type PortfolioManifest struct {
	GenSeed   int64               `json:"gen_seed"`
	Instances []PortfolioInstance `json:"instances"`
}

// LoadPortfolioManifest reads the manifest from the portfolio directory.
func LoadPortfolioManifest(dir string) (*PortfolioManifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m PortfolioManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("portfolio manifest: %w", err)
	}
	return &m, nil
}

// PortfolioGraphs regenerates the hard-instance corpus for a pinned seed,
// in committed-file order. One RNG is consumed sequentially, so the output
// is a pure function of the seed.
func PortfolioGraphs(seed int64) []*dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	return []*dfg.Graph{
		portfolioPack(rng, 12), portfolioPack(rng, 15), portfolioPack(rng, 18),
		portfolioChain(rng, 9), portfolioChain(rng, 10), portfolioChain(rng, 11),
		portfolioFIR(6), portfolioFIR(8),
	}
}

package tempart

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/ilp"
)

// naiveReach computes path existence u ⤳ v by plain DFS on the graph,
// independent of the presolve's bitsets.
func naiveReach(g *dfg.Graph) [][]bool {
	n := g.NumTasks()
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = make([]bool, n)
		stack := []int{u}
		seen := make([]bool, n)
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Succs(t) {
				if !seen[v] {
					seen[v] = true
					reach[u][v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return reach
}

// naiveColumnCheck verifies a priced column against first-principles
// definitions: in-range distinct items, per-dimension area, DAG convexity
// (no excluded task on a path between two members), and the cost equal to
// the longest delay-weighted chain found by exhaustive subset enumeration.
func naiveColumnCheck(t *testing.T, g *dfg.Graph, b arch.Board, col ilp.BPColumn) {
	t.Helper()
	n := g.NumTasks()
	reach := naiveReach(g)
	in := make([]bool, n)
	area := 0
	extra := map[string]int{}
	for _, it := range col.Items {
		if it < 0 || it >= n || in[it] {
			t.Fatalf("column %v: bad or duplicate item %d", col.Items, it)
		}
		in[it] = true
		area += g.Task(it).Resources
		for kind, d := range g.Task(it).Extra {
			extra[kind] += d
		}
	}
	if area > b.FPGA.CLBs {
		t.Fatalf("column %v: area %d > %d", col.Items, area, b.FPGA.CLBs)
	}
	for kind, used := range extra {
		if cap, capped := b.FPGA.ExtraCapacity[kind]; capped && used > cap {
			t.Fatalf("column %v: %s %d > %d", col.Items, kind, used, cap)
		}
	}
	for _, u := range col.Items {
		for _, v := range col.Items {
			for w := 0; w < n; w++ {
				if !in[w] && reach[u][w] && reach[w][v] {
					t.Fatalf("column %v: not convex (%d ⤳ %d ⤳ %d with %d outside)",
						col.Items, u, w, v, w)
				}
			}
		}
	}
	// Longest delay-weighted chain by exhaustive subset enumeration: a
	// chain is a subset whose members are pairwise comparable under ⤳.
	best := 0.0
	k := len(col.Items)
	for mask := 1; mask < 1<<k; mask++ {
		var sub []int
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, col.Items[i])
			}
		}
		chain := true
		for i := 0; i < len(sub) && chain; i++ {
			for j := i + 1; j < len(sub); j++ {
				if !reach[sub[i]][sub[j]] && !reach[sub[j]][sub[i]] {
					chain = false
					break
				}
			}
		}
		if !chain {
			continue
		}
		d := 0.0
		for _, u := range sub {
			d += g.Task(u).Delay
		}
		if d > best {
			best = d
		}
	}
	if math.Abs(col.Cost-best) > 1e-9 {
		t.Fatalf("column %v: cost %v, want longest chain %v", col.Items, col.Cost, best)
	}
}

// TestPatternPricerColumnsFeasible is the ISSUE's first property test:
// every column the pricing DFS emits is a feasible partition content —
// checked against brute-force definitions on random DAGs, with and without
// Ryan–Foster constraints in force.
func TestPatternPricerColumnsFeasible(t *testing.T) {
	b := board(100, 100000, 10)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		n := g.NumTasks()
		pre := newPresolve(g, b)
		pp := newPatternPricer(pre, false)
		// Duals generous enough that every feasible pattern prices negative:
		// λ_t = D(t) + Σ D — each single inclusion already beats any chain.
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += g.Task(i).Delay
		}
		lambda := make([]float64, n)
		for i := 0; i < n; i++ {
			lambda[i] = g.Task(i).Delay + sum + 1
		}
		var same, differ [][2]int
		if n >= 2 && rng.Intn(2) == 0 {
			a, c := rng.Intn(n), rng.Intn(n)
			if a != c {
				if rng.Intn(2) == 0 {
					same = append(same, [2]int{a, c})
				} else {
					differ = append(differ, [2]int{a, c})
				}
			}
		}
		cols, inexact := pp.price(lambda, 0, same, differ, nil)
		if inexact {
			t.Errorf("seed %d: pricing inexact on a %d-task graph", seed, n)
			return false
		}
		if len(cols) == 0 {
			t.Errorf("seed %d: no columns under maximal duals", seed)
			return false
		}
		for _, col := range cols {
			naiveColumnCheck(t, g, b, col)
			if !pp.patternFeasible(col.Items) {
				t.Errorf("seed %d: pricer emitted %v but patternFeasible rejects it", seed, col.Items)
				return false
			}
			inCol := make(map[int]bool, len(col.Items))
			for _, it := range col.Items {
				inCol[it] = true
			}
			for _, ab := range same {
				if inCol[ab[0]] != inCol[ab[1]] {
					t.Errorf("seed %d: column %v splits same-pair %v", seed, col.Items, ab)
					return false
				}
			}
			for _, ab := range differ {
				if inCol[ab[0]] && inCol[ab[1]] {
					t.Errorf("seed %d: column %v joins differ-pair %v", seed, col.Items, ab)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternRootBoundDominatesPackingNeed is the ISSUE's second property
// test: the unit-cost pattern master's converged root bound dominates the
// presolve's combinatorial packing floor on the whole committed portfolio
// (the set-partitioning LP bound subsumes area ratios and dual-feasible-
// function bounds, and convexity only shrinks the pattern set further).
func TestPatternRootBoundDominatesPackingNeed(t *testing.T) {
	if testing.Short() {
		t.Skip("deep unit-cost pricing probes; skipped under -short (the race lane)")
	}
	entries := loadPortfolio(t)
	type inst struct {
		name  string
		g     *dfg.Graph
		board arch.Board
	}
	var insts []inst
	for _, e := range entries {
		insts = append(insts, inst{e.File, e.graph, e.board})
	}
	hard := hardInput(24)
	insts = append(insts, inst{"hard2638", hard.Graph, hard.Board})
	for _, is := range insts {
		bound, trusted := patternPackBound(is.g, is.board)
		if !trusted {
			t.Errorf("%s: pattern root bound did not converge", is.name)
			continue
		}
		need := newPresolve(is.g, is.board).packingNeed()
		if got := int(math.Ceil(bound - 1e-6)); got < need {
			t.Errorf("%s: pattern bound ⌈%v⌉ = %d below combinatorial packing need %d",
				is.name, bound, got, need)
		}
	}
}

// TestPatternFormulationEquivalence pins the tentpole's correctness claim:
// on random DAGs both formulations prove the same minimum N and the same
// optimal latency.
func TestPatternFormulationEquivalence(t *testing.T) {
	b := board(100, 100000, 10)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		rows, err := Solve(Input{Graph: g, Board: b, Formulation: FormulationRows})
		if err != nil {
			t.Errorf("seed %d rows: %v", seed, err)
			return false
		}
		pats, err := Solve(Input{Graph: g, Board: b, Formulation: FormulationPatterns})
		if err != nil {
			t.Errorf("seed %d patterns: %v", seed, err)
			return false
		}
		if !rows.Optimal || !pats.Optimal {
			t.Errorf("seed %d: optimality rows=%v patterns=%v", seed, rows.Optimal, pats.Optimal)
			return false
		}
		if rows.N != pats.N || math.Abs(rows.Latency-pats.Latency) > 1e-6 {
			t.Errorf("seed %d: rows N=%d lat=%v, patterns N=%d lat=%v",
				seed, rows.N, rows.Latency, pats.N, pats.Latency)
			return false
		}
		if err := CheckFeasible(g, b, pats.Assign, pats.N); err != nil {
			t.Errorf("seed %d: pattern assignment infeasible: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternMixedCardinality2638 is the headline acceptance test: the
// 24-task 26/38 mixed-cardinality instance, which the row formulation
// cannot finish inside hundreds of thousands of nodes, solves to a proven
// optimum within a 200-node budget under branch-and-price — the
// set-partitioning bound is exactly 9, so the N=8 probe dies at its root
// and N=9 closes at the integral LP optimum.
func TestPatternMixedCardinality2638(t *testing.T) {
	in := hardInput(24)
	in.Formulation = FormulationPatterns
	in.ILP.MaxNodes = 200
	part, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if part.N != 9 {
		t.Fatalf("N = %d, want 9", part.N)
	}
	if !part.Optimal || !part.BoundTrusted {
		t.Fatalf("want proven optimum, got Optimal=%v BoundTrusted=%v", part.Optimal, part.BoundTrusted)
	}
	wantLat := 9*in.Board.FPGA.ReconfigTime + 900
	if math.Abs(part.Latency-wantLat) > 1e-6 {
		t.Fatalf("latency %v, want %v (Σd = 900)", part.Latency, wantLat)
	}
	if part.Stats.Nodes > 200 {
		t.Fatalf("branch-and-price used %d nodes, budget 200", part.Stats.Nodes)
	}
	if part.Stats.ColumnsGenerated == 0 || part.Stats.PricingRounds == 0 {
		t.Fatalf("column generation idle: %d cols / %d rounds",
			part.Stats.ColumnsGenerated, part.Stats.PricingRounds)
	}
	if err := CheckFeasible(in.Graph, in.Board, part.Assign, part.N); err != nil {
		t.Fatal(err)
	}
}

// TestPatternFormulationFallsBackToRows: an instance whose worst-case
// boundary traffic exceeds the on-board memory must take the row path even
// when patterns are requested (the pattern master has no Eq. 3 rows), and
// still solve correctly.
func TestPatternFormulationFallsBackToRows(t *testing.T) {
	g := dfg.New("mem")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60, Delay: 100})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60, Delay: 100})
	g.MustAddEdge("a", "b", 200) // 200 words > 100-word memory
	b := board(100, 100, 0)
	if patternsApplicable(g, b) {
		t.Fatal("patternsApplicable should reject 200 words > 100")
	}
	part, err := Solve(Input{Graph: g, Board: b, Formulation: FormulationPatterns})
	if err == nil {
		// The row model enforces Eq. 3; with 200 words crossing any
		// boundary no 2-partition split is feasible, and 1 partition
		// overflows area — so this instance has no solution at all.
		t.Fatalf("expected infeasibility through the row path, got %+v", part)
	}
}

// TestPatternChainBlocks102 proves the tentpole's scale claim: a 102-task
// chain-of-blocks instance solves to a proven optimum under branch-and-
// price within a small node budget, while the row formulation — over five
// thousand binaries at N=51 — exhausts the same class of budget without a
// proof (the committed portfolio pins the row-side limit; here we pin the
// pattern-side solve).
func TestPatternChainBlocks102(t *testing.T) {
	if testing.Short() {
		t.Skip("102-task instance under -short")
	}
	g := portfolioChainBlocks(34)
	b := board(100, 100000, 100)
	in := Input{
		Graph:       g,
		Board:       b,
		Formulation: FormulationPatterns,
		// The area floor is only ⌈3570/100⌉ = 36; the packing need 51 prunes
		// the 36..50 probes, but the relax cap must reach 51.
		MaxPartitions: 60,
		ILP:           ilp.Options{MaxNodes: 500},
	}
	part, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if part.N != 51 {
		t.Fatalf("N = %d, want 51", part.N)
	}
	if !part.Optimal || !part.BoundTrusted {
		t.Fatalf("want proven optimum, got Optimal=%v BoundTrusted=%v (gap %v)",
			part.Optimal, part.BoundTrusted, part.Gap)
	}
	// Optimum: same-class same-layer block matching, Σd = Σ D(t)/2 =
	// (16·(60+61+62) + 18·(100+101+102)) / 2 = 4191.
	wantLat := 51*b.FPGA.ReconfigTime + 4191
	if math.Abs(part.Latency-wantLat) > 1e-6 {
		t.Fatalf("latency %v, want %v (Σd = 4191)", part.Latency, wantLat)
	}
	if err := CheckFeasible(g, b, part.Assign, part.N); err != nil {
		t.Fatal(err)
	}
}

package tempart

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// fullPoint completes an integral assignment into a full model variable
// vector: one-hot y, the implied w crossings, and the evaluated (minimal
// feasible) partition delays. Cuts must hold for every such point.
func fullPoint(g *dfg.Graph, m *tpModel, N int, assign []int, paths [][]int) []float64 {
	x := make([]float64, m.nVars)
	for t, p := range assign {
		x[m.yv(t, p)] = 1
	}
	if m.needMem {
		for ei, e := range g.Edges() {
			for b := 0; b < N-1; b++ {
				if assign[e.From] <= b && assign[e.To] > b {
					x[m.wv(b, ei)] = 1
				}
			}
		}
	}
	for p, d := range EvaluateDelays(g, assign, N, paths) {
		x[m.dv(p)] = d
	}
	return x
}

// cutSatisfied checks a modelCut at x.
func cutSatisfied(c *modelCut, x []float64) bool {
	return c.Satisfied(x, 1e-6)
}

// forEachFeasible enumerates every feasible assignment of g at N.
func forEachFeasible(g *dfg.Graph, b arch.Board, N int, fn func(assign []int)) {
	nT := g.NumTasks()
	assign := make([]int, nT)
	var rec func(i int)
	rec = func(i int) {
		if i == nT {
			if CheckFeasible(g, b, assign, N) == nil {
				fn(assign)
			}
			return
		}
		for p := 0; p < N; p++ {
			assign[i] = p
			rec(i + 1)
		}
	}
	rec(0)
}

// randomFractionalPoint builds a model point with per-task partition
// weights summing to 1 (uniqueness-feasible, order-oblivious) and random
// delays — the kind of input the separators see mid-search. Separators
// must produce valid cuts for ANY input point: the point only guides cut
// selection, never validity.
func randomFractionalPoint(rng *rand.Rand, g *dfg.Graph, m *tpModel, N int) []float64 {
	x := make([]float64, m.nVars)
	for t := 0; t < g.NumTasks(); t++ {
		sum := 0.0
		w := make([]float64, N)
		for p := 0; p < N; p++ {
			w[p] = rng.Float64()
			sum += w[p]
		}
		for p := 0; p < N; p++ {
			x[m.yv(t, p)] = w[p] / sum
		}
	}
	maxD := 0.0
	for t := 0; t < g.NumTasks(); t++ {
		maxD += g.Task(t).Delay
	}
	for p := 0; p < N; p++ {
		x[m.dv(p)] = rng.Float64() * maxD / 2
	}
	return x
}

// TestCutsNeverExcludeFeasibleSolutions is the cut-validity property test:
// every cut the presolve (root cuts) or any separator family generates is
// satisfied by every integral feasible solution of the instance, verified
// by brute-force enumeration on random small DAGs. A violation here means
// the search could prune the true optimum.
func TestCutsNeverExcludeFeasibleSolutions(t *testing.T) {
	if testing.Short() {
		t.Skip("sequential brute-force enumeration; skipped under -short (the race lane)")
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(seed, 5+rng.Intn(2))
		b := board(100, 1024, 1000)
		if seed%3 == 0 {
			b = board(100, 8, 1000) // small memory: exercise the w layout
		}
		paths, err := g.Paths(0)
		if err != nil {
			continue
		}
		pre := newPresolve(g, b)
		n0 := MinPartitions(g, b)
		if n0 == 0 {
			continue
		}
		for N := n0; N <= n0+2 && N <= 4; N++ {
			m := buildModel(Input{Graph: g, Board: b}, pre, paths, N, true)
			sep := newSeparator(pre, g, N, m.yv, m.dv, paths)

			// Gather cuts: the build-time root cuts, plus separator output
			// on several fractional points (random ones and the LP
			// relaxation optimum).
			var cuts []modelCut
			cuts = append(cuts, rootCuts(pre, N, m.yv, m.dv, true)...)
			points := make([][]float64, 0, 5)
			for i := 0; i < 3; i++ {
				points = append(points, randomFractionalPoint(rng, g, m, N))
			}
			if sol, err := lp.Solve(m.prob); err == nil && sol.Status == lp.Optimal {
				points = append(points, sol.X)
			}
			for _, x := range points {
				for _, ic := range sep.separate(&ilp.SeparationPoint{X: x, Bounds: m.prob.Bounds}) {
					cuts = append(cuts, modelCut{name: ic.Name, CutRow: ic.CutRow})
				}
			}
			if len(cuts) == 0 {
				continue
			}
			forEachFeasible(g, b, N, func(assign []int) {
				x := fullPoint(g, m, N, assign, paths)
				for ci := range cuts {
					if !cutSatisfied(&cuts[ci], x) {
						t.Fatalf("seed %d N=%d: cut %q (rhs=%g) violated by feasible assignment %v (lhs=%g)",
							seed, N, cuts[ci].name, cuts[ci].RHS, assign, cuts[ci].Eval(x))
					}
				}
			})
		}
	}
}

// TestCutsPreserveOptimum: branch-and-cut and the plain search must reach
// identical optima (N, latency, optimality) on random instances, the
// interchangeable-clone fixtures, and the multi-resource fixture, with
// both 1 and 4 workers.
func TestCutsPreserveOptimum(t *testing.T) {
	type fixture struct {
		name  string
		g     *dfg.Graph
		board arch.Board
	}
	var fixtures []fixture
	for seed := int64(0); seed < 10; seed++ {
		fixtures = append(fixtures,
			fixture{fmt.Sprintf("rand%d", seed), randomDAG(seed, 7), board(100, 1024, 1000)},
			fixture{fmt.Sprintf("clone%d", seed), cloneGraph(seed), board(100, 1024, 1000)},
		)
	}
	mrg := dfg.New("mr")
	for i := 0; i < 5; i++ {
		mrg.MustAddTask(dfg.Task{
			Name: string(rune('a' + i)), Type: "M", Resources: 100, Delay: 10,
			Extra: map[string]int{"BRAM": 2},
		})
	}
	fixtures = append(fixtures, fixture{"multires", mrg, multiResBoard()})

	for _, fx := range fixtures {
		plain, err := Solve(Input{Graph: fx.g, Board: fx.board, NoCuts: true})
		if err != nil {
			t.Fatalf("%s (nocuts): %v", fx.name, err)
		}
		for _, workers := range []int{0, 4} {
			in := Input{Graph: fx.g, Board: fx.board}
			in.ILP.Workers = workers
			cut, err := Solve(in)
			if err != nil {
				t.Fatalf("%s (cuts, workers=%d): %v", fx.name, workers, err)
			}
			if cut.N != plain.N || math.Abs(cut.Latency-plain.Latency) > 1e-6 {
				t.Errorf("%s workers=%d: cut search N=%d lat=%g, plain N=%d lat=%g",
					fx.name, workers, cut.N, cut.Latency, plain.N, plain.Latency)
			}
			if cut.Optimal != plain.Optimal {
				t.Errorf("%s workers=%d: optimality cut=%v plain=%v", fx.name, workers, cut.Optimal, plain.Optimal)
			}
			if err := CheckFeasible(fx.g, fx.board, cut.Assign, cut.N); err != nil {
				t.Errorf("%s workers=%d: cut-search assignment infeasible: %v", fx.name, workers, err)
			}
		}
	}
}

// firBankGraph is the FIR-bank-shaped instance of the headline bench with
// the synthesis estimates pinned as constants (8 channels of
// fir -> dec -> eng; 2800 CLBs total on a 1600-CLB board, so N=2 with the
// decimators forced to split across the boundary).
func firBankGraph(channels int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("firbank%d", channels))
	for c := 0; c < channels; c++ {
		fn := fmt.Sprintf("fir%d", c)
		dn := fmt.Sprintf("dec%d", c)
		en := fmt.Sprintf("eng%d", c)
		g.MustAddTask(dfg.Task{Name: fn, Type: "fir", Resources: 140, Delay: 1140, ReadEnv: 4})
		g.MustAddTask(dfg.Task{Name: dn, Type: "dec", Resources: 100, Delay: 420})
		g.MustAddTask(dfg.Task{Name: en, Type: "eng", Resources: 110, Delay: 800, WriteEnv: 1})
		g.MustAddEdge(fn, dn, 4)
		g.MustAddEdge(dn, en, 2)
	}
	return g
}

// TestBoundaryCutsCloseFIRBankRoot pins the headline win of the cut
// engine: the boundary chain-area cuts lift the N=2 root bound of the
// FIR bank to the integer optimum (critical path 2360 < optimum 2780),
// so the search that took 38 nodes closes at the root, with the optimum
// unchanged.
func TestBoundaryCutsCloseFIRBankRoot(t *testing.T) {
	g := firBankGraph(8)
	b := board(1600, 64*1024, 1e8)
	p, err := Solve(Input{Graph: g, Board: b})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 2 || !p.Optimal {
		t.Fatalf("N=%d optimal=%v, want 2/true", p.N, p.Optimal)
	}
	sumD := p.Latency - float64(p.N)*b.FPGA.ReconfigTime
	if math.Abs(sumD-2780) > 1e-6 {
		t.Fatalf("optimal Σd = %g, want 2780 (1140+420 | 420+800)", sumD)
	}
	if p.Stats.Nodes > 2 {
		t.Errorf("FIR bank explored %d nodes; boundary cuts should close the root (PR 3 baseline: 38)", p.Stats.Nodes)
	}
	// The ablation without boundary/aggregate root cuts must agree on the
	// optimum (they are valid inequalities, not model changes).
	pre := newPresolve(g, b)
	paths, err := g.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	m := buildModel(Input{Graph: g, Board: b}, pre, paths, 2, false)
	sol, err := ilp.Solve(m.ilp, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != ilp.Optimal || math.Abs(sol.Obj-2780) > 1e-6 {
		t.Fatalf("raw model optimum %v/%g, want optimal/2780", sol.Status, sol.Obj)
	}
}

// TestBoundaryChainFloorSound brute-forces the boundary chain-area floors:
// for every feasible assignment, the prefix/suffix delay sums must reach
// the claimed floors.
func TestBoundaryChainFloorSound(t *testing.T) {
	if testing.Short() {
		t.Skip("sequential brute-force enumeration; skipped under -short (the race lane)")
	}
	for seed := int64(0); seed < 30; seed++ {
		g := randomDAG(seed, 6)
		b := board(100, 1024, 1000)
		paths, err := g.Paths(0)
		if err != nil {
			continue
		}
		pre := newPresolve(g, b)
		n0 := MinPartitions(g, b)
		for N := n0; N <= n0+1 && N >= 2; N++ {
			for p := 1; p < N; p++ {
				preFloor := pre.boundaryChainFloor(N, p, false)
				sufFloor := pre.boundaryChainFloor(N, p, true)
				forEachFeasible(g, b, N, func(assign []int) {
					d := EvaluateDelays(g, assign, N, paths)
					preSum, sufSum := 0.0, 0.0
					for q := 0; q < N; q++ {
						if q < p {
							preSum += d[q]
						} else {
							sufSum += d[q]
						}
					}
					if preSum < preFloor-1e-6 || sufSum < sufFloor-1e-6 {
						t.Fatalf("seed %d N=%d p=%d: floors (%g,%g) exceed feasible sums (%g,%g) for %v",
							seed, N, p, preFloor, sufFloor, preSum, sufSum, assign)
					}
				})
			}
		}
	}
}

package tempart

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/dfg"
)

func board(clbs, memWords int, ct float64) arch.Board {
	b := arch.SmallTestBoard()
	b.FPGA.CLBs = clbs
	b.Memory.Words = memWords
	b.FPGA.ReconfigTime = ct
	return b
}

func TestMinPartitions(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 50})
	b := board(100, 1024, 0)
	if n := MinPartitions(g, b); n != 2 {
		t.Errorf("MinPartitions = %d, want 2", n)
	}
	if n := MinPartitions(dfg.New("empty"), b); n != 0 {
		t.Errorf("MinPartitions(empty) = %d, want 0", n)
	}
}

func TestSingleTask(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 10, Delay: 100})
	p, err := Solve(Input{Graph: g, Board: board(100, 1024, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 1 || p.Assign[0] != 0 {
		t.Errorf("N=%d assign=%v, want single partition", p.N, p.Assign)
	}
	if p.Latency != 1000+100 {
		t.Errorf("latency = %g, want 1100", p.Latency)
	}
	if !p.Optimal {
		t.Error("trivial instance not proven optimal")
	}
}

func TestTaskTooLarge(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 200, Delay: 10})
	_, err := Solve(Input{Graph: g, Board: board(100, 1024, 0)})
	if !errors.Is(err, ErrTaskTooLarge) {
		t.Errorf("err = %v, want ErrTaskTooLarge", err)
	}
}

func TestTwoPartitionsForcedByResources(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 80, Delay: 100})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 80, Delay: 200})
	g.MustAddEdge("a", "b", 4)
	p, err := Solve(Input{Graph: g, Board: board(100, 1024, 500)})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 2 {
		t.Fatalf("N = %d, want 2", p.N)
	}
	if p.Assign[0] != 0 || p.Assign[1] != 1 {
		t.Errorf("assign = %v, want [0 1] (temporal order)", p.Assign)
	}
	if p.Latency != 2*500+100+200 {
		t.Errorf("latency = %g, want 1300", p.Latency)
	}
}

// TestFig4DelayModel reproduces the paper's Fig. 4: partition delay is the
// maximum in-partition path delay (350/400/150 -> 400 ns; second partition
// 300 ns).
func TestFig4DelayModel(t *testing.T) {
	g := dfg.New("fig4")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 1, Delay: 100})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 1, Delay: 250})
	g.MustAddTask(dfg.Task{Name: "c", Resources: 1, Delay: 400})
	g.MustAddTask(dfg.Task{Name: "d", Resources: 1, Delay: 150})
	g.MustAddTask(dfg.Task{Name: "e", Resources: 1, Delay: 300})
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("b", "e", 1)
	g.MustAddEdge("c", "e", 1)
	g.MustAddEdge("d", "e", 1)
	paths, err := g.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	assign := []int{0, 0, 0, 0, 1} // a,b,c,d in partition 1; e in partition 2
	d := EvaluateDelays(g, assign, 2, paths)
	if d[0] != 400 {
		t.Errorf("d_1 = %g, want 400 (max of 350, 400, 150)", d[0])
	}
	if d[1] != 300 {
		t.Errorf("d_2 = %g, want 300", d[1])
	}
}

func TestMemoryConstraintForcesPlacement(t *testing.T) {
	// a -> b with 10 words, a -> c with 1 word; capacity fits only one of
	// {b,c} with a. With memory 5 words, the cut a|{b,c} (11 words) and
	// any cut separating a from b (10 words) are infeasible; only cutting
	// the a->c edge (1 word) works, so b must join a's partition.
	g := dfg.New("mem")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 50, Delay: 10})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 50, Delay: 10})
	g.MustAddTask(dfg.Task{Name: "c", Resources: 60, Delay: 10})
	g.MustAddEdge("a", "b", 10)
	g.MustAddEdge("a", "c", 1)
	p, err := Solve(Input{Graph: g, Board: board(100, 5, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Assign[0] != p.Assign[1] {
		t.Errorf("assign = %v: a and b split across a 10-word edge with 5-word memory", p.Assign)
	}
	if p.Assign[2] == p.Assign[0] {
		t.Errorf("assign = %v: c cannot share a partition with a+b (110 CLBs)", p.Assign)
	}
	if err := CheckFeasible(g, board(100, 5, 100), p.Assign, p.N); err != nil {
		t.Error(err)
	}
}

func TestChainOptimalLatency(t *testing.T) {
	// Chain of 4 equal tasks (30 CLBs, 100 ns), FPGA 100 CLBs, CT 1 us.
	// Lower bound N0 = ceil(120/100) = 2; feasible at 2 (3+1 or 2+2).
	// Latency = 2 us + 400 ns regardless of the split; check optimum.
	g := dfg.New("chain")
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		g.MustAddTask(dfg.Task{Name: n, Resources: 30, Delay: 100})
	}
	for i := 0; i+1 < len(names); i++ {
		g.MustAddEdge(names[i], names[i+1], 1)
	}
	b := board(100, 1024, 1000)
	p, err := Solve(Input{Graph: g, Board: b})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 2 {
		t.Fatalf("N = %d, want 2", p.N)
	}
	if p.Latency != 2*1000+400 {
		t.Errorf("latency = %g, want 2400", p.Latency)
	}
	if err := CheckFeasible(g, b, p.Assign, p.N); err != nil {
		t.Error(err)
	}
}

// TestILPBeatsOrMatchesGreedyEverywhere: the ILP latency is never worse
// than the greedy warm start (with and without symmetry breaking).
func TestILPNotWorseThanGreedy(t *testing.T) {
	g := parallelPairsGraph()
	b := board(100, 1024, 500)
	for _, noSym := range []bool{true, false} {
		p, err := Solve(Input{Graph: g, Board: b, NoSymmetryBreaking: noSym})
		if err != nil {
			t.Fatalf("noSym=%v: %v", noSym, err)
		}
		ga, gn := greedyAssign(g, b, false)
		paths, _ := g.Paths(0)
		gd := EvaluateDelays(g, ga, gn, paths)
		gl := Latency(b, gd)
		if gn == p.N && p.Latency > gl+1e-9 {
			t.Errorf("noSym=%v: ILP latency %g worse than greedy %g", noSym, p.Latency, gl)
		}
	}
}

// parallelPairsGraph builds the structure where greedy list packing is
// suboptimal: fast tasks and slow tasks mixed in one partition extend its
// critical path (the paper's T1/T2 effect, in miniature).
func parallelPairsGraph() *dfg.Graph {
	g := dfg.New("pairs")
	// 4 fast producers (40 CLBs, 100 ns) -> 4 slow consumers (40 CLBs, 400 ns).
	for i := 0; i < 4; i++ {
		g.MustAddTask(dfg.Task{Name: fast(i), Type: "F", Resources: 40, Delay: 100})
	}
	for i := 0; i < 4; i++ {
		g.MustAddTask(dfg.Task{Name: slow(i), Type: "S", Resources: 40, Delay: 400})
		g.MustAddEdge(fast(i), slow(i), 1)
	}
	return g
}

func fast(i int) string { return string(rune('a' + i)) }
func slow(i int) string { return string(rune('w' + i)) }

// TestBruteForceOptimality compares the ILP against exhaustive enumeration
// on random small graphs: at the minimum feasible N, the ILP latency must
// equal the brute-force optimum.
func TestBruteForceOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		b := board(100, 50, 1000)
		p, err := Solve(Input{Graph: g, Board: b, MaxPartitions: 4})
		paths, perr := g.Paths(0)
		if perr != nil {
			return false
		}
		bestN, bestLat := bruteForce(g, b, paths, 4)
		if err != nil {
			return bestN == 0 // solver failed iff brute force found nothing
		}
		if bestN == 0 {
			return false
		}
		if p.N != bestN {
			return false
		}
		if err := CheckFeasible(g, b, p.Assign, p.N); err != nil {
			return false
		}
		return math.Abs(p.Latency-bestLat) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomGraph(rng *rand.Rand) *dfg.Graph {
	g := dfg.New("rand")
	n := 3 + rng.Intn(4)
	for i := 0; i < n; i++ {
		g.MustAddTask(dfg.Task{
			Name:      string(rune('a' + i)),
			Resources: 20 + rng.Intn(60),
			Delay:     float64(50 * (1 + rng.Intn(6))),
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				_ = g.AddEdgeByID(i, j, 1+rng.Intn(20))
			}
		}
	}
	return g
}

// bruteForce finds the minimum feasible N (up to maxN) and the optimal
// latency at that N by enumerating every assignment.
func bruteForce(g *dfg.Graph, b arch.Board, paths [][]int, maxN int) (int, float64) {
	nT := g.NumTasks()
	for N := MinPartitions(g, b); N <= maxN; N++ {
		if N == 0 {
			return 0, 0
		}
		best := math.Inf(1)
		assign := make([]int, nT)
		var rec func(i int)
		rec = func(i int) {
			if i == nT {
				if CheckFeasible(g, b, assign, N) == nil {
					d := EvaluateDelays(g, assign, N, paths)
					if l := Latency(b, d); l < best {
						best = l
					}
				}
				return
			}
			for p := 0; p < N; p++ {
				assign[i] = p
				rec(i + 1)
			}
		}
		rec(0)
		if !math.IsInf(best, 1) {
			return N, best
		}
	}
	return 0, 0
}

func TestCheckFeasibleRejectsBadAssignments(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60, Delay: 10})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60, Delay: 10})
	g.MustAddEdge("a", "b", 200)
	b := board(100, 100, 0)
	if err := CheckFeasible(g, b, []int{0, 0}, 1); err == nil {
		t.Error("resource violation accepted")
	}
	if err := CheckFeasible(g, b, []int{1, 0}, 2); err == nil {
		t.Error("temporal order violation accepted")
	}
	if err := CheckFeasible(g, b, []int{0, 1}, 2); err == nil {
		t.Error("memory violation accepted (200 words > 100)")
	}
	if err := CheckFeasible(g, b, []int{0}, 1); err == nil {
		t.Error("short assignment accepted")
	}
	if err := CheckFeasible(g, b, []int{0, 5}, 2); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	p, err := Solve(Input{Graph: dfg.New("empty"), Board: board(100, 100, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 0 {
		t.Errorf("N = %d, want 0", p.N)
	}
}

package tempart

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/lp"
)

// TestCriticalPathNeverExceedsLPBound is presolve property (a): on random
// DAGs, the combinatorial latency bound (N·CT + critical path) never
// exceeds the true LP relaxation bound (N·CT + LP optimum of the raw model
// without the presolve cut), at every N the relax loop could probe. This is
// what makes the critical path safe to use for fathoming before the LP has
// run: it can only under-claim.
func TestCriticalPathNeverExceedsLPBound(t *testing.T) {
	b := board(100, 1024, 1000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		if g.Validate() != nil {
			return true
		}
		paths, err := g.Paths(0)
		if err != nil {
			return true
		}
		pre := newPresolve(g, b)
		n0 := MinPartitions(g, b)
		if n0 == 0 {
			return true
		}
		for n := n0; n <= n0+2; n++ {
			m := buildModel(Input{Graph: g, Board: b}, pre, paths, n, false)
			sol, err := lp.Solve(m.prob)
			if err != nil || sol.Status != lp.Optimal {
				continue // infeasible/degenerate relaxations prove nothing here
			}
			if pre.critical > sol.Obj+1e-6 {
				t.Logf("seed %d N=%d: critical path %g exceeds LP bound %g", seed, n, pre.critical, sol.Obj)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPresolveBoundsNeverExceedIntegerOptimum pins the soundness property
// the LP-free fathoming actually relies on: every bound the presolve can
// hand to ilp.Options.NodeBound — critical path, layer-cake area×delay
// bound, and the root node bound itself — is a valid lower bound on the
// brute-force optimal Σ d_p, and the area-packing bound never exceeds the
// true minimum feasible partition count. (The layer-cake bound uses
// integrality, so it may legitimately exceed the LP bound — that is its
// whole point — but it must never exceed the integer optimum, or the
// search would prune the true solution.)
func TestPresolveBoundsNeverExceedIntegerOptimum(t *testing.T) {
	b := board(100, 50, 1000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		paths, err := g.Paths(0)
		if err != nil {
			return true
		}
		bestN, bestLat := bruteForce(g, b, paths, 4)
		if bestN == 0 {
			return true // infeasible instance
		}
		pre := newPresolve(g, b)
		if n0 := MinPartitions(g, b); n0 > bestN {
			t.Logf("seed %d: MinPartitions %d exceeds true minimum %d", seed, n0, bestN)
			return false
		}
		sumD := bestLat - float64(bestN)*b.FPGA.ReconfigTime
		if pre.critical > sumD+1e-6 {
			t.Logf("seed %d: critical %g exceeds optimal Σd %g", seed, pre.critical, sumD)
			return false
		}
		if pre.areaDelay > sumD+1e-6 {
			t.Logf("seed %d: areaDelay %g exceeds optimal Σd %g", seed, pre.areaDelay, sumD)
			return false
		}
		// Root node bound over the untouched box.
		m := buildModel(Input{Graph: g, Board: b}, pre, paths, bestN, true)
		nb := pre.nodeBoundFunc(bestN, m.yv)
		bnd, feasible := nb(m.prob.Bounds)
		if !feasible {
			t.Logf("seed %d: root box declared infeasible despite optimum N=%d", seed, bestN)
			return false
		}
		if bnd > sumD+1e-6 {
			t.Logf("seed %d: root node bound %g exceeds optimal Σd %g", seed, bnd, sumD)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// cloneGraph builds a random DAG and then clones a few tasks into
// interchangeable groups (same type, costs, and neighbourhoods), so the
// symmetry-breaking rows have something to bite on.
func cloneGraph(seed int64) *dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.New(fmt.Sprintf("clone%d", seed))
	base := 2 + rng.Intn(3)
	for i := 0; i < base; i++ {
		g.MustAddTask(dfg.Task{
			Name:      fmt.Sprintf("b%d", i),
			Resources: 20 + 10*rng.Intn(4),
			Delay:     float64(50 * (1 + rng.Intn(4))),
		})
	}
	// A clone family hanging off task 0: identical costs and neighbours.
	fam := 2 + rng.Intn(3)
	res := 20 + 10*rng.Intn(3)
	delay := float64(50 * (1 + rng.Intn(3)))
	for i := 0; i < fam; i++ {
		id := g.MustAddTask(dfg.Task{
			Name: fmt.Sprintf("c%d", i), Type: "C",
			Resources: res, Delay: delay,
		})
		_ = g.AddEdgeByID(0, id, 1)
	}
	return g
}

// TestSymmetryBreakingPreservesOptimum is presolve property (b): the
// symmetry-broken and unbroken models must reach identical optima (N and
// latency) on the package fixtures and on random graphs with
// interchangeable clone families.
func TestSymmetryBreakingPreservesOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("sequential model-equivalence sweep; skipped under -short (the race lane)")
	}
	type fixture struct {
		name  string
		g     *dfg.Graph
		board arch.Board
	}
	fixtures := []fixture{
		{"pairs", parallelPairsGraph(), board(100, 1024, 500)},
		{"wide-clones", cloneGraph(1), board(100, 1024, 1000)},
	}
	for seed := int64(0); seed < 12; seed++ {
		fixtures = append(fixtures, fixture{
			fmt.Sprintf("clone%d", seed), cloneGraph(seed), board(100, 1024, 1000),
		})
		fixtures = append(fixtures, fixture{
			fmt.Sprintf("rand%d", seed), randomDAG(seed, 7), board(100, 1024, 1000),
		})
	}
	// Multi-resource fixture: BRAM-capped clones.
	mrg := dfg.New("mr")
	for i := 0; i < 5; i++ {
		mrg.MustAddTask(dfg.Task{
			Name: string(rune('a' + i)), Type: "M", Resources: 100, Delay: 10,
			Extra: map[string]int{"BRAM": 2},
		})
	}
	fixtures = append(fixtures, fixture{"multires", mrg, multiResBoard()})

	for _, fx := range fixtures {
		sym, err := Solve(Input{Graph: fx.g, Board: fx.board})
		if err != nil {
			t.Fatalf("%s (sym): %v", fx.name, err)
		}
		nosym, err := Solve(Input{Graph: fx.g, Board: fx.board, NoSymmetryBreaking: true})
		if err != nil {
			t.Fatalf("%s (nosym): %v", fx.name, err)
		}
		if sym.N != nosym.N || math.Abs(sym.Latency-nosym.Latency) > 1e-6 {
			t.Errorf("%s: symmetry-broken N=%d lat=%g, unbroken N=%d lat=%g",
				fx.name, sym.N, sym.Latency, nosym.N, nosym.Latency)
		}
		if !sym.Optimal || !nosym.Optimal {
			t.Errorf("%s: optimality lost (sym=%v nosym=%v)", fx.name, sym.Optimal, nosym.Optimal)
		}
		if err := CheckFeasible(fx.g, fx.board, sym.Assign, sym.N); err != nil {
			t.Errorf("%s: symmetry-broken assignment infeasible: %v", fx.name, err)
		}
	}
}

// TestGreedyClampNeverSkipsTheOptimum: the relax loop's greedy-feasibility
// clamp (dominated-N rejection) must never change the answer. Solve always
// applies the clamp, so the reference is clamp-free by construction: brute
// force over every assignment, which would expose a maxFeasibleN that
// over-claims (clamping maxN below the true minimum feasible N).
func TestGreedyClampNeverSkipsTheOptimum(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := randomDAG(200+seed, 6)
		b := board(100, 1024, 1000)
		paths, err := g.Paths(0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		wantN, wantLat := bruteForce(g, b, paths, 6)
		got, err := Solve(Input{Graph: g, Board: b, MaxPartitions: 6})
		if wantN == 0 {
			if err == nil {
				t.Errorf("seed %d: solver found N=%d where brute force proves infeasibility", seed, got.N)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.N != wantN || math.Abs(got.Latency-wantLat) > 1e-6 {
			t.Errorf("seed %d: clamped solve N=%d lat=%g, brute force N=%d lat=%g",
				seed, got.N, got.Latency, wantN, wantLat)
		}
	}
}

package tempart

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/lp"
)

// TestCriticalPathNeverExceedsLPBound is presolve property (a): on random
// DAGs, the combinatorial latency bound (N·CT + critical path) never
// exceeds the true LP relaxation bound (N·CT + LP optimum of the raw model
// without the presolve cut), at every N the relax loop could probe. This is
// what makes the critical path safe to use for fathoming before the LP has
// run: it can only under-claim.
func TestCriticalPathNeverExceedsLPBound(t *testing.T) {
	b := board(100, 1024, 1000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		if g.Validate() != nil {
			return true
		}
		paths, err := g.Paths(0)
		if err != nil {
			return true
		}
		pre := newPresolve(g, b)
		n0 := MinPartitions(g, b)
		if n0 == 0 {
			return true
		}
		for n := n0; n <= n0+2; n++ {
			m := buildModel(Input{Graph: g, Board: b}, pre, paths, n, false)
			sol, err := lp.Solve(m.prob)
			if err != nil || sol.Status != lp.Optimal {
				continue // infeasible/degenerate relaxations prove nothing here
			}
			if pre.critical > sol.Obj+1e-6 {
				t.Logf("seed %d N=%d: critical path %g exceeds LP bound %g", seed, n, pre.critical, sol.Obj)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPresolveBoundsNeverExceedIntegerOptimum pins the soundness property
// the LP-free fathoming actually relies on: every bound the presolve can
// hand to ilp.Options.NodeBound — critical path, layer-cake area×delay
// bound, and the root node bound itself — is a valid lower bound on the
// brute-force optimal Σ d_p, and the area-packing bound never exceeds the
// true minimum feasible partition count. (The layer-cake bound uses
// integrality, so it may legitimately exceed the LP bound — that is its
// whole point — but it must never exceed the integer optimum, or the
// search would prune the true solution.)
func TestPresolveBoundsNeverExceedIntegerOptimum(t *testing.T) {
	b := board(100, 50, 1000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		paths, err := g.Paths(0)
		if err != nil {
			return true
		}
		bestN, bestLat := bruteForce(g, b, paths, 4)
		if bestN == 0 {
			return true // infeasible instance
		}
		pre := newPresolve(g, b)
		if n0 := MinPartitions(g, b); n0 > bestN {
			t.Logf("seed %d: MinPartitions %d exceeds true minimum %d", seed, n0, bestN)
			return false
		}
		if pn := pre.packingNeed(); pn > bestN {
			t.Logf("seed %d: packing dual bound %d exceeds true minimum %d", seed, pn, bestN)
			return false
		}
		sumD := bestLat - float64(bestN)*b.FPGA.ReconfigTime
		if pre.critical > sumD+1e-6 {
			t.Logf("seed %d: critical %g exceeds optimal Σd %g", seed, pre.critical, sumD)
			return false
		}
		if pre.areaDelay > sumD+1e-6 {
			t.Logf("seed %d: areaDelay %g exceeds optimal Σd %g", seed, pre.areaDelay, sumD)
			return false
		}
		// Root node bound over the untouched box.
		m := buildModel(Input{Graph: g, Board: b}, pre, paths, bestN, true)
		nb := pre.nodeBoundFunc(bestN, m.yv, nil)
		bnd, feasible := nb(m.prob.Bounds)
		if !feasible {
			t.Logf("seed %d: root box declared infeasible despite optimum N=%d", seed, bestN)
			return false
		}
		if bnd > sumD+1e-6 {
			t.Logf("seed %d: root node bound %g exceeds optimal Σd %g", seed, bnd, sumD)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// cloneGraph builds a random DAG and then clones a few tasks into
// interchangeable groups (same type, costs, and neighbourhoods), so the
// symmetry-breaking rows have something to bite on.
func cloneGraph(seed int64) *dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.New(fmt.Sprintf("clone%d", seed))
	base := 2 + rng.Intn(3)
	for i := 0; i < base; i++ {
		g.MustAddTask(dfg.Task{
			Name:      fmt.Sprintf("b%d", i),
			Resources: 20 + 10*rng.Intn(4),
			Delay:     float64(50 * (1 + rng.Intn(4))),
		})
	}
	// A clone family hanging off task 0: identical costs and neighbours.
	fam := 2 + rng.Intn(3)
	res := 20 + 10*rng.Intn(3)
	delay := float64(50 * (1 + rng.Intn(3)))
	for i := 0; i < fam; i++ {
		id := g.MustAddTask(dfg.Task{
			Name: fmt.Sprintf("c%d", i), Type: "C",
			Resources: res, Delay: delay,
		})
		_ = g.AddEdgeByID(0, id, 1)
	}
	return g
}

// TestSymmetryBreakingPreservesOptimum is presolve property (b): the
// symmetry-broken and unbroken models must reach identical optima (N and
// latency) on the package fixtures and on random graphs with
// interchangeable clone families.
func TestSymmetryBreakingPreservesOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("sequential model-equivalence sweep; skipped under -short (the race lane)")
	}
	type fixture struct {
		name  string
		g     *dfg.Graph
		board arch.Board
	}
	fixtures := []fixture{
		{"pairs", parallelPairsGraph(), board(100, 1024, 500)},
		{"wide-clones", cloneGraph(1), board(100, 1024, 1000)},
	}
	for seed := int64(0); seed < 12; seed++ {
		fixtures = append(fixtures, fixture{
			fmt.Sprintf("clone%d", seed), cloneGraph(seed), board(100, 1024, 1000),
		})
		fixtures = append(fixtures, fixture{
			fmt.Sprintf("rand%d", seed), randomDAG(seed, 7), board(100, 1024, 1000),
		})
	}
	// Multi-resource fixture: BRAM-capped clones.
	mrg := dfg.New("mr")
	for i := 0; i < 5; i++ {
		mrg.MustAddTask(dfg.Task{
			Name: string(rune('a' + i)), Type: "M", Resources: 100, Delay: 10,
			Extra: map[string]int{"BRAM": 2},
		})
	}
	fixtures = append(fixtures, fixture{"multires", mrg, multiResBoard()})

	for _, fx := range fixtures {
		sym, err := Solve(Input{Graph: fx.g, Board: fx.board})
		if err != nil {
			t.Fatalf("%s (sym): %v", fx.name, err)
		}
		nosym, err := Solve(Input{Graph: fx.g, Board: fx.board, NoSymmetryBreaking: true})
		if err != nil {
			t.Fatalf("%s (nosym): %v", fx.name, err)
		}
		if sym.N != nosym.N || math.Abs(sym.Latency-nosym.Latency) > 1e-6 {
			t.Errorf("%s: symmetry-broken N=%d lat=%g, unbroken N=%d lat=%g",
				fx.name, sym.N, sym.Latency, nosym.N, nosym.Latency)
		}
		if !sym.Optimal || !nosym.Optimal {
			t.Errorf("%s: optimality lost (sym=%v nosym=%v)", fx.name, sym.Optimal, nosym.Optimal)
		}
		if err := CheckFeasible(fx.g, fx.board, sym.Assign, sym.N); err != nil {
			t.Errorf("%s: symmetry-broken assignment infeasible: %v", fx.name, err)
		}
	}
}

// TestGreedyClampNeverSkipsTheOptimum: the relax loop's greedy-feasibility
// clamp (dominated-N rejection) must never change the answer. Solve always
// applies the clamp, so the reference is clamp-free by construction: brute
// force over every assignment, which would expose a maxFeasibleN that
// over-claims (clamping maxN below the true minimum feasible N).
func TestGreedyClampNeverSkipsTheOptimum(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := randomDAG(200+seed, 6)
		b := board(100, 1024, 1000)
		paths, err := g.Paths(0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		wantN, wantLat := bruteForce(g, b, paths, 6)
		got, err := Solve(Input{Graph: g, Board: b, MaxPartitions: 6})
		if wantN == 0 {
			if err == nil {
				t.Errorf("seed %d: solver found N=%d where brute force proves infeasibility", seed, got.N)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.N != wantN || math.Abs(got.Latency-wantLat) > 1e-6 {
			t.Errorf("seed %d: clamped solve N=%d lat=%g, brute force N=%d lat=%g",
				seed, got.N, got.Latency, wantN, wantLat)
		}
	}
}

// TestPackingNeedNeverExceedsBinOptimum is the L2/cardinality soundness
// property: on random item sets, the bin-packing dual bound packingNeedDim
// never exceeds the true minimum bin count (found by exhaustive search),
// and is never below the area ratio it generalizes. An overclaim here
// would make the relax loop skip a feasible partition count.
func TestPackingNeedNeverExceedsBinOptimum(t *testing.T) {
	minBins := func(items []int, cap int) int {
		for bins := 1; ; bins++ {
			if packingFeasibleExact(items, cap, bins) {
				return bins
			}
		}
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		cap := 50 + rng.Intn(100)
		n := 1 + rng.Intn(8)
		items := make([]int, n)
		area := 0
		for i := range items {
			items[i] = 1 + rng.Intn(cap)
			area += items[i]
		}
		opt := minBins(items, cap)
		need := packingNeedDim(items, cap)
		if need > opt {
			t.Fatalf("trial %d: packingNeedDim(%v, %d) = %d exceeds true minimum %d",
				trial, items, cap, need, opt)
		}
		if areaNeed := (area + cap - 1) / cap; need < areaNeed {
			t.Fatalf("trial %d: packingNeedDim(%v, %d) = %d undercuts the area bound %d",
				trial, items, cap, need, areaNeed)
		}
	}
}

// packingFeasibleExact is an exhaustive (budget-free) bin-packing check
// for the tiny item counts of the property tests.
func packingFeasibleExact(items []int, cap, bins int) bool {
	load := make([]int, bins)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(items) {
			return true
		}
		for b := 0; b < bins; b++ {
			if load[b]+items[i] > cap {
				continue
			}
			load[b] += items[i]
			if rec(i + 1) {
				return true
			}
			load[b] -= items[i]
			if load[b] == 0 {
				break // identical empty bins are symmetric
			}
		}
		return false
	}
	return rec(0)
}

// TestNodeBoundNeverFathomsCompletableBoxes pins the residual-packing
// screen (and every other infeasibility check in the node bound) against
// brute force: for every feasible assignment and every prefix of its
// fixes, the node bound must declare the box feasible — a completion
// provably exists — and its bound must not exceed the completion's Σd.
func TestNodeBoundNeverFathomsCompletableBoxes(t *testing.T) {
	if testing.Short() {
		t.Skip("sequential brute-force enumeration; skipped under -short (the race lane)")
	}
	for seed := int64(0); seed < 25; seed++ {
		g := randomDAG(300+seed, 6)
		b := board(100, 1024, 1000)
		paths, err := g.Paths(0)
		if err != nil {
			continue
		}
		pre := newPresolve(g, b)
		n0 := MinPartitions(g, b)
		if n0 == 0 {
			continue
		}
		for N := n0; N <= n0+1 && N <= 4; N++ {
			m := buildModel(Input{Graph: g, Board: b}, pre, paths, N, true)
			nb := pre.nodeBoundFunc(N, m.yv, nil)
			forEachFeasible(g, b, N, func(assign []int) {
				d := EvaluateDelays(g, assign, N, paths)
				sumD := 0.0
				for _, v := range d {
					sumD += v
				}
				for k := 0; k <= len(assign); k++ {
					bounds := func(j int) (float64, float64) {
						lo, hi := m.prob.Bounds(j)
						for t := 0; t < k; t++ {
							for p := 0; p < N; p++ {
								if j != m.yv(t, p) {
									continue
								}
								if assign[t] == p {
									return 1, 1
								}
								return 0, 0
							}
						}
						return lo, hi
					}
					bnd, feasible := nb(bounds)
					if !feasible {
						t.Fatalf("seed %d N=%d: node bound fathomed a box completable by %v (prefix %d)",
							seed, N, assign, k)
					}
					if bnd > sumD+1e-6 {
						t.Fatalf("seed %d N=%d: node bound %g exceeds completion Σd %g (assign %v, prefix %d)",
							seed, N, bnd, sumD, assign, k)
					}
				}
			})
		}
	}
}

package tempart

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/dfg"
)

// multiResBoard caps both CLBs and block RAMs.
func multiResBoard() arch.Board {
	b := arch.SmallTestBoard()
	b.FPGA.CLBs = 1000
	b.FPGA.ExtraCapacity = map[string]int{"BRAM": 4}
	b.FPGA.ReconfigTime = 1000
	return b
}

func TestMinPartitionsMultiResource(t *testing.T) {
	g := dfg.New("g")
	// CLBs alone would fit in one partition; BRAM (10 across a cap of 4)
	// forces at least 3.
	for i := 0; i < 5; i++ {
		g.MustAddTask(dfg.Task{
			Name: string(rune('a' + i)), Resources: 100, Delay: 10,
			Extra: map[string]int{"BRAM": 2},
		})
	}
	if n := MinPartitions(g, multiResBoard()); n != 3 {
		t.Errorf("MinPartitions = %d, want 3 (BRAM bound)", n)
	}
}

func TestSolveRespectsExtraCapacity(t *testing.T) {
	g := dfg.New("g")
	for i := 0; i < 4; i++ {
		g.MustAddTask(dfg.Task{
			Name: string(rune('a' + i)), Resources: 100, Delay: 50,
			Extra: map[string]int{"BRAM": 2},
		})
	}
	b := multiResBoard()
	p, err := Solve(Input{Graph: g, Board: b})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 2 {
		t.Fatalf("N = %d, want 2 (8 BRAM over cap 4)", p.N)
	}
	if err := CheckFeasible(g, b, p.Assign, p.N); err != nil {
		t.Error(err)
	}
	// No partition may exceed 4 BRAMs.
	use := make([]int, p.N)
	for ti, pi := range p.Assign {
		use[pi] += g.Task(ti).Extra["BRAM"]
	}
	for pi, u := range use {
		if u > 4 {
			t.Errorf("partition %d uses %d BRAM > 4", pi, u)
		}
	}
}

func TestExtraTooLarge(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 10, Delay: 1, Extra: map[string]int{"BRAM": 9}})
	_, err := Solve(Input{Graph: g, Board: multiResBoard()})
	if !errors.Is(err, ErrTaskTooLarge) {
		t.Errorf("err = %v, want ErrTaskTooLarge", err)
	}
}

func TestUncappedExtraIgnored(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 10, Delay: 1, Extra: map[string]int{"DSP48": 999}})
	b := multiResBoard() // no DSP48 capacity -> unconstrained
	p, err := Solve(Input{Graph: g, Board: b})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 1 {
		t.Errorf("N = %d, want 1", p.N)
	}
}

func TestCheckFeasibleExtra(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 10, Extra: map[string]int{"BRAM": 3}})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 10, Extra: map[string]int{"BRAM": 3}})
	b := multiResBoard()
	if err := CheckFeasible(g, b, []int{0, 0}, 1); err == nil {
		t.Error("6 BRAM in one partition accepted against cap 4")
	}
	if err := CheckFeasible(g, b, []int{0, 1}, 2); err != nil {
		t.Error(err)
	}
}

func TestGreedyRespectsExtra(t *testing.T) {
	g := dfg.New("g")
	for i := 0; i < 4; i++ {
		g.MustAddTask(dfg.Task{
			Name: string(rune('a' + i)), Resources: 10, Delay: 5,
			Extra: map[string]int{"BRAM": 2},
		})
	}
	assign, n := greedyAssign(g, multiResBoard(), false)
	if assign == nil {
		t.Fatal("greedy failed")
	}
	if n != 2 {
		t.Errorf("greedy N = %d, want 2", n)
	}
	if err := CheckFeasible(g, multiResBoard(), assign, n); err != nil {
		t.Error(err)
	}
}

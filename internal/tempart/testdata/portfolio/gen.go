// Command gen regenerates the hard-instance portfolio corpus from the RNG
// seed pinned in manifest.json. Run from the repository root:
//
//	go run ./internal/tempart/testdata/portfolio
//
// The generators live in the tempart package (portfolio_gen.go) so the
// regeneration-determinism test can verify that the committed JSON is
// byte-identical to what this command would write — see
// tempart.PortfolioGraphs for the corpus description.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tempart"
)

func main() {
	dir := filepath.Join("internal", "tempart", "testdata", "portfolio")
	manifest, err := tempart.LoadPortfolioManifest(dir)
	if err != nil {
		panic(err)
	}
	for _, g := range tempart.PortfolioGraphs(manifest.GenSeed) {
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			panic(err)
		}
		path := filepath.Join(dir, g.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", path)
	}
}

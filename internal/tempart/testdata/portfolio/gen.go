// Command gen regenerates the hard-instance portfolio corpus. Run from the
// repository root:
//
//	go run ./internal/tempart/testdata/portfolio
//
// The corpus covers the two regimes that stay exponential after the
// presolve/cut work (ROADMAP "hard-instance portfolio" item):
//
//   - packNN: near-capacity packing-infeasibility instances — items of
//     34/35/36 CLBs on a 100-CLB board, so any three tasks overflow a
//     partition while every pair fits. The area bound undershoots the true
//     minimum and the LP relaxation is happy fractionally, so the search
//     has to fight for every integral packing. Run under a node budget
//     (expect "limit") as a deterministic throughput yardstick.
//   - chainNN: the same near-capacity items arranged in 3-task chains with
//     mixed delays — the regime where the temporal-order and cover
//     separators bite; solved to optimality.
//   - firN: the FIR-bank shape of the headline bench with pinned synthesis
//     estimates — the boundary chain-area cuts must keep closing these at
//     the root.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dfg"
)

func pack(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("pack%d", n))
	for i := 0; i < n; i++ {
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: 34 + i%3, Delay: 100, ReadEnv: 1, WriteEnv: 1})
	}
	return g
}

func chain(n int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("chain%d", n))
	for i := 0; i < n; i++ {
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: 34 + i%3, Delay: float64(80 + 20*(i%3)), ReadEnv: 1, WriteEnv: 1})
	}
	for i := 0; i+1 < n; i += 3 {
		g.MustAddEdge(fmt.Sprintf("t%02d", i), fmt.Sprintf("t%02d", i+1), 1)
		if i+2 < n {
			g.MustAddEdge(fmt.Sprintf("t%02d", i+1), fmt.Sprintf("t%02d", i+2), 1)
		}
	}
	return g
}

func fir(channels int) *dfg.Graph {
	g := dfg.New(fmt.Sprintf("fir%d", channels))
	for c := 0; c < channels; c++ {
		fn, dn, en := fmt.Sprintf("fir%d", c), fmt.Sprintf("dec%d", c), fmt.Sprintf("eng%d", c)
		g.MustAddTask(dfg.Task{Name: fn, Type: "fir", Resources: 140, Delay: 1140, ReadEnv: 4})
		g.MustAddTask(dfg.Task{Name: dn, Type: "dec", Resources: 100, Delay: 420})
		g.MustAddTask(dfg.Task{Name: en, Type: "eng", Resources: 110, Delay: 800, WriteEnv: 1})
		g.MustAddEdge(fn, dn, 4)
		g.MustAddEdge(dn, en, 2)
	}
	return g
}

func main() {
	dir := filepath.Join("internal", "tempart", "testdata", "portfolio")
	for _, g := range []*dfg.Graph{
		pack(12), pack(15), pack(18),
		chain(9), chain(10), chain(11),
		fir(6), fir(8),
	} {
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			panic(err)
		}
		path := filepath.Join(dir, g.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", path)
	}
}

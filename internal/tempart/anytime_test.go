package tempart

import (
	"context"
	"errors"
	"testing"
	"time"
)

// checkAnytime verifies the anytime result contract: feasible assignment,
// Partial labeled, a finite bound no larger than the latency, and a
// consistent gap.
func checkAnytime(t *testing.T, in Input, p *Partitioning) {
	t.Helper()
	if !p.Partial {
		t.Fatalf("deadline result not marked Partial (optimal=%v)", p.Optimal)
	}
	if p.Optimal {
		t.Fatal("result is both Optimal and Partial")
	}
	if err := CheckFeasible(in.Graph, in.Board, p.Assign, p.N); err != nil {
		t.Fatalf("anytime assignment infeasible: %v", err)
	}
	if p.LatencyBound <= 0 {
		t.Fatalf("LatencyBound = %g, want a positive finite bound", p.LatencyBound)
	}
	if p.LatencyBound > p.Latency+1e-6 {
		t.Fatalf("LatencyBound %g above Latency %g", p.LatencyBound, p.Latency)
	}
	if g := p.Latency - p.LatencyBound; p.Gap < 0 || (p.Gap-g) > 1e-6 || (g-p.Gap) > 1e-6 {
		t.Fatalf("Gap = %g, want Latency-LatencyBound = %g", p.Gap, g)
	}
}

// TestSolveContextDeadlineAnytime drives the hard mixed-cardinality
// instance into a deadline it cannot meet: the solve must come back within
// a few multiples of the budget with either an anytime incumbent (feasible,
// Partial, finite gap) or ErrDeadline (no incumbent at all) — never a
// different error and never a blown deadline.
func TestSolveContextDeadlineAnytime(t *testing.T) {
	for _, budget := range []time.Duration{50 * time.Millisecond, 300 * time.Millisecond} {
		in := hardInput(24)
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		start := time.Now()
		p, err := SolveContext(ctx, in)
		elapsed := time.Since(start)
		cancel()
		if elapsed > budget+10*time.Second {
			t.Fatalf("budget %v: solve ran %v", budget, elapsed)
		}
		switch {
		case err == nil && p != nil && p.Optimal:
			// A fast machine finished the probe inside the budget; nothing
			// anytime to check.
		case err == nil && p != nil:
			checkAnytime(t, in, p)
		case errors.Is(err, ErrDeadline):
			// No incumbent in time: the service layer's fallback cue.
		default:
			t.Fatalf("budget %v: got (%v, %v), want anytime result or ErrDeadline",
				budget, p, err)
		}
	}
}

// TestSolveContextDeadlineSpeculative runs the same deadline through the
// speculative relax-N window: the salvage path must return the best
// COMPLETED probe's result under the same anytime contract.
func TestSolveContextDeadlineSpeculative(t *testing.T) {
	in := hardInput(24)
	in.SpeculateN = 3
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	p, err := SolveContext(ctx, in)
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("speculative deadline solve ran %v", elapsed)
	}
	switch {
	case err == nil && p != nil && p.Optimal:
	case err == nil && p != nil:
		checkAnytime(t, in, p)
	case errors.Is(err, ErrDeadline):
	default:
		t.Fatalf("got (%v, %v), want anytime result or ErrDeadline", p, err)
	}
}

// TestOptionsDeadlineWithoutContext pins that Input.ILP.Deadline alone (no
// context deadline) also produces the anytime behavior — the ILP layer owns
// the stop, SolveContext only interprets it.
func TestOptionsDeadlineWithoutContext(t *testing.T) {
	in := hardInput(24)
	in.ILP.Deadline = time.Now().Add(200 * time.Millisecond)
	start := time.Now()
	p, err := SolveContext(context.Background(), in)
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("Options.Deadline solve ran %v", elapsed)
	}
	switch {
	case err == nil && p != nil && p.Optimal:
	case err == nil && p != nil:
		checkAnytime(t, in, p)
	case errors.Is(err, ErrDeadline):
	default:
		t.Fatalf("got (%v, %v), want anytime result or ErrDeadline", p, err)
	}
}

// TestAnytimeLowerBoundSound: the exported floor used for fallback gap
// reporting must never exceed the true optimum.
func TestAnytimeLowerBoundSound(t *testing.T) {
	in := hardInput(8) // small enough to solve exactly
	lb := AnytimeLowerBound(in.Graph, in.Board)
	if lb <= 0 {
		t.Fatalf("AnytimeLowerBound = %g, want positive", lb)
	}
	p, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if lb > p.Latency+1e-6 {
		t.Fatalf("AnytimeLowerBound %g above optimum latency %g", lb, p.Latency)
	}
	if AnytimeLowerBound(nil, in.Board) != 0 {
		t.Fatal("nil graph should bound to 0")
	}
}

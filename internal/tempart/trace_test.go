package tempart

import (
	"testing"
	"time"

	"repro/internal/ilp"
	"repro/internal/obs"
)

// quickSolvableEntry picks the first portfolio instance that solves to a
// proven optimum under its manifest budget (pack12 in the committed
// corpus): big enough (~ms) that the timeline/wall comparison is
// meaningful, small enough for every CI lane.
func quickSolvableEntry(t *testing.T) *portfolioEntry {
	t.Helper()
	entries := loadPortfolio(t)
	for i := range entries {
		if entries[i].Quick && entries[i].Expect == "solve" {
			return &entries[i]
		}
	}
	t.Fatal("no quick solvable portfolio instance")
	return nil
}

// TestTraceTimelineCoversSolve pins the flight-recorder acceptance
// criterion at the solver level: on a portfolio instance, the presolve +
// probe spans of a traced sequential solve must account for the solve's
// wall-clock time to within 10% (the two span families partition the
// pipeline; everything between Solve entry and return is inside one of
// them except loop bookkeeping).
func TestTraceTimelineCoversSolve(t *testing.T) {
	e := quickSolvableEntry(t)
	in := Input{
		Graph: e.graph, Board: e.board,
		NoSymmetryBreaking: e.NoSymmetry,
		DisableWarmStart:   e.NoWarm,
		ILP:                ilp.Options{MaxNodes: e.MaxNodes},
	}

	// One untraced warm-up solve so page faults and lazy init don't land
	// inside the measured window but outside any span.
	if _, err := Solve(in); err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(1 << 12)
	in.Trace = rec
	start := time.Now()
	part, err := Solve(in)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	tr := rec.Trace()
	if tr.Dropped != 0 {
		t.Fatalf("trace dropped %d events", tr.Dropped)
	}
	var timeline int64
	phases := map[string]bool{}
	for _, sp := range tr.Spans {
		phases[sp.Phase] = true
		if sp.Phase == obs.PhasePresolve || sp.Phase == obs.PhaseProbe {
			timeline += sp.DurNS
		}
	}
	for _, want := range []string{obs.PhasePresolve, obs.PhaseProbe,
		obs.PhaseModelBuild, obs.PhaseRootCut, obs.PhaseSearch} {
		if !phases[want] {
			t.Errorf("trace missing a %q span; spans = %+v", want, tr.Spans)
		}
	}
	if ratio := float64(timeline) / float64(elapsed); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("timeline sum %v vs wall %v (ratio %.3f), want within 10%%",
			time.Duration(timeline), elapsed, ratio)
	}

	// The LP kernel counters snapshotted at the search-span boundary must
	// agree with the solve's reported stats.
	if got := tr.Counters[obs.CounterLPRefactor]; got < int64(part.Stats.Solver.Refactorizations) {
		t.Errorf("traced refactorizations %d < reported %d", got, part.Stats.Solver.Refactorizations)
	}
	if tr.Counters[obs.CounterLPPivots] <= 0 {
		t.Errorf("traced lp_pivots = %d, want > 0", tr.Counters[obs.CounterLPPivots])
	}
	if tr.Counters[obs.CounterNodes] < int64(part.Stats.Nodes) {
		t.Errorf("traced bb_nodes %d < reported %d", tr.Counters[obs.CounterNodes], part.Stats.Nodes)
	}
}

// TestTraceSpeculativeParallel drives the recorder through the concurrent
// paths — overlapping speculative probes and parallel B&B workers — so the
// CI race lane exercises every recording site under -race.
func TestTraceSpeculativeParallel(t *testing.T) {
	e := quickSolvableEntry(t)
	rec := obs.NewRecorder(1 << 12)
	in := Input{
		Graph: e.graph, Board: e.board,
		SpeculateN: 2, Trace: rec,
		ILP: ilp.Options{Workers: 4, MaxNodes: e.MaxNodes},
	}
	untraced, err := Solve(Input{Graph: e.graph, Board: e.board,
		ILP: ilp.Options{MaxNodes: e.MaxNodes}})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Tracing must not perturb the answer.
	if part.N != untraced.N || part.Latency != untraced.Latency {
		t.Fatalf("traced solve N=%d lat=%g, untraced N=%d lat=%g",
			part.N, part.Latency, untraced.N, untraced.Latency)
	}
	tr := rec.Trace()
	var probes int
	for _, sp := range tr.Spans {
		if sp.Phase == obs.PhaseProbe {
			probes++
		}
	}
	if probes == 0 {
		t.Fatalf("no probe spans; spans = %+v", tr.Spans)
	}
}

package tempart

import (
	"math"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/arch"
	"repro/internal/dfg"
)

// presolve holds the combinatorial view of one partitioning instance,
// computed once per Solve and shared by every relax-N probe and every
// branch-and-bound node. It exists so that the cheap, LP-free facts about
// the instance — DAG longest paths, transitive reachability, and area
// totals — can reject candidate partition counts and fathom B&B subtrees
// before the simplex ever runs:
//
//   - Relax loop: the area-packing lower bound (MinPartitions) and the
//     greedy-feasibility upper bound (maxFeasibleN) bracket the useful N
//     range, so infeasible and dominated N probes are rejected without an
//     LP solve.
//   - Search tree: nodeBoundFunc maps a node's y-variable box to a valid
//     lower bound on Σ d_p (critical path and per-partition longest fixed
//     chains) plus per-partition area feasibility; ilp uses it to skip the
//     LP entirely (Options.NodeBound).
//
// All bounds are conservative: they never exceed the true LP relaxation
// bound of the same box, which the presolve property tests pin down.
type presolve struct {
	g     *dfg.Graph
	board arch.Board

	topo        []int      // topological order of task indices
	reach       [][]uint64 // reach[t]: bitset of ancestors of t (tasks with a path to t)
	delays      []float64  // D(t)
	res         []int      // R(t)
	extraKinds  []string   // capped extra resource kinds, aligned with extraDemand
	extraDemand [][]int    // extraDemand[k][t]: demand of task t for kind k
	extraCap    []int      // board capacity per kind

	critical  float64 // max root-leaf path delay (DAG longest path)
	areaDelay float64 // layer-cake area×delay lower bound on Σ_p d_p
	segments  []layerSeg
	totalRes  int

	// ancChain[t] / descChain[t]: longest delay-weighted chain ending /
	// starting at t (inclusive). A task placed in partition q drags its
	// whole ancestor chain into partitions <= q and its descendant chain
	// into partitions >= q, which is what the boundary chain-area cuts
	// exploit (see cuts.go).
	ancChain  []float64
	descChain []float64
}

// layerSeg is one slab of the layer-cake decomposition: tasks with delay
// >= delay occupy at least need partitions, and the slab spans the delay
// interval (next, delay]. areaDelayBound integrates need over the slabs;
// the per-subset layer-cake cuts reuse them with a subset-adjusted need
// (see subsetDelayFloor).
type layerSeg struct {
	delay float64 // threshold (a distinct task delay)
	next  float64 // next smaller distinct delay (0 past the last)
	need  int     // max over capped resource kinds of ⌈area(>=delay)/cap⌉
}

// newPresolve builds the presolve view. The graph must already be validated
// (acyclic).
func newPresolve(g *dfg.Graph, board arch.Board) *presolve {
	nT := g.NumTasks()
	topo, err := g.TopoOrder()
	if err != nil {
		topo = nil // unreachable for validated graphs
	}
	words := (nT + 63) / 64
	pr := &presolve{
		g:      g,
		board:  board,
		topo:   topo,
		reach:  make([][]uint64, nT),
		delays: make([]float64, nT),
		res:    make([]int, nT),
	}
	flat := make([]uint64, nT*words)
	for t := 0; t < nT; t++ {
		pr.reach[t] = flat[t*words : (t+1)*words]
		pr.delays[t] = g.Task(t).Delay
		pr.res[t] = g.Task(t).Resources
		pr.totalRes += pr.res[t]
	}
	// Ancestor bitsets in topological order: reach[t] = ∪_{u→t} reach[u] ∪ {u}.
	for _, t := range topo {
		rt := pr.reach[t]
		for _, u := range g.Preds(t) {
			ru := pr.reach[u]
			for w := range rt {
				rt[w] |= ru[w]
			}
			rt[u/64] |= 1 << uint(u%64)
		}
	}
	pr.critical, _ = g.CriticalPath()
	pr.segments = layerSegments(g, board)
	for _, s := range pr.segments {
		pr.areaDelay += (s.delay - s.next) * float64(s.need)
	}
	pr.ancChain = make([]float64, nT)
	pr.descChain = make([]float64, nT)
	for _, t := range topo {
		best := 0.0
		for _, u := range g.Preds(t) {
			if pr.ancChain[u] > best {
				best = pr.ancChain[u]
			}
		}
		pr.ancChain[t] = best + pr.delays[t]
	}
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		best := 0.0
		for _, u := range g.Succs(t) {
			if pr.descChain[u] > best {
				best = pr.descChain[u]
			}
		}
		pr.descChain[t] = best + pr.delays[t]
	}
	for _, kind := range g.ExtraTypes() {
		cap, capped := board.FPGA.ExtraCapacity[kind]
		if !capped {
			continue
		}
		demand := make([]int, nT)
		for t := 0; t < nT; t++ {
			demand[t] = g.Task(t).Extra[kind]
		}
		pr.extraKinds = append(pr.extraKinds, kind)
		pr.extraDemand = append(pr.extraDemand, demand)
		pr.extraCap = append(pr.extraCap, cap)
	}
	return pr
}

// latencyLowerBound is the combinatorial latency floor for a partition
// count: N reconfigurations plus the DAG critical path (any partitioning
// executes every root-leaf path across its partitions, so Σ d_p can never
// undercut the longest one).
func (pr *presolve) latencyLowerBound(n int) float64 {
	return float64(n)*pr.board.FPGA.ReconfigTime + pr.critical
}

// sumDelayFloor is the strongest instance-wide lower bound on Σ_p d_p the
// presolve knows: the DAG critical path and the layer-cake area×delay
// bound. Unlike the critical path, the layer-cake bound uses integrality
// (⌈area/capacity⌉ partitions must carry slow tasks), so it can exceed the
// LP relaxation bound — that is exactly what lets it fathom nodes the LP
// would have had to solve.
func (pr *presolve) sumDelayFloor() float64 {
	if pr.areaDelay > pr.critical {
		return pr.areaDelay
	}
	return pr.critical
}

// layerSegments computes the layer-cake decomposition behind the
// area×delay bound: for any threshold x, every partition holds at most the
// board capacity, so the tasks with delay ≥ x occupy at least need(x) =
// max over capped resource kinds of ⌈Σ demand / capacity⌉ distinct
// partitions, each of which has d_p ≥ x (a single task is a chain).
// Integrating over x:
//
//	Σ_p d_p  ≥  Σ_i (D_i − D_{i+1}) · need(D_i)
//
// over the distinct task delays D_1 > D_2 > … (D_{last+1} = 0). The
// segments are returned so the separation layer can re-integrate them with
// a subset-adjusted need (subsetDelayFloor).
func layerSegments(g *dfg.Graph, board arch.Board) []layerSeg {
	nT := g.NumTasks()
	if nT == 0 {
		return nil
	}
	order := make([]int, nT)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return g.Task(order[a]).Delay > g.Task(order[b]).Delay
	})
	kinds := make([]string, 0, len(board.FPGA.ExtraCapacity))
	for kind, cap := range board.FPGA.ExtraCapacity {
		if cap > 0 {
			kinds = append(kinds, kind)
		}
	}
	sort.Strings(kinds)
	clbs := 0
	extra := make([]int, len(kinds))
	need := func() int {
		n := 0
		if board.FPGA.CLBs > 0 {
			n = (clbs + board.FPGA.CLBs - 1) / board.FPGA.CLBs
		}
		for k, kind := range kinds {
			cap := board.FPGA.ExtraCapacity[kind]
			if m := (extra[k] + cap - 1) / cap; m > n {
				n = m
			}
		}
		return n
	}
	var segs []layerSeg
	for i := 0; i < nT; {
		d := g.Task(order[i]).Delay
		for i < nT && g.Task(order[i]).Delay == d {
			t := order[i]
			clbs += g.Task(t).Resources
			for k, kind := range kinds {
				extra[k] += g.Task(t).Extra[kind]
			}
			i++
		}
		next := 0.0
		if i < nT {
			next = g.Task(order[i]).Delay
		}
		if d > next {
			segs = append(segs, layerSeg{delay: d, next: next, need: need()})
		}
	}
	return segs
}

// subsetDelayFloor is the per-subset generalization of the layer-cake
// bound, valid for EVERY subset S of s out of N partitions:
//
//	Σ_{p∈S} d_p  ≥  Σ_i (D_i − D_{i+1}) · max(0, need(D_i) − (N − s))
//
// Proof sketch: the N−s partitions outside S can absorb at most (N−s)
// partitions' worth of the area at delay ≥ D_i, so at least
// need(D_i) − (N−s) partitions *inside S* carry a task of delay ≥ D_i and
// therefore have d_p ≥ D_i; integrating over the thresholds gives the
// bound on the sum (equivalently: the j-th largest partition delay is at
// least X_j = max{D_i : need(D_i) ≥ j}, and any s delays sum to at least
// X_{N-s+1} + … + X_N). s = N recovers the aggregate area×delay bound.
func (pr *presolve) subsetDelayFloor(n, s int) float64 {
	slack := n - s
	sum := 0.0
	for _, seg := range pr.segments {
		if k := seg.need - slack; k > 0 {
			sum += (seg.delay - seg.next) * float64(k)
		}
	}
	return sum
}

// boundaryChainFloor bounds the partition delays on one side of boundary p
// of an n-partition model: Σ_{q<p} d_q (suffix=false) or Σ_{q>=p} d_q
// (suffix=true).
//
// The argument, for the prefix side: partitions p..n-1 absorb at most
// (n-p)·cap area per capped resource kind, so the prefix must hold at
// least A = total - (n-p)·cap of it. Any task t placed in the prefix has
// its entire ancestor chain in the prefix too (temporal order), and that
// chain decomposes into in-partition path segments, so
// Σ_{q<p} d_q ≥ ancChain(t). The tasks with ancChain below some threshold
// θ carry a bounded area; the smallest θ whose tasks reach A is therefore
// a valid floor: any prefix with enough area contains a task with
// ancChain ≥ θ. The suffix side is symmetric with descendant chains. The
// bound uses integrality (which tasks exist, not fractions of them), so —
// like the layer-cake bound — it can exceed the LP relaxation bound; the
// cut-validity property tests pin it against brute force.
func (pr *presolve) boundaryChainFloor(n, p int, suffix bool) float64 {
	chain := pr.ancChain
	outside := n - p
	if suffix {
		chain = pr.descChain
		outside = p
	}
	floor := 0.0
	dim := func(demand []int, cap int) {
		total := 0
		for _, d := range demand {
			total += d
		}
		need := total - outside*cap
		if need <= 0 {
			return
		}
		if th := minMaxChainForArea(chain, demand, need); th > floor && !math.IsInf(th, 1) {
			floor = th
		}
	}
	dim(pr.res, pr.board.FPGA.CLBs)
	for k := range pr.extraDemand {
		dim(pr.extraDemand[k], pr.extraCap[k])
	}
	return floor
}

// minMaxChainForArea returns the smallest achievable maximum chain value
// over any task set whose total demand reaches need: tasks sorted by
// ascending chain are taken greedily, and the chain value at which the
// running demand first reaches need is the threshold (any set with that
// much area must include a task at or above it). +Inf when even all tasks
// fall short (the caller's n is packing-infeasible and never solved).
func minMaxChainForArea(chain []float64, demand []int, need int) float64 {
	order := make([]int, len(chain))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return chain[order[a]] < chain[order[b]] })
	cum := 0
	for _, t := range order {
		cum += demand[t]
		if cum >= need {
			return chain[t]
		}
	}
	return math.Inf(1)
}

// maxFeasibleN returns the lowest partition count at which the greedy
// heuristics produce a feasible partitioning, or 0 when they fail. Because
// model feasibility is monotone in N (a partitioning using K ≤ N partitions
// is feasible for the N-partition model), the relax loop never needs to
// probe beyond this value: every higher N is dominated by the greedy
// certificate.
func (pr *presolve) maxFeasibleN() int {
	best := 0
	for _, homogeneous := range []bool{false, true} {
		assign, usedN := greedyAssign(pr.g, pr.board, homogeneous)
		if assign == nil || usedN <= 0 {
			continue
		}
		if CheckFeasible(pr.g, pr.board, assign, usedN) != nil {
			continue
		}
		if best == 0 || usedN < best {
			best = usedN
		}
	}
	return best
}

// packingFeasibleAll runs the bin-packing feasibility pre-check for every
// capped resource dimension (CLBs plus the board's capped extra kinds).
// false proves the ILP infeasible at this N without an LP solve.
func (pr *presolve) packingFeasibleAll(n int) bool {
	if !packingFeasible(pr.res, pr.board.FPGA.CLBs, n) {
		return false
	}
	for k, demand := range pr.extraDemand {
		if !packingFeasible(demand, pr.extraCap[k], n) {
			return false
		}
	}
	return true
}

// nodeScratch is the per-call workspace of the node bound, pooled because
// the callback runs on every B&B node (concurrently with Workers > 1).
type nodeScratch struct {
	assigned  []int     // task -> fixed partition, or -1
	used      []int     // CLBs fixed per partition
	chain     []float64 // longest fixed-chain delay ending at task t
	maxChain  []float64 // per-partition longest fixed chain
	extraUsed [][]int   // per kind: fixed demand per partition
}

// nodeBoundFunc builds the ilp.Options.NodeBound callback for one model
// layout (partition count N, y-variable indexer yv). The returned bound is
// a valid lower bound on Σ_p d_p over the node's box:
//
//	Σ_p d_p  ≥  max( critical path delay,
//	                 Σ_p longest delay-weighted chain among tasks fixed to p )
//
// (a chain in the ancestor partial order extends to a root-leaf path, so
// each partition's delay d_p is at least the delay of any chain fixed to
// it). feasible=false is returned only on certain infeasibility: a task
// with no allowed partition left, a partition whose fixed tasks exceed a
// resource capacity, or a task that no longer fits anywhere.
func (pr *presolve) nodeBoundFunc(N int, yv func(t, p int) int) func(bounds func(j int) (lo, hi float64)) (float64, bool) {
	nT := pr.g.NumTasks()
	pool := &sync.Pool{New: func() any {
		sc := &nodeScratch{
			assigned: make([]int, nT),
			used:     make([]int, N),
			chain:    make([]float64, nT),
			maxChain: make([]float64, N),
		}
		for range pr.extraKinds {
			sc.extraUsed = append(sc.extraUsed, make([]int, N))
		}
		return sc
	}}
	clbCap := pr.board.FPGA.CLBs
	return func(bounds func(j int) (lo, hi float64)) (float64, bool) {
		sc := pool.Get().(*nodeScratch)
		defer pool.Put(sc)
		for p := 0; p < N; p++ {
			sc.used[p] = 0
			sc.maxChain[p] = 0
		}
		for k := range sc.extraUsed {
			for p := 0; p < N; p++ {
				sc.extraUsed[k][p] = 0
			}
		}
		// Decode the box: fixed partition (lo > ½) and allowed set per task.
		for t := 0; t < nT; t++ {
			sc.assigned[t] = -1
			allowed := 0
			for p := 0; p < N; p++ {
				lo, hi := bounds(yv(t, p))
				if hi > 0.5 {
					allowed++
				}
				if lo > 0.5 {
					sc.assigned[t] = p
				}
			}
			if allowed == 0 {
				return 0, false
			}
			if p := sc.assigned[t]; p >= 0 {
				sc.used[p] += pr.res[t]
				for k := range pr.extraDemand {
					sc.extraUsed[k][p] += pr.extraDemand[k][t]
				}
			}
		}
		// Area feasibility of the fixed assignment.
		for p := 0; p < N; p++ {
			if sc.used[p] > clbCap {
				return 0, false
			}
			for k := range sc.extraUsed {
				if sc.extraUsed[k][p] > pr.extraCap[k] {
					return 0, false
				}
			}
		}
		// Every unfixed task must still fit in some allowed partition next
		// to the tasks already fixed there.
		for t := 0; t < nT; t++ {
			if sc.assigned[t] >= 0 {
				continue
			}
			fits := false
			for p := 0; p < N && !fits; p++ {
				if _, hi := bounds(yv(t, p)); hi <= 0.5 {
					continue
				}
				if sc.used[p]+pr.res[t] > clbCap {
					continue
				}
				ok := true
				for k := range pr.extraDemand {
					if sc.extraUsed[k][p]+pr.extraDemand[k][t] > pr.extraCap[k] {
						ok = false
						break
					}
				}
				fits = ok
			}
			if !fits {
				return 0, false
			}
		}
		// Longest fixed chain per partition: chains in the ancestor order
		// extend to root-leaf paths, so d_p ≥ maxChain[p] for any
		// completion of this box.
		for _, t := range pr.topo {
			p := sc.assigned[t]
			if p < 0 {
				continue
			}
			best := 0.0
			rt := pr.reach[t]
			for w, word := range rt {
				for word != 0 {
					u := w*64 + bits.TrailingZeros64(word)
					word &= word - 1
					if sc.assigned[u] == p && sc.chain[u] > best {
						best = sc.chain[u]
					}
				}
			}
			sc.chain[t] = best + pr.delays[t]
			if sc.chain[t] > sc.maxChain[p] {
				sc.maxChain[p] = sc.chain[t]
			}
		}
		sum := 0.0
		for p := 0; p < N; p++ {
			sum += sc.maxChain[p]
		}
		if floor := pr.sumDelayFloor(); floor > sum {
			sum = floor
		}
		return sum, true
	}
}

package tempart

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/dfg"
)

// presolve holds the combinatorial view of one partitioning instance,
// computed once per Solve and shared by every relax-N probe and every
// branch-and-bound node. It exists so that the cheap, LP-free facts about
// the instance — DAG longest paths, transitive reachability, and area
// totals — can reject candidate partition counts and fathom B&B subtrees
// before the simplex ever runs:
//
//   - Relax loop: the area-packing lower bound (MinPartitions) and the
//     greedy-feasibility upper bound (maxFeasibleN) bracket the useful N
//     range, so infeasible and dominated N probes are rejected without an
//     LP solve.
//   - Search tree: nodeBoundFunc maps a node's y-variable box to a valid
//     lower bound on Σ d_p (critical path and per-partition longest fixed
//     chains) plus per-partition area feasibility; ilp uses it to skip the
//     LP entirely (Options.NodeBound).
//
// All bounds are conservative: they never exceed the true LP relaxation
// bound of the same box, which the presolve property tests pin down.
type presolve struct {
	g     *dfg.Graph
	board arch.Board

	topo        []int      // topological order of task indices
	reach       [][]uint64 // reach[t]: bitset of ancestors of t (tasks with a path to t)
	delays      []float64  // D(t)
	res         []int      // R(t)
	extraKinds  []string   // capped extra resource kinds, aligned with extraDemand
	extraDemand [][]int    // extraDemand[k][t]: demand of task t for kind k
	extraCap    []int      // board capacity per kind

	critical  float64 // max root-leaf path delay (DAG longest path)
	areaDelay float64 // layer-cake area×delay lower bound on Σ_p d_p
	segments  []layerSeg
	totalRes  int

	// ancChain[t] / descChain[t]: longest delay-weighted chain ending /
	// starting at t (inclusive). A task placed in partition q drags its
	// whole ancestor chain into partitions <= q and its descendant chain
	// into partitions >= q, which is what the boundary chain-area cuts
	// exploit (see cuts.go).
	ancChain  []float64
	descChain []float64

	// cgFams caches the Chvátal–Gomory cardinality families (cuts.go):
	// they depend only on the instance, so every relax-N probe shares one
	// computation.
	cgFams []cgFamily

	// groups caches g.InterchangeableGroups(): the model builder consumes
	// it per relax-N probe (symmetry-breaking rows) and the warm start per
	// probe again (incumbent canonicalization), and the computation walks
	// every task pair.
	groups [][]int

	// greedy caches the two warm-start heuristics (plain and
	// type-homogeneous topological packing), each validated once at its own
	// partition count. Feasibility is monotone in N, so a cached certificate
	// at usedN serves every probe with N >= usedN — maxFeasibleN and every
	// warmStart call read these instead of re-running the packing.
	greedy [2]greedyResult
}

// greedyResult is one cached warm-start heuristic outcome.
type greedyResult struct {
	assign []int // task -> partition; callers must not mutate
	usedN  int
	ok     bool // assign exists and CheckFeasible passed at usedN
}

// layerSeg is one slab of the layer-cake decomposition: tasks with delay
// >= delay occupy at least need partitions, and the slab spans the delay
// interval (next, delay]. areaDelayBound integrates need over the slabs;
// the per-subset layer-cake cuts reuse them with a subset-adjusted need
// (see subsetDelayFloor).
type layerSeg struct {
	delay float64 // threshold (a distinct task delay)
	next  float64 // next smaller distinct delay (0 past the last)
	need  int     // max over capped resource kinds of ⌈area(>=delay)/cap⌉
}

// newPresolve builds the presolve view. The graph must already be validated
// (acyclic).
func newPresolve(g *dfg.Graph, board arch.Board) *presolve {
	nT := g.NumTasks()
	topo, err := g.TopoOrder()
	if err != nil {
		topo = nil // unreachable for validated graphs
	}
	words := (nT + 63) / 64
	pr := &presolve{
		g:      g,
		board:  board,
		topo:   topo,
		reach:  make([][]uint64, nT),
		delays: make([]float64, nT),
		res:    make([]int, nT),
	}
	flat := make([]uint64, nT*words)
	for t := 0; t < nT; t++ {
		pr.reach[t] = flat[t*words : (t+1)*words]
		pr.delays[t] = g.Task(t).Delay
		pr.res[t] = g.Task(t).Resources
		pr.totalRes += pr.res[t]
	}
	// Ancestor bitsets in topological order: reach[t] = ∪_{u→t} reach[u] ∪ {u}.
	for _, t := range topo {
		rt := pr.reach[t]
		for _, u := range g.Preds(t) {
			ru := pr.reach[u]
			for w := range rt {
				rt[w] |= ru[w]
			}
			rt[u/64] |= 1 << uint(u%64)
		}
	}
	pr.critical, _ = g.CriticalPath()
	pr.segments = layerSegments(g, board)
	for _, s := range pr.segments {
		pr.areaDelay += (s.delay - s.next) * float64(s.need)
	}
	pr.ancChain = make([]float64, nT)
	pr.descChain = make([]float64, nT)
	for _, t := range topo {
		best := 0.0
		for _, u := range g.Preds(t) {
			if pr.ancChain[u] > best {
				best = pr.ancChain[u]
			}
		}
		pr.ancChain[t] = best + pr.delays[t]
	}
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		best := 0.0
		for _, u := range g.Succs(t) {
			if pr.descChain[u] > best {
				best = pr.descChain[u]
			}
		}
		pr.descChain[t] = best + pr.delays[t]
	}
	for _, kind := range g.ExtraTypes() {
		cap, capped := board.FPGA.ExtraCapacity[kind]
		if !capped {
			continue
		}
		demand := make([]int, nT)
		for t := 0; t < nT; t++ {
			demand[t] = g.Task(t).Extra[kind]
		}
		pr.extraKinds = append(pr.extraKinds, kind)
		pr.extraDemand = append(pr.extraDemand, demand)
		pr.extraCap = append(pr.extraCap, cap)
	}
	pr.cgFams = cgFamilies(pr)
	pr.groups = g.InterchangeableGroups()
	for i, homogeneous := range []bool{false, true} {
		assign, usedN := greedyAssign(g, board, homogeneous)
		ok := assign != nil && usedN > 0 && CheckFeasible(g, board, assign, usedN) == nil
		pr.greedy[i] = greedyResult{assign: assign, usedN: usedN, ok: ok}
	}
	return pr
}

// latencyLowerBound is the combinatorial latency floor for a partition
// count: N reconfigurations plus the DAG critical path (any partitioning
// executes every root-leaf path across its partitions, so Σ d_p can never
// undercut the longest one).
func (pr *presolve) latencyLowerBound(n int) float64 {
	return float64(n)*pr.board.FPGA.ReconfigTime + pr.critical
}

// sumDelayFloor is the strongest instance-wide lower bound on Σ_p d_p the
// presolve knows: the DAG critical path and the layer-cake area×delay
// bound. Unlike the critical path, the layer-cake bound uses integrality
// (⌈area/capacity⌉ partitions must carry slow tasks), so it can exceed the
// LP relaxation bound — that is exactly what lets it fathom nodes the LP
// would have had to solve.
func (pr *presolve) sumDelayFloor() float64 {
	if pr.areaDelay > pr.critical {
		return pr.areaDelay
	}
	return pr.critical
}

// layerSegments computes the layer-cake decomposition behind the
// area×delay bound: for any threshold x, every partition holds at most the
// board capacity, so the tasks with delay ≥ x occupy at least need(x)
// distinct partitions, each of which has d_p ≥ x (a single task is a
// chain). Integrating over x:
//
//	Σ_p d_p  ≥  Σ_i (D_i − D_{i+1}) · need(D_i)
//
// over the distinct task delays D_1 > D_2 > … (D_{last+1} = 0). need(x) is
// the bin-packing dual bound packingNeedDim over the ≥x task set — not
// just the area ratio ⌈Σ demand / capacity⌉ of PR 3, but also the
// Chvátal–Gomory cardinality bounds (near-capacity items cap how many of
// them share a partition), which is what lifts the floor to the integer
// optimum on the pack portfolio. The segments are returned so the
// separation layer can re-integrate them with a subset-adjusted need
// (subsetDelayFloor).
func layerSegments(g *dfg.Graph, board arch.Board) []layerSeg {
	nT := g.NumTasks()
	if nT == 0 {
		return nil
	}
	order := make([]int, nT)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return g.Task(order[a]).Delay > g.Task(order[b]).Delay
	})
	kinds := make([]string, 0, len(board.FPGA.ExtraCapacity))
	for kind, cap := range board.FPGA.ExtraCapacity {
		if cap > 0 {
			kinds = append(kinds, kind)
		}
	}
	sort.Strings(kinds)
	// One incrementally sorted accumulator per capped dimension: tasks
	// arrive in descending delay order and each new positive demand is
	// inserted in place (binary search + shift), so need() never re-sorts.
	// The prefix sums ARE rebuilt per segment (an insertion invalidates
	// every entry past its position anyway, so that O(n) pass is the
	// floor); the win over the naive version is dropping the per-segment
	// O(n log n) sort and the O(n²) kappa scan, which packingNeedSorted
	// replaces with binary searches.
	type accum struct {
		cap    int
		demand func(t int) int
		sorted []int
		prefix []int
	}
	accums := make([]*accum, 0, 1+len(kinds))
	if board.FPGA.CLBs > 0 {
		accums = append(accums, &accum{
			cap:    board.FPGA.CLBs,
			demand: func(t int) int { return g.Task(t).Resources },
			prefix: []int{0},
		})
	}
	for _, kind := range kinds {
		kind := kind
		accums = append(accums, &accum{
			cap:    board.FPGA.ExtraCapacity[kind],
			demand: func(t int) int { return g.Task(t).Extra[kind] },
			prefix: []int{0},
		})
	}
	insert := func(a *accum, d int) {
		if d <= 0 {
			return
		}
		at := sort.SearchInts(a.sorted, d)
		a.sorted = append(a.sorted, 0)
		copy(a.sorted[at+1:], a.sorted[at:])
		a.sorted[at] = d
	}
	need := func() int {
		n := 0
		for _, a := range accums {
			a.prefix = a.prefix[:1]
			for i, it := range a.sorted {
				a.prefix = append(a.prefix, a.prefix[i]+it)
			}
			if m := packingNeedSorted(a.sorted, a.prefix, a.cap); m > n {
				n = m
			}
		}
		return n
	}
	var segs []layerSeg
	for i := 0; i < nT; {
		d := g.Task(order[i]).Delay
		for i < nT && g.Task(order[i]).Delay == d {
			for _, a := range accums {
				insert(a, a.demand(order[i]))
			}
			i++
		}
		next := 0.0
		if i < nT {
			next = g.Task(order[i]).Delay
		}
		if d > next {
			segs = append(segs, layerSeg{delay: d, next: next, need: need()})
		}
	}
	return segs
}

// packingNeedDim is the one-dimensional bin-packing dual bound: a lower
// bound on the number of capacity-cap bins any packing of the items needs
// (zero-demand items are ignored; they occupy no capacity). It is the max
// of three families, each valid on its own:
//
//   - area: ⌈Σ items / cap⌉ (the paper's preprocessing bound);
//   - CG cardinality: for every size threshold m, the items of size ≥ m fit
//     at most κ(m) per bin, where κ(m) is the largest k whose k smallest
//     such items still fit — so they need ⌈|≥m| / κ(m)⌉ bins. This is the
//     dual counterpart of the Chvátal–Gomory cardinality cuts in cuts.go
//     (rank-1 rounding of the resource row with multiplier 1/m), and it is
//     what the area ratio misses on near-capacity packings: items of 34..36
//     on a 100-cap bin pack two per bin, not 100/35 ≈ 2.9;
//   - Martello–Toth L2: for every threshold K ≤ cap/2, items larger than
//     cap−K get a bin each, items in (cap/2, cap−K] get a bin each and
//     leave cap − size residue, and the remaining [K, cap/2] area that
//     does not fit those residues needs ⌈·/cap⌉ more bins.
//
// Callers must have validated that every item fits a bin on its own.
func packingNeedDim(items []int, cap int) int {
	if cap <= 0 {
		return 0
	}
	sorted := make([]int, 0, len(items))
	for _, it := range items {
		if it > 0 {
			sorted = append(sorted, it)
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	sort.Ints(sorted)
	prefix := make([]int, len(sorted)+1)
	for i, it := range sorted {
		prefix[i+1] = prefix[i] + it
	}
	return packingNeedSorted(sorted, prefix, cap)
}

// packingNeedSorted is the packingNeedDim core over pre-sorted positive
// items with their prefix sums (prefix[0] = 0): callers that accumulate
// items incrementally (layerSegments) skip the filter/sort/prefix work.
func packingNeedSorted(sorted, prefix []int, cap int) int {
	if len(sorted) == 0 || cap <= 0 {
		return 0
	}
	total := prefix[len(sorted)]
	need := (total + cap - 1) / cap

	// CG cardinality family over distinct size thresholds: κ for the
	// suffix set sorted[i:] is the largest k with prefix[i+k]−prefix[i] ≤
	// cap, found by binary search on the monotone prefix sums.
	for i := 0; i < len(sorted); i++ {
		if i > 0 && sorted[i] == sorted[i-1] {
			continue // same threshold set as the previous item
		}
		count := len(sorted) - i
		k := sort.SearchInts(prefix[i+1:], prefix[i]+cap+1)
		if k == 0 {
			k = 1 // unreachable for validated items; stay safe
		}
		if m := (count + k - 1) / k; m > need {
			need = m
		}
	}

	// Martello–Toth L2 over the same thresholds.
	for i := 0; i < len(sorted) && sorted[i]*2 <= cap; i++ {
		if i > 0 && sorted[i] == sorted[i-1] {
			continue
		}
		K := sorted[i]
		// Partition [K, cap/2], (cap/2, cap−K], (cap−K, ∞) by index.
		half := sort.SearchInts(sorted, cap/2+1) // first item > cap/2
		big := sort.SearchInts(sorted, cap-K+1)  // first item > cap−K
		n1 := len(sorted) - big                  // bin each, no sharing
		n2 := big - half                         // bin each, residue cap−s
		midArea := prefix[half] - prefix[i]      // [K, cap/2] area
		residue := n2*cap - (prefix[big] - prefix[half])
		m := n1 + n2
		if over := midArea - residue; over > 0 {
			m += (over + cap - 1) / cap
		}
		if m > need {
			need = m
		}
	}
	return need
}

// subsetDelayFloor is the per-subset generalization of the layer-cake
// bound, valid for EVERY subset S of s out of N partitions:
//
//	Σ_{p∈S} d_p  ≥  Σ_i (D_i − D_{i+1}) · max(0, need(D_i) − (N − s))
//
// Proof sketch: the N−s partitions outside S can absorb at most (N−s)
// partitions' worth of the area at delay ≥ D_i, so at least
// need(D_i) − (N−s) partitions *inside S* carry a task of delay ≥ D_i and
// therefore have d_p ≥ D_i; integrating over the thresholds gives the
// bound on the sum (equivalently: the j-th largest partition delay is at
// least X_j = max{D_i : need(D_i) ≥ j}, and any s delays sum to at least
// X_{N-s+1} + … + X_N). s = N recovers the aggregate area×delay bound.
func (pr *presolve) subsetDelayFloor(n, s int) float64 {
	slack := n - s
	sum := 0.0
	for _, seg := range pr.segments {
		if k := seg.need - slack; k > 0 {
			sum += (seg.delay - seg.next) * float64(k)
		}
	}
	return sum
}

// boundaryChainFloor bounds the partition delays on one side of boundary p
// of an n-partition model: Σ_{q<p} d_q (suffix=false) or Σ_{q>=p} d_q
// (suffix=true).
//
// The argument, for the prefix side: partitions p..n-1 absorb at most
// (n-p)·cap area per capped resource kind, so the prefix must hold at
// least A = total - (n-p)·cap of it. Any task t placed in the prefix has
// its entire ancestor chain in the prefix too (temporal order), and that
// chain decomposes into in-partition path segments, so
// Σ_{q<p} d_q ≥ ancChain(t). The tasks with ancChain below some threshold
// θ carry a bounded area; the smallest θ whose tasks reach A is therefore
// a valid floor: any prefix with enough area contains a task with
// ancChain ≥ θ. The suffix side is symmetric with descendant chains. The
// bound uses integrality (which tasks exist, not fractions of them), so —
// like the layer-cake bound — it can exceed the LP relaxation bound; the
// cut-validity property tests pin it against brute force.
func (pr *presolve) boundaryChainFloor(n, p int, suffix bool) float64 {
	chain := pr.ancChain
	outside := n - p
	if suffix {
		chain = pr.descChain
		outside = p
	}
	floor := 0.0
	dim := func(demand []int, cap int) {
		total := 0
		for _, d := range demand {
			total += d
		}
		need := total - outside*cap
		if need <= 0 {
			return
		}
		if th := minMaxChainForArea(chain, demand, need); th > floor && !math.IsInf(th, 1) {
			floor = th
		}
	}
	dim(pr.res, pr.board.FPGA.CLBs)
	for k := range pr.extraDemand {
		dim(pr.extraDemand[k], pr.extraCap[k])
	}
	return floor
}

// minMaxChainForArea returns the smallest achievable maximum chain value
// over any task set whose total demand reaches need: tasks sorted by
// ascending chain are taken greedily, and the chain value at which the
// running demand first reaches need is the threshold (any set with that
// much area must include a task at or above it). +Inf when even all tasks
// fall short (the caller's n is packing-infeasible and never solved).
func minMaxChainForArea(chain []float64, demand []int, need int) float64 {
	order := make([]int, len(chain))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return chain[order[a]] < chain[order[b]] })
	cum := 0
	for _, t := range order {
		cum += demand[t]
		if cum >= need {
			return chain[t]
		}
	}
	return math.Inf(1)
}

// maxFeasibleN returns the lowest partition count at which the greedy
// heuristics produce a feasible partitioning, or 0 when they fail. Because
// model feasibility is monotone in N (a partitioning using K ≤ N partitions
// is feasible for the N-partition model), the relax loop never needs to
// probe beyond this value: every higher N is dominated by the greedy
// certificate.
func (pr *presolve) maxFeasibleN() int {
	best := 0
	for _, gr := range pr.greedy {
		if gr.ok && (best == 0 || gr.usedN < best) {
			best = gr.usedN
		}
	}
	return best
}

// packingNeed is the instance-wide bin-packing dual bound: the max of
// packingNeedDim over every capped resource dimension. A candidate
// partition count below it is provably infeasible — no LP, no search, not
// even the exact packing DFS — which is how the relax loop fathoms the
// too-small N probes of near-capacity packings whose area bound undershoots
// the integral minimum.
func (pr *presolve) packingNeed() int {
	need := packingNeedDim(pr.res, pr.board.FPGA.CLBs)
	for k, demand := range pr.extraDemand {
		if m := packingNeedDim(demand, pr.extraCap[k]); m > need {
			need = m
		}
	}
	return need
}

// packingFeasibleAll runs the bin-packing feasibility pre-check for every
// capped resource dimension (CLBs plus the board's capped extra kinds).
// false proves the ILP infeasible at this N without an LP solve.
func (pr *presolve) packingFeasibleAll(n int) bool {
	if !packingFeasible(pr.res, pr.board.FPGA.CLBs, n) {
		return false
	}
	for k, demand := range pr.extraDemand {
		if !packingFeasible(demand, pr.extraCap[k], n) {
			return false
		}
	}
	return true
}

// nodeScratch is the per-call workspace of the node bound, pooled because
// the callback runs on every B&B node (concurrently with Workers > 1).
type nodeScratch struct {
	assigned  []int     // task -> fixed partition, or -1
	used      []int     // CLBs fixed per partition
	chain     []float64 // longest fixed-chain delay ending at task t
	maxChain  []float64 // per-partition longest fixed chain
	extraUsed [][]int   // per kind: fixed demand per partition
	unfixed   []int     // residual-packing scratch: unfixed item sizes
	uprefix   []int     // prefix sums over the sorted unfixed sizes
}

// residualPackingInfeasible is the per-node bin-packing dual bound over one
// capped dimension: the node's unfixed items must fit — by area and by
// count — into the partitions' residual capacities. For the count bound,
// each partition p can host at most maxFit(p) unfixed items, where
// maxFit(p) is how many of the globally smallest unfixed items its residue
// cap − used[p] admits (an overestimate per bin, since the same small
// items are offered to every bin — which is exactly what keeps the bound
// conservative). Σ_p maxFit(p) < #unfixed proves the box empty: no
// completion can place every task. This is the node-level extension of
// packingNeedDim, driven by the branching fixes ("fixed-chain occupancy"):
// the deeper the node, the smaller the residues and the sooner a doomed
// subtree fathoms LP-free.
func residualPackingInfeasible(sc *nodeScratch, demand []int, used []int, cap, N int) bool {
	sc.unfixed = sc.unfixed[:0]
	totalUnfixed := 0
	for t, d := range demand {
		if sc.assigned[t] < 0 && d > 0 {
			sc.unfixed = append(sc.unfixed, d)
			totalUnfixed += d
		}
	}
	if len(sc.unfixed) == 0 {
		return false
	}
	sort.Ints(sc.unfixed)
	sc.uprefix = append(sc.uprefix[:0], 0)
	for _, d := range sc.unfixed {
		sc.uprefix = append(sc.uprefix, sc.uprefix[len(sc.uprefix)-1]+d)
	}
	totalResidue, fit := 0, 0
	for p := 0; p < N; p++ {
		rcap := cap - used[p]
		if rcap <= 0 {
			continue
		}
		totalResidue += rcap
		// Largest k with sum of the k smallest unfixed items <= rcap.
		fit += sort.SearchInts(sc.uprefix[1:], rcap+1)
	}
	return totalUnfixed > totalResidue || fit < len(sc.unfixed)
}

// nodeBoundFunc builds the ilp.Options.NodeBound callback for one model
// layout (partition count N, y-variable indexer yv). The returned bound is
// a valid lower bound on Σ_p d_p over the node's box:
//
//	Σ_p d_p  ≥  max( critical path delay,
//	                 Σ_p longest delay-weighted chain among tasks fixed to p )
//
// (a chain in the ancestor partial order extends to a root-leaf path, so
// each partition's delay d_p is at least the delay of any chain fixed to
// it). feasible=false is returned only on certain infeasibility: a task
// with no allowed partition left, a partition whose fixed tasks exceed a
// resource capacity, a task that no longer fits anywhere, or — the
// bin-packing dual bound — residual capacities that cannot absorb the
// unfixed items by area or by count (residualPackingInfeasible; these
// fathoms are tallied in dualFathoms when non-nil, feeding
// SolveStats.DualBoundFathoms).
func (pr *presolve) nodeBoundFunc(N int, yv func(t, p int) int, dualFathoms *atomic.Int64) func(bounds func(j int) (lo, hi float64)) (float64, bool) {
	nT := pr.g.NumTasks()
	pool := &sync.Pool{New: func() any {
		sc := &nodeScratch{
			assigned: make([]int, nT),
			used:     make([]int, N),
			chain:    make([]float64, nT),
			maxChain: make([]float64, N),
		}
		for range pr.extraKinds {
			sc.extraUsed = append(sc.extraUsed, make([]int, N))
		}
		return sc
	}}
	clbCap := pr.board.FPGA.CLBs
	return func(bounds func(j int) (lo, hi float64)) (float64, bool) {
		sc := pool.Get().(*nodeScratch)
		defer pool.Put(sc)
		for p := 0; p < N; p++ {
			sc.used[p] = 0
			sc.maxChain[p] = 0
		}
		for k := range sc.extraUsed {
			for p := 0; p < N; p++ {
				sc.extraUsed[k][p] = 0
			}
		}
		// Decode the box: fixed partition (lo > ½) and allowed set per task.
		for t := 0; t < nT; t++ {
			sc.assigned[t] = -1
			allowed := 0
			for p := 0; p < N; p++ {
				lo, hi := bounds(yv(t, p))
				if hi > 0.5 {
					allowed++
				}
				if lo > 0.5 {
					sc.assigned[t] = p
				}
			}
			if allowed == 0 {
				return 0, false
			}
			if p := sc.assigned[t]; p >= 0 {
				sc.used[p] += pr.res[t]
				for k := range pr.extraDemand {
					sc.extraUsed[k][p] += pr.extraDemand[k][t]
				}
			}
		}
		// Area feasibility of the fixed assignment.
		for p := 0; p < N; p++ {
			if sc.used[p] > clbCap {
				return 0, false
			}
			for k := range sc.extraUsed {
				if sc.extraUsed[k][p] > pr.extraCap[k] {
					return 0, false
				}
			}
		}
		// Bin-packing dual bound on the residual packing: the unfixed items
		// of every capped dimension must fit the partitions' residues by
		// area and by count.
		if residualPackingInfeasible(sc, pr.res, sc.used, clbCap, N) {
			if dualFathoms != nil {
				dualFathoms.Add(1)
			}
			return 0, false
		}
		for k := range pr.extraDemand {
			if residualPackingInfeasible(sc, pr.extraDemand[k], sc.extraUsed[k], pr.extraCap[k], N) {
				if dualFathoms != nil {
					dualFathoms.Add(1)
				}
				return 0, false
			}
		}
		// Every unfixed task must still fit in some allowed partition next
		// to the tasks already fixed there.
		for t := 0; t < nT; t++ {
			if sc.assigned[t] >= 0 {
				continue
			}
			fits := false
			for p := 0; p < N && !fits; p++ {
				if _, hi := bounds(yv(t, p)); hi <= 0.5 {
					continue
				}
				if sc.used[p]+pr.res[t] > clbCap {
					continue
				}
				ok := true
				for k := range pr.extraDemand {
					if sc.extraUsed[k][p]+pr.extraDemand[k][t] > pr.extraCap[k] {
						ok = false
						break
					}
				}
				fits = ok
			}
			if !fits {
				return 0, false
			}
		}
		// Longest fixed chain per partition: chains in the ancestor order
		// extend to root-leaf paths, so d_p ≥ maxChain[p] for any
		// completion of this box.
		for _, t := range pr.topo {
			p := sc.assigned[t]
			if p < 0 {
				continue
			}
			best := 0.0
			rt := pr.reach[t]
			for w, word := range rt {
				for word != 0 {
					u := w*64 + bits.TrailingZeros64(word)
					word &= word - 1
					if sc.assigned[u] == p && sc.chain[u] > best {
						best = sc.chain[u]
					}
				}
			}
			sc.chain[t] = best + pr.delays[t]
			if sc.chain[t] > sc.maxChain[p] {
				sc.maxChain[p] = sc.chain[t]
			}
		}
		sum := 0.0
		for p := 0; p < N; p++ {
			sum += sc.maxChain[p]
		}
		if floor := pr.sumDelayFloor(); floor > sum {
			sum = floor
		}
		return sum, true
	}
}

package tempart

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/ilp"
	"repro/internal/obs"
)

// This file implements the partition-pattern (branch-and-price) formulation
// of the temporal partitioning problem. Where the row formulation (Eqs. 1-8
// in model.go) decides y[t][p] for every task × partition pair, the pattern
// formulation decides which partition CONTENTS to use: a column is one
// feasible pattern — a DAG-convex, area-feasible task set S with cost
// d(S) = the longest delay-weighted chain inside S — and the restricted
// master selects at most N patterns that cover every task exactly once,
// minimizing Σ d(S). ilp.SolveBP drives the search: Ryan–Foster branching
// on task pairs, an exact DFS pricing problem over the presolve's
// reachability bitsets, and an acyclicity vet (CheckSelection) that cuts
// cyclic pattern-precedence selections off with no-good rows.
//
// Soundness rests on three facts about valid temporal partitionings:
//
//   - Convexity: a partition's content S is convex in the DAG order — if
//     u,v ∈ S and u ⤳ w ⤳ v, then w ∈ S (w's partition is sandwiched
//     between S's and S's). Pricing enumerates only convex sets.
//   - Delay: for a valid assignment, each root-leaf path's in-partition
//     restriction is a chain of S (intermediates cannot leave and return),
//     so d_p equals the longest delay-weighted chain in S — the pattern
//     cost, computable without the path enumeration.
//   - Sufficiency: disjoint convex area-feasible patterns covering all
//     tasks whose pattern-precedence digraph (S_a → S_b iff a DAG edge
//     crosses from S_a to S_b) is acyclic can be topologically ordered
//     into a valid temporal partitioning.
//
// The pattern master's LP bound is the Gilmore–Gomory set-partitioning
// bound, which dominates the area ratio and (with the convexity and chain
// costs) the row formulation's relaxation on mixed-cardinality packings —
// the regime where the row model's search degenerates into an exponential
// symmetric crawl. The formulation is gated to instances whose worst-case
// boundary traffic fits the on-board memory (patternsApplicable): exactly
// the instances whose memory rows the row model drops too, so neither
// formulation models Eq. 3 when they compete.

// patternPricer is the pricing problem of the pattern formulation: find
// feasible patterns with negative reduced cost d(S) − Σ λ_t − μ under the
// node's Ryan–Foster constraints. One pricer serves a whole SolveBP run.
type patternPricer struct {
	pre   *presolve
	words int
	desc  [][]uint64 // strict descendants bitset per task (dual of pre.reach)
	order []int      // topological candidate order (pre.topo)
	pos   []int      // task -> position in order
	// sufMinRes[i]: the smallest CLB demand among order[i:] — lets the DFS
	// abandon a branch as soon as no remaining task can fit the residual
	// area (emissions only happen at include steps).
	sufMinRes []int
	// unitCost prices every pattern at 1 instead of d(S): the master then
	// bounds the minimum number of patterns (the set-partitioning packing
	// bound patternPackBound exposes to the property tests).
	unitCost bool
	budget   int // DFS step budget per pricing call; exhausted => inexact

	// scratch, reused across pricing calls (SolveBP prices sequentially)
	member   []uint64
	descAll  []uint64
	inSet    []bool
	chain    []float64
	saveDesc [][]uint64
}

// pricerBudget bounds one pricing call's DFS steps. Beyond it the round is
// reported inexact, which SolveBP handles soundly (no bound claims).
const pricerBudget = 1_000_000

// maxPricedCols caps the columns returned per pricing round (best reduced
// cost first); more would bloat the master faster than it helps.
const maxPricedCols = 40

func newPatternPricer(pre *presolve, unitCost bool) *patternPricer {
	nT := len(pre.delays)
	words := (nT + 63) / 64
	pp := &patternPricer{
		pre:      pre,
		words:    words,
		desc:     make([][]uint64, nT),
		order:    pre.topo,
		pos:      make([]int, nT),
		unitCost: unitCost,
		budget:   pricerBudget,
		member:   make([]uint64, words),
		descAll:  make([]uint64, words),
		inSet:    make([]bool, nT),
		chain:    make([]float64, nT),
	}
	flat := make([]uint64, nT*words)
	for t := 0; t < nT; t++ {
		pp.desc[t] = flat[t*words : (t+1)*words]
	}
	// Strict-descendant bitsets in reverse topological order:
	// desc[t] = ∪_{t→v} desc[v] ∪ {v}.
	g := pre.g
	for i := len(pp.order) - 1; i >= 0; i-- {
		t := pp.order[i]
		dt := pp.desc[t]
		for _, v := range g.Succs(t) {
			dv := pp.desc[v]
			for w := range dt {
				dt[w] |= dv[w]
			}
			dt[v>>6] |= 1 << uint(v&63)
		}
	}
	pp.sufMinRes = make([]int, nT+1)
	pp.sufMinRes[nT] = 1 << 30
	for i := nT - 1; i >= 0; i-- {
		pp.sufMinRes[i] = pp.sufMinRes[i+1]
		if r := pre.res[pp.order[i]]; r < pp.sufMinRes[i] {
			pp.sufMinRes[i] = r
		}
	}
	for i, t := range pp.order {
		pp.pos[t] = i
	}
	pp.saveDesc = make([][]uint64, nT)
	saveFlat := make([]uint64, nT*words)
	for i := 0; i < nT; i++ {
		pp.saveDesc[i] = saveFlat[i*words : (i+1)*words]
	}
	return pp
}

// patternDelay computes d(S): the longest delay-weighted chain among the
// items (a chain in the ancestor order extends to a root-leaf path whose
// in-partition restriction is exactly the chain).
func (pp *patternPricer) patternDelay(items []int) float64 {
	ord := append([]int(nil), items...)
	sort.Slice(ord, func(a, b int) bool { return pp.pos[ord[a]] < pp.pos[ord[b]] })
	chain := make([]float64, len(ord))
	best := 0.0
	for i, t := range ord {
		c := 0.0
		rt := pp.pre.reach[t]
		for j := 0; j < i; j++ {
			u := ord[j]
			if rt[u>>6]&(1<<uint(u&63)) != 0 && chain[j] > c {
				c = chain[j]
			}
		}
		chain[i] = c + pp.pre.delays[t]
		if chain[i] > best {
			best = chain[i]
		}
	}
	return best
}

// patternCost is the master objective coefficient of a pattern.
func (pp *patternPricer) patternCost(items []int) float64 {
	if pp.unitCost {
		return 1
	}
	return pp.patternDelay(items)
}

// patternFeasible reports whether items is a feasible partition content:
// area-feasible in every capped dimension and convex in the DAG order.
func (pp *patternPricer) patternFeasible(items []int) bool {
	pre := pp.pre
	area := 0
	extra := make([]int, len(pre.extraCap))
	member := make([]uint64, pp.words)
	descAll := make([]uint64, pp.words)
	for _, t := range items {
		if t < 0 || t >= len(pre.delays) {
			return false
		}
		member[t>>6] |= 1 << uint(t&63)
		dt := pp.desc[t]
		for w := range descAll {
			descAll[w] |= dt[w]
		}
		area += pre.res[t]
		for k := range pre.extraDemand {
			extra[k] += pre.extraDemand[k][t]
		}
	}
	if area > pre.board.FPGA.CLBs {
		return false
	}
	for k, used := range extra {
		if used > pre.extraCap[k] {
			return false
		}
	}
	// Convexity: no excluded task may be both a descendant of a member and
	// an ancestor of a member.
	for _, t := range items {
		rt := pre.reach[t]
		for w := range rt {
			if rt[w]&descAll[w]&^member[w] != 0 {
				return false
			}
		}
	}
	return true
}

// price is the ilp.BPPricer: an exact DFS over the topological candidate
// order that enumerates every convex, area-feasible pattern compatible with
// the node's Ryan–Foster state, emitting the best negative-reduced-cost
// ones. Convexity is maintained by the taint rule — a task whose ancestor
// set intersects the current members' descendants outside the member set
// can never join (the intermediate was already decided out) — and the
// search is pruned by the suffix of positive duals (the reduced cost of any
// extension is bounded below by cost − λ(S) − μ − Σ_{j≥i, λ>0} λ_j, since
// the chain cost only grows along a branch). Exhausting the step budget
// reports the round inexact; SolveBP then makes no bound claims from it.
func (pp *patternPricer) price(lambda []float64, mu float64, same, differ [][2]int, forbidden map[string]bool) ([]ilp.BPColumn, bool) {
	pre := pp.pre
	nT := len(pre.delays)
	clbCap := pre.board.FPGA.CLBs
	const eps = 1e-9

	posSuf := make([]float64, nT+1)
	for i := nT - 1; i >= 0; i-- {
		posSuf[i] = posSuf[i+1]
		if l := lambda[pp.order[i]]; l > 0 {
			posSuf[i] += l
		}
	}
	samePart := make([][]int, nT)
	differPart := make([][]int, nT)
	for _, ab := range same {
		samePart[ab[0]] = append(samePart[ab[0]], ab[1])
		samePart[ab[1]] = append(samePart[ab[1]], ab[0])
	}
	for _, ab := range differ {
		differPart[ab[0]] = append(differPart[ab[0]], ab[1])
		differPart[ab[1]] = append(differPart[ab[1]], ab[0])
	}

	for w := range pp.member {
		pp.member[w] = 0
		pp.descAll[w] = 0
	}
	for t := 0; t < nT; t++ {
		pp.inSet[t] = false
	}
	cur := make([]int, 0, nT)
	extraUsed := make([]int, len(pre.extraCap))
	areaRes := 0
	lamSum := 0.0
	steps := 0
	inexact := false

	type cand struct {
		items []int
		cost  float64
		rc    float64
	}
	var best []cand
	worst := -1 // index of the worst (largest rc) kept candidate
	record := func(cost, rc float64) {
		items := append([]int(nil), cur...)
		if len(best) < maxPricedCols {
			best = append(best, cand{items, cost, rc})
			if worst < 0 || rc > best[worst].rc {
				worst = len(best) - 1
			}
			return
		}
		if rc >= best[worst].rc {
			return
		}
		best[worst] = cand{items, cost, rc}
		worst = 0
		for k := 1; k < len(best); k++ {
			if best[k].rc > best[worst].rc {
				worst = k
			}
		}
	}

	var dfs func(i int, curDelay float64)
	dfs = func(i int, curDelay float64) {
		if inexact {
			return
		}
		steps++
		if steps > pp.budget {
			inexact = true
			return
		}
		// Reduced-cost prune: no extension from here can go negative.
		costLB := curDelay
		if pp.unitCost {
			costLB = 1 // every emitted pattern is nonempty
		}
		if costLB-lamSum-mu-posSuf[i] >= -eps {
			return
		}
		if i == nT {
			return
		}
		// Area prune: emissions only happen at include steps, and no
		// remaining task fits the residual area.
		if areaRes+pp.sufMinRes[i] > clbCap {
			return
		}
		t := pp.order[i]

		// Include branch.
		canInclude := areaRes+pre.res[t] <= clbCap
		for k := range pre.extraDemand {
			if !canInclude {
				break
			}
			if extraUsed[k]+pre.extraDemand[k][t] > pre.extraCap[k] {
				canInclude = false
			}
		}
		if canInclude {
			// Taint rule: an excluded intermediate makes t unreachable.
			rt := pre.reach[t]
			for w := range rt {
				if rt[w]&pp.descAll[w]&^pp.member[w] != 0 {
					canInclude = false
					break
				}
			}
		}
		if canInclude {
			for _, u := range differPart[t] {
				if pp.inSet[u] {
					canInclude = false
					break
				}
			}
		}
		if canInclude {
			// A same-partner already decided out forbids t.
			for _, u := range samePart[t] {
				if pp.pos[u] < i && !pp.inSet[u] {
					canInclude = false
					break
				}
			}
		}
		if canInclude {
			copy(pp.saveDesc[i], pp.descAll)
			pp.member[t>>6] |= 1 << uint(t&63)
			pp.inSet[t] = true
			dt := pp.desc[t]
			for w := range pp.descAll {
				pp.descAll[w] |= dt[w]
			}
			areaRes += pre.res[t]
			for k := range pre.extraDemand {
				extraUsed[k] += pre.extraDemand[k][t]
			}
			lamSum += lambda[t]
			c := 0.0
			rt := pre.reach[t]
			for _, u := range cur {
				if rt[u>>6]&(1<<uint(u&63)) != 0 && pp.chain[u] > c {
					c = pp.chain[u]
				}
			}
			pp.chain[t] = c + pre.delays[t]
			nd := curDelay
			if pp.chain[t] > nd {
				nd = pp.chain[t]
			}
			cur = append(cur, t)

			cost := nd
			if pp.unitCost {
				cost = 1
			}
			if rc := cost - lamSum - mu; rc < -eps {
				complete := true
			emit:
				for _, u := range cur {
					for _, v := range samePart[u] {
						if !pp.inSet[v] {
							complete = false
							break emit
						}
					}
				}
				if complete && !forbidden[ilp.BPKey(cur)] {
					record(cost, rc)
				}
			}
			dfs(i+1, nd)

			cur = cur[:len(cur)-1]
			lamSum -= lambda[t]
			for k := range pre.extraDemand {
				extraUsed[k] -= pre.extraDemand[k][t]
			}
			areaRes -= pre.res[t]
			copy(pp.descAll, pp.saveDesc[i])
			pp.inSet[t] = false
			pp.member[t>>6] &^= 1 << uint(t&63)
		}

		// Exclude branch: dead when a same-partner is already in the set
		// (every deeper emission would carry the partner without t).
		for _, u := range samePart[t] {
			if pp.inSet[u] {
				return
			}
		}
		dfs(i+1, curDelay)
	}
	dfs(0, 0)

	sort.Slice(best, func(a, b int) bool { return best[a].rc < best[b].rc })
	cols := make([]ilp.BPColumn, len(best))
	for k, c := range best {
		cols[k] = ilp.BPColumn{Items: c.items, Cost: c.cost}
	}
	return cols, inexact
}

// seedColumns builds the restricted master's initial columns: every
// singleton (feasible by task validation), the cached greedy heuristics'
// partition blocks (unless warm starts are disabled — they come from the
// list partitioner), and one antichain per Chvátal–Gomory cardinality
// family (pairwise-incomparable sets are trivially convex, and the CG
// families name exactly the task sets whose cardinality interplay drives
// the packing bound).
func (pp *patternPricer) seedColumns(withGreedy bool) []ilp.BPColumn {
	pre := pp.pre
	nT := len(pre.delays)
	var seeds []ilp.BPColumn
	add := func(items []int) {
		seeds = append(seeds, ilp.BPColumn{Items: items, Cost: pp.patternCost(items)})
	}
	for t := 0; t < nT; t++ {
		add([]int{t})
	}
	if withGreedy {
		for _, gr := range pre.greedy {
			if !gr.ok {
				continue
			}
			blocks := make([][]int, gr.usedN)
			for t, p := range gr.assign {
				blocks[p] = append(blocks[p], t)
			}
			for _, b := range blocks {
				if len(b) >= 2 && pp.patternFeasible(b) {
					add(b)
				}
			}
		}
	}
	incomparable := func(u, v int) bool {
		return pre.reach[u][v>>6]&(1<<uint(v&63)) == 0 &&
			pre.reach[v][u>>6]&(1<<uint(u&63)) == 0
	}
	for _, fam := range pre.cgFams {
		var anti []int
		area := 0
		extra := make([]int, len(pre.extraCap))
	fam:
		for _, t := range fam.tasks {
			if area+pre.res[t] > pre.board.FPGA.CLBs {
				continue
			}
			for k := range pre.extraDemand {
				if extra[k]+pre.extraDemand[k][t] > pre.extraCap[k] {
					continue fam
				}
			}
			for _, u := range anti {
				if !incomparable(t, u) {
					continue fam
				}
			}
			anti = append(anti, t)
			area += pre.res[t]
			for k := range pre.extraDemand {
				extra[k] += pre.extraDemand[k][t]
			}
		}
		if len(anti) >= 2 {
			add(anti)
		}
	}
	return seeds
}

// selectionOrder topologically orders a selection's patterns by their
// precedence digraph (S_a → S_b iff a DAG edge crosses from S_a to S_b).
// ok=false reports a cycle — the selection is not a valid partitioning.
// Ties break on the smallest member topological position, so the order is
// deterministic.
func (pp *patternPricer) selectionOrder(sel [][]int) ([]int, bool) {
	k := len(sel)
	nT := len(pp.pre.delays)
	patOf := make([]int, nT)
	for t := range patOf {
		patOf[t] = -1
	}
	minPos := make([]int, k)
	for pi, items := range sel {
		minPos[pi] = nT
		for _, t := range items {
			if t < 0 || t >= nT {
				return nil, false
			}
			patOf[t] = pi
			if pp.pos[t] < minPos[pi] {
				minPos[pi] = pp.pos[t]
			}
		}
	}
	adj := make([][]bool, k)
	indeg := make([]int, k)
	for pi := range adj {
		adj[pi] = make([]bool, k)
	}
	for _, e := range pp.pre.g.Edges() {
		a, b := patOf[e.From], patOf[e.To]
		if a >= 0 && b >= 0 && a != b && !adj[a][b] {
			adj[a][b] = true
			indeg[b]++
		}
	}
	order := make([]int, 0, k)
	done := make([]bool, k)
	for len(order) < k {
		pick := -1
		for pi := 0; pi < k; pi++ {
			if done[pi] || indeg[pi] != 0 {
				continue
			}
			if pick < 0 || minPos[pi] < minPos[pick] {
				pick = pi
			}
		}
		if pick < 0 {
			return nil, false // cycle
		}
		done[pick] = true
		order = append(order, pick)
		for qi := 0; qi < k; qi++ {
			if adj[pick][qi] {
				indeg[qi]--
			}
		}
	}
	return order, true
}

// selectionAcyclic is the ilp.BPOptions.CheckSelection callback: a
// property of the selection alone, so SolveBP's no-good rows are globally
// valid.
func (pp *patternPricer) selectionAcyclic(sel [][]int) bool {
	_, ok := pp.selectionOrder(sel)
	return ok
}

// patternsApplicable gates the pattern formulation to instances whose
// worst-case boundary traffic fits the on-board memory: exactly the
// instances whose memory rows buildModel drops as never-binding, so the
// pattern master (which has no memory rows) solves the same problem.
func patternsApplicable(g *dfg.Graph, board arch.Board) bool {
	total := 0
	for _, e := range g.Edges() {
		total += e.Data
	}
	return total <= board.Memory.Words
}

// solveForNPatterns is the pattern-formulation twin of solveForN: build the
// pricer, run branch-and-price at the fixed partition budget N, and map the
// winning selection back to a task assignment. The return contract matches
// solveForN exactly — (nil, nil) relaxes N, errors abort the relax loop,
// Timeout-with-incumbent yields an anytime Partial result.
func solveForNPatterns(in Input, pre *presolve, paths [][]int, N int, tally *proofTally) (*Partitioning, error) {
	g := in.Graph
	nT := g.NumTasks()
	buildStart := time.Now()
	buildSpan := in.Trace.BeginArg(obs.PhaseModelBuild, int64(N))
	pp := newPatternPricer(pre, false)
	sumDelay := 0.0
	integral := true
	for t := 0; t < nT; t++ {
		d := g.Task(t).Delay
		sumDelay += d
		if d != math.Trunc(d) {
			integral = false
		}
	}
	opts := ilp.BPOptions{
		NumItems: nT,
		Count:    N,
		// Artificial cost mirrors the ilp layer's big-M discipline: far above
		// any feasible objective (Σ d(S) ≤ Σ_t D(t) over an exact cover), far
		// below overflow.
		ArtCost:        4*sumDelay + 16,
		MaxFeasObj:     sumDelay,
		Seeds:          pp.seedColumns(!in.DisableWarmStart),
		Pricer:         pp.price,
		CheckSelection: pp.selectionAcyclic,
		ObjInteger:     integral,
		MaxNodes:       in.ILP.MaxNodes,
		Deadline:       in.ILP.Deadline,
		Stop:           in.ILP.Stop,
		Context:        in.ILP.Context,
		Pricing:        in.ILP.Pricing,
	}
	buildTime := time.Since(buildStart)
	buildSpan.End()

	solveStart := time.Now()
	searchSpan := in.Trace.BeginArg(obs.PhaseSearch, int64(N))
	var sol *ilp.BPSolution
	var err error
	obs.Do(in.ILP.Context, "phase", obs.PhaseSearch, func(context.Context) {
		sol, err = ilp.SolveBP(opts)
	})
	if err != nil {
		searchSpan.End()
		return nil, err
	}
	if in.Trace != nil {
		in.Trace.Counter(obs.CounterNodes, int64(sol.Nodes))
		in.Trace.Counter(obs.CounterLPPivots, int64(sol.Solver.Pivots))
		in.Trace.Counter(obs.CounterLPRefactor, int64(sol.Solver.Refactorizations))
		in.Trace.Counter(obs.CounterLPFlips, int64(sol.Solver.BoundFlips))
	}
	searchSpan.End()
	solveTime := time.Since(solveStart)

	switch sol.Status {
	case ilp.Infeasible:
		if !sol.BoundTrusted {
			return nil, fmt.Errorf("tempart: branch-and-price exhausted at N=%d without a trusted infeasibility proof", N)
		}
		return nil, nil // relax N
	case ilp.Unbounded:
		return nil, errors.New("tempart: pattern master unbounded (internal error)")
	case ilp.Timeout:
		if len(sol.Columns) == 0 {
			return nil, fmt.Errorf("%w (N=%d)", ErrDeadline, N)
		}
	case ilp.Limit:
		if len(sol.Columns) == 0 {
			return nil, fmt.Errorf("tempart: search limit hit with no feasible partitioning at N=%d", N)
		}
	}

	order, ok := pp.selectionOrder(sol.Columns)
	if !ok {
		return nil, errors.New("tempart: accepted selection has cyclic pattern precedence (internal error)")
	}
	assign := make([]int, nT)
	for t := range assign {
		assign[t] = -1
	}
	for idx, pi := range order {
		for _, t := range sol.Columns[pi] {
			assign[t] = idx
		}
	}
	for t, p := range assign {
		if p < 0 {
			return nil, fmt.Errorf("tempart: task %d uncovered in pattern selection", t)
		}
	}
	if err := CheckFeasible(g, in.Board, assign, N); err != nil {
		return nil, fmt.Errorf("tempart: pattern selection infeasible (internal error): %w", err)
	}
	delays := EvaluateDelays(g, assign, N, paths)
	part := &Partitioning{
		N:       N,
		Assign:  assign,
		Delays:  delays,
		Latency: Latency(in.Board, delays),
		Optimal: sol.Status == ilp.Optimal && sol.BoundTrusted,
		Stats: SolveStats{
			N: N, Vars: nT + sol.ColumnsGenerated, Rows: nT + 1, Paths: len(paths),
			Nodes: sol.Nodes, LPIterations: sol.LPIterations,
			ColumnsGenerated: sol.ColumnsGenerated,
			PricingRounds:    sol.PricingRounds,
			BuildTime:        buildTime, SolveTime: solveTime,
			Solver:      sol.Solver,
			Pricing:     in.ILP.Pricing.String(),
			Formulation: FormulationPatterns,
		},
	}
	part.Partial = sol.Status == ilp.Timeout
	part.BoundTrusted = sol.BoundTrusted
	if part.Optimal {
		part.LatencyBound = part.Latency
	} else {
		// SolveBP's Bound is a valid lower bound on Σ d(S) (0 when the root
		// never converged — still sound, just weak).
		part.LatencyBound = float64(N)*in.Board.FPGA.ReconfigTime + sol.Bound
		if part.LatencyBound > part.Latency {
			part.LatencyBound = part.Latency
		}
	}
	if part.LatencyBound > 0 {
		part.Gap = part.Latency - part.LatencyBound
	}
	return part, nil
}

// patternPackBound returns the unit-cost pattern master's root bound: the
// converged column-generation LP bound on the minimum number of patterns
// any cover needs. The property tests compare it against the combinatorial
// packingNeed floor — the pattern bound must dominate it (rounded up),
// since convexity only shrinks the pattern set. trusted=false reports that
// pricing did not converge at the root (budget), making the bound only
// restricted-master-valid.
func patternPackBound(g *dfg.Graph, board arch.Board) (float64, bool) {
	pre := newPresolve(g, board)
	pp := newPatternPricer(pre, true)
	// The probe is offline (property tests, not the solve path), so it can
	// afford a much deeper DFS: a converged root is the whole point here,
	// and wide unit-cost instances (parallel FIR banks) need the headroom.
	pp.budget = 16 * pricerBudget
	nT := g.NumTasks()
	if nT == 0 {
		return 0, true
	}
	sol, err := ilp.SolveBP(ilp.BPOptions{
		NumItems:   nT,
		Count:      nT,
		ArtCost:    4*float64(nT) + 16,
		MaxFeasObj: float64(nT),
		Seeds:      pp.seedColumns(true),
		Pricer:     pp.price,
		ObjInteger: true,
		MaxNodes:   1,
	})
	if err != nil {
		return 0, false
	}
	return sol.Bound, sol.BoundTrusted
}

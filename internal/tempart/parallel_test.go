package tempart

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/ilp"
)

// randomDAG builds a random layered task graph that needs several
// partitions under the given board.
func randomDAG(seed int64, tasks int) *dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.New(fmt.Sprintf("rand%d", seed))
	for i := 0; i < tasks; i++ {
		g.MustAddTask(dfg.Task{
			Name:      fmt.Sprintf("t%d", i),
			Resources: 20 + rng.Intn(50),
			Delay:     float64(10 + rng.Intn(90)),
			ReadEnv:   rng.Intn(3),
			WriteEnv:  rng.Intn(3),
		})
	}
	for i := 0; i < tasks; i++ {
		for j := i + 1; j < tasks; j++ {
			if rng.Intn(4) == 0 {
				_ = g.AddEdgeByID(i, j, 1+rng.Intn(4))
			}
		}
	}
	return g
}

// TestSpeculativeNMatchesSequential: the speculative relax-N loop must
// return the same partition count, latency, and optimality flag as the
// sequential loop on a spread of random instances.
func TestSpeculativeNMatchesSequential(t *testing.T) {
	b := board(100, 1024, 500)
	for seed := int64(0); seed < 8; seed++ {
		g := randomDAG(seed, 7)
		seq, err := Solve(Input{Graph: g, Board: b})
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		spec, err := Solve(Input{Graph: g, Board: b, SpeculateN: 3})
		if err != nil {
			t.Fatalf("seed %d speculative: %v", seed, err)
		}
		if spec.N != seq.N {
			t.Fatalf("seed %d: speculative N=%d, sequential N=%d", seed, spec.N, seq.N)
		}
		if math.Abs(spec.Latency-seq.Latency) > 1e-6 {
			t.Fatalf("seed %d: speculative latency %g, sequential %g", seed, spec.Latency, seq.Latency)
		}
		if spec.Optimal != seq.Optimal {
			t.Fatalf("seed %d: speculative optimal=%v, sequential=%v", seed, spec.Optimal, seq.Optimal)
		}
		if spec.Stats.RelaxSteps != seq.Stats.RelaxSteps {
			t.Fatalf("seed %d: relax steps %d vs %d", seed, spec.Stats.RelaxSteps, seq.Stats.RelaxSteps)
		}
	}
}

// TestWorkersMatchSequentialPartitioning: multi-worker B&B must find the
// same optimal latency as the sequential search on the tempart models.
func TestWorkersMatchSequentialPartitioning(t *testing.T) {
	b := board(100, 1024, 500)
	for seed := int64(0); seed < 6; seed++ {
		g := randomDAG(100+seed, 7)
		seq, err := Solve(Input{Graph: g, Board: b})
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		par, err := Solve(Input{Graph: g, Board: b, ILP: ilp.Options{Workers: 3}})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if par.N != seq.N || math.Abs(par.Latency-seq.Latency) > 1e-6 {
			t.Fatalf("seed %d: parallel N=%d latency=%g, sequential N=%d latency=%g",
				seed, par.N, par.Latency, seq.N, seq.Latency)
		}
		if err := CheckFeasible(g, b, par.Assign, par.N); err != nil {
			t.Fatalf("seed %d: parallel assignment infeasible: %v", seed, err)
		}
	}
}

// TestWarmStartEngages asserts the B&B actually reuses solver state: on a
// multi-node search the warm-solve count must dominate the cold rebuilds.
func TestWarmStartEngages(t *testing.T) {
	g := randomDAG(3, 8)
	p, err := Solve(Input{Graph: g, Board: board(100, 1024, 500), DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats.Solver
	if st.Solves < 2 {
		t.Skipf("search solved in %d nodes; nothing to warm start", st.Solves)
	}
	if st.WarmSolves == 0 {
		t.Errorf("no warm solves across %d node LPs (stats %+v)", st.Solves, st)
	}
}

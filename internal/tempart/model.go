// Package tempart implements the paper's core contribution: optimal
// temporal partitioning of a behavior-level task graph over N run-time
// configurations of an FPGA, formulated as an integer linear program
// (Sec. 2.1, Eqs. 1-8) and solved by internal/ilp.
//
// The model, for a fixed partition bound N (partitions are 0-indexed here):
//
//	variables   y[t][p] ∈ {0,1}   task t placed in partition p
//	            w[p][e] ∈ [0,1]   edge e crosses boundary after partition p
//	            d[p]    ≥ 0       execution delay of partition p
//
//	uniqueness  Σ_p y[t][p] == 1                                    (Eq. 1)
//	order       y[t2][p2] + Σ_{p1>p2} y[t1][p1] <= 1  ∀ t1→t2, p2   (Eq. 2)
//	memory      Σ_e B(e)·w[p][e] <= M_max             ∀ boundary p  (Eq. 3)
//	linearize   w[p][e] >= Σ_{p1<=p} y[t1][p1] + Σ_{p2>p} y[t2][p2] - 1
//	                                                  (Eqs. 4-5 linearized)
//	resource    Σ_t R(t)·y[t][p] <= R_max             ∀ p           (Eq. 6)
//	path delay  Σ_{t∈π} D(t)·y[t][p] <= d[p]          ∀ path π, p   (Eq. 7)
//	objective   minimize Σ_p d[p]   (N·CT added as a constant)      (Eq. 8)
//
// A preprocessing step computes the partition lower bound
// N0 = ⌈Σ_t R(t) / R_max⌉ and the bound is relaxed by one partition at a
// time until the model is feasible, exactly as in the paper. With
// Input.SpeculateN > 1 the relax loop instead probes several candidate
// partition counts concurrently and returns the lowest feasible N — the
// same answer, without serializing infeasibility proofs behind each other;
// ilp.Options.Workers additionally parallelizes each probe's search tree.
package tempart

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/ilp"
	"repro/internal/lp"
	"repro/internal/obs"
)

// Input bundles the three inputs of the partitioning tool: behavior
// specification (the task graph, with synthesis costs already annotated by
// the HLS estimator) and the target architecture parameters.
type Input struct {
	Graph *dfg.Graph
	Board arch.Board

	// MaxPartitions caps the relax-N loop (default: lower bound + 8).
	MaxPartitions int
	// PathCap bounds exact path enumeration for Eq. 7 (default 20000).
	PathCap int
	// Formulation selects the solver backend each relax-N probe runs:
	// FormulationRows (the default, also the empty string) is the Eqs. 1-8
	// y/w/d row model; FormulationPatterns is the branch-and-price
	// partition-pattern master (bprice.go). Both prove the same optima —
	// the formulation-equivalence tests pin that — but the pattern master's
	// set-partitioning bound closes mixed-cardinality packings the row
	// model crawls through. Instances whose worst-case boundary traffic
	// exceeds the on-board memory fall back to rows (the pattern master
	// has no Eq. 3 rows; see patternsApplicable).
	Formulation string
	// NoSymmetryBreaking disables the ordering constraints between
	// provably interchangeable tasks. They are on by default: they never
	// change the optimum and substantially prune the search on regular
	// DSP graphs. Disable only to measure the ablation.
	NoSymmetryBreaking bool
	// SpeculateN, when > 1, runs the relax-N loop speculatively: up to
	// SpeculateN candidate partition counts (N0, N0+1, ...) are built and
	// solved concurrently, and the lowest feasible N wins — exactly the
	// answer the sequential loop produces, without serializing the
	// infeasibility proofs of the too-small Ns behind each other. Probes
	// made moot by a lower feasible N are aborted through ilp.Options.Stop.
	SpeculateN int
	// DisableWarmStart suppresses the list-partitioner warm start (for
	// ablation benchmarks).
	DisableWarmStart bool
	// NoCuts disables the whole cutting-plane contribution of this PR: the
	// cover / temporal-order clique / layer-cake subset separators inside
	// the branch and bound AND the build-time boundary chain-area root
	// cuts, reproducing the PR 3 model and search exactly. The optimum
	// never depends on it — cuts are valid inequalities — so this exists
	// for ablation benchmarks and the cut-validity equivalence tests. The
	// PR 3 aggregate presolve cut (Σ d_p ≥ combinatorial floor) stays on.
	NoCuts bool
	// Trace, when non-nil, receives the solve's phase timeline: presolve /
	// relax-N probe / model-build / root-cut / search spans, LP kernel
	// counter deltas at search-span boundaries, and the ilp layer's
	// sampled node events (the recorder is handed down through
	// ilp.Options.Trace). A nil Trace is free — every recording site is a
	// nil-receiver no-op — so the batch and benchmark paths pay nothing.
	// Under SpeculateN the probe spans of concurrent candidates overlap;
	// span durations then sum to more than wall clock by design.
	Trace *obs.Recorder
	// ILP tunes the branch-and-bound search.
	ILP ilp.Options
}

// SolveStats records model and search sizes for reporting.
type SolveStats struct {
	N            int
	Vars         int
	Rows         int
	Paths        int
	Nodes        int
	LPIterations int
	BuildTime    time.Duration
	SolveTime    time.Duration
	RelaxSteps   int
	// PrunedCombinatorial counts B&B nodes fathomed by the presolve's
	// combinatorial bound (DAG longest chains + area packing) without an
	// LP solve.
	PrunedCombinatorial int
	// LPSolvesSkipped counts all B&B nodes discarded without running the
	// simplex (combinatorial fathoming plus incumbent-bound pruning).
	LPSolvesSkipped int
	// NProbesPruned counts candidate partition counts rejected by presolve
	// (packing infeasibility or greedy-feasibility dominance) without
	// building or solving a model.
	NProbesPruned int
	// CutsAdded counts the cutting planes the separators added to the
	// search (pool-deduplicated), and SeparationRounds the node LP
	// re-solves they triggered.
	CutsAdded        int
	SeparationRounds int
	// ConflictCuts counts the no-good cuts learned from
	// infeasibility-fathomed subtrees across every relax-N probe (including
	// probes that ended in an infeasibility proof), CGCuts the
	// Chvátal–Gomory cardinality cuts in play (root rows baked into the
	// winning model plus cg-* cuts separated during search), and
	// DualBoundFathoms how often the bin-packing dual bound fired: N probes
	// rejected because packingNeed exceeded the candidate count, plus B&B
	// nodes whose residual packing proved the box empty LP-free.
	ConflictCuts     int
	CGCuts           int
	DualBoundFathoms int
	// ColumnsGenerated and PricingRounds report the branch-and-price
	// engine's column-generation effort: master columns appended beyond
	// the artificials and pricing-problem invocations across the whole
	// search. Zero under the row formulation.
	ColumnsGenerated int
	PricingRounds    int
	// Solver aggregates the warm/cold solve and pivot counts of the
	// underlying simplex engine across the whole B&B search.
	Solver lp.SolverStats
	// Pricing names the dual pricing rule the simplex engine ran with
	// ("devex" or "steepest-edge"); empty for non-ILP results.
	Pricing string
	// Formulation names the model the winning probe actually solved
	// ("rows" or "patterns"); empty for non-ILP results. It can differ
	// from Input.Formulation when the pattern backend declined the
	// instance (inter-partition data) and fell back to rows.
	Formulation string
}

// Partitioning is a temporal partitioning result.
type Partitioning struct {
	// N is the number of temporal partitions.
	N int
	// Assign maps task index -> partition (0-based, execution order).
	Assign []int
	// Delays holds d_p per partition in ns.
	Delays []float64
	// Latency is N*CT + Σ d_p in ns (Eq. 8).
	Latency float64
	// Optimal reports whether the ILP proved optimality.
	Optimal bool
	// Partial reports an anytime result: a wall-clock deadline stopped the
	// search and the best incumbent in hand was returned instead of a
	// proven optimum (Optimal is always false then). LatencyBound and Gap
	// quantify how far it can be from the true optimum.
	Partial bool
	// LatencyBound is the proven lower bound (ns) on the achievable
	// latency: equal to Latency for Optimal results, and derived from the
	// search's objective bound (plus the constant N·reconfig term) for
	// truncated ones. Zero when no bound was established.
	LatencyBound float64
	// Gap is Latency - LatencyBound (0 when Optimal).
	Gap float64
	// BoundTrusted mirrors ilp.Solution.BoundTrusted: false when the
	// search had to discard nodes whose LP hit the iteration limit, which
	// degrades exhaustiveness claims but keeps LatencyBound valid.
	BoundTrusted bool
	// Fallback reports that the result came from the greedy list
	// partitioner after the ILP produced nothing before its deadline (set
	// by the service layer's degradation ladder, never by Solve itself).
	Fallback bool
	// Stats carries solver statistics.
	Stats SolveStats
}

// Errors.
var (
	ErrTaskTooLarge = errors.New("tempart: a task exceeds the FPGA resource capacity")
	ErrNoSolution   = errors.New("tempart: no feasible partitioning within the partition cap")
	// ErrDeadline reports that a wall-clock deadline expired before any
	// feasible partitioning was found — the caller should degrade to a
	// cheaper backend (the service layer falls back to the greedy list
	// partitioner) rather than retry.
	ErrDeadline = errors.New("tempart: deadline expired before any feasible partitioning was found")
)

// MinPartitions returns the preprocessing lower bound: the maximum of
//   - ⌈Σ demand / capacity⌉ per capped resource type (the paper's
//     ⌈Σ R(t) / R_max⌉ for the single-resource case), and
//   - the number of tasks larger than half the FPGA (no two such tasks
//     ever share a partition — a valid bin-packing bound that saves the
//     relax loop from expensive infeasibility proofs on coarse graphs).
func MinPartitions(g *dfg.Graph, board arch.Board) int {
	if g.NumTasks() == 0 {
		return 0
	}
	n := (g.TotalResources() + board.FPGA.CLBs - 1) / board.FPGA.CLBs
	for kind, cap := range board.FPGA.ExtraCapacity {
		if cap <= 0 {
			continue
		}
		if m := (g.TotalExtra(kind) + cap - 1) / cap; m > n {
			n = m
		}
	}
	big := 0
	for i := 0; i < g.NumTasks(); i++ {
		if 2*g.Task(i).Resources > board.FPGA.CLBs {
			big++
		}
	}
	if big > n {
		n = big
	}
	if n < 1 {
		n = 1
	}
	return n
}

// AnytimeLowerBound returns a cheap, sound lower bound (ns) on the latency
// of any feasible partitioning of g on board: MinPartitions·reconfig plus
// the presolve delay floor (DAG critical path vs layer-cake area×delay).
// The service layer uses it to report a finite gap when a deadline forces
// the greedy fallback before the ILP established any bound of its own.
func AnytimeLowerBound(g *dfg.Graph, board arch.Board) float64 {
	if g == nil || g.NumTasks() == 0 {
		return 0
	}
	pre := newPresolve(g, board)
	return float64(MinPartitions(g, board))*board.FPGA.ReconfigTime + pre.sumDelayFloor()
}

// SolveContext is Solve with request-scoped cancellation: ctx is installed
// as the branch-and-bound's ilp.Options.Context (replacing any Context
// already present in in.ILP), so cancelling it aborts every search worker
// and every speculative relax-N probe at its next limit check. A cancelled
// solve returns ctx.Err() even when the aborted search had already found a
// feasible (but unproven) incumbent.
//
// Deadline expiry is different — that is the anytime contract: when the
// context died of context.DeadlineExceeded and the solve still produced a
// partitioning (the best incumbent, marked Partial with a proven
// LatencyBound and Gap), the partitioning is returned instead of the
// error. A deadline that fires before any incumbent exists surfaces as an
// ErrDeadline-wrapped error so callers can degrade to a cheaper backend.
// The ctx deadline is also installed as ilp.Options.Deadline so the search
// stops proactively rather than waiting for a poll of ctx.Err().
func SolveContext(ctx context.Context, in Input) (*Partitioning, error) {
	if ctx != nil {
		in.ILP.Context = ctx
		if dl, ok := ctx.Deadline(); ok && (in.ILP.Deadline.IsZero() || dl.Before(in.ILP.Deadline)) {
			in.ILP.Deadline = dl
		}
	}
	part, err := Solve(in)
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			if errors.Is(cerr, context.DeadlineExceeded) {
				if part != nil {
					return part, nil
				}
				if err != nil && errors.Is(err, ErrDeadline) {
					return nil, err
				}
				return nil, cerr
			}
			return nil, cerr
		}
	}
	return part, err
}

// Solve runs the full temporal partitioning tool: preprocessing, model
// generation for the lower-bound N, and the relax-N loop until feasibility.
func Solve(in Input) (*Partitioning, error) {
	g := in.Graph
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := in.Board.Validate(); err != nil {
		return nil, err
	}
	if g.NumTasks() == 0 {
		return &Partitioning{}, nil
	}
	// The presolve span covers everything before the first N probe: task
	// validation, path enumeration, the DAG/packing bound computation, and
	// the greedy dominance clamp. pprof segments the same region under
	// phase=presolve when a request context is present.
	preSpan := in.Trace.Begin(obs.PhasePresolve)
	for i := 0; i < g.NumTasks(); i++ {
		if g.Task(i).Resources > in.Board.FPGA.CLBs {
			return nil, fmt.Errorf("%w: task %q needs %d CLBs, FPGA has %d",
				ErrTaskTooLarge, g.Task(i).Name, g.Task(i).Resources, in.Board.FPGA.CLBs)
		}
		for kind, cap := range in.Board.FPGA.ExtraCapacity {
			if d := g.Task(i).Extra[kind]; d > cap {
				return nil, fmt.Errorf("%w: task %q needs %d %s, FPGA has %d",
					ErrTaskTooLarge, g.Task(i).Name, d, kind, cap)
			}
		}
	}
	pathCap := in.PathCap
	if pathCap == 0 {
		pathCap = 20000
	}
	var (
		paths   [][]int
		pre     *presolve
		n0      int
		maxN    int
		prunedN int
		tally   *proofTally
		pathErr error
	)
	obs.Do(in.ILP.Context, "phase", obs.PhasePresolve, func(context.Context) {
		paths, pathErr = g.Paths(pathCap)
		if pathErr != nil {
			return
		}
		n0 = MinPartitions(g, in.Board)
		maxN = in.MaxPartitions
		if maxN == 0 {
			maxN = n0 + 8
		}
		pre = newPresolve(g, in.Board)
		// Dominance clamp: a feasible greedy partitioning at gn partitions
		// proves the ILP feasible at every N >= gn (feasibility is monotone
		// in N), so the relax loop never needs to probe beyond gn — those
		// candidate counts are rejected without building a model.
		if gn := pre.maxFeasibleN(); gn > 0 && gn >= n0 && gn < maxN {
			prunedN += maxN - gn
			maxN = gn
		}
		tally = &proofTally{packNeed: pre.packingNeed()}
	})
	if pathErr != nil {
		return nil, fmt.Errorf("tempart: %w (use the list partitioner for graphs this path-dense)", pathErr)
	}
	preSpan.End()
	if in.SpeculateN > 1 {
		return solveSpeculative(in, pre, paths, n0, maxN, prunedN, tally)
	}
	relax := 0
	for n := n0; n <= maxN; n++ {
		relax++
		probeSpan := in.Trace.BeginArg(obs.PhaseProbe, int64(n))
		// Bin-packing dual bound: a candidate count below the packing need
		// is infeasible outright — cheaper than both the exact packing DFS
		// below and any branch-and-bound infeasibility proof, and immune to
		// the DFS's node budget.
		if n < tally.packNeed {
			prunedN++
			tally.dualFathoms.Add(1)
			probeSpan.End()
			continue
		}
		// Multi-resource bin-packing pre-check: ignoring temporal order and
		// memory can only make the problem easier, so packing
		// infeasibility proves ILP infeasibility at this N without paying
		// for a branch-and-bound infeasibility proof.
		if !pre.packingFeasibleAll(n) {
			prunedN++
			probeSpan.End()
			continue
		}
		part, err := solveForN(in, pre, paths, n, tally)
		probeSpan.End()
		if err != nil {
			return nil, err
		}
		if part != nil {
			part.Stats.RelaxSteps = relax
			part.Stats.NProbesPruned = prunedN
			tally.stampProofStats(part)
			return part, nil
		}
	}
	return nil, fmt.Errorf("%w (tried N=%d..%d)", ErrNoSolution, n0, maxN)
}

// proofTally accumulates the infeasibility-proof telemetry of one Solve
// across every relax-N probe (probes run concurrently under SpeculateN,
// hence the atomics): bin-packing dual-bound fathoms (rejected N probes
// plus LP-free node fathoms), learned conflict cuts, and separated
// Chvátal–Gomory cuts — including the probes that ended in an
// infeasibility proof, whose search effort would otherwise be invisible.
type proofTally struct {
	packNeed     int // instance-wide bin-packing dual bound (presolve)
	dualFathoms  atomic.Int64
	conflictCuts atomic.Int64
	cgCuts       atomic.Int64
}

// absorb folds a consumed probe's sub-tally into the aggregate (the
// speculative consumer's accumulation path; probes never consumed — moot
// higher-N searches — never reach it).
func (tally *proofTally) absorb(sub *proofTally) {
	if sub == nil {
		return
	}
	tally.dualFathoms.Add(sub.dualFathoms.Load())
	tally.conflictCuts.Add(sub.conflictCuts.Load())
	tally.cgCuts.Add(sub.cgCuts.Load())
}

// stampProofStats folds the tally into a winning partitioning's stats. It
// must run at acceptance — in the sequential loop that is right after
// solveForN, in the speculative loop after every consumed probe's
// sub-tally has been absorbed (the consumer accepts in ascending N order,
// so all infeasibility proofs below the winner have already contributed
// and moot higher-N probes never do).
func (tally *proofTally) stampProofStats(part *Partitioning) {
	part.Stats.ConflictCuts = int(tally.conflictCuts.Load())
	part.Stats.CGCuts += int(tally.cgCuts.Load())
	part.Stats.DualBoundFathoms = int(tally.dualFathoms.Load())
}

// solveSpeculative is the parallel relax-N loop: a sliding window of
// candidate partition counts is solved concurrently and results are
// consumed in ascending N order, so the returned partitioning is the one
// the sequential loop would have found. Probes for N values made moot by a
// lower feasible N are cancelled; their goroutines drain into buffered
// channels and are discarded.
func solveSpeculative(in Input, pre *presolve, paths [][]int, n0, maxN, prunedN int, tally *proofTally) (*Partitioning, error) {
	// Each probe gets its own sub-tally; the consumer folds a probe's
	// counts into the shared tally only when it CONSUMES the probe, in
	// ascending N order. Cancelled higher-N probes are never consumed, so
	// the stamped proof telemetry covers exactly the probes the sequential
	// loop would have run — deterministic, and free of contamination from
	// moot goroutines still winding down.
	type probe struct {
		part       *Partitioning
		err        error
		packPruned bool
		tally      *proofTally
	}
	stop := make(chan struct{})
	defer close(stop)
	spec := in
	spec.ILP.Stop = stop
	if caller := in.ILP.Stop; caller != nil {
		// Preserve the caller's cancellation: probes abort when either the
		// caller's channel or the internal lowest-N-won channel closes.
		merged := make(chan struct{})
		go func() {
			select {
			case <-caller:
			case <-stop:
			}
			close(merged)
		}()
		spec.ILP.Stop = merged
	}

	launch := func(n int) chan probe {
		ch := make(chan probe, 1)
		pt := &proofTally{packNeed: tally.packNeed}
		go func() {
			// Each probe gets its own (overlapping) span; moot probes that
			// are cancelled mid-search never End theirs and vanish from
			// the summary, matching the consumed-probes-only telemetry.
			probeSpan := spec.Trace.BeginArg(obs.PhaseProbe, int64(n))
			defer probeSpan.End()
			// The dual-bound and packing pre-checks of the sequential loop,
			// hoisted into the probe so a cheap infeasibility proof also
			// runs off the consumer's critical path.
			if n < pt.packNeed {
				pt.dualFathoms.Add(1)
				ch <- probe{packPruned: true, tally: pt}
				return
			}
			if !pre.packingFeasibleAll(n) {
				ch <- probe{packPruned: true, tally: pt}
				return
			}
			part, err := solveForN(spec, pre, paths, n, pt)
			ch <- probe{part: part, err: err, tally: pt}
		}()
		return ch
	}

	window := in.SpeculateN
	pending := make(map[int]chan probe, window)
	next := n0
	for ; next <= maxN && next < n0+window; next++ {
		pending[next] = launch(next)
	}
	for n := n0; n <= maxN; n++ {
		r := <-pending[n]
		delete(pending, n)
		if r.err != nil {
			if errors.Is(r.err, ErrDeadline) {
				// Anytime salvage: the probe at n hit the deadline with no
				// incumbent, but the already-launched higher-N probes —
				// stopped by the same deadline — may hold feasible ones.
				// Consume them in ascending N order and return the best
				// completed probe's partitioning, labeled Partial with the
				// floor bound: counts below n are proven infeasible, so
				// any feasible partitioning costs at least n·reconfig plus
				// the presolve delay floor.
				ns := make([]int, 0, len(pending))
				for k := range pending {
					ns = append(ns, k)
				}
				sort.Ints(ns)
				for _, k := range ns {
					r2 := <-pending[k]
					delete(pending, k)
					if r2.err != nil || r2.part == nil {
						continue
					}
					tally.absorb(r2.tally)
					p := r2.part
					p.Optimal = false
					p.Partial = true
					p.BoundTrusted = true
					p.LatencyBound = float64(n)*in.Board.FPGA.ReconfigTime + pre.sumDelayFloor()
					if p.LatencyBound > p.Latency {
						p.LatencyBound = p.Latency
					}
					p.Gap = p.Latency - p.LatencyBound
					p.Stats.RelaxSteps = k - n0 + 1
					p.Stats.NProbesPruned = prunedN
					tally.stampProofStats(p)
					return p, nil
				}
			}
			// An aborted higher-N probe can only fail with a stop-induced
			// limit error, which is never reached here: errors are consumed
			// in ascending N order before stop closes.
			return nil, r.err
		}
		tally.absorb(r.tally)
		if r.packPruned {
			prunedN++
		}
		if r.part != nil {
			r.part.Stats.RelaxSteps = n - n0 + 1
			r.part.Stats.NProbesPruned = prunedN
			tally.stampProofStats(r.part)
			return r.part, nil
		}
		if next <= maxN {
			pending[next] = launch(next)
			next++
		}
	}
	return nil, fmt.Errorf("%w (tried N=%d..%d)", ErrNoSolution, n0, maxN)
}

// tpModel is one generated instance of the Eqs. 1-8 model for a fixed
// partition bound, together with its variable layout.
type tpModel struct {
	prob    *lp.Problem
	ilp     *ilp.Problem
	nVars   int
	needMem bool
	cgRoot  int // Chvátal–Gomory cardinality rows baked in at build time
	yv      func(t, p int) int
	wv      func(p, e int) int
	dv      func(p int) int
}

// buildModel generates the temporal partitioning ILP for a fixed N.
// withPresolveCut controls the aggregate Σ d_p >= sumDelayFloor cut: solves
// always include it, while the presolve property tests build the raw
// relaxation without it so the combinatorial bounds can be compared against
// the pure LP bound.
func buildModel(in Input, pre *presolve, paths [][]int, N int, withPresolveCut bool) *tpModel {
	g := in.Graph
	nT := g.NumTasks()
	edges := g.Edges()
	nE := len(edges)
	nB := N - 1 // inter-partition boundaries

	// Presolve: when even the worst case (every edge crossing every
	// boundary) fits the on-board memory, the memory constraint (Eq. 3)
	// can never bind, so the w variables and their linearization rows are
	// dropped entirely. This is a pure dominance reduction — it never
	// changes the optimum — and it roughly halves the model for
	// memory-rich boards like the paper's 64K-word bank.
	totalEdgeData := 0
	for _, e := range edges {
		totalEdgeData += e.Data
	}
	needMem := totalEdgeData > in.Board.Memory.Words

	// Variable layout: y[t][p] = t*N+p; then w[p][e] if needed; d[p] last.
	yv := func(t, p int) int { return t*N + p }
	nW := 0
	if needMem {
		nW = nB * nE
	}
	wv := func(p, e int) int { return nT*N + p*nE + e }
	dv := func(p int) int { return nT*N + nW + p }
	nVars := nT*N + nW + N

	prob := lp.NewProblem(nVars)
	intVars := make([]int, 0, nT*N)
	sos := make([][]int, 0, nT)
	for t := 0; t < nT; t++ {
		grp := make([]int, 0, N)
		for p := 0; p < N; p++ {
			j := yv(t, p)
			prob.SetBounds(j, 0, 1)
			intVars = append(intVars, j)
			grp = append(grp, j)
		}
		sos = append(sos, grp)
	}
	// w relaxed to [0,1]: the linearization lower bound plus the memory
	// constraint make integral w unnecessary once y is integral.
	for p := 0; p < nB && needMem; p++ {
		for e := 0; e < nE; e++ {
			prob.SetBounds(wv(p, e), 0, 1)
		}
	}
	// d_p in [0, Σ D(t)].
	sumDelay := 0.0
	for t := 0; t < nT; t++ {
		sumDelay += g.Task(t).Delay
	}
	for p := 0; p < N; p++ {
		prob.SetBounds(dv(p), 0, sumDelay)
		prob.SetObj(dv(p), 1)
	}

	// Row construction goes through AddRowCols with one pair of scratch
	// slices and a pre-sized coefficient arena: the model builder is the
	// dominant allocator on small instances (the root solve of a regular
	// DSP graph runs a handful of pivots), so rows must not cost a map each.
	totalPathLen := 0
	for _, path := range paths {
		totalPathLen += len(path)
	}
	nExtraKinds := 0
	for _, kind := range g.ExtraTypes() {
		if _, capped := in.Board.FPGA.ExtraCapacity[kind]; capped {
			nExtraKinds++
		}
	}
	nRowsEst := nT + nE*(N-1) + N*(1+nExtraKinds) + len(paths)*N
	nCoeffEst := nT*N + nE*(N*(N+1)/2) + N*nT*(1+nExtraKinds) + N*(totalPathLen+len(paths))
	if needMem {
		nRowsEst += nB * (nE + 1)
		nCoeffEst += nB * nE * (N + 2)
	}
	prob.Reserve(nRowsEst, nCoeffEst)
	cols := make([]int, 0, 64)
	vals := make([]float64, 0, 64)
	reset := func() {
		cols = cols[:0]
		vals = vals[:0]
	}
	put := func(j int, v float64) {
		cols = append(cols, j)
		vals = append(vals, v)
	}

	// Eq. 1: uniqueness.
	for t := 0; t < nT; t++ {
		reset()
		for p := 0; p < N; p++ {
			put(yv(t, p), 1)
		}
		prob.AddRowCols(lp.EQ, cols, vals, 1)
	}

	// Eq. 2: temporal order, grouped per (edge, p2):
	// y[t2][p2] + Σ_{p1 > p2} y[t1][p1] <= 1.
	for _, e := range edges {
		for p2 := 0; p2 < N-1; p2++ {
			reset()
			put(yv(e.To, p2), 1)
			for p1 := p2 + 1; p1 < N; p1++ {
				put(yv(e.From, p1), 1)
			}
			prob.AddRowCols(lp.LE, cols, vals, 1)
		}
	}

	// Eqs. 4/5 linearized: w[p][e] >= Σ_{p1<=p} y[t1][p1] + Σ_{p2>p} y[t2][p2] - 1.
	for p := 0; p < nB && needMem; p++ {
		for ei, e := range edges {
			reset()
			put(wv(p, ei), 1)
			for p1 := 0; p1 <= p; p1++ {
				put(yv(e.From, p1), -1)
			}
			for p2 := p + 1; p2 < N; p2++ {
				put(yv(e.To, p2), -1)
			}
			prob.AddRowCols(lp.GE, cols, vals, -1)
		}
	}

	// Eq. 3: memory per boundary.
	for p := 0; p < nB && needMem; p++ {
		reset()
		for ei, e := range edges {
			if e.Data != 0 {
				put(wv(p, ei), float64(e.Data))
			}
		}
		if len(cols) > 0 {
			prob.AddRowCols(lp.LE, cols, vals, float64(in.Board.Memory.Words))
		}
	}

	// Eq. 6: resources per partition — one constraint per capped resource
	// type ("similar equations can be added if multiple resource types
	// exist in the FPGA").
	for p := 0; p < N; p++ {
		reset()
		for t := 0; t < nT; t++ {
			if r := g.Task(t).Resources; r != 0 {
				put(yv(t, p), float64(r))
			}
		}
		prob.AddRowCols(lp.LE, cols, vals, float64(in.Board.FPGA.CLBs))
	}
	for _, kind := range g.ExtraTypes() {
		cap, capped := in.Board.FPGA.ExtraCapacity[kind]
		if !capped {
			continue
		}
		for p := 0; p < N; p++ {
			reset()
			for t := 0; t < nT; t++ {
				if r := g.Task(t).Extra[kind]; r != 0 {
					put(yv(t, p), float64(r))
				}
			}
			if len(cols) > 0 {
				prob.AddRowCols(lp.LE, cols, vals, float64(cap))
			}
		}
	}

	// Eq. 7: path delays per partition. Tasks on an enumerated path are
	// distinct, so no coefficient accumulation is needed (and AddRowCols
	// would merge duplicates anyway).
	for _, path := range paths {
		for p := 0; p < N; p++ {
			reset()
			put(dv(p), -1)
			for _, t := range path {
				if d := g.Task(t).Delay; d != 0 {
					put(yv(t, p), d)
				}
			}
			prob.AddRowCols(lp.LE, cols, vals, 0)
		}
	}

	// Root presolve cuts: Σ_p d_p >= max(critical path, layer-cake
	// area×delay bound) plus the boundary chain-area and Chvátal–Gomory
	// cardinality rows, expressed through the same cut-row representation
	// the separation layer uses (cuts.go). Valid for every integral
	// assignment (see presolve.go), so the optimum is unchanged, but they
	// lift every node's LP bound to at least the combinatorial floor —
	// and at a packing-infeasible N the CG rows contradict uniqueness, so
	// the root LP is infeasible with no branching at all.
	cgRoot := 0
	if withPresolveCut {
		cutSpan := in.Trace.BeginArg(obs.PhaseRootCut, int64(N))
		emitRootCuts(pre, N, yv, dv, !in.NoCuts,
			func(name string, kind lp.RowKind, rcols []int, rvals []float64, rhs float64) {
				if strings.HasPrefix(name, "cg-") {
					cgRoot++
				}
				prob.AddRowCols(kind, rcols, rvals, rhs)
			})
		cutSpan.End()
	}

	// Symmetry breaking between interchangeable tasks: consecutive group
	// members a < b must satisfy part(a) <= part(b), written in the tight
	// per-partition prefix form
	//
	//	y[b][p] <= Σ_{q<=p} y[a][q]   for p = 0..N-2
	//
	// (the p = N-1 row is implied by uniqueness). The integral solution set
	// is exactly the lexicographically-least representative of each
	// permutation class — the same set the old aggregated form
	// Σ_p p·y[a][p] <= Σ_p p·y[b][p] admits — but the LP relaxation is
	// strictly tighter, which raises node bounds and shrinks the search.
	if !in.NoSymmetryBreaking {
		for _, group := range pre.groups {
			for i := 0; i+1 < len(group); i++ {
				a, b := group[i], group[i+1]
				for p := 0; p < N-1; p++ {
					reset()
					put(yv(b, p), 1)
					for q := 0; q <= p; q++ {
						put(yv(a, q), -1)
					}
					prob.AddRowCols(lp.LE, cols, vals, 0)
				}
			}
		}
	}

	return &tpModel{
		prob:    prob,
		ilp:     &ilp.Problem{LP: prob, Integers: intVars, SOS1: sos},
		nVars:   nVars,
		needMem: needMem,
		cgRoot:  cgRoot,
		yv:      yv,
		wv:      wv,
		dv:      dv,
	}
}

// Formulation values for Input.Formulation (empty selects rows).
const (
	FormulationRows     = "rows"
	FormulationPatterns = "patterns"
)

// solveForN builds and solves the model for a fixed partition bound.
// It returns (nil, nil) when the model is infeasible at this N.
func solveForN(in Input, pre *presolve, paths [][]int, N int, tally *proofTally) (*Partitioning, error) {
	if in.Formulation == FormulationPatterns && patternsApplicable(in.Graph, in.Board) {
		return solveForNPatterns(in, pre, paths, N, tally)
	}
	g := in.Graph
	nT := g.NumTasks()
	buildStart := time.Now()
	buildSpan := in.Trace.BeginArg(obs.PhaseModelBuild, int64(N))
	var m *tpModel
	obs.Do(in.ILP.Context, "phase", obs.PhaseModelBuild, func(context.Context) {
		m = buildModel(in, pre, paths, N, true)
	})
	opts := in.ILP
	opts.Trace = in.Trace
	if !in.DisableWarmStart {
		if inc := warmStart(pre, paths, N, m.nVars, m.needMem, m.yv, m.wv, m.dv); inc != nil {
			opts.Incumbent = inc
		}
	}
	// LP-free fathoming: the presolve's combinatorial bound screens every
	// B&B node before its LP relaxation is solved; its bin-packing
	// dual-bound fathoms land in the tally. Conflict minimization re-probes
	// the same bound many times per learned conflict, so it gets an
	// uncounted twin — only genuine node fathoms reach DualBoundFathoms.
	opts.NodeBound = pre.nodeBoundFunc(N, m.yv, &tally.dualFathoms)
	opts.NodeBoundProbe = pre.nodeBoundFunc(N, m.yv, nil)
	// Branch and cut: grow node LPs with violated CG cardinality / cover /
	// temporal-order clique / layer-cake subset cuts, branching only when
	// separation dries up; infeasibility-fathomed subtrees feed no-good
	// cuts back into the shared pool.
	if !in.NoCuts {
		opts.Separate = newSeparator(pre, g, N, m.yv, m.dv, paths).separate
	}
	buildTime := time.Since(buildStart)
	buildSpan.End()

	solveStart := time.Now()
	searchSpan := in.Trace.BeginArg(obs.PhaseSearch, int64(N))
	var sol *ilp.Solution
	var err error
	obs.Do(opts.Context, "phase", obs.PhaseSearch, func(context.Context) {
		sol, err = ilp.Solve(m.ilp, opts)
	})
	if err != nil {
		searchSpan.End()
		return nil, err
	}
	// LP kernel Stats deltas at the search-span boundary (the per-search
	// Solver aggregate is already a delta: each searcher's solver is born
	// inside this ilp.Solve call).
	if in.Trace != nil {
		in.Trace.Counter(obs.CounterNodes, int64(sol.Nodes))
		in.Trace.Counter(obs.CounterLPPivots, int64(sol.Solver.Pivots))
		in.Trace.Counter(obs.CounterLPRefactor, int64(sol.Solver.Refactorizations))
		in.Trace.Counter(obs.CounterLPFlips, int64(sol.Solver.BoundFlips))
	}
	searchSpan.End()
	solveTime := time.Since(solveStart)
	tally.conflictCuts.Add(int64(sol.ConflictCuts))
	for name, n := range sol.CutsByName {
		if strings.HasPrefix(name, "cg-") {
			tally.cgCuts.Add(int64(n))
		}
	}

	switch sol.Status {
	case ilp.Infeasible:
		return nil, nil // relax N
	case ilp.Limit:
		return nil, fmt.Errorf("tempart: search limit hit with no feasible partitioning at N=%d", N)
	case ilp.Unbounded:
		return nil, errors.New("tempart: model unbounded (internal error)")
	case ilp.Timeout:
		if sol.X == nil {
			return nil, fmt.Errorf("%w (N=%d)", ErrDeadline, N)
		}
		// Deadline stopped the search with an incumbent in hand: extract
		// it below as an anytime result, marked Partial with the search's
		// proven bound.
	}

	assign := make([]int, nT)
	for t := 0; t < nT; t++ {
		assign[t] = -1
		for p := 0; p < N; p++ {
			if sol.X[m.yv(t, p)] > 0.5 {
				assign[t] = p
				break
			}
		}
		if assign[t] < 0 {
			return nil, fmt.Errorf("tempart: task %d unassigned in ILP solution", t)
		}
	}
	delays := EvaluateDelays(g, assign, N, paths)
	part := &Partitioning{
		N:       N,
		Assign:  assign,
		Delays:  delays,
		Latency: Latency(in.Board, delays),
		Optimal: sol.Status == ilp.Optimal,
		Stats: SolveStats{
			N: N, Vars: m.nVars, Rows: m.prob.NumRows(), Paths: len(paths),
			Nodes: sol.Nodes, LPIterations: sol.LPIterations,
			PrunedCombinatorial: sol.PrunedCombinatorial,
			LPSolvesSkipped:     sol.LPSolvesSkipped,
			CutsAdded:           sol.CutsAdded,
			SeparationRounds:    sol.SeparationRounds,
			// CGCuts carries only this model's root rows here; the
			// tally-based counters are stamped by the relax loop at
			// acceptance time (stampProofStats), after every lower-N
			// probe has finished contributing — a winning speculative
			// probe must not snapshot the shared tally while an
			// infeasibility proof below it is still running.
			CGCuts:    m.cgRoot,
			BuildTime: buildTime, SolveTime: solveTime,
			Solver:      sol.Solver,
			Pricing:     opts.Pricing.String(),
			Formulation: FormulationRows,
		},
	}
	part.Partial = sol.Status == ilp.Timeout
	part.BoundTrusted = sol.BoundTrusted
	// The ILP objective is Σ_p d_p with the N·reconfig term constant, so
	// the proven objective bound translates directly into a latency bound.
	switch {
	case part.Optimal:
		part.LatencyBound = part.Latency
	case !math.IsInf(sol.Bound, -1):
		part.LatencyBound = float64(N)*in.Board.FPGA.ReconfigTime + sol.Bound
		if part.LatencyBound > part.Latency {
			part.LatencyBound = part.Latency
		}
	}
	if part.LatencyBound > 0 {
		part.Gap = part.Latency - part.LatencyBound
	}
	return part, nil
}

// packingFeasible decides one-dimensional bin packing feasibility by
// depth-first search with symmetry pruning (items sorted descending; an
// item may only open the first empty bin). Exact for the small task counts
// the ILP handles; bails out optimistically after a node budget so it never
// wrongly reports infeasible.
func packingFeasible(items []int, cap, bins int) bool {
	sorted := append([]int(nil), items...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	if len(sorted) > 0 && sorted[0] > cap {
		return false
	}
	load := make([]int, bins)
	nodes := 0
	const nodeBudget = 200000
	var place func(i int) bool
	place = func(i int) bool {
		if i == len(sorted) {
			return true
		}
		nodes++
		if nodes > nodeBudget {
			return true // give up: let the ILP decide
		}
		seenEmpty := false
		for b := 0; b < bins; b++ {
			if load[b] == 0 {
				if seenEmpty {
					break // identical empty bins are symmetric
				}
				seenEmpty = true
			}
			if load[b]+sorted[i] > cap {
				continue
			}
			// Skip bins with identical load (symmetry).
			dup := false
			for b2 := 0; b2 < b; b2++ {
				if load[b2] == load[b] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			load[b] += sorted[i]
			if place(i + 1) {
				return true
			}
			load[b] -= sorted[i]
		}
		return false
	}
	return place(0)
}

// EvaluateDelays computes d_p = max over paths of the in-partition path
// delay (the paper's Fig. 4 delay model) for a given assignment.
func EvaluateDelays(g *dfg.Graph, assign []int, N int, paths [][]int) []float64 {
	d := make([]float64, N)
	for _, path := range paths {
		for p := 0; p < N; p++ {
			sum := 0.0
			for _, t := range path {
				if assign[t] == p {
					sum += g.Task(t).Delay
				}
			}
			if sum > d[p] {
				d[p] = sum
			}
		}
	}
	// Tasks not on any root-leaf path (isolated) still execute.
	for t, p := range assign {
		if p >= 0 && p < N && g.Task(t).Delay > d[p] && len(g.Preds(t)) == 0 && len(g.Succs(t)) == 0 {
			d[p] = g.Task(t).Delay
		}
	}
	return d
}

// Latency computes Eq. 8's objective value N*CT + Σ d_p for a delay vector.
func Latency(board arch.Board, delays []float64) float64 {
	sum := 0.0
	for _, d := range delays {
		sum += d
	}
	return float64(len(delays))*board.FPGA.ReconfigTime + sum
}

// CheckFeasible verifies a partitioning against the architecture: resource
// capacity per partition, memory capacity per boundary, and temporal order.
// It returns nil when the assignment is a valid temporal partitioning.
func CheckFeasible(g *dfg.Graph, board arch.Board, assign []int, N int) error {
	if len(assign) != g.NumTasks() {
		return fmt.Errorf("tempart: assignment length %d != %d tasks", len(assign), g.NumTasks())
	}
	res := make([]int, N)
	extra := map[string][]int{}
	for t, p := range assign {
		if p < 0 || p >= N {
			return fmt.Errorf("tempart: task %d assigned to invalid partition %d", t, p)
		}
		res[p] += g.Task(t).Resources
		for kind, d := range g.Task(t).Extra {
			if extra[kind] == nil {
				extra[kind] = make([]int, N)
			}
			extra[kind][p] += d
		}
	}
	for p, r := range res {
		if r > board.FPGA.CLBs {
			return fmt.Errorf("tempart: partition %d uses %d CLBs > %d", p, r, board.FPGA.CLBs)
		}
	}
	for kind, perPart := range extra {
		cap, capped := board.FPGA.ExtraCapacity[kind]
		if !capped {
			continue
		}
		for p, r := range perPart {
			if r > cap {
				return fmt.Errorf("tempart: partition %d uses %d %s > %d", p, r, kind, cap)
			}
		}
	}
	for _, e := range g.Edges() {
		if assign[e.From] > assign[e.To] {
			return fmt.Errorf("tempart: edge %d->%d violates temporal order (%d > %d)",
				e.From, e.To, assign[e.From], assign[e.To])
		}
	}
	for b := 0; b < N-1; b++ {
		mem := 0
		for _, e := range g.Edges() {
			if assign[e.From] <= b && assign[e.To] > b {
				mem += e.Data
			}
		}
		if mem > board.Memory.Words {
			return fmt.Errorf("tempart: boundary %d stores %d words > %d", b, mem, board.Memory.Words)
		}
	}
	return nil
}

// warmStart builds a full ILP variable assignment from the presolve's
// cached greedy heuristics when a solution using at most N partitions
// exists. Two heuristics compete — plain topological packing, and
// type-homogeneous packing (which avoids mixing slow task types into fast
// partitions, the effect the paper's Sec. 4 comparison highlights) — and
// the better feasible one wins. A heuristic feasible at usedN partitions is
// feasible at every N >= usedN (the extra partitions stay empty), so the
// cached certificates need no per-N re-validation.
func warmStart(pre *presolve, paths [][]int, N, nVars int,
	needMem bool, yv func(t, p int) int, wv func(p, e int) int, dv func(p int) int) []float64 {

	g, board := pre.g, pre.board
	var best []int
	bestLat := 0.0
	for _, gr := range pre.greedy {
		if !gr.ok || gr.usedN > N {
			continue
		}
		lat := Latency(board, EvaluateDelays(g, gr.assign, N, paths))
		if best == nil || lat < bestLat {
			best = gr.assign
			bestLat = lat
		}
	}
	if best == nil {
		return nil
	}
	// The canonicalization below mutates the assignment; the cached one is
	// shared across probes.
	best = append([]int(nil), best...)
	// Canonicalize within interchangeable groups so the incumbent also
	// satisfies the symmetry-breaking ordering rows (permuting members of
	// a group across their partitions preserves feasibility and latency).
	for _, group := range pre.groups {
		ps := make([]int, len(group))
		for i, t := range group {
			ps[i] = best[t]
		}
		sort.Ints(ps)
		for i, t := range group {
			best[t] = ps[i]
		}
	}
	x := make([]float64, nVars)
	for t, p := range best {
		x[yv(t, p)] = 1
	}
	if needMem {
		for ei, e := range g.Edges() {
			for b := 0; b < N-1; b++ {
				if best[e.From] <= b && best[e.To] > b {
					x[wv(b, ei)] = 1
				}
			}
		}
	}
	delays := EvaluateDelays(g, best, N, paths)
	for p := 0; p < N; p++ {
		x[dv(p)] = delays[p]
	}
	return x
}

// greedyAssign is the warm-start heuristic: topological-order bin packing
// into successive partitions under the resource constraint. In homogeneous
// mode a partition is also closed when the task type changes, which keeps
// fast and slow task types apart. (internal/listpart exposes the plain
// variant publicly; it is duplicated in miniature here to avoid an import
// cycle.)
func greedyAssign(g *dfg.Graph, board arch.Board, homogeneous bool) ([]int, int) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0
	}
	assign := make([]int, g.NumTasks())
	cur, used := 0, 0
	usedExtra := map[string]int{}
	curType := ""
	first := true
	fits := func(t int) bool {
		if used+g.Task(t).Resources > board.FPGA.CLBs {
			return false
		}
		for kind, cap := range board.FPGA.ExtraCapacity {
			if usedExtra[kind]+g.Task(t).Extra[kind] > cap {
				return false
			}
		}
		return true
	}
	for _, t := range order {
		if g.Task(t).Resources > board.FPGA.CLBs {
			return nil, 0
		}
		for kind, cap := range board.FPGA.ExtraCapacity {
			if g.Task(t).Extra[kind] > cap {
				return nil, 0
			}
		}
		typ := g.Task(t).Type
		if !fits(t) || (homogeneous && !first && typ != curType) {
			cur++
			used = 0
			usedExtra = map[string]int{}
		}
		assign[t] = cur
		used += g.Task(t).Resources
		for kind, d := range g.Task(t).Extra {
			usedExtra[kind] += d
		}
		curType = typ
		first = false
	}
	return assign, cur + 1
}

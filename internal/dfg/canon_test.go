package dfg

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildPerm rebuilds g with tasks added in the order perm and every task
// renamed via rename, preserving structure. It is the isomorphism generator
// of the property tests.
func buildPerm(t *testing.T, g *Graph, perm []int, rename func(string) string) *Graph {
	t.Helper()
	ng := New(g.Name + "-perm")
	for _, ti := range perm {
		task := *g.Task(ti)
		task.Name = rename(task.Name)
		if _, err := ng.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	edges := append([]Edge(nil), g.Edges()...)
	rand.New(rand.NewSource(int64(len(perm)))).Shuffle(len(edges), func(i, j int) {
		edges[i], edges[j] = edges[j], edges[i]
	})
	for _, e := range edges {
		if err := ng.AddEdge(rename(g.Task(e.From).Name), rename(g.Task(e.To).Name), e.Data); err != nil {
			t.Fatal(err)
		}
	}
	return ng
}

// randomDAG generates a layered random DAG with varied task attributes.
func randomCanonDAG(rng *rand.Rand, nTasks int) *Graph {
	g := New("rand")
	types := []string{"T1", "T2", "T3"}
	for i := 0; i < nTasks; i++ {
		g.MustAddTask(Task{
			Name:      fmt.Sprintf("t%d", i),
			Type:      types[rng.Intn(len(types))],
			Resources: 10 + rng.Intn(50),
			Delay:     float64(10 * (1 + rng.Intn(20))),
			ReadEnv:   rng.Intn(3),
			WriteEnv:  rng.Intn(3),
		})
	}
	for to := 1; to < nTasks; to++ {
		for from := 0; from < to; from++ {
			if rng.Intn(3) == 0 {
				g.MustAddEdgeByID(from, to, 1+rng.Intn(8))
			}
		}
	}
	return g
}

func (g *Graph) MustAddEdgeByID(from, to, data int) {
	if err := g.AddEdgeByID(from, to, data); err != nil {
		panic(err)
	}
}

// TestStructureHashIsomorphismInvariant is the cache-key stability property
// test: renaming every task and re-adding tasks and edges in a different
// order must not change the hash.
func TestStructureHashIsomorphismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomCanonDAG(rng, 4+rng.Intn(16))
		want := g.StructureHash()
		perm := rng.Perm(g.NumTasks())
		iso := buildPerm(t, g, perm, func(s string) string { return "renamed_" + s })
		if got := iso.StructureHash(); got != want {
			t.Fatalf("trial %d: isomorphic graph hashes differ:\n  %s\n  %s\n%s", trial, want, got, g.DOT())
		}
	}
}

// TestStructureHashIgnoresGraphName pins that only structure is keyed.
func TestStructureHashIgnoresGraphName(t *testing.T) {
	g := randomCanonDAG(rand.New(rand.NewSource(1)), 8)
	h1 := g.StructureHash()
	g.Name = "other"
	if g.StructureHash() != h1 {
		t.Fatal("graph name leaked into the structure hash")
	}
}

// TestStructureHashPerturbationSensitive is the other half of the property:
// every structural perturbation of a graph must change the hash.
func TestStructureHashPerturbationSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randomCanonDAG(rng, 6+rng.Intn(10))
		base := g.StructureHash()
		perturb := func(name string, f func(*Graph) bool) {
			ng := buildPerm(t, g, identityPerm(g.NumTasks()), func(s string) string { return s })
			if !f(ng) {
				return // perturbation not applicable to this graph
			}
			if ng.StructureHash() == base {
				t.Fatalf("trial %d: perturbation %q left the hash unchanged\n%s", trial, name, g.DOT())
			}
		}
		ti := rng.Intn(g.NumTasks())
		perturb("resources+1", func(ng *Graph) bool { ng.Task(ti).Resources++; return true })
		perturb("delay*2", func(ng *Graph) bool { ng.Task(ti).Delay *= 2; return true })
		perturb("type-change", func(ng *Graph) bool { ng.Task(ti).Type += "X"; return true })
		perturb("read-env+1", func(ng *Graph) bool { ng.Task(ti).ReadEnv++; return true })
		perturb("extra-demand", func(ng *Graph) bool {
			ng.Task(ti).Extra = map[string]int{"bram": 1}
			return true
		})
		perturb("add-task", func(ng *Graph) bool {
			ng.MustAddTask(Task{Name: "extra", Resources: 1, Delay: 1})
			return true
		})
		perturb("edge-data+1", func(ng *Graph) bool {
			if ng.NumEdges() == 0 {
				return false
			}
			e := ng.Edges()[rng.Intn(ng.NumEdges())]
			// Rebuild with one edge's data bumped (edges are immutable).
			n2 := New(ng.Name)
			for i := 0; i < ng.NumTasks(); i++ {
				n2.MustAddTask(*ng.Task(i))
			}
			for _, e2 := range ng.Edges() {
				d := e2.Data
				if e2 == e {
					d++
				}
				n2.MustAddEdgeByID(e2.From, e2.To, d)
			}
			*ng = *n2
			return true
		})
		perturb("drop-edge", func(ng *Graph) bool {
			if ng.NumEdges() == 0 {
				return false
			}
			drop := rng.Intn(ng.NumEdges())
			n2 := New(ng.Name)
			for i := 0; i < ng.NumTasks(); i++ {
				n2.MustAddTask(*ng.Task(i))
			}
			for i, e2 := range ng.Edges() {
				if i == drop {
					continue
				}
				n2.MustAddEdgeByID(e2.From, e2.To, e2.Data)
			}
			*ng = *n2
			return true
		})
	}
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// TestCanonicalOrderTransfersAssignments pins the property the service
// cache relies on: mapping task positions through CanonicalOrder carries a
// per-task labeling from a graph to an isomorphic copy such that
// corresponding tasks get the same label whenever the WL signatures are
// discriminating (ties are interchangeable in these graphs).
func TestCanonicalOrderTransfersAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		g := randomCanonDAG(rng, 5+rng.Intn(12))
		perm := rng.Perm(g.NumTasks())
		iso := buildPerm(t, g, perm, func(s string) string { return "x" + s })
		co, ci := g.CanonicalOrder(), iso.CanonicalOrder()
		if len(co) != len(ci) {
			t.Fatal("order length mismatch")
		}
		// Tasks at the same canonical position must have identical
		// name-free attributes.
		for pos := range co {
			a, b := g.Task(co[pos]), iso.Task(ci[pos])
			if a.Type != b.Type || a.Resources != b.Resources || a.Delay != b.Delay ||
				a.ReadEnv != b.ReadEnv || a.WriteEnv != b.WriteEnv {
				t.Fatalf("trial %d pos %d: canonical positions hold different tasks: %+v vs %+v",
					trial, pos, a, b)
			}
		}
	}
}

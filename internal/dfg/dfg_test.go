package dfg

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the 4-task diamond a -> {b, c} -> d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	g.MustAddTask(Task{Name: "a", Resources: 10, Delay: 100})
	g.MustAddTask(Task{Name: "b", Resources: 20, Delay: 200})
	g.MustAddTask(Task{Name: "c", Resources: 30, Delay: 150})
	g.MustAddTask(Task{Name: "d", Resources: 40, Delay: 50})
	g.MustAddEdge("a", "b", 4)
	g.MustAddEdge("a", "c", 4)
	g.MustAddEdge("b", "d", 2)
	g.MustAddEdge("c", "d", 2)
	return g
}

func TestAddTaskDuplicate(t *testing.T) {
	g := New("g")
	if _, err := g.AddTask(Task{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTask(Task{Name: "x"}); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := g.AddTask(Task{}); err == nil {
		t.Error("empty task name accepted")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("g")
	g.MustAddTask(Task{Name: "a"})
	g.MustAddTask(Task{Name: "b"})
	if err := g.AddEdge("a", "missing", 1); err == nil {
		t.Error("edge to unknown task accepted")
	}
	if err := g.AddEdge("a", "a", 1); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge("a", "b", -1); err == nil {
		t.Error("negative data units accepted")
	}
	if err := g.AddEdge("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b", 1); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestRootsLeaves(t *testing.T) {
	g := diamond(t)
	if r := g.Roots(); len(r) != 1 || g.Task(r[0]).Name != "a" {
		t.Errorf("roots = %v", r)
	}
	if l := g.Leaves(); len(l) != 1 || g.Task(l[0]).Name != "d" {
		t.Errorf("leaves = %v", l)
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for p, v := range order {
		pos[v] = p
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topological order", e.From, e.To)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("cyc")
	g.MustAddTask(Task{Name: "a"})
	g.MustAddTask(Task{Name: "b"})
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("b", "a", 1)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Errorf("TopoOrder err = %v, want ErrCycle", err)
	}
	if err := g.Validate(); err != ErrCycle {
		t.Errorf("Validate err = %v, want ErrCycle", err)
	}
}

func TestValidateNegativeCosts(t *testing.T) {
	g := New("neg")
	g.MustAddTask(Task{Name: "a", Resources: -1})
	if err := g.Validate(); err == nil {
		t.Error("negative resources accepted")
	}
	g2 := New("neg2")
	g2.MustAddTask(Task{Name: "a", Delay: -5})
	if err := g2.Validate(); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestPathsAndCount(t *testing.T) {
	g := diamond(t)
	if n := g.CountPaths(0); n != 2 {
		t.Errorf("CountPaths = %d, want 2", n)
	}
	paths, err := g.Paths(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if g.Task(p[0]).Name != "a" || g.Task(p[len(p)-1]).Name != "d" {
			t.Errorf("path %v does not run root to leaf", p)
		}
	}
	if _, err := g.Paths(1); err == nil {
		t.Error("path cap not enforced")
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond(t)
	d, path := g.CriticalPath()
	// a(100) -> b(200) -> d(50) = 350 vs a -> c -> d = 300.
	if d != 350 {
		t.Errorf("critical delay = %g, want 350", d)
	}
	want := []string{"a", "b", "d"}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i, v := range path {
		if g.Task(v).Name != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, g.Task(v).Name, want[i])
		}
	}
}

func TestPathDelayMatchesCriticalPath(t *testing.T) {
	g := diamond(t)
	paths, _ := g.Paths(0)
	best := 0.0
	for _, p := range paths {
		if d := g.PathDelay(p); d > best {
			best = d
		}
	}
	cp, _ := g.CriticalPath()
	if best != cp {
		t.Errorf("max path delay %g != critical path %g", best, cp)
	}
}

func TestTotalResources(t *testing.T) {
	g := diamond(t)
	if r := g.TotalResources(); r != 100 {
		t.Errorf("TotalResources = %d, want 100", r)
	}
}

func TestEdgeData(t *testing.T) {
	g := diamond(t)
	a, b := g.TaskByName("a"), g.TaskByName("b")
	if d := g.EdgeData(a, b); d != 4 {
		t.Errorf("EdgeData(a,b) = %d, want 4", d)
	}
	if d := g.EdgeData(b, a); d != 0 {
		t.Errorf("EdgeData(b,a) = %d, want 0", d)
	}
}

func TestInterchangeableGroups(t *testing.T) {
	g := New("sym")
	g.MustAddTask(Task{Name: "src", Type: "S", Resources: 5, Delay: 10})
	for _, n := range []string{"m1", "m2", "m3"} {
		g.MustAddTask(Task{Name: n, Type: "M", Resources: 7, Delay: 20})
		g.MustAddEdge("src", n, 1)
	}
	g.MustAddTask(Task{Name: "sink", Type: "K", Resources: 5, Delay: 10})
	for _, n := range []string{"m1", "m2", "m3"} {
		g.MustAddEdge(n, "sink", 1)
	}
	groups := g.InterchangeableGroups()
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want one group of three", groups)
	}
}

func TestInterchangeableGroupsDistinguishesNeighbours(t *testing.T) {
	g := New("asym")
	g.MustAddTask(Task{Name: "a", Type: "X", Resources: 1, Delay: 1})
	g.MustAddTask(Task{Name: "b", Type: "X", Resources: 1, Delay: 1})
	g.MustAddTask(Task{Name: "c", Type: "Y", Resources: 2, Delay: 2})
	g.MustAddEdge("a", "c", 1) // a has a successor, b does not
	if groups := g.InterchangeableGroups(); len(groups) != 0 {
		t.Errorf("groups = %v, want none", groups)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 Graph
	if err := json.Unmarshal(data, &g2); err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost structure: %d/%d tasks, %d/%d edges",
			g2.NumTasks(), g.NumTasks(), g2.NumEdges(), g.NumEdges())
	}
	for i := 0; i < g.NumTasks(); i++ {
		a, b := g.Task(i), g2.Task(i)
		if a.Name != b.Name || a.Resources != b.Resources || a.Delay != b.Delay {
			t.Errorf("task %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	d1, _ := g.CriticalPath()
	d2, _ := g2.CriticalPath()
	if d1 != d2 {
		t.Errorf("critical path changed over round trip: %g vs %g", d1, d2)
	}
}

func TestDOTContainsAllTasks(t *testing.T) {
	g := diamond(t)
	dot := g.DOT()
	for _, n := range []string{"a", "b", "c", "d"} {
		if !contains(dot, `"`+n+`"`) {
			t.Errorf("DOT output missing task %q:\n%s", n, dot)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// randomDAG builds a random layered DAG; used by property tests.
func randomDAG(rng *rand.Rand) *Graph {
	g := New("rand")
	layers := 2 + rng.Intn(4)
	var prev []int
	id := 0
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(4)
		var cur []int
		for w := 0; w < width; w++ {
			name := string(rune('a'+l)) + string(rune('0'+w))
			idx := g.MustAddTask(Task{
				Name: name, Resources: 1 + rng.Intn(50),
				Delay: float64(1 + rng.Intn(100)),
			})
			cur = append(cur, idx)
			id++
		}
		for _, c := range cur {
			for _, p := range prev {
				if rng.Intn(2) == 0 {
					_ = g.AddEdgeByID(p, c, 1+rng.Intn(4))
				}
			}
		}
		prev = cur
	}
	return g
}

// Property: topological order exists for every generated DAG and respects
// all edges; CountPaths agrees with len(Paths()).
func TestRandomDAGProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make(map[int]int)
		for p, v := range order {
			pos[v] = p
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		paths, err := g.Paths(0)
		if err != nil {
			return false
		}
		return g.CountPaths(0) == len(paths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves the critical path on random DAGs.
func TestRandomJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng)
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var g2 Graph
		if err := json.Unmarshal(data, &g2); err != nil {
			return false
		}
		d1, _ := g.CriticalPath()
		d2, _ := g2.CriticalPath()
		return d1 == d2 && g.NumEdges() == g2.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

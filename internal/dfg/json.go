package dfg

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the wire schema used by cmd/sparcs and cmd/tgen.
type jsonGraph struct {
	Name  string     `json:"name"`
	Tasks []jsonTask `json:"tasks"`
	Edges []jsonEdge `json:"edges"`
}

type jsonTask struct {
	Name      string         `json:"name"`
	Type      string         `json:"type,omitempty"`
	Resources int            `json:"resources"`
	Delay     float64        `json:"delay"`
	ReadEnv   int            `json:"read_env,omitempty"`
	WriteEnv  int            `json:"write_env,omitempty"`
	Extra     map[string]int `json:"extra,omitempty"`
}

type jsonEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Data int    `json:"data"`
}

// MarshalJSON encodes the graph in the stable wire schema.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name}
	for _, t := range g.tasks {
		jg.Tasks = append(jg.Tasks, jsonTask{
			Name: t.Name, Type: t.Type, Resources: t.Resources,
			Delay: t.Delay, ReadEnv: t.ReadEnv, WriteEnv: t.WriteEnv,
			Extra: t.Extra,
		})
	}
	for _, e := range g.edges {
		jg.Edges = append(jg.Edges, jsonEdge{
			From: g.tasks[e.From].Name, To: g.tasks[e.To].Name, Data: e.Data,
		})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph from the wire schema, replacing the
// receiver's contents. The input is untrusted (it arrives from files and
// from the internal/service HTTP API), so the decoder rejects — with an
// error naming the offending element — duplicate task names, edges whose
// endpoints name unknown tasks, self and duplicate edges, negative costs,
// and dependency cycles. A successfully decoded graph always passes
// Validate.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng := New(jg.Name)
	for i, jt := range jg.Tasks {
		if _, err := ng.AddTask(Task{
			Name: jt.Name, Type: jt.Type, Resources: jt.Resources,
			Delay: jt.Delay, ReadEnv: jt.ReadEnv, WriteEnv: jt.WriteEnv,
			Extra: jt.Extra,
		}); err != nil {
			return fmt.Errorf("dfg: decode: tasks[%d]: %w", i, err)
		}
	}
	for i, je := range jg.Edges {
		if err := ng.AddEdge(je.From, je.To, je.Data); err != nil {
			return fmt.Errorf("dfg: decode: edges[%d]: %w", i, err)
		}
	}
	if err := ng.Validate(); err != nil {
		return fmt.Errorf("dfg: decode: %w", err)
	}
	*g = *ng
	return nil
}

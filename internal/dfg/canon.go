package dfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// This file implements canonical structure hashing of task graphs, the key
// ingredient of the solve memoization in internal/service: two graphs that
// differ only in task names and in the order tasks and edges were added
// produce the same hash, so isomorphic requests share one cache entry. The
// scheme is iterative Weisfeiler-Leman color refinement over name-free task
// attributes, with edge data counts folded into the neighborhood signatures
// (cf. the path-signature DAG keys of the nonenumerative k-longest-paths
// literature): each task starts from a hash of its local costs and
// repeatedly absorbs the sorted multiset of (edge data, neighbor signature)
// pairs on both sides until the signature partition stops refining.
//
// WL refinement cannot distinguish every pair of non-isomorphic graphs in
// theory, but with edge weights and the rich per-task attribute tuple the
// known counterexamples (large regular unlabeled graphs) do not arise in
// task-graph workloads; any collision is caught downstream because cached
// assignments are re-verified against the requesting graph before reuse.

// taskSig hashes the name-free local attributes of a task.
func taskSig(t *Task) uint64 {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(t.Type))
	h.Write([]byte{0})
	put(uint64(t.Resources))
	put(math.Float64bits(t.Delay))
	put(uint64(t.ReadEnv))
	put(uint64(t.WriteEnv))
	kinds := make([]string, 0, len(t.Extra))
	for k := range t.Extra {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		h.Write([]byte(k))
		h.Write([]byte{0})
		put(uint64(t.Extra[k]))
	}
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// refineSigs runs WL color refinement and returns the stable per-task
// signatures. Rounds stop when the number of distinct signatures no longer
// grows (or after NumTasks rounds, the refinement diameter bound).
func (g *Graph) refineSigs() []uint64 {
	n := len(g.tasks)
	sigs := make([]uint64, n)
	for i, t := range g.tasks {
		sigs[i] = taskSig(t)
	}
	edgeData := make(map[[2]int]int, len(g.edges))
	for _, e := range g.edges {
		edgeData[[2]int{e.From, e.To}] = e.Data
	}
	distinct := func(s []uint64) int {
		set := make(map[uint64]struct{}, len(s))
		for _, v := range s {
			set[v] = struct{}{}
		}
		return len(set)
	}
	prev := distinct(sigs)
	next := make([]uint64, n)
	var buf [8]byte
	for round := 0; round < n; round++ {
		for i := range g.tasks {
			h := sha256.New()
			put := func(v uint64) {
				binary.BigEndian.PutUint64(buf[:], v)
				h.Write(buf[:])
			}
			put(sigs[i])
			for s, side := range [2][]int{g.pred[i], g.succ[i]} {
				pairs := make([][2]uint64, 0, len(side))
				for _, nb := range side {
					var data int
					if s == 0 {
						data = edgeData[[2]int{nb, i}]
					} else {
						data = edgeData[[2]int{i, nb}]
					}
					pairs = append(pairs, [2]uint64{uint64(data), sigs[nb]})
				}
				sort.Slice(pairs, func(a, b int) bool {
					if pairs[a][0] != pairs[b][0] {
						return pairs[a][0] < pairs[b][0]
					}
					return pairs[a][1] < pairs[b][1]
				})
				put(uint64(len(pairs)))
				for _, p := range pairs {
					put(p[0])
					put(p[1])
				}
			}
			next[i] = binary.BigEndian.Uint64(h.Sum(nil))
		}
		sigs, next = next, sigs
		if d := distinct(sigs); d == prev {
			break
		} else {
			prev = d
		}
	}
	return sigs
}

// StructureHash returns a hex-encoded SHA-256 digest of the graph's
// structure that is invariant under task renaming and under reordering of
// task and edge insertion, and (modulo WL limitations, see above) differs
// for any structural change: task attributes, edge endpoints, or edge data.
// The graph Name is deliberately excluded.
func (g *Graph) StructureHash() string {
	sigs := g.refineSigs()
	final := append([]uint64(nil), sigs...)
	sort.Slice(final, func(a, b int) bool { return final[a] < final[b] })

	type etriple struct{ from, to, data uint64 }
	ets := make([]etriple, 0, len(g.edges))
	for _, e := range g.edges {
		ets = append(ets, etriple{sigs[e.From], sigs[e.To], uint64(e.Data)})
	}
	sort.Slice(ets, func(a, b int) bool {
		if ets[a].from != ets[b].from {
			return ets[a].from < ets[b].from
		}
		if ets[a].to != ets[b].to {
			return ets[a].to < ets[b].to
		}
		return ets[a].data < ets[b].data
	})

	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(g.tasks)))
	put(uint64(len(g.edges)))
	for _, s := range final {
		put(s)
	}
	for _, e := range ets {
		put(e.from)
		put(e.to)
		put(e.data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalOrder returns a permutation of task indices sorted into a
// canonical position: position i holds the task index that canonically
// comes i-th. The order is derived from the stable WL signatures with
// topological depth as a tie-break, so it is invariant under renaming and
// reordering except between WL-equivalent tasks (which are, for all
// practical task graphs, interchangeable — ties fall back to input order).
// internal/service uses this to transfer a cached partition assignment onto
// an isomorphic request graph; the transfer is always re-verified with
// tempart.CheckFeasible, so a pathological tie can cost a cache re-solve
// but never a wrong answer.
func (g *Graph) CanonicalOrder() []int {
	n := len(g.tasks)
	sigs := g.refineSigs()
	depth := make([]int, n)
	if order, err := g.TopoOrder(); err == nil {
		for _, v := range order {
			for _, s := range g.succ[v] {
				if depth[v]+1 > depth[s] {
					depth[s] = depth[v] + 1
				}
			}
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(a, b int) bool {
		ta, tb := out[a], out[b]
		if depth[ta] != depth[tb] {
			return depth[ta] < depth[tb]
		}
		return sigs[ta] < sigs[tb]
	})
	return out
}

package dfg

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalJSON fuzzes the wire schema decoder with arbitrary bytes:
// whatever is accepted must validate, survive a marshal/unmarshal round
// trip, and keep a stable structure hash across the round trip.
func FuzzUnmarshalJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"name":"g","tasks":[{"name":"a","resources":10,"delay":5}]}`,
		`{"name":"g","tasks":[{"name":"a","resources":10,"delay":5},
		  {"name":"b","resources":3,"delay":7,"extra":{"bram":2}}],
		  "edges":[{"from":"a","to":"b","data":4}]}`,
		// Rejected inputs: duplicate task, unknown edge endpoint, self
		// edge, duplicate edge, cycle, negative cost.
		`{"tasks":[{"name":"a"},{"name":"a"}]}`,
		`{"tasks":[{"name":"a"}],"edges":[{"from":"a","to":"zz","data":1}]}`,
		`{"tasks":[{"name":"a"}],"edges":[{"from":"a","to":"a","data":1}]}`,
		`{"tasks":[{"name":"a"},{"name":"b"}],
		  "edges":[{"from":"a","to":"b","data":1},{"from":"a","to":"b","data":2}]}`,
		`{"tasks":[{"name":"a"},{"name":"b"}],
		  "edges":[{"from":"a","to":"b","data":1},{"from":"b","to":"a","data":1}]}`,
		`{"tasks":[{"name":"a","resources":-1}]}`,
		`{"tasks":[{"name":"a","delay":-2}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := g.UnmarshalJSON(data); err != nil {
			return // rejected input: the only contract is "no panic"
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted a graph that fails Validate: %v\ninput: %s", err, data)
		}
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var g2 Graph
		if err := g2.UnmarshalJSON(out); err != nil {
			t.Fatalf("round trip rejected: %v\nwire: %s", err, out)
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d tasks, %d/%d edges",
				g.NumTasks(), g2.NumTasks(), g.NumEdges(), g2.NumEdges())
		}
		if g.StructureHash() != g2.StructureHash() {
			t.Fatalf("round trip changed structure hash\nwire: %s", out)
		}
	})
}

// TestUnmarshalRejectsInvalid pins the decoder's validation errors with
// readable messages (the fuzz seeds above are the adversarial corpus).
func TestUnmarshalRejectsInvalid(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"duplicate-task", `{"tasks":[{"name":"a"},{"name":"a"}]}`, "duplicate task name"},
		{"unknown-edge-from", `{"tasks":[{"name":"a"}],"edges":[{"from":"zz","to":"a","data":1}]}`, "unknown task"},
		{"unknown-edge-to", `{"tasks":[{"name":"a"}],"edges":[{"from":"a","to":"zz","data":1}]}`, "unknown task"},
		{"empty-name", `{"tasks":[{"name":""}]}`, "non-empty"},
		{"self-edge", `{"tasks":[{"name":"a"}],"edges":[{"from":"a","to":"a","data":1}]}`, "self edge"},
		{"negative-data", `{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b","data":-1}]}`, "negative data"},
		{"cycle", `{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":"a","to":"b","data":1},{"from":"b","to":"a","data":1}]}`, "cycle"},
		{"negative-resources", `{"tasks":[{"name":"a","resources":-5}]}`, "negative resources"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Graph
			err := g.UnmarshalJSON([]byte(tc.in))
			if err == nil {
				t.Fatalf("decoder accepted invalid input %s", tc.in)
			}
			if !contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Package dfg implements the behavior-level task graph of the paper
// (Fig. 3): a directed acyclic graph of coarse-grain tasks with data-unit
// weighted edges and environment I/O, enclosed by an implicit outer loop
// whose trip count is only known at run time.
//
// Each task carries the synthesis costs produced by the HLS estimation
// engine — FPGA resources R(t) (CLBs) and execution delay D(t) — which are
// the inputs to the temporal partitioning ILP (internal/tempart).
package dfg

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Task is a node of the task graph.
type Task struct {
	// Name uniquely identifies the task within its graph.
	Name string
	// Type is a free-form kind label (e.g. "T1"/"T2" for the DCT vector
	// products of the paper's Fig. 8). Tasks of equal Type are assumed to
	// have identical synthesis costs but not identical connectivity.
	Type string
	// Resources is R(t): the FPGA resource cost (CLBs) from the HLS
	// estimator.
	Resources int
	// Extra carries demands on additional resource types (flip-flops,
	// block RAMs, I/O pads, ...). The paper's Eq. 6 notes that "similar
	// equations can be added if multiple resource types exist in the
	// FPGA"; the partitioner adds one resource constraint per type that
	// the target FPGA caps (arch.FPGA.ExtraCapacity).
	Extra map[string]int
	// Delay is D(t): the task execution delay in nanoseconds from the HLS
	// estimator.
	Delay float64
	// ReadEnv is B(env, t): words read by the task from the environment.
	ReadEnv int
	// WriteEnv is B(t, env): words written by the task to the environment.
	WriteEnv int
	// Payload optionally carries a behavioral description (e.g. an
	// *hls.OpGraph) used by downstream synthesis; the graph algorithms
	// never inspect it.
	Payload any
}

// Edge is a data dependency t_from -> t_to annotated with B(t_from, t_to),
// the number of data units communicated.
type Edge struct {
	From, To int // task indices
	Data     int // data units
}

// Graph is a task graph. The zero value is an empty usable graph.
type Graph struct {
	// Name labels the graph in reports.
	Name  string
	tasks []*Task
	index map[string]int
	edges []Edge
	succ  [][]int // successor task indices
	pred  [][]int // predecessor task indices
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, index: map[string]int{}}
}

// AddTask adds a task and returns its index. The task name must be unique
// and non-empty.
func (g *Graph) AddTask(t Task) (int, error) {
	if t.Name == "" {
		return 0, errors.New("dfg: task name must be non-empty")
	}
	if g.index == nil {
		g.index = map[string]int{}
	}
	if _, dup := g.index[t.Name]; dup {
		return 0, fmt.Errorf("dfg: duplicate task name %q", t.Name)
	}
	id := len(g.tasks)
	tc := t
	g.tasks = append(g.tasks, &tc)
	g.index[t.Name] = id
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id, nil
}

// MustAddTask is AddTask that panics on error (for programmatic builders).
func (g *Graph) MustAddTask(t Task) int {
	id, err := g.AddTask(t)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge adds a dependency edge between two task names with the given
// number of communicated data units.
func (g *Graph) AddEdge(from, to string, dataUnits int) error {
	fi, ok := g.index[from]
	if !ok {
		return fmt.Errorf("dfg: unknown task %q", from)
	}
	ti, ok := g.index[to]
	if !ok {
		return fmt.Errorf("dfg: unknown task %q", to)
	}
	return g.AddEdgeByID(fi, ti, dataUnits)
}

// AddEdgeByID adds a dependency edge between two task indices.
func (g *Graph) AddEdgeByID(from, to int, dataUnits int) error {
	if from < 0 || from >= len(g.tasks) || to < 0 || to >= len(g.tasks) {
		return fmt.Errorf("dfg: edge endpoints out of range: %d -> %d", from, to)
	}
	if from == to {
		return fmt.Errorf("dfg: self edge on task %q", g.tasks[from].Name)
	}
	if dataUnits < 0 {
		return fmt.Errorf("dfg: negative data units on edge %q -> %q", g.tasks[from].Name, g.tasks[to].Name)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("dfg: duplicate edge %q -> %q", g.tasks[from].Name, g.tasks[to].Name)
		}
	}
	g.edges = append(g.edges, Edge{From: from, To: to, Data: dataUnits})
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(from, to string, dataUnits int) {
	if err := g.AddEdge(from, to, dataUnits); err != nil {
		panic(err)
	}
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Task returns the task at index i.
func (g *Graph) Task(i int) *Task { return g.tasks[i] }

// TaskByName returns the index of the named task, or -1.
func (g *Graph) TaskByName(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	return -1
}

// Edges returns the edge list (shared slice; treat as read-only).
func (g *Graph) Edges() []Edge { return g.edges }

// Succs returns the successor indices of task i (read-only).
func (g *Graph) Succs(i int) []int { return g.succ[i] }

// Preds returns the predecessor indices of task i (read-only).
func (g *Graph) Preds(i int) []int { return g.pred[i] }

// Roots returns tasks with no predecessors (the paper's T_r set).
func (g *Graph) Roots() []int {
	var out []int
	for i := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Leaves returns tasks with no successors (the paper's T_l set).
func (g *Graph) Leaves() []int {
	var out []int
	for i := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// ErrCycle is returned when the graph contains a dependency cycle.
var ErrCycle = errors.New("dfg: graph contains a cycle")

// TopoOrder returns a topological ordering of task indices, or ErrCycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := range g.tasks {
		indeg[i] = len(g.pred[i])
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural invariants: acyclicity and non-negative costs.
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for _, t := range g.tasks {
		if t.Resources < 0 {
			return fmt.Errorf("dfg: task %q has negative resources", t.Name)
		}
		if t.Delay < 0 {
			return fmt.Errorf("dfg: task %q has negative delay", t.Name)
		}
		if t.ReadEnv < 0 || t.WriteEnv < 0 {
			return fmt.Errorf("dfg: task %q has negative environment I/O", t.Name)
		}
		for k, v := range t.Extra {
			if v < 0 {
				return fmt.Errorf("dfg: task %q has negative %q demand", t.Name, k)
			}
		}
	}
	return nil
}

// ExtraTypes returns the sorted set of extra resource type names demanded
// by any task.
func (g *Graph) ExtraTypes() []string {
	set := map[string]bool{}
	for _, t := range g.tasks {
		for k := range t.Extra {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalExtra sums the demand for one extra resource type over all tasks.
func (g *Graph) TotalExtra(kind string) int {
	sum := 0
	for _, t := range g.tasks {
		sum += t.Extra[kind]
	}
	return sum
}

// TotalResources sums R(t) over all tasks (the preprocessing numerator of
// the partition-count lower bound).
func (g *Graph) TotalResources() int {
	sum := 0
	for _, t := range g.tasks {
		sum += t.Resources
	}
	return sum
}

// CountPaths returns the number of root-to-leaf paths, saturating at cap
// (pass cap <= 0 for no cap). This guards the exact path enumeration used
// by the ILP's per-path delay constraints (Eq. 7).
func (g *Graph) CountPaths(cap int) int {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	count := make([]int, len(g.tasks))
	total := 0
	sat := func(a, b int) int {
		c := a + b
		if cap > 0 && c > cap {
			return cap
		}
		if c < 0 { // overflow
			return int(^uint(0) >> 1)
		}
		return c
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if len(g.succ[v]) == 0 {
			count[v] = 1
			continue
		}
		for _, s := range g.succ[v] {
			count[v] = sat(count[v], count[s])
		}
	}
	for _, r := range g.Roots() {
		total = sat(total, count[r])
	}
	return total
}

// Paths enumerates all root-to-leaf paths (the paper's P_rl set) as slices
// of task indices. If maxPaths > 0 and the enumeration would exceed it, an
// error is returned; callers should then fall back to a heuristic
// partitioner or a coarser delay model.
func (g *Graph) Paths(maxPaths int) ([][]int, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	if maxPaths > 0 {
		if n := g.CountPaths(maxPaths + 1); n > maxPaths {
			return nil, fmt.Errorf("dfg: path enumeration exceeds cap (%d > %d)", n, maxPaths)
		}
	}
	var out [][]int
	var cur []int
	var walk func(v int)
	walk = func(v int) {
		cur = append(cur, v)
		if len(g.succ[v]) == 0 {
			out = append(out, append([]int(nil), cur...))
		} else {
			for _, s := range g.succ[v] {
				walk(s)
			}
		}
		cur = cur[:len(cur)-1]
	}
	for _, r := range g.Roots() {
		walk(r)
	}
	return out, nil
}

// PathDelay sums D(t) along a path of task indices.
func (g *Graph) PathDelay(path []int) float64 {
	d := 0.0
	for _, v := range path {
		d += g.tasks[v].Delay
	}
	return d
}

// CriticalPath returns the maximum root-to-leaf path delay and one path
// achieving it. For an empty graph it returns (0, nil).
func (g *Graph) CriticalPath() (float64, []int) {
	order, err := g.TopoOrder()
	if err != nil || len(order) == 0 {
		return 0, nil
	}
	dist := make([]float64, len(g.tasks))
	from := make([]int, len(g.tasks))
	for i := range from {
		from[i] = -1
	}
	best := -1.0
	bestV := -1
	for _, v := range order {
		dist[v] += g.tasks[v].Delay
		for _, s := range g.succ[v] {
			if dist[v] > dist[s] {
				dist[s] = dist[v]
				from[s] = v
			}
		}
		if len(g.succ[v]) == 0 && dist[v] > best {
			best = dist[v]
			bestV = v
		}
	}
	if bestV < 0 {
		return 0, nil
	}
	var path []int
	for v := bestV; v >= 0; v = from[v] {
		path = append(path, v)
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path
}

// EdgeData returns B(t_from, t_to) or 0 when the edge does not exist.
func (g *Graph) EdgeData(from, to int) int {
	for _, e := range g.edges {
		if e.From == from && e.To == to {
			return e.Data
		}
	}
	return 0
}

// InterchangeableGroups returns groups of task indices that are provably
// interchangeable for partitioning: same Type, same Resources and Delay,
// same environment I/O, and identical predecessor and successor sets.
// The temporal partitioner uses these groups to add symmetry-breaking
// constraints, which dramatically reduce the B&B search on regular DSP
// graphs (e.g. the 16 T1 vector products of the DCT).
func (g *Graph) InterchangeableGroups() [][]int {
	n := len(g.tasks)
	if n == 0 {
		return nil
	}
	// Sorted neighbour sets, packed into one backing array (this runs once
	// per partitioning solve, on its hot path).
	total := 0
	for i := 0; i < n; i++ {
		total += len(g.pred[i]) + len(g.succ[i])
	}
	flat := make([]int, 0, total)
	pred := make([][]int, n)
	succ := make([][]int, n)
	for i := 0; i < n; i++ {
		at := len(flat)
		flat = append(flat, g.pred[i]...)
		pred[i] = flat[at:len(flat):len(flat)]
		sort.Ints(pred[i])
		at = len(flat)
		flat = append(flat, g.succ[i]...)
		succ[i] = flat[at:len(flat):len(flat)]
		sort.Ints(succ[i])
	}
	cmpInts := func(a, b []int) int {
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				if a[k] < b[k] {
					return -1
				}
				return 1
			}
		}
		return len(a) - len(b)
	}
	// cmp orders tasks by their interchangeability key; equal keys mean the
	// tasks are interchangeable.
	cmp := func(a, b int) int {
		ta, tb := g.tasks[a], g.tasks[b]
		switch {
		case ta.Type != tb.Type:
			if ta.Type < tb.Type {
				return -1
			}
			return 1
		case ta.Resources != tb.Resources:
			return ta.Resources - tb.Resources
		case ta.Delay != tb.Delay:
			if ta.Delay < tb.Delay {
				return -1
			}
			return 1
		case ta.ReadEnv != tb.ReadEnv:
			return ta.ReadEnv - tb.ReadEnv
		case ta.WriteEnv != tb.WriteEnv:
			return ta.WriteEnv - tb.WriteEnv
		}
		if c := cmpInts(pred[a], pred[b]); c != 0 {
			return c
		}
		return cmpInts(succ[a], succ[b])
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if c := cmp(order[a], order[b]); c != 0 {
			return c < 0
		}
		return order[a] < order[b] // members of a run stay ascending
	})
	var out [][]int
	for i := 0; i < n; {
		j := i + 1
		for j < n && cmp(order[i], order[j]) == 0 {
			j++
		}
		if j-i > 1 {
			out = append(out, append([]int(nil), order[i:j]...))
		}
		i = j
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// DOT renders the graph in Graphviz dot syntax for inspection.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s R=%d D=%.0f\"];\n",
			t.Name, t.Name, t.Type, t.Resources, t.Delay)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%d\"];\n",
			g.tasks[e.From].Name, g.tasks[e.To].Name, e.Data)
	}
	b.WriteString("}\n")
	return b.String()
}

// Package arch describes the Run-Time Reconfigured (RTR) system
// architecture of the paper's Fig. 1: a single FPGA attached to an external
// on-board memory, with a host that loads configurations and moves data
// over a bus.
//
// All durations are modelled in nanoseconds (float64) so that analytic
// formulas and the event simulator in internal/sim share units.
package arch

import (
	"errors"
	"fmt"
)

// FPGA describes the reconfigurable device.
type FPGA struct {
	// Name labels the device (e.g. "XC4044").
	Name string
	// CLBs is R_max: the resource capacity in configurable logic blocks.
	CLBs int
	// ReconfigTime is CT: the full-device reconfiguration time in ns.
	ReconfigTime float64
	// MaxClock is the fastest clock the board supports, expressed as the
	// minimum clock period in ns (user constraint for the HLS engine).
	MinClockNS float64
	// ExtraCapacity caps additional resource types (e.g. "FF", "BRAM").
	// Task demands on types missing here are unconstrained, matching the
	// paper's treatment of CLBs as the binding resource.
	ExtraCapacity map[string]int
	// PartialReconfig models XC6200-class devices where configuration
	// time scales with the reconfigured area: loading a partition that
	// uses u CLBs takes ReconfigTime * u / CLBs instead of the full
	// ReconfigTime.
	PartialReconfig bool
}

// Memory describes the on-board memory bank.
type Memory struct {
	// Words is M_max: capacity in words.
	Words int
	// WordBits is the word width in bits.
	WordBits int
	// AccessNS is the time for one on-board memory access by the FPGA
	// datapath, in ns (usually folded into the design clock).
	AccessNS float64
}

// HostLink describes the host <-> board connection (the paper's PCI bus).
type HostLink struct {
	// Name labels the link (e.g. "PCI-33").
	Name string
	// WordTransferNS is D_sv: the delay to communicate one memory word
	// between host and board memory, in ns, including the handshake
	// amortized per word.
	WordTransferNS float64
	// StartSignalNS is the latency for the host's start signal to reach
	// the FPGA controller.
	StartSignalNS float64
	// FinishSignalNS is the latency for the controller's finish signal to
	// reach the host.
	FinishSignalNS float64
	// ConfigLoadNS is the host-side overhead to initiate a configuration
	// load (added to the FPGA's own ReconfigTime).
	ConfigLoadNS float64
}

// Board bundles the full RTR system architecture.
type Board struct {
	Name   string
	FPGA   FPGA
	Memory Memory
	Link   HostLink
}

// Validate checks the board parameters for sanity.
func (b *Board) Validate() error {
	if b.FPGA.CLBs <= 0 {
		return fmt.Errorf("arch: board %q: FPGA CLBs must be positive", b.Name)
	}
	if b.FPGA.ReconfigTime < 0 {
		return fmt.Errorf("arch: board %q: negative reconfiguration time", b.Name)
	}
	if b.Memory.Words <= 0 {
		return fmt.Errorf("arch: board %q: memory size must be positive", b.Name)
	}
	if b.Link.WordTransferNS < 0 {
		return fmt.Errorf("arch: board %q: negative word transfer delay", b.Name)
	}
	return nil
}

// Common time constants in nanoseconds.
const (
	Microsecond = 1e3
	Millisecond = 1e6
	Second      = 1e9
)

// ErrUnknownBoard is returned by BoardByName for unknown presets.
var ErrUnknownBoard = errors.New("arch: unknown board preset")

// PaperXC4044Board returns the board used in the paper's case study:
// a single Xilinx XC4044 (1600 CLBs), one 64K x 32-bit memory bank,
// 100 ms reconfiguration, and a PCI host link at 33 MHz.
//
// D_sv calibration: the paper moves data between host and board memory over
// 33 MHz / 32-bit PCI. One word per bus clock in burst (DMA) mode is ~30 ns
// per word; the simple handshaking protocol is amortized across a burst. We
// use D_sv = 30 ns/word. EXPERIMENTS.md reports the sensitivity of the
// Table 1/2 reproduction to this constant.
func PaperXC4044Board() Board {
	return Board{
		Name: "XC4044-PCI",
		FPGA: FPGA{
			Name:         "XC4044",
			CLBs:         1600,
			ReconfigTime: 100 * Millisecond,
			MinClockNS:   25,
		},
		Memory: Memory{
			Words:    64 * 1024,
			WordBits: 32,
			AccessNS: 25,
		},
		Link: HostLink{
			Name:           "PCI-33",
			WordTransferNS: 30,
			StartSignalNS:  1 * Microsecond,
			FinishSignalNS: 1 * Microsecond,
			ConfigLoadNS:   0,
		},
	}
}

// XC6000Board returns the paper's conjectured low-overhead device: an
// XC6000-series FPGA with a 500 microsecond reconfiguration time, same
// board otherwise.
func XC6000Board() Board {
	b := PaperXC4044Board()
	b.Name = "XC6000-PCI"
	b.FPGA.Name = "XC6200"
	b.FPGA.ReconfigTime = 500 * Microsecond
	return b
}

// XC6000PartialBoard is the XC6000 board with partial reconfiguration
// enabled (the XC6200's headline capability): configuration time scales
// with the partition's CLB usage.
func XC6000PartialBoard() Board {
	b := XC6000Board()
	b.Name = "XC6000-partial"
	b.FPGA.PartialReconfig = true
	return b
}

// TimeMultiplexedBoard models a Trimberger-style time-multiplexed FPGA with
// nanosecond-scale context switches (reference [9] of the paper).
func TimeMultiplexedBoard() Board {
	b := PaperXC4044Board()
	b.Name = "TM-FPGA"
	b.FPGA.Name = "TMFPGA"
	b.FPGA.ReconfigTime = 100 // 100 ns context switch
	return b
}

// WildForceBoard models a WILDFORCE-class commercial board (reference [18])
// with tens-of-milliseconds reconfiguration.
func WildForceBoard() Board {
	b := PaperXC4044Board()
	b.Name = "WildForce"
	b.FPGA.Name = "XC4036"
	b.FPGA.CLBs = 1296
	b.FPGA.ReconfigTime = 50 * Millisecond
	return b
}

// SmallTestBoard returns a tiny board useful in unit tests and examples:
// 100 CLBs, 1K words, 1 ms reconfiguration.
func SmallTestBoard() Board {
	return Board{
		Name: "small-test",
		FPGA: FPGA{Name: "toy", CLBs: 100, ReconfigTime: 1 * Millisecond, MinClockNS: 10},
		Memory: Memory{
			Words: 1024, WordBits: 32, AccessNS: 10,
		},
		Link: HostLink{
			Name: "test-link", WordTransferNS: 100,
			StartSignalNS: 100, FinishSignalNS: 100,
		},
	}
}

// BoardByName resolves a preset board by name.
func BoardByName(name string) (Board, error) {
	switch name {
	case "xc4044", "XC4044", "XC4044-PCI", "paper":
		return PaperXC4044Board(), nil
	case "xc6000", "XC6000", "XC6000-PCI":
		return XC6000Board(), nil
	case "tmfpga", "TM-FPGA":
		return TimeMultiplexedBoard(), nil
	case "wildforce", "WildForce":
		return WildForceBoard(), nil
	case "small", "small-test":
		return SmallTestBoard(), nil
	}
	return Board{}, fmt.Errorf("%w: %q", ErrUnknownBoard, name)
}

// Presets lists the available preset names.
func Presets() []string {
	return []string{"XC4044-PCI", "XC6000-PCI", "TM-FPGA", "WildForce", "small-test"}
}

package arch

import (
	"errors"
	"testing"
)

func TestPaperBoardParameters(t *testing.T) {
	b := PaperXC4044Board()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.FPGA.CLBs != 1600 {
		t.Errorf("CLBs = %d, want 1600", b.FPGA.CLBs)
	}
	if b.FPGA.ReconfigTime != 100*Millisecond {
		t.Errorf("ReconfigTime = %g ns, want 100 ms", b.FPGA.ReconfigTime)
	}
	if b.Memory.Words != 65536 {
		t.Errorf("Memory.Words = %d, want 65536", b.Memory.Words)
	}
	if b.Memory.WordBits != 32 {
		t.Errorf("WordBits = %d, want 32", b.Memory.WordBits)
	}
}

func TestXC6000Board(t *testing.T) {
	b := XC6000Board()
	if b.FPGA.ReconfigTime != 500*Microsecond {
		t.Errorf("ReconfigTime = %g, want 500 us", b.FPGA.ReconfigTime)
	}
	// Everything else inherits from the paper board.
	if b.FPGA.CLBs != 1600 || b.Memory.Words != 65536 {
		t.Error("XC6000 board should share XC4044 board parameters")
	}
}

func TestValidateCatchesBadBoards(t *testing.T) {
	cases := []func(*Board){
		func(b *Board) { b.FPGA.CLBs = 0 },
		func(b *Board) { b.FPGA.ReconfigTime = -1 },
		func(b *Board) { b.Memory.Words = 0 },
		func(b *Board) { b.Link.WordTransferNS = -5 },
	}
	for i, mutate := range cases {
		b := PaperXC4044Board()
		mutate(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid board accepted", i)
		}
	}
}

func TestBoardByName(t *testing.T) {
	for _, name := range []string{"paper", "xc4044", "xc6000", "tmfpga", "wildforce", "small"} {
		if _, err := BoardByName(name); err != nil {
			t.Errorf("BoardByName(%q): %v", name, err)
		}
	}
	if _, err := BoardByName("nope"); !errors.Is(err, ErrUnknownBoard) {
		t.Errorf("unknown board error = %v", err)
	}
}

func TestPresetsAllResolve(t *testing.T) {
	for _, name := range Presets() {
		b, err := BoardByName(name)
		if err != nil {
			t.Errorf("preset %q does not resolve: %v", name, err)
			continue
		}
		if err := b.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
}

func TestTimeConstants(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Error("time constants are not in nanoseconds")
	}
}

package cluster

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/dctn"
	"repro/internal/dfg"
	"repro/internal/hls"
	"repro/internal/ilp"
	"repro/internal/jpeg"
	"repro/internal/listpart"
	"repro/internal/tempart"
)

func TestChainsMergeLinearPipeline(t *testing.T) {
	g := dfg.New("pipe")
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		g.MustAddTask(dfg.Task{Name: n, Resources: 10, Delay: 100})
	}
	for i := 0; i+1 < len(names); i++ {
		g.MustAddEdge(names[i], names[i+1], 2)
	}
	c, err := Chains(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.NumTasks() != 1 {
		t.Fatalf("coarse tasks = %d, want 1", c.Coarse.NumTasks())
	}
	ct := c.Coarse.Task(0)
	if ct.Resources != 40 || ct.Delay != 400 {
		t.Errorf("cluster cost = %d CLBs / %g ns, want 40/400", ct.Resources, ct.Delay)
	}
	fine, err := c.ExpandAssign([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fine {
		if p != 0 {
			t.Error("expansion lost tasks")
		}
	}
}

func TestChainsStopAtFanout(t *testing.T) {
	g := dfg.New("fan")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 1, Delay: 1})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 1, Delay: 1})
	g.MustAddTask(dfg.Task{Name: "c", Resources: 1, Delay: 1})
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("a", "c", 1)
	c, err := Chains(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.NumTasks() != 3 {
		t.Errorf("coarse tasks = %d, want 3 (fan-out must not merge)", c.Coarse.NumTasks())
	}
}

func TestParallelByTypeOnDCT(t *testing.T) {
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster up to 4 same-type parallel tasks: the 16 T1s (pairwise
	// parallel) become 4 clusters, each row's 4 T2s 1 cluster.
	c, err := ParallelByType(g, 4*180, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.NumTasks() >= g.NumTasks() {
		t.Errorf("no coarsening: %d -> %d", g.NumTasks(), c.Coarse.NumTasks())
	}
	// Temporal order must survive: coarse graph is a DAG (Validate ran),
	// and dependent types remain ordered.
	if err := c.Coarse.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestClusteredILPOnDCT8: the 128-task 8x8 DCT is out of reach for the
// direct ILP; clustering to ~16 macro-tasks makes it solvable, and the
// expanded assignment must be feasible and no worse than greedy.
func TestClusteredILPOnDCT8(t *testing.T) {
	lib := hls.XC4000Library()
	g, err := dctn.BuildGraph(8, lib, hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	board := arch.PaperXC4044Board()

	// Cluster same-type parallel tasks into near-FPGA-sized macro-tasks:
	// the 128 fine tasks coarsen to a handful, each filling most of a
	// configuration, which keeps the ILP small. A time limit makes the
	// test about clustering correctness, not solver speed: the warm start
	// guarantees an incumbent, so a Feasible (not proven optimal) result
	// is acceptable here.
	c, err := ParallelByType(g, board.FPGA.CLBs-100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.NumTasks() > 24 {
		t.Fatalf("coarse graph still has %d tasks", c.Coarse.NumTasks())
	}
	part, err := tempart.Solve(tempart.Input{
		Graph: c.Coarse, Board: board,
		ILP: ilp.Options{TimeLimit: 15 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := c.ExpandAssign(part.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if err := tempart.CheckFeasible(g, board, fine, part.N); err != nil {
		t.Fatalf("expanded assignment infeasible: %v", err)
	}
	// Evaluate the fine latency with the true path model and compare with
	// greedy on the fine graph.
	paths, err := g.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	fineDelays := tempart.EvaluateDelays(g, fine, part.N, paths)
	fineLatency := tempart.Latency(board, fineDelays)

	greedy, err := listpart.Solve(g, board, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clustered ILP: N=%d latency=%.0f; fine greedy: N=%d latency=%.0f",
		part.N, fineLatency, greedy.N, greedy.Latency)
	// The granularity tradeoff (EXPERIMENTS.md §9): near-FPGA-sized macro
	// tasks keep the ILP tractable but waste capacity, so the clustered
	// ILP may need a couple more partitions than fine-grained greedy.
	// Pin the band rather than pretending clustering is free.
	if part.N > greedy.N+3 {
		t.Errorf("clustered ILP N=%d far above greedy N=%d; granularity loss regressed", part.N, greedy.N)
	}
	if fineLatency > 1.3*greedy.Latency {
		t.Errorf("clustered latency %.0f > 1.3x greedy %.0f", fineLatency, greedy.Latency)
	}
}

func TestExpandAssignErrors(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 1, Delay: 1})
	c, err := Chains(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExpandAssign([]int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestClusterCyclicRejected(t *testing.T) {
	g := dfg.New("cyc")
	g.MustAddTask(dfg.Task{Name: "a"})
	g.MustAddTask(dfg.Task{Name: "b"})
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("b", "a", 1)
	if _, err := Chains(g); err == nil {
		t.Error("cyclic graph accepted")
	}
	if _, err := ParallelByType(g, 100, 0); err == nil {
		t.Error("cyclic graph accepted")
	}
}

// Package cluster coarsens large task graphs so the temporal partitioning
// ILP stays tractable. The paper's ILP explores "at the task level" to
// escape the op-level blowup of the authors' earlier DATE'98 formulation;
// clustering is the same lever one level up: groups of tasks that would
// never be split profitably are merged into macro-tasks, the ILP runs on
// the coarse graph, and the assignment expands back to the original tasks.
//
// Two safe coarsening rules are provided:
//
//   - Chains: a task with a single successor that has a single predecessor
//     merges with it (delays add, convexity is trivial).
//   - ParallelByType: pairwise-parallel tasks (no path between them) of
//     the same Type merge up to a resource cap (delays take the max —
//     exact when member delays are equal, an admissible overestimate
//     otherwise).
//
// Both rules preserve acyclicity of the coarse graph, so any feasible
// coarse partitioning expands to a feasible fine partitioning.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
)

// Clustering maps a coarse graph back to its original tasks.
type Clustering struct {
	// Coarse is the clustered task graph.
	Coarse *dfg.Graph
	// Members lists, per coarse task index, the original task indices.
	Members [][]int
}

// ExpandAssign maps a coarse partition assignment back onto the original
// tasks.
func (c *Clustering) ExpandAssign(coarseAssign []int) ([]int, error) {
	if len(coarseAssign) != c.Coarse.NumTasks() {
		return nil, fmt.Errorf("cluster: assignment covers %d of %d coarse tasks",
			len(coarseAssign), c.Coarse.NumTasks())
	}
	total := 0
	for _, m := range c.Members {
		total += len(m)
	}
	out := make([]int, total)
	for ci, members := range c.Members {
		for _, t := range members {
			out[t] = coarseAssign[ci]
		}
	}
	return out, nil
}

// Chains merges maximal linear chains (single-successor tasks whose
// successor has a single predecessor and, to stay cost-exact, the same
// environment-free interface in between).
func Chains(g *dfg.Graph) (*Clustering, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	n := g.NumTasks()
	next := make([]int, n)
	isHead := make([]bool, n)
	for i := range next {
		next[i] = -1
		isHead[i] = true
	}
	for i := 0; i < n; i++ {
		succs := g.Succs(i)
		if len(succs) != 1 {
			continue
		}
		s := succs[0]
		if len(g.Preds(s)) != 1 {
			continue
		}
		next[i] = s
		isHead[s] = false
	}
	var groups [][]int
	for i := 0; i < n; i++ {
		if !isHead[i] {
			continue
		}
		grp := []int{i}
		for v := next[i]; v >= 0; v = next[v] {
			grp = append(grp, v)
		}
		groups = append(groups, grp)
	}
	return build(g, groups, true)
}

// ParallelByType merges same-Type, pairwise-parallel tasks into clusters
// of at most maxResources CLBs (and at most maxGroup members; pass 0 for
// no member cap).
func ParallelByType(g *dfg.Graph, maxResources, maxGroup int) (*Clustering, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	// reach[u] = bitset of tasks reachable from u (including u).
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	for i := range reach {
		reach[i] = make([]uint64, words)
		reach[i][i/64] |= 1 << (i % 64)
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, s := range g.Succs(u) {
			for w := 0; w < words; w++ {
				reach[u][w] |= reach[s][w]
			}
		}
	}
	parallel := func(a, b int) bool {
		if reach[a][b/64]&(1<<(b%64)) != 0 {
			return false
		}
		return reach[b][a/64]&(1<<(a%64)) == 0
	}

	assigned := make([]bool, n)
	var groups [][]int
	for _, u := range order {
		if assigned[u] {
			continue
		}
		grp := []int{u}
		res := g.Task(u).Resources
		assigned[u] = true
		for _, v := range order {
			if assigned[v] || g.Task(v).Type != g.Task(u).Type {
				continue
			}
			if maxGroup > 0 && len(grp) >= maxGroup {
				break
			}
			if res+g.Task(v).Resources > maxResources {
				continue
			}
			ok := true
			for _, m := range grp {
				if !parallel(m, v) {
					ok = false
					break
				}
			}
			if ok {
				grp = append(grp, v)
				res += g.Task(v).Resources
				assigned[v] = true
			}
		}
		sort.Ints(grp)
		groups = append(groups, grp)
	}
	return build(g, groups, false)
}

// build constructs the coarse graph from task groups. chainDelays selects
// additive (chain) vs. max (parallel) delay composition.
func build(g *dfg.Graph, groups [][]int, chainDelays bool) (*Clustering, error) {
	coarse := dfg.New(g.Name + "-coarse")
	clusterOf := make([]int, g.NumTasks())
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	for ci, members := range groups {
		res, readEnv, writeEnv := 0, 0, 0
		delay := 0.0
		typ := g.Task(members[0]).Type
		for _, t := range members {
			task := g.Task(t)
			res += task.Resources
			readEnv += task.ReadEnv
			writeEnv += task.WriteEnv
			if chainDelays {
				delay += task.Delay
			} else if task.Delay > delay {
				delay = task.Delay
			}
			if task.Type != typ {
				typ = "mixed"
			}
			clusterOf[t] = ci
		}
		if _, err := coarse.AddTask(dfg.Task{
			Name: fmt.Sprintf("c%d_%s", ci, g.Task(members[0]).Name),
			Type: typ, Resources: res, Delay: delay,
			ReadEnv: readEnv, WriteEnv: writeEnv,
		}); err != nil {
			return nil, err
		}
	}
	for _, t := range clusterOf {
		if t < 0 {
			return nil, fmt.Errorf("cluster: task left unassigned")
		}
	}
	// Aggregate inter-cluster edges.
	agg := map[[2]int]int{}
	for _, e := range g.Edges() {
		cf, ct := clusterOf[e.From], clusterOf[e.To]
		if cf == ct {
			continue
		}
		agg[[2]int{cf, ct}] += e.Data
	}
	keys := make([][2]int, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		if err := coarse.AddEdgeByID(k[0], k[1], agg[k]); err != nil {
			return nil, err
		}
	}
	if err := coarse.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: coarse graph invalid (non-convex grouping?): %w", err)
	}
	return &Clustering{Coarse: coarse, Members: groups}, nil
}

package spatial

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/hls"
	"repro/internal/jpeg"
)

func TestSingleDeviceTrivial(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 10})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 10})
	g.MustAddEdge("a", "b", 5)
	r, err := Partition(g, []int{0, 1}, Board{Devices: 1, CLBsEach: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.CutEdges != 0 || r.CutData != 0 {
		t.Errorf("single device has cut %d/%d", r.CutEdges, r.CutData)
	}
}

func TestCapacityForcesSplit(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60})
	g.MustAddEdge("a", "b", 3)
	r, err := Partition(g, []int{0, 1}, Board{Devices: 2, CLBsEach: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.Assign[0] == r.Assign[1] {
		t.Error("120 CLBs packed into one 100-CLB device")
	}
	if r.CutData != 3 {
		t.Errorf("cut data = %d, want 3", r.CutData)
	}
}

func TestImprovementReducesCut(t *testing.T) {
	// Two tightly coupled pairs; first-fit in topological order may split
	// a pair, improvement must reunite them.
	g := dfg.New("pairs")
	g.MustAddTask(dfg.Task{Name: "a1", Resources: 40})
	g.MustAddTask(dfg.Task{Name: "b1", Resources: 40})
	g.MustAddTask(dfg.Task{Name: "a2", Resources: 40})
	g.MustAddTask(dfg.Task{Name: "b2", Resources: 40})
	g.MustAddEdge("a1", "a2", 10)
	g.MustAddEdge("b1", "b2", 10)
	g.MustAddEdge("a1", "b2", 1)
	r, err := Partition(g, []int{0, 1, 2, 3}, Board{Devices: 2, CLBsEach: 80})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: {a1,a2} vs {b1,b2} with cut 1.
	if r.CutData != 1 {
		t.Errorf("cut data = %d, want 1 (assign %v)", r.CutData, r.Assign)
	}
}

func TestNoFit(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 150})
	if _, err := Partition(g, []int{0}, Board{Devices: 2, CLBsEach: 100}); err == nil {
		t.Error("oversized task accepted")
	}
	g2 := dfg.New("g2")
	for i := 0; i < 5; i++ {
		g2.MustAddTask(dfg.Task{Name: string(rune('a' + i)), Resources: 60})
	}
	if _, err := Partition(g2, []int{0, 1, 2, 3, 4}, Board{Devices: 2, CLBsEach: 100}); err == nil {
		t.Error("300 CLBs over 2x100 accepted")
	}
}

func TestPinBudget(t *testing.T) {
	g := dfg.New("g")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60})
	g.MustAddEdge("a", "b", 50)
	if _, err := Partition(g, []int{0, 1}, Board{Devices: 2, CLBsEach: 100, MaxCutData: 10}); err == nil {
		t.Error("pin budget violation accepted")
	}
}

// TestDCTSegmentAcrossTwoFPGAs: partition 2 of the case study (8 T2 tasks,
// 1440 CLBs) split over two 800-CLB devices: row pairs share no edges, so
// a zero-cut split exists and must be found.
func TestDCTSegmentAcrossTwoFPGAs(t *testing.T) {
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	var seg []int
	for i := 0; i < g.NumTasks(); i++ {
		n := g.Task(i).Name
		if strings.HasPrefix(n, "T2_0") || strings.HasPrefix(n, "T2_1") {
			seg = append(seg, i)
		}
	}
	r, err := Partition(g, seg, Board{Devices: 2, CLBsEach: 800})
	if err != nil {
		t.Fatal(err)
	}
	if r.CutData != 0 {
		t.Errorf("cut = %d, want 0 (T2 tasks are pairwise independent)", r.CutData)
	}
	if r.Used[0] > 800 || r.Used[1] > 800 {
		t.Errorf("capacity violated: %v", r.Used)
	}
}

func TestPartitionAll(t *testing.T) {
	g, err := jpeg.BuildDCTGraph(hls.XC4000Library(), hls.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		n := g.Task(i).Name
		switch {
		case g.Task(i).Type == "T1":
			assign[i] = 0
		case strings.HasPrefix(n, "T2_0") || strings.HasPrefix(n, "T2_1"):
			assign[i] = 1
		default:
			assign[i] = 2
		}
	}
	results, err := PartitionAll(g, assign, 3, Board{Devices: 2, CLBsEach: 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for p, r := range results {
		for _, u := range r.Used {
			if u > 800 {
				t.Errorf("segment %d overfilled: %v", p, r.Used)
			}
		}
	}
}

// Property: the result always respects capacity, covers all tasks, and the
// reported cut matches a recount.
func TestSpatialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.New("r")
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			g.MustAddTask(dfg.Task{Name: string(rune('a' + i)), Resources: 10 + rng.Intn(40)})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					_ = g.AddEdgeByID(i, j, 1+rng.Intn(9))
				}
			}
		}
		tasks := make([]int, n)
		inSet := map[int]bool{}
		for i := range tasks {
			tasks[i] = i
			inSet[i] = true
		}
		board := Board{Devices: 2 + rng.Intn(3), CLBsEach: 120}
		r, err := Partition(g, tasks, board)
		if err != nil {
			return true // legitimate no-fit
		}
		if len(r.Assign) != n {
			return false
		}
		used := make([]int, board.Devices)
		for t, dev := range r.Assign {
			if dev < 0 || dev >= board.Devices {
				return false
			}
			used[dev] += g.Task(t).Resources
		}
		for d, u := range used {
			if u != r.Used[d] || u > board.CLBsEach {
				return false
			}
		}
		e, dta := Cut(g, inSet, r.Assign)
		return e == r.CutEdges && dta == r.CutData
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

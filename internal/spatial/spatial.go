// Package spatial implements the SPARCS spatial partitioning tool the
// paper's conclusion situates this work inside: "a spatial partitioning
// tool to map the tasks to individual FPGAs". Given the tasks of one
// temporal segment and a board with several FPGAs, it assigns tasks to
// devices under per-device resource capacity while minimizing the data
// carried by inter-FPGA nets (the signals that must cross device pins).
//
// The algorithm is a first-fit seed followed by Fiduccia–Mattheyses-style
// improvement passes: single-task moves that reduce the weighted cut are
// applied greedily until a pass yields no improvement.
package spatial

import (
	"errors"
	"fmt"

	"repro/internal/dfg"
)

// Board describes a multi-FPGA board (devices are homogeneous, as on the
// WILDFORCE-class boards SPARCS targeted).
type Board struct {
	// Devices is the FPGA count.
	Devices int
	// CLBsEach is each device's logic capacity.
	CLBsEach int
	// MaxCutData optionally caps the total inter-device data units
	// (pin-budget proxy); 0 = uncapped.
	MaxCutData int
}

// Result is a spatial partitioning of one temporal segment.
type Result struct {
	// Assign maps each task index (into the original graph) to a device.
	Assign map[int]int
	// CutEdges counts edges between devices.
	CutEdges int
	// CutData sums the data units of cut edges.
	CutData int
	// Used holds per-device CLB usage.
	Used []int
	// Passes is the number of improvement passes run.
	Passes int
}

// Errors.
var (
	ErrNoFit   = errors.New("spatial: tasks do not fit the device array")
	ErrBadTask = errors.New("spatial: task not in graph")
)

// Partition maps the given tasks (a subset of g, typically one temporal
// partition) onto the board.
func Partition(g *dfg.Graph, tasks []int, board Board) (*Result, error) {
	if board.Devices < 1 || board.CLBsEach < 1 {
		return nil, fmt.Errorf("spatial: invalid board %+v", board)
	}
	inSet := map[int]bool{}
	for _, t := range tasks {
		if t < 0 || t >= g.NumTasks() {
			return nil, fmt.Errorf("%w: %d", ErrBadTask, t)
		}
		if g.Task(t).Resources > board.CLBsEach {
			return nil, fmt.Errorf("%w: task %q needs %d CLBs, device has %d",
				ErrNoFit, g.Task(t).Name, g.Task(t).Resources, board.CLBsEach)
		}
		inSet[t] = true
	}

	res := &Result{Assign: map[int]int{}, Used: make([]int, board.Devices)}
	// First-fit seed in topological order (keeps connected neighbourhoods
	// together, a decent cut seed).
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, t := range order {
		if !inSet[t] {
			continue
		}
		placed := false
		for dev := 0; dev < board.Devices; dev++ {
			if res.Used[dev]+g.Task(t).Resources <= board.CLBsEach {
				res.Assign[t] = dev
				res.Used[dev] += g.Task(t).Resources
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("%w: %d tasks over %d devices", ErrNoFit, len(tasks), board.Devices)
		}
	}

	// Improvement passes: single-task moves that reduce the incident cut
	// (when capacity allows), then pairwise swaps, which escape the
	// full-device local minima moves cannot.
	for pass := 0; pass < 16; pass++ {
		improved := false
		for _, t := range order {
			if !inSet[t] {
				continue
			}
			cur := res.Assign[t]
			bestDev, bestGain := cur, 0
			for dev := 0; dev < board.Devices; dev++ {
				if dev == cur {
					continue
				}
				if res.Used[dev]+g.Task(t).Resources > board.CLBsEach {
					continue
				}
				gain := moveGain(g, inSet, res.Assign, t, dev)
				if gain > bestGain {
					bestGain = gain
					bestDev = dev
				}
			}
			if bestDev != cur {
				res.Used[cur] -= g.Task(t).Resources
				res.Used[bestDev] += g.Task(t).Resources
				res.Assign[t] = bestDev
				improved = true
			}
		}
		// Swap pass.
		for i := 0; i < len(order); i++ {
			t := order[i]
			if !inSet[t] {
				continue
			}
			for j := i + 1; j < len(order); j++ {
				u := order[j]
				if !inSet[u] || res.Assign[t] == res.Assign[u] {
					continue
				}
				dt, du := res.Assign[t], res.Assign[u]
				rt, ru := g.Task(t).Resources, g.Task(u).Resources
				if res.Used[du]-ru+rt > board.CLBsEach || res.Used[dt]-rt+ru > board.CLBsEach {
					continue
				}
				before := incidentCut(g, inSet, res.Assign, t, u)
				res.Assign[t], res.Assign[u] = du, dt
				after := incidentCut(g, inSet, res.Assign, t, u)
				if after < before {
					res.Used[dt] += ru - rt
					res.Used[du] += rt - ru
					improved = true
				} else {
					res.Assign[t], res.Assign[u] = dt, du // revert
				}
			}
		}
		res.Passes = pass + 1
		if !improved {
			break
		}
	}

	res.CutEdges, res.CutData = Cut(g, inSet, res.Assign)
	if board.MaxCutData > 0 && res.CutData > board.MaxCutData {
		return nil, fmt.Errorf("spatial: cut data %d exceeds pin budget %d", res.CutData, board.MaxCutData)
	}
	return res, nil
}

// moveGain returns the cut-data reduction achieved by moving t to dev.
func moveGain(g *dfg.Graph, inSet map[int]bool, assign map[int]int, t, dev int) int {
	gain := 0
	count := func(other int, data int) {
		if !inSet[other] {
			return // edges leaving the segment always cross (memory)
		}
		if assign[other] == assign[t] {
			gain -= data // was internal, becomes cut
		}
		if assign[other] == dev {
			gain += data // was cut, becomes internal
		}
	}
	for _, e := range g.Edges() {
		if e.From == t {
			count(e.To, e.Data)
		} else if e.To == t {
			count(e.From, e.Data)
		}
	}
	return gain
}

// incidentCut sums the cut data of edges incident to t or u.
func incidentCut(g *dfg.Graph, inSet map[int]bool, assign map[int]int, t, u int) int {
	cut := 0
	for _, e := range g.Edges() {
		if e.From != t && e.To != t && e.From != u && e.To != u {
			continue
		}
		if !inSet[e.From] || !inSet[e.To] {
			continue
		}
		if assign[e.From] != assign[e.To] {
			cut += e.Data
		}
	}
	return cut
}

// Cut computes the weighted cut of an assignment over the segment's tasks.
func Cut(g *dfg.Graph, inSet map[int]bool, assign map[int]int) (edges, data int) {
	for _, e := range g.Edges() {
		if !inSet[e.From] || !inSet[e.To] {
			continue
		}
		if assign[e.From] != assign[e.To] {
			edges++
			data += e.Data
		}
	}
	return
}

// PartitionAll spatially partitions every temporal segment of a temporal
// partitioning (assign: task -> segment) and returns per-segment results.
func PartitionAll(g *dfg.Graph, temporalAssign []int, n int, board Board) ([]*Result, error) {
	if len(temporalAssign) != g.NumTasks() {
		return nil, fmt.Errorf("spatial: temporal assignment covers %d of %d tasks",
			len(temporalAssign), g.NumTasks())
	}
	out := make([]*Result, n)
	for p := 0; p < n; p++ {
		var tasks []int
		for t, tp := range temporalAssign {
			if tp == p {
				tasks = append(tasks, t)
			}
		}
		if len(tasks) == 0 {
			out[p] = &Result{Assign: map[int]int{}, Used: make([]int, board.Devices)}
			continue
		}
		r, err := Partition(g, tasks, board)
		if err != nil {
			return nil, fmt.Errorf("spatial: segment %d: %w", p, err)
		}
		out[p] = r
	}
	return out, nil
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tempart"
)

// --- trace=true end-to-end ------------------------------------------------

// TestTraceSolveEndpoint drives trace=true through POST /v1/solve and pins
// the contract: the result carries a phase timeline whose spans cover the
// solve, traced requests bypass the cache in both directions, and untraced
// requests never see a trace.
func TestTraceSolveEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	// diamondGraph actually branches (chain/pairs/wide are closed at the
	// root by the warm start), so the trace carries search counters.
	g := marshalGraph(t, diamondGraph())

	// Warm the cache with an untraced solve.
	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: g, Board: "small"})
	if code != http.StatusOK {
		t.Fatalf("warm solve: HTTP %d: %s", code, body)
	}
	var warm Result
	mustUnmarshal(t, body, &warm)
	if warm.Trace != nil {
		t.Error("untraced solve returned a trace")
	}

	// Traced solve: must be a fresh miss even though the cache holds the
	// answer, and must not disturb the cache.
	before := svc.CacheStats()
	code, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: g, Board: "small", Trace: true})
	if code != http.StatusOK {
		t.Fatalf("traced solve: HTTP %d: %s", code, body)
	}
	var traced Result
	mustUnmarshal(t, body, &traced)
	if traced.Cache != string(OriginMiss) {
		t.Errorf("traced solve origin = %q, want %q (cache bypass)", traced.Cache, OriginMiss)
	}
	if after := svc.CacheStats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("traced solve touched the cache: %+v -> %+v", before, after)
	}
	if traced.N != warm.N || traced.LatencyNS != warm.LatencyNS {
		t.Errorf("traced solve differs: N=%d lat=%g, want N=%d lat=%g",
			traced.N, traced.LatencyNS, warm.N, warm.LatencyNS)
	}

	tr := traced.Trace
	if tr == nil {
		t.Fatal("trace=true solve returned no trace")
	}
	if tr.Dropped != 0 {
		t.Errorf("trace dropped %d events", tr.Dropped)
	}
	totals := tr.PhaseTotals()
	for _, phase := range []string{obs.PhasePresolve, obs.PhaseProbe, obs.PhaseModelBuild, obs.PhaseSearch} {
		if totals[phase] <= 0 {
			t.Errorf("trace has no %s span (totals %v)", phase, totals)
		}
	}
	// Sequential probes partition the wall clock: presolve + probe time can
	// never exceed the end-to-end latency (small slack for clock skew
	// between the trace's monotonic clock and SolveMS).
	covered := totals[obs.PhasePresolve] + totals[obs.PhaseProbe]
	wallNS := traced.SolveMS * 1e6
	if float64(covered) > wallNS*1.10 {
		t.Errorf("phase spans (%d ns) exceed solve latency (%.0f ns)", covered, wallNS)
	}
	if tr.Counters[obs.CounterNodes] < 1 {
		t.Errorf("trace counters missing bb_nodes: %v", tr.Counters)
	}
	if tr.Counters[obs.CounterLPPivots] < 1 {
		t.Errorf("trace counters missing lp_pivots: %v", tr.Counters)
	}

	// The cache entry is still live: an untraced re-solve is a hit and
	// carries no trace.
	code, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: g, Board: "small"})
	if code != http.StatusOK {
		t.Fatalf("hit solve: HTTP %d: %s", code, body)
	}
	var hit Result
	mustUnmarshal(t, body, &hit)
	if hit.Cache != string(OriginHit) {
		t.Errorf("post-trace solve origin = %q, want hit", hit.Cache)
	}
	if hit.Trace != nil {
		t.Error("cache hit returned a trace")
	}
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
}

// --- /debug/solves --------------------------------------------------------

// TestDebugSolvesFlightRecorder exercises the flight recorder endpoint:
// every terminal solve lands in the ring (hits included), fresh solves
// carry a phase breakdown, and the slowest solve stays pinned.
func TestDebugSolvesFlightRecorder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, FlightSize: 8})
	g := marshalGraph(t, chainGraph())

	// miss, hit, and an errored solve (task larger than the board).
	for _, req := range []SolveRequest{
		{Graph: g, Board: "small"},
		{Graph: g, Board: "small"},
	} {
		if code, body := postJSON(t, ts.URL+"/v1/solve", req); code != http.StatusOK {
			t.Fatalf("solve: HTTP %d: %s", code, body)
		}
	}
	big := chainGraph()
	big.Task(0).Resources = 10_000
	if code, _ := postJSON(t, ts.URL+"/v1/solve",
		SolveRequest{Graph: marshalGraph(t, big), Board: "small"}); code == http.StatusOK {
		t.Fatal("oversized task solved")
	}

	var snap FlightSnapshot
	if code := getJSON(t, ts.URL+"/debug/solves", &snap); code != http.StatusOK {
		t.Fatalf("/debug/solves: HTTP %d", code)
	}
	if snap.Total != 3 || len(snap.Recent) != 3 {
		t.Fatalf("flight recorder holds total=%d recent=%d, want 3/3", snap.Total, len(snap.Recent))
	}
	// Newest first: error, hit, miss.
	if snap.Recent[0].Outcome != OutcomeError || snap.Recent[0].Error == "" {
		t.Errorf("newest record = %+v, want error outcome", snap.Recent[0])
	}
	if snap.Recent[1].Origin != string(OriginHit) {
		t.Errorf("middle record origin = %q, want hit", snap.Recent[1].Origin)
	}
	miss := snap.Recent[2]
	if miss.Origin != string(OriginMiss) || miss.Outcome != OutcomeOK {
		t.Errorf("oldest record = %+v, want ok miss", miss)
	}
	if miss.PhaseMS[obs.PhasePresolve] <= 0 || miss.PhaseMS[obs.PhaseSearch] <= 0 {
		t.Errorf("fresh solve has no phase breakdown: %v", miss.PhaseMS)
	}
	if len(snap.Recent[1].PhaseMS) != 0 {
		t.Errorf("cache hit has a phase breakdown: %v", snap.Recent[1].PhaseMS)
	}
	if snap.Slowest == nil {
		t.Fatal("no slowest solve pinned")
	}
	for _, r := range snap.Recent {
		if r.SolveMS > snap.Slowest.SolveMS {
			t.Errorf("record %.3fms slower than pinned slowest %.3fms", r.SolveMS, snap.Slowest.SolveMS)
		}
		if r.Engine != "ilp" || r.StartUnixMS == 0 {
			t.Errorf("incomplete record: %+v", r)
		}
	}
}

// TestFlightRecorderSlowestPinned pins the ring semantics directly: rotation
// keeps the last K records but never rotates out the slowest since boot.
func TestFlightRecorderSlowestPinned(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(SolveRecord{ID: "slow", SolveMS: 900})
	for i := 0; i < 6; i++ {
		f.Record(SolveRecord{ID: fmt.Sprintf("fast%d", i), SolveMS: float64(i)})
	}
	snap := f.Snapshot()
	if snap.Total != 7 {
		t.Errorf("total = %d, want 7", snap.Total)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("recent holds %d, want 4", len(snap.Recent))
	}
	if snap.Recent[0].ID != "fast5" || snap.Recent[3].ID != "fast2" {
		t.Errorf("recent not newest-first: %v", snap.Recent)
	}
	if snap.Slowest == nil || snap.Slowest.ID != "slow" {
		t.Errorf("slowest = %+v, want the rotated-out 900ms record", snap.Slowest)
	}
}

// --- outcome-labeled latency ----------------------------------------------

// TestRecordSolveAllOutcomes pins the satellite fix: error, cancelled, and
// timed-out solves record latency too, each under its own outcome label —
// in particular a deadline expiry is "timeout", not "cancelled" (the client
// is still waiting for its anytime result).
func TestRecordSolveAllOutcomes(t *testing.T) {
	m := NewMetrics()
	m.RecordSolve("ilp", 10*time.Millisecond, nil)
	m.RecordSolve("ilp", 20*time.Millisecond, errors.New("boom"))
	m.RecordSolve("ilp", 30*time.Millisecond, context.Canceled)
	m.RecordSolve("ilp", 40*time.Millisecond, context.DeadlineExceeded)
	m.RecordSolve("ilp", 50*time.Millisecond, tempart.ErrDeadline)

	s := m.Snapshot()
	if s.Solves["ilp"] != 5 {
		t.Errorf("solves = %d, want 5", s.Solves["ilp"])
	}
	if s.Errors != 1 || s.Cancelled != 1 || s.Timeouts != 2 {
		t.Errorf("errors=%d cancelled=%d timeouts=%d, want 1/1/2",
			s.Errors, s.Cancelled, s.Timeouts)
	}
	// All five observations land in the merged latency view.
	if s.P50MS <= 0 || s.P99MS < s.P50MS {
		t.Errorf("quantiles p50=%.3f p99=%.3f, want 0 < p50 <= p99", s.P50MS, s.P99MS)
	}
	text := m.Exposition(CacheStats{}, 0, 0)
	for _, want := range []string{
		`sparcsd_solve_duration_seconds_count{engine="ilp",outcome="ok"} 1`,
		`sparcsd_solve_duration_seconds_count{engine="ilp",outcome="error"} 1`,
		`sparcsd_solve_duration_seconds_count{engine="ilp",outcome="cancelled"} 1`,
		`sparcsd_solve_duration_seconds_count{engine="ilp",outcome="timeout"} 2`,
		`sparcsd_solve_timeouts_total 2`,
		`sparcsd_anytime_solves_total 0`,
		`sparcsd_fallback_solves_total 0`,
		`sparcsd_jobs_shed_total 0`,
		`sparcsd_worker_panics_total 0`,
		`sparcsd_solve_latency_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// --- Prometheus exposition golden parse -----------------------------------

var (
	promNameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// TestPrometheusExpositionParses fetches /metrics after real traffic across
// every outcome and parses every emitted line: each family has HELP and
// TYPE, each sample line is well-formed with a parseable value, and each
// histogram's buckets are cumulative and +Inf-terminated.
func TestPrometheusExpositionParses(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	g := marshalGraph(t, chainGraph())
	if code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: g, Board: "small"}); code != http.StatusOK {
		t.Fatalf("solve: HTTP %d: %s", code, body)
	}
	// Error and cancelled outcomes, injected at the metrics layer so the
	// exposition exercises all three outcome labels deterministically.
	svc.metrics.RecordSolve("ilp", time.Millisecond, errors.New("boom"))
	svc.metrics.RecordSolve("list", time.Millisecond, context.Canceled)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	helped := map[string]bool{}
	typed := map[string]string{}
	// bucket cumulative-count tracking: series (name + labels minus le) ->
	// last seen count, and whether +Inf closed it.
	lastCum := map[string]float64{}
	infSeen := map[string]bool{}
	samples := 0

	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !promNameRE.MatchString(parts[0]) || parts[1] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || !promNameRE.MatchString(parts[0]) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Fatalf("bad metric type in %q", line)
			}
			if !helped[parts[0]] {
				t.Errorf("TYPE before HELP for %s", parts[0])
			}
			typed[parts[0]] = parts[1]
		case line == "":
			t.Fatal("blank line in exposition")
		default:
			samples++
			name, labels, value := parsePromLine(t, line)
			family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			typ, ok := typed[family]
			if !ok {
				typ, ok = typed[name]
				family = name
			}
			if !ok {
				t.Errorf("sample %q has no # TYPE", line)
				continue
			}
			if strings.HasSuffix(name, "_bucket") && typ == "histogram" {
				series := family
				var le string
				for _, l := range labels {
					if strings.HasPrefix(l, "le=") {
						le = l
					} else {
						series += ";" + l
					}
				}
				if le == "" {
					t.Errorf("bucket without le label: %q", line)
				}
				if value < lastCum[series] {
					t.Errorf("non-cumulative bucket counts in %s: %g after %g", series, value, lastCum[series])
				}
				lastCum[series] = value
				if le == `le="+Inf"` {
					infSeen[series] = true
				}
			}
		}
	}
	if samples == 0 {
		t.Fatal("exposition has no samples")
	}
	for series := range lastCum {
		if !infSeen[series] {
			t.Errorf("histogram series %s has no +Inf bucket", series)
		}
	}
	// The traffic above must have produced all three outcome labels and the
	// per-phase counters.
	for _, want := range []string{
		`sparcsd_solve_duration_seconds_bucket{engine="ilp",outcome="ok",le="+Inf"}`,
		`sparcsd_solve_duration_seconds_bucket{engine="ilp",outcome="error",le="+Inf"}`,
		`sparcsd_solve_duration_seconds_bucket{engine="list",outcome="cancelled",le="+Inf"}`,
		`sparcsd_phase_seconds_total{engine="ilp",phase="presolve"}`,
		`sparcsd_phase_seconds_total{engine="ilp",phase="search"}`,
		`sparcsd_lp_sparse_ftrans_total{engine="ilp"}`,
		`sparcsd_lp_sparse_btrans_total{engine="ilp"}`,
		`sparcsd_lp_dense_fallbacks_total{engine="ilp"}`,
		`sparcsd_columns_generated_total{engine="ilp"}`,
		`sparcsd_pricing_rounds_total{engine="ilp"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// parsePromLine splits a sample line into name, label pairs, and value,
// failing the test on any malformation.
func parsePromLine(t *testing.T, line string) (name string, labels []string, value float64) {
	t.Helper()
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			t.Fatalf("unbalanced braces: %q", line)
		}
		for _, pair := range strings.Split(rest[i+1:j], ",") {
			if !promLabelRE.MatchString(pair) {
				t.Fatalf("bad label %q in %q", pair, line)
			}
			labels = append(labels, pair)
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !promNameRE.MatchString(name) {
		t.Fatalf("bad metric name in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return name, labels, v
}

package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// JobState is the lifecycle of a scheduled solve.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job is one unit of scheduled work. All fields behind mu; read via Status.
type Job struct {
	ID   string
	req  *Request
	sync bool // synchronous (RunSync) job: dropped from the map on finish

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// deadline is the absolute wall-clock bound derived from the request's
	// DeadlineMS at creation (zero = none). A job still queued past it is
	// shed instead of wasting a worker.
	deadline time.Time

	mu        sync.Mutex
	state     JobState
	result    *Result
	err       error // original error (preserves errors.Is chains)
	errMsg    string
	createdAt time.Time
	startedAt time.Time
	endedAt   time.Time
}

// JobStatus is the wire form of a job's state (GET /v1/jobs/{id}).
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Progress timestamps (unix milliseconds; 0 when not reached yet) let
	// pollers compute queue wait and run time.
	CreatedMS int64 `json:"created_ms"`
	StartedMS int64 `json:"started_ms,omitempty"`
	EndedMS   int64 `json:"ended_ms,omitempty"`
	// ElapsedMS is time since creation for live jobs, total lifetime for
	// finished ones.
	ElapsedMS int64   `json:"elapsed_ms"`
	// DeadlineUnixMS is the absolute request deadline (unix milliseconds;
	// 0 = none), so a poller can tell "still solving" from "about to be
	// shed" without knowing the queue's state.
	DeadlineUnixMS int64   `json:"deadline_unix_ms,omitempty"`
	Result         *Result `json:"result,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		CreatedMS: j.createdAt.UnixMilli(),
		Result:    j.result,
		Error:     j.errMsg,
	}
	if !j.deadline.IsZero() {
		st.DeadlineUnixMS = j.deadline.UnixMilli()
	}
	if !j.startedAt.IsZero() {
		st.StartedMS = j.startedAt.UnixMilli()
	}
	if !j.endedAt.IsZero() {
		st.EndedMS = j.endedAt.UnixMilli()
		st.ElapsedMS = j.endedAt.Sub(j.createdAt).Milliseconds()
	} else {
		st.ElapsedMS = time.Since(j.createdAt).Milliseconds()
	}
	return st
}

// Cancel aborts the job: a queued job is marked cancelled immediately, a
// running one has its context cancelled (which propagates into the
// branch-and-bound search) and is marked cancelled when the worker returns.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobCancelled
		j.endedAt = time.Now()
	}
	j.mu.Unlock()
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Scheduler errors.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrShutdown  = errors.New("service: scheduler shut down")
	// ErrDeadlineShed marks a job dropped without running because its
	// request deadline had already expired while it sat in the queue.
	ErrDeadlineShed = errors.New("service: job shed: deadline expired while queued")
)

// Scheduler is the bounded worker pool: Submit enqueues asynchronous jobs,
// RunSync funnels synchronous requests through the same queue so one knob
// bounds the service's total solve concurrency.
type Scheduler struct {
	solve func(ctx context.Context, req *Request) (*Result, error)

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // FIFO of finished job IDs for bounded retention
	closed   bool
	running  int
	retain   int

	// onShed and onPanic are observability hooks the server wires up
	// (metrics + logs); nil is fine.
	onShed  func(jobID string)
	onPanic func(jobID string, v any, stack []byte)
}

// NewScheduler starts workers goroutines over a queue of queueCap jobs.
// solve is the request executor (the server injects the cache-aware path).
func NewScheduler(workers, queueCap int,
	solve func(ctx context.Context, req *Request) (*Result, error)) *Scheduler {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 256
	}
	s := &Scheduler{
		solve:  solve,
		queue:  make(chan *Job, queueCap),
		jobs:   make(map[string]*Job),
		retain: 4096,
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker(i)
	}
	return s
}

func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(id, job)
	}
}

func (s *Scheduler) runJob(workerID int, job *Job) {
	job.mu.Lock()
	if job.state != JobQueued {
		// Cancelled while queued: nothing to run, terminal state already set.
		job.mu.Unlock()
		close(job.done)
		s.retire(job)
		return
	}
	if !job.deadline.IsZero() && time.Now().After(job.deadline) {
		// Self-protection: the request's deadline expired while the job sat
		// in the queue. Shed it — no result could reach the client in time,
		// so running it would only starve jobs that can still meet theirs.
		job.state = JobFailed
		job.err = ErrDeadlineShed
		job.errMsg = ErrDeadlineShed.Error()
		job.endedAt = time.Now()
		job.mu.Unlock()
		if s.onShed != nil {
			s.onShed(job.ID)
		}
		job.cancel()
		close(job.done)
		s.retire(job)
		return
	}
	job.state = JobRunning
	job.startedAt = time.Now()
	job.mu.Unlock()

	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	// Label the solve for profiling (engine + scheduler worker; the solver
	// layers add phase and search-worker labels underneath) and thread the
	// job ID through as the request ID for logs and the flight recorder.
	var res *Result
	var err error
	ctx := obs.WithRequestID(job.ctx, job.ID)
	// The worker runs the solve under recover(): a panic anywhere in the
	// solve path fails this job (stack captured) and the daemon keeps
	// serving. The cache-aware path recovers solver panics itself, closer
	// to the fault; this is the backstop for everything else.
	func() {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("service: worker panic: %v", r)
				if s.onPanic != nil {
					s.onPanic(job.ID, r, debug.Stack())
				}
			}
		}()
		pprof.Do(ctx, pprof.Labels(
			"engine", job.req.Engine, "worker", strconv.Itoa(workerID),
		), func(ctx context.Context) {
			res, err = s.solve(ctx, job.req)
		})
	}()

	s.mu.Lock()
	s.running--
	s.mu.Unlock()

	job.mu.Lock()
	job.endedAt = time.Now()
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(job.ctx.Err(), context.Canceled)):
		// Deadline expiry is deliberately NOT cancellation: a deadline_ms
		// job that errors out lands in JobFailed with its deadline error.
		job.state = JobCancelled
		job.err = context.Canceled
		job.errMsg = context.Canceled.Error()
	case err != nil:
		job.state = JobFailed
		job.err = err
		job.errMsg = err.Error()
	default:
		job.state = JobDone
		job.result = res
	}
	job.mu.Unlock()
	job.cancel() // release the context's resources
	close(job.done)
	s.retire(job)
}

// retire records a finished job for bounded retention so the jobs map
// cannot grow without limit under sustained async traffic. Synchronous jobs
// are dropped immediately: their caller already holds the result.
func (s *Scheduler) retire(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job.sync {
		delete(s.jobs, job.ID)
		return
	}
	if _, tracked := s.jobs[job.ID]; !tracked {
		return
	}
	s.finished = append(s.finished, job.ID)
	for len(s.finished) > s.retain {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

func newJob(ctx context.Context, req *Request) *Job {
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		ID:        newJobID(),
		req:       req,
		ctx:       jctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     JobQueued,
		createdAt: time.Now(),
	}
	if req.DeadlineMS > 0 {
		j.deadline = j.createdAt.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	return j
}

func newJobID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: job id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// enqueue registers and queues a job under the scheduler lock, so a send
// can never race Shutdown's close of the queue.
func (s *Scheduler) enqueue(job *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShutdown
	}
	select {
	case s.queue <- job:
		s.jobs[job.ID] = job
		return nil
	default:
		return ErrQueueFull
	}
}

// Submit enqueues an asynchronous job (POST /v1/jobs). The job's lifetime
// is detached from the caller's context; cancel it via Job.Cancel.
func (s *Scheduler) Submit(req *Request) (*Job, error) {
	job := newJob(context.Background(), req)
	if err := s.enqueue(job); err != nil {
		return nil, err
	}
	return job, nil
}

// RunSync pushes a request through the worker pool and waits for it,
// propagating ctx cancellation (client disconnects abort the solve unless
// other requests share it via the cache's singleflight).
func (s *Scheduler) RunSync(ctx context.Context, req *Request) (*Result, error) {
	job := newJob(ctx, req)
	job.sync = true
	if err := s.enqueue(job); err != nil {
		return nil, err
	}
	select {
	case <-job.Done():
		job.mu.Lock()
		state, res, jerr := job.state, job.result, job.err
		job.mu.Unlock()
		switch state {
		case JobDone:
			return res, nil
		case JobCancelled:
			return nil, context.Canceled
		default:
			return nil, jerr
		}
	case <-ctx.Done():
		// Don't wait for a worker to dequeue the corpse: Cancel already
		// marked a queued job terminal, and a running one has had its
		// context cancelled. Returning now frees the handler goroutine
		// (and graceful shutdown) immediately; the worker that later pops
		// the job just retires it.
		job.Cancel()
		return nil, ctx.Err()
	}
}

// Job resolves a job by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// QueueDepth returns the number of jobs waiting in the queue.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Running returns the number of jobs currently executing.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Shutdown stops accepting work, cancels everything in flight, and waits
// for the workers to drain (graceful daemon shutdown).
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue) // safe: every send happens under mu with closed checked
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	s.wg.Wait()
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testEntry(n int) *entry { return &entry{n: n, assignCanon: make([]int, 0)} }

// TestCacheSingleflightDedup: N concurrent identical requests run the solve
// exactly once; everyone gets the same entry.
func TestCacheSingleflightDedup(t *testing.T) {
	c := NewCache(16)
	var calls atomic.Int32
	release := make(chan struct{})
	solve := func(ctx context.Context) (*entry, error) {
		calls.Add(1)
		<-release
		return testEntry(3), nil
	}
	const waiters = 10
	var wg sync.WaitGroup
	origins := make([]Origin, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ent, origin, err := c.GetOrSolve(context.Background(), "k", solve)
			if err != nil || ent.n != 3 {
				t.Errorf("waiter %d: ent=%v err=%v", i, ent, err)
			}
			origins[i] = origin
		}(i)
	}
	// Let every goroutine join the flight before releasing the solve.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.Misses+st.Shared >= waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("solve ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared != waiters-1 {
		t.Fatalf("stats: %+v", st)
	}
	miss := 0
	for _, o := range origins {
		if o == OriginMiss {
			miss++
		}
	}
	if miss != 1 {
		t.Fatalf("%d waiters report miss, want 1", miss)
	}
	// A later call is a pure hit.
	if _, origin, _ := c.GetOrSolve(context.Background(), "k", solve); origin != OriginHit {
		t.Fatalf("follow-up origin = %v", origin)
	}
}

// TestCacheLastWaiterCancelsSolve: the solve context fires only after every
// waiter abandons the flight.
func TestCacheLastWaiterCancelsSolve(t *testing.T) {
	c := NewCache(16)
	solveCancelled := make(chan struct{})
	started := make(chan struct{})
	solve := func(ctx context.Context) (*entry, error) {
		close(started)
		<-ctx.Done()
		close(solveCancelled)
		return nil, ctx.Err()
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errs[0] = c.GetOrSolve(ctx1, "k", solve)
	}()
	<-started
	// Second waiter joins the same flight; wait until the stats show it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errs[1] = c.GetOrSolve(ctx2, "k", solve)
	}()
	for deadline := time.Now().Add(5 * time.Second); c.Stats().Shared == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancel1()
	select {
	case <-solveCancelled:
		t.Fatal("solve cancelled while a waiter remained")
	case <-time.After(50 * time.Millisecond):
	}
	cancel2()
	select {
	case <-solveCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("solve not cancelled after the last waiter left")
	}
	wg.Wait()
	if !errors.Is(errs[0], context.Canceled) || !errors.Is(errs[1], context.Canceled) {
		t.Fatalf("waiter errors: %v", errs)
	}
}

// TestCacheErrorsNotCached: failures are retried, not memoized.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(16)
	var calls atomic.Int32
	boom := errors.New("boom")
	solve := func(ctx context.Context) (*entry, error) {
		calls.Add(1)
		return nil, boom
	}
	for i := 0; i < 2; i++ {
		if _, _, err := c.GetOrSolve(context.Background(), "k", solve); !errors.Is(err, boom) {
			t.Fatalf("call %d: err=%v", i, err)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("solve ran %d times, want 2 (errors must not be cached)", n)
	}
	ok := func(ctx context.Context) (*entry, error) { return testEntry(1), nil }
	if _, origin, err := c.GetOrSolve(context.Background(), "k", ok); err != nil || origin != OriginMiss {
		t.Fatalf("recovery solve: origin=%v err=%v", origin, err)
	}
	if _, origin, _ := c.GetOrSolve(context.Background(), "k", ok); origin != OriginHit {
		t.Fatal("successful entry was not cached")
	}
}

// TestCacheLRUEviction: capacity bounds entries, oldest key evicted first.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	mk := func(i int) func(context.Context) (*entry, error) {
		return func(context.Context) (*entry, error) { return testEntry(i), nil }
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.GetOrSolve(context.Background(), fmt.Sprintf("k%d", i), mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	// k0 was evicted; k2 and k1 remain.
	if _, origin, _ := c.GetOrSolve(context.Background(), "k1", mk(1)); origin != OriginHit {
		t.Error("k1 should still be cached")
	}
	if _, origin, _ := c.GetOrSolve(context.Background(), "k0", mk(0)); origin != OriginMiss {
		t.Error("k0 should have been evicted")
	}
}

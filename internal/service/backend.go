// Package service is the request-lifecycle layer of the reproduction: a
// long-running partitioning service on top of the batch-style solver stack
// (internal/core, internal/tempart, internal/listpart). It adds what a
// solver invoked from main() never needed — request parsing and validation,
// a bounded worker-pool scheduler with async jobs and cancellation, a
// memoizing solve cache keyed by canonical graph structure hashes with
// in-flight deduplication (singleflight), a pluggable backend registry, and
// observability (/healthz, /metrics). cmd/sparcsd wraps it in an HTTP
// daemon; cmd/sparcs reuses its Result payload for `-o json`.
package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/faultinject"
	"repro/internal/ilp"
	"repro/internal/listpart"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/tempart"
)

// Request is a fully parsed and validated solve request: the unit of work
// the scheduler queues, the cache keys, and a backend solves.
type Request struct {
	// Graph is the validated task graph (decoded from the wire schema).
	Graph *dfg.Graph
	// Board is the resolved target architecture.
	Board arch.Board
	// BoardName is the preset name the request used (reporting only).
	BoardName string
	// Engine names the backend ("ilp", "list", ...).
	Engine string

	// Solver knobs, all optional. Workers and SpeculateN tune the search
	// without changing its answer and are excluded from the cache key;
	// the remaining knobs — including the cutting-plane budgets — can
	// change the reported result and are keyed.
	Workers            int
	SpeculateN         int
	MaxPartitions      int
	PathCap            int
	MaxNodes           int
	CutRoundsRoot      int
	CutRoundsNode      int
	MaxCuts            int
	NoSymmetryBreaking bool
	// Pricing is the validated dual pricing rule ("", "devex",
	// "steepest-edge"). It changes the pivot trajectory (and node counts
	// under MaxNodes limits), so it is keyed like the cut budgets.
	Pricing string
	// Formulation is the validated ILP model selector ("", "rows",
	// "patterns"). It changes the search shape (and which incumbent a
	// budget-bound solve returns), so it is keyed like Pricing.
	Formulation string

	// NoCache bypasses the memo cache (always a fresh solve, result not
	// stored).
	NoCache bool

	// DeadlineMS bounds the solve wall-clock time (0 = none). The server
	// turns it into a context deadline; tempart threads it down to the
	// branch-and-bound search, which returns its best incumbent instead of
	// an error when time runs out. Excluded from the cache key: a complete
	// result is deadline-independent, and partial results never touch the
	// cache (in either direction).
	DeadlineMS int

	// Trace requests the per-request phase timeline in the Result. Like
	// Workers/SpeculateN it is excluded from the cache key, but a traced
	// request additionally bypasses the cache entirely (read and write):
	// a trace describes THIS solve, so it can neither be served from a
	// memo entry nor contaminate one.
	Trace bool
	// TraceSink, when non-nil, receives the backend's span/counter/node
	// events. The server injects it (per request); it is never part of
	// the cache key.
	TraceSink *obs.Recorder
}

// Backend is a pluggable partitioning engine. Implementations must be safe
// for concurrent use and honour ctx cancellation promptly (the scheduler
// threads job cancellation through it down to the branch-and-bound search).
type Backend interface {
	Name() string
	Solve(ctx context.Context, req *Request) (*tempart.Partitioning, error)
}

var (
	backendMu sync.RWMutex
	backends  = map[string]Backend{}
)

// RegisterBackend adds an engine to the registry. It panics on a duplicate
// or empty name (registration is an init-time programming act).
func RegisterBackend(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if b.Name() == "" {
		panic("service: backend with empty name")
	}
	if _, dup := backends[b.Name()]; dup {
		panic(fmt.Sprintf("service: duplicate backend %q", b.Name()))
	}
	backends[b.Name()] = b
}

// LookupBackend resolves an engine by name ("" selects "ilp").
func LookupBackend(name string) (Backend, error) {
	if name == "" {
		name = "ilp"
	}
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown engine %q (have: %v)", name, backendNamesLocked())
	}
	return b, nil
}

// BackendNames returns the sorted registered engine names.
func BackendNames() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ilpBackend exposes the paper's optimal temporal partitioning ILP
// (internal/tempart) as a service engine.
type ilpBackend struct{}

func (ilpBackend) Name() string { return "ilp" }

func (ilpBackend) Solve(ctx context.Context, req *Request) (*tempart.Partitioning, error) {
	if faultinject.Fire(faultinject.WorkerPanic) {
		panic("faultinject: injected solver panic")
	}
	if faultinject.Fire(faultinject.SlowSolve) {
		select {
		case <-time.After(faultinject.Delay(faultinject.SlowSolve)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return tempart.SolveContext(ctx, tempart.Input{
		Graph:              req.Graph,
		Board:              req.Board,
		MaxPartitions:      req.MaxPartitions,
		PathCap:            req.PathCap,
		Formulation:        req.Formulation,
		NoSymmetryBreaking: req.NoSymmetryBreaking,
		SpeculateN:         req.SpeculateN,
		Trace:              req.TraceSink,
		ILP: ilp.Options{
			Workers:       req.Workers,
			MaxNodes:      req.MaxNodes,
			RootCutRounds: req.CutRoundsRoot,
			NodeCutRounds: req.CutRoundsNode,
			MaxCuts:       req.MaxCuts,
			Pricing:       pricingRule(req.Pricing),
		},
	})
}

// pricingRule maps the validated wire knob to the solver's pricing enum.
func pricingRule(s string) lp.Pricing {
	if s == "steepest-edge" {
		return lp.PricingSteepestEdge
	}
	return lp.PricingDevex
}

// listBackend exposes the greedy list-partitioning baseline. It is
// effectively instantaneous, so cancellation is only checked up front.
type listBackend struct{}

func (listBackend) Name() string { return "list" }

func (listBackend) Solve(ctx context.Context, req *Request) (*tempart.Partitioning, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return listpart.Solve(req.Graph, req.Board, req.PathCap)
}

func init() {
	RegisterBackend(ilpBackend{})
	RegisterBackend(listBackend{})
}

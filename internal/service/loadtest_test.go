package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dfg"
)

// TestLoadSmoke fires ~100 concurrent requests at an in-process server (the
// `make loadtest` target). Unlike the batch acceptance test, every request
// is its own HTTP round trip, so this exercises the full connection →
// scheduler → singleflight path under real goroutine-per-conn concurrency.
func TestLoadSmoke(t *testing.T) {
	svc := New(Config{Workers: 4, QueueCap: 256})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Shutdown()
	}()

	graphs := []*dfg.Graph{chainGraph(), pairsGraph(), diamondGraph(), wideGraph()}
	bodies := make([][]byte, len(graphs))
	for i, g := range graphs {
		data, err := json.Marshal(SolveRequest{Graph: mustMarshal(g), Board: "small"})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = data
	}

	const requests = 100
	var wg sync.WaitGroup
	var ok, failed atomic.Int32
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
				bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				failed.Add(1)
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
				t.Errorf("request %d: HTTP %d: %s", i, resp.StatusCode, body)
				return
			}
			var res Result
			if err := json.Unmarshal(body, &res); err != nil || res.N == 0 {
				failed.Add(1)
				t.Errorf("request %d: bad result (%v): %s", i, err, body)
				return
			}
			ok.Add(1)
		}(i)
	}
	wg.Wait()
	if ok.Load() != requests {
		t.Fatalf("%d/%d requests succeeded (%d failed)", ok.Load(), requests, failed.Load())
	}
	st := svc.CacheStats()
	if st.Misses != uint64(len(graphs)) {
		t.Errorf("want %d solver misses, got %+v", len(graphs), st)
	}
	if rate := st.HitRate(); rate < 0.9 {
		t.Errorf("cache/singleflight hit rate %.2f < 0.9 under load (%+v)", rate, st)
	}
	t.Logf("loadtest: %d requests, cache %+v, hit rate %.2f", requests, st, st.HitRate())
}

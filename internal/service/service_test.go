package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dfg"
)

// --- graph fixtures -------------------------------------------------------

// chainGraph: forced into one partition per task pair on the small board.
func chainGraph() *dfg.Graph {
	g := dfg.New("chain")
	g.MustAddTask(dfg.Task{Name: "a", Resources: 60, Delay: 50, ReadEnv: 2})
	g.MustAddTask(dfg.Task{Name: "b", Resources: 60, Delay: 70})
	g.MustAddTask(dfg.Task{Name: "c", Resources: 60, Delay: 40})
	g.MustAddTask(dfg.Task{Name: "d", Resources: 60, Delay: 90, WriteEnv: 2})
	g.MustAddEdge("a", "b", 4)
	g.MustAddEdge("b", "c", 4)
	g.MustAddEdge("c", "d", 4)
	return g
}

// pairsGraph: fast/slow parallel pairs where greedy packing is suboptimal.
func pairsGraph() *dfg.Graph {
	g := dfg.New("pairs")
	for i := 0; i < 3; i++ {
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("f%d", i), Type: "F", Resources: 30, Delay: 10, ReadEnv: 1})
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("s%d", i), Type: "S", Resources: 30, Delay: 500, WriteEnv: 1})
		g.MustAddEdge(fmt.Sprintf("f%d", i), fmt.Sprintf("s%d", i), 2)
	}
	return g
}

// diamondGraph: a fork/join with memory-weighted edges.
func diamondGraph() *dfg.Graph {
	g := dfg.New("diamond")
	g.MustAddTask(dfg.Task{Name: "src", Resources: 50, Delay: 30, ReadEnv: 4})
	g.MustAddTask(dfg.Task{Name: "l", Resources: 50, Delay: 60})
	g.MustAddTask(dfg.Task{Name: "r", Resources: 50, Delay: 80})
	g.MustAddTask(dfg.Task{Name: "sink", Resources: 50, Delay: 20, WriteEnv: 4})
	g.MustAddEdge("src", "l", 8)
	g.MustAddEdge("src", "r", 8)
	g.MustAddEdge("l", "sink", 8)
	g.MustAddEdge("r", "sink", 8)
	return g
}

// wideGraph: independent tasks, pure packing.
func wideGraph() *dfg.Graph {
	g := dfg.New("wide")
	for i := 0; i < 6; i++ {
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("w%d", i), Resources: 30, Delay: float64(20 + 10*i), ReadEnv: 1, WriteEnv: 1})
	}
	return g
}

// hardGraphJSON is an instance whose branch-and-bound runs for minutes if
// not cancelled: task sizes alternate 26/38 CLBs on the 100-CLB "small"
// board — a mixed-cardinality packing whose true minimum (9 partitions)
// exceeds every proof-engine bound (area and CG cardinality both say 8),
// and whose N=9 optimum Σd = 900 sits above the 800 layer-cake/CG-delay
// floor, so both the infeasibility proof at N=8 and the optimality proof
// at N=9 are exponential enumerations. (The earlier 34/35/36 variant died
// to PR 5's CG cardinality engine — uniform near-capacity sizes make the
// cardinality bound exact; the equal-sized variant before it died to the
// PR 3 layer-cake bound.)
func hardGraphJSON(t *testing.T) json.RawMessage {
	g := dfg.New("hard")
	for i := 0; i < 24; i++ {
		r := 26
		if i%2 == 1 {
			r = 38
		}
		g.MustAddTask(dfg.Task{Name: fmt.Sprintf("t%02d", i), Type: "T",
			Resources: r, Delay: 100, ReadEnv: 1, WriteEnv: 1})
	}
	return marshalGraph(t, g)
}

func marshalGraph(t testing.TB, g *dfg.Graph) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustMarshal(g *dfg.Graph) json.RawMessage {
	data, err := json.Marshal(g)
	if err != nil {
		panic(err)
	}
	return data
}

// directOptimum solves g with the flow the service wraps, for comparison.
func directOptimum(t testing.TB, g *dfg.Graph) (int, float64) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Board = mustBoard(t, "small")
	d, err := core.Build(g, cfg)
	if err != nil {
		t.Fatalf("direct core.Build(%s): %v", g.Name, err)
	}
	return d.Partitioning.N, d.Partitioning.Latency
}

func mustBoard(t testing.TB, name string) arch.Board {
	t.Helper()
	b, err := arch.BoardByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// --- HTTP helpers ---------------------------------------------------------

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown()
	})
	return svc, ts
}

func postJSON(t testing.TB, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, data)
		}
	}
	return resp.StatusCode
}

// --- the acceptance test --------------------------------------------------

// TestE2EBatchCacheAndCancel is the end-to-end acceptance test of the
// service PR: a batch of 100 requests over 4 distinct graphs completes with
// >= 96 cache/singleflight hits and optima identical to direct core calls,
// and a cancelled async job stops the underlying branch-and-bound search
// (observed through the threaded context) without affecting other in-flight
// jobs.
func TestE2EBatchCacheAndCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	graphs := []*dfg.Graph{chainGraph(), pairsGraph(), diamondGraph(), wideGraph()}
	type want struct {
		n   int
		lat float64
	}
	wants := make(map[string]want, len(graphs))
	for _, g := range graphs {
		n, lat := directOptimum(t, g)
		wants[g.Name] = want{n, lat}
	}

	// 100 requests cycling over the 4 graphs, in one batch call.
	var batch batchRequest
	for i := 0; i < 100; i++ {
		batch.Requests = append(batch.Requests, SolveRequest{
			Graph: marshalGraph(t, graphs[i%len(graphs)]),
			Board: "small",
		})
	}
	code, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch: HTTP %d: %s", code, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 100 {
		t.Fatalf("batch returned %d items", len(resp.Items))
	}
	served := map[string]int{}
	for i, item := range resp.Items {
		if item.Error != "" {
			t.Fatalf("batch item %d failed: %s", i, item.Error)
		}
		w := wants[item.Result.Graph]
		if item.Result.N != w.n || item.Result.LatencyNS != w.lat {
			t.Fatalf("batch item %d (%s): N=%d lat=%g, direct core gives N=%d lat=%g",
				i, item.Result.Graph, item.Result.N, item.Result.LatencyNS, w.n, w.lat)
		}
		if !item.Result.Optimal {
			t.Fatalf("batch item %d (%s) not proven optimal", i, item.Result.Graph)
		}
		served[item.Result.Cache]++
	}
	if served[string(OriginMiss)] != len(graphs) {
		t.Errorf("want exactly %d misses (one per distinct graph), got %v", len(graphs), served)
	}
	if hits := served[string(OriginHit)] + served[string(OriginShared)]; hits < 96 {
		t.Errorf("want >= 96 cache/singleflight hits, got %d (%v)", hits, served)
	}

	// An isomorphic copy (renamed tasks, shuffled insertion order) of a
	// solved graph must hit the cache and come back with its own names.
	iso := dfg.New("chain-iso")
	src := chainGraph()
	order := []int{3, 1, 0, 2}
	for _, ti := range order {
		task := *src.Task(ti)
		task.Name = "re_" + task.Name
		iso.MustAddTask(task)
	}
	for _, e := range src.Edges() {
		iso.MustAddEdge("re_"+src.Task(e.From).Name, "re_"+src.Task(e.To).Name, e.Data)
	}
	code, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: marshalGraph(t, iso), Board: "small"})
	if code != http.StatusOK {
		t.Fatalf("iso solve: HTTP %d: %s", code, body)
	}
	var isoRes Result
	if err := json.Unmarshal(body, &isoRes); err != nil {
		t.Fatal(err)
	}
	if isoRes.Cache != string(OriginHit) {
		t.Errorf("isomorphic graph got cache=%q, want hit", isoRes.Cache)
	}
	w := wants["chain"]
	if isoRes.N != w.n || isoRes.LatencyNS != w.lat {
		t.Errorf("isomorphic result N=%d lat=%g, want N=%d lat=%g", isoRes.N, isoRes.LatencyNS, w.n, w.lat)
	}
	if _, ok := isoRes.Assign["re_a"]; !ok {
		t.Errorf("isomorphic result lost the request's task names: %v", isoRes.Assign)
	}

	// Async cancellation: a hard job whose search would run for minutes is
	// cancelled mid-solve; the threaded context stops the B&B promptly,
	// and an easy job in flight at the same time is untouched.
	var sub struct {
		ID string `json:"id"`
	}
	code, body = postJSON(t, ts.URL+"/v1/jobs", SolveRequest{
		Graph: hardGraphJSON(t), Board: "small", NoSymmetryBreaking: true, NoCache: true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("job submit: HTTP %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	hardID := sub.ID
	waitState(t, ts.URL, hardID, JobRunning, 10*time.Second)

	code, body = postJSON(t, ts.URL+"/v1/jobs", SolveRequest{Graph: marshalGraph(t, diamondGraph()), Board: "small"})
	if code != http.StatusAccepted {
		t.Fatalf("easy job submit: HTTP %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	easyID := sub.ID

	cancelStart := time.Now()
	code, _ = postJSON(t, ts.URL+"/v1/jobs/"+hardID+"/cancel", struct{}{})
	if code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	hardSt := waitState(t, ts.URL, hardID, JobCancelled, 10*time.Second)
	if d := time.Since(cancelStart); d > 10*time.Second {
		t.Errorf("cancellation took %v to stop the search", d)
	}
	if !strings.Contains(hardSt.Error, "context canceled") {
		t.Errorf("cancelled job error = %q, want the threaded context's cancellation", hardSt.Error)
	}

	easySt := waitState(t, ts.URL, easyID, JobDone, 30*time.Second)
	w = wants["diamond"]
	if easySt.Result == nil || easySt.Result.N != w.n || easySt.Result.LatencyNS != w.lat {
		t.Errorf("easy job perturbed by cancel: %+v, want N=%d lat=%g", easySt.Result, w.n, w.lat)
	}
}

// waitState polls a job until it reaches state (fatal on timeout or on
// reaching a different terminal state).
func waitState(t *testing.T, baseURL, id string, state JobState, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		if code := getJSON(t, baseURL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("job %s: HTTP %d", id, code)
		}
		if st.State == state {
			return st
		}
		terminal := st.State == JobDone || st.State == JobFailed || st.State == JobCancelled
		if terminal {
			t.Fatalf("job %s reached %q (err=%q), want %q", id, st.State, st.Error, state)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, state)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// --- focused endpoint tests ----------------------------------------------

func TestSolveMatchesListBackend(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	g := pairsGraph()
	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Graph: marshalGraph(t, g), Board: "small", Engine: "list",
	})
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Board = mustBoard(t, "small")
	cfg.Partitioner = core.ListPartitioner
	d, err := core.Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != d.Partitioning.N || res.LatencyNS != d.Partitioning.Latency {
		t.Fatalf("list engine: N=%d lat=%g, direct N=%d lat=%g",
			res.N, res.LatencyNS, d.Partitioning.N, d.Partitioning.Latency)
	}
	if res.Engine != "list" {
		t.Fatalf("engine = %q", res.Engine)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed-json", `{`, http.StatusBadRequest},
		{"no-graph", `{}`, http.StatusBadRequest},
		{"bad-graph-cycle", `{"graph":{"tasks":[{"name":"a"},{"name":"b"}],
			"edges":[{"from":"a","to":"b","data":1},{"from":"b","to":"a","data":1}]}}`, http.StatusBadRequest},
		{"dup-task", `{"graph":{"tasks":[{"name":"a"},{"name":"a"}]}}`, http.StatusBadRequest},
		{"unknown-board", `{"graph":{"tasks":[{"name":"a"}]},"board":"nope"}`, http.StatusBadRequest},
		{"unknown-engine", `{"graph":{"tasks":[{"name":"a"}]},"engine":"magic"}`, http.StatusBadRequest},
		{"negative-knob", `{"graph":{"tasks":[{"name":"a"}]},"workers":-1}`, http.StatusBadRequest},
		{"bad-pricing", `{"graph":{"tasks":[{"name":"a"}]},"pricing":"dantzig"}`, http.StatusBadRequest},
		{"bad-formulation", `{"graph":{"tasks":[{"name":"a"}]},"formulation":"columns"}`, http.StatusBadRequest},
		{"task-too-large", `{"graph":{"tasks":[{"name":"a","resources":9999,"delay":1}]},"board":"small"}`,
			http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("HTTP %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/doesnotexist", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
}

func TestQueueFullReturns503(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	hard := hardGraphJSON(t)
	submit := func() (int, string) {
		code, body := postJSON(t, ts.URL+"/v1/jobs", SolveRequest{
			Graph: hard, Board: "small", NoSymmetryBreaking: true, NoCache: true,
		})
		var sub struct {
			ID string `json:"id"`
		}
		_ = json.Unmarshal(body, &sub)
		return code, sub.ID
	}
	var ids []string
	got503 := false
	for i := 0; i < 4; i++ {
		code, id := submit()
		switch code {
		case http.StatusAccepted:
			ids = append(ids, id)
		case http.StatusServiceUnavailable:
			got503 = true
		default:
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
	}
	if !got503 {
		t.Error("queue never overflowed into 503")
	}
	for _, id := range ids {
		postJSON(t, ts.URL+"/v1/jobs/"+id+"/cancel", struct{}{})
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: marshalGraph(t, wideGraph()), Board: "small"})
	if code != http.StatusOK {
		t.Fatalf("solve: HTTP %d: %s", code, body)
	}
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: marshalGraph(t, wideGraph()), Board: "small"})

	var health healthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if health.Status != "ok" || len(health.Engines) < 2 {
		t.Fatalf("healthz payload: %+v", health)
	}
	if health.Cache.Misses != 1 || health.Cache.Hits != 1 {
		t.Errorf("cache stats after identical solves: %+v", health.Cache)
	}
	if health.Metrics.Solves["ilp"] != 2 {
		t.Errorf("metrics solves: %+v", health.Metrics.Solves)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{
		"sparcsd_solve_total{engine=\"ilp\"} 2",
		"sparcsd_cache_hits_total 1",
		"sparcsd_cache_misses_total 1",
		"sparcsd_queue_depth 0",
		"sparcsd_solve_latency_seconds{quantile=\"0.5\"}",
		"sparcsd_solve_latency_seconds{quantile=\"0.99\"}",
	} {
		if !strings.Contains(string(text), key) {
			t.Errorf("metrics exposition missing %q:\n%s", key, text)
		}
	}
}

// TestCacheKeyExcludesParallelismKnobs pins that requests differing only in
// Workers/SpeculateN share an entry (the knobs are result-equivalent).
func TestCacheKeyExcludesParallelismKnobs(t *testing.T) {
	g := chainGraph()
	base := SolveRequest{Graph: marshalGraph(t, g), Board: "small"}
	r1, err := base.Parse()
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers, par.SpeculateN = 4, 3
	r2, err := par.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheKey() != r2.CacheKey() {
		t.Error("workers/speculate_n changed the cache key")
	}
	tr := base
	tr.Trace = true
	r4, err := tr.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheKey() != r4.CacheKey() {
		t.Error("trace changed the cache key (it must observe, never shadow)")
	}
	for name, mut := range map[string]func(*SolveRequest){
		"board":       func(sr *SolveRequest) { sr.Board = "paper" },
		"engine":      func(sr *SolveRequest) { sr.Engine = "list" },
		"max-nodes":   func(sr *SolveRequest) { sr.MaxNodes = 7 },
		"path-cap":    func(sr *SolveRequest) { sr.PathCap = 9 },
		"no-symmetry": func(sr *SolveRequest) { sr.NoSymmetryBreaking = true },
		"max-parts":   func(sr *SolveRequest) { sr.MaxPartitions = 5 },
		"pricing":     func(sr *SolveRequest) { sr.Pricing = "steepest-edge" },
		"formulation": func(sr *SolveRequest) { sr.Formulation = "patterns" },
	} {
		sr := base
		mut(&sr)
		r3, err := sr.Parse()
		if err != nil {
			t.Fatal(err)
		}
		if r3.CacheKey() == r1.CacheKey() {
			t.Errorf("knob %s did not change the cache key", name)
		}
	}
}

// TestSolveFormulationKnob drives the branch-and-price backend through the
// wire: formulation "patterns" must reach the same optimum as the default
// row model, report the formulation it actually ran plus its
// column-generation counters, and land in its own cache entry (a repeat is
// a hit, but never a hit on the rows entry).
func TestSolveFormulationKnob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	g := marshalGraph(t, chainGraph())

	var rows, pats, again Result
	if code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: g, Board: "small"}); code != http.StatusOK {
		t.Fatalf("rows solve: HTTP %d: %s", code, body)
	} else if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{Graph: g, Board: "small", Formulation: "patterns"}
	if code, body := postJSON(t, ts.URL+"/v1/solve", req); code != http.StatusOK {
		t.Fatalf("patterns solve: HTTP %d: %s", code, body)
	} else if err := json.Unmarshal(body, &pats); err != nil {
		t.Fatal(err)
	}
	if pats.N != rows.N || pats.LatencyNS != rows.LatencyNS {
		t.Errorf("patterns N=%d latency=%g, rows N=%d latency=%g — formulations disagree",
			pats.N, pats.LatencyNS, rows.N, rows.LatencyNS)
	}
	if !pats.Optimal {
		t.Error("patterns solve not proven optimal")
	}
	if rows.Formulation != "rows" || pats.Formulation != "patterns" {
		t.Errorf("reported formulations %q/%q, want rows/patterns", rows.Formulation, pats.Formulation)
	}
	if pats.ColumnsGenerated == 0 || pats.PricingRounds == 0 {
		t.Errorf("patterns solve reported %d columns / %d pricing rounds, want nonzero",
			pats.ColumnsGenerated, pats.PricingRounds)
	}
	if rows.ColumnsGenerated != 0 {
		t.Errorf("rows solve reported %d generated columns, want 0", rows.ColumnsGenerated)
	}
	if rows.Cache != "miss" || pats.Cache != "miss" {
		t.Errorf("cache origins %q/%q, want miss/miss (formulation must be keyed)", rows.Cache, pats.Cache)
	}
	if code, body := postJSON(t, ts.URL+"/v1/solve", req); code != http.StatusOK {
		t.Fatalf("repeat patterns solve: HTTP %d: %s", code, body)
	} else if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.Cache != "hit" {
		t.Errorf("repeat patterns solve origin %q, want hit", again.Cache)
	}
	if again.Formulation != "patterns" || again.ColumnsGenerated != pats.ColumnsGenerated {
		t.Errorf("cache hit lost branch-and-price stats: formulation %q, columns %d (want %q, %d)",
			again.Formulation, again.ColumnsGenerated, pats.Formulation, pats.ColumnsGenerated)
	}
}

// TestGracefulShutdownUnderLoad drives concurrent traffic into Shutdown and
// expects no panic, deadlock, or lost worker.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := []*dfg.Graph{chainGraph(), pairsGraph(), diamondGraph(), wideGraph()}[rng.Intn(4)]
				data, _ := json.Marshal(SolveRequest{Graph: mustMarshal(g), Board: "small"})
				// Errors are fine here: the server is being torn down under us.
				if resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(data)); err == nil {
					resp.Body.Close()
				}
			}
		}(i)
	}
	time.Sleep(200 * time.Millisecond)
	svc.Shutdown()
	close(stop)
	wg.Wait()
	// After shutdown, new work is refused cleanly.
	code, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: marshalGraph(t, wideGraph()), Board: "small"})
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown solve: HTTP %d, want 503", code)
	}
}

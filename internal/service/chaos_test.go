//go:build faultinject

// Chaos suite: runs only under `go test -tags faultinject` (make chaos).
// Each test arms named fault points and proves the service's robustness
// invariants hold while they fire: the daemon keeps serving correct
// results, the metrics stay consistent, and the cache is never poisoned.

package service

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestChaosWorkerPanicIsolation is the acceptance scenario: one armed
// panic fires inside exactly one of two concurrent solves. That request
// fails alone; the concurrent one solves to optimality, and the daemon
// keeps serving afterwards.
func TestChaosWorkerPanicIsolation(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{Workers: 2})

	faultinject.Arm(faultinject.WorkerPanic, 1)
	graphs := [][]byte{marshalGraph(t, chainGraph()), marshalGraph(t, wideGraph())}
	codes := make([]int, len(graphs))
	bodies := make([][]byte, len(graphs))
	var wg sync.WaitGroup
	for i, g := range graphs {
		wg.Add(1)
		go func(i int, g []byte) {
			defer wg.Done()
			codes[i], bodies[i] = postJSON(t, ts.URL+"/v1/solve",
				SolveRequest{Graph: g, Board: "small"})
		}(i, g)
	}
	wg.Wait()

	panicked, solved := 0, 0
	for i := range codes {
		switch codes[i] {
		case http.StatusInternalServerError:
			if !strings.Contains(string(bodies[i]), "panic") {
				t.Fatalf("500 without a panic message: %s", bodies[i])
			}
			panicked++
		case http.StatusOK:
			var res Result
			mustUnmarshal(t, bodies[i], &res)
			if !res.Optimal {
				t.Fatalf("surviving request not optimal: %+v", res)
			}
			solved++
		default:
			t.Fatalf("unexpected code %d: %s", codes[i], bodies[i])
		}
	}
	if panicked != 1 || solved != 1 {
		t.Fatalf("panicked=%d solved=%d, want exactly one of each", panicked, solved)
	}

	// The daemon is still up: the previously-panicked graph now solves.
	for _, g := range graphs {
		code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Graph: g, Board: "small"})
		if code != http.StatusOK {
			t.Fatalf("post-panic solve code %d: %s", code, body)
		}
	}
	assertMetric(t, ts.URL, "sparcsd_worker_panics_total 1")
}

// TestChaosCacheNeverPoisoned: an injected canonical-transfer verification
// failure on a cache hit must fall back to a fresh solve with the correct
// answer — the bad transfer is never served, and the cache entry keeps
// working afterwards.
func TestChaosCacheNeverPoisoned(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	svc, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{Graph: marshalGraph(t, pairsGraph()), Board: "small"}

	code, body := postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("seed solve code %d: %s", code, body)
	}
	var seed Result
	mustUnmarshal(t, body, &seed)

	faultinject.Arm(faultinject.CacheVerifyFail, 1)
	code, body = postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("verify-faulted solve code %d: %s", code, body)
	}
	var faulted Result
	mustUnmarshal(t, body, &faulted)
	if faulted.Cache != string(OriginMiss) {
		t.Fatalf("verify-faulted solve origin %q, want fresh miss", faulted.Cache)
	}
	if faulted.N != seed.N || faulted.LatencyNS != seed.LatencyNS || !faulted.Optimal {
		t.Fatalf("fallback solve diverged: %+v vs %+v", faulted, seed)
	}
	if got := svc.CacheStats().RemapFallbacks; got != 1 {
		t.Fatalf("remap fallbacks = %d, want 1", got)
	}
	if fired := faultinject.Fired(faultinject.CacheVerifyFail); fired != 1 {
		t.Fatalf("cache-verify fault fired %d times, want 1", fired)
	}

	// The shot is spent: the next request is a clean, correct hit.
	code, body = postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("post-fault solve code %d", code)
	}
	var hit Result
	mustUnmarshal(t, body, &hit)
	if hit.Cache != string(OriginHit) || hit.LatencyNS != seed.LatencyNS {
		t.Fatalf("post-fault hit diverged: %+v", hit)
	}
	assertMetric(t, ts.URL, "sparcsd_cache_remap_fallbacks_total 1")
}

// TestChaosSlowSolveDeadlineFallback: an artificially slow ILP solve blows
// a short deadline with no incumbent; the service degrades to the greedy
// fallback — HTTP 200, labeled, finite gap — and caches nothing.
func TestChaosSlowSolveDeadlineFallback(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	svc, ts := newTestServer(t, Config{Workers: 2})

	faultinject.ArmDelay(faultinject.SlowSolve, 1, 2*time.Second)
	start := time.Now()
	code, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Graph: marshalGraph(t, chainGraph()), Board: "small", DeadlineMS: 60,
	})
	if code != http.StatusOK {
		t.Fatalf("slow-solve deadline code %d: %s", code, body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline request took %v", elapsed)
	}
	var res Result
	mustUnmarshal(t, body, &res)
	if !res.Partial || !res.Fallback {
		t.Fatalf("slow-solve result not a labeled fallback: %+v", res)
	}
	if res.LatencyBoundNS <= 0 || res.GapNS < 0 {
		t.Fatalf("fallback bound/gap inconsistent: bound=%g gap=%g",
			res.LatencyBoundNS, res.GapNS)
	}
	if n := svc.CacheStats().Entries; n != 0 {
		t.Fatalf("fallback result leaked into the cache (%d entries)", n)
	}
	assertMetric(t, ts.URL, "sparcsd_fallback_solves_total 1")
	assertMetric(t, ts.URL, "sparcsd_solve_timeouts_total 1")
}

// TestChaosLUFaultsStillCorrect: with both LU fault points firing on every
// opportunity — reinversions failing, warm-started factors reported
// singular — the simplex falls back to its handled recovery paths and the
// service still returns the exact optimum.
func TestChaosLUFaultsStillCorrect(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{Workers: 2})
	req := SolveRequest{Graph: hardGraphJSON(t), Board: "small",
		NoSymmetryBreaking: true, DeadlineMS: 400}

	// Clean anytime baseline first (deadline keeps the hard instance
	// bounded; correctness here means feasible with a sound bound).
	code, body := postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("clean solve code %d: %s", code, body)
	}

	// Finite shot counts: a factor that can NEVER be rebuilt degrades each
	// LP solve far past the point the per-node deadline check can bound
	// (an extreme no real fault produces); 100 firings per point exercise
	// every recovery path while keeping the lane fast.
	faultinject.Arm(faultinject.LUSingularFactor, 100)
	faultinject.Arm(faultinject.LURefactorFail, 100)
	code, body = postJSON(t, ts.URL+"/v1/solve", req)
	if code != http.StatusOK {
		t.Fatalf("LU-faulted solve code %d: %s", code, body)
	}
	var res Result
	mustUnmarshal(t, body, &res)
	if !res.Partial && !res.Optimal {
		t.Fatalf("LU-faulted solve neither optimal nor partial: %+v", res)
	}
	if res.N <= 0 || res.LatencyNS <= 0 {
		t.Fatalf("LU-faulted solve degenerate: %+v", res)
	}
	if faultinject.Fired(faultinject.LUSingularFactor) == 0 &&
		faultinject.Fired(faultinject.LURefactorFail) == 0 {
		t.Fatal("neither LU fault point fired; hooks are dead")
	}

	// A small exactly-solvable graph under the same faults must still hit
	// the true optimum. Finite shot counts (50 firings each, far more than
	// the recovery paths need to be exercised) keep the forced cold solves
	// from dominating the lane's wall-clock.
	faultinject.Disarm(faultinject.LUSingularFactor)
	faultinject.Disarm(faultinject.LURefactorFail)
	g := wideGraph()
	wantN, wantLat := directOptimum(t, g)
	faultinject.Arm(faultinject.LUSingularFactor, 50)
	faultinject.Arm(faultinject.LURefactorFail, 50)
	code, body = postJSON(t, ts.URL+"/v1/solve",
		SolveRequest{Graph: marshalGraph(t, g), Board: "small", NoCache: true})
	if code != http.StatusOK {
		t.Fatalf("LU-faulted wide solve code %d: %s", code, body)
	}
	var wres Result
	mustUnmarshal(t, body, &wres)
	if !wres.Optimal || wres.N != wantN || wres.LatencyNS != wantLat {
		t.Fatalf("LU-faulted optimum diverged: got (N=%d, lat=%g, opt=%v), want (N=%d, lat=%g)",
			wres.N, wres.LatencyNS, wres.Optimal, wantN, wantLat)
	}
}

// assertMetric fetches /metrics and requires the given sample line.
func assertMetric(t *testing.T, baseURL, want string) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), want) {
		t.Fatalf("/metrics missing %q", want)
	}
}
